module instrsample

go 1.22
