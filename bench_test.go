// Package instrsample_test holds the top-level benchmark harness: one
// testing.B benchmark per paper table/figure (regenerating the artifact at
// reduced scale and reporting its headline numbers as metrics), plus
// micro-benchmarks of the substrate itself (interpreter throughput,
// transform speed).
//
//	go test -bench=. -benchmem
//
// The full-scale artifacts are produced by cmd/experiments; these benches
// exist so `go test -bench` exercises every experiment path and gives
// quick relative numbers on the host machine.
package instrsample_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"instrsample/internal/bench"
	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/experiment"
	"instrsample/internal/instr"
	"instrsample/internal/ir"
	"instrsample/internal/oracle"
	"instrsample/internal/service"
	"instrsample/internal/telemetry"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

// benchScale keeps per-iteration work modest; artifact shape is unchanged.
const benchScale = 0.05

func benchConfig() experiment.Config {
	return experiment.Config{Scale: benchScale, ICache: true}
}

// lastRowMetric extracts a numeric cell from a table's final (average) row.
func lastRowMetric(b *testing.B, tab *experiment.Table, col int) float64 {
	b.Helper()
	row := tab.Rows[len(tab.Rows)-1]
	v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64)
	if err != nil {
		b.Fatalf("cell %q: %v", row[col], err)
	}
	return v
}

func runArtifact(b *testing.B, id string, metricCol int, metricName string) {
	gen, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var metric float64
	for i := 0; i < b.N; i++ {
		tab, err := gen(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if metricCol >= 0 {
			metric = lastRowMetric(b, tab, metricCol)
		}
	}
	if metricCol >= 0 {
		b.ReportMetric(metric, metricName)
	}
}

// BenchmarkTable1 regenerates Table 1 (exhaustive instrumentation
// overhead) and reports the suite-average call-edge overhead.
func BenchmarkTable1(b *testing.B) { runArtifact(b, "table1", 1, "calledge-overhead-%") }

// BenchmarkTable2 regenerates Table 2 (Full-Duplication framework
// overhead, no samples) and reports the suite-average total overhead.
func BenchmarkTable2(b *testing.B) { runArtifact(b, "table2", 1, "framework-overhead-%") }

// BenchmarkTable3 regenerates Table 3 (No-Duplication check overhead) and
// reports the suite-average field-access overhead.
func BenchmarkTable3(b *testing.B) { runArtifact(b, "table3", 2, "nodup-field-overhead-%") }

// BenchmarkTable4 regenerates the Table 4 interval sweep. The reported
// metric is the Full-Duplication interval-1000 total overhead (the
// paper's headline 6.3%).
func BenchmarkTable4(b *testing.B) {
	var metric float64
	for i := 0; i < b.N; i++ {
		tab, err := experiment.Table4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range tab.Rows {
			if row[0] == "Full-Duplication" && row[1] == "1000" {
				v, err := strconv.ParseFloat(row[4], 64)
				if err != nil {
					b.Fatal(err)
				}
				metric = v
			}
		}
	}
	b.ReportMetric(metric, "fd1000-total-overhead-%")
}

// BenchmarkFigure7 regenerates the javac call-edge profile comparison.
func BenchmarkFigure7(b *testing.B) { runArtifact(b, "figure7", -1, "") }

// BenchmarkFigure8A regenerates the yieldpoint-optimized framework
// overhead table and reports its average.
func BenchmarkFigure8A(b *testing.B) { runArtifact(b, "figure8a", 1, "yieldopt-overhead-%") }

// BenchmarkFigure8B regenerates the yieldpoint-optimized sampling sweep.
func BenchmarkFigure8B(b *testing.B) { runArtifact(b, "figure8b", -1, "") }

// BenchmarkTable5 regenerates the trigger comparison and reports the
// counter-minus-timer accuracy gap.
func BenchmarkTable5(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		tab, err := experiment.Table5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		gap = lastRowMetric(b, tab, 2) - lastRowMetric(b, tab, 1)
	}
	b.ReportMetric(gap, "counter-vs-timer-gap-pts")
}

// BenchmarkConvergence regenerates the accuracy-convergence curves and
// reports Full-Duplication's end-of-run overlap.
func BenchmarkConvergence(b *testing.B) { runArtifact(b, "convergence", 1, "full-final-overlap-%") }

// --- substrate micro-benchmarks ---

// BenchmarkInterpreter measures raw interpreter throughput on the
// compress kernel (host ns per simulated instruction).
func BenchmarkInterpreter(b *testing.B) {
	prog := bench.Compress(benchScale)
	res, err := compile.Compile(prog, compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		out, err := vm.New(res.Prog, vm.Config{}).Run()
		if err != nil {
			b.Fatal(err)
		}
		instrs += out.Stats.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "M-instrs/sec")
}

// BenchmarkInterpreterNoFuse measures the same kernel with
// superinstruction fusion disabled — the PR 2 pure-block loop alone.
// The gap to BenchmarkInterpreter is the fused tier's win; the
// fusion-smoke ratio floor (fused >= 1.0x unfused, cmd/benchab)
// guards it from regressing into a pessimization.
func BenchmarkInterpreterNoFuse(b *testing.B) {
	prog := bench.Compress(benchScale)
	res, err := compile.Compile(prog, compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		out, err := vm.New(res.Prog, vm.Config{Fusion: vm.FusionOff}).Run()
		if err != nil {
			b.Fatal(err)
		}
		instrs += out.Stats.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "M-instrs/sec")
}

// BenchmarkInterpreterReference measures the retained reference dispatch
// on the same kernel; the gap to BenchmarkInterpreter is the fast path's
// win (precomputed cost table, pooled frames, hoisted budget checks).
func BenchmarkInterpreterReference(b *testing.B) {
	prog := bench.Compress(benchScale)
	res, err := compile.Compile(prog, compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		out, err := vm.New(res.Prog, vm.Config{Reference: true}).Run()
		if err != nil {
			b.Fatal(err)
		}
		instrs += out.Stats.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "M-instrs/sec")
}

// BenchmarkInterpreterCalls measures call-dense throughput (naive fib,
// two calls per node) — the workload where frame pooling matters most.
func BenchmarkInterpreterCalls(b *testing.B) {
	fb := ir.NewFunc("fib", 1)
	{
		c := fb.At(fb.EntryBlock())
		two := c.Const(2)
		cond := c.Bin(ir.OpCmpLT, 0, two)
		thenB := fb.Block("")
		elseB := fb.Block("")
		c.Branch(cond, thenB, elseB)
		tc := fb.At(thenB)
		tc.Return(0)
		ec := fb.At(elseB)
		one := ec.Const(1)
		n1 := ec.Bin(ir.OpSub, 0, one)
		n2 := ec.Bin(ir.OpSub, n1, one)
		ec.Return(ec.Bin(ir.OpAdd, ec.Call(fb.M, n1), ec.Call(fb.M, n2)))
	}
	mb := ir.NewFunc("main", 0)
	{
		c := mb.At(mb.EntryBlock())
		n := c.Const(22)
		c.Return(c.Call(fb.M, n))
	}
	p := &ir.Program{Name: "fib", Funcs: []*ir.Method{fb.M, mb.M}, Main: mb.M}
	p.Seal()
	res, err := compile.Compile(p, compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		out, err := vm.New(res.Prog, vm.Config{}).Run()
		if err != nil {
			b.Fatal(err)
		}
		instrs += out.Stats.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "M-instrs/sec")
}

// BenchmarkInterpreterICache measures the same kernel with the i-cache
// model enabled, quantifying the model's own cost.
func BenchmarkInterpreterICache(b *testing.B) {
	prog := bench.Compress(benchScale)
	res, err := compile.Compile(prog, compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.New(res.Prog, vm.Config{ICache: vm.DefaultICache()}).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// sampledCompress compiles the fully sampled compress workload (both
// paper instrumentations, Full-Duplication) shared by the sampled-run
// benchmarks below.
func sampledCompress(b *testing.B) *compile.Result {
	b.Helper()
	res, err := compile.Compile(bench.Compress(benchScale), compile.Options{
		Instrumenters: []instr.Instrumenter{&instr.CallEdge{}, &instr.FieldAccess{}},
		Framework:     &core.Options{Variation: core.FullDuplication},
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkSampledRun measures a fully sampled run (both paper
// instrumentations, Full-Duplication, interval 1000), nil observer —
// the baseline the telemetry variants below are compared against.
func BenchmarkSampledRun(b *testing.B) {
	res := sampledCompress(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vm.New(res.Prog, vm.Config{
			Trigger:  trigger.NewCounter(1000),
			Handlers: res.Handlers,
		}).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSampledRunTelemetry measures the same sampled run with the
// full telemetry chain attached (trace recorder + metrics meter). The
// gap to BenchmarkSampledRun is the price of observation: the observer
// disables pure-block batching and every hook records an event.
func BenchmarkSampledRunTelemetry(b *testing.B) {
	res := sampledCompress(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := telemetry.NewTrace(1 << 14)
		meter := telemetry.NewMeter(telemetry.NewRegistry(), "counter/1000", 1<<16, nil)
		cfg := vm.Config{
			Trigger:  trigger.NewCounter(1000),
			Handlers: res.Handlers,
			Observer: vm.CombineObservers(tr, meter),
		}
		v := vm.New(res.Prog, cfg)
		tr.SetClock(v)
		meter.SetClock(v)
		if _, err := v.Run(); err != nil {
			b.Fatal(err)
		}
		meter.Finish()
	}
}

// BenchmarkSampledRunOracleTelemetry stacks the invariant oracle on top
// of the telemetry chain — the worst-case observer fan-out (three
// consumers per event through vm.MultiObserver), and the configuration
// `isamp -verify -trace -metrics` runs.
func BenchmarkSampledRunOracleTelemetry(b *testing.B) {
	res := sampledCompress(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		orc := oracle.New()
		tr := telemetry.NewTrace(1 << 14)
		meter := telemetry.NewMeter(telemetry.NewRegistry(), "counter/1000", 1<<16, nil)
		cfg := vm.Config{
			Trigger:  trigger.NewCounter(1000),
			Handlers: res.Handlers,
			Observer: vm.CombineObservers(orc, tr, meter),
		}
		v := vm.New(res.Prog, cfg)
		tr.SetClock(v)
		meter.SetClock(v)
		out, err := v.Run()
		if err != nil {
			b.Fatal(err)
		}
		if err := orc.Finish(out.Stats); err != nil {
			b.Fatal(err)
		}
		meter.Finish()
	}
}

// benchCompile measures the compiler pipeline under a framework variation.
func benchCompile(b *testing.B, fw *core.Options) {
	prog := bench.Optc(0.01) // many methods, realistic CFGs
	var ins []instr.Instrumenter
	if fw != nil {
		ins = []instr.Instrumenter{&instr.CallEdge{}, &instr.FieldAccess{}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compile.Compile(prog, compile.Options{Instrumenters: ins, Framework: fw}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileBaseline measures the baseline pipeline (optimizer,
// yieldpoints, liveness, layout).
func BenchmarkCompileBaseline(b *testing.B) { benchCompile(b, nil) }

// BenchmarkCompileFullDuplication measures the pipeline with
// instrumentation plus the Full-Duplication transform — the compile-time
// increase of Table 2.
func BenchmarkCompileFullDuplication(b *testing.B) {
	benchCompile(b, &core.Options{Variation: core.FullDuplication})
}

// BenchmarkCompilePartialDuplication measures the Partial-Duplication
// transform (top/bottom-node analysis included).
func BenchmarkCompilePartialDuplication(b *testing.B) {
	benchCompile(b, &core.Options{Variation: core.PartialDuplication})
}

// BenchmarkCompileNoDuplication measures the No-Duplication transform.
func BenchmarkCompileNoDuplication(b *testing.B) {
	benchCompile(b, &core.Options{Variation: core.NoDuplication})
}

// BenchmarkCheckCost isolates the per-check cost: a tight loop measured
// with and without backedge checks; the metric is simulated cycles per
// check.
func BenchmarkCheckCost(b *testing.B) {
	mk := func() *ir.Program {
		fb := ir.NewFunc("main", 0)
		c := fb.At(fb.EntryBlock())
		n := c.Const(100000)
		lp := c.CountedLoop(n, "l")
		lp.Body.Jump(lp.Latch)
		lp.After.Return(lp.I)
		p := &ir.Program{Name: "micro", Funcs: []*ir.Method{fb.M}, Main: fb.M}
		p.Seal()
		return p
	}
	base, err := compile.Compile(mk(), compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	checked, err := compile.Compile(mk(), compile.Options{ChecksOnly: &core.ChecksOnly{Backedges: true}})
	if err != nil {
		b.Fatal(err)
	}
	var perCheck float64
	for i := 0; i < b.N; i++ {
		o1, err := vm.New(base.Prog, vm.Config{}).Run()
		if err != nil {
			b.Fatal(err)
		}
		o2, err := vm.New(checked.Prog, vm.Config{Trigger: trigger.Never{}}).Run()
		if err != nil {
			b.Fatal(err)
		}
		perCheck = float64(o2.Stats.Cycles-o1.Stats.Cycles) / float64(o2.Stats.Checks)
	}
	b.ReportMetric(perCheck, "cycles/check")
}

// BenchmarkInterpreterCancelArmed is BenchmarkInterpreter with a cancel
// token armed but never fired: the dispatch loop's per-observation-point
// poll is live. The gap to BenchmarkInterpreter is the price of *being*
// cancellable; the nil-token configuration (BenchmarkInterpreter itself)
// must stay within noise of the pre-seam tree — that A/B is recorded in
// BENCH_PR5.json.
func BenchmarkInterpreterCancelArmed(b *testing.B) {
	prog := bench.Compress(benchScale)
	res, err := compile.Compile(prog, compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	tok := vm.NewCancel()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		out, err := vm.New(res.Prog, vm.Config{Cancel: tok}).Run()
		if err != nil {
			b.Fatal(err)
		}
		instrs += out.Stats.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "M-instrs/sec")
}

// --- daemon throughput ---

// benchDaemonThroughput pushes b.N unique tiny jobs through the full
// HTTP submit path into a Server with the given worker-pool size and
// measures end-to-end jobs/sec: JSON validation, queue, worker dispatch,
// compile, VM run, terminal-state accounting. Sources are unique per job
// so neither the memo table nor the cache short-circuits the work.
func benchDaemonThroughput(b *testing.B, workers int) {
	s := service.New(service.Config{Workers: workers, QueueDepth: b.N + 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Shutdown(ctx)
	}()
	h := s.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"source":"func main() {\nentry:\n  const i, 0\n  const n, %d\n  const one, 1\nloop:\n  cmplt c, i, n\n  br c, body, done\nbody:\n  add i, i, one\n  jmp loop\ndone:\n  ret i\n}\n"}`, 1000+i)
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted {
			b.Fatalf("submit %d: status %d: %s", i, rec.Code, rec.Body)
		}
	}
	reg := s.Registry()
	for reg.Counter(service.MetricJobsCompleted).Value() < uint64(b.N) {
		if f := reg.Counter(service.MetricJobsFailed).Value(); f > 0 {
			b.Fatalf("%d jobs failed", f)
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
}

func BenchmarkDaemonThroughput1(b *testing.B) { benchDaemonThroughput(b, 1) }
func BenchmarkDaemonThroughput4(b *testing.B) { benchDaemonThroughput(b, 4) }
func BenchmarkDaemonThroughput8(b *testing.B) { benchDaemonThroughput(b, 8) }
