# Tier-1 verification for this repository. `make ci` is what a change
# must keep green (see CONTRIBUTING.md).

GO ?= go

.PHONY: ci fmt vet build test race bench bench-short experiments clean-cache

ci: fmt vet build test race bench-short

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment engine runs measurement cells on concurrent goroutines,
# and the VM's differential tests run parallel subtests over the frame
# pools and scheduler; keep both race-clean.
race:
	$(GO) test -race ./internal/experiment/ ./internal/vm/

# Full benchmark sweep (slow). BENCH_*.json snapshots in the repo root
# record curated before/after numbers from these benchmarks.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration of every benchmark: a smoke test that the bench harness
# itself stays green, cheap enough for ci.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x -count 1 ./...

# Full-scale regeneration of the recorded results (slow).
experiments:
	$(GO) run ./cmd/experiments -markdown -q -no-cache -o results_full.md

clean-cache:
	rm -rf "$${XDG_CACHE_HOME:-$$HOME/.cache}/instrsample/experiments"
