# Tier-1 verification for this repository. `make ci` is what a change
# must keep green (see CONTRIBUTING.md).

GO ?= go

.PHONY: ci fmt vet build test race experiments clean-cache

ci: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment engine runs measurement cells on concurrent goroutines;
# keep it race-clean.
race:
	$(GO) test -race ./internal/experiment/

# Full-scale regeneration of the recorded results (slow).
experiments:
	$(GO) run ./cmd/experiments -markdown -q -no-cache -o results_full.md

clean-cache:
	rm -rf "$${XDG_CACHE_HOME:-$$HOME/.cache}/instrsample/experiments"
