# Tier-1 verification for this repository. `make ci` is what a change
# must keep green (see CONTRIBUTING.md).

GO ?= go

.PHONY: ci fmt vet build test race bench bench-short bench-ab experiments \
	clean-cache fuzz fuzz-smoke mutation-check telemetry-smoke \
	service-smoke soak soak-smoke soak-fleet doc-lint fusion-smoke \
	scenario-smoke obs-smoke fleet-smoke

ci: fmt vet doc-lint build test race fuzz-smoke mutation-check telemetry-smoke \
	service-smoke obs-smoke soak-smoke fusion-smoke scenario-smoke \
	fleet-smoke bench-short

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment engine runs measurement cells on concurrent goroutines,
# the VM's differential tests run parallel subtests over the frame pools
# and scheduler, the oracle tests exercise the observer hooks from
# parallel seeds, the trigger tests drive fault-injected timers under
# threaded programs, and the service daemon runs its queue/worker/SSE
# machinery against live HTTP clients; keep all five race-clean.
race:
	$(GO) test -race ./internal/experiment/ ./internal/vm/ \
		./internal/oracle/ ./internal/trigger/ ./internal/service/ \
		./internal/scenario/ ./internal/fabric/

# Native fuzzing (go test -fuzz), 30s per target. Each target keeps its
# regression corpus in testdata/fuzz/; crashers found here land there
# automatically. One -fuzz pattern per invocation is a go tool limit.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzAsmRoundTrip$$' -fuzztime 30s ./internal/asm/
	$(GO) test -run '^$$' -fuzz '^FuzzTransform$$' -fuzztime 30s ./internal/core/
	$(GO) test -run '^$$' -fuzz '^FuzzVariations$$' -fuzztime 30s ./internal/oracle/
	$(GO) test -run '^$$' -fuzz '^FuzzReplayRoundTrip$$' -fuzztime 30s ./internal/scenario/

# Short fuzz runs for ci: enough to replay the checked-in corpus plus a
# few seconds of fresh inputs per target.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzAsmRoundTrip$$' -fuzztime 5s ./internal/asm/
	$(GO) test -run '^$$' -fuzz '^FuzzTransform$$' -fuzztime 5s ./internal/core/
	$(GO) test -run '^$$' -fuzz '^FuzzVariations$$' -fuzztime 5s ./internal/oracle/
	$(GO) test -run '^$$' -fuzz '^FuzzReplayRoundTrip$$' -fuzztime 5s ./internal/scenario/

# Mutation test for the oracle itself: compile Partial-Duplication with a
# deliberately forgotten backedge mask (core.FaultSkipBackedgeMask) and
# require the oracle to flag the resulting Property-1 violation. Guards
# the guard: an oracle that stops observing fails this target.
mutation-check:
	$(GO) test -run '^TestMutationKill$$' -v ./internal/oracle/ | grep -q 'PASS: TestMutationKill'

# Telemetry smoke: drive a small instrumented benchmark through the real
# isamp CLI path with -verify, -trace and -metrics attached, validating
# the Chrome trace-event JSON schema and the metrics CSV header. Runs
# under -race to exercise the trace ring's atomic head publication.
telemetry-smoke:
	$(GO) test -race -run '^TestTelemetrySmoke$$' -v ./cmd/isamp/ | grep -q 'PASS: TestTelemetrySmoke'

# Daemon smoke: boot isampd on an ephemeral port under -race, submit a
# job over HTTP, stream its SSE events to completion, cancel a
# long-running job (must stop at the next observation point), validate
# the /metrics exposition format, and drain via the SIGTERM path.
service-smoke:
	$(GO) test -race -run '^TestServiceSmoke$$' -v ./cmd/isampd/ | grep -q 'PASS: TestServiceSmoke'

# Observability smoke for ci, two halves, both under -race. (1) The real
# daemon: boot isampd at -obs full with a trace directory, debug
# listener and structured logs, submit jobs over HTTP, and require the
# terminal ledger's stage rows to sum to total_ns exactly, the merged
# /trace document to parse as Chrome trace-event JSON, and pprof to
# answer. (2) In-process: the full-mode merged trace must carry
# cycle-aligned VM events inside the vm-run span, the ledger must equal
# the job's end-to-end extent, and the completed chain must be gap-free
# with zero ring drops.
obs-smoke:
	$(GO) test -race -run '^TestDaemonObservability$$' -v ./cmd/isampd/ | grep -q 'PASS: TestDaemonObservability'
	$(GO) test -race -run '^(TestObsFullMergedTrace|TestObsLedgerSumEqualsJobLatency|TestObsChainCompleted)$$' \
		./internal/service/

# Sustained soak: a 30-second seeded mixed-traffic run against a
# self-hosted daemon, gates asserted in code, BENCH_PR6.json emitted by
# the harness itself (see BENCHMARKING.md). Deterministic plan: the same
# seed+mix replays the same job sequence, and the report records its
# SHA-256.
soak:
	$(GO) run ./cmd/isampload -duration 30s -o BENCH_PR6.json

# Soak smoke for ci: a few-second seeded soak on an ephemeral port under
# -race with the regression gates enforced — exact gates (zero failed
# jobs, zero leaked goroutines, zero transport errors) at full strength,
# timing ceilings relaxed for shared hosts. A deliberately small queue
# forces the 429-retry path to run.
soak-smoke:
	$(GO) test -race -run '^TestSoakSmoke$$' -v ./cmd/isampload/ | grep -q 'PASS: TestSoakSmoke'

# Fleet smoke for ci: the real isampfleet entrypoint (config file, flags,
# SIGHUP reload) coordinating three in-process isampd workers on
# ephemeral ports, under -race: a mixed batch with duplicates, one worker
# killed mid-job (its cell requeues on a survivor, then the topology
# drops it via SIGHUP), every job terminal, zero lost cells, and a
# byte-identical CAS hit on resubmission.
fleet-smoke:
	$(GO) test -race -run '^TestFleetSmoke$$' -v ./cmd/isampfleet/ | grep -q 'PASS: TestFleetSmoke'

# Fleet soak (not in ci — see BENCHMARKING.md on this host's core count):
# the self-hosted scaling A/B behind BENCH_PR10.json — the same seeded
# soak against 1-worker and 4-worker self-hosted fleets, plus a
# worker-kill recovery leg.
soak-fleet:
	$(GO) run ./cmd/isampload -fleet-ab -workers 4 -duration 20s -pr 10 \
		-title "Fleet scaling A/B: isampfleet coordinator over 1 vs 4 isampd workers" \
		-o BENCH_PR10.json

# Doc lint: every internal package must open with a package comment that
# cross-links its DESIGN.md section, so the design doc and the code
# cannot drift apart silently.
doc-lint:
	@bad=""; for d in internal/*/; do \
		grep -l -r --include='*.go' -m1 '^// Package' $$d >/dev/null 2>&1 \
			|| bad="$$bad $$d(no package comment)"; \
		grep -r --include='*.go' -q 'DESIGN.md' $$d \
			|| bad="$$bad $$d(no DESIGN.md link)"; \
	done; if [ -n "$$bad" ]; then \
		echo "doc-lint: missing package docs:$$bad"; exit 1; fi

# Fusion smoke for ci, two halves. (1) Correctness: the seeded
# differential sweep plus every fused-block edge-case test (trap inside
# a superinstruction, cancellation/quantum mid-pair, observer
# degradation, coverage floors) under -race. (2) Performance floor: a
# quick interleaved A/B run that fails if the median same-window
# fused/unfused ratio drops below 1.0 — fusion must never make the fast
# dispatcher slower than just turning it off.
fusion-smoke:
	$(GO) test -race -run '^(TestFusionDifferentialSweep|TestFused|TestObserverDisablesFusion)' \
		./internal/vm/
	$(GO) run ./cmd/benchab -quick -floor 1.0

# Scenario smoke for ci, two halves. (1) The seeded workload-family
# sweep — generated programs recorded on the fast dispatcher, replayed
# bit-identically on both, every run under the oracle — plus the
# tampering detector, under -race. (2) A coverage floor on the new
# package: record/replay is trusted exactly as far as its tests reach,
# so the scenario package must keep >= 80% statement coverage.
scenario-smoke:
	$(GO) test -race -run '^(TestSweepProperty|TestRecordReplayDifferential|TestReplayDetectsTampering)$$' \
		./internal/scenario/
	@cov=$$($(GO) test -cover ./internal/scenario/ | awk '{for(i=1;i<=NF;i++) if ($$i=="coverage:") print $$(i+1)}' | tr -d '%'); \
	if [ -z "$$cov" ]; then echo "scenario-smoke: no coverage reported"; exit 1; fi; \
	ok=$$(awk -v c="$$cov" 'BEGIN{print (c>=80.0)?1:0}'); \
	if [ "$$ok" != 1 ]; then \
		echo "scenario-smoke: internal/scenario coverage $$cov% below 80% floor"; exit 1; fi; \
	echo "scenario coverage $$cov% (floor 80%)"

# Full benchmark sweep (slow). BENCH_*.json snapshots in the repo root
# record curated before/after numbers from these benchmarks.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# The interleaved fused/unfused/reference A/B comparison behind
# BENCH_PR7.json: same-window per-round ratios, median reported (see
# BENCHMARKING.md for why separate-run numbers are not comparable on
# this host).
bench-ab:
	$(GO) run ./cmd/benchab -o BENCH_PR7.json

# One iteration of every benchmark: a smoke test that the bench harness
# itself stays green, cheap enough for ci.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x -count 1 ./...

# Full-scale regeneration of the recorded results (slow).
experiments:
	$(GO) run ./cmd/experiments -markdown -q -no-cache -o results_full.md

clean-cache:
	rm -rf "$${XDG_CACHE_HOME:-$$HOME/.cache}/instrsample/experiments"
