# Tier-1 verification for this repository. `make ci` is what a change
# must keep green (see CONTRIBUTING.md).

GO ?= go

.PHONY: ci fmt vet build test race bench bench-short experiments clean-cache \
	fuzz fuzz-smoke mutation-check telemetry-smoke service-smoke

ci: fmt vet build test race fuzz-smoke mutation-check telemetry-smoke \
	service-smoke bench-short

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment engine runs measurement cells on concurrent goroutines,
# the VM's differential tests run parallel subtests over the frame pools
# and scheduler, the oracle tests exercise the observer hooks from
# parallel seeds, the trigger tests drive fault-injected timers under
# threaded programs, and the service daemon runs its queue/worker/SSE
# machinery against live HTTP clients; keep all five race-clean.
race:
	$(GO) test -race ./internal/experiment/ ./internal/vm/ \
		./internal/oracle/ ./internal/trigger/ ./internal/service/

# Native fuzzing (go test -fuzz), 30s per target. Each target keeps its
# regression corpus in testdata/fuzz/; crashers found here land there
# automatically. One -fuzz pattern per invocation is a go tool limit.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzAsmRoundTrip$$' -fuzztime 30s ./internal/asm/
	$(GO) test -run '^$$' -fuzz '^FuzzTransform$$' -fuzztime 30s ./internal/core/
	$(GO) test -run '^$$' -fuzz '^FuzzVariations$$' -fuzztime 30s ./internal/oracle/

# Short fuzz runs for ci: enough to replay the checked-in corpus plus a
# few seconds of fresh inputs per target.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzAsmRoundTrip$$' -fuzztime 5s ./internal/asm/
	$(GO) test -run '^$$' -fuzz '^FuzzTransform$$' -fuzztime 5s ./internal/core/
	$(GO) test -run '^$$' -fuzz '^FuzzVariations$$' -fuzztime 5s ./internal/oracle/

# Mutation test for the oracle itself: compile Partial-Duplication with a
# deliberately forgotten backedge mask (core.FaultSkipBackedgeMask) and
# require the oracle to flag the resulting Property-1 violation. Guards
# the guard: an oracle that stops observing fails this target.
mutation-check:
	$(GO) test -run '^TestMutationKill$$' -v ./internal/oracle/ | grep -q 'PASS: TestMutationKill'

# Telemetry smoke: drive a small instrumented benchmark through the real
# isamp CLI path with -verify, -trace and -metrics attached, validating
# the Chrome trace-event JSON schema and the metrics CSV header. Runs
# under -race to exercise the trace ring's atomic head publication.
telemetry-smoke:
	$(GO) test -race -run '^TestTelemetrySmoke$$' -v ./cmd/isamp/ | grep -q 'PASS: TestTelemetrySmoke'

# Daemon smoke: boot isampd on an ephemeral port under -race, submit a
# job over HTTP, stream its SSE events to completion, cancel a
# long-running job (must stop at the next observation point), validate
# the /metrics exposition format, and drain via the SIGTERM path.
service-smoke:
	$(GO) test -race -run '^TestServiceSmoke$$' -v ./cmd/isampd/ | grep -q 'PASS: TestServiceSmoke'

# Full benchmark sweep (slow). BENCH_*.json snapshots in the repo root
# record curated before/after numbers from these benchmarks.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration of every benchmark: a smoke test that the bench harness
# itself stays green, cheap enough for ci.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x -count 1 ./...

# Full-scale regeneration of the recorded results (slow).
experiments:
	$(GO) run ./cmd/experiments -markdown -q -no-cache -o results_full.md

clean-cache:
	rm -rf "$${XDG_CACHE_HOME:-$$HOME/.cache}/instrsample/experiments"
