package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"instrsample/internal/experiment"
)

func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out, io.Discard); err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if got := strings.TrimSpace(out.String()); got != experiment.BuildID() {
		t.Errorf("-version printed %q, want build ID %q", got, experiment.BuildID())
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, io.Discard, io.Discard); err == nil {
		t.Error("unknown flag accepted, want parse error")
	}
	if err := run([]string{"-artifact", "table99"}, io.Discard, io.Discard); err == nil {
		t.Error("unknown artifact accepted, want error")
	}
}

// TestSmokeTinyArtifact drives the real main pipeline — flag parsing,
// cache setup, engine, one artifact — at a tiny scale through a temp
// cache dir, and then again to confirm the second run is served from
// that cache with byte-identical output.
func TestSmokeTinyArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny artifact still runs real cells")
	}
	cacheDir := t.TempDir()
	outPath := filepath.Join(t.TempDir(), "out.txt")
	args := []string{
		"-artifact", "table1",
		"-scale", "0.02",
		"-bench", "db",
		"-cache-dir", cacheDir,
		"-telemetry-dir", t.TempDir(),
		"-q",
		"-o", outPath,
	}
	if err := run(args, io.Discard, io.Discard); err != nil {
		t.Fatalf("first run: %v", err)
	}
	first, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("read output: %v", err)
	}
	if !strings.Contains(string(first), "db") {
		t.Errorf("table output missing benchmark row:\n%s", first)
	}
	entries, err := os.ReadDir(cacheDir)
	if err != nil || len(entries) == 0 {
		t.Errorf("cache dir empty after run (err %v)", err)
	}

	if err := run(args, io.Discard, io.Discard); err != nil {
		t.Fatalf("second run: %v", err)
	}
	second, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("read output: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cached rerun output differs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}
