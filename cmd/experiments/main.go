// Command experiments regenerates the paper's tables and figures on the
// synthetic benchmark suite.
//
//	experiments                    # everything, full scale, ASCII
//	experiments -artifact table4   # one artifact
//	experiments -scale 0.25        # faster, smaller workloads
//	experiments -markdown -o results.md
//	experiments -bench javac,db    # restrict the suite
//	experiments -j 8               # run cells on 8 workers
//	experiments -no-cache          # ignore the on-disk result cache
//	experiments -timings           # slowest cells + per-artifact cache hit/miss
//	experiments -telemetry-dir d   # dump engine metrics as CSV + JSON
//	experiments -version           # print the cache-keying build ID
//
// Artifacts decompose into independent measurement cells executed on a
// bounded worker pool (-j, default GOMAXPROCS); cells shared between
// artifacts run once, and results are cached on disk (-cache-dir) keyed
// by the cell and the binary's build ID, so repeated invocations at the
// same scale are near-instant. Output is assembled in deterministic
// order and is byte-identical at any -j.
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"instrsample/internal/experiment"
	"instrsample/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run is main minus the process concerns: flags come from args, output
// goes to the given writers, and failures return instead of exiting —
// which is what lets the smoke test drive the real flag parsing and
// artifact pipeline in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		artifact = fs.String("artifact", "", "one of table1..table5, figure7, figure8a, figure8b, scenario-sweep, ablation-* (default: all)")
		scale    = fs.Float64("scale", 1.0, "workload scale factor")
		markdown = fs.Bool("markdown", false, "emit markdown instead of ASCII tables")
		outPath  = fs.String("o", "", "write to file instead of stdout")
		benches  = fs.String("bench", "", "comma-separated benchmark subset")
		noICache = fs.Bool("no-icache", false, "disable the i-cache model")
		quiet    = fs.Bool("q", false, "suppress progress output")
		workers  = fs.Int("j", runtime.GOMAXPROCS(0), "number of parallel cell workers")
		cacheDir = fs.String("cache-dir", defaultCacheDir(), "on-disk result cache directory (empty disables)")
		noCache  = fs.Bool("no-cache", false, "disable the on-disk result cache")
		timings  = fs.Bool("timings", false, "report the slowest cells and per-artifact cache hit/miss counts")
		telDir   = fs.String("telemetry-dir", "", "write engine metrics (CSV + JSON) into this directory")
		version  = fs.Bool("version", false, "print the cache-keying build ID and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, experiment.BuildID())
		return nil
	}

	var cache *experiment.Cache
	if !*noCache && *cacheDir != "" {
		c, err := experiment.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(stderr, "experiments: cache disabled:", err)
		} else {
			cache = c
		}
	}
	eng := experiment.NewEngine(*workers, cache)
	// The registry feeds both the -timings hit/miss report and the
	// -telemetry-dir dump; attaching it is cheap, so it is always on.
	metrics := telemetry.NewRegistry()
	eng.AttachMetrics(metrics)

	cfg := experiment.Config{Scale: *scale, ICache: !*noICache, Engine: eng}
	if *benches != "" {
		for _, b := range strings.Split(*benches, ",") {
			cfg.Benchmarks = append(cfg.Benchmarks, strings.TrimSpace(b))
		}
	}
	if !*quiet {
		// Cells complete on pool goroutines; serialize the hook.
		var mu sync.Mutex
		cfg.Progress = func(line string) {
			mu.Lock()
			fmt.Fprintln(stderr, "  "+line)
			mu.Unlock()
		}
	}

	var out io.Writer = stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	type job struct {
		id  string
		gen experiment.Generator
	}
	var jobs []job
	if *artifact != "" {
		gen, err := experiment.ByID(*artifact)
		if err != nil {
			return err
		}
		jobs = append(jobs, job{*artifact, gen})
	} else {
		for _, e := range experiment.All() {
			jobs = append(jobs, job{e.ID, e.Gen})
		}
	}

	// Generators run concurrently — each blocks on the shared engine, so
	// the worker pool bounds actual parallelism and cells shared between
	// artifacts run once. Tables print in artifact order regardless of
	// completion order, keeping output bytes deterministic.
	start := time.Now()
	type result struct {
		tab *experiment.Table
		err error
		dur time.Duration
	}
	results := make([]result, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			s := time.Now()
			jcfg := cfg
			jcfg.Artifact = j.id
			tab, err := j.gen(jcfg)
			results[i] = result{tab, err, time.Since(s)}
		}(i, j)
	}
	wg.Wait()

	for i, j := range jobs {
		r := results[i]
		if r.err != nil {
			return fmt.Errorf("%s: %w", j.id, r.err)
		}
		if !*quiet {
			fmt.Fprintf(stderr, "%s done in %v\n", j.id, r.dur.Round(time.Millisecond))
		}
		if *markdown {
			r.tab.Markdown(out)
		} else {
			r.tab.Fprint(out)
		}
	}

	if !*quiet {
		st := eng.Stats()
		fmt.Fprintf(stderr, "%d cells (%d cache hits, %d shared) on %d workers in %v\n",
			st.CellsRun, st.CacheHits, st.MemoHits, eng.Workers(),
			time.Since(start).Round(time.Millisecond))
	}
	if *timings {
		fmt.Fprintln(stderr, "slowest cells (total = cache probe + run):")
		for _, ct := range eng.Slowest(10) {
			tag := ""
			if ct.Cached {
				tag = " (cache)"
			}
			fmt.Fprintf(stderr, "  %8v  probe %7v  run %8v%s  %s\n",
				ct.Duration.Round(time.Millisecond),
				ct.Probe.Round(time.Millisecond),
				ct.Exec.Round(time.Millisecond),
				tag, ct.Key)
		}
		var ids []string
		for _, j := range jobs {
			ids = append(ids, j.id)
		}
		fmt.Fprintln(stderr, "cells per artifact (run / cache hit / cache miss / shared):")
		for _, line := range artifactReport(metrics, ids) {
			fmt.Fprintln(stderr, "  "+line)
		}
	}
	if *telDir != "" {
		if err := writeEngineMetrics(*telDir, metrics); err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintf(stderr, "engine metrics -> %s\n",
				filepath.Join(*telDir, "engine_metrics.{csv,json}"))
		}
	}
	return nil
}

// artifactReport renders one per-artifact accounting line from the
// engine's metrics registry.
func artifactReport(reg *telemetry.Registry, ids []string) []string {
	var out []string
	for _, id := range ids {
		run := reg.Counter(experiment.MetricCellsRun + "." + id).Value()
		hit := reg.Counter(experiment.MetricCellCacheHit + "." + id).Value()
		miss := reg.Counter(experiment.MetricCellCacheMiss + "." + id).Value()
		memo := reg.Counter(experiment.MetricCellMemoHit + "." + id).Value()
		out = append(out, fmt.Sprintf("%-20s %4d / %4d / %4d / %4d", id, run, hit, miss, memo))
	}
	return out
}

// writeEngineMetrics dumps the registry snapshot as CSV and JSON.
func writeEngineMetrics(dir string, reg *telemetry.Registry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	snap := reg.Snapshot()
	var csvBuf, jsonBuf strings.Builder
	csvBuf.WriteString("metric,value\n")
	vals := make(map[string]int64, len(snap))
	for _, s := range snap {
		fmt.Fprintf(&csvBuf, "%s,%d\n", s.Name, s.Value)
		vals[s.Name] = s.Value
	}
	data, err := json.MarshalIndent(vals, "", "  ")
	if err != nil {
		return err
	}
	jsonBuf.Write(data)
	jsonBuf.WriteByte('\n')
	if err := os.WriteFile(filepath.Join(dir, "engine_metrics.csv"), []byte(csvBuf.String()), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "engine_metrics.json"), []byte(jsonBuf.String()), 0o644)
}

// defaultCacheDir places the cache under the user cache directory.
func defaultCacheDir() string {
	dir, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(dir, "instrsample", "experiments")
}
