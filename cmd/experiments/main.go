// Command experiments regenerates the paper's tables and figures on the
// synthetic benchmark suite.
//
//	experiments                    # everything, full scale, ASCII
//	experiments -artifact table4   # one artifact
//	experiments -scale 0.25        # faster, smaller workloads
//	experiments -markdown -o results.md
//	experiments -bench javac,db    # restrict the suite
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"instrsample/internal/experiment"
)

func main() {
	var (
		artifact = flag.String("artifact", "", "one of table1..table5, figure7, figure8a, figure8b (default: all)")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		markdown = flag.Bool("markdown", false, "emit markdown instead of ASCII tables")
		outPath  = flag.String("o", "", "write to file instead of stdout")
		benches  = flag.String("bench", "", "comma-separated benchmark subset")
		noICache = flag.Bool("no-icache", false, "disable the i-cache model")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	cfg := experiment.Config{Scale: *scale, ICache: !*noICache}
	if *benches != "" {
		for _, b := range strings.Split(*benches, ",") {
			cfg.Benchmarks = append(cfg.Benchmarks, strings.TrimSpace(b))
		}
	}
	if !*quiet {
		cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	type job struct {
		id  string
		gen experiment.Generator
	}
	var jobs []job
	if *artifact != "" {
		gen, err := experiment.ByID(*artifact)
		if err != nil {
			fatal(err)
		}
		jobs = append(jobs, job{*artifact, gen})
	} else {
		for _, e := range experiment.All() {
			jobs = append(jobs, job{e.ID, e.Gen})
		}
	}

	for _, j := range jobs {
		start := time.Now()
		tab, err := j.gen(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", j.id, err))
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s done in %v\n", j.id, time.Since(start).Round(time.Millisecond))
		}
		if *markdown {
			tab.Markdown(out)
		} else {
			tab.Fprint(out)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
