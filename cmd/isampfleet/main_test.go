package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"instrsample/internal/experiment"
	"instrsample/internal/obs"
	"instrsample/internal/service"
)

func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &out, io.Discard, nil); err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if got := strings.TrimSpace(out.String()); got != experiment.BuildID() {
		t.Errorf("-version printed %q, want build ID %q", got, experiment.BuildID())
	}
}

func TestBadConfig(t *testing.T) {
	if err := run(context.Background(), []string{"-no-such-flag"}, io.Discard, io.Discard, nil); err == nil {
		t.Error("run with unknown flag succeeded, want error")
	}
	if err := run(context.Background(), nil, io.Discard, io.Discard, nil); err == nil {
		t.Error("run with no workers succeeded, want error")
	}
	bad := filepath.Join(t.TempDir(), "fleet.json")
	os.WriteFile(bad, []byte("{"), 0o644) //nolint:errcheck
	if err := run(context.Background(), []string{"-config", bad}, io.Discard, io.Discard, nil); err == nil {
		t.Error("run with malformed config succeeded, want error")
	}
}

// syncBuffer is a bytes.Buffer safe for the coordinator goroutine to
// write while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// smokeWorker is one in-process isampd on a real TCP port, killable
// mid-run by closing its listener and connections.
type smokeWorker struct {
	name string
	url  string
	srv  *service.Server
	hsrv *http.Server
}

func startSmokeWorker(t *testing.T, name string) *smokeWorker {
	t.Helper()
	cache, err := experiment.OpenCache(t.TempDir())
	if err != nil {
		t.Fatalf("worker cache: %v", err)
	}
	w := &smokeWorker{name: name}
	w.srv = service.New(service.Config{
		Workers:    2,
		QueueDepth: 32,
		Cache:      cache,
		Obs:        obs.NewState(obs.Options{Mode: obs.ModeSpans}),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("worker listen: %v", err)
	}
	w.url = "http://" + ln.Addr().String()
	w.hsrv = &http.Server{Handler: w.srv.Handler()}
	go w.hsrv.Serve(ln) //nolint:errcheck // closed by kill or cleanup
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		w.srv.Shutdown(ctx) //nolint:errcheck
		w.hsrv.Close()
	})
	return w
}

// kill tears the worker's HTTP side down hard: the listener closes and
// every open connection (including the coordinator's SSE streams) drops.
func (w *smokeWorker) kill() { w.hsrv.Close() }

func src(n int64) string {
	return fmt.Sprintf(`func main() {
entry:
  const i, 0
  const n, %d
  const one, 1
loop:
  cmplt c, i, n
  br c, body, done
body:
  add i, i, one
  jmp loop
done:
  ret i
}`, n)
}

func writeFleetConf(t *testing.T, path string, workers []*smokeWorker) {
	t.Helper()
	type wc struct {
		Name string `json:"name"`
		URL  string `json:"url"`
	}
	var doc struct {
		Workers []wc `json:"workers"`
	}
	for _, w := range workers {
		doc.Workers = append(doc.Workers, wc{w.name, w.url})
	}
	data, _ := json.Marshal(doc)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write config: %v", err)
	}
}

type jobDoc struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Worker string          `json:"worker"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

func terminal(status string) bool {
	return status == "done" || status == "failed" || status == "cancelled"
}

// TestFleetSmoke boots the real coordinator binary path (run with flags
// and a config file) over three in-process workers: a mixed batch with
// duplicates completes, a worker killed mid-run has its cell requeued and
// is then dropped from the topology via SIGHUP, no submitted job is lost,
// and a resubmitted cell is a byte-identical CAS hit.
func TestFleetSmoke(t *testing.T) {
	w0 := startSmokeWorker(t, "w0")
	w1 := startSmokeWorker(t, "w1")
	w2 := startSmokeWorker(t, "w2")
	workers := []*smokeWorker{w0, w1, w2}
	confPath := filepath.Join(t.TempDir(), "fleet.json")
	writeFleetConf(t, confPath, workers)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stderr := &syncBuffer{}
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-config", confPath,
			"-cache-dir", t.TempDir(), "-health-interval", "25ms",
			"-drain", "10s",
		}, io.Discard, stderr, func(a string) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a
	case err := <-done:
		t.Fatalf("coordinator exited early: %v\n%s", err, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatalf("coordinator never came up\n%s", stderr.String())
	}

	get := func(path string) map[string]any {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
		return doc
	}
	view := func(id string) jobDoc {
		t.Helper()
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET %s: %v", id, err)
		}
		defer resp.Body.Close()
		var v jobDoc
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode %s: %v", id, err)
		}
		return v
	}
	waitJob := func(id, what string, cond func(jobDoc) bool) jobDoc {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		var v jobDoc
		for time.Now().Before(deadline) {
			v = view(id)
			if cond(v) {
				return v
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("job %s never reached %s (status=%s worker=%s err=%q)\n%s",
			id, what, v.Status, v.Worker, v.Error, stderr.String())
		return v
	}
	post := func(spec map[string]any) (id, status string) {
		t.Helper()
		body, _ := json.Marshal(spec)
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("post: status %d: %s", resp.StatusCode, msg)
		}
		var acc struct{ ID, Status string }
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			t.Fatalf("decode accept: %v", err)
		}
		return acc.ID, acc.Status
	}

	// Wait for the health handshake: every worker up.
	healthDeadline := time.Now().Add(10 * time.Second)
	for {
		doc := get("/healthz")
		up := 0
		if ws, ok := doc["workers"].(map[string]any); ok {
			for _, v := range ws {
				if m, ok := v.(map[string]any); ok && m["up"] == true {
					up++
				}
			}
		}
		if up == len(workers) {
			break
		}
		if time.Now().After(healthDeadline) {
			t.Fatalf("workers never came up: %v\n%s", doc, stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Mixed batch: distinct cells, an instrumented variant, and
	// duplicates riding the single-flight layer.
	specs := []map[string]any{
		{"source": src(1001)},
		{"source": src(1002)},
		{"source": src(1003)},
		{"source": src(1004), "instrument": []string{"block-count"}},
		{"source": src(1005), "instrument": []string{"edge"}, "variation": "partial"},
		{"source": src(1001)}, // duplicate of [0]
		{"source": src(1003)}, // duplicate of [2]
	}
	var ids []string
	for _, spec := range specs {
		id, _ := post(spec)
		ids = append(ids, id)
	}

	// One long-running cell to kill a worker under.
	longID, _ := post(map[string]any{"source": src(1 << 40)})
	v := waitJob(longID, "running", func(v jobDoc) bool { return v.Status == "running" && v.Worker != "" })
	victim := v.Worker

	// Kill the worker mid-job: the cell must requeue on a survivor.
	for _, w := range workers {
		if w.name == victim {
			w.kill()
		}
	}
	waitJob(longID, "requeued on a survivor", func(v jobDoc) bool {
		return v.Status == "running" && v.Worker != "" && v.Worker != victim
	})

	// SIGHUP reload: drop the dead worker from the topology.
	var live []*smokeWorker
	for _, w := range workers {
		if w.name != victim {
			live = append(live, w)
		}
	}
	writeFleetConf(t, confPath, live)
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatalf("SIGHUP: %v", err)
	}
	reloadDeadline := time.Now().Add(10 * time.Second)
	for {
		doc := get("/healthz")
		names, _ := doc["worker_set"].([]any)
		if len(names) == len(live) {
			break
		}
		if time.Now().After(reloadDeadline) {
			t.Fatalf("reload never removed %s: %v\n%s", victim, doc, stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Zero lost cells: every batch job lands done, duplicates included,
	// with duplicate pairs byte-identical.
	results := make([]string, len(ids))
	for i, id := range ids {
		v := waitJob(id, "done", func(v jobDoc) bool { return terminal(v.Status) })
		if v.Status != "done" {
			t.Fatalf("job %s: status %s (%s)", id, v.Status, v.Error)
		}
		var buf bytes.Buffer
		if err := json.Compact(&buf, v.Result); err != nil {
			t.Fatalf("job %s: bad result: %v", id, err)
		}
		results[i] = buf.String()
	}
	for _, pair := range [][2]int{{0, 5}, {2, 6}} {
		if results[pair[0]] != results[pair[1]] {
			t.Errorf("duplicate results differ:\n%s\n%s", results[pair[0]], results[pair[1]])
		}
	}

	// Resubmission: a CAS hit, terminal in the 202, byte-identical.
	reID, reStatus := post(specs[0])
	if reStatus != "done" {
		t.Errorf("resubmission accepted with status %q, want done (CAS hit)", reStatus)
	}
	rv := view(reID)
	var buf bytes.Buffer
	if err := json.Compact(&buf, rv.Result); err != nil {
		t.Fatalf("resubmission result: %v", err)
	}
	if buf.String() != results[0] {
		t.Errorf("resubmission result differs from original:\n%s\n%s", buf.String(), results[0])
	}

	// Wind down: cancel the long job, then drain the coordinator.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+longID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	resp.Body.Close()
	if v := waitJob(longID, "terminal", func(v jobDoc) bool { return terminal(v.Status) }); v.Status != "cancelled" {
		t.Fatalf("long job: status %s, want cancelled", v.Status)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("coordinator exit: %v\n%s", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("coordinator never drained\n%s", stderr.String())
	}
}
