// Command isampfleet is the distributed experiment fabric's coordinator:
// it fronts a fleet of isampd workers behind the exact single-daemon
// POST /v1/jobs surface, adding cluster-wide single-flight, rendezvous
// sharding with work stealing, propagated backpressure, and a network
// content-addressed result store shared by every node (DESIGN.md §15).
//
//	isampfleet -config fleet.json                # coordinate the fleet
//	isampfleet -worker http://h1:8347 \
//	           -worker http://h2:8347            # inline topology
//	isampfleet -cache-dir /var/cache/fleet \
//	           -cache-max-bytes 104857600        # bounded CAS replica
//	isampfleet -version                          # print the build ID
//
//	POST   /v1/jobs             submit (dedup, shard, 429 + Retry-After)
//	GET    /v1/jobs/{id}        job status, result, attribution ledger
//	GET    /v1/jobs/{id}/events proxied live metrics stream (SSE)
//	DELETE /v1/jobs/{id}        cancel (duplicates detach; last rider aborts)
//	GET    /v1/cas/{addr}       read the coordinator's CAS replica
//	PUT    /v1/cas/{addr}       replicate a result (integrity-checked)
//	GET    /healthz             fleet state: per-worker health + accounting
//	GET    /metrics             Prometheus text exposition
//
// The fleet config file is the JSON form of fabric.FleetConf:
//
//	{"workers": [{"name": "w0", "url": "http://127.0.0.1:8347"}],
//	 "steal_threshold": 2}
//
// SIGHUP re-reads -config and applies it hot: added workers join
// immediately, removed workers drain (they finish their in-flight cells,
// take no new work, and leave once idle — no job is dropped). SIGTERM or
// SIGINT starts the graceful drain, mirroring isampd.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"instrsample/internal/experiment"
	"instrsample/internal/fabric"
	"instrsample/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "isampfleet:", err)
		os.Exit(1)
	}
}

// workerList collects repeated -worker flags.
type workerList []string

func (w *workerList) String() string     { return strings.Join(*w, ",") }
func (w *workerList) Set(v string) error { *w = append(*w, v); return nil }

// loadConf reads the fleet config: the -config file when set, otherwise
// the inline -worker URLs (named w0, w1, ... in order).
func loadConf(path string, inline workerList) (fabric.FleetConf, error) {
	var fc fabric.FleetConf
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return fc, err
		}
		if err := json.Unmarshal(data, &fc); err != nil {
			return fc, fmt.Errorf("%s: %w", path, err)
		}
		return fc, nil
	}
	for i, url := range inline {
		fc.Workers = append(fc.Workers, fabric.WorkerConf{Name: fmt.Sprintf("w%d", i), URL: url})
	}
	return fc, nil
}

// run is main minus the process concerns: flags in args, lifetime bounded
// by ctx (cancellation plays the role of SIGTERM). onReady, when non-nil,
// receives the bound address once the listener is up.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, onReady func(addr string)) error {
	fs := flag.NewFlagSet("isampfleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var workers workerList
	fs.Var(&workers, "worker", "worker base URL (repeatable; alternative to -config)")
	var (
		addr     = fs.String("addr", "127.0.0.1:8447", "listen address (port 0 picks an ephemeral port)")
		confPath = fs.String("config", "", "fleet config JSON (fabric.FleetConf); re-read on SIGHUP")
		slots    = fs.Int("slots", 2, "concurrent dispatches per worker")
		queue    = fs.Int("queue", 256, "queued-cell bound; past it the front door answers 429")
		cacheDir = fs.String("cache-dir", "", "CAS replica directory (empty disables the replica)")
		cacheMax = fs.Int64("cache-max-bytes", 0, "CAS replica byte budget with LRU eviction (0 = unbounded)")
		health   = fs.Duration("health-interval", 500*time.Millisecond, "per-worker health probe cadence")
		drain    = fs.Duration("drain", 30*time.Second, "graceful-drain budget after SIGTERM/SIGINT")
		obsMode  = fs.String("obs", "spans", "observability mode: off, spans, full")
		quiet    = fs.Bool("q", false, "suppress fleet state log lines")
		version  = fs.Bool("version", false, "print the coordinator's build ID and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, experiment.BuildID())
		return nil
	}
	fc, err := loadConf(*confPath, workers)
	if err != nil {
		return err
	}
	if len(fc.Workers) == 0 {
		return fmt.Errorf("no workers: give -config or at least one -worker")
	}
	mode, err := obs.ParseMode(*obsMode)
	if err != nil {
		return err
	}
	logf := func(format string, a ...any) { fmt.Fprintf(stderr, "isampfleet: "+format+"\n", a...) }
	cfg := fabric.Config{
		Fleet:          fc,
		Slots:          *slots,
		QueueDepth:     *queue,
		CacheDir:       *cacheDir,
		CacheMaxBytes:  *cacheMax,
		HealthInterval: *health,
		Obs:            obs.NewState(obs.Options{Mode: mode}),
	}
	if !*quiet {
		cfg.Logf = logf
	}
	c, err := fabric.New(cfg)
	if err != nil {
		return err
	}

	// SIGHUP: hot-reload the fleet topology from -config.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			fc, err := loadConf(*confPath, workers)
			if err != nil {
				logf("reload failed: %v", err)
				continue
			}
			if len(fc.Workers) == 0 {
				logf("reload refused: config has no workers")
				continue
			}
			logf("reloading fleet config (%d workers)", len(fc.Workers))
			c.Reload(fc)
		}
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logf("coordinating %d workers on http://%s (build %s, %d slots/worker, queue %d)",
		len(fc.Workers), ln.Addr(), experiment.BuildID(), *slots, *queue)
	if onReady != nil {
		onReady(ln.Addr().String())
	}
	srv := &http.Server{Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logf("draining (budget %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if derr := c.Shutdown(dctx); derr != nil {
		logf("drain budget exceeded; in-flight cells cancelled")
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	if err := srv.Shutdown(hctx); err != nil {
		srv.Close()
	}
	logf("shutdown complete")
	return nil
}
