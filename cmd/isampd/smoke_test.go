package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestServiceSmoke is the `make service-smoke` CI gate: the whole daemon
// loop on an ephemeral port (under -race via the Makefile) — submit a
// job, stream its events to completion, cancel a long-running job, and
// validate the /metrics exposition format line by line.
func TestServiceSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-j", "2", "-q", "-drain", "10s"},
			io.Discard, io.Discard, func(a string) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon not ready after 10s")
	}

	// 1. Submit a real instrumented job and stream its events end to end.
	id := smokeSubmit(t, base, `{"bench":"db","scale":0.02,"instrument":["call-edge"],"variation":"full","interval":500,"events_interval":1024}`)
	metrics, sawDone := smokeStream(t, base, id)
	if metrics == 0 {
		t.Error("event stream carried no metrics rows")
	}
	if sawDone != "done" {
		t.Errorf("event stream ended with status %q, want done", sawDone)
	}

	// 2. Submit an effectively endless job and cancel it over HTTP; it
	// must resolve as cancelled promptly (the VM stops at the next
	// observation point).
	slow := smokeSubmit(t, base, `{"source":"func main() {\nentry:\n  const i, 0\n  const n, 2305843009213693952\n  const one, 1\nloop:\n  cmplt c, i, n\n  br c, body, done\nbody:\n  add i, i, one\n  jmp loop\ndone:\n  ret i\n}\n"}`)
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+slow, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := smokeStatus(t, base, slow)
		if st == "cancelled" {
			break
		}
		if st == "done" || st == "failed" {
			t.Fatalf("long job resolved %s, want cancelled", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("long job still %s 15s after cancel", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// 3. Validate the metrics endpoint: exposition content type, every
	// line well-formed, and the daemon counters present with the values
	// this exact scenario produced.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content-type %q, want text exposition 0.0.4", ct)
	}
	typeLine := regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	sampleLine := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9]+$`)
	for _, line := range strings.Split(strings.TrimSuffix(string(body), "\n"), "\n") {
		if !typeLine.MatchString(line) && !sampleLine.MatchString(line) {
			t.Errorf("metrics line violates exposition format: %q", line)
		}
	}
	for _, want := range []string{"jobs_accepted 2", "jobs_completed 1", "jobs_cancelled 1", "queue_depth 0"} {
		if !strings.Contains(string(body), want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	// 4. SIGTERM-equivalent drain.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("daemon exit: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not drain within 20s")
	}
}

func smokeSubmit(t *testing.T, base, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var m struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", resp.StatusCode, m.Error)
	}
	return m.ID
}

func smokeStatus(t *testing.T, base, id string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	var v struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	return v.Status
}

// smokeStream consumes the SSE stream until the done event, returning
// the metrics-event count and the done status.
func smokeStream(t *testing.T, base, id string) (int, string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/v1/jobs/%s/events", base, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	metrics, event := 0, ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			if event == "metrics" {
				metrics++
			}
		case strings.HasPrefix(line, "data: ") && event == "done":
			var d struct {
				Status string `json:"status"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &d); err != nil {
				t.Fatalf("bad done payload %q: %v", line, err)
			}
			return metrics, d.Status
		}
	}
	t.Fatalf("stream ended without done (err %v)", sc.Err())
	return 0, ""
}
