package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"instrsample/internal/experiment"
)

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &out, &errb, nil); err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if got := strings.TrimSpace(out.String()); got != experiment.BuildID() {
		t.Errorf("-version printed %q, want build ID %q", got, experiment.BuildID())
	}
}

func TestBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-no-such-flag"}, io.Discard, io.Discard, nil); err == nil {
		t.Error("run with unknown flag succeeded, want error")
	}
	if err := run(context.Background(), []string{"-obs", "verbose"}, io.Discard, io.Discard, nil); err == nil {
		t.Error("run with bad -obs mode succeeded, want error")
	}
	if err := run(context.Background(), []string{"-log-level", "chatty"}, io.Discard, io.Discard, nil); err == nil {
		t.Error("run with bad -log-level succeeded, want error")
	}
}

// syncBuffer is a bytes.Buffer safe for the daemon goroutine to write
// while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDaemonObservability drives the daemon with the full observability
// surface up: -obs full, -trace-dir, -log-level and -debug-addr. A job
// run end to end must surface an attribution ledger, a merged Chrome
// trace (endpoint and on-disk dump), structured log lines correlated by
// job ID, and a live pprof listener.
func TestDaemonObservability(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	traces := t.TempDir()
	stderr := &syncBuffer{}
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-j", "2", "-drain", "10s",
			"-obs", "full", "-trace-dir", traces,
			"-log-level", "debug", "-debug-addr", "127.0.0.1:0",
		}, io.Discard, stderr, func(a string) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon not ready after 10s")
	}

	// /v1/obs reflects the flag.
	r, err := http.Get(base + "/v1/obs")
	if err != nil {
		t.Fatalf("GET /v1/obs: %v", err)
	}
	var om map[string]any
	json.NewDecoder(r.Body).Decode(&om) //nolint:errcheck
	r.Body.Close()
	if om["mode"] != "full" {
		t.Errorf("obs mode = %v, want full", om["mode"])
	}

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"bench":"db","scale":0.01,"instrument":["call-edge"]}`))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&sub) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: status %d id %q", resp.StatusCode, sub.ID)
	}

	deadline := time.Now().Add(60 * time.Second)
	var view struct {
		Status string `json:"status"`
		Error  string `json:"error"`
		Ledger *struct {
			TotalNs int64 `json:"total_ns"`
			Rows    []struct {
				Stage string `json:"stage"`
				Ns    int64  `json:"ns"`
			} `json:"rows"`
		} `json:"ledger"`
	}
	for {
		r, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		if err := json.NewDecoder(r.Body).Decode(&view); err != nil {
			t.Fatalf("decode poll: %v", err)
		}
		r.Body.Close()
		if view.Status == "done" {
			break
		}
		if view.Status == "failed" || view.Status == "cancelled" {
			t.Fatalf("job %s: %s (%s)", sub.ID, view.Status, view.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", sub.ID, view.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The terminal view carries the ledger and its sum invariant holds.
	if view.Ledger == nil || len(view.Ledger.Rows) == 0 {
		t.Fatalf("terminal job has no ledger: %+v", view.Ledger)
	}
	var sum int64
	for _, row := range view.Ledger.Rows {
		sum += row.Ns
	}
	if sum != view.Ledger.TotalNs {
		t.Errorf("ledger rows sum %d != total %d", sum, view.Ledger.TotalNs)
	}

	// Merged Chrome trace over HTTP and in -trace-dir.
	r, err = http.Get(base + "/v1/jobs/" + sub.ID + "/trace")
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
		t.Fatalf("trace endpoint JSON: %v", err)
	}
	r.Body.Close()
	if len(doc.TraceEvents) == 0 {
		t.Error("trace endpoint returned no events")
	}
	if _, err := os.Stat(filepath.Join(traces, sub.ID+".trace.json")); err != nil {
		t.Errorf("trace-dir dump: %v", err)
	}

	// pprof answers on the debug listener (its address is in the log).
	m := regexp.MustCompile(`pprof on (http://[^/\s]+)`).FindStringSubmatch(stderr.String())
	if m == nil {
		t.Fatalf("no pprof address in log:\n%s", stderr.String())
	}
	r, err = http.Get(m[1] + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("GET pprof: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline: %d", r.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("daemon exit: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not drain within 20s")
	}

	// Structured log lines correlate by job ID.
	logs := stderr.String()
	for _, want := range []string{"job accepted", "job finished", "job=" + sub.ID} {
		if !strings.Contains(logs, want) {
			t.Errorf("slog output missing %q:\n%.600s", want, logs)
		}
	}
}

// TestDaemonLifecycle drives the full daemon loop in-process: bind an
// ephemeral port, submit a job over real HTTP, read the result and the
// metrics endpoint, then cancel the context (the SIGTERM path) and
// require a clean drain.
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-j", "2", "-drain", "10s", "-cache-dir", t.TempDir()},
			io.Discard, io.Discard, func(a string) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon not ready after 10s")
	}

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"bench":"db","scale":0.01,"instrument":["call-edge"]}`))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: status %d id %q", resp.StatusCode, sub.ID)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		var v struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			t.Fatalf("decode poll: %v", err)
		}
		r.Body.Close()
		if v.Status == "done" {
			break
		}
		if v.Status == "failed" || v.Status == "cancelled" {
			t.Fatalf("job %s: %s (%s)", sub.ID, v.Status, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", sub.ID, v.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	r, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if !strings.Contains(string(body), "jobs_completed 1") {
		t.Errorf("metrics missing jobs_completed 1:\n%s", body)
	}

	cancel() // the SIGTERM path
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("daemon exit: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not drain within 20s")
	}
}
