package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"instrsample/internal/experiment"
)

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &out, &errb, nil); err != nil {
		t.Fatalf("run -version: %v", err)
	}
	if got := strings.TrimSpace(out.String()); got != experiment.BuildID() {
		t.Errorf("-version printed %q, want build ID %q", got, experiment.BuildID())
	}
}

func TestBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-no-such-flag"}, io.Discard, io.Discard, nil); err == nil {
		t.Error("run with unknown flag succeeded, want error")
	}
}

// TestDaemonLifecycle drives the full daemon loop in-process: bind an
// ephemeral port, submit a job over real HTTP, read the result and the
// metrics endpoint, then cancel the context (the SIGTERM path) and
// require a clean drain.
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-j", "2", "-drain", "10s", "-cache-dir", t.TempDir()},
			io.Discard, io.Discard, func(a string) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon not ready after 10s")
	}

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"bench":"db","scale":0.01,"instrument":["call-edge"]}`))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: status %d id %q", resp.StatusCode, sub.ID)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		var v struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			t.Fatalf("decode poll: %v", err)
		}
		r.Body.Close()
		if v.Status == "done" {
			break
		}
		if v.Status == "failed" || v.Status == "cancelled" {
			t.Fatalf("job %s: %s (%s)", sub.ID, v.Status, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", sub.ID, v.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	r, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if !strings.Contains(string(body), "jobs_completed 1") {
		t.Errorf("metrics missing jobs_completed 1:\n%s", body)
	}

	cancel() // the SIGTERM path
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("daemon exit: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not drain within 20s")
	}
}
