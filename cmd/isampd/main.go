// Command isampd is the profiling-as-a-service daemon: a long-running
// HTTP server that accepts instrumentation jobs (assembly sources,
// suite benchmarks, or scenario workload-family members — all with the
// isamp flag vocabulary), runs them on a
// bounded worker pool over the experiment engine's memo table and
// on-disk cache, and exposes results, live metrics streams and a
// Prometheus endpoint.
//
//	isampd                             # listen on 127.0.0.1:8347
//	isampd -addr 127.0.0.1:0 -j 8      # ephemeral port, 8 workers
//	isampd -cache-dir ~/.cache/isamp   # share isamp/experiments results
//	isampd -obs spans                  # span chains + attribution ledgers
//	isampd -obs full -trace-dir /tmp/t # + per-run VM traces, dumped per job
//	isampd -debug-addr 127.0.0.1:6060  # net/http/pprof self-profiling
//	isampd -version                    # print the cache-keying build ID
//
//	POST   /v1/jobs             submit a job (429 + Retry-After when full)
//	GET    /v1/jobs/{id}        job status, result and attribution ledger
//	GET    /v1/jobs/{id}/events live metrics stream (Server-Sent Events)
//	GET    /v1/jobs/{id}/trace  merged Chrome trace (service spans + VM events)
//	DELETE /v1/jobs/{id}        cancel (stops within one observation interval)
//	GET    /v1/obs              observability mode and span-ring accounting
//	PUT    /v1/obs              flip the mode at runtime: {"mode":"off|spans|full"}
//	GET    /healthz             liveness and drain state
//	GET    /metrics             Prometheus text exposition
//
// SIGTERM/SIGINT starts the graceful drain (DESIGN.md §10): submissions
// get 503, in-flight jobs get the -drain budget to finish, stragglers
// are cancelled at their next observation point, then the listener
// closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"instrsample/internal/experiment"
	"instrsample/internal/obs"
	"instrsample/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "isampd:", err)
		os.Exit(1)
	}
}

// run is main minus the process concerns: flags in args, output on the
// given writers, lifetime bounded by ctx (cancellation plays the role of
// SIGTERM). onReady, when non-nil, receives the bound address once the
// listener is up — tests use it instead of parsing the log line.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, onReady func(addr string)) error {
	fs := flag.NewFlagSet("isampd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8347", "listen address (port 0 picks an ephemeral port)")
		workers  = fs.Int("j", runtime.GOMAXPROCS(0), "worker-pool size: jobs running concurrently")
		queue    = fs.Int("queue", 64, "accepted-job queue depth; a full queue answers 429")
		cacheDir = fs.String("cache-dir", "", "on-disk result cache directory (empty disables)")
		cacheMax = fs.Int64("cache-max-bytes", 0, "result cache byte budget with LRU eviction (0 = unbounded)")
		drain    = fs.Duration("drain", 30*time.Second, "graceful-drain budget after SIGTERM/SIGINT")
		quiet    = fs.Bool("q", false, "suppress per-job log lines")
		obsMode  = fs.String("obs", "off", "observability mode: off, spans (job span chains + ledgers), full (+ per-run VM traces)")
		traceDir = fs.String("trace-dir", "", "dump each finished traced job's merged Chrome trace here (empty disables)")
		logLevel = fs.String("log-level", "", "structured log level: debug, info, warn or error (empty disables slog output)")
		debug    = fs.String("debug-addr", "", "listen address for net/http/pprof self-profiling (empty disables)")
		version  = fs.Bool("version", false, "print the cache-keying build ID and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, experiment.BuildID())
		return nil
	}
	var cache *experiment.Cache
	if *cacheDir != "" {
		c, err := experiment.OpenCache(*cacheDir)
		if err == nil && *cacheMax > 0 {
			err = c.SetMaxBytes(*cacheMax)
		}
		if err != nil {
			fmt.Fprintln(stderr, "isampd: cache disabled:", err)
		} else {
			cache = c
		}
	}
	mode, err := obs.ParseMode(*obsMode)
	if err != nil {
		return err
	}
	logf := func(format string, a ...any) { fmt.Fprintf(stderr, "isampd: "+format+"\n", a...) }
	scfg := service.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		Cache:      cache,
		Obs:        obs.NewState(obs.Options{Mode: mode}),
		TraceDir:   *traceDir,
	}
	if !*quiet {
		scfg.Logf = logf
	}
	if *logLevel != "" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
			return fmt.Errorf("-log-level: %w", err)
		}
		scfg.Logger = slog.New(slog.NewTextHandler(stderr, &slog.HandlerOptions{Level: lvl}))
	}
	s := service.New(scfg)

	// -debug-addr mounts net/http/pprof on its own listener so the
	// daemon can profile itself without exposing pprof on the job API.
	if *debug != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debug)
		if err != nil {
			return fmt.Errorf("-debug-addr: %w", err)
		}
		defer dln.Close()
		logf("pprof on http://%s/debug/pprof/", dln.Addr())
		dsrv := &http.Server{Handler: dmux}
		go dsrv.Serve(dln) //nolint:errcheck // closed with the listener at exit
		defer dsrv.Close()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logf("listening on http://%s (build %s, %d workers, queue %d, obs %s)",
		ln.Addr(), experiment.BuildID(), *workers, *queue, mode)
	if onReady != nil {
		onReady(ln.Addr().String())
	}
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain (DESIGN.md §10): refuse new jobs, give in-flight ones the
	// budget, hard-cancel past it, then close the HTTP side. The daemon
	// keeps answering status/metrics reads until every job is resolved.
	logf("draining (budget %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if derr := s.Shutdown(dctx); derr != nil {
		logf("drain budget exceeded; in-flight jobs cancelled")
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	if err := srv.Shutdown(hctx); err != nil {
		srv.Close()
	}
	logf("shutdown complete")
	return nil
}
