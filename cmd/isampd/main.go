// Command isampd is the profiling-as-a-service daemon: a long-running
// HTTP server that accepts instrumentation jobs (assembly sources,
// suite benchmarks, or scenario workload-family members — all with the
// isamp flag vocabulary), runs them on a
// bounded worker pool over the experiment engine's memo table and
// on-disk cache, and exposes results, live metrics streams and a
// Prometheus endpoint.
//
//	isampd                             # listen on 127.0.0.1:8347
//	isampd -addr 127.0.0.1:0 -j 8      # ephemeral port, 8 workers
//	isampd -cache-dir ~/.cache/isamp   # share isamp/experiments results
//	isampd -version                    # print the cache-keying build ID
//
//	POST   /v1/jobs             submit a job (429 + Retry-After when full)
//	GET    /v1/jobs/{id}        job status and result
//	GET    /v1/jobs/{id}/events live metrics stream (Server-Sent Events)
//	DELETE /v1/jobs/{id}        cancel (stops within one observation interval)
//	GET    /healthz             liveness and drain state
//	GET    /metrics             Prometheus text exposition
//
// SIGTERM/SIGINT starts the graceful drain (DESIGN.md §10): submissions
// get 503, in-flight jobs get the -drain budget to finish, stragglers
// are cancelled at their next observation point, then the listener
// closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"instrsample/internal/experiment"
	"instrsample/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "isampd:", err)
		os.Exit(1)
	}
}

// run is main minus the process concerns: flags in args, output on the
// given writers, lifetime bounded by ctx (cancellation plays the role of
// SIGTERM). onReady, when non-nil, receives the bound address once the
// listener is up — tests use it instead of parsing the log line.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, onReady func(addr string)) error {
	fs := flag.NewFlagSet("isampd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8347", "listen address (port 0 picks an ephemeral port)")
		workers  = fs.Int("j", runtime.GOMAXPROCS(0), "worker-pool size: jobs running concurrently")
		queue    = fs.Int("queue", 64, "accepted-job queue depth; a full queue answers 429")
		cacheDir = fs.String("cache-dir", "", "on-disk result cache directory (empty disables)")
		drain    = fs.Duration("drain", 30*time.Second, "graceful-drain budget after SIGTERM/SIGINT")
		quiet    = fs.Bool("q", false, "suppress per-job log lines")
		version  = fs.Bool("version", false, "print the cache-keying build ID and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, experiment.BuildID())
		return nil
	}
	var cache *experiment.Cache
	if *cacheDir != "" {
		c, err := experiment.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(stderr, "isampd: cache disabled:", err)
		} else {
			cache = c
		}
	}
	logf := func(format string, a ...any) { fmt.Fprintf(stderr, "isampd: "+format+"\n", a...) }
	scfg := service.Config{Workers: *workers, QueueDepth: *queue, Cache: cache}
	if !*quiet {
		scfg.Logf = logf
	}
	s := service.New(scfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logf("listening on http://%s (build %s, %d workers, queue %d)",
		ln.Addr(), experiment.BuildID(), *workers, *queue)
	if onReady != nil {
		onReady(ln.Addr().String())
	}
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain (DESIGN.md §10): refuse new jobs, give in-flight ones the
	// budget, hard-cancel past it, then close the HTTP side. The daemon
	// keeps answering status/metrics reads until every job is resolved.
	logf("draining (budget %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if derr := s.Shutdown(dctx); derr != nil {
		logf("drain budget exceeded; in-flight jobs cancelled")
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	if err := srv.Shutdown(hctx); err != nil {
		srv.Close()
	}
	logf("shutdown complete")
	return nil
}
