package main

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chromeSmoke mirrors the trace-event JSON object form just enough to
// validate what `isamp -trace` writes: chrome://tracing requires every
// event to carry a name and a known phase, and non-metadata events to
// carry a timestamp and process/thread ids.
type chromeSmoke struct {
	TraceEvents []struct {
		Name string          `json:"name"`
		Ph   string          `json:"ph"`
		Ts   *float64        `json:"ts"`
		Pid  *int            `json:"pid"`
		Tid  *int            `json:"tid"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
	OtherData       struct {
		ClockDomain   string `json:"clockDomain"`
		EventsTotal   uint64 `json:"eventsTotal"`
		EventsDropped uint64 `json:"eventsDropped"`
	} `json:"otherData"`
}

// TestTelemetrySmoke is the `make telemetry-smoke` target: run a small
// instrumented benchmark through the real CLI path with -verify, -trace
// and -metrics attached, then validate the trace JSON against the
// trace-event schema and the metrics CSV against its declared header.
// Running under -race (the Makefile does) also exercises the ring
// buffer's atomic head publication.
func TestTelemetrySmoke(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.csv")

	err := cmdBench([]string{
		"-instrument", "call-edge",
		"-variation", "full",
		"-interval", "500",
		"-scale", "0.02",
		"-verify",
		"-trace", tracePath,
		"-trace-cap", "4096",
		"-metrics", metricsPath,
		"-metrics-interval", "10000",
		"compress",
	})
	if err != nil {
		t.Fatalf("isamp bench: %v", err)
	}

	// Trace: must decode as a trace-event object with well-formed events.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeSmoke
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	if doc.OtherData.ClockDomain != "vm-cycles" {
		t.Errorf("clockDomain = %q, want vm-cycles", doc.OtherData.ClockDomain)
	}
	phases := map[string]bool{"B": true, "E": true, "i": true, "M": true}
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			t.Fatalf("event %d has no name", i)
		}
		if !phases[e.Ph] {
			t.Fatalf("event %d has phase %q, want B/E/i/M", i, e.Ph)
		}
		if e.Ph != "M" && (e.Ts == nil || e.Pid == nil || e.Tid == nil) {
			t.Fatalf("event %d (%s %q) missing ts/pid/tid", i, e.Ph, e.Name)
		}
	}
	if doc.OtherData.EventsTotal == 0 {
		t.Error("otherData.eventsTotal is zero")
	}

	// Metrics: header row must start with "cycle" and include the core
	// meter columns; every data row must match the header width.
	f, err := os.Open(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("metrics CSV does not parse: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("metrics CSV has %d rows, want header plus captures", len(rows))
	}
	header := rows[0]
	if header[0] != "cycle" {
		t.Errorf("CSV header starts with %q, want cycle", header[0])
	}
	joined := strings.Join(header, ",")
	for _, col := range []string{"vm.checks", "vm.cycles", "vm.dup.residency_ppm", "vm.overhead.cycles"} {
		if !strings.Contains(joined, col) {
			t.Errorf("CSV header missing column %s (got %s)", col, joined)
		}
	}
	for i, row := range rows[1:] {
		if len(row) != len(header) {
			t.Errorf("CSV row %d has %d fields, header has %d", i+1, len(row), len(header))
		}
	}
}
