package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"instrsample/internal/compile"
	"instrsample/internal/ir"
	"instrsample/internal/oracle"
	"instrsample/internal/scenario"
	"instrsample/internal/vm"
)

// cmdScenario runs seeded workload families as correctness probes:
// every selected family member executes under the runtime invariant
// oracle on BOTH dispatchers and the results must be bit-identical.
// -record serializes one run's trigger and schedule decisions to a
// portable JSON recording; -replay re-executes a recording and
// differentially checks it. The family hash printed at the end is the
// replay receipt: two machines printing the same hash expanded
// byte-identical program sets.
func cmdScenario(args []string) error {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	var (
		specPath   = fs.String("spec", "", "family spec JSON file (see DESIGN.md §13)")
		seed       = fs.Uint64("seed", 0x5ced5, "quick family seed (ignored with -spec)")
		count      = fs.Int("count", 4, "quick family size (ignored with -spec)")
		index      = fs.Int("index", -1, "family member to run (-1 = all)")
		recordPath = fs.String("record", "", "write the run's decision recording as JSON (single member)")
		replayPath = fs.String("replay", "", "replay a recorded run and verify bit-identity (single member)")
		hashOnly   = fs.Bool("hash", false, "print the family hash and exit without running")
	)
	o := &options{}
	fs.StringVar(&o.instrument, "instrument", "call-edge", "instrumentations")
	fs.StringVar(&o.variation, "variation", "full", "framework variation")
	fs.Int64Var(&o.interval, "interval", 1000, "sample interval")
	fs.StringVar(&o.trig, "trigger", "counter", "trigger kind")
	fs.Uint64Var(&o.period, "period", 3330000, "timer period (cycles)")
	fs.Int64Var(&o.jitter, "jitter", 0, "randomized trigger jitter")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("scenario takes no positional arguments")
	}

	fam, err := loadFamily(*specPath, *seed, *count)
	if err != nil {
		return err
	}
	famHash, err := fam.Hash()
	if err != nil {
		return err
	}
	if *hashOnly {
		fmt.Printf("family %s: %d programs\nhash: %s\n", fam.Name, fam.Count, famHash)
		return nil
	}

	first, last := 0, fam.Count-1
	if *index >= 0 {
		if *index >= fam.Count {
			return fmt.Errorf("-index %d out of range [0, %d)", *index, fam.Count)
		}
		first, last = *index, *index
	}
	if (*recordPath != "" || *replayPath != "") && first != last {
		return fmt.Errorf("-record/-replay need a single member; add -index N")
	}
	if *recordPath != "" && *replayPath != "" {
		return fmt.Errorf("-record and -replay are mutually exclusive")
	}

	for i := first; i <= last; i++ {
		prog, err := fam.Program(i)
		if err != nil {
			return err
		}
		res, err := compileScenario(o, prog)
		if err != nil {
			return fmt.Errorf("%s/%d: compile: %w", fam.Name, i, err)
		}
		switch {
		case *replayPath != "":
			if err := replayMember(fam, i, res, *replayPath); err != nil {
				return err
			}
		case *recordPath != "":
			if err := recordMember(fam, i, o, res, *recordPath); err != nil {
				return err
			}
		default:
			if err := probeMember(fam, i, o, res); err != nil {
				return err
			}
		}
	}
	fmt.Printf("family hash: %s\n", famHash)
	return nil
}

// loadFamily reads the spec file, or builds the default-shaped quick
// family from -seed/-count.
func loadFamily(path string, seed uint64, count int) (*scenario.Family, error) {
	if path == "" {
		fam := scenario.DefaultFamily(seed, count)
		if err := fam.Validate(); err != nil {
			return nil, err
		}
		return fam, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return scenario.ReadFamily(f)
}

func compileScenario(o *options, prog *ir.Program) (*compile.Result, error) {
	instrs, err := o.instrumenters()
	if err != nil {
		return nil, err
	}
	fw, err := o.framework()
	if err != nil {
		return nil, err
	}
	return compile.Compile(prog, compile.Options{Instrumenters: instrs, Framework: fw})
}

// probeMember runs one family member under the oracle on both
// dispatchers and requires bit-identical results.
func probeMember(fam *scenario.Family, i int, o *options, res *compile.Result) error {
	var outs [2]*vm.Result
	for d, ref := range []bool{false, true} {
		trig, err := o.trigger()
		if err != nil {
			return err
		}
		orc := oracle.New()
		outs[d], err = vm.New(res.Prog, vm.Config{
			Trigger:   trig,
			Handlers:  res.Handlers,
			Observer:  orc,
			Reference: ref,
		}).Run()
		if err != nil {
			return fmt.Errorf("%s/%d (reference=%v): %w", fam.Name, i, ref, err)
		}
		if err := orc.Finish(outs[d].Stats); err != nil {
			return fmt.Errorf("%s/%d (reference=%v): oracle: %w", fam.Name, i, ref, err)
		}
	}
	if outs[0].Stats != outs[1].Stats || outs[0].Return != outs[1].Return {
		return fmt.Errorf("%s/%d: dispatchers diverge:\n  fast:      %+v\n  reference: %+v",
			fam.Name, i, outs[0].Stats, outs[1].Stats)
	}
	s := outs[0].Stats
	fmt.Printf("%s/%d: ok  cycles=%d instrs=%d checks=%d samples=%d probes=%d  (oracle clean, dispatchers bit-identical)\n",
		fam.Name, i, s.Cycles, s.Instrs, s.Checks, s.CheckFires, s.Probes)
	return nil
}

// recordMember records one member's run (oracle installed), verifies
// the recording replays on both dispatchers, and writes it as JSON.
func recordMember(fam *scenario.Family, i int, o *options, res *compile.Result, path string) error {
	trig, err := o.trigger()
	if err != nil {
		return err
	}
	orc := oracle.New()
	rec, live, err := scenario.Record(res.Prog, vm.Config{
		Trigger:  trig,
		Handlers: res.Handlers,
		Observer: orc,
	})
	if err != nil {
		return fmt.Errorf("%s/%d: %w", fam.Name, i, err)
	}
	if err := orc.Finish(live.Stats); err != nil {
		return fmt.Errorf("%s/%d: oracle: %w", fam.Name, i, err)
	}
	for _, ref := range []bool{false, true} {
		if _, err := scenario.Replay(res.Prog, vm.Config{Handlers: res.Handlers, Reference: ref}, rec); err != nil {
			return fmt.Errorf("%s/%d: recording failed self-replay (reference=%v): %w", fam.Name, i, ref, err)
		}
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s/%d: recorded %d trigger polls (%d fires), %d schedule picks -> %s\n",
		fam.Name, i, rec.Trigger.Polls, rec.Trigger.Fires, rec.Sched.Picks, path)
	return nil
}

// replayMember replays a recording against one member on both
// dispatchers.
func replayMember(fam *scenario.Family, i int, res *compile.Result, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rec scenario.Recording
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for _, ref := range []bool{false, true} {
		if _, err := scenario.Replay(res.Prog, vm.Config{Handlers: res.Handlers, Reference: ref}, &rec); err != nil {
			return fmt.Errorf("%s/%d (reference=%v): %w", fam.Name, i, ref, err)
		}
	}
	fmt.Printf("%s/%d: replay ok on both dispatchers (%d polls, %d picks, stats bit-identical)\n",
		fam.Name, i, rec.Trigger.Polls, rec.Sched.Picks)
	return nil
}
