// Command isamp assembles, instruments, transforms and runs programs in
// the VM, exposing the full sampling-framework pipeline from the command
// line:
//
//	isamp run prog.vasm
//	isamp run -instrument call-edge,field-access -variation full -interval 1000 prog.vasm
//	isamp run -instrument field-access -trigger timer -period 100000 prog.vasm
//	isamp disasm -instrument call-edge -variation partial prog.vasm
//	isamp bench -instrument call-edge,field-access -interval 1000 compress
//
// Profiles are printed after the run; -top controls how many entries.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"instrsample/internal/asm"
	"instrsample/internal/bench"
	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/experiment"
	"instrsample/internal/instr"
	"instrsample/internal/ir"
	"instrsample/internal/oracle"
	"instrsample/internal/profile"
	"instrsample/internal/telemetry"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:], false)
	case "disasm":
		err = cmdRun(os.Args[2:], true)
	case "bench":
		err = cmdBench(os.Args[2:])
	case "overlap":
		err = cmdOverlap(os.Args[2:])
	case "scenario":
		err = cmdScenario(os.Args[2:])
	case "version", "-version", "--version":
		// The build ID keys the experiment engine's on-disk result cache;
		// isamp, experiments and isampd all print the same one.
		fmt.Println(experiment.BuildID())
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "isamp:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  isamp run    [flags] prog.vasm   assemble, compile and execute a program
  isamp disasm [flags] prog.vasm   print the compiled (and transformed) IR
  isamp bench  [flags] <name>      run a suite benchmark (see -list)
  isamp overlap a.json b.json      overlap %% of two saved profiles (-json output)
  isamp scenario [flags]           run a seeded workload family as correctness
                                   probes: every member executes under the oracle
                                   on both dispatchers, bit-identical or it fails;
                                   -spec FILE | -seed N -count N select the family,
                                   -index N one member, -record/-replay FILE
                                   serialize and re-verify a run's trigger and
                                   schedule decisions, -hash prints the receipt
  isamp version                    print the cache-keying build ID

flags (run/disasm/bench):
  -instrument LIST   comma-separated: call-edge,field-access,edge,block-count,
                     path,value,cct,cct-sampled
  -variation NAME    full | partial | nodup | hybrid (requires -instrument)
  -yieldopt          apply the yieldpoint optimization
  -interval N        counter trigger sample interval (default 1000)
  -trigger NAME      counter | perthread | timer | random | never | always |
                     faulty-timer (period/jitter fault injection)
  -period N          timer trigger period in cycles (default 3330000 = 10ms @333MHz)
  -jitter N          randomized trigger jitter (default interval/10)
  -icache            enable the i-cache model
  -verify            attach the runtime invariant oracle (DESIGN.md §8) and
                     fail the run on any sampling-invariant violation
  -trace FILE        record a ring-buffered execution trace and write it as
                     Chrome trace-event JSON (open in chrome://tracing or
                     https://ui.perfetto.dev); composes with -verify
  -trace-cap N       per-thread trace ring capacity in events (default 65536;
                     oldest events are overwritten and counted as drops)
  -metrics FILE      record a metrics time series; written as CSV, or JSON
                     when FILE ends in .json
  -metrics-interval N  metrics capture cadence in VM cycles (default 65536)
  -top N             profile entries to print (default 10)
  -json              emit profiles as JSON (all entries)
  -scale F           benchmark scale (bench only, default 0.1)
  -list              list benchmarks (bench only)
`)
}

type options struct {
	jsonOut    bool
	instrument string
	variation  string
	yieldopt   bool
	interval   int64
	trig       string
	period     uint64
	jitter     int64
	icache     bool
	verify     bool
	tracePath  string
	traceCap   int
	metricsOut string
	metricsInt uint64
	top        int
	scale      float64
	list       bool
}

func parseFlags(name string, args []string) (*options, []string, error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	o := &options{}
	fs.StringVar(&o.instrument, "instrument", "", "instrumentations")
	fs.StringVar(&o.variation, "variation", "", "framework variation")
	fs.BoolVar(&o.yieldopt, "yieldopt", false, "yieldpoint optimization")
	fs.Int64Var(&o.interval, "interval", 1000, "sample interval")
	fs.StringVar(&o.trig, "trigger", "counter", "trigger kind")
	fs.Uint64Var(&o.period, "period", 3330000, "timer period (cycles)")
	fs.Int64Var(&o.jitter, "jitter", 0, "randomized trigger jitter")
	fs.BoolVar(&o.icache, "icache", false, "enable i-cache model")
	fs.BoolVar(&o.verify, "verify", false, "attach the runtime invariant oracle")
	fs.StringVar(&o.tracePath, "trace", "", "write a Chrome trace-event JSON execution trace")
	fs.IntVar(&o.traceCap, "trace-cap", 1<<16, "per-thread trace ring capacity (events)")
	fs.StringVar(&o.metricsOut, "metrics", "", "write a metrics time series (CSV, or JSON if the path ends in .json)")
	fs.Uint64Var(&o.metricsInt, "metrics-interval", 1<<16, "metrics capture cadence in cycles")
	fs.IntVar(&o.top, "top", 10, "profile entries to print")
	fs.Float64Var(&o.scale, "scale", 0.1, "benchmark scale")
	fs.BoolVar(&o.list, "list", false, "list benchmarks")
	fs.BoolVar(&o.jsonOut, "json", false, "emit profiles as JSON")
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	return o, fs.Args(), nil
}

func (o *options) instrumenters() ([]instr.Instrumenter, error) {
	if o.instrument == "" {
		return nil, nil
	}
	var out []instr.Instrumenter
	for _, name := range strings.Split(o.instrument, ",") {
		switch strings.TrimSpace(name) {
		case "call-edge":
			out = append(out, &instr.CallEdge{})
		case "field-access":
			out = append(out, &instr.FieldAccess{})
		case "edge":
			out = append(out, &instr.EdgeProfile{})
		case "block-count":
			out = append(out, &instr.BlockCount{})
		case "path":
			out = append(out, &instr.PathProfile{})
		case "value":
			out = append(out, &instr.ValueProfile{})
		case "cct":
			out = append(out, &instr.CCT{})
		case "cct-sampled":
			out = append(out, &instr.SampledCCT{})
		case "":
		default:
			return nil, fmt.Errorf("unknown instrumentation %q", name)
		}
	}
	return out, nil
}

func (o *options) framework() (*core.Options, error) {
	if o.variation == "" {
		if o.yieldopt {
			return nil, fmt.Errorf("-yieldopt requires -variation")
		}
		return nil, nil
	}
	var v core.Variation
	switch o.variation {
	case "full":
		v = core.FullDuplication
	case "partial":
		v = core.PartialDuplication
	case "nodup":
		v = core.NoDuplication
	case "hybrid":
		v = core.Hybrid
	default:
		return nil, fmt.Errorf("unknown variation %q (want full, partial, nodup, hybrid)", o.variation)
	}
	return &core.Options{Variation: v, YieldpointOpt: o.yieldopt}, nil
}

func (o *options) trigger() (trigger.Trigger, error) {
	switch o.trig {
	case "counter":
		return trigger.NewCounter(o.interval), nil
	case "perthread":
		return trigger.NewPerThread(o.interval), nil
	case "timer":
		return trigger.NewTimer(o.period), nil
	case "faulty-timer":
		j := uint64(o.jitter)
		if j == 0 {
			j = o.period / 2
		}
		return trigger.NewFaultyTimer(o.period, j, 0, 1), nil
	case "random":
		j := o.jitter
		if j == 0 {
			j = o.interval / 10
		}
		return trigger.NewRandomized(o.interval, j, 1), nil
	case "never":
		return trigger.Never{}, nil
	case "always":
		return trigger.Always{}, nil
	default:
		return nil, fmt.Errorf("unknown trigger %q", o.trig)
	}
}

func (o *options) execute(prog *ir.Program, disasmOnly bool) error {
	instrs, err := o.instrumenters()
	if err != nil {
		return err
	}
	fw, err := o.framework()
	if err != nil {
		return err
	}
	res, err := compile.Compile(prog, compile.Options{Instrumenters: instrs, Framework: fw})
	if err != nil {
		return err
	}
	if disasmOnly {
		ir.FprintProgram(os.Stdout, res.Prog)
		fmt.Printf("; code size %d bytes (checking %d, duplicated %d)\n",
			res.CodeSize, res.CheckingCodeSize, res.DuplicatedCodeSize)
		if fw != nil {
			fmt.Printf("; framework: %s\n", res.FrameworkStats)
		}
		return nil
	}
	trig, err := o.trigger()
	if err != nil {
		return err
	}
	cfg := vm.Config{Trigger: trig, Handlers: res.Handlers}
	if o.icache {
		cfg.ICache = vm.DefaultICache()
	}
	// Observers compose: the oracle, the trace recorder and the meter can
	// all watch one run (vm.CombineObservers elides the absent ones).
	var observers []vm.Observer
	var orc *oracle.Oracle
	if o.verify {
		orc = oracle.New()
		observers = append(observers, orc)
	}
	var tr *telemetry.Trace
	if o.tracePath != "" {
		tr = telemetry.NewTrace(o.traceCap)
		observers = append(observers, tr)
	}
	var meter *telemetry.Meter
	if o.metricsOut != "" {
		meter = telemetry.NewMeter(telemetry.NewRegistry(), trig.Name(), o.metricsInt, nil)
		observers = append(observers, meter)
	}
	cfg.Observer = vm.CombineObservers(observers...)
	v := vm.New(res.Prog, cfg)
	if tr != nil {
		tr.SetClock(v)
	}
	if meter != nil {
		meter.SetClock(v)
	}
	out, err := v.Run()
	if err != nil {
		return err
	}
	if orc != nil {
		if err := orc.Finish(out.Stats); err != nil {
			return fmt.Errorf("invariant oracle: %w", err)
		}
		fmt.Printf("oracle: ok (%d events observed, %d expected property-1 excesses)\n",
			orc.Events(), orc.ExpectedPropertyViolations())
	}
	if tr != nil {
		if err := writeTrace(o.tracePath, tr); err != nil {
			return err
		}
		var total uint64
		for tid := 0; tid < tr.Threads(); tid++ {
			total += tr.Total(tid)
		}
		fmt.Printf("trace: %d events (%d dropped) on %d threads -> %s\n",
			total, tr.TotalDrops(), tr.Threads(), o.tracePath)
	}
	if meter != nil {
		meter.Finish()
		if err := writeMetrics(o.metricsOut, meter.Series()); err != nil {
			return err
		}
		fmt.Printf("metrics: %d captures every %d cycles -> %s\n",
			len(meter.Series().Rows), o.metricsInt, o.metricsOut)
	}
	fmt.Printf("result: %d\n", out.Return)
	if len(out.Output) > 0 {
		fmt.Printf("output: %v\n", out.Output)
	}
	s := out.Stats
	fmt.Printf("cycles: %d  instrs: %d  entries: %d  backedges: %d\n",
		s.Cycles, s.Instrs, s.MethodEntries, s.Backedges)
	if s.Checks > 0 {
		fmt.Printf("checks: %d  samples: %d  probes: %d\n", s.Checks, s.CheckFires, s.Probes)
	}
	if s.ICacheMisses > 0 {
		fmt.Printf("icache misses: %d\n", s.ICacheMisses)
	}
	for _, rt := range res.Runtimes {
		if o.jsonOut {
			data, err := json.MarshalIndent(rt.Profile(), "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(data))
			continue
		}
		rt.Profile().Fprint(os.Stdout, o.top)
	}
	return nil
}

// writeTrace exports the trace recorder as Chrome trace-event JSON.
func writeTrace(path string, tr *telemetry.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics exports the meter's time series, choosing the format from
// the file extension (.json = JSON, anything else = CSV).
func writeMetrics(path string, s *telemetry.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := s.WriteCSV
	if strings.HasSuffix(path, ".json") {
		werr = s.WriteJSON
	}
	if err := werr(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdRun(args []string, disasmOnly bool) error {
	o, rest, err := parseFlags("run", args)
	if err != nil {
		return err
	}
	if len(rest) != 1 {
		return fmt.Errorf("expected exactly one .vasm file")
	}
	src, err := os.ReadFile(rest[0])
	if err != nil {
		return err
	}
	prog, err := asm.Assemble(rest[0], string(src))
	if err != nil {
		return err
	}
	return o.execute(prog, disasmOnly)
}

// cmdOverlap computes the paper's overlap-percentage metric between two
// profiles previously saved with -json.
func cmdOverlap(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("expected exactly two profile JSON files")
	}
	load := func(path string) (*profile.Profile, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var p profile.Profile
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &p, nil
	}
	a, err := load(args[0])
	if err != nil {
		return err
	}
	b, err := load(args[1])
	if err != nil {
		return err
	}
	fmt.Printf("%s (%d events, %d samples) vs %s (%d events, %d samples)\n",
		a.Name, a.NumEvents(), a.Total(), b.Name, b.NumEvents(), b.Total())
	fmt.Printf("overlap: %.2f%%\n", profile.Overlap(a, b))
	return nil
}

func cmdBench(args []string) error {
	o, rest, err := parseFlags("bench", args)
	if err != nil {
		return err
	}
	if o.list {
		for _, b := range bench.Suite() {
			fmt.Printf("%-12s %s\n", b.Name, b.Description)
		}
		return nil
	}
	if len(rest) != 1 {
		return fmt.Errorf("expected exactly one benchmark name (use -list)")
	}
	b, err := bench.ByName(rest[0])
	if err != nil {
		return err
	}
	return o.execute(b.Build(o.scale), false)
}
