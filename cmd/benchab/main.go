// Command benchab runs the interleaved A/B/C interpreter comparison
// behind BENCH_PR7.json and the `make bench-ab` / `make fusion-smoke`
// targets.
//
// The host is shared and its available throughput swings between time
// windows, so absolute numbers from separate runs are only indicative
// (see BENCHMARKING.md). benchab therefore measures all three
// configurations — fused fast path, unfused fast path, retained
// reference dispatcher — inside one process, rotating through them
// within each round so every configuration samples every time window,
// and reports per-round SAME-WINDOW ratios with their median. That
// median is the number the 2x interpreter target is judged on.
//
//	go run ./cmd/benchab                  # ratio table on stdout
//	go run ./cmd/benchab -o BENCH_PR7.json
//	go run ./cmd/benchab -quick -floor 1.0   # CI fusion-smoke gate
//
// Besides the compress ratio rounds, benchab runs every suite benchmark
// once under the fused configuration and reports its fusion coverage:
// the fused tier's share of executed instructions and the fraction
// retired inside superinstructions (vm.VM.FusionStats).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"instrsample/internal/bench"
	"instrsample/internal/compile"
	"instrsample/internal/ir"
	"instrsample/internal/vm"
)

type config struct {
	name string
	cfg  vm.Config
}

func configs() []config {
	return []config{
		{"fused", vm.Config{}},
		{"unfused", vm.Config{Fusion: vm.FusionOff}},
		{"reference", vm.Config{Reference: true}},
	}
}

// leg runs the compiled program reps times under cfg and returns the
// throughput in M simulated instructions per host second.
func leg(prog *ir.Program, cfg vm.Config, reps int) float64 {
	var instrs uint64
	start := time.Now()
	for i := 0; i < reps; i++ {
		out, err := vm.New(prog, cfg).Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchab: run failed: %v\n", err)
			os.Exit(1)
		}
		instrs += out.Stats.Instrs
	}
	return float64(instrs) / time.Since(start).Seconds() / 1e6
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func r2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }

// r2s rounds a copy of xs to two decimals for the report; gates are
// computed on the unrounded values.
func r2s(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = r2(x)
	}
	return out
}

type fractionRow struct {
	Benchmark     string  `json:"benchmark"`
	TierSharePct  float64 `json:"fused_tier_share_pct"`
	FusedFracPct  float64 `json:"fused_dispatch_fraction_pct"`
	Supers        int     `json:"static_superinstructions"`
	TopKinds      string  `json:"top_kinds"`
	MInstrsPerSec float64 `json:"m_instrs_per_sec"`
}

type report struct {
	PR            int                  `json:"pr"`
	Title         string               `json:"title"`
	Host          string               `json:"host"`
	Methodology   string               `json:"methodology"`
	Rounds        int                  `json:"rounds"`
	RepsPerLeg    int                  `json:"reps_per_leg"`
	Scale         float64              `json:"scale"`
	Throughput    map[string][]float64 `json:"m_instrs_per_sec_by_round"`
	RatioFusedRef []float64            `json:"ratio_fused_vs_reference_by_round"`
	RatioFusedUnf []float64            `json:"ratio_fused_vs_unfused_by_round"`
	RatioSameWin  float64              `json:"ratio_same_window"`
	RatioUnfused  float64              `json:"ratio_fused_vs_unfused"`
	Target        float64              `json:"target"`
	TargetMet     bool                 `json:"target_met"`
	Fractions     []fractionRow        `json:"fused_fraction_by_benchmark"`
	Notes         string               `json:"notes"`
}

func hostName() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":")) +
				" (shared; see methodology)"
		}
	}
	return "unknown"
}

func main() {
	scale := flag.Float64("scale", 0.05, "compress kernel scale for the ratio rounds")
	rounds := flag.Int("rounds", 7, "interleaved measurement rounds")
	legMS := flag.Int("leg-ms", 150, "target duration of one timed leg, milliseconds")
	quick := flag.Bool("quick", false, "CI mode: fewer, shorter rounds and a tiny suite sweep")
	floor := flag.Float64("floor", 0, "exit nonzero unless median fused/unfused ratio >= floor")
	target := flag.Float64("target", 2.0, "fused-vs-reference ratio target")
	out := flag.String("o", "", "write the JSON report to this file")
	pr := flag.Int("pr", 7, "PR number recorded in the report")
	tele := flag.Bool("telemetry", false, "measure observer cost instead: interleaved bare/trace/suppressed legs on an instrumented sampled run")
	window := flag.Uint64("window", 2000, "suppressor dedup window in cycles (with -telemetry)")
	obsAB := flag.Bool("obs", false, "measure service-path observability cost instead: interleaved baseline/off/spans/full daemon legs over real HTTP")
	obsWindow := flag.Int("obs-window-ms", 3000, "fixed wall window of one config per round, milliseconds (with -obs)")
	obsClients := flag.Int("obs-clients", 4, "closed-loop HTTP clients per daemon leg (with -obs)")
	obsScale := flag.Float64("obs-scale", 0.01, "db benchmark scale per job (with -obs)")
	obsFloorOff := flag.Float64("obs-floor-off", 0.99, "gate: median off/baseline throughput ratio floor (with -obs; 0 disables)")
	obsFloorFull := flag.Float64("obs-floor-full", 0.95, "gate: median full/baseline throughput ratio floor (with -obs; 0 disables)")
	flag.Parse()
	roundsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "rounds" {
			roundsSet = true
		}
	})
	if *obsAB && !roundsSet {
		// The gated daemon ratios resolve ~1% differences, so the medians
		// on a small shared host need more samples than the in-process
		// modes do.
		*rounds = 21
	}
	if *quick {
		*rounds, *legMS = 3, 30
		if *obsAB {
			*obsWindow = 400
		}
	}
	if *obsAB {
		obsMain(*obsScale, *rounds, *obsWindow, *obsClients, *obsFloorOff, *obsFloorFull, *out, *pr)
		return
	}
	if *tele {
		telemetryMain(*scale, *rounds, *legMS, *window, *out, *pr)
		return
	}

	prog := bench.Compress(*scale)
	res, err := compile.Compile(prog, compile.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchab: compile: %v\n", err)
		os.Exit(1)
	}

	// Calibrate reps so one leg lasts ~legMS on the slowest
	// configuration (the reference dispatcher), then warm every
	// configuration once outside the timed rounds.
	refOnce := time.Now()
	if _, err := vm.New(res.Prog, vm.Config{Reference: true}).Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchab: calibration run: %v\n", err)
		os.Exit(1)
	}
	per := time.Since(refOnce)
	reps := int(time.Duration(*legMS) * time.Millisecond / per)
	if reps < 1 {
		reps = 1
	}
	for _, c := range configs() {
		leg(res.Prog, c.cfg, 1)
	}

	tput := map[string][]float64{}
	var ratioRef, ratioUnf []float64
	for r := 0; r < *rounds; r++ {
		window := map[string]float64{}
		for _, c := range configs() {
			window[c.name] = leg(res.Prog, c.cfg, reps)
		}
		for name, v := range window {
			tput[name] = append(tput[name], r2(v))
		}
		ratioRef = append(ratioRef, r2(window["fused"]/window["reference"]))
		ratioUnf = append(ratioUnf, r2(window["fused"]/window["unfused"]))
	}
	medRef, medUnf := r2(median(ratioRef)), r2(median(ratioUnf))

	fmt.Printf("compress scale=%g, %d rounds x %d reps/leg, interleaved fused/unfused/reference\n\n",
		*scale, *rounds, reps)
	fmt.Printf("%-10s %14s %14s %14s\n", "round", "fused M-i/s", "unfused M-i/s", "reference M-i/s")
	for r := 0; r < *rounds; r++ {
		fmt.Printf("%-10d %14.1f %14.1f %14.1f\n", r, tput["fused"][r], tput["unfused"][r], tput["reference"][r])
	}
	fmt.Printf("\n%-28s %8s %8s\n", "same-window ratio", "median", "range")
	fmt.Printf("%-28s %8.2f %.2f-%.2f\n", "fused vs reference", medRef, min(ratioRef), max(ratioRef))
	fmt.Printf("%-28s %8.2f %.2f-%.2f\n", "fused vs unfused", medUnf, min(ratioUnf), max(ratioUnf))
	fmt.Printf("%-28s %8.2f (target_met=%v)\n\n", "target", *target, medRef >= *target)

	// Fusion coverage across the whole suite, one fused run each.
	suiteScale := 0.02
	if *quick {
		suiteScale = 0.002
	}
	var rows []fractionRow
	fmt.Printf("%-12s %10s %10s %8s  %s\n", "benchmark", "tier-share", "fused-frac", "supers", "top kinds")
	for _, b := range bench.Suite() {
		cres, err := compile.Compile(b.Build(suiteScale), compile.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchab: compile %s: %v\n", b.Name, err)
			os.Exit(1)
		}
		m := vm.New(cres.Prog, vm.Config{})
		start := time.Now()
		outr, err := m.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchab: run %s: %v\n", b.Name, err)
			os.Exit(1)
		}
		el := time.Since(start).Seconds()
		fs, total := m.FusionStats(), outr.Stats.Instrs
		row := fractionRow{Benchmark: b.Name, Supers: fs.Supers,
			MInstrsPerSec: r2(float64(total) / el / 1e6)}
		if total > 0 {
			row.TierSharePct = r2(100 * float64(fs.Instrs) / float64(total))
		}
		if fs.Instrs > 0 {
			row.FusedFracPct = r2(100 * float64(fs.Fused) / float64(fs.Instrs))
		}
		row.TopKinds = topKinds(fs.ByKind, 3)
		rows = append(rows, row)
		fmt.Printf("%-12s %9.1f%% %9.1f%% %8d  %s\n",
			row.Benchmark, row.TierSharePct, row.FusedFracPct, row.Supers, row.TopKinds)
	}

	if *out != "" {
		rep := report{
			PR:    *pr,
			Title: "Superinstruction fusion + threaded dispatch for the fast interpreter",
			Host:  hostName(),
			Methodology: "All three configurations run interleaved in one process, rotating " +
				"within each round so each samples every time window; ratios are computed " +
				"per round (same window) and the median is reported. The reference " +
				"dispatcher is the seed interpreter retained unchanged, so " +
				"ratio_same_window is the honest fast-vs-seed comparison. See BENCHMARKING.md.",
			Rounds: *rounds, RepsPerLeg: reps, Scale: *scale,
			Throughput:    tput,
			RatioFusedRef: ratioRef, RatioFusedUnf: ratioUnf,
			RatioSameWin: medRef, RatioUnfused: medUnf,
			Target: *target, TargetMet: medRef >= *target,
			Fractions: rows,
			Notes: "Fusion rides on the PR 2 pure-block tier: seal-time peephole pass " +
				"rewrites hot pairs/triples (measured on the suite's dynamic pair profile) " +
				"into 32-byte superinstructions dispatched by a dense switch the compiler " +
				"lowers to a jump table. A [numToks]func handler table was measured and " +
				"rejected (BenchmarkFusedDispatchStyle: indirect calls force loop state " +
				"through memory). Every fused run is differentially bit-identical to the " +
				"reference dispatcher; traps, cancellation and quantum expiry inside a " +
				"superinstruction reconstruct the original pc via the same prefix-sum " +
				"discipline as pure.go. Observers disable fusion (graceful degradation, " +
				"DESIGN.md §12).",
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchab: marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchab: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}

	if *floor > 0 && medUnf < *floor {
		fmt.Fprintf(os.Stderr, "benchab: FAIL: median fused/unfused ratio %.2f below floor %.2f\n", medUnf, *floor)
		os.Exit(1)
	}
}

func topKinds(byKind map[string]uint64, n int) string {
	type kv struct {
		k string
		v uint64
	}
	var s []kv
	for k, v := range byKind {
		s = append(s, kv{k, v})
	}
	sort.Slice(s, func(i, j int) bool {
		if s[i].v != s[j].v {
			return s[i].v > s[j].v
		}
		return s[i].k < s[j].k
	})
	var parts []string
	for i := 0; i < len(s) && i < n; i++ {
		parts = append(parts, s[i].k)
	}
	return strings.Join(parts, ", ")
}

func min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
