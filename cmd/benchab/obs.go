package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"instrsample/internal/obs"
	"instrsample/internal/service"
	"instrsample/internal/telemetry"
)

// The -obs mode measures what request-scoped tracing costs the service
// path: the same job batch (distinct specs, so the memo cannot serve
// them) runs end to end — HTTP submit, queue, compile, VM run, export —
// against four daemon configurations interleaved within each round:
//
//	baseline  Config.Obs == nil: the obs layer structurally absent,
//	          i.e. the pre-PR daemon
//	off       obs state present, mode off (the nil-trace branch runs)
//	spans     span chains + attribution ledgers per job
//	full      spans + a flight-recorder VM trace attached to every run
//
// Per-round same-window ratios (configured over baseline throughput)
// with their medians are the gated numbers: off must be free (≥ the
// off floor, default 0.99) and full must stay within the watching
// budget (≥ the full floor, default 0.95). The spans/full legs' jobs
// also surface their attribution ledgers; the report embeds the
// queue-wait and vm-run stage quantiles so the ledger is measured by
// the same artifact that prices it.

type obsReport struct {
	PR          int                  `json:"pr"`
	Title       string               `json:"title"`
	Host        string               `json:"host"`
	Methodology string               `json:"methodology"`
	Rounds      int                  `json:"rounds"`
	LegWindowMS int                  `json:"leg_window_ms"`
	Clients     int                  `json:"clients"`
	Workers     int                  `json:"workers"`
	Scale       float64              `json:"scale"`
	Throughput  map[string][]float64 `json:"jobs_per_sec_by_round"`
	RatioOff    []float64            `json:"ratio_off_vs_baseline_by_round"`
	RatioSpans  []float64            `json:"ratio_spans_vs_baseline_by_round"`
	RatioFull   []float64            `json:"ratio_full_vs_baseline_by_round"`
	MedOff      float64              `json:"ratio_off_vs_baseline"`
	MedSpans    float64              `json:"ratio_spans_vs_baseline"`
	MedFull     float64              `json:"ratio_full_vs_baseline"`
	FloorOff    float64              `json:"floor_off"`
	FloorFull   float64              `json:"floor_full"`
	GateOffMet  bool                 `json:"gate_off_met"`
	GateFullMet bool                 `json:"gate_full_met"`
	LedgerJobs  uint64               `json:"ledger_jobs"`
	QueueWaitUs telemetry.Summary    `json:"ledger_queue_wait_us"`
	VMRunUs     telemetry.Summary    `json:"ledger_vm_run_us"`
	Notes       string               `json:"notes"`
}

// obsConfigs enumerates the interleaved daemon configurations. A nil
// state is the structural pre-PR baseline; the others flip the mode on
// one present state. Each state is allocated once and shared by every
// leg of its configuration, matching deployment (a daemon holds one
// long-lived State for its whole life) — constructing a fresh State
// per leg would bill the non-baseline configs ~2% of span-ring
// allocation churn that no real daemon pays per request.
func obsConfigs() []struct {
	name string
	st   *obs.State
} {
	return []struct {
		name string
		st   *obs.State
	}{
		{"baseline", nil},
		{"off", obs.NewState(obs.Options{Mode: obs.ModeOff})},
		{"spans", obs.NewState(obs.Options{Mode: obs.ModeSpans})},
		{"full", obs.NewState(obs.Options{Mode: obs.ModeFull})},
	}
}

// obsLeg boots a fresh daemon with the given obs state and drives it
// closed-loop — clients goroutines each submit a job (distinct specs,
// so the memo cannot serve them), wait for its SSE done event, fetch
// the terminal view, and repeat — for a fixed wall window, returning
// completions per second. A fixed window is what makes the number
// robust on a small shared host: a host stall inside a fixed-batch leg
// extends the whole leg by the straggler's delay, while inside a fixed
// window it costs only the completions that didn't happen. Ledgers
// from terminal views (spans/full legs) fold into the shared stage
// histograms when reg is non-nil.
func obsLeg(st *obs.State, window time.Duration, clients, workers int, scale float64, reg *telemetry.Registry) float64 {
	s := service.New(service.Config{Workers: workers, QueueDepth: clients + workers, Obs: st})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchab: listen: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln) //nolint:errcheck // closed below
	base := "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)   //nolint:errcheck
		srv.Shutdown(ctx) //nolint:errcheck
	}()

	// Every in-flight job holds one SSE connection open, so the pool must
	// cover all clients or the legs churn TCP setup instead of jobs.
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients + workers}}
	defer client.CloseIdleConnections()
	// Start every leg from a collected heap: legs share one process, so
	// without this a leg's GC debt is paid by whichever config runs next
	// — correlated noise the rotation cannot average away.
	runtime.GC()
	start := time.Now()
	deadline := start.Add(window)
	var seq, completed atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if err := obsJob(client, base, int(seq.Add(1)), scale, reg); err != nil {
					errc <- err
					return
				}
				// The job that straddles the deadline is not counted — its
				// tail ran outside the window (equally for every config).
				if time.Now().Before(deadline) {
					completed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		fmt.Fprintf(os.Stderr, "benchab: obs leg: %v\n", err)
		os.Exit(1)
	}
	return float64(completed.Load()) / window.Seconds()
}

// obsJob submits one job (interval varies with i so every spec is a
// distinct cell — the memo must execute each one), waits for its SSE
// done event, and records the terminal view's attribution ledger when
// the daemon emitted one. Waiting on the stream instead of polling
// matters on small hosts: a poll loop tight enough not to quantize leg
// throughput saturates the core with view renders, and the harness
// would be measuring its own traffic, not the daemon's modes.
func obsJob(client *http.Client, base string, i int, scale float64, reg *telemetry.Registry) error {
	spec := fmt.Sprintf(`{"bench":"db","scale":%g,"instrument":["call-edge"],"interval":%d}`,
		scale, 1000+7*i)
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		return err
	}
	var sub struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: status %d err %v", resp.StatusCode, err)
	}
	es, err := client.Get(base + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		return err
	}
	sc := bufio.NewScanner(es.Body)
	done := false
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "event: done" {
			done = true
			break
		}
	}
	es.Body.Close()
	if !done {
		return fmt.Errorf("job %s: SSE stream ended without done (%v)", sub.ID, sc.Err())
	}
	r, err := client.Get(base + "/v1/jobs/" + sub.ID)
	if err != nil {
		return err
	}
	var v struct {
		Status string      `json:"status"`
		Error  string      `json:"error"`
		Ledger *obs.Ledger `json:"ledger"`
	}
	err = json.NewDecoder(r.Body).Decode(&v)
	r.Body.Close()
	if err != nil {
		return err
	}
	if v.Status != "done" {
		return fmt.Errorf("job %s: %s (%s)", sub.ID, v.Status, v.Error)
	}
	if reg != nil && v.Ledger != nil {
		reg.Counter("ledger.jobs").Inc()
		if row, ok := v.Ledger.Row(obs.StageQueueWait); ok {
			reg.Histogram("ledger.queue_wait_us", telemetry.ExpBuckets(1, 26)).
				Observe(uint64(row.Ns / 1e3))
		}
		if row, ok := v.Ledger.Row(obs.StageVMRun); ok {
			reg.Histogram("ledger.vm_run_us", telemetry.ExpBuckets(1, 26)).
				Observe(uint64(row.Ns / 1e3))
		}
	}
	return nil
}

func obsMain(scale float64, rounds, windowMS, clients int, floorOff, floorFull float64, out string, pr int) {
	workers := runtime.GOMAXPROCS(0)
	window := time.Duration(windowMS) * time.Millisecond
	reg := telemetry.NewRegistry()

	cfgs := obsConfigs()

	// Warm every configuration once outside the timed rounds (first-run
	// compilation and scheduler warmup must not land in round 0's legs).
	for _, c := range cfgs {
		obsLeg(c.st, window/8, clients, workers, scale, nil)
	}

	// Each config's per-round window is sliced into short alternating
	// legs (ABAB discipline): on a shared host, CPU-steal bursts run for
	// hundreds of milliseconds, so two long adjacent legs see different
	// steal and the quotient inherits it, while fine alternation spreads
	// each burst across every config. A round's throughput per config is
	// its completions summed over the slices.
	const sliceMS = 250
	slices := windowMS / sliceMS
	if slices < 1 {
		slices = 1
	}
	slice := time.Duration(windowMS/slices) * time.Millisecond

	tput := map[string][]float64{}
	var ratioOff, ratioSpans, ratioFull []float64
	for r := 0; r < rounds; r++ {
		// Rotate the leg order each slice so no configuration always runs
		// in the same position of the alternation — otherwise slow
		// drift on a shared host shows up as a phantom per-config cost.
		w := map[string]float64{}
		for m := 0; m < slices; m++ {
			for i := range cfgs {
				c := cfgs[(r+m+i)%len(cfgs)]
				w[c.name] += obsLeg(c.st, slice, clients, workers, scale, reg) / float64(slices)
			}
		}
		for name, v := range w {
			tput[name] = append(tput[name], r2(v))
		}
		ratioOff = append(ratioOff, w["off"]/w["baseline"])
		ratioSpans = append(ratioSpans, w["spans"]/w["baseline"])
		ratioFull = append(ratioFull, w["full"]/w["baseline"])
	}
	// The gated statistic is the median of the per-round paired ratios
	// (the BENCH_PR7 fusion discipline). Host throughput is
	// non-stationary across a multi-minute session — rounds drift ±15% —
	// so the two sides of an unpaired ratio-of-medians sample different
	// host speeds and inherit the drift; a per-round ratio pairs legs
	// that ran ABAB-interleaved within the same window, which cancels
	// it. The median (not the mean) keeps one steal-mauled round from
	// dragging the gate.
	medOff := r2(median(ratioOff))
	medSpans := r2(median(ratioSpans))
	medFull := r2(median(ratioFull))
	gateOff := medOff >= floorOff
	gateFull := medFull >= floorFull

	fmt.Printf("db scale=%g, %d rounds x %dms/config in %d interleaved %v slices, %d clients, %d workers, baseline/off/spans/full daemons\n\n",
		scale, rounds, windowMS, slices, slice, clients, workers)
	fmt.Printf("%-8s %16s %12s %12s %12s\n", "round", "baseline j/s", "off j/s", "spans j/s", "full j/s")
	for r := 0; r < rounds; r++ {
		fmt.Printf("%-8d %16.1f %12.1f %12.1f %12.1f\n",
			r, tput["baseline"][r], tput["off"][r], tput["spans"][r], tput["full"][r])
	}
	fmt.Printf("\n%-26s %8s %16s\n", "ratio vs baseline", "medians", "per-round range")
	fmt.Printf("%-26s %8.2f %11.2f-%.2f\n", "off", medOff, min(ratioOff), max(ratioOff))
	fmt.Printf("%-26s %8.2f %11.2f-%.2f\n", "spans", medSpans, min(ratioSpans), max(ratioSpans))
	fmt.Printf("%-26s %8.2f %11.2f-%.2f\n", "full", medFull, min(ratioFull), max(ratioFull))
	fmt.Printf("\ngates: off >= %.2f %v, full >= %.2f %v\n", floorOff, gateOff, floorFull, gateFull)

	qw := reg.Histogram("ledger.queue_wait_us", nil).Summarize()
	vr := reg.Histogram("ledger.vm_run_us", nil).Summarize()
	ledgers := reg.Counter("ledger.jobs").Value()
	fmt.Printf("ledgers: %d jobs, queue-wait p50/p99 %d/%dµs, vm-run p50/p99 %d/%dµs\n",
		ledgers, qw.P50, qw.P99, vr.P50, vr.P99)

	if out != "" {
		rep := obsReport{
			PR:    pr,
			Title: "Request-scoped job tracing and attribution ledger: cost of observing the service path",
			Host:  hostName(),
			Methodology: "Closed-loop clients drive distinct instrumented jobs (db benchmark, " +
				"per-job sample interval, so the engine memo executes every one) end to end " +
				"over real HTTP — submit, SSE-wait for the done event, fetch the terminal " +
				"view — for a fixed wall window per leg (completions per second; a fixed " +
				"window keeps one stalled straggler from extending the whole leg). Each " +
				"round's window is sliced into short ABAB-alternating legs so shared-host " +
				"CPU-steal bursts land on every config, " +
				"against four freshly booted daemons per slice: " +
				"obs layer structurally absent (Config.Obs nil — the pre-PR baseline), " +
				"present-but-off, spans, and full (per-run VM flight recorder attached). " +
				"The leg order rotates every round so host drift cannot masquerade as a " +
				"per-config cost. " +
				"The gated statistic is the median of the per-round paired ratios " +
				"(the BENCH_PR7 discipline): host throughput is non-stationary across a " +
				"multi-minute session, so unpaired cross-round statistics inherit the " +
				"drift, while a per-round ratio pairs legs that ran interleaved within " +
				"the same window. Ledger quantiles are bucket-interpolated histogram " +
				"summaries over the spans/full legs' per-job attribution ledgers, as returned " +
				"in the terminal job views. See BENCHMARKING.md.",
			Rounds: rounds, LegWindowMS: windowMS, Clients: clients, Workers: workers, Scale: scale,
			Throughput: tput,
			RatioOff:   r2s(ratioOff), RatioSpans: r2s(ratioSpans), RatioFull: r2s(ratioFull),
			MedOff: medOff, MedSpans: medSpans, MedFull: medFull,
			FloorOff: floorOff, FloorFull: floorFull,
			GateOffMet: gateOff, GateFullMet: gateFull,
			LedgerJobs: ledgers, QueueWaitUs: qw, VMRunUs: vr,
			Notes: "Span chains are gap-free by construction (Begin closes the open stage at " +
				"the instant it opens the next), so the per-job ledger rows sum to the " +
				"end-to-end latency exactly — enforced by test, not rounding. Off-mode cost " +
				"is one atomic mode load plus a nil-pointer branch per lifecycle hook. Full " +
				"mode stays within its 5% budget by design: the VM flight recorder keeps " +
				"only fired checks and probes (cost proportional to the sample rate, not " +
				"the block rate), rides inside the existing metrics observer so VM dispatch " +
				"stays on the single-observer path, uses a small per-job ring, and is " +
				"snapshotted to pointer-free value events at run end so no job retains its " +
				"run's compiled IR or per-event maps (GC ballast otherwise dominates the " +
				"cost; see DESIGN.md §14).",
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchab: marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchab: write %s: %v\n", out, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", out)
	}
	if floorOff > 0 && !gateOff {
		fmt.Fprintf(os.Stderr, "benchab: FAIL: median off/baseline ratio %.2f below floor %.2f\n", medOff, floorOff)
		os.Exit(1)
	}
	if floorFull > 0 && !gateFull {
		fmt.Fprintf(os.Stderr, "benchab: FAIL: median full/baseline ratio %.2f below floor %.2f\n", medFull, floorFull)
		os.Exit(1)
	}
}
