package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"instrsample/internal/bench"
	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/instr"
	"instrsample/internal/telemetry"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

// The -telemetry mode measures the cost of *watching* an instrumented
// sampled run: the same compress kernel (call-edge instrumentation,
// full-duplication framework, counter trigger) executes under three
// observer configurations interleaved within each round —
//
//	bare        nil observer (the PR 4 baseline: pure-block batching stays on)
//	trace       telemetry.Trace ring recorder (every hook records)
//	suppressed  telemetry.Suppressor in front of the same Trace ring
//
// — and reports per-round same-window cost ratios (bare throughput over
// observed throughput) plus the suppressor's exact elision accounting
// from a dedicated single run. BENCH_PR4.json measured the trace
// observer at ~2.4x; this mode quantifies how much of that the
// redundancy suppressor wins back without losing a single countable
// record.

type teleElision struct {
	Forwarded   uint64            `json:"forwarded"`
	Elided      uint64            `json:"elided"`
	ElidedPct   float64           `json:"elided_pct"`
	WindowCyc   uint64            `json:"window_cycles"`
	ByKind      map[string]uint64 `json:"elided_by_kind"`
	ForwardKind map[string]uint64 `json:"forwarded_by_kind"`
}

type teleReport struct {
	PR           int                  `json:"pr"`
	Title        string               `json:"title"`
	Host         string               `json:"host"`
	Methodology  string               `json:"methodology"`
	Rounds       int                  `json:"rounds"`
	RepsPerLeg   int                  `json:"reps_per_leg"`
	Scale        float64              `json:"scale"`
	Interval     uint64               `json:"trigger_interval"`
	Throughput   map[string][]float64 `json:"m_instrs_per_sec_by_round"`
	CostTrace    []float64            `json:"cost_trace_vs_bare_by_round"`
	CostSup      []float64            `json:"cost_suppressed_vs_bare_by_round"`
	SupVsTrace   []float64            `json:"speedup_suppressed_vs_trace_by_round"`
	MedCostTrace float64              `json:"cost_trace_vs_bare"`
	MedCostSup   float64              `json:"cost_suppressed_vs_bare"`
	MedSupTrace  float64              `json:"speedup_suppressed_vs_trace"`
	Elision      teleElision          `json:"elision"`
	Notes        string               `json:"notes"`
}

// teleCompile builds the instrumented sampled compress kernel every
// telemetry leg runs.
func teleCompile(scale float64) *compile.Result {
	res, err := compile.Compile(bench.Compress(scale), compile.Options{
		Instrumenters: []instr.Instrumenter{&instr.CallEdge{}},
		Framework:     &core.Options{Variation: core.FullDuplication},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchab: compile: %v\n", err)
		os.Exit(1)
	}
	return res
}

// teleLeg runs reps sampled runs under a fresh observer built by mk (nil
// for the bare leg) and returns throughput in M simulated instructions
// per host second.
func teleLeg(res *compile.Result, interval int64, reps int, mk func() (vm.Observer, func(telemetry.Clock))) float64 {
	var instrs uint64
	start := time.Now()
	for i := 0; i < reps; i++ {
		cfg := vm.Config{Trigger: trigger.NewCounter(interval), Handlers: res.Handlers}
		var setClock func(telemetry.Clock)
		if mk != nil {
			cfg.Observer, setClock = mk()
		}
		machine := vm.New(res.Prog, cfg)
		if setClock != nil {
			setClock(machine)
		}
		out, err := machine.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchab: run failed: %v\n", err)
			os.Exit(1)
		}
		instrs += out.Stats.Instrs
	}
	return float64(instrs) / time.Since(start).Seconds() / 1e6
}

func telemetryMain(scale float64, rounds, legMS int, window uint64, out string, pr int) {
	const interval = 1000
	res := teleCompile(scale)

	mkTrace := func() (vm.Observer, func(telemetry.Clock)) {
		tr := telemetry.NewTrace(1 << 16)
		return tr, tr.SetClock
	}
	mkSup := func() (vm.Observer, func(telemetry.Clock)) {
		tr := telemetry.NewTrace(1 << 16)
		sup := telemetry.NewSuppressor(tr, window)
		return sup, func(c telemetry.Clock) { tr.SetClock(c); sup.SetClock(c) }
	}

	// Calibrate reps so one leg lasts ~legMS on the slowest configuration
	// (the traced run), then warm each configuration once.
	calStart := time.Now()
	teleLeg(res, interval, 1, mkTrace)
	per := time.Since(calStart)
	reps := int(time.Duration(legMS) * time.Millisecond / per)
	if reps < 1 {
		reps = 1
	}
	teleLeg(res, interval, 1, nil)
	teleLeg(res, interval, 1, mkSup)

	tput := map[string][]float64{}
	var costTrace, costSup, supTrace []float64
	for r := 0; r < rounds; r++ {
		bare := teleLeg(res, interval, reps, nil)
		traced := teleLeg(res, interval, reps, mkTrace)
		suppressed := teleLeg(res, interval, reps, mkSup)
		tput["bare"] = append(tput["bare"], r2(bare))
		tput["trace"] = append(tput["trace"], r2(traced))
		tput["suppressed"] = append(tput["suppressed"], r2(suppressed))
		costTrace = append(costTrace, r2(bare/traced))
		costSup = append(costSup, r2(bare/suppressed))
		supTrace = append(supTrace, r2(suppressed/traced))
	}
	medCT, medCS, medST := r2(median(costTrace)), r2(median(costSup)), r2(median(supTrace))

	// Exact elision accounting from one dedicated run.
	sink := telemetry.NewTrace(1 << 16)
	sup := telemetry.NewSuppressor(sink, window)
	machine := vm.New(res.Prog, vm.Config{
		Trigger: trigger.NewCounter(interval), Handlers: res.Handlers, Observer: sup,
	})
	sink.SetClock(machine)
	sup.SetClock(machine)
	if _, err := machine.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchab: accounting run: %v\n", err)
		os.Exit(1)
	}
	el := teleElision{
		Forwarded: sup.Forwarded(), Elided: sup.Elided(), WindowCyc: window,
		ByKind: map[string]uint64{}, ForwardKind: map[string]uint64{},
	}
	if tot := el.Forwarded + el.Elided; tot > 0 {
		el.ElidedPct = r2(100 * float64(el.Elided) / float64(tot))
	}
	for _, k := range []telemetry.EventKind{
		telemetry.EvCheckPolled, telemetry.EvCheckFired, telemetry.EvProbe, telemetry.EvYield,
	} {
		el.ByKind[k.String()] = sup.ElidedByKind(k)
		el.ForwardKind[k.String()] = sup.ForwardedByKind(k)
	}

	fmt.Printf("compress scale=%g interval=%d window=%d, %d rounds x %d reps/leg, interleaved bare/trace/suppressed\n\n",
		scale, interval, window, rounds, reps)
	fmt.Printf("%-10s %12s %12s %14s\n", "round", "bare M-i/s", "trace M-i/s", "suppress M-i/s")
	for r := 0; r < rounds; r++ {
		fmt.Printf("%-10d %12.1f %12.1f %14.1f\n", r, tput["bare"][r], tput["trace"][r], tput["suppressed"][r])
	}
	fmt.Printf("\n%-30s %8s %8s\n", "same-window ratio", "median", "range")
	fmt.Printf("%-30s %8.2f %.2f-%.2f\n", "trace cost vs bare", medCT, min(costTrace), max(costTrace))
	fmt.Printf("%-30s %8.2f %.2f-%.2f\n", "suppressed cost vs bare", medCS, min(costSup), max(costSup))
	fmt.Printf("%-30s %8.2f %.2f-%.2f\n", "suppressed speedup vs trace", medST, min(supTrace), max(supTrace))
	fmt.Printf("\nelision: %d forwarded, %d elided (%.1f%% of records), window %d cycles\n",
		el.Forwarded, el.Elided, el.ElidedPct, window)

	if out != "" {
		rep := teleReport{
			PR:    pr,
			Title: "Scenario engine + telemetry redundancy suppression: cost of watching a sampled run",
			Host:  hostName(),
			Methodology: "The same instrumented sampled compress kernel (call-edge probes, " +
				"full-duplication framework, counter trigger) runs under three observer " +
				"configurations interleaved within each round — nil observer, trace ring, " +
				"suppressor in front of the same trace ring — so every configuration samples " +
				"every time window of the shared host. Cost ratios are per-round same-window " +
				"bare/observed throughput; the median is reported. Elision counts come from " +
				"one dedicated suppressed run (the suppressor's accounting is exact, not " +
				"sampled). See BENCHMARKING.md and BENCH_PR4.json for the baseline trace cost.",
			Rounds: rounds, RepsPerLeg: reps, Scale: scale, Interval: interval,
			Throughput: tput,
			CostTrace:  costTrace, CostSup: costSup, SupVsTrace: supTrace,
			MedCostTrace: medCT, MedCostSup: medCS, MedSupTrace: medST,
			Elision: el,
			Notes: "The suppressor elides instant records (check polls/fires, probes, " +
				"yields) whose same-kind predecessor on the same thread carried the same " +
				"method and argument within the window, with a heartbeat re-forward past " +
				"the window; spans and transfers always forward. Accounting is exact " +
				"(forwarded+elided equals the VM's own event counters, enforced by " +
				"TestSuppressorEndToEnd), so consumers reconstructing counts lose nothing. " +
				"The residual cost over bare is the observer seam itself: any installed " +
				"observer disables pure-block batching (DESIGN.md §9), which no amount of " +
				"record dropping recovers.",
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchab: marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchab: write %s: %v\n", out, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", out)
	}
}
