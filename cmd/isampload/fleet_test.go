package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"instrsample/internal/load"
)

// TestFleetFlagValidation: the fleet modes self-host by construction, so
// combining them with -addr (or asking for a one-worker A/B) must be
// rejected up front, before any servers boot.
func TestFleetFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"fleet-ab with addr", []string{"-fleet-ab", "-workers", "2", "-addr", "http://127.0.0.1:1"}, "-addr is incompatible"},
		{"fleet-ab one worker", []string{"-fleet-ab", "-workers", "1"}, "-workers >= 2"},
		{"workers with addr", []string{"-workers", "2", "-addr", "http://127.0.0.1:1"}, "-addr is incompatible"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(context.Background(), tc.args, &stdout, &stderr)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: want error containing %q, got %v", tc.args, tc.want, err)
			}
		})
	}
}

// TestFleetABSmoke drives the -fleet-ab path end to end on short legs:
// both self-hosted fleets boot, the same plan soaks each, one worker is
// hard-killed halfway through the fleet leg, and the combined report
// lands with both legs' gates plus the scaling verdict. The scaling
// floor is disabled (shared single-core hosts cannot speed up CPU-bound
// jobs by adding workers; see BENCHMARKING.md), so the exact gates —
// zero failed jobs even with the mid-run kill, zero leaked goroutines,
// zero transport errors — are the check.
func TestFleetABSmoke(t *testing.T) {
	mix, mixPath := smokeMix(t, 3, 400)
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	err := run(ctx, []string{
		"-fleet-ab",
		"-workers", "2",
		"-mix", mixPath,
		"-duration", "2s",
		"-clients", "4",
		"-o", out,
		"-min-scaling", "0",
		"-min-throughput", "1",
		"-max-p99-ms", "60000",
		"-max-cancel-p99-ms", "60000",
		"-max-queue-wait-p99-ms", "60000",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("fleet A/B failed: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}

	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	type legDoc struct {
		Workers      int  `json:"workers"`
		WorkerKilled bool `json:"worker_killed_mid_run"`
		Result       struct {
			Counts load.Counts `json:"counts"`
		} `json:"result"`
		Gates []load.GateResult `json:"gates"`
	}
	var rep struct {
		PlanHash  string          `json:"plan_hash"`
		BudgetMet bool            `json:"budget_met"`
		Scaling   load.GateResult `json:"scaling"`
		A         legDoc          `json:"a_single_worker"`
		B         legDoc          `json:"b_fleet"`
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if !rep.BudgetMet {
		t.Errorf("budget_met=false despite run() success\nstdout:\n%s", stdout.String())
	}
	if rep.A.Workers != 1 || rep.A.WorkerKilled {
		t.Errorf("leg A: want 1 worker, none killed; got %d killed=%v", rep.A.Workers, rep.A.WorkerKilled)
	}
	if rep.B.Workers != 2 || !rep.B.WorkerKilled {
		t.Errorf("leg B: want 2 workers with a mid-run kill; got %d killed=%v", rep.B.Workers, rep.B.WorkerKilled)
	}
	for _, leg := range []string{"A", "B"} {
		counts := rep.A.Result.Counts
		if leg == "B" {
			counts = rep.B.Result.Counts
		}
		if counts.Submitted == 0 {
			t.Errorf("leg %s submitted no jobs", leg)
		}
		if counts.Failed != 0 {
			t.Errorf("leg %s failed %d jobs (worker loss must requeue, not fail)", leg, counts.Failed)
		}
	}
	if rep.Scaling.Name != "fleet_scaling_ratio" || rep.Scaling.Value <= 0 {
		t.Errorf("scaling verdict malformed: %+v", rep.Scaling)
	}

	// Same determinism receipt as the single-daemon soak: both legs ran
	// the plan this mix expands to.
	plan, err := load.Plan(mix)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PlanHash != load.PlanHash(plan) {
		t.Errorf("report plan_hash %s != recomputed %s", rep.PlanHash, load.PlanHash(plan))
	}
}
