// Command isampload is the sustained-load / soak harness for isampd:
// it expands a deterministic, seeded traffic mix into a job sequence
// (internal/load.Plan), drives a live daemon with concurrent HTTP
// clients for the configured duration — cache-hit reuse, mid-flight
// cancellations, SSE subscribers with slow readers, 429-retry backoff —
// and asserts the machine-checked regression gates, writing the
// BENCH_*.json report itself.
//
//	isampload -duration 30s -o BENCH_PR6.json   # self-host a daemon, 30s soak
//	isampload -addr http://127.0.0.1:8347       # soak an external daemon
//	isampload -mix mix.json                     # replay a recorded traffic mix
//	isampload -print-plan -ops 50               # show the expanded op sequence
//
// With no -addr, isampload boots an in-process service.Server on an
// ephemeral port, so `make soak` needs no coordination with a running
// daemon — and the goroutine-leak gate then covers the daemon and the
// harness in one process. Exit status is non-zero when any gate is
// violated, so CI can run a short soak as a hard check. See
// BENCHMARKING.md for the gate definitions and DESIGN.md §11 for the
// architecture.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"instrsample/internal/load"
	"instrsample/internal/obs"
	"instrsample/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "isampload:", err)
		os.Exit(1)
	}
}

// errGates marks a run whose measurements violated the gate budget; the
// soak itself completed, so the report is still written before main
// turns this into a non-zero exit.
var errGates = errors.New("gates violated")

// run is main minus the process concerns: flags in args, output on the
// given writers, lifetime bounded by ctx. Tests call it directly.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("isampload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	defGates := load.DefaultGates()
	var (
		addr      = fs.String("addr", "", "daemon base URL (e.g. http://127.0.0.1:8347); empty self-hosts one in-process")
		selfJ     = fs.Int("self-j", runtime.GOMAXPROCS(0), "self-hosted daemon worker-pool size")
		selfQueue = fs.Int("self-queue", 64, "self-hosted daemon queue depth")
		selfObs   = fs.String("self-obs", "spans", "self-hosted daemon observability mode (off, spans, full); spans feeds the queue-wait ledger gate")
		seed      = fs.Int64("seed", 1, "plan seed (ignored with -mix)")
		ops       = fs.Int("ops", 2000, "plan length in job operations (ignored with -mix)")
		mixPath   = fs.String("mix", "", "traffic-mix JSON file (default: the built-in DefaultMix)")
		duration  = fs.Duration("duration", 30*time.Second, "submission window; in-flight ops still drain after it")
		clients   = fs.Int("clients", 8, "concurrent HTTP client workers")
		out       = fs.String("o", "", "write the BENCH_*.json report here (empty: report only to stdout summary)")
		pr        = fs.Int("pr", 6, "PR number stamped into the report")
		title     = fs.String("title", "Seeded mixed-traffic soak via internal/load", "report title")
		notes     = fs.String("notes", "", "free-form notes stamped into the report")
		printPlan = fs.Bool("print-plan", false, "print the expanded op sequence as JSON and exit")

		fleetN   = fs.Int("workers", 0, "self-host an isampfleet coordinator over N isampd workers instead of a single daemon (0 = single daemon; incompatible with -addr)")
		fleetAB  = fs.Bool("fleet-ab", false, "scaling A/B: soak the same plan against 1-worker and N-worker (-workers) self-hosted fleets, killing one worker mid-run on the fleet leg")
		minScale = fs.Float64("min-scaling", 2.5, "gate (-fleet-ab): fleet/single-worker jobs-per-sec ratio floor (0 disables)")

		minTput      = fs.Float64("min-throughput", defGates.MinThroughputJobsPerSec, "gate: terminal jobs/sec floor (0 disables)")
		maxP99       = fs.Uint64("max-p99-ms", defGates.MaxP99Ms, "gate: accepted→terminal p99 ceiling in ms (0 disables)")
		maxCancelP99 = fs.Uint64("max-cancel-p99-ms", defGates.MaxCancelP99Ms, "gate: DELETE→terminal p99 ceiling in ms (0 disables)")
		maxQueueP99  = fs.Uint64("max-queue-wait-p99-ms", defGates.MaxQueueWaitP99Ms, "gate: ledger queue-wait p99 ceiling in ms (0 disables; needs an obs-enabled daemon)")
		maxLeaked    = fs.Int("max-leaked", defGates.MaxLeakedGoroutines, "gate: post-drain goroutine growth ceiling (0 = zero-leak, enforced)")
		minSubmitted = fs.Int64("min-submitted", defGates.MinSubmitted, "gate: accepted-op floor so other gates cannot pass vacuously (0 disables)")
		quiet        = fs.Bool("q", false, "suppress progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	mix := load.DefaultMix(*seed, *ops)
	if *mixPath != "" {
		f, err := os.Open(*mixPath)
		if err != nil {
			return err
		}
		m, err := load.ReadMix(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", *mixPath, err)
		}
		mix = m
	} else if err := mix.Validate(); err != nil {
		return err
	}
	plan, err := load.Plan(mix)
	if err != nil {
		return err
	}
	if *printPlan {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(plan); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "// plan_hash %s\n", load.PlanHash(plan))
		return nil
	}

	logf := func(format string, a ...any) {
		if !*quiet {
			fmt.Fprintf(stderr, "isampload: "+format+"\n", a...)
		}
	}

	if *fleetAB {
		if *addr != "" {
			return errors.New("-fleet-ab self-hosts its fleets; -addr is incompatible")
		}
		if *fleetN < 2 {
			return errors.New("-fleet-ab needs -workers >= 2")
		}
		mode, merr := obs.ParseMode(*selfObs)
		if merr != nil {
			return fmt.Errorf("-self-obs: %w", merr)
		}
		return runFleetAB(ctx, plan, mix, fleetABOptions{
			workers:   *fleetN,
			perWorker: *selfJ,
			queue:     *selfQueue,
			clients:   *clients,
			duration:  *duration,
			mode:      mode,
			gates: load.Gates{
				MinThroughputJobsPerSec: *minTput,
				MaxP99Ms:                *maxP99,
				MaxCancelP99Ms:          *maxCancelP99,
				MaxQueueWaitP99Ms:       *maxQueueP99,
				MaxLeakedGoroutines:     *maxLeaked,
				MinSubmitted:            *minSubmitted,
			},
			minScale: *minScale,
			pr:       *pr,
			title:    *title,
			notes:    *notes,
			out:      *out,
			logf:     logf,
		}, stdout)
	}

	baseURL := *addr
	var shutdown func()
	if baseURL == "" {
		mode, merr := obs.ParseMode(*selfObs)
		if merr != nil {
			return fmt.Errorf("-self-obs: %w", merr)
		}
		if *fleetN > 0 {
			baseURL, _, shutdown, err = selfHostFleet(*fleetN, *selfJ, *selfQueue, mode, logf)
			if err != nil {
				return err
			}
			defer shutdown()
			if err := waitFleetUp(baseURL, *fleetN, 15*time.Second); err != nil {
				return err
			}
			logf("self-hosted fleet on %s (coordinator + %d workers, %d slots each, queue %d, obs %s)",
				baseURL, *fleetN, *selfJ, *selfQueue, mode)
		} else {
			baseURL, shutdown, err = selfHost(*selfJ, *selfQueue, mode)
			if err != nil {
				return err
			}
			defer shutdown()
			logf("self-hosted daemon on %s (%d workers, queue %d, obs %s)", baseURL, *selfJ, *selfQueue, mode)
		}
	} else if *fleetN > 0 {
		return errors.New("-workers self-hosts a fleet; -addr is incompatible")
	}

	logf("soak: %d planned ops (hash %s), %d clients, %s window",
		len(plan), load.PlanHash(plan)[:12], *clients, *duration)
	res, err := load.Run(ctx, plan, load.Options{
		BaseURL:  baseURL,
		Clients:  *clients,
		Duration: *duration,
		Logf:     logf,
	})
	if err != nil {
		return err
	}

	gates := load.Gates{
		MinThroughputJobsPerSec: *minTput,
		MaxP99Ms:                *maxP99,
		MaxCancelP99Ms:          *maxCancelP99,
		MaxQueueWaitP99Ms:       *maxQueueP99,
		MaxLeakedGoroutines:     *maxLeaked,
		MinSubmitted:            *minSubmitted,
	}
	verdicts := gates.Check(res)
	rep := load.NewReport(*pr, *title, mix, plan, res, verdicts, *notes)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		logf("report written to %s", *out)
	}

	fmt.Fprintf(stdout, "soak: %d submitted, %d done, %d cancelled (+%d races), %d failed, %d×429, %.1f jobs/s, p50/p99 %d/%dms, cancel p99 %dms, queue max %d, leaked goroutines %d\n",
		res.Counts.Submitted, res.Counts.Done,
		res.Counts.CancelRequested+res.Counts.Cancelled, res.Counts.CancelRaces,
		res.Counts.Failed, res.Counts.Rejected429, res.ThroughputJobsPerSec,
		res.JobLatencyMs.P50, res.JobLatencyMs.P99, res.CancelLatencyMs.P99,
		res.QueueDepthMax, res.LeakedGoroutines)
	if res.LedgerOps > 0 {
		fmt.Fprintf(stdout, "ledgers: %d ops, queue-wait p50/p99 %d/%dµs, vm-run stage p50/p99 %d/%dµs\n",
			res.LedgerOps, res.QueueWaitUs.P50, res.QueueWaitUs.P99,
			res.RunStageUs.P50, res.RunStageUs.P99)
	}
	for _, g := range verdicts {
		mark := "ok"
		if !g.OK {
			mark = "VIOLATED"
		}
		fmt.Fprintf(stdout, "gate %-24s %s %g\t(got %g)\t%s\n", g.Name, g.Op, g.Bound, g.Value, mark)
	}
	if !load.AllOK(verdicts) {
		return errGates
	}
	fmt.Fprintln(stdout, "all gates passed")
	return nil
}

// selfHost boots an in-process service.Server on an ephemeral port and
// returns its base URL plus a shutdown that drains the daemon and
// closes the listener. The daemon runs with the requested observability
// mode so every terminal job carries an attribution ledger for the
// queue-wait gate (off disables that, and the gate with it).
func selfHost(workers, queue int, mode obs.Mode) (string, func(), error) {
	s := service.New(service.Config{
		Workers:    workers,
		QueueDepth: queue,
		Obs:        obs.NewState(obs.Options{Mode: mode}),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	shutdown := func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(dctx)
		srv.Shutdown(dctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
