package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"instrsample/internal/experiment"
	"instrsample/internal/fabric"
	"instrsample/internal/load"
	"instrsample/internal/obs"
	"instrsample/internal/service"
)

// selfHostFleet boots an in-process experiment fabric — n isampd workers
// plus an isampfleet coordinator, all on ephemeral ports — and returns
// the coordinator's base URL, a killOne that hard-kills the last worker's
// HTTP side (the mid-run recovery leg), and a shutdown that drains
// everything and removes the cache directories.
func selfHostFleet(n, perWorker, queue int, mode obs.Mode, logf func(string, ...any)) (string, func(), func(), error) {
	var (
		daemons []*service.Server
		servers []*http.Server
		dirs    []string
		confs   []fabric.WorkerConf
	)
	cleanup := func() {
		for _, srv := range servers {
			srv.Close()
		}
		for _, dir := range dirs {
			os.RemoveAll(dir)
		}
	}
	for i := 0; i < n; i++ {
		dir, err := os.MkdirTemp("", "isampload-fleet-*")
		if err != nil {
			cleanup()
			return "", nil, nil, err
		}
		dirs = append(dirs, dir)
		cache, err := experiment.OpenCache(dir)
		if err != nil {
			cleanup()
			return "", nil, nil, err
		}
		s := service.New(service.Config{
			Workers:    perWorker,
			QueueDepth: queue,
			Cache:      cache,
			Obs:        obs.NewState(obs.Options{Mode: mode}),
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return "", nil, nil, err
		}
		srv := &http.Server{Handler: s.Handler()}
		go srv.Serve(ln) //nolint:errcheck // closed by killOne or shutdown
		daemons = append(daemons, s)
		servers = append(servers, srv)
		confs = append(confs, fabric.WorkerConf{
			Name: fmt.Sprintf("w%d", i),
			URL:  "http://" + ln.Addr().String(),
		})
	}
	casDir, err := os.MkdirTemp("", "isampload-cas-*")
	if err != nil {
		cleanup()
		return "", nil, nil, err
	}
	dirs = append(dirs, casDir)
	c, err := fabric.New(fabric.Config{
		Fleet:          fabric.FleetConf{Workers: confs},
		QueueDepth:     queue,
		CacheDir:       casDir,
		HealthInterval: 100 * time.Millisecond,
		Obs:            obs.NewState(obs.Options{Mode: mode}),
	})
	if err != nil {
		cleanup()
		return "", nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cleanup()
		return "", nil, nil, err
	}
	front := &http.Server{Handler: c.Handler()}
	go front.Serve(ln) //nolint:errcheck // closed in shutdown

	killOne := func() {
		if n < 2 {
			return
		}
		logf("fleet: killing worker w%d mid-run", n-1)
		servers[n-1].Close()
	}
	shutdown := func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		c.Shutdown(dctx)     //nolint:errcheck
		front.Shutdown(dctx) //nolint:errcheck
		for _, d := range daemons {
			d.Shutdown(dctx) //nolint:errcheck
		}
		cleanup()
	}
	return "http://" + ln.Addr().String(), killOne, shutdown, nil
}

// waitFleetUp polls the coordinator's /healthz until every worker
// reports up, so the soak never measures the health handshake.
func waitFleetUp(base string, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			var doc struct {
				Workers map[string]struct {
					Up bool `json:"up"`
				} `json:"workers"`
			}
			derr := json.NewDecoder(resp.Body).Decode(&doc)
			resp.Body.Close()
			if derr == nil {
				up := 0
				for _, w := range doc.Workers {
					if w.Up {
						up++
					}
				}
				if up == n {
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: %d workers never came up within %s", n, timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// fleetLeg is one side of the scaling A/B in the PR10 report.
type fleetLeg struct {
	Workers      int               `json:"workers"`
	WorkerKilled bool              `json:"worker_killed_mid_run"`
	Result       *load.Result      `json:"result"`
	Gates        []load.GateResult `json:"gates"`
}

// fleetReport is the BENCH_PR10-style document: the standard soak
// envelope with two legs and the scaling verdict.
type fleetReport struct {
	PR          int               `json:"pr"`
	Title       string            `json:"title"`
	Host        string            `json:"host"`
	Methodology string            `json:"methodology"`
	Mix         load.Mix          `json:"mix"`
	PlanOps     int               `json:"plan_ops"`
	PlanHash    string            `json:"plan_hash"`
	A           *fleetLeg         `json:"a_single_worker"`
	B           *fleetLeg         `json:"b_fleet"`
	Scaling     load.GateResult   `json:"scaling"`
	Gates       []load.GateResult `json:"gates"`
	Budget      string            `json:"budget"`
	BudgetMet   bool              `json:"budget_met"`
	Notes       string            `json:"notes,omitempty"`
}

// fleetABOptions carries the subset of run()'s flag state the A/B needs.
type fleetABOptions struct {
	workers   int
	perWorker int
	queue     int
	clients   int
	duration  time.Duration
	mode      obs.Mode
	gates     load.Gates
	minScale  float64
	pr        int
	title     string
	notes     string
	out       string
	logf      func(string, ...any)
}

// runFleetAB is the -fleet-ab path: the same seeded plan soaks a
// 1-worker fleet and an N-worker fleet (one worker hard-killed halfway
// through the N-worker leg to exercise requeue recovery), the per-leg
// gates run at full strength, and the fleet/single throughput ratio is
// gated against the scaling floor. The combined report is written to
// -o; any violated gate surfaces as errGates.
func runFleetAB(ctx context.Context, plan []load.Op, mix load.Mix, o fleetABOptions, stdout interface{ Write([]byte) (int, error) }) error {
	leg := func(workers int, kill bool) (*fleetLeg, error) {
		base, killOne, shutdown, err := selfHostFleet(workers, o.perWorker, o.queue, o.mode, o.logf)
		if err != nil {
			return nil, err
		}
		defer shutdown()
		if err := waitFleetUp(base, workers, 15*time.Second); err != nil {
			return nil, err
		}
		o.logf("fleet leg: %d workers on %s", workers, base)
		if kill {
			timer := time.AfterFunc(o.duration/2, killOne)
			defer timer.Stop()
		}
		res, err := load.Run(ctx, plan, load.Options{
			BaseURL:  base,
			Clients:  o.clients,
			Duration: o.duration,
			Logf:     o.logf,
		})
		if err != nil {
			return nil, err
		}
		return &fleetLeg{
			Workers:      workers,
			WorkerKilled: kill,
			Result:       res,
			Gates:        o.gates.Check(res),
		}, nil
	}

	o.logf("fleet A/B leg A: single worker")
	a, err := leg(1, false)
	if err != nil {
		return err
	}
	o.logf("fleet A/B leg B: %d workers, one killed mid-run", o.workers)
	b, err := leg(o.workers, o.workers > 1)
	if err != nil {
		return err
	}

	ratio := 0.0
	if a.Result.ThroughputJobsPerSec > 0 {
		ratio = b.Result.ThroughputJobsPerSec / a.Result.ThroughputJobsPerSec
	}
	scaling := load.GateResult{
		Name:  "fleet_scaling_ratio",
		Value: ratio,
		Bound: o.minScale,
		Op:    ">=",
		OK:    ratio >= o.minScale,
	}
	all := append(append([]load.GateResult{}, a.Gates...), b.Gates...)
	all = append(all, scaling)

	notes := o.notes
	if cpus := runtime.NumCPU(); cpus < o.workers+1 {
		hostNote := fmt.Sprintf("host has %d cpu(s) for %d workers + coordinator + harness in one "+
			"process; CPU-bound jobs cannot scale past the core count, so the scaling ratio here "+
			"measures coordination overhead, not parallel speedup — see BENCHMARKING.md (fleet scaling gate).",
			cpus, o.workers)
		if notes != "" {
			notes += " "
		}
		notes += hostNote
	}
	rep := &fleetReport{
		PR:    o.pr,
		Title: o.title,
		Host:  load.HostString(),
		Methodology: "Fleet scaling A/B via internal/load and internal/fabric: the same seeded plan " +
			"(plan_hash is the SHA-256 of the op sequence) soaks two self-hosted fleets — an " +
			"isampfleet coordinator over 1 isampd worker, then over N workers — for the same " +
			"duration with the same concurrent clients. Halfway through the N-worker leg one " +
			"worker's HTTP side is hard-killed: its in-flight cells must requeue on survivors " +
			"(at most once per worker, failures never memoized), so the zero-failed-jobs gate " +
			"doubles as the recovery check. fleet_scaling_ratio is leg-B throughput over leg-A " +
			"throughput; per-leg gates are the standard soak gates.",
		Mix:       mix,
		PlanOps:   len(plan),
		PlanHash:  load.PlanHash(plan),
		A:         a,
		B:         b,
		Scaling:   scaling,
		Gates:     all,
		Budget:    load.Describe(all),
		BudgetMet: load.AllOK(all),
		Notes:     notes,
	}
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		o.logf("report written to %s", o.out)
	}

	for _, l := range []*fleetLeg{a, b} {
		fmt.Fprintf(stdout, "fleet leg (%d workers%s): %d submitted, %d done, %d failed, %.1f jobs/s, p99 %dms\n",
			l.Workers, map[bool]string{true: ", one killed mid-run"}[l.WorkerKilled],
			l.Result.Counts.Submitted, l.Result.Counts.Done, l.Result.Counts.Failed,
			l.Result.ThroughputJobsPerSec, l.Result.JobLatencyMs.P99)
	}
	for _, g := range all {
		mark := "ok"
		if !g.OK {
			mark = "VIOLATED"
		}
		fmt.Fprintf(stdout, "gate %-24s %s %g\t(got %g)\t%s\n", g.Name, g.Op, g.Bound, g.Value, mark)
	}
	if !rep.BudgetMet {
		return errGates
	}
	fmt.Fprintln(stdout, "all gates passed")
	return nil
}
