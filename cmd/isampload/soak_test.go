package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"instrsample/internal/load"
)

// smokeMix is the CI soak profile: the default mix narrowed to small
// scales so a few seconds of wall time still drives hundreds of jobs
// through every traffic class, on shared hosts, under the race
// detector.
func smokeMix(t *testing.T, seed int64, ops int) (load.Mix, string) {
	t.Helper()
	mix := load.DefaultMix(seed, ops)
	mix.ScaleMax = 0.02
	path := filepath.Join(t.TempDir(), "mix.json")
	b, err := json.Marshal(mix)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return mix, path
}

// TestSoakSmoke is the ci gate: a short seeded soak against a
// self-hosted daemon on an ephemeral port, with the regression gates
// enforced — relaxed timing ceilings for shared CI hosts, but the exact
// gates (zero failed jobs, zero leaked goroutines, zero transport
// errors) at full strength. The small self-queue forces the 429-retry
// path to actually run.
func TestSoakSmoke(t *testing.T) {
	mix, mixPath := smokeMix(t, 1, 600)
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err := run(ctx, []string{
		"-mix", mixPath,
		"-duration", "2500ms",
		"-clients", "6",
		"-self-queue", "4",
		"-o", out,
		"-min-throughput", "3",
		"-max-p99-ms", "30000",
		"-max-cancel-p99-ms", "10000",
		"-max-queue-wait-p99-ms", "30000",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("soak failed: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}

	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		PR        int               `json:"pr"`
		PlanHash  string            `json:"plan_hash"`
		BudgetMet bool              `json:"budget_met"`
		Gates     []load.GateResult `json:"gates"`
		Result    struct {
			Counts      load.Counts `json:"counts"`
			LedgerOps   int64       `json:"ledger_ops"`
			QueueWaitUs struct {
				Count uint64 `json:"count"`
			} `json:"queue_wait_us"`
		} `json:"result"`
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if !rep.BudgetMet {
		t.Errorf("report says budget_met=false despite run() success\nstdout:\n%s", stdout.String())
	}

	// End-to-end determinism receipt: the report's plan hash must match
	// an independent expansion of the same mix file.
	plan, err := load.Plan(mix)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PlanHash != load.PlanHash(plan) {
		t.Errorf("report plan_hash %s != recomputed %s", rep.PlanHash, load.PlanHash(plan))
	}

	// The smoke must have exercised the interesting traffic classes, not
	// merely submitted trivial jobs.
	c := rep.Result.Counts
	if c.Submitted == 0 {
		t.Fatal("no jobs submitted")
	}
	if c.CancelRequested+c.CancelRaces == 0 {
		t.Error("no cancel ops ran")
	}
	if c.SSEStreams == 0 {
		t.Error("no SSE subscribers ran")
	}
	if c.Rejected429 == 0 {
		t.Error("queue depth 4 with 6 clients produced no 429 backpressure")
	}

	// The self-hosted daemon runs at -self-obs spans by default, so the
	// report carries server-side attribution ledgers and the queue-wait
	// gate must have engaged (not passed vacuously).
	if rep.Result.LedgerOps == 0 {
		t.Error("no attribution ledgers captured from the obs-enabled daemon")
	}
	if rep.Result.QueueWaitUs.Count == 0 {
		t.Error("ledgers captured but no queue-wait observations")
	}
	gated := false
	for _, g := range rep.Gates {
		if g.Name == "queue_wait_p99_ms" {
			gated = true
		}
	}
	if !gated {
		t.Error("queue_wait_p99_ms gate did not engage")
	}
	t.Logf("smoke: %+v, ledgers %d", c, rep.Result.LedgerOps)
}

// TestPrintPlanDeterministic checks the CLI plan path: two -print-plan
// invocations of the same mix file emit identical bytes.
func TestPrintPlanDeterministic(t *testing.T) {
	_, mixPath := smokeMix(t, 9, 40)
	outs := make([]string, 2)
	for i := range outs {
		var stdout, stderr bytes.Buffer
		if err := run(context.Background(), []string{"-mix", mixPath, "-print-plan"}, &stdout, &stderr); err != nil {
			t.Fatalf("print-plan: %v\n%s", err, stderr.String())
		}
		outs[i] = stdout.String()
	}
	if outs[0] != outs[1] {
		t.Error("-print-plan output differs between identical invocations")
	}
	if len(outs[0]) == 0 {
		t.Error("-print-plan emitted nothing")
	}
}

// TestGateFailureExit checks that a violated gate surfaces as errGates —
// the CLI's non-zero exit — while the report is still written.
func TestGateFailureExit(t *testing.T) {
	_, mixPath := smokeMix(t, 2, 80)
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err := run(ctx, []string{
		"-mix", mixPath,
		"-duration", "500ms",
		"-o", out,
		"-min-throughput", "1e9", // unreachable floor
	}, &stdout, &stderr)
	if err != errGates {
		t.Fatalf("want errGates, got %v\nstdout:\n%s", err, stdout.String())
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("report not written on gate failure: %v", err)
	}
}
