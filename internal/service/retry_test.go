package service

import (
	"testing"
	"time"
)

// TestDrainEstimator drives the Retry-After estimator with a synthetic
// clock: the estimate must be proportional to depth over the observed
// drain rate, clamp to [retryAfterMin, retryAfterMax], and ignore
// samples older than the window.
func TestDrainEstimator(t *testing.T) {
	t.Parallel()
	base := time.Unix(1_700_000_000, 0)
	var d DrainEstimator

	// No signal: minimum backoff.
	if got := d.RetryAfter(10, base); got != retryAfterMin {
		t.Errorf("no samples: retryAfter = %d, want %d", got, retryAfterMin)
	}

	// One drain per second for 10 seconds ⇒ rate 1/s.
	for i := 0; i < 10; i++ {
		d.Record(base.Add(time.Duration(i) * time.Second))
	}
	now := base.Add(10 * time.Second)
	if got := d.RetryAfter(5, now); got != 5 {
		t.Errorf("depth 5 at 1/s: retryAfter = %d, want 5", got)
	}
	if got := d.RetryAfter(20, now); got != 20 {
		t.Errorf("depth 20 at 1/s: retryAfter = %d, want 20", got)
	}
	if got := d.RetryAfter(500, now); got != retryAfterMax {
		t.Errorf("huge depth: retryAfter = %d, want clamp %d", got, retryAfterMax)
	}
	if got := d.RetryAfter(0, now); got != retryAfterMin {
		t.Errorf("zero depth: retryAfter = %d, want %d", got, retryAfterMin)
	}

	// A faster queue (4 drains/s) quarters the estimate.
	var fast DrainEstimator
	for i := 0; i < 40; i++ {
		fast.Record(base.Add(time.Duration(i) * 250 * time.Millisecond))
	}
	if got := fast.RetryAfter(20, now); got != 5 {
		t.Errorf("depth 20 at 4/s: retryAfter = %d, want 5", got)
	}

	// Once every sample ages out of the window, the signal is gone.
	if got := d.RetryAfter(20, now.Add(2*drainWindow)); got != retryAfterMin {
		t.Errorf("stale samples: retryAfter = %d, want %d", got, retryAfterMin)
	}
}
