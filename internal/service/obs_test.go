package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"instrsample/internal/experiment"
	"instrsample/internal/obs"
	"instrsample/internal/telemetry"
)

// obsServer builds a test server with an observability state attached.
func obsServer(t *testing.T, mode obs.Mode, cfg Config) (*Server, *httptest0) {
	t.Helper()
	cfg.Obs = obs.NewState(obs.Options{Mode: mode})
	s, h := newTestServer(t, cfg)
	return s, &httptest0{URL: h.URL}
}

// httptest0 keeps obsServer's signature small without re-exporting the
// httptest server; only the base URL is needed.
type httptest0 struct{ URL string }

// jobSpans reaches into the server for a job's recorded span chain.
func jobSpans(t *testing.T, s *Server, id string) []obs.Span {
	t.Helper()
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		t.Fatalf("job %s not retained", id)
	}
	return j.trace.Spans()
}

// checkChain verifies the span chain invariants every accepted job must
// satisfy in a terminal state: the chain starts at accept, every span
// begins exactly where the previous one ended (gap-free), stages appear
// in canonical order, and the chain closes with a terminal instant
// carrying the expected status. It returns the observed stage sequence
// (terminal excluded).
func checkChain(t *testing.T, spans []obs.Span, id, status string) []obs.Stage {
	t.Helper()
	if len(spans) < 2 {
		t.Fatalf("%s: chain has %d spans, want at least accept+terminal", id, len(spans))
	}
	if spans[0].Stage != obs.StageAccept {
		t.Errorf("%s: chain starts with %v, want accept", id, spans[0].Stage)
	}
	var stages []obs.Stage
	for i, sp := range spans {
		if sp.Job != id {
			t.Errorf("%s: span %d carries job %q", id, i, sp.Job)
		}
		if i > 0 {
			if sp.StartNs != spans[i-1].EndNs {
				t.Errorf("%s: gap between %v (end %d) and %v (start %d)",
					id, spans[i-1].Stage, spans[i-1].EndNs, sp.Stage, sp.StartNs)
			}
			if sp.Stage <= spans[i-1].Stage {
				t.Errorf("%s: stage %v follows %v out of canonical order",
					id, sp.Stage, spans[i-1].Stage)
			}
		}
		if i < len(spans)-1 {
			stages = append(stages, sp.Stage)
		}
	}
	last := spans[len(spans)-1]
	if last.Stage != obs.StageTerminal {
		t.Fatalf("%s: chain ends with %v, want terminal", id, last.Stage)
	}
	if last.Cause != status {
		t.Errorf("%s: terminal cause %q, want %q", id, last.Cause, status)
	}
	if last.StartNs != last.EndNs {
		t.Errorf("%s: terminal span has extent %d ns", id, last.EndNs-last.StartNs)
	}
	return stages
}

// checkLedger verifies the attribution ledger invariant: per-stage
// durations sum to the end-to-end latency exactly, and the ledger spans
// the whole chain (first span start to terminal).
func checkLedger(t *testing.T, l *obs.Ledger, spans []obs.Span, id string) {
	t.Helper()
	if l == nil {
		t.Fatalf("%s: no ledger", id)
	}
	if l.Sum() != l.TotalNs {
		t.Errorf("%s: ledger sum %d != total %d", id, l.Sum(), l.TotalNs)
	}
	first, last := spans[0], spans[len(spans)-1]
	if want := last.EndNs - first.StartNs; l.TotalNs != want {
		t.Errorf("%s: ledger total %d != chain extent %d", id, l.TotalNs, want)
	}
	if len(l.Rows) != len(spans)-1 {
		t.Errorf("%s: ledger has %d rows for %d non-terminal spans", id, len(l.Rows), len(spans)-1)
	}
}

func wantStages(t *testing.T, got []obs.Stage, want ...obs.Stage) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("stages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stages = %v, want %v", got, want)
		}
	}
}

// TestObsChainCompleted: a successful executed job walks accept →
// validate → queue-wait → cache-probe → compile → vm-run → export →
// terminal(done), gap-free, with the ledger summing exactly; an
// identical follow-up job is served by the on-disk cache and its chain
// ends after cache-probe.
func TestObsChainCompleted(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cache, err := experiment.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, h := obsServer(t, obs.ModeSpans, Config{Cache: cache})

	spec := JobSpec{Bench: "db", Scale: 0.01, Interval: 977}
	id := mustAccept(t, h.URL, spec)
	v := waitTerminal(t, h.URL, id, 60*time.Second)
	if v.Status != StatusDone {
		t.Fatalf("job %s: %s (%s)", id, v.Status, v.Error)
	}
	spans := jobSpans(t, s, id)
	stages := checkChain(t, spans, id, "done")
	checkLedger(t, v.Ledger, spans, id)
	wantStages(t, stages, obs.StageAccept, obs.StageValidate, obs.StageQueueWait,
		obs.StageCacheProbe, obs.StageCompile, obs.StageVMRun, obs.StageExport)

	// Same spec on the same server: the engine memo (which retains
	// completed cells) serves it, and the memo-flight row names the job
	// that did the work.
	id2 := mustAccept(t, h.URL, spec)
	v2 := waitTerminal(t, h.URL, id2, 60*time.Second)
	if v2.Status != StatusDone {
		t.Fatalf("memoed job %s: %s (%s)", id2, v2.Status, v2.Error)
	}
	spans2 := jobSpans(t, s, id2)
	stages2 := checkChain(t, spans2, id2, "done")
	checkLedger(t, v2.Ledger, spans2, id2)
	wantStages(t, stages2, obs.StageAccept, obs.StageValidate, obs.StageQueueWait,
		obs.StageMemoFlight)
	if row, ok := v2.Ledger.Row(obs.StageMemoFlight); !ok || row.Cause != id {
		t.Errorf("memo-flight row = %+v ok=%v, want cause %q", row, ok, id)
	}

	// The shared ring kept every span of both jobs: no drops at the
	// default capacity, and every retained span is job-stamped.
	if d := s.cfg.Obs.Tracer().Drops(); d != 0 {
		t.Errorf("span drops = %d, want 0", d)
	}

	// Same spec on a fresh server sharing the cache directory: the
	// on-disk cache serves it and the chain ends at the probe.
	cache2, err := experiment.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s3, h3 := obsServer(t, obs.ModeSpans, Config{Cache: cache2})
	id3 := mustAccept(t, h3.URL, spec)
	v3 := waitTerminal(t, h3.URL, id3, 60*time.Second)
	if v3.Status != StatusDone {
		t.Fatalf("cached job %s: %s (%s)", id3, v3.Status, v3.Error)
	}
	spans3 := jobSpans(t, s3, id3)
	stages3 := checkChain(t, spans3, id3, "done")
	checkLedger(t, v3.Ledger, spans3, id3)
	wantStages(t, stages3, obs.StageAccept, obs.StageValidate, obs.StageQueueWait,
		obs.StageCacheProbe)
}

// TestObsChainCancelledRunning: DELETE on a running job closes the
// chain at the stage the cancel interrupted, terminal cause cancelled.
func TestObsChainCancelledRunning(t *testing.T) {
	t.Parallel()
	s, h := obsServer(t, obs.ModeSpans, Config{})
	id := mustAccept(t, h.URL, JobSpec{Source: slowSrc(1<<61 + 31)})
	waitRunning(t, h.URL, id, 10*time.Second)
	req, _ := http.NewRequest(http.MethodDelete, h.URL+"/v1/jobs/"+id, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, h.URL, id, 10*time.Second)
	if v.Status != StatusCancelled {
		t.Fatalf("job %s: %s, want cancelled", id, v.Status)
	}
	spans := jobSpans(t, s, id)
	stages := checkChain(t, spans, id, "cancelled")
	checkLedger(t, v.Ledger, spans, id)
	// The cancel lands mid-run: the chain must have reached vm-run (the
	// slow source compiles instantly) and must not have an export stage.
	if got := stages[len(stages)-1]; got != obs.StageVMRun {
		t.Errorf("cancelled chain ends in %v, want vm-run", got)
	}
}

// TestObsChainCancelledQueued: a job cancelled while still queued emits
// accept → validate → queue-wait → terminal(cancelled) — complete and
// gap-free even though no worker ever touched it.
func TestObsChainCancelledQueued(t *testing.T) {
	t.Parallel()
	s, h := obsServer(t, obs.ModeSpans, Config{Workers: 1})
	running := mustAccept(t, h.URL, JobSpec{Source: slowSrc(1<<61 + 32)})
	waitRunning(t, h.URL, running, 10*time.Second)
	queued := mustAccept(t, h.URL, JobSpec{Source: slowSrc(1<<61 + 33)})

	req, _ := http.NewRequest(http.MethodDelete, h.URL+"/v1/jobs/"+queued, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, h.URL, queued, 10*time.Second)
	if v.Status != StatusCancelled {
		t.Fatalf("queued job %s: %s, want cancelled", queued, v.Status)
	}
	spans := jobSpans(t, s, queued)
	stages := checkChain(t, spans, queued, "cancelled")
	checkLedger(t, v.Ledger, spans, queued)
	wantStages(t, stages, obs.StageAccept, obs.StageValidate, obs.StageQueueWait)

	// Unblock the worker.
	req, _ = http.NewRequest(http.MethodDelete, h.URL+"/v1/jobs/"+running, nil)
	http.DefaultClient.Do(req) //nolint:errcheck
}

// TestObsChainTimeout: a job killed by its own timeout_ms budget
// resolves failed with a complete chain ending in the interrupted
// vm-run stage.
func TestObsChainTimeout(t *testing.T) {
	t.Parallel()
	s, h := obsServer(t, obs.ModeSpans, Config{})
	id := mustAccept(t, h.URL, JobSpec{Source: slowSrc(1<<61 + 34), TimeoutMs: 150})
	v := waitTerminal(t, h.URL, id, 30*time.Second)
	if v.Status != StatusFailed || !strings.Contains(v.Error, "timeout") {
		t.Fatalf("job %s: %s (%q), want failed with timeout", id, v.Status, v.Error)
	}
	spans := jobSpans(t, s, id)
	stages := checkChain(t, spans, id, "failed")
	checkLedger(t, v.Ledger, spans, id)
	if got := stages[len(stages)-1]; got != obs.StageVMRun {
		t.Errorf("timed-out chain ends in %v, want vm-run", got)
	}
}

// TestObsChainFailed: a compile-time failure (unknown scenario op is
// caught at validation, so use a source that assembles but traps) still
// produces a complete chain. A job whose program errors at run time
// resolves failed with the chain closed at the failing stage.
func TestObsChainFailed(t *testing.T) {
	t.Parallel()
	s, h := obsServer(t, obs.ModeSpans, Config{})
	// Division by zero traps at run time.
	id := mustAccept(t, h.URL, JobSpec{Source: `
func main() {
entry:
  const a, 1
  const b, 0
  div c, a, b
  ret c
}
`})
	v := waitTerminal(t, h.URL, id, 30*time.Second)
	if v.Status != StatusFailed {
		t.Fatalf("job %s: %s (%q), want failed", id, v.Status, v.Error)
	}
	spans := jobSpans(t, s, id)
	stages := checkChain(t, spans, id, "failed")
	checkLedger(t, v.Ledger, spans, id)
	if got := stages[len(stages)-1]; got != obs.StageVMRun {
		t.Errorf("failed chain ends in %v, want vm-run", got)
	}
}

// TestObsMemoDedupCauseLink: a job parked on another job's in-flight
// identical cell records a memo-flight span whose cause is the owning
// job's ID — the dedup path is attributable, not invisible.
func TestObsMemoDedupCauseLink(t *testing.T) {
	t.Parallel()
	s, h := obsServer(t, obs.ModeSpans, Config{Workers: 2})
	src := slowSrc(1<<61 + 35)
	owner := mustAccept(t, h.URL, JobSpec{Source: src})
	waitRunning(t, h.URL, owner, 10*time.Second)
	// Give the owner's cell time to register its flight before the twin
	// arrives; the twin must then park on it rather than run.
	time.Sleep(50 * time.Millisecond)
	waiter := mustAccept(t, h.URL, JobSpec{Source: src})

	// The live ledger reports the open memo-flight stage with its cause.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v := getJob(t, h.URL, waiter)
		if v.Ledger != nil {
			if row, ok := v.Ledger.Row(obs.StageMemoFlight); ok {
				if row.Cause != owner {
					t.Fatalf("memo-flight cause = %q, want %q", row.Cause, owner)
				}
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiter %s never entered memo-flight (ledger %+v)", waiter, v.Ledger)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Cancel both; the waiter's terminal chain must keep the cause link.
	for _, id := range []string{waiter, owner} {
		req, _ := http.NewRequest(http.MethodDelete, h.URL+"/v1/jobs/"+id, nil)
		if _, err := http.DefaultClient.Do(req); err != nil {
			t.Fatal(err)
		}
	}
	v := waitTerminal(t, h.URL, waiter, 10*time.Second)
	spans := jobSpans(t, s, waiter)
	checkChain(t, spans, waiter, string(v.Status))
	checkLedger(t, v.Ledger, spans, waiter)
	row, ok := v.Ledger.Row(obs.StageMemoFlight)
	if !ok || row.Cause != owner {
		t.Fatalf("terminal memo-flight row = %+v ok=%v, want cause %q", row, ok, owner)
	}
}

// TestObsModeOffNoLedger: with the obs state present but off, jobs
// carry no chain and no ledger, and the trace endpoint 404s.
func TestObsModeOffNoLedger(t *testing.T) {
	t.Parallel()
	_, h := obsServer(t, obs.ModeOff, Config{})
	id := mustAccept(t, h.URL, JobSpec{Bench: "db", Scale: 0.01, Interval: 977})
	v := waitTerminal(t, h.URL, id, 60*time.Second)
	if v.Ledger != nil {
		t.Errorf("obs=off job has a ledger: %+v", v.Ledger)
	}
	resp, err := http.Get(h.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace endpoint at obs=off: %d, want 404", resp.StatusCode)
	}
}

// TestObsRuntimeToggle: PUT /v1/obs flips the mode without a restart;
// jobs accepted after the flip follow it.
func TestObsRuntimeToggle(t *testing.T) {
	t.Parallel()
	_, h := obsServer(t, obs.ModeOff, Config{})

	put := func(mode string) map[string]any {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"mode": mode})
		req, _ := http.NewRequest(http.MethodPut, h.URL+"/v1/obs", bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("PUT /v1/obs %s: %d", mode, resp.StatusCode)
		}
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m) //nolint:errcheck
		return m
	}
	if m := put("spans"); m["mode"] != "spans" {
		t.Fatalf("PUT returned %v", m)
	}
	id := mustAccept(t, h.URL, JobSpec{Bench: "db", Scale: 0.01, Interval: 977})
	v := waitTerminal(t, h.URL, id, 60*time.Second)
	if v.Ledger == nil {
		t.Error("job accepted after toggle-on has no ledger")
	}
	put("off")
	id2 := mustAccept(t, h.URL, JobSpec{Bench: "db", Scale: 0.011, Interval: 977})
	v2 := waitTerminal(t, h.URL, id2, 60*time.Second)
	if v2.Ledger != nil {
		t.Error("job accepted after toggle-off has a ledger")
	}

	var bad struct{ Error string }
	body, _ := json.Marshal(map[string]string{"mode": "verbose"})
	req, _ := http.NewRequest(http.MethodPut, h.URL+"/v1/obs", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&bad) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT bad mode: %d, want 400", resp.StatusCode)
	}
}

// TestObsFullMergedTrace: at obs=full the job's trace endpoint serves a
// merged Chrome document with wall-clock service spans (pid 1) and the
// VM's cycle-domain events aligned into the vm-run span window (pid 2).
func TestObsFullMergedTrace(t *testing.T) {
	t.Parallel()
	_, h := obsServer(t, obs.ModeFull, Config{})
	// call-edge instrumentation at a short interval guarantees fired
	// checks — the VM events the full-mode flight recorder keeps.
	id := mustAccept(t, h.URL, JobSpec{Bench: "db", Scale: 0.01, Instrument: []string{"call-edge"}, Interval: 977})
	v := waitTerminal(t, h.URL, id, 60*time.Second)
	if v.Status != StatusDone {
		t.Fatalf("job %s: %s (%s)", id, v.Status, v.Error)
	}
	resp, err := http.Get(h.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("invalid merged trace JSON: %v", err)
	}
	var vmStart, vmEnd uint64
	var sawVMSpan bool
	for _, e := range doc.TraceEvents {
		if e.Pid == 1 && e.Ph == "X" && e.Name == "vm-run" {
			vmStart, vmEnd = e.Ts, e.Ts+e.Dur
			sawVMSpan = true
		}
	}
	if !sawVMSpan {
		t.Fatal("merged trace has no vm-run service span")
	}
	var vmEvents int
	for _, e := range doc.TraceEvents {
		if e.Pid != 2 || e.Ph == "M" {
			continue
		}
		vmEvents++
		if e.Ts < vmStart || e.Ts > vmEnd {
			t.Fatalf("VM event %q at %dµs outside vm-run span [%d, %d]µs",
				e.Name, e.Ts, vmStart, vmEnd)
		}
	}
	if vmEvents == 0 {
		t.Fatal("merged trace has no VM events at obs=full")
	}
	if c, ok := doc.OtherData["vmCycles"].(float64); !ok || c <= 0 {
		t.Errorf("otherData vmCycles = %v, want > 0", doc.OtherData["vmCycles"])
	}
}

// TestObsSSELedgerEvent: the SSE stream of a traced job carries a final
// "ledger" event (before "done") whose rows sum to total_ns.
func TestObsSSELedgerEvent(t *testing.T) {
	t.Parallel()
	_, h := obsServer(t, obs.ModeSpans, Config{})
	id := mustAccept(t, h.URL, JobSpec{Bench: "db", Scale: 0.01, Interval: 977})
	waitTerminal(t, h.URL, id, 60*time.Second)

	resp, err := http.Get(h.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw := new(bytes.Buffer)
	raw.ReadFrom(resp.Body) //nolint:errcheck // stream ends at done
	body := raw.String()
	li := strings.Index(body, "event: ledger\ndata: ")
	if li < 0 {
		t.Fatalf("no ledger event in stream:\n%s", body)
	}
	if di := strings.Index(body, "event: done"); di < li {
		t.Fatal("ledger event must precede done")
	}
	line := body[li+len("event: ledger\ndata: "):]
	line = line[:strings.Index(line, "\n")]
	var l obs.Ledger
	if err := json.Unmarshal([]byte(line), &l); err != nil {
		t.Fatalf("invalid ledger JSON %q: %v", line, err)
	}
	if l.Sum() != l.TotalNs || l.TotalNs == 0 {
		t.Errorf("SSE ledger sum %d / total %d, want equal and non-zero", l.Sum(), l.TotalNs)
	}
	if l.Status != string(StatusDone) {
		t.Errorf("SSE ledger status %q, want done", l.Status)
	}
}

// TestObsStageHistograms: finished traced jobs feed the per-stage
// duration histograms in the daemon registry.
func TestObsStageHistograms(t *testing.T) {
	t.Parallel()
	reg := telemetry.NewRegistry()
	_, h := obsServer(t, obs.ModeSpans, Config{Registry: reg})
	id := mustAccept(t, h.URL, JobSpec{Bench: "db", Scale: 0.01, Interval: 977})
	waitTerminal(t, h.URL, id, 60*time.Second)

	for _, st := range []obs.Stage{obs.StageAccept, obs.StageQueueWait, obs.StageVMRun} {
		hist := reg.Histogram(MetricStageUs(st), telemetry.ExpBuckets(1, 24))
		if got := hist.Summarize().Count; got == 0 {
			t.Errorf("histogram %s empty after a traced job", MetricStageUs(st))
		}
	}
	// The Prometheus surface renders them.
	resp, err := http.Get(h.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body) //nolint:errcheck
	if !strings.Contains(buf.String(), "stage_vm_run_duration_us") {
		t.Errorf("/metrics missing stage histogram:\n%.400s", buf.String())
	}
}

// TestObsTraceDir: -trace-dir behaviour — each finished traced job
// leaves a valid merged Chrome trace file named after it.
func TestObsTraceDir(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	_, h := obsServer(t, obs.ModeSpans, Config{TraceDir: dir})
	id := mustAccept(t, h.URL, JobSpec{Bench: "db", Scale: 0.01, Interval: 977})
	waitTerminal(t, h.URL, id, 60*time.Second)

	data, err := os.ReadFile(filepath.Join(dir, id+".trace.json"))
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid Chrome JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}
}

// TestObsGetEndpoint: GET /v1/obs reports mode and exact ring
// accounting; servers without an obs state 404.
func TestObsGetEndpoint(t *testing.T) {
	t.Parallel()
	_, h := obsServer(t, obs.ModeSpans, Config{})
	id := mustAccept(t, h.URL, JobSpec{Bench: "db", Scale: 0.01, Interval: 977})
	waitTerminal(t, h.URL, id, 60*time.Second)

	resp, err := http.Get(h.URL + "/v1/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m["mode"] != "spans" {
		t.Errorf("mode = %v, want spans", m["mode"])
	}
	if tot, _ := m["spans_total"].(float64); tot < 7 {
		t.Errorf("spans_total = %v, want >= 7 (one full chain)", m["spans_total"])
	}
	if d, _ := m["spans_dropped"].(float64); d != 0 {
		t.Errorf("spans_dropped = %v, want 0", m["spans_dropped"])
	}

	_, h2 := newTestServer(t, Config{})
	resp2, err := http.Get(h2.URL + "/v1/obs")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/obs without obs state: %d, want 404", resp2.StatusCode)
	}
}

// TestObsLedgerSumEqualsJobLatency ties the ledger to the job record:
// for a deterministic clock, total_ns equals finished-created exactly.
func TestObsLedgerSumEqualsJobLatency(t *testing.T) {
	t.Parallel()
	// Obs and the job record share one clock so the comparison is exact.
	st := obs.NewState(obs.Options{Mode: obs.ModeSpans})
	s, h := newTestServer(t, Config{Obs: st})
	_ = s
	id := mustAccept(t, h.URL, JobSpec{Bench: "db", Scale: 0.01, Interval: 977})
	v := waitTerminal(t, h.URL, id, 60*time.Second)
	if v.Status != StatusDone {
		t.Fatalf("job %s: %s (%s)", id, v.Status, v.Error)
	}
	if v.Ledger.Sum() != v.Ledger.TotalNs {
		t.Fatalf("ledger sum %d != total %d", v.Ledger.Sum(), v.Ledger.TotalNs)
	}
	// Both clocks are time.Now; the chain opens at handler entry (before
	// job.created) and closes at terminal (job.finished is stamped just
	// before the chain closes), so the ledger total brackets the job
	// record's latency tightly.
	if v.Started == nil || v.Finished == nil {
		t.Fatal("missing timestamps")
	}
	recLatency := v.Finished.Sub(v.Created).Nanoseconds()
	if v.Ledger.TotalNs < recLatency {
		t.Errorf("ledger total %dns < created-to-finished %dns", v.Ledger.TotalNs, recLatency)
	}
	if slack := v.Ledger.TotalNs - recLatency; slack > int64(time.Second) {
		t.Errorf("ledger total exceeds job latency by %v — implausible", time.Duration(slack))
	}
}
