package service

import (
	"io"
	"net/http"

	"instrsample/internal/experiment"
)

// CAS endpoint metrics.
const (
	MetricCASHits     = "cas.get.hit"      // counter: GET /v1/cas served
	MetricCASMisses   = "cas.get.miss"     // counter: GET /v1/cas 404s
	MetricCASStored   = "cas.put.stored"   // counter: PUT /v1/cas accepted
	MetricCASRejected = "cas.put.rejected" // counter: PUT /v1/cas integrity rejects
)

// The CAS endpoints expose the daemon's disk cache as a network
// content-addressed store (DESIGN.md §15): GET serves an entry's raw
// stored bytes by address, PUT replicates an entry a peer computed.
// Every isampd worker and the isampfleet coordinator serve the same two
// routes, so any node's warm cache benefits the whole fleet. A PUT is
// verified against the address before it touches the store — a receiver
// never trusts the sender — and a node running without a cache answers
// 404 for the whole surface.

func (s *Server) handleCASGet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Cache == nil {
		writeErr(w, http.StatusNotFound, "no cache configured")
		return
	}
	addr := r.PathValue("addr")
	if !experiment.ValidAddr(addr) {
		writeErr(w, http.StatusBadRequest, "invalid CAS address %q", addr)
		return
	}
	data, ok := s.cfg.Cache.GetAddr(addr)
	if !ok {
		s.reg.Counter(MetricCASMisses).Inc()
		writeErr(w, http.StatusNotFound, "no entry at %s", addr)
		return
	}
	s.reg.Counter(MetricCASHits).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck // client went away
}

func (s *Server) handleCASPut(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Cache == nil {
		writeErr(w, http.StatusNotFound, "no cache configured")
		return
	}
	addr := r.PathValue("addr")
	if !experiment.ValidAddr(addr) {
		writeErr(w, http.StatusBadRequest, "invalid CAS address %q", addr)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "body: %v", err)
		return
	}
	if err := experiment.VerifyCAS(s.cfg.Cache.ID(), addr, body); err != nil {
		s.reg.Counter(MetricCASRejected).Inc()
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if err := s.cfg.Cache.PutAddr(addr, body); err != nil {
		writeErr(w, http.StatusInternalServerError, "store: %v", err)
		return
	}
	s.reg.Counter(MetricCASStored).Inc()
	writeJSON(w, http.StatusOK, map[string]string{"stored": addr})
}

// Cache returns the daemon's result cache (nil when running uncached).
// The fleet coordinator uses it to learn a worker-compatible store.
func (s *Server) Cache() *experiment.Cache { return s.cfg.Cache }

// BuildResult assembles a job's terminal payload from its engine cell
// result(s) — ref is the overlap reference cell, nil otherwise. It is
// exported for the fleet coordinator, which resolves CAS fast-path hits
// into the same result shape a local run produces, so remote hits stay
// byte-identical with local ones.
func BuildResult(spec JobSpec, main, ref *experiment.CellResult) *JobResult {
	return buildResult(spec, main, ref)
}
