// Package service implements the profiling-as-a-service daemon behind
// cmd/isampd: a bounded-queue HTTP job API over the experiment engine.
// Jobs — assembly sources or named suite benchmarks, with the same
// variation/trigger/interval vocabulary as the isamp flags — are
// validated, queued under backpressure (429 once the queue is full,
// never unbounded buffering), executed on a worker pool through the
// engine's memo table and build-ID-keyed result cache, and observable
// three ways: polled job JSON, a Server-Sent-Events stream of the
// telemetry metrics series while the job runs, and a Prometheus
// /metrics endpoint for the daemon itself. Cancellation (DELETE, client
// timeout, daemon drain) propagates through context to a vm.Cancel
// token polled at observation points, so a running job stops within one
// observation interval. See DESIGN.md §10.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"instrsample/internal/bench"
	"instrsample/internal/core"
	"instrsample/internal/experiment"
	"instrsample/internal/scenario"
)

// Limits every job must respect; requests outside them are rejected with
// 400 before anything is queued.
const (
	// MaxSourceBytes bounds the assembly source of a source job.
	MaxSourceBytes = 1 << 20
	// MaxScale bounds benchmark scale.
	MaxScale = 10
	// MinEventsInterval floors the SSE metrics cadence (in VM cycles) so
	// a job cannot ask for a per-cycle capture storm.
	MinEventsInterval = 1 << 10
)

// JobSpec is the POST /v1/jobs request body. Exactly one of Source and
// Bench selects the program; the remaining fields mirror the isamp
// run/bench flags (same names, same defaults), so any command line
// translates 1:1 into a job and produces byte-identical results.
type JobSpec struct {
	// Source is an assembly program (isamp run's .vasm contents).
	Source string `json:"source,omitempty"`
	// Bench names a suite benchmark (isamp bench's argument; "resonant"
	// is also accepted).
	Bench string `json:"bench,omitempty"`
	// Scenario selects a program from a seeded workload family
	// (internal/scenario): the family spec is embedded verbatim and
	// ScenarioIndex picks the member. Mutually exclusive with Source and
	// Bench. The cell key carries the family's spec hash, so identical
	// family specs share cache entries across jobs and machines.
	Scenario *scenario.Family `json:"scenario,omitempty"`
	// ScenarioIndex is the family member to run (default 0; must be in
	// [0, Scenario.Count)).
	ScenarioIndex int `json:"scenario_index,omitempty"`
	// Scale is the benchmark scale (bench jobs only; default 0.1).
	Scale float64 `json:"scale,omitempty"`
	// Instrument lists instrumentations, the -instrument flag's
	// vocabulary: call-edge, field-access, edge, block-count, path,
	// value, cct, cct-sampled.
	Instrument []string `json:"instrument,omitempty"`
	// Variation selects the framework transform: "" (none), full,
	// partial, nodup, hybrid.
	Variation string `json:"variation,omitempty"`
	// Yieldopt applies the yieldpoint optimization (requires Variation).
	Yieldopt bool `json:"yieldopt,omitempty"`
	// Trigger is the trigger kind: counter (default), perthread, timer,
	// random, never, always.
	Trigger string `json:"trigger,omitempty"`
	// Interval is the counter-family sample interval (default 1000).
	Interval int64 `json:"interval,omitempty"`
	// Period is the timer trigger period in cycles (default 3330000).
	Period uint64 `json:"period,omitempty"`
	// Jitter is the randomized trigger jitter (default Interval/10).
	Jitter int64 `json:"jitter,omitempty"`
	// ICache enables the instruction-cache model.
	ICache bool `json:"icache,omitempty"`
	// Verify attaches the runtime invariant oracle; the job fails on any
	// violation and the result carries the oracle verdict.
	Verify bool `json:"verify,omitempty"`
	// Overlap additionally runs the exhaustive (never-trigger, no
	// framework) reference configuration and reports the paper's overlap
	// percentage between each sampled profile and its exhaustive
	// counterpart. Requires Instrument.
	Overlap bool `json:"overlap,omitempty"`
	// EventsInterval is the SSE metrics capture cadence in VM cycles
	// (default 65536, floor MinEventsInterval).
	EventsInterval uint64 `json:"events_interval,omitempty"`
	// MaxCycles caps the simulated run (default the VM's own 1<<40).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// TimeoutMs is a wall-clock deadline for the job; exceeding it fails
	// the job (it does not count as a cancellation).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// withDefaults returns the spec with isamp's flag defaults filled in.
func (s JobSpec) withDefaults() JobSpec {
	if s.Scale == 0 {
		s.Scale = 0.1
	}
	if s.Trigger == "" {
		s.Trigger = "counter"
	}
	if s.Interval == 0 {
		s.Interval = 1000
	}
	if s.Period == 0 {
		s.Period = 3330000
	}
	if s.EventsInterval == 0 {
		s.EventsInterval = 1 << 16
	}
	if s.EventsInterval < MinEventsInterval {
		s.EventsInterval = MinEventsInterval
	}
	return s
}

// Valid reports whether the daemon would accept this spec: it applies
// the same defaulting and validation as POST /v1/jobs. The load harness
// uses it to guarantee generated traffic never manufactures 400s
// (DESIGN.md §11).
func (s JobSpec) Valid() error { return s.withDefaults().validate() }

// CellKey returns the spec's canonical measurement-cell key after
// defaulting — the identity the memo table, the result cache and the
// fleet's single-flight/sharding layers all agree on. Two specs with
// equal CellKeys produce byte-identical results on the same build.
func (s JobSpec) CellKey() string { return s.withDefaults().cellKey() }

// validInstr matches experiment.OptsSpec's instrumenter vocabulary.
var validInstr = map[string]bool{
	"call-edge": true, "field-access": true, "edge": true,
	"block-count": true, "path": true, "value": true,
	"cct": true, "cct-sampled": true, "receiver": true,
}

// validate rejects malformed specs. It assumes withDefaults has run.
func (s JobSpec) validate() error {
	nProg := 0
	for _, set := range []bool{s.Source != "", s.Bench != "", s.Scenario != nil} {
		if set {
			nProg++
		}
	}
	switch {
	case nProg == 0:
		return fmt.Errorf("one of source, bench or scenario is required")
	case nProg > 1:
		return fmt.Errorf("source, bench and scenario are mutually exclusive")
	case len(s.Source) > MaxSourceBytes:
		return fmt.Errorf("source exceeds %d bytes", MaxSourceBytes)
	case s.Scale < 0 || s.Scale > MaxScale:
		return fmt.Errorf("scale %g out of range (0, %d]", s.Scale, MaxScale)
	case s.Interval < 0:
		return fmt.Errorf("interval must be positive")
	case s.TimeoutMs < 0:
		return fmt.Errorf("timeout_ms must be non-negative")
	}
	if s.Bench != "" && s.Bench != "resonant" {
		if _, err := bench.ByName(s.Bench); err != nil {
			return err
		}
	}
	if s.Scenario != nil {
		if err := s.Scenario.Validate(); err != nil {
			return err
		}
		if s.ScenarioIndex < 0 || s.ScenarioIndex >= s.Scenario.Count {
			return fmt.Errorf("scenario_index %d out of range [0, %d)", s.ScenarioIndex, s.Scenario.Count)
		}
	} else if s.ScenarioIndex != 0 {
		return fmt.Errorf("scenario_index requires scenario")
	}
	for _, name := range s.Instrument {
		if !validInstr[name] {
			return fmt.Errorf("unknown instrumentation %q", name)
		}
	}
	switch s.Variation {
	case "", "full", "partial", "nodup", "hybrid":
	default:
		return fmt.Errorf("unknown variation %q (want full, partial, nodup, hybrid)", s.Variation)
	}
	if s.Yieldopt && s.Variation == "" {
		return fmt.Errorf("yieldopt requires variation")
	}
	switch s.Trigger {
	case "counter", "perthread", "timer", "random", "never", "always":
	default:
		return fmt.Errorf("unknown trigger %q (want counter, perthread, timer, random, never, always)", s.Trigger)
	}
	if s.Overlap && len(s.Instrument) == 0 {
		return fmt.Errorf("overlap requires instrument")
	}
	return nil
}

// optsSpec maps the job to the experiment package's canonical compile
// description — the same one the experiment cells key on.
func (s JobSpec) optsSpec() experiment.OptsSpec {
	o := experiment.OptsSpec{
		Instr:  append([]string(nil), s.Instrument...),
		Verify: s.Verify,
	}
	var v core.Variation
	switch s.Variation {
	case "full":
		v = core.FullDuplication
	case "partial":
		v = core.PartialDuplication
	case "nodup":
		v = core.NoDuplication
	case "hybrid":
		v = core.Hybrid
	default:
		return o
	}
	o.Framework = &core.Options{Variation: v, YieldpointOpt: s.Yieldopt}
	return o
}

// triggerSpec maps the job's trigger selection to the experiment
// package's pure-data trigger description, using isamp's defaulting
// (random jitter = interval/10, seed 1).
func (s JobSpec) triggerSpec() experiment.TriggerSpec {
	switch s.Trigger {
	case "perthread":
		return experiment.TriggerSpec{Kind: "perthread", Interval: s.Interval}
	case "timer":
		return experiment.TimerTrigger(s.Period)
	case "random":
		j := s.Jitter
		if j == 0 {
			j = s.Interval / 10
		}
		return experiment.RandomizedTrigger(s.Interval, j, 1)
	case "never":
		return experiment.NeverTrigger()
	case "always":
		return experiment.AlwaysTrigger()
	default:
		return experiment.CounterTrigger(s.Interval)
	}
}

// cellKey canonically identifies the job's measurement for the engine's
// memo table and the on-disk cache. The "job" prefix keeps service cells
// in a separate namespace from the experiment artifacts' cells (whose
// results predate the Return/Output fields). The SSE events cadence is
// deliberately not part of the key: it changes what a client observes
// mid-run, never the result.
func (s JobSpec) cellKey() string {
	var prog string
	switch {
	case s.Source != "":
		sum := sha256.Sum256([]byte(s.Source))
		prog = "src=" + hex.EncodeToString(sum[:16])
	case s.Scenario != nil:
		prog = fmt.Sprintf("scn=%s/%d", s.Scenario.SpecHash()[:16], s.ScenarioIndex)
	default:
		prog = fmt.Sprintf("bench=%s scale=%g", s.Bench, s.Scale)
	}
	return fmt.Sprintf("job %s icache=%v max=%d %s %s",
		prog, s.ICache, s.MaxCycles, s.optsSpec().Key(), s.triggerSpec().Key())
}

// overlapSpec is the exhaustive reference configuration an Overlap job
// compares against: same program and instrumentations, no framework,
// never-firing trigger, no oracle.
func (s JobSpec) overlapSpec() JobSpec {
	ref := s
	ref.Variation, ref.Yieldopt = "", false
	ref.Trigger, ref.Interval, ref.Jitter, ref.Period = "never", 0, 0, 0
	ref.Verify, ref.Overlap = false, false
	return ref.withDefaults()
}

// overlapKey is the reference configuration's cell key.
func (s JobSpec) overlapKey() string { return s.overlapSpec().cellKey() }

// describe renders a short human label for logs and the job JSON.
func (s JobSpec) describe() string {
	prog := s.Bench
	switch {
	case s.Source != "":
		prog = "source"
	case s.Scenario != nil:
		prog = fmt.Sprintf("scenario:%s/%d", s.Scenario.Name, s.ScenarioIndex)
	}
	parts := []string{prog}
	if len(s.Instrument) > 0 {
		parts = append(parts, strings.Join(s.Instrument, "+"))
	}
	if s.Variation != "" {
		parts = append(parts, s.Variation)
	}
	parts = append(parts, s.Trigger)
	return strings.Join(parts, " ")
}
