package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"instrsample/internal/telemetry"
)

// newTestServer builds a Server plus an httptest front end and tears
// both down (force-draining any stuck jobs) when the test ends.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	h := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Logf("shutdown took the forced path: %v", err)
		}
		h.Close()
	})
	return s, h
}

// postJob submits a spec and returns the response (body closed) plus its
// decoded JSON body.
func postJob(t *testing.T, base string, spec JobSpec) (*http.Response, map[string]any) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m) //nolint:errcheck // some errors have empty bodies
	return resp, m
}

// mustAccept submits a spec that must be accepted and returns the job ID.
func mustAccept(t *testing.T, base string, spec JobSpec) string {
	t.Helper()
	resp, m := postJob(t, base, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: got %d (%v), want 202", resp.StatusCode, m)
	}
	id, _ := m["id"].(string)
	if id == "" {
		t.Fatalf("submit: no id in %v", m)
	}
	return id
}

// getJob fetches a job's view.
func getJob(t *testing.T, base, id string) jobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job view: %v", err)
	}
	return v
}

// waitTerminal polls a job until it reaches a terminal state.
func waitTerminal(t *testing.T, base, id string, timeout time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := getJob(t, base, id)
		if v.Status.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, v.Status, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitRunning polls a job until it leaves the queue.
func waitRunning(t *testing.T, base, id string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := getJob(t, base, id)
		if v.Status == StatusRunning {
			return
		}
		if v.Status.Terminal() {
			t.Fatalf("job %s terminal (%s) before running", id, v.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, v.Status, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// slowSrc builds an effectively unbounded counted loop; n varies the
// cell key so slow jobs in different tests never share a memo flight.
func slowSrc(n int64) string {
	return fmt.Sprintf(`
func main() {
entry:
  const i, 0
  const n, %d
  const one, 1
loop:
  cmplt c, i, n
  br c, body, done
body:
  add i, i, one
  jmp loop
done:
  ret i
}
`, n)
}

func TestSubmitValidation(t *testing.T) {
	t.Parallel()
	_, h := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", "not json at all", http.StatusBadRequest},
		{"empty spec", "{}", http.StatusBadRequest},
		{"both source and bench", `{"source":"x","bench":"compress"}`, http.StatusBadRequest},
		{"unknown field", `{"bench":"compress","shoesize":9}`, http.StatusBadRequest},
		{"unknown bench", `{"bench":"nope"}`, http.StatusBadRequest},
		{"bad trigger", `{"bench":"compress","trigger":"sometimes"}`, http.StatusBadRequest},
		{"bad variation", `{"bench":"compress","variation":"total"}`, http.StatusBadRequest},
		{"yieldopt without variation", `{"bench":"compress","yieldopt":true}`, http.StatusBadRequest},
		{"bad instrumentation", `{"bench":"compress","instrument":["heap"]}`, http.StatusBadRequest},
		{"overlap without instrument", `{"bench":"compress","overlap":true}`, http.StatusBadRequest},
		{"scale out of range", `{"bench":"compress","scale":999}`, http.StatusBadRequest},
		{"oversized body", `{"source":"` + strings.Repeat("x", 3<<20) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, err := http.Post(h.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	resp, err := http.Get(h.URL + "/v1/jobs/job-000042")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestJobMatchesDirectRun is the parity gate: a job submitted over HTTP
// must produce, byte for byte, the same result JSON as running the same
// configuration directly through the isamp-mirroring pipeline.
func TestJobMatchesDirectRun(t *testing.T) {
	t.Parallel()
	spec := JobSpec{
		Bench:      "compress",
		Scale:      0.03,
		Instrument: []string{"call-edge", "field-access"},
		Variation:  "full",
		Trigger:    "counter",
		Interval:   500,
		Verify:     true,
	}
	_, h := newTestServer(t, Config{Workers: 2})
	id := mustAccept(t, h.URL, spec)
	v := waitTerminal(t, h.URL, id, 60*time.Second)
	if v.Status != StatusDone {
		t.Fatalf("job %s: status %s (error %q), want done", id, v.Status, v.Error)
	}
	if v.Result == nil {
		t.Fatal("done job has no result")
	}
	if v.Started == nil || v.Finished == nil {
		t.Error("done job missing started/finished timestamps")
	}
	if v.Result.Oracle == nil || !v.Result.Oracle.OK {
		t.Errorf("verify job missing ok oracle verdict: %+v", v.Result.Oracle)
	}
	if v.Result.Stats.Cycles == 0 || len(v.Result.Profiles) != 2 {
		t.Errorf("implausible result: cycles=%d profiles=%d", v.Result.Stats.Cycles, len(v.Result.Profiles))
	}

	cr, err := runSpec(context.Background(), spec.withDefaults(), nil, false)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	want, err := json.Marshal(buildResult(spec.withDefaults(), cr, nil))
	if err != nil {
		t.Fatalf("marshal direct result: %v", err)
	}
	got, err := json.Marshal(v.Result)
	if err != nil {
		t.Fatalf("marshal http result: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("HTTP result differs from direct run:\n http: %s\ndirect: %s", got, want)
	}
}

// TestIdenticalJobsShareResult: the second identical job is served from
// the engine memo — same result, and its event stream carries no metrics
// rows (only the done event), which is the documented cache-hit quirk.
func TestIdenticalJobsShareResult(t *testing.T) {
	t.Parallel()
	spec := JobSpec{
		Bench:      "db",
		Scale:      0.03,
		Instrument: []string{"call-edge"},
		Trigger:    "counter",
		Interval:   1000,
	}
	_, h := newTestServer(t, Config{})
	first := waitTerminal(t, h.URL, mustAccept(t, h.URL, spec), 60*time.Second)
	second := waitTerminal(t, h.URL, mustAccept(t, h.URL, spec), 60*time.Second)
	if first.Status != StatusDone || second.Status != StatusDone {
		t.Fatalf("statuses %s/%s, want done/done", first.Status, second.Status)
	}
	a, _ := json.Marshal(first.Result)
	b, _ := json.Marshal(second.Result)
	if !bytes.Equal(a, b) {
		t.Errorf("memo-served result differs:\n%s\n%s", a, b)
	}
	metrics, _, done := readSSE(t, h.URL, second.ID, 10*time.Second)
	if metrics != 0 {
		t.Errorf("memo-served job streamed %d metrics rows, want 0", metrics)
	}
	if done != string(StatusDone) {
		t.Errorf("done event status %q, want done", done)
	}
}

// readSSE consumes a job's event stream until the done event and returns
// the number of metrics events, whether a columns event arrived, and the
// status carried by the done event.
func readSSE(t *testing.T, base, id string, timeout time.Duration) (metrics int, columns bool, done string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("events content-type %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			switch event {
			case "metrics":
				metrics++
			case "columns":
				columns = true
			}
		case strings.HasPrefix(line, "data: ") && event == "done":
			var d struct {
				Status string `json:"status"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &d); err != nil {
				t.Fatalf("bad done payload %q: %v", line, err)
			}
			return metrics, columns, d.Status
		}
	}
	t.Fatalf("event stream ended without done event (scan err %v)", sc.Err())
	return
}

// TestSSEStreamsMetrics: a live (non-memo-served) job streams the
// telemetry series — a columns event, metrics rows, then done.
func TestSSEStreamsMetrics(t *testing.T) {
	t.Parallel()
	spec := JobSpec{
		Bench:          "compress",
		Scale:          0.03,
		Instrument:     []string{"call-edge"},
		Trigger:        "counter",
		Interval:       137, // unique key: keep this run off any memo flight
		EventsInterval: 1 << 10,
	}
	_, h := newTestServer(t, Config{})
	id := mustAccept(t, h.URL, spec)
	metrics, columns, done := readSSE(t, h.URL, id, 60*time.Second)
	if metrics == 0 {
		t.Error("live job streamed no metrics events")
	}
	if !columns {
		t.Error("live job streamed no columns event")
	}
	if done != string(StatusDone) {
		t.Errorf("done event status %q, want done", done)
	}
	// The backlog replays in full for a late subscriber too.
	again, _, _ := readSSE(t, h.URL, id, 10*time.Second)
	if again != metrics {
		t.Errorf("late subscriber got %d metrics rows, live one got %d", again, metrics)
	}
}

// TestBackpressure: a full queue answers 429 + Retry-After; a queued job
// can be cancelled before it ever runs; a running one stops on DELETE.
func TestBackpressure(t *testing.T) {
	t.Parallel()
	s, h := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	running := mustAccept(t, h.URL, JobSpec{Source: slowSrc(1 << 61)})
	waitRunning(t, h.URL, running, 10*time.Second)
	queued := mustAccept(t, h.URL, JobSpec{Source: slowSrc(1<<61 + 1)})

	resp, m := postJob(t, h.URL, JobSpec{Source: slowSrc(1<<61 + 2)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d (%v), want 429", resp.StatusCode, m)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < retryAfterMin || ra > retryAfterMax {
		t.Errorf("Retry-After %q, want an integer in [%d,%d]",
			resp.Header.Get("Retry-After"), retryAfterMin, retryAfterMax)
	}
	if got := s.Registry().Counter(MetricJobsRejected).Value(); got != 1 {
		t.Errorf("jobs.rejected = %d, want 1", got)
	}

	// Cancel the queued job: it must resolve without ever running.
	cancelJob(t, h.URL, queued, http.StatusAccepted)
	v := waitTerminal(t, h.URL, queued, 5*time.Second)
	if v.Status != StatusCancelled || v.Started != nil {
		t.Errorf("queued job after cancel: status %s started %v, want cancelled/never", v.Status, v.Started)
	}

	// Cancel the running job: the VM must stop at an observation point
	// well within the polling budget, and report cancelled.
	start := time.Now()
	cancelJob(t, h.URL, running, http.StatusAccepted)
	v = waitTerminal(t, h.URL, running, 10*time.Second)
	if v.Status != StatusCancelled {
		t.Errorf("running job after cancel: status %s (error %q), want cancelled", v.Status, v.Error)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancel took %v, want prompt termination", d)
	}
	// Cancelling a terminal job is a conflict, not a state change.
	cancelJob(t, h.URL, running, http.StatusConflict)
}

func cancelJob(t *testing.T, base, id string, want int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE job: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != want {
		t.Errorf("DELETE %s: status %d, want %d", id, resp.StatusCode, want)
	}
}

// TestTimeoutFails: a job exceeding its own deadline is failed (a budget
// outcome), not cancelled (an operator request).
func TestTimeoutFails(t *testing.T) {
	t.Parallel()
	_, h := newTestServer(t, Config{})
	id := mustAccept(t, h.URL, JobSpec{Source: slowSrc(1<<61 + 3), TimeoutMs: 150})
	v := waitTerminal(t, h.URL, id, 10*time.Second)
	if v.Status != StatusFailed || !strings.Contains(v.Error, "timeout") {
		t.Errorf("timed-out job: status %s error %q, want failed/timeout", v.Status, v.Error)
	}
}

// TestOverlapJob: an Overlap job additionally runs the exhaustive
// reference and reports a per-profile overlap percentage.
func TestOverlapJob(t *testing.T) {
	t.Parallel()
	spec := JobSpec{
		Bench:      "db",
		Scale:      0.03,
		Instrument: []string{"call-edge", "field-access"},
		Variation:  "partial",
		Trigger:    "counter",
		Interval:   800,
		Overlap:    true,
	}
	_, h := newTestServer(t, Config{Workers: 2})
	v := waitTerminal(t, h.URL, mustAccept(t, h.URL, spec), 120*time.Second)
	if v.Status != StatusDone {
		t.Fatalf("overlap job: status %s (error %q)", v.Status, v.Error)
	}
	if len(v.Result.Overlap) != 2 {
		t.Fatalf("overlap entries %d, want 2", len(v.Result.Overlap))
	}
	for _, ov := range v.Result.Overlap {
		if ov.Percent < 0 || ov.Percent > 100 {
			t.Errorf("overlap %s = %g, want [0,100]", ov.Name, ov.Percent)
		}
	}
}

// TestMetricsEndpoint validates the Prometheus surface end to end.
func TestMetricsEndpoint(t *testing.T) {
	t.Parallel()
	_, h := newTestServer(t, Config{})
	v := waitTerminal(t, h.URL, mustAccept(t, h.URL, JobSpec{Bench: "db", Scale: 0.01, Interval: 211}), 60*time.Second)
	if v.Status != StatusDone {
		t.Fatalf("job: status %s (error %q)", v.Status, v.Error)
	}
	resp, err := http.Get(h.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content-type %q, want 0.0.4 text exposition", ct)
	}
	out := readAll(t, resp)
	for _, want := range []string{
		"# TYPE jobs_accepted counter\njobs_accepted 1\n",
		"# TYPE jobs_completed counter\njobs_completed 1\n",
		"# TYPE queue_depth gauge\nqueue_depth 0\n",
		"# TYPE job_duration_ms histogram\n",
		`job_duration_ms_bucket{le="+Inf"} 1`,
		"job_duration_ms_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n--- got ---\n%s", want, out)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return string(b)
}

// TestHealthzAndDrain: healthz reports ok, then draining; a draining
// server refuses new jobs with 503 and Shutdown returns nil on a clean
// drain.
func TestHealthzAndDrain(t *testing.T) {
	t.Parallel()
	s, h := newTestServer(t, Config{})
	resp, err := http.Get(h.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("healthz body %q, want status ok", body)
	}

	v := waitTerminal(t, h.URL, mustAccept(t, h.URL, JobSpec{Bench: "db", Scale: 0.01, Interval: 223}), 60*time.Second)
	if v.Status != StatusDone {
		t.Fatalf("job: status %s (error %q)", v.Status, v.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	r2, m := postJob(t, h.URL, JobSpec{Bench: "db"})
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post after drain: status %d (%v), want 503", r2.StatusCode, m)
	}
	resp, err = http.Get(h.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	resp.Body.Close()
	if !strings.Contains(body, `"status": "draining"`) {
		t.Errorf("healthz after drain %q, want draining", body)
	}
	// The drained job stays queryable.
	if got := getJob(t, h.URL, v.ID); got.Status != StatusDone {
		t.Errorf("job after drain: status %s, want done", got.Status)
	}
}

// TestForcedShutdownCancelsRunning: past the drain deadline, running jobs
// are hard-cancelled (stopping at the next observation point) and
// resolved cancelled; Shutdown reports the forced path.
func TestForcedShutdownCancelsRunning(t *testing.T) {
	t.Parallel()
	s, h := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	running := mustAccept(t, h.URL, JobSpec{Source: slowSrc(1<<61 + 4)})
	waitRunning(t, h.URL, running, 10*time.Second)
	queued := mustAccept(t, h.URL, JobSpec{Source: slowSrc(1<<61 + 5)})

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Errorf("forced shutdown returned %v, want DeadlineExceeded", err)
	}
	for _, id := range []string{running, queued} {
		if v := getJob(t, h.URL, id); v.Status != StatusCancelled {
			t.Errorf("job %s after forced shutdown: status %s, want cancelled", id, v.Status)
		}
	}
}

// TestCellKeyIgnoresEventsCadence: the SSE cadence must not fragment the
// memo/cache keyspace, and the overlap reference key must be the
// exhaustive configuration's own key.
func TestCellKeyIgnoresEventsCadence(t *testing.T) {
	t.Parallel()
	a := JobSpec{Bench: "compress", Instrument: []string{"call-edge"}, Variation: "full"}.withDefaults()
	b := a
	b.EventsInterval = 1 << 20
	if a.cellKey() != b.cellKey() {
		t.Errorf("events cadence leaked into the cell key:\n%s\n%s", a.cellKey(), b.cellKey())
	}
	if a.cellKey() == a.overlapKey() {
		t.Error("overlap reference key equals the sampled key")
	}
	ref := a.overlapSpec()
	if ref.Trigger != "never" || ref.Variation != "" || ref.Verify {
		t.Errorf("overlap reference spec not exhaustive: %+v", ref)
	}
	if err := ref.validate(); err != nil {
		t.Errorf("overlap reference spec invalid: %v", err)
	}
}

// TestEventLogConcurrentPublishers drives the job event log — the store
// behind SSE backlog replay — from many concurrent publishers while
// readers consume incrementally via eventsSince, and checks the replay
// guarantees the handler relies on: the column set freezes at the first
// batch, rows only ever append (successive reads are prefix-consistent),
// no row is lost or duplicated, and each publisher's rows appear in its
// own publish order.
func TestEventLogConcurrentPublishers(t *testing.T) {
	const (
		publishers   = 8
		rowsPerPub   = 200
		totalRows    = publishers * rowsPerPub
		batchMaxRows = 7
	)
	j := newJob("job-test", JobSpec{}, context.Background(), nil)
	cols := []string{"pub", "seq"}

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			seq := 0
			for seq < rowsPerPub {
				n := 1 + (seq+p)%batchMaxRows
				if seq+n > rowsPerPub {
					n = rowsPerPub - seq
				}
				batch := make([]telemetry.SeriesRow, n)
				for i := range batch {
					batch[i] = telemetry.SeriesRow{
						At:     uint64(seq + i),
						Values: []int64{int64(p), int64(seq + i)},
					}
				}
				j.appendEvents(cols, batch)
				seq += n
			}
		}(p)
	}

	// A concurrent reader consuming incrementally, exactly as the SSE
	// handler does: every eventsSince(sent) call must return rows it has
	// not seen, in log order, with earlier rows unchanged.
	readerDone := make(chan []telemetry.SeriesRow, 1)
	go func() {
		var got []telemetry.SeriesRow
		for len(got) < totalRows {
			_, rows := j.eventsSince(len(got))
			got = append(got, rows...)
		}
		readerDone <- got
	}()
	wg.Wait()
	var incremental []telemetry.SeriesRow
	select {
	case incremental = <-readerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("incremental reader starved")
	}

	// A late subscriber replaying the whole backlog at once (the SSE
	// handler's first flush) must see the identical sequence.
	gotCols, replay := j.eventsSince(0)
	if !reflect.DeepEqual(gotCols, cols) {
		t.Errorf("columns = %v, want %v (frozen at first batch)", gotCols, cols)
	}
	if len(replay) != totalRows {
		t.Fatalf("backlog replay has %d rows, want %d", len(replay), totalRows)
	}
	if !reflect.DeepEqual(incremental, replay) {
		t.Error("incremental reads and full backlog replay diverge")
	}

	// Per-publisher order is preserved and nothing is lost or duplicated.
	next := make([]int64, publishers)
	for i, row := range replay {
		p, seq := row.Values[0], row.Values[1]
		if p < 0 || int(p) >= publishers {
			t.Fatalf("row %d: bad publisher %d", i, p)
		}
		if seq != next[p] {
			t.Fatalf("row %d: publisher %d out of order: seq %d, want %d", i, p, seq, next[p])
		}
		next[p]++
	}
	for p, n := range next {
		if n != rowsPerPub {
			t.Errorf("publisher %d: %d rows survived, want %d", p, n, rowsPerPub)
		}
	}

	// Offsets past the end return no rows but still report the columns.
	if c, rows := j.eventsSince(totalRows + 5); rows != nil || !reflect.DeepEqual(c, cols) {
		t.Errorf("eventsSince past end = (%v, %d rows), want (columns, none)", c, len(rows))
	}
}

// TestIntrospectAndDeterministicClock covers the two load-harness test
// hooks: Introspect's job-population/drain snapshot and Config.Now's
// deterministic clock (job timestamps and the duration histogram must
// come from the injected clock, not the wall).
func TestIntrospectAndDeterministicClock(t *testing.T) {
	var mu sync.Mutex
	fake := time.Unix(1000, 0)
	advance := func(d time.Duration) {
		mu.Lock()
		fake = fake.Add(d)
		mu.Unlock()
	}
	cfg := Config{Workers: 1, QueueDepth: 4, Now: func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return fake
	}}
	s, ts := newTestServer(t, cfg)

	in := s.Introspect()
	if in.Draining || in.Queued != 0 || in.Running != 0 || in.Terminal != 0 {
		t.Errorf("fresh introspection = %+v", in)
	}
	if in.Goroutines <= 0 || in.HeapBytes == 0 {
		t.Errorf("introspection lacks process stats: %+v", in)
	}

	// A job that only terminates when cancelled, so the clock advance
	// deterministically lands between its created and finished stamps.
	id := mustAccept(t, ts.URL, JobSpec{Source: slowSrc(1<<61 + 6)})
	advance(250 * time.Millisecond)
	cancelJob(t, ts.URL, id, http.StatusAccepted)
	v := waitTerminal(t, ts.URL, id, 30*time.Second)
	if v.Status != StatusCancelled {
		t.Fatalf("job resolved %s (%s)", v.Status, v.Error)
	}
	if !v.Created.Equal(time.Unix(1000, 0)) {
		t.Errorf("created = %v, want the injected clock's epoch", v.Created)
	}
	if v.Finished == nil || v.Finished.Sub(v.Created) != 250*time.Millisecond {
		t.Errorf("finished-created = %v, want exactly 250ms of injected time", v.Finished.Sub(v.Created))
	}
	if d := s.Registry().Histogram(MetricJobDuration, nil).Summarize(); d.Count != 1 || d.Max != 250 {
		t.Errorf("duration histogram = %+v, want one 250ms observation", d)
	}

	in = s.Introspect()
	if in.Terminal != 1 || in.Queued != 0 || in.Running != 0 {
		t.Errorf("post-job introspection = %+v, want exactly one terminal job", in)
	}
}
