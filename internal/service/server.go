package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"instrsample/internal/experiment"
	"instrsample/internal/obs"
	"instrsample/internal/profile"
	"instrsample/internal/telemetry"
	"instrsample/internal/vm"
)

// Daemon metric names, exposed at GET /metrics in Prometheus text
// format (dots become underscores there).
const (
	MetricJobsAccepted  = "jobs.accepted"   // counter: jobs admitted to the queue
	MetricJobsRejected  = "jobs.rejected"   // counter: jobs refused with 429 (queue full)
	MetricJobsCompleted = "jobs.completed"  // counter: jobs finished successfully
	MetricJobsFailed    = "jobs.failed"     // counter: jobs finished in error (timeouts included)
	MetricJobsCancelled = "jobs.cancelled"  // counter: jobs cancelled (DELETE or drain)
	MetricQueueDepth    = "queue.depth"     // gauge: jobs waiting for a worker
	MetricJobDuration   = "job.duration_ms" // histogram: accepted-to-terminal latency
)

// MetricStageUs names the per-stage duration histogram for one
// lifecycle stage ("stage.<name>.duration_us"), fed from each finished
// job's attribution ledger when the obs mode is not off.
func MetricStageUs(stage obs.Stage) string {
	return "stage." + stage.String() + ".duration_us"
}

// Config configures a Server. The zero value is usable: 1 worker, a
// 64-deep queue, no cache, a private registry.
type Config struct {
	// Workers is the worker-pool size — the number of jobs running
	// concurrently (minimum 1).
	Workers int
	// QueueDepth bounds the number of accepted-but-not-started jobs.
	// A full queue rejects submissions with 429 + Retry-After; the
	// daemon never buffers without bound (default 64).
	QueueDepth int
	// RetainJobs bounds how many terminal jobs stay queryable; the
	// oldest are evicted first (default 1024).
	RetainJobs int
	// Cache, when non-nil, is the experiment engine's build-ID-keyed
	// on-disk result cache; identical jobs then complete near-instantly.
	Cache *experiment.Cache
	// Registry receives the daemon's metrics (nil = private registry).
	Registry *telemetry.Registry
	// MaxBodyBytes bounds a POST body (default 2 MiB).
	MaxBodyBytes int64
	// Logf, when non-nil, receives one line per job state change.
	Logf func(format string, args ...any)
	// Logger, when non-nil, receives structured leveled log records for
	// every job state change, each correlated with its job ID ("job"
	// attribute). Independent of Logf; set both to get both.
	Logger *slog.Logger
	// Obs is the daemon's observability state (internal/obs): the
	// runtime-togglable span/ledger mode and the shared span ring. Nil
	// means the obs layer is structurally absent — no mode check, no
	// chains, no /v1/obs — which is the baseline leg of the benchab A/B
	// comparison (DESIGN.md §14).
	Obs *obs.State
	// TraceDir, when non-empty, receives one merged Chrome trace JSON
	// file per finished traced job (<id>.trace.json) — the -trace-dir
	// flag of isampd.
	TraceDir string
	// Now, when non-nil, replaces time.Now for every job timestamp and
	// the job-duration histogram — the deterministic-clock test hook the
	// load harness and the service tests use (DESIGN.md §11). It does NOT
	// affect job timeouts (timeout_ms still arms a real wall-clock
	// context deadline).
	Now func() time.Time
}

// Server is the profiling-as-a-service daemon core: a bounded job queue
// in front of a worker pool layered on the experiment engine, plus the
// HTTP surface (Handler). It is independent of any particular
// http.Server so tests can drive it with httptest.
type Server struct {
	cfg Config
	eng *experiment.Engine
	reg *telemetry.Registry
	mux *http.ServeMux
	now func() time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *job
	workers    sync.WaitGroup

	drain DrainEstimator

	mu       sync.Mutex
	draining bool
	seq      uint64
	jobs     map[string]*job
	order    []string // insertion order, for retention eviction
	inflight sync.WaitGroup
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	if cfg.RetainJobs < 1 {
		cfg.RetainJobs = 1024
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 2 << 20
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		eng:        experiment.NewEngine(cfg.Workers, cfg.Cache),
		reg:        reg,
		mux:        http.NewServeMux(),
		now:        now,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, cfg.QueueDepth),
		jobs:       make(map[string]*job),
	}
	s.eng.AttachMetrics(reg)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/obs", s.handleObsGet)
	s.mux.HandleFunc("PUT /v1/obs", s.handleObsSet)
	s.mux.HandleFunc("GET /v1/cas/{addr}", s.handleCASGet)
	s.mux.HandleFunc("PUT /v1/cas/{addr}", s.handleCASPut)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the daemon's metrics registry.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// slogAt emits one structured record through the configured Logger;
// callers pass the job ID as a "job" attribute so every line correlates.
func (s *Server) slogAt(level slog.Level, msg string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Log(context.Background(), level, msg, args...)
	}
}

// jobFinished runs once per terminal traced job (job.onFinish): it
// feeds the attribution ledger into the per-stage duration histograms
// and, when TraceDir is set, dumps the job's merged Chrome trace.
func (s *Server) jobFinished(j *job) {
	l := j.trace.Ledger()
	if l == nil {
		return
	}
	for _, row := range l.Rows {
		s.reg.Histogram(MetricStageUs(row.Stage), telemetry.ExpBuckets(1, 24)).
			Observe(uint64(row.Ns / 1e3))
	}
	if s.cfg.TraceDir == "" {
		return
	}
	path := filepath.Join(s.cfg.TraceDir, j.id+".trace.json")
	f, err := os.Create(path)
	if err == nil {
		err = obs.WriteJobChromeTrace(f, j.trace)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		s.logf("job %s trace dump failed: %v", j.id, err)
		s.slogAt(slog.LevelWarn, "trace dump failed", "job", j.id, "path", path, "err", err)
	}
}

// Shutdown drains the daemon (DESIGN.md §10): new submissions are
// refused immediately; queued and running jobs get until ctx's deadline
// to finish on their own; past the deadline every remaining job context
// is cancelled, which stops running VMs at their next observation point
// and resolves those jobs as cancelled. Shutdown returns once every job
// is terminal and every worker has exited. ctx.Err() is returned when
// the hard-cancel path was taken, nil on a clean drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	var forced error
	select {
	case <-done:
	case <-ctx.Done():
		forced = ctx.Err()
		s.baseCancel() // stop running VMs at the next observation point
		s.resolveQueued()
		<-done
	}
	s.baseCancel()
	s.workers.Wait()
	return forced
}

// resolveQueued marks every job still sitting in the queue cancelled, so
// a forced shutdown cannot strand accepted jobs in a non-terminal state.
func (s *Server) resolveQueued() {
	for {
		select {
		case j := <-s.queue:
			s.reg.Gauge(MetricQueueDepth).Add(-1)
			j.finish(StatusCancelled, "server shutting down", nil)
			s.reg.Counter(MetricJobsCancelled).Inc()
		default:
			return
		}
	}
}

// worker pulls jobs from the queue until shutdown.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case j := <-s.queue:
			s.reg.Gauge(MetricQueueDepth).Add(-1)
			s.drain.Record(s.now())
			s.runJob(j)
		case <-s.baseCtx.Done():
			return
		}
	}
}

// runJob executes one job through the experiment engine and resolves its
// terminal state.
func (s *Server) runJob(j *job) {
	if !j.start() {
		return // cancelled while queued; already terminal
	}
	s.logf("job %s running (%s)", j.id, j.spec.describe())
	s.slogAt(slog.LevelInfo, "job running", "job", j.id, "spec", j.spec.describe())
	// The VM-trace decision is read at pickup: toggling to full applies to
	// jobs whose run starts after the toggle, and only jobs that carry a
	// span chain (mode was not off at accept) can attach one.
	full := j.trace != nil && s.cfg.Obs.Mode() == obs.ModeFull
	cells := []experiment.Cell{jobCell(j.spec, j, full)}
	if j.spec.Overlap {
		cells = append(cells, jobCell(j.spec.overlapSpec(), nil, false))
	}
	res, err := s.eng.DoContext(j.ctx, experiment.Config{Artifact: "service", Engine: s.eng, Owner: j.id}, cells)
	if err != nil {
		st, msg := s.classify(j, err)
		j.finish(st, msg, nil)
		s.account(j, st)
		return
	}
	var ref *experiment.CellResult
	if len(res) > 1 {
		ref = res[1]
	}
	j.finish(StatusDone, "", buildResult(j.spec, res[0], ref))
	s.account(j, StatusDone)
}

// classify maps a cell error to the job's terminal state: an operator
// DELETE (or daemon drain) is cancelled; a deadline is failed — the job
// ran out of its own budget; anything else is failed with the cause.
func (s *Server) classify(j *job, err error) (JobStatus, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return StatusFailed, fmt.Sprintf("timeout after %dms", j.spec.TimeoutMs)
	case j.cancelRequested():
		return StatusCancelled, "cancelled"
	case errors.Is(err, context.Canceled) || vm.IsCancelled(err):
		return StatusCancelled, "cancelled: " + err.Error()
	default:
		return StatusFailed, err.Error()
	}
}

// account bumps the terminal-state counters and the duration histogram.
func (s *Server) account(j *job, st JobStatus) {
	switch st {
	case StatusDone:
		s.reg.Counter(MetricJobsCompleted).Inc()
	case StatusCancelled:
		s.reg.Counter(MetricJobsCancelled).Inc()
	default:
		s.reg.Counter(MetricJobsFailed).Inc()
	}
	s.reg.Histogram(MetricJobDuration, telemetry.ExpBuckets(1, 16)).
		Observe(uint64(s.now().Sub(j.created).Milliseconds()))
	s.logf("job %s %s", j.id, st)
	level := slog.LevelInfo
	if st != StatusDone {
		level = slog.LevelWarn
	}
	s.slogAt(level, "job finished", "job", j.id, "status", string(st))
}

// buildResult assembles the job's terminal payload from the engine
// cell(s).
func buildResult(spec JobSpec, main, ref *experiment.CellResult) *JobResult {
	res := &JobResult{
		Return:             main.Return,
		Output:             main.Output,
		Stats:              main.Stats,
		CodeSize:           main.CodeSize,
		CheckingCodeSize:   main.CheckingCodeSize,
		DuplicatedCodeSize: main.DuplicatedCodeSize,
	}
	for _, p := range main.Profiles {
		res.Profiles = append(res.Profiles, dumpProfile(p))
	}
	if spec.Verify {
		res.Oracle = &OracleVerdict{
			OK:         true, // a violation fails the cell before it gets here
			Events:     main.Aux["oracle-events"],
			ExpectedP1: main.Aux["oracle-expected-p1"],
		}
	}
	if ref != nil {
		n := len(main.Profiles)
		if len(ref.Profiles) < n {
			n = len(ref.Profiles)
		}
		for i := 0; i < n; i++ {
			res.Overlap = append(res.Overlap, ProfileOverlap{
				Name:    main.Profiles[i].Name,
				Percent: profile.Overlap(main.Profiles[i], ref.Profiles[i]),
			})
		}
	}
	return res
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit admits a job: validate, register, enqueue — or push back.
// Backpressure is non-negotiable: the queue send never blocks; a full
// queue answers 429 with Retry-After so clients back off instead of the
// daemon buffering without bound.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The span chain opens in StageAccept before the body is read, so the
	// accept stage covers request decoding. A rejected request abandons
	// the unnamed chain, which records nothing (obs.JobTrace.SetJob).
	tr := s.cfg.Obs.StartJob()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	// One JSON value per request: trailing data is a malformed body, not
	// a second job.
	if dec.More() {
		writeErr(w, http.StatusBadRequest, "invalid request body: trailing data after job spec")
		return
	}
	tr.Begin(obs.StageValidate, "")
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid job: %v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.seq++
	id := fmt.Sprintf("job-%06d", s.seq)
	j := newJob(id, spec, s.baseCtx, s.now)
	j.trace = tr
	j.onFinish = s.jobFinished
	select {
	case s.queue <- j:
		tr.SetJob(id)
		tr.Begin(obs.StageQueueWait, "")
		s.jobs[id] = j
		s.order = append(s.order, id)
		s.evictLocked()
		s.inflight.Add(1)
		go func() { <-j.done; s.inflight.Done() }()
		s.mu.Unlock()
		s.reg.Counter(MetricJobsAccepted).Inc()
		s.reg.Gauge(MetricQueueDepth).Add(1)
		s.logf("job %s accepted (%s)", id, spec.describe())
		s.slogAt(slog.LevelInfo, "job accepted", "job", id, "spec", spec.describe())
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "status": string(StatusQueued)})
	default:
		s.seq-- // id not used
		j.cancel()
		s.mu.Unlock()
		s.reg.Counter(MetricJobsRejected).Inc()
		s.slogAt(slog.LevelWarn, "job rejected", "reason", "queue full", "depth", s.cfg.QueueDepth)
		// Retry-After is proportional: the observed drain rate's estimate
		// of how long clearing the full queue will take, not a constant.
		w.Header().Set("Retry-After", s.drain.Header(s.cfg.QueueDepth, s.now()))
		writeErr(w, http.StatusTooManyRequests, "queue full (%d deep); retry later", s.cfg.QueueDepth)
	}
}

// evictLocked drops the oldest terminal jobs beyond the retention cap.
// Non-terminal jobs are never evicted. Caller holds s.mu.
func (s *Server) evictLocked() {
	for len(s.jobs) > s.cfg.RetainJobs && len(s.order) > 0 {
		id := s.order[0]
		j, ok := s.jobs[id]
		if ok && !j.Status().Terminal() {
			return // oldest still live; nothing older to drop
		}
		s.order = s.order[1:]
		delete(s.jobs, id)
	}
}

// lookup finds a job by the request's {id} path value.
func (s *Server) lookup(r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleTrace serves the job's merged Chrome trace: its wall-clock span
// chain plus, for runs executed at obs=full, the VM's cycle-domain
// events aligned to wall time (DESIGN.md §14). Live jobs get the spans
// closed so far; the document is complete once the job is terminal.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if j.trace == nil {
		writeErr(w, http.StatusNotFound, "no trace for job %q (obs mode was off at accept)", j.id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteJobChromeTrace(w, j.trace) //nolint:errcheck // client went away
}

// obsView renders the observability state for GET/PUT /v1/obs.
func (s *Server) obsView() map[string]any {
	t := s.cfg.Obs.Tracer()
	return map[string]any{
		"mode":          s.cfg.Obs.Mode().String(),
		"ring_capacity": t.Cap(),
		"spans_total":   t.Total(),
		"spans_dropped": t.Drops(),
	}
}

func (s *Server) handleObsGet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Obs == nil {
		writeErr(w, http.StatusNotFound, "observability layer not configured")
		return
	}
	writeJSON(w, http.StatusOK, s.obsView())
}

// handleObsSet switches the obs mode at runtime: {"mode":"off|spans|full"}.
// Jobs already carrying a span chain finish it; jobs accepted after the
// switch follow the new mode.
func (s *Server) handleObsSet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Obs == nil {
		writeErr(w, http.StatusNotFound, "observability layer not configured")
		return
	}
	var req struct {
		Mode string `json:"mode"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	m, err := obs.ParseMode(req.Mode)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.cfg.Obs.SetMode(m)
	s.logf("obs mode set to %s", m)
	s.slogAt(slog.LevelInfo, "obs mode changed", "mode", m.String())
	writeJSON(w, http.StatusOK, s.obsView())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	was := j.requestCancel()
	code := http.StatusAccepted
	if was.Terminal() {
		code = http.StatusConflict // nothing left to cancel
	}
	writeJSON(w, code, map[string]string{"id": j.id, "status": string(j.Status())})
}

// Introspection is a point-in-time snapshot of the daemon's internal
// state: the job population by phase, the drain flag, and the process's
// goroutine/heap footprint. It is the drain-introspection test hook the
// load harness's leak gates consume (DESIGN.md §11): after a soak's jobs
// all reach a terminal state and its SSE clients disconnect, Queued and
// Running must be 0 and Goroutines must return to the pre-load baseline.
type Introspection struct {
	// Draining reports whether Shutdown has begun.
	Draining bool `json:"draining"`
	// Queued, Running and Terminal partition the retained job set.
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Terminal int `json:"terminal"`
	// Subscribers counts open SSE event streams across retained jobs.
	Subscribers int `json:"subscribers"`
	// Goroutines is runtime.NumGoroutine() at snapshot time.
	Goroutines int `json:"goroutines"`
	// HeapBytes is runtime.MemStats.HeapAlloc at snapshot time.
	HeapBytes uint64 `json:"heap_bytes"`
}

// Introspect snapshots the daemon's internal state. Also served (merged
// into the health document) at GET /healthz, so out-of-process harnesses
// can run the same leak checks as in-process tests.
func (s *Server) Introspect() Introspection {
	s.mu.Lock()
	in := Introspection{Draining: s.draining}
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		st := j.status
		in.Subscribers += len(j.subs)
		j.mu.Unlock()
		switch st {
		case StatusQueued:
			in.Queued++
		case StatusRunning:
			in.Running++
		default:
			in.Terminal++
		}
	}
	in.Goroutines = runtime.NumGoroutine()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	in.HeapBytes = ms.HeapAlloc
	return in
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	in := s.Introspect()
	status := "ok"
	if in.Draining {
		status = "draining"
	}
	doc := map[string]any{
		"status":      status,
		"jobs":        in.Queued + in.Running + in.Terminal,
		"queued":      in.Queued,
		"running":     in.Running,
		"terminal":    in.Terminal,
		"subscribers": in.Subscribers,
		"goroutines":  in.Goroutines,
		"heap_bytes":  in.HeapBytes,
		"build_id":    experiment.BuildID(),
	}
	if s.cfg.Obs != nil {
		doc["obs"] = s.cfg.Obs.Mode().String()
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheus(w, s.reg) //nolint:errcheck // client went away
}

// handleEvents streams the job's telemetry metrics series as Server-Sent
// Events: one "columns" event when the column set freezes, one "metrics"
// event per captured row (at the job's events_interval cycle cadence),
// and a final "done" event carrying the terminal status. Jobs resolved
// from the memo table or the on-disk cache stream only "done" — their
// VM never ran here, so there are no rows (DESIGN.md §10).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	wake, unsub := j.subscribe()
	defer unsub()
	sent := 0
	sentCols := false
	flush := func() bool {
		cols, rows := j.eventsSince(sent)
		if !sentCols && cols != nil {
			data, _ := json.Marshal(cols)
			fmt.Fprintf(w, "event: columns\ndata: %s\n\n", data)
			sentCols = true
		}
		for _, row := range rows {
			data, err := json.Marshal(row)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: metrics\ndata: %s\n\n", data)
		}
		sent += len(rows)
		fl.Flush()
		return true
	}
	for {
		flush()
		select {
		case <-wake:
		case <-j.done:
			flush() // rows published between the last flush and finish
			// The span chain closes before done does (job.finish), so the
			// ledger streamed here is final: stage sums equal latency.
			if l := j.trace.Ledger(); l != nil {
				data, _ := json.Marshal(l)
				fmt.Fprintf(w, "event: ledger\ndata: %s\n\n", data)
			}
			fmt.Fprintf(w, "event: done\ndata: {\"status\":%q}\n\n", j.Status())
			fl.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}
