package service

import (
	"context"
	"sync"
	"time"

	"instrsample/internal/obs"
	"instrsample/internal/profile"
	"instrsample/internal/telemetry"
	"instrsample/internal/vm"
)

// JobStatus is the job state machine: queued → running → one of the
// three terminal states. DELETE moves a queued or running job to
// cancelled; a wall-clock timeout moves it to failed (a deadline is a
// job outcome, not an operator request — see DESIGN.md §10).
type JobStatus string

const (
	StatusQueued    JobStatus = "queued"
	StatusRunning   JobStatus = "running"
	StatusDone      JobStatus = "done"
	StatusFailed    JobStatus = "failed"
	StatusCancelled JobStatus = "cancelled"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// OracleVerdict is the invariant oracle's summary for a Verify job.
type OracleVerdict struct {
	// OK is true when every sampling invariant held.
	OK bool `json:"ok"`
	// Events is the number of observer events the oracle checked.
	Events int64 `json:"events"`
	// ExpectedP1 counts the bounded, expected Property-1 excesses.
	ExpectedP1 int64 `json:"expected_p1"`
	// Error is the first violation, when OK is false.
	Error string `json:"error,omitempty"`
}

// ProfileOverlap is one profile's accuracy against the exhaustive
// reference run (the paper's overlap percentage).
type ProfileOverlap struct {
	// Name is the profile name (shared by sampled and reference).
	Name string `json:"name"`
	// Percent is the overlap percentage in [0, 100].
	Percent float64 `json:"percent"`
}

// ProfileDump is the JSON rendering of one instrumentation profile: the
// entry multiset in the deterministic descending-count order that
// profile.Entries defines.
type ProfileDump struct {
	Name    string          `json:"name"`
	Total   uint64          `json:"total"`
	Events  int             `json:"events"`
	Entries []profile.Entry `json:"entries,omitempty"`
}

// dumpProfile converts a live profile to its JSON form.
func dumpProfile(p *profile.Profile) ProfileDump {
	return ProfileDump{
		Name:    p.Name,
		Total:   p.Total(),
		Events:  p.NumEvents(),
		Entries: p.Entries(),
	}
}

// JobResult is the terminal payload of a successful job.
type JobResult struct {
	// Return and Output are the program's observable behaviour — equal,
	// byte for byte, to what isamp prints for the same configuration.
	Return int64   `json:"return"`
	Output []int64 `json:"output,omitempty"`
	// Stats are the VM's execution counters.
	Stats vm.Stats `json:"stats"`
	// Profiles are the instrumentation profiles, in owner order.
	Profiles []ProfileDump `json:"profiles,omitempty"`
	// CodeSize, CheckingCodeSize and DuplicatedCodeSize are the compiled
	// code sizes in bytes.
	CodeSize           int `json:"code_size"`
	CheckingCodeSize   int `json:"checking_code_size,omitempty"`
	DuplicatedCodeSize int `json:"duplicated_code_size,omitempty"`
	// Oracle is the invariant verdict (Verify jobs only).
	Oracle *OracleVerdict `json:"oracle,omitempty"`
	// Overlap holds per-profile accuracy vs the exhaustive reference
	// (Overlap jobs only).
	Overlap []ProfileOverlap `json:"overlap,omitempty"`
}

// jobView is the GET /v1/jobs/{id} response body.
type jobView struct {
	ID       string     `json:"id"`
	Status   JobStatus  `json:"status"`
	Spec     string     `json:"spec"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Error    string     `json:"error,omitempty"`
	Result   *JobResult `json:"result,omitempty"`
	// Ledger is the job's wall-clock attribution (present when the obs
	// mode was not off at accept): exact per-stage durations that sum to
	// the end-to-end latency. Live jobs report the open stage up to now.
	Ledger *obs.Ledger `json:"ledger,omitempty"`
}

// job is one queued/running/finished unit of work. Mutable state is
// guarded by mu; ctx/cancel and the immutables are set at creation.
type job struct {
	id      string
	spec    JobSpec
	created time.Time
	now     func() time.Time
	ctx     context.Context
	cancel  context.CancelFunc
	// trace is the job's span chain (nil when the obs mode was off at
	// accept). Set before the job is shared, immutable afterwards; the
	// chain has its own lock, so it is read without j.mu.
	trace *obs.JobTrace
	// onFinish, when non-nil, runs once when the job reaches a terminal
	// state, after the span chain closes and before done closes — the
	// server's hook for ledger metrics and the trace-dir dump. Set before
	// the job is shared.
	onFinish func(*job)
	// done closes when the job reaches a terminal state.
	done chan struct{}

	mu        sync.Mutex
	status    JobStatus
	started   time.Time
	finished  time.Time
	errMsg    string
	result    *JobResult
	requested bool // DELETE arrived (distinguishes cancel from timeout)
	// Event-stream state: columns freeze at the first batch; rows only
	// append; subs get a non-blocking wakeup on every append and on
	// completion.
	eventCols []string
	events    []telemetry.SeriesRow
	subs      map[chan struct{}]struct{}
}

func newJob(id string, spec JobSpec, parent context.Context, now func() time.Time) *job {
	var ctx context.Context
	var cancel context.CancelFunc
	if spec.TimeoutMs > 0 {
		ctx, cancel = context.WithTimeout(parent, time.Duration(spec.TimeoutMs)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(parent)
	}
	if now == nil {
		now = time.Now
	}
	return &job{
		id:      id,
		spec:    spec,
		created: now(),
		now:     now,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		status:  StatusQueued,
		subs:    make(map[chan struct{}]struct{}),
	}
}

// view snapshots the job for JSON rendering.
func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:      j.id,
		Status:  j.status,
		Spec:    j.spec.describe(),
		Created: j.created,
		Error:   j.errMsg,
		Result:  j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	v.Ledger = j.trace.Ledger() // nil-safe; nil when obs was off
	return v
}

// Status returns the current state.
func (j *job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// start transitions queued → running. It returns false when the job is
// already terminal (cancelled while still queued).
func (j *job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = j.now()
	return true
}

// finish moves the job to a terminal state and wakes every subscriber.
// Later calls are no-ops, so a cancel racing a natural completion
// resolves to whichever lands first.
func (j *job) finish(st JobStatus, errMsg string, res *JobResult) {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return
	}
	j.status = st
	j.finished = j.now()
	j.errMsg = errMsg
	j.result = res
	subs := j.subs
	j.subs = make(map[chan struct{}]struct{})
	j.mu.Unlock()
	// Close the span chain before done closes so anyone woken by done (the
	// SSE ledger event, waiters polling the job view) sees a final ledger
	// whose stage sum equals the end-to-end latency.
	j.trace.Finish(string(st))
	if j.onFinish != nil {
		j.onFinish(j)
	}
	close(j.done)
	for ch := range subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// requestCancel marks the job operator-cancelled and fires its context.
// Terminal jobs are left untouched; the returned status is the state the
// job was in when the request landed.
func (j *job) requestCancel() JobStatus {
	j.mu.Lock()
	st := j.status
	if !st.Terminal() {
		j.requested = true
	}
	j.mu.Unlock()
	if !st.Terminal() {
		j.cancel()
		// A queued job never reaches a worker's classification path, so
		// resolve it here; the worker's start() will then skip it.
		j.finishIfQueuedCancelled()
	}
	return st
}

// finishIfQueuedCancelled resolves a still-queued cancelled job.
func (j *job) finishIfQueuedCancelled() {
	j.mu.Lock()
	queued := j.status == StatusQueued
	j.mu.Unlock()
	if queued {
		j.finish(StatusCancelled, "cancelled before start", nil)
	}
}

// cancelRequested reports whether DELETE arrived (vs a timeout firing
// the same context).
func (j *job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.requested
}

// appendEvents publishes newly captured metrics rows to the event log
// and wakes subscribers. Called from the VM goroutine via the meter
// publisher observer.
func (j *job) appendEvents(cols []string, rows []telemetry.SeriesRow) {
	if len(rows) == 0 {
		return
	}
	j.mu.Lock()
	if j.eventCols == nil {
		j.eventCols = append([]string(nil), cols...)
	}
	j.events = append(j.events, rows...)
	subs := make([]chan struct{}, 0, len(j.subs))
	for ch := range j.subs {
		subs = append(subs, ch)
	}
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// eventsSince returns the frozen columns and any rows past n.
func (j *job) eventsSince(n int) ([]string, []telemetry.SeriesRow) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n >= len(j.events) {
		return j.eventCols, nil
	}
	rows := make([]telemetry.SeriesRow, len(j.events)-n)
	copy(rows, j.events[n:])
	return j.eventCols, rows
}

// subscribe registers a wakeup channel; the returned func unregisters
// it. The channel has capacity 1 — wakeups coalesce.
func (j *job) subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}
