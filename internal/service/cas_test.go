package service

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"instrsample/internal/experiment"
)

func casServer(t *testing.T, id string) (*Server, *httptest.Server, *experiment.Cache) {
	t.Helper()
	cache, err := experiment.OpenCacheID(t.TempDir(), id)
	if err != nil {
		t.Fatal(err)
	}
	s, h := newTestServer(t, Config{Workers: 1, Cache: cache})
	return s, h, cache
}

func casDo(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestCASEndpoints exercises the network CAS surface: GET serves stored
// entries byte-identically, PUT replicates entries between nodes with
// integrity checking, and malformed or mismatched requests are refused.
func TestCASEndpoints(t *testing.T) {
	t.Parallel()
	_, hA, cacheA := casServer(t, "fleet-build")
	_, hB, cacheB := casServer(t, "fleet-build")

	cacheA.Store("cell one", &experiment.CellResult{Return: 42, Work: 7})
	addr := cacheA.Addr("cell one")
	local, _ := cacheA.GetAddr(addr)

	// GET hit: the exact stored bytes.
	resp, got := casDo(t, http.MethodGet, hA.URL+"/v1/cas/"+addr, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET hit: status %d", resp.StatusCode)
	}
	if !bytes.Equal(got, local) {
		t.Fatal("GET served bytes differ from the stored entry")
	}

	// GET miss and invalid address.
	if resp, _ := casDo(t, http.MethodGet, hB.URL+"/v1/cas/"+addr, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET miss: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := casDo(t, http.MethodGet, hA.URL+"/v1/cas/"+strings.Repeat("z", 32), nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET invalid addr: status %d, want 400", resp.StatusCode)
	}

	// PUT replicates A's entry to B; B then serves it byte-identically
	// and its own Load sees the result.
	if resp, body := casDo(t, http.MethodPut, hB.URL+"/v1/cas/"+addr, local); resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT: status %d (%s)", resp.StatusCode, body)
	}
	if resp, got := casDo(t, http.MethodGet, hB.URL+"/v1/cas/"+addr, nil); resp.StatusCode != http.StatusOK || !bytes.Equal(got, local) {
		t.Fatalf("replicated GET: status %d, identical %v", resp.StatusCode, bytes.Equal(got, local))
	}
	if res, ok := cacheB.Load("cell one"); !ok || res.Return != 42 {
		t.Fatal("replicated entry must serve Load on the receiver")
	}

	// PUT with a tampered payload (embedded cell key no longer hashes to
	// the claimed address): 422, nothing stored.
	forged := bytes.Replace(local, []byte("cell one"), []byte("cell two"), 1)
	if resp, _ := casDo(t, http.MethodPut, hB.URL+"/v1/cas/"+addr, forged); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("PUT tampered: status %d, want 422", resp.StatusCode)
	}
	// A genuine payload at the wrong address is the same class of reject.
	if resp, _ := casDo(t, http.MethodPut, hB.URL+"/v1/cas/"+fmt.Sprintf("%032x", 0), local); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("PUT wrong addr: status %d, want 422", resp.StatusCode)
	}

	// A cache-less node has no CAS surface at all.
	_, hNone := newTestServer(t, Config{Workers: 1})
	if resp, _ := casDo(t, http.MethodGet, hNone.URL+"/v1/cas/"+addr, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cache-less GET: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := casDo(t, http.MethodPut, hNone.URL+"/v1/cas/"+addr, local); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cache-less PUT: status %d, want 404", resp.StatusCode)
	}
}
