package service

import (
	"context"
	"fmt"

	"instrsample/internal/asm"
	"instrsample/internal/bench"
	"instrsample/internal/compile"
	"instrsample/internal/experiment"
	"instrsample/internal/ir"
	"instrsample/internal/oracle"
	"instrsample/internal/telemetry"
	"instrsample/internal/vm"
)

// jobProgram builds the job's program: assembled source, a scenario
// family member, or a fresh suite benchmark at the requested scale.
func jobProgram(spec JobSpec) (*ir.Program, error) {
	if spec.Source != "" {
		return asm.Assemble("job.vasm", spec.Source)
	}
	if spec.Scenario != nil {
		return spec.Scenario.Program(spec.ScenarioIndex)
	}
	if spec.Bench == "resonant" {
		return bench.Resonant(spec.Scale), nil
	}
	b, err := bench.ByName(spec.Bench)
	if err != nil {
		return nil, err
	}
	return b.Build(spec.Scale), nil
}

// meterPublisher forwards every observer event to the telemetry meter and
// then publishes any freshly captured Series rows to the job's event log.
// It runs on the VM goroutine, so reading the meter's series here is
// race-free; subscribers only ever see rows through job.appendEvents.
type meterPublisher struct {
	m    *telemetry.Meter
	j    *job
	sent int
}

func (p *meterPublisher) publish() {
	s := p.m.Series()
	if len(s.Rows) > p.sent {
		p.j.appendEvents(s.Columns, s.Rows[p.sent:])
		p.sent = len(s.Rows)
	}
}

func (p *meterPublisher) OnEnter(t *vm.Thread, f *vm.Frame) { p.m.OnEnter(t, f); p.publish() }
func (p *meterPublisher) OnExit(t *vm.Thread, f *vm.Frame)  { p.m.OnExit(t, f); p.publish() }
func (p *meterPublisher) OnTransfer(t *vm.Thread, f *vm.Frame, in *ir.Instr, target int) {
	p.m.OnTransfer(t, f, in, target)
	p.publish()
}
func (p *meterPublisher) OnCheck(t *vm.Thread, f *vm.Frame, in *ir.Instr, fired bool) {
	p.m.OnCheck(t, f, in, fired)
	p.publish()
}
func (p *meterPublisher) OnProbe(t *vm.Thread, f *vm.Frame, pr *ir.Probe) {
	p.m.OnProbe(t, f, pr)
	p.publish()
}
func (p *meterPublisher) OnYield(t *vm.Thread, f *vm.Frame) { p.m.OnYield(t, f); p.publish() }

// jobCell builds the engine cell for a spec. events, when non-nil, is
// the job whose SSE stream receives the run's metrics series; it is
// deliberately NOT part of the cell key — events change what a client
// observes mid-run, never the result, so memo/cache sharing stays legal.
// (A job served from the memo or cache therefore streams no metrics
// rows, only the completion event; see DESIGN.md §10.)
func jobCell(spec JobSpec, events *job) experiment.Cell {
	return experiment.Cell{Key: spec.cellKey(), Run: func(ctx context.Context) (*experiment.CellResult, error) {
		return runSpec(ctx, spec, events)
	}}
}

// runSpec executes one job configuration. The pipeline mirrors isamp's
// execute() step for step — same compile options, same trigger
// defaulting, same oracle handling — which is what makes an HTTP job's
// result byte-identical to the equivalent command line.
func runSpec(ctx context.Context, spec JobSpec, events *job) (*experiment.CellResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prog, err := jobProgram(spec)
	if err != nil {
		return nil, err
	}
	copts, err := spec.optsSpec().Options()
	if err != nil {
		return nil, err
	}
	cr, err := compile.Compile(prog, copts)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	trig := spec.triggerSpec().New()
	vcfg := vm.Config{
		Trigger:   trig,
		Handlers:  cr.Handlers,
		MaxCycles: spec.MaxCycles,
	}
	if spec.ICache {
		vcfg.ICache = vm.DefaultICache()
	}
	var observers []vm.Observer
	var orc *oracle.Oracle
	if spec.Verify {
		orc = oracle.New()
		observers = append(observers, orc)
	}
	var pub *meterPublisher
	if events != nil {
		meter := telemetry.NewMeter(telemetry.NewRegistry(), trig.Name(), spec.EventsInterval, nil)
		pub = &meterPublisher{m: meter, j: events}
		observers = append(observers, pub)
	}
	vcfg.Observer = vm.CombineObservers(observers...)
	if ctx.Done() != nil {
		tok := vm.NewCancel()
		vcfg.Cancel = tok
		stop := context.AfterFunc(ctx, tok.Fire)
		defer stop()
	}
	v := vm.New(cr.Prog, vcfg)
	if pub != nil {
		pub.m.SetClock(v)
	}
	out, err := v.Run()
	if err != nil {
		if vm.IsCancelled(err) && ctx.Err() != nil {
			return nil, fmt.Errorf("%w (%w)", ctx.Err(), err)
		}
		return nil, fmt.Errorf("run: %w", err)
	}
	if pub != nil {
		pub.m.Finish()
		pub.publish()
	}
	res := &experiment.CellResult{
		Stats:              out.Stats,
		CodeSize:           cr.CodeSize,
		CheckingCodeSize:   cr.CheckingCodeSize,
		DuplicatedCodeSize: cr.DuplicatedCodeSize,
		Work:               cr.Work,
		Return:             out.Return,
		Output:             out.Output,
	}
	if orc != nil {
		if oerr := orc.Finish(out.Stats); oerr != nil {
			return nil, fmt.Errorf("invariant oracle: %w", oerr)
		}
		res.Aux = map[string]int64{
			"oracle-events":      int64(orc.Events()),
			"oracle-expected-p1": int64(orc.ExpectedPropertyViolations()),
		}
	}
	for _, rt := range cr.Runtimes {
		res.Profiles = append(res.Profiles, rt.Profile())
	}
	return res, nil
}
