package service

import (
	"context"
	"fmt"
	"time"

	"instrsample/internal/asm"
	"instrsample/internal/bench"
	"instrsample/internal/compile"
	"instrsample/internal/experiment"
	"instrsample/internal/ir"
	"instrsample/internal/obs"
	"instrsample/internal/oracle"
	"instrsample/internal/telemetry"
	"instrsample/internal/vm"
)

// jobTraceRingCap bounds the per-job VM flight-recorder ring (events
// per thread, power of two). Full mode records only fired checks and
// probes, so this holds the last few hundred samples of a run — enough
// for a merged Chrome trace, small enough that per-job allocation and
// retention stay off the service path's GC budget.
const jobTraceRingCap = 256

// jobProgram builds the job's program: assembled source, a scenario
// family member, or a fresh suite benchmark at the requested scale.
func jobProgram(spec JobSpec) (*ir.Program, error) {
	if spec.Source != "" {
		return asm.Assemble("job.vasm", spec.Source)
	}
	if spec.Scenario != nil {
		return spec.Scenario.Program(spec.ScenarioIndex)
	}
	if spec.Bench == "resonant" {
		return bench.Resonant(spec.Scale), nil
	}
	b, err := bench.ByName(spec.Bench)
	if err != nil {
		return nil, err
	}
	return b.Build(spec.Scale), nil
}

// meterPublisher forwards every observer event to the telemetry meter and
// then publishes any freshly captured Series rows to the job's event log.
// It runs on the VM goroutine, so reading the meter's series here is
// race-free; subscribers only ever see rows through job.appendEvents.
//
// When vtr is non-nil (obs ModeFull) it also flight-records the samples
// themselves — fired checks and probes, the events the paper's
// discipline says a sampled run exists to produce, whose rate the
// operator already bounds via the trigger interval. Everything
// per-call or per-block (enter/exit, polled-but-unfired checks,
// yields, transfers — 2x-costly to record in aggregate, BENCH_PR4/PR8)
// is deliberately NOT recorded, and the recording rides inside this
// observer rather than as a second one so the VM keeps
// CombineObservers' single-observer dispatch path. Both together keep
// -obs=full's marginal cost proportional to the sample rate, not the
// block rate (BENCH_PR9).
type meterPublisher struct {
	m    *telemetry.Meter
	j    *job
	vtr  *telemetry.Trace
	sent int
}

func (p *meterPublisher) publish() {
	s := p.m.Series()
	if len(s.Rows) > p.sent {
		p.j.appendEvents(s.Columns, s.Rows[p.sent:])
		p.sent = len(s.Rows)
	}
}

func (p *meterPublisher) OnEnter(t *vm.Thread, f *vm.Frame) { p.m.OnEnter(t, f); p.publish() }
func (p *meterPublisher) OnExit(t *vm.Thread, f *vm.Frame)  { p.m.OnExit(t, f); p.publish() }
func (p *meterPublisher) OnTransfer(t *vm.Thread, f *vm.Frame, in *ir.Instr, target int) {
	p.m.OnTransfer(t, f, in, target)
	p.publish()
}
func (p *meterPublisher) OnCheck(t *vm.Thread, f *vm.Frame, in *ir.Instr, fired bool) {
	p.m.OnCheck(t, f, in, fired)
	if fired && p.vtr != nil {
		p.vtr.OnCheck(t, f, in, fired)
	}
	p.publish()
}
func (p *meterPublisher) OnProbe(t *vm.Thread, f *vm.Frame, pr *ir.Probe) {
	p.m.OnProbe(t, f, pr)
	if p.vtr != nil {
		p.vtr.OnProbe(t, f, pr)
	}
	p.publish()
}
func (p *meterPublisher) OnYield(t *vm.Thread, f *vm.Frame) { p.m.OnYield(t, f); p.publish() }

// jobCell builds the engine cell for a spec. events, when non-nil, is
// the job whose SSE stream receives the run's metrics series; it is
// deliberately NOT part of the cell key — events change what a client
// observes mid-run, never the result, so memo/cache sharing stays legal.
// (A job served from the memo or cache therefore streams no metrics
// rows, only the completion event; see DESIGN.md §10.)
//
// full asks runSpec to attach a telemetry.Trace to the executed VM (the
// obs ModeFull behaviour); the job's span chain rides along on events.
// The engine's lifecycle hook threads memo-flight (with the owning
// job's ID as cause) and cache-probe into that chain; the engine's
// "run" stage is ignored because runSpec opens compile itself at the
// same instant. Like events, neither is part of the cell key.
func jobCell(spec JobSpec, events *job, full bool) experiment.Cell {
	c := experiment.Cell{Key: spec.cellKey(), Run: func(ctx context.Context) (*experiment.CellResult, error) {
		return runSpec(ctx, spec, events, full)
	}}
	if events != nil && events.trace != nil {
		tr := events.trace
		c.Stage = func(stage, cause string) {
			switch stage {
			case "memo-flight":
				tr.Begin(obs.StageMemoFlight, cause)
			case "cache-probe":
				tr.Begin(obs.StageCacheProbe, "")
			}
		}
	}
	return c
}

// runSpec executes one job configuration. The pipeline mirrors isamp's
// execute() step for step — same compile options, same trigger
// defaulting, same oracle handling — which is what makes an HTTP job's
// result byte-identical to the equivalent command line.
func runSpec(ctx context.Context, spec JobSpec, events *job, full bool) (*experiment.CellResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var tr *obs.JobTrace
	if events != nil {
		tr = events.trace
	}
	tr.Begin(obs.StageCompile, "")
	prog, err := jobProgram(spec)
	if err != nil {
		return nil, err
	}
	copts, err := spec.optsSpec().Options()
	if err != nil {
		return nil, err
	}
	cr, err := compile.Compile(prog, copts)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	trig := spec.triggerSpec().New()
	vcfg := vm.Config{
		Trigger:   trig,
		Handlers:  cr.Handlers,
		MaxCycles: spec.MaxCycles,
	}
	if spec.ICache {
		vcfg.ICache = vm.DefaultICache()
	}
	var observers []vm.Observer
	var orc *oracle.Oracle
	if spec.Verify {
		orc = oracle.New()
		observers = append(observers, orc)
	}
	var pub *meterPublisher
	if events != nil {
		meter := telemetry.NewMeter(telemetry.NewRegistry(), trig.Name(), spec.EventsInterval, nil)
		pub = &meterPublisher{m: meter, j: events}
		observers = append(observers, pub)
	}
	// ModeFull: flight-record the run's sampling-relevant VM events so
	// the job's merged Chrome trace spans HTTP-to-opcode. The metrics
	// meter above already holds the observer seam open (fusion and
	// pure-block batching are off for any observed run — the price of
	// watching, DESIGN.md §14); the recording hangs off the publisher
	// so the hot path stays one observer, filtered to fired samples.
	var vtr *telemetry.Trace
	if full && tr != nil && pub != nil {
		// A small per-job ring: the recorder keeps the end of the run
		// (flight-recorder discipline), and a 16K default ring would cost
		// ~700KB of allocation per job — pure GC pressure at service rates.
		vtr = telemetry.NewTrace(jobTraceRingCap)
		pub.vtr = vtr
	}
	vcfg.Observer = vm.CombineObservers(observers...)
	if ctx.Done() != nil {
		tok := vm.NewCancel()
		vcfg.Cancel = tok
		stop := context.AfterFunc(ctx, tok.Fire)
		defer stop()
	}
	v := vm.New(cr.Prog, vcfg)
	if pub != nil {
		pub.m.SetClock(v)
	}
	if vtr != nil {
		vtr.SetClock(v)
	}
	tr.Begin(obs.StageVMRun, "")
	var runStart time.Time
	if events != nil {
		runStart = events.now()
	}
	out, err := v.Run()
	if vtr != nil && err == nil {
		// The wall window [runStart, runEnd] aligns the run's cycle clock
		// to wall time in the merged export.
		tr.AttachVM(vtr, runStart, events.now(), out.Stats.Cycles)
	}
	if err != nil {
		if vm.IsCancelled(err) && ctx.Err() != nil {
			return nil, fmt.Errorf("%w (%w)", ctx.Err(), err)
		}
		return nil, fmt.Errorf("run: %w", err)
	}
	tr.Begin(obs.StageExport, "")
	if pub != nil {
		pub.m.Finish()
		pub.publish()
	}
	res := &experiment.CellResult{
		Stats:              out.Stats,
		CodeSize:           cr.CodeSize,
		CheckingCodeSize:   cr.CheckingCodeSize,
		DuplicatedCodeSize: cr.DuplicatedCodeSize,
		Work:               cr.Work,
		Return:             out.Return,
		Output:             out.Output,
	}
	if orc != nil {
		if oerr := orc.Finish(out.Stats); oerr != nil {
			return nil, fmt.Errorf("invariant oracle: %w", oerr)
		}
		res.Aux = map[string]int64{
			"oracle-events":      int64(orc.Events()),
			"oracle-expected-p1": int64(orc.ExpectedPropertyViolations()),
		}
	}
	for _, rt := range cr.Runtimes {
		res.Profiles = append(res.Profiles, rt.Profile())
	}
	return res, nil
}
