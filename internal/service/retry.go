package service

import (
	"strconv"
	"sync"
	"time"
)

// Retry-After bounds: a pushed-back client never waits less than a
// second (sub-second retries just hammer a full queue) nor more than
// thirty (even a stalled queue deserves a probe occasionally).
const (
	retryAfterMin = 1
	retryAfterMax = 30
	// drainWindow is how far back the estimator looks when computing the
	// queue's drain rate.
	drainWindow = 30 * time.Second
	// drainSamples bounds the ring of recorded drain instants.
	drainSamples = 64
)

// DrainEstimator measures how fast the job queue is draining so 429
// responses can carry a Retry-After proportional to the actual backlog
// clearing time rather than a fixed constant. Every worker pickup
// records a drain instant; RetryAfter divides the current depth by the
// observed rate. The fleet coordinator reuses the same estimator for
// its own front-door pushback, so backoff stays proportional at every
// level of the fabric (DESIGN.md §15).
type DrainEstimator struct {
	mu    sync.Mutex
	times [drainSamples]time.Time // ring of drain instants
	next  int                     // ring cursor
	n     int                     // filled entries
}

// Record notes one queue drain (a worker picked up a job) at now.
func (d *DrainEstimator) Record(now time.Time) {
	d.mu.Lock()
	d.times[d.next] = now
	d.next = (d.next + 1) % drainSamples
	if d.n < drainSamples {
		d.n++
	}
	d.mu.Unlock()
}

// RetryAfter estimates, in whole seconds, how long a client should wait
// before resubmitting when the queue is depth deep: the time the
// observed drain rate needs to clear the backlog, clamped to
// [retryAfterMin, retryAfterMax]. With no drains observed inside the
// window the estimator has no signal and answers the minimum.
func (d *DrainEstimator) RetryAfter(depth int, now time.Time) int {
	d.mu.Lock()
	cutoff := now.Add(-drainWindow)
	var k int
	oldest := now
	for i := 0; i < d.n; i++ {
		t := d.times[i]
		if t.Before(cutoff) {
			continue
		}
		k++
		if t.Before(oldest) {
			oldest = t
		}
	}
	d.mu.Unlock()
	if k == 0 || depth <= 0 {
		return retryAfterMin
	}
	elapsed := now.Sub(oldest)
	if elapsed <= 0 {
		// All drains landed "now": the queue is clearing faster than the
		// clock resolves, so the minimum backoff is already conservative.
		return retryAfterMin
	}
	// k drains over elapsed ⇒ clearing depth jobs takes depth*elapsed/k.
	sec := int((time.Duration(depth) * elapsed / time.Duration(k)).Round(time.Second) / time.Second)
	if sec < retryAfterMin {
		return retryAfterMin
	}
	if sec > retryAfterMax {
		return retryAfterMax
	}
	return sec
}

// Header renders the estimate as the Retry-After header value.
func (d *DrainEstimator) Header(depth int, now time.Time) string {
	return strconv.Itoa(d.RetryAfter(depth, now))
}
