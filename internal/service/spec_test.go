package service

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"instrsample/internal/scenario"
)

// TestJobSpecValidateEdges covers every rejection branch of the spec
// validator directly (no HTTP), including the hostile corners the
// handler-level test doesn't reach.
func TestJobSpecValidateEdges(t *testing.T) {
	t.Parallel()
	fam := func() *scenario.Family {
		return &scenario.Family{Name: "f", Seed: 3, Count: 2}
	}
	bad := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"empty", JobSpec{}, "one of source"},
		{"source+bench", JobSpec{Source: "x", Bench: "compress"}, "mutually exclusive"},
		{"source+scenario", JobSpec{Source: "x", Scenario: fam()}, "mutually exclusive"},
		{"bench+scenario", JobSpec{Bench: "compress", Scenario: fam()}, "mutually exclusive"},
		{"all three", JobSpec{Source: "x", Bench: "compress", Scenario: fam()}, "mutually exclusive"},
		{"oversized source", JobSpec{Source: strings.Repeat("x", MaxSourceBytes+1)}, "exceeds"},
		{"negative scale", JobSpec{Bench: "compress", Scale: -1}, "scale"},
		{"huge scale", JobSpec{Bench: "compress", Scale: MaxScale + 1}, "scale"},
		{"negative interval", JobSpec{Bench: "compress", Interval: -5}, "interval"},
		{"negative timeout", JobSpec{Bench: "compress", TimeoutMs: -1}, "timeout_ms"},
		{"unknown bench", JobSpec{Bench: "quake"}, "unknown benchmark"},
		{"unknown instrument", JobSpec{Bench: "compress", Instrument: []string{"heap"}}, "unknown instrumentation"},
		{"unknown variation", JobSpec{Bench: "compress", Variation: "total"}, "unknown variation"},
		{"yieldopt bare", JobSpec{Bench: "compress", Yieldopt: true}, "yieldopt requires"},
		{"unknown trigger", JobSpec{Bench: "compress", Trigger: "sometimes"}, "unknown trigger"},
		{"overlap bare", JobSpec{Bench: "compress", Overlap: true}, "overlap requires"},
		{"invalid family", JobSpec{Scenario: &scenario.Family{Name: "f", Count: 0}}, "count"},
		{"unnamed family", JobSpec{Scenario: &scenario.Family{Count: 1}}, "no name"},
		{"family bias", JobSpec{Scenario: &scenario.Family{Name: "f", Count: 1, LoopBiasPct: 400}}, "loop_bias_pct"},
		{"index negative", JobSpec{Scenario: fam(), ScenarioIndex: -1}, "scenario_index"},
		{"index too large", JobSpec{Scenario: fam(), ScenarioIndex: 2}, "scenario_index"},
		{"index without scenario", JobSpec{Bench: "compress", ScenarioIndex: 1}, "requires scenario"},
	}
	for _, tc := range bad {
		err := tc.spec.Valid()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	good := []JobSpec{
		{Bench: "compress"},
		{Bench: "resonant", Scale: 0.02},
		{Source: "func main() {\nentry:\n  const x, 7\n  ret x\n}\n"},
		{Scenario: fam()},
		{Scenario: fam(), ScenarioIndex: 1, Variation: "full", Instrument: []string{"call-edge"}, Verify: true},
	}
	for i, spec := range good {
		if err := spec.Valid(); err != nil {
			t.Errorf("good spec %d rejected: %v", i, err)
		}
	}
}

// TestScenarioCellKey pins the scenario job's cache identity: the key
// must derive from the family's spec hash and index (not its pointer),
// so identical family specs share cache entries while any index or
// spec change produces a distinct key.
func TestScenarioCellKey(t *testing.T) {
	t.Parallel()
	mk := func(seed uint64, idx int) JobSpec {
		return JobSpec{
			Scenario:      &scenario.Family{Name: "k", Seed: seed, Count: 4},
			ScenarioIndex: idx,
			Variation:     "full",
			Instrument:    []string{"call-edge"},
		}.withDefaults()
	}
	a, b := mk(1, 0), mk(1, 0)
	if a.cellKey() != b.cellKey() {
		t.Fatalf("identical scenario specs got different keys:\n  %s\n  %s", a.cellKey(), b.cellKey())
	}
	if !strings.Contains(a.cellKey(), "scn=") {
		t.Fatalf("scenario key missing scn= namespace: %s", a.cellKey())
	}
	if mk(1, 1).cellKey() == a.cellKey() {
		t.Fatal("different indices share a key")
	}
	if mk(2, 0).cellKey() == a.cellKey() {
		t.Fatal("different family seeds share a key")
	}
	if !strings.Contains(mk(1, 2).describe(), "scenario:k/2") {
		t.Fatalf("describe missing scenario label: %s", mk(1, 2).describe())
	}
}

// TestSubmitHostileJSON feeds the HTTP decoder adversarial bodies:
// unknown fields anywhere (including inside the nested scenario spec),
// type confusion, truncation, and trailing garbage must all 400.
func TestSubmitHostileJSON(t *testing.T) {
	t.Parallel()
	_, h := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"truncated", `{"bench":"compr`},
		{"trailing garbage", `{"bench":"compress"} extra`},
		{"array body", `[{"bench":"compress"}]`},
		{"string body", `"bench"`},
		{"type confusion scale", `{"bench":"compress","scale":"big"}`},
		{"type confusion instrument", `{"bench":"compress","instrument":"call-edge"}`},
		{"unknown nested field", `{"scenario":{"name":"f","seed":1,"count":1,"sneaky":2}}`},
		{"scenario type confusion", `{"scenario":"default"}`},
		{"scenario bad count", `{"scenario":{"name":"f","seed":1,"count":-2}}`},
		{"scenario bad index", `{"scenario":{"name":"f","seed":1,"count":1},"scenario_index":9}`},
		{"negative seed", `{"scenario":{"name":"f","seed":-4,"count":1}}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(h.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestScenarioJobRuns submits a scenario job end to end: it must
// complete, carry the family's program result, and a resubmission must
// share the memoized cell.
func TestScenarioJobRuns(t *testing.T) {
	t.Parallel()
	_, h := newTestServer(t, Config{})
	spec := JobSpec{
		Scenario:      &scenario.Family{Name: "svc", Seed: 77, Count: 2, LoopBiasPct: 30, MaxDepth: 4},
		ScenarioIndex: 1,
		Instrument:    []string{"call-edge"},
		Variation:     "full",
		Verify:        true,
	}
	id := mustAccept(t, h.URL, spec)
	v := waitTerminal(t, h.URL, id, 30*time.Second)
	if v.Status != StatusDone {
		t.Fatalf("job %s: status %s (%s)", id, v.Status, v.Error)
	}
	if v.Result == nil {
		t.Fatal("done job has no result")
	}
	if v.Result.Stats.Instrs == 0 {
		t.Fatalf("scenario job executed nothing: %+v", v.Result.Stats)
	}

	// Byte-equality with a direct second submission of the same family.
	id2 := mustAccept(t, h.URL, spec)
	v2 := waitTerminal(t, h.URL, id2, 30*time.Second)
	if v2.Status != StatusDone {
		t.Fatalf("job %s: status %s (%s)", id2, v2.Status, v2.Error)
	}
	if v.Result.Stats != v2.Result.Stats || v.Result.Return != v2.Result.Return {
		t.Fatalf("identical scenario jobs differ:\n  %+v\n  %+v", v.Result.Stats, v2.Result.Stats)
	}
}
