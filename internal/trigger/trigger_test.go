package trigger

import (
	"testing"
	"testing/quick"
)

func countFires(tr Trigger, polls int) int {
	n := 0
	for i := 0; i < polls; i++ {
		if tr.Poll(0, uint64(i)*10) {
			n++
		}
	}
	return n
}

func TestCounterFiresEveryInterval(t *testing.T) {
	for _, interval := range []int64{1, 2, 10, 1000} {
		tr := NewCounter(interval)
		polls := int(interval) * 50
		fires := countFires(tr, polls)
		if fires != 50 {
			t.Errorf("interval %d: %d fires over %d polls, want 50", interval, fires, polls)
		}
	}
}

func TestCounterFirePositions(t *testing.T) {
	tr := NewCounter(3)
	var fires []int
	for i := 1; i <= 10; i++ {
		if tr.Poll(0, 0) {
			fires = append(fires, i)
		}
	}
	want := []int{3, 6, 9}
	if len(fires) != len(want) {
		t.Fatalf("fires at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires at %v, want %v", fires, want)
		}
	}
}

func TestCounterResetAndDisable(t *testing.T) {
	tr := NewCounter(2)
	tr.Poll(0, 0)
	tr.Reset()
	if tr.Poll(0, 0) {
		t.Error("fired immediately after reset")
	}
	if !tr.Poll(0, 0) {
		t.Error("second poll after reset should fire")
	}
	tr.Disable()
	for i := 0; i < 10000; i++ {
		if tr.Poll(0, 0) {
			t.Fatal("disabled trigger fired")
		}
	}
}

func TestCounterClampsInterval(t *testing.T) {
	tr := NewCounter(0)
	if !tr.Poll(0, 0) {
		t.Error("interval 0 must clamp to 1 (always fire)")
	}
}

func TestPerThreadIndependence(t *testing.T) {
	tr := NewPerThread(3)
	// Thread 0 polls twice, thread 1 polls three times: only thread 1
	// fires.
	if tr.Poll(0, 0) || tr.Poll(0, 0) {
		t.Error("thread 0 fired early")
	}
	if tr.Poll(1, 0) || tr.Poll(1, 0) {
		t.Error("thread 1 fired early")
	}
	if !tr.Poll(1, 0) {
		t.Error("thread 1 third poll must fire")
	}
	if !tr.Poll(0, 0) {
		t.Error("thread 0 third poll must fire")
	}
	tr.Reset()
	if tr.Poll(0, 0) || tr.Poll(1, 0) {
		t.Error("fired after reset")
	}
}

func TestTimerConsumesOneBitPerPeriod(t *testing.T) {
	tr := NewTimer(1000)
	if tr.Poll(0, 999) {
		t.Error("fired before first period")
	}
	if !tr.Poll(0, 1001) {
		t.Error("must fire after period elapses")
	}
	if tr.Poll(0, 1500) {
		t.Error("bit already consumed this period")
	}
	// Several periods pass without a check: still just one fire.
	if !tr.Poll(0, 5500) {
		t.Error("must fire after long gap")
	}
	if tr.Poll(0, 5600) {
		t.Error("only one bit regardless of elapsed periods")
	}
}

func TestTimerRateCap(t *testing.T) {
	// 10k polls spread over 100 periods: at most ~100 fires, however
	// dense the checks are — the sample-rate cap of §2.1.
	tr := NewTimer(100)
	fires := 0
	for i := 0; i < 10000; i++ {
		if tr.Poll(0, uint64(i)) {
			fires++
		}
	}
	if fires > 100 {
		t.Errorf("%d fires, cap is 100", fires)
	}
	if fires < 95 {
		t.Errorf("%d fires, expected close to 100", fires)
	}
}

func TestRandomizedMeanAndDeterminism(t *testing.T) {
	tr := NewRandomized(100, 20, 7)
	polls := 200000
	fires := countFires(tr, polls)
	mean := float64(polls) / float64(fires)
	if mean < 90 || mean > 110 {
		t.Errorf("mean interval %.1f, want ~100", mean)
	}
	// Determinism: same seed, same fire sequence.
	a := NewRandomized(50, 10, 99)
	b := NewRandomized(50, 10, 99)
	for i := 0; i < 5000; i++ {
		if a.Poll(0, 0) != b.Poll(0, 0) {
			t.Fatal("same-seed randomized triggers diverge")
		}
	}
	// Different seeds eventually diverge.
	c := NewRandomized(50, 10, 100)
	d := NewRandomized(50, 10, 101)
	same := true
	for i := 0; i < 5000; i++ {
		if c.Poll(0, 0) != d.Poll(0, 0) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestRandomizedJitterClamped(t *testing.T) {
	tr := NewRandomized(5, 50, 1) // jitter > interval must clamp
	fires := countFires(tr, 5000)
	if fires == 0 {
		t.Fatal("no fires")
	}
	mean := 5000.0 / float64(fires)
	if mean < 2 || mean > 10 {
		t.Errorf("mean %.1f out of sane range", mean)
	}
}

func TestNeverAlways(t *testing.T) {
	if (Never{}).Poll(0, 0) {
		t.Error("Never fired")
	}
	if !(Always{}).Poll(0, 0) {
		t.Error("Always did not fire")
	}
	if Never.Name(Never{}) != "never" || Always.Name(Always{}) != "always" {
		t.Error("names wrong")
	}
}

func TestNames(t *testing.T) {
	for _, tc := range []struct {
		tr   Trigger
		want string
	}{
		{NewCounter(1000), "counter/1000"},
		{NewPerThread(5), "perthread/5"},
		{NewTimer(333), "timer/333"},
	} {
		if tc.tr.Name() != tc.want {
			t.Errorf("Name() = %q, want %q", tc.tr.Name(), tc.want)
		}
	}
}

// TestQuickCounterProportionality: for any interval and poll count, the
// number of fires is exactly floor(polls/interval) — the property that
// makes counter-based sampling statistically faithful.
func TestQuickCounterProportionality(t *testing.T) {
	f := func(interval uint16, polls uint16) bool {
		iv := int64(interval%5000) + 1
		n := int(polls)
		tr := NewCounter(iv)
		fires := countFires(tr, n)
		return fires == n/int(iv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
