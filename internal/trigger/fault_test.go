package trigger

import (
	"testing"
)

// pollSchedule records the poll indices (1-based) at which the trigger
// fired over a synthetic cycle ramp.
func pollSchedule(tr Trigger, polls int, cyclesPerPoll uint64) []int {
	var fires []int
	for i := 1; i <= polls; i++ {
		if tr.Poll(0, uint64(i)*cyclesPerPoll) {
			fires = append(fires, i)
		}
	}
	return fires
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFaultyTimerZeroFaultMatchesTimer: with jitter and skew disabled the
// faulty timer must reproduce the healthy timer's schedule exactly.
func TestFaultyTimerZeroFaultMatchesTimer(t *testing.T) {
	healthy := pollSchedule(NewTimer(100), 300, 7)
	faulty := pollSchedule(NewFaultyTimer(100, 0, 0, 1), 300, 7)
	if !equalInts(healthy, faulty) {
		t.Fatalf("schedules diverge:\n  timer:  %v\n  faulty: %v", healthy, faulty)
	}
}

// TestFaultyTimerDeterministic: a fixed seed reproduces the jittered
// schedule, and Reset restores it.
func TestFaultyTimerDeterministic(t *testing.T) {
	a := NewFaultyTimer(100, 80, 3, 42)
	b := NewFaultyTimer(100, 80, 3, 42)
	sa := pollSchedule(a, 500, 7)
	sb := pollSchedule(b, 500, 7)
	if !equalInts(sa, sb) {
		t.Fatalf("same seed, different schedules:\n  %v\n  %v", sa, sb)
	}
	if len(sa) == 0 {
		t.Fatal("jittered timer never fired")
	}
	a.Reset()
	if sr := pollSchedule(a, 500, 7); !equalInts(sa, sr) {
		t.Fatalf("Reset did not restore the schedule:\n  %v\n  %v", sa, sr)
	}
}

// TestFaultyTimerSeedsDiffer: different seeds should (for a jitter this
// large) produce different schedules — otherwise the jitter is inert.
func TestFaultyTimerSeedsDiffer(t *testing.T) {
	sa := pollSchedule(NewFaultyTimer(100, 90, 0, 1), 500, 7)
	sb := pollSchedule(NewFaultyTimer(100, 90, 0, 2), 500, 7)
	if equalInts(sa, sb) {
		t.Fatalf("seeds 1 and 2 produced the identical schedule %v", sa)
	}
}

// TestFaultyTimerSkewDrifts: positive skew (slow clock) must deliver
// fewer interrupts than the nominal schedule over the same cycles.
func TestFaultyTimerSkewDrifts(t *testing.T) {
	nominal := len(pollSchedule(NewTimer(100), 2000, 7))
	slow := len(pollSchedule(NewFaultyTimer(100, 0, 50, 1), 2000, 7))
	if slow >= nominal {
		t.Fatalf("slow clock fired %d times, nominal %d — skew had no effect", slow, nominal)
	}
}

// TestOverflowCounterWraps: the near-limit initial state must not panic,
// must fire, and must be deterministic.
func TestOverflowCounterWraps(t *testing.T) {
	a := NewOverflowCounter(5, 3)
	b := NewOverflowCounter(5, 3)
	sa := pollSchedule(a, 1000, 1)
	sb := pollSchedule(b, 1000, 1)
	if !equalInts(sa, sb) {
		t.Fatal("overflow counter is nondeterministic")
	}
	if len(sa) == 0 {
		t.Fatal("overflow counter never fired")
	}
	a.Reset()
	if sr := pollSchedule(a, 1000, 1); !equalInts(sa, sr) {
		t.Fatal("Reset did not restore the overflow schedule")
	}
}

// TestOverflowCounterStepLargerThanInterval drives the remainder across
// the wraparound boundary (net decrement per fire), exercising the
// wrapping arithmetic path.
func TestOverflowCounterStepLargerThanInterval(t *testing.T) {
	c := NewOverflowCounter(2, 1<<61)
	fired := 0
	for i := 0; i < 100; i++ {
		if c.Poll(0, 0) {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("wrapping counter never fired in 100 polls")
	}
}

// TestRetunerCyclesIntervals: the retuner must actually change the
// wrapped counter's interval between phases.
func TestRetunerCyclesIntervals(t *testing.T) {
	r := NewRetuner([]int64{1, 5}, 4)
	// Phase 1 (4 polls at interval 1): fires every poll.
	for i := 0; i < 4; i++ {
		if !r.Poll(0, 0) {
			t.Fatalf("poll %d of interval-1 phase did not fire", i)
		}
	}
	if r.Counter.Interval != 1 {
		t.Fatalf("interval retuned too early: %d", r.Counter.Interval)
	}
	// Phase 2 begins: interval 5.
	r.Poll(0, 0)
	if r.Counter.Interval != 5 {
		t.Fatalf("interval after phase switch = %d, want 5", r.Counter.Interval)
	}
	r.Reset()
	if r.Counter.Interval != 1 {
		t.Fatalf("Reset interval = %d, want 1", r.Counter.Interval)
	}
	if !r.Poll(0, 0) {
		t.Fatal("first poll after Reset did not fire at interval 1")
	}
}

// TestFaultTriggerNames pins the report labels.
func TestFaultTriggerNames(t *testing.T) {
	cases := []struct {
		tr   Trigger
		want string
	}{
		{NewFaultyTimer(100, 7, -3, 1), "faulty-timer/100±7-3"},
		{NewOverflowCounter(5, 3), "overflow-counter/5/3"},
		{NewRetuner([]int64{1, 2, 3}, 10), "retuner/3x10"},
	}
	for _, c := range cases {
		if got := c.tr.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}
