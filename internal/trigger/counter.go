package trigger

import "fmt"

// Counter is the compiler-inserted counter-based trigger of §2.2
// (Figure 3): a global counter is decremented at every check; when it
// reaches zero a sample fires and the counter resets to the sample
// interval. It is deterministic: running a deterministic application
// twice produces identical profiles.
type Counter struct {
	// Interval is the sample interval (checks per sample). The paper's
	// Table 4 sweeps 1, 10, 100, 1000, 10 000, 100 000.
	Interval int64

	remaining int64
}

// NewCounter returns a counter-based trigger with the given interval.
// Interval values below 1 are treated as 1.
func NewCounter(interval int64) *Counter {
	if interval < 1 {
		interval = 1
	}
	c := &Counter{Interval: interval}
	c.Reset()
	return c
}

// Poll decrements the global counter and fires when it reaches zero.
func (c *Counter) Poll(int, uint64) bool {
	c.remaining--
	if c.remaining <= 0 {
		c.remaining = c.Interval
		return true
	}
	return false
}

// Reset restores the counter to one full interval.
func (c *Counter) Reset() { c.remaining = c.Interval }

// Name returns "counter/<interval>".
func (c *Counter) Name() string { return fmt.Sprintf("counter/%d", c.Interval) }

// Disable sets the sample condition permanently false, as §2 describes for
// retiring an instrumented method that keeps executing: execution then
// remains in the checking code.
func (c *Counter) Disable() { c.Interval = 1 << 62; c.remaining = 1 << 62 }

// SetInterval retunes the sample rate while the program runs — the
// framework's "tradeoff between overhead and accuracy [can] be adjusted
// easily at runtime" knob. The new interval takes effect after the
// current countdown expires (or immediately if shorter than what
// remains).
func (c *Counter) SetInterval(interval int64) {
	if interval < 1 {
		interval = 1
	}
	c.Interval = interval
	if c.remaining > interval {
		c.remaining = interval
	}
}

// PerThread gives each thread its own sample counter, the variant §2.2
// proposes to avoid contention on the global counter in multi-threaded
// applications. Each thread's counter behaves like Counter independently.
type PerThread struct {
	// Interval is the per-thread sample interval.
	Interval int64

	remaining []int64
}

// NewPerThread returns a per-thread counter trigger.
func NewPerThread(interval int64) *PerThread {
	if interval < 1 {
		interval = 1
	}
	return &PerThread{Interval: interval}
}

// Poll decrements the polling thread's counter.
func (p *PerThread) Poll(threadID int, _ uint64) bool {
	for threadID >= len(p.remaining) {
		p.remaining = append(p.remaining, p.Interval)
	}
	p.remaining[threadID]--
	if p.remaining[threadID] <= 0 {
		p.remaining[threadID] = p.Interval
		return true
	}
	return false
}

// Reset clears all per-thread counters.
func (p *PerThread) Reset() { p.remaining = p.remaining[:0] }

// Name returns "perthread/<interval>".
func (p *PerThread) Name() string { return fmt.Sprintf("perthread/%d", p.Interval) }

// Randomized is a counter trigger whose reset value is Interval plus a
// small uniform perturbation in [-Jitter, +Jitter]. §4.4 suggests this to
// break pathological correlation between a program's periodic behaviour
// and a fixed sample interval (the "every 1000th iteration" worst case).
// The perturbation comes from a seeded xorshift generator, so results
// remain reproducible for a fixed seed.
type Randomized struct {
	// Interval is the mean sample interval.
	Interval int64
	// Jitter bounds the perturbation. Must be < Interval.
	Jitter int64
	// Seed initializes the PRNG; Reset returns to this seed.
	Seed uint64

	remaining int64
	state     uint64
}

// NewRandomized returns a randomized counter trigger.
func NewRandomized(interval, jitter int64, seed uint64) *Randomized {
	if interval < 1 {
		interval = 1
	}
	if jitter >= interval {
		jitter = interval - 1
	}
	if jitter < 0 {
		jitter = 0
	}
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r := &Randomized{Interval: interval, Jitter: jitter, Seed: seed}
	r.Reset()
	return r
}

func (r *Randomized) next() uint64 {
	x := r.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.state = x
	return x
}

func (r *Randomized) reload() {
	v := r.Interval
	if r.Jitter > 0 {
		v += int64(r.next()%uint64(2*r.Jitter+1)) - r.Jitter
	}
	if v < 1 {
		v = 1
	}
	r.remaining = v
}

// Poll decrements the counter; on zero it fires and reloads with a
// perturbed interval.
func (r *Randomized) Poll(int, uint64) bool {
	r.remaining--
	if r.remaining <= 0 {
		r.reload()
		return true
	}
	return false
}

// Reset reseeds the PRNG and reloads the counter.
func (r *Randomized) Reset() {
	r.state = r.Seed
	r.reload()
}

// Name returns "randomized/<interval>±<jitter>".
func (r *Randomized) Name() string {
	return fmt.Sprintf("randomized/%d±%d", r.Interval, r.Jitter)
}
