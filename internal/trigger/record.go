package trigger

import "fmt"

// This file implements record-and-replay for trigger decisions: a
// Recorder wraps any live trigger and serializes every Poll outcome into
// a compact Log, and a Replayer re-executes that exact decision sequence
// on a later run — on another machine, or under the other dispatcher.
// Replay is differentially checked: besides the decision bits, the Log
// carries a running checksum over each poll's (threadID, cycles) context,
// so a replay whose poll sequence diverges from the recording in any way
// is detected even though the decisions themselves would still "fit".
// This is the Nugget "portable program snippets" idea applied to the
// trigger seam; see DESIGN.md §13 and package scenario for the
// whole-run recording (trigger + schedule decisions + result
// fingerprint).

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// foldPoll mixes one poll's context into the running FNV-1a checksum.
func foldPoll(h uint64, threadID int, cycles uint64) uint64 {
	h ^= uint64(int64(threadID))
	h *= fnvPrime
	h ^= cycles
	h *= fnvPrime
	return h
}

// Log is the serialized trigger decision stream of one run. It marshals
// to JSON (fires as a little-endian bitset) small enough to check in as
// a fuzz corpus or ship between machines.
type Log struct {
	// Trigger is the Name() of the recorded trigger, for reports.
	Trigger string `json:"trigger"`
	// Polls is the number of Poll calls recorded.
	Polls uint64 `json:"polls"`
	// Fires is the number of polls that fired (popcount of Bits).
	Fires uint64 `json:"fires"`
	// Bits is the outcome bitset: bit i (word i/64, bit i%64) is poll
	// i's decision. Omitted when no poll fired.
	Bits []uint64 `json:"bits,omitempty"`
	// Checksum is the FNV-1a fold of every poll's (threadID, cycles)
	// pair, in poll order — the context fingerprint replay verifies.
	Checksum uint64 `json:"checksum"`
}

// bit reports decision i.
func (l *Log) bit(i uint64) bool {
	w := i / 64
	if w >= uint64(len(l.Bits)) {
		return false
	}
	return l.Bits[w]&(1<<(i%64)) != 0
}

// Recorder wraps Inner and records every Poll decision. Install it as
// the VM's trigger; after the run, Log() returns the serialized
// decision stream. Reset (which the VM calls at run start) resets Inner
// and discards any previously recorded decisions, so one Recorder
// records exactly the most recent run.
type Recorder struct {
	Inner Trigger
	log   Log
}

// NewRecorder returns a Recorder around inner (Never when nil).
func NewRecorder(inner Trigger) *Recorder {
	if inner == nil {
		inner = Never{}
	}
	return &Recorder{Inner: inner, log: Log{Trigger: inner.Name(), Checksum: fnvOffset}}
}

// Poll delegates to Inner and records the decision and its context.
func (r *Recorder) Poll(threadID int, cycles uint64) bool {
	fired := r.Inner.Poll(threadID, cycles)
	i := r.log.Polls
	if fired {
		w := i / 64
		for uint64(len(r.log.Bits)) <= w {
			r.log.Bits = append(r.log.Bits, 0)
		}
		r.log.Bits[w] |= 1 << (i % 64)
		r.log.Fires++
	}
	r.log.Polls = i + 1
	r.log.Checksum = foldPoll(r.log.Checksum, threadID, cycles)
	return fired
}

// Reset resets Inner and starts a fresh recording.
func (r *Recorder) Reset() {
	r.Inner.Reset()
	r.log = Log{Trigger: r.Inner.Name(), Checksum: fnvOffset}
}

// Name returns "record:<inner>".
func (r *Recorder) Name() string { return "record:" + r.Inner.Name() }

// Log returns a copy of the recorded decision stream.
func (r *Recorder) Log() Log {
	l := r.log
	l.Bits = append([]uint64(nil), r.log.Bits...)
	return l
}

// Replayer is a trigger that replays a recorded decision stream: poll i
// returns exactly the decision recorded for poll i, regardless of the
// wrapped trigger's original mechanism (counter state, timer bits, PRNG
// — none of it is needed, which is what makes recordings portable).
// Polls beyond the recording return false and are counted as overruns.
// After the run, Verify reports whether the replayed poll sequence was
// bit-identical to the recorded one.
type Replayer struct {
	log      Log
	pos      uint64
	checksum uint64
	overruns uint64
}

// NewReplayer returns a Replayer for the log.
func NewReplayer(log Log) *Replayer {
	log.Bits = append([]uint64(nil), log.Bits...)
	return &Replayer{log: log, checksum: fnvOffset}
}

// Poll returns recorded decision pos and advances.
func (p *Replayer) Poll(threadID int, cycles uint64) bool {
	if p.pos >= p.log.Polls {
		p.overruns++
		return false
	}
	fired := p.log.bit(p.pos)
	p.pos++
	p.checksum = foldPoll(p.checksum, threadID, cycles)
	return fired
}

// Reset rewinds the replay to the first decision.
func (p *Replayer) Reset() { p.pos, p.checksum, p.overruns = 0, fnvOffset, 0 }

// Name returns "replay:<recorded trigger>".
func (p *Replayer) Name() string { return "replay:" + p.log.Trigger }

// Verify reports whether the run consumed exactly the recorded decision
// sequence in exactly the recorded poll contexts. A nil error is the
// replay side of the determinism contract: same decisions, same
// (threadID, cycles) at every poll.
func (p *Replayer) Verify() error {
	switch {
	case p.overruns > 0:
		return fmt.Errorf("trigger replay: %d polls beyond the %d recorded", p.overruns, p.log.Polls)
	case p.pos != p.log.Polls:
		return fmt.Errorf("trigger replay: consumed %d of %d recorded polls", p.pos, p.log.Polls)
	case p.checksum != p.log.Checksum:
		return fmt.Errorf("trigger replay: poll context checksum mismatch (recorded %#x, replayed %#x)", p.log.Checksum, p.checksum)
	}
	return nil
}
