package trigger

import "fmt"

// Timer models the timer-interrupt trigger of §2.1 and §4.6: a hardware
// interrupt sets a sample bit every Period cycles (Jalapeño's 10 ms
// threadswitch bit; at the paper's 333 MHz that is ~3.33 M cycles), and
// the *next executed check* observes the bit, clears it, and fires.
//
// This reproduces the mis-attribution the paper demonstrates: a long
// non-checking stretch (e.g. an OpIO) is where the bit gets set, but the
// sample is charged to whatever code follows the stretch. It also caps the
// sample rate at the interrupt frequency, which is the trigger's second
// weakness relative to counter-based sampling.
type Timer struct {
	// Period is the interrupt period in simulated cycles.
	Period uint64

	// consumed is the index of the last interrupt period whose bit a
	// check has already consumed.
	consumed uint64
}

// NewTimer returns a timer trigger with the given period in cycles.
func NewTimer(period uint64) *Timer {
	if period == 0 {
		period = 1
	}
	return &Timer{Period: period}
}

// Poll fires when at least one interrupt has occurred since the last
// consumed one. Multiple elapsed interrupts still yield a single fire
// (the bit is just a bit).
func (t *Timer) Poll(_ int, cycles uint64) bool {
	idx := cycles / t.Period
	if idx > t.consumed {
		t.consumed = idx
		return true
	}
	return false
}

// Reset clears the consumed-interrupt state.
func (t *Timer) Reset() { t.consumed = 0 }

// Name returns "timer/<period>".
func (t *Timer) Name() string { return fmt.Sprintf("timer/%d", t.Period) }
