// Package trigger implements the sample-trigger mechanisms of §2.1–2.2:
// the compiler-inserted counter-based trigger (global and per-thread
// variants, plus the randomized-interval variant suggested in §4.4) and a
// timer-based trigger driven by a periodic interrupt bit, used to
// reproduce the Table 5 comparison.
//
// The interpreter polls the trigger every time an OpCheck (or the guard of
// an OpCheckedProbe) executes; Poll answers whether that check fires a
// sample.
//
// Triggers are stateful (counters, timer bits, PRNG state): construct a
// fresh instance per VM run and never share one across concurrent VMs.
// Package experiment encodes this by describing triggers as pure
// TriggerSpec values and instantiating them inside each cell.
//
// See DESIGN.md §2 (timer substitution argument) and §4 (Table 5,
// ablation-resonance).
package trigger

// Trigger decides, at each executed check, whether a sample fires.
//
// Poll is called with the polling thread's ID and the VM's current
// simulated cycle count. Implementations must be deterministic functions
// of their configuration and the Poll sequence.
type Trigger interface {
	// Poll is invoked once per executed check; it returns true when the
	// sample condition is true at this check.
	Poll(threadID int, cycles uint64) bool
	// Reset restores the trigger to its initial state.
	Reset()
	// Name identifies the trigger in reports.
	Name() string
}

// Never is a trigger that never fires. Setting the sample condition
// permanently false is how the framework retires instrumentation while a
// method keeps running (§2); it is also how the framework-overhead
// experiments (Table 2, Table 3, Figure 8A) are measured.
type Never struct{}

// Poll always reports false.
func (Never) Poll(int, uint64) bool { return false }

// Reset does nothing.
func (Never) Reset() {}

// Name returns "never".
func (Never) Name() string { return "never" }

// Always is a trigger that fires at every check. Under Full-Duplication
// this produces the paper's "perfect profile" (sample interval 1: all
// execution occurs in duplicated code).
type Always struct{}

// Poll always reports true.
func (Always) Poll(int, uint64) bool { return true }

// Reset does nothing.
func (Always) Reset() {}

// Name returns "always".
func (Always) Name() string { return "always" }
