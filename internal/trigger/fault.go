package trigger

import "fmt"

// Fault-injection triggers.
//
// The framework's correctness argument (§2) deliberately does not depend
// on *when* samples fire: any Poll outcome sequence must leave the
// invariants the runtime oracle checks — sample placement, duplicated-code
// entry/exit discipline, Property 1 — intact. These triggers make that
// claim testable by exercising fire schedules real deployments produce
// only rarely: jittery and skewing timer interrupts, counters that
// overflow near the integer limit, and sample intervals retuned while the
// program runs. They are adversarial test fixtures, not measurement
// configurations; the experiment engine only uses them in the oracle
// ablation.
//
// Like every trigger they are stateful: construct a fresh instance per VM
// run.

// FaultyTimer is a Timer whose interrupts arrive off-schedule: each
// interrupt is displaced by a seeded uniform jitter in [-Jitter, +Jitter]
// cycles, and the whole schedule drifts by Skew cycles per interrupt
// (cumulative, like a slow or fast clock). With Jitter and Skew zero it
// behaves exactly like Timer.
type FaultyTimer struct {
	// Period is the nominal interrupt period in simulated cycles.
	Period uint64
	// Jitter bounds the per-interrupt displacement in cycles.
	Jitter uint64
	// Skew is the per-interrupt cumulative drift in cycles (positive =
	// clock running slow: interrupts arrive ever later).
	Skew int64
	// Seed initializes the jitter PRNG; Reset returns to it.
	Seed uint64

	state uint64 // xorshift64 PRNG state
	next  uint64 // cycle at which the next interrupt is due
	drift int64  // accumulated skew
	fires uint64 // interrupts delivered so far
}

// NewFaultyTimer returns a timer trigger with the given nominal period,
// per-interrupt jitter bound and cumulative skew.
func NewFaultyTimer(period, jitter uint64, skew int64, seed uint64) *FaultyTimer {
	if period == 0 {
		period = 1
	}
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	t := &FaultyTimer{Period: period, Jitter: jitter, Skew: skew, Seed: seed}
	t.Reset()
	return t
}

func (t *FaultyTimer) rng() uint64 {
	x := t.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	t.state = x
	return x
}

// schedule computes the cycle of the next interrupt from the nominal
// schedule, the accumulated drift and a fresh jitter draw. The result is
// clamped so interrupts never run backwards in time.
func (t *FaultyTimer) schedule(after uint64) {
	nominal := int64(t.fires+1) * int64(t.Period)
	displaced := nominal + t.drift
	if t.Jitter > 0 {
		displaced += int64(t.rng()%(2*t.Jitter+1)) - int64(t.Jitter)
	}
	if displaced <= int64(after) {
		displaced = int64(after) + 1
	}
	t.next = uint64(displaced)
}

// Poll fires when the (displaced) next interrupt time has passed. As with
// Timer, several elapsed interrupts collapse into one fire — the bit is
// just a bit.
func (t *FaultyTimer) Poll(_ int, cycles uint64) bool {
	if cycles < t.next {
		return false
	}
	for t.next <= cycles {
		t.fires++
		t.drift += t.Skew
		t.schedule(cycles)
	}
	return true
}

// Reset restores the initial schedule and reseeds the PRNG.
func (t *FaultyTimer) Reset() {
	t.state = t.Seed
	t.fires = 0
	t.drift = 0
	t.schedule(0)
}

// Name returns "faulty-timer/<period>±<jitter>+<skew>".
func (t *FaultyTimer) Name() string {
	return fmt.Sprintf("faulty-timer/%d±%d%+d", t.Period, t.Jitter, t.Skew)
}

// OverflowCounter is a counter trigger that decrements by Step instead of
// 1 and reloads by *adding* Interval to the (possibly deeply negative)
// remainder, with the whole state deliberately started near the int64
// limits. The arithmetic wraps around; the fire schedule that results is
// erratic but deterministic. It models a deployment bug the paper's
// design must tolerate — a sample counter that overflows — and verifies
// the invariants do not depend on counter sanity.
type OverflowCounter struct {
	// Interval is the nominal reload added at each fire.
	Interval int64
	// Step is the per-check decrement (default 1 if < 1).
	Step int64

	remaining int64
}

// NewOverflowCounter returns an overflow-prone counter trigger. The
// countdown starts at math.MinInt64 + Interval, so the very first
// decrements wrap past the negative limit to huge positive values and
// back, shaking out any fire-schedule assumption.
func NewOverflowCounter(interval, step int64) *OverflowCounter {
	if interval < 1 {
		interval = 1
	}
	if step < 1 {
		step = 1
	}
	c := &OverflowCounter{Interval: interval, Step: step}
	c.Reset()
	return c
}

// Poll decrements by Step with wrapping arithmetic and fires on
// non-positive remainders, reloading additively.
func (c *OverflowCounter) Poll(int, uint64) bool {
	c.remaining -= c.Step // may wrap
	if c.remaining <= 0 {
		c.remaining += c.Interval // may stay negative: rapid refires
		return true
	}
	return false
}

// Reset restores the near-limit initial state.
func (c *OverflowCounter) Reset() {
	c.remaining = -1<<63 + c.Interval
}

// Name returns "overflow-counter/<interval>/<step>".
func (c *OverflowCounter) Name() string {
	return fmt.Sprintf("overflow-counter/%d/%d", c.Interval, c.Step)
}

// Retuner wraps a Counter and retunes its sample interval while the
// program runs, cycling through Intervals every PollsPerPhase polls. It
// exercises the paper's "adjust the overhead/accuracy tradeoff at
// runtime" knob (§1) under the oracle: mid-run SetInterval calls must not
// break sample placement or Property 1.
type Retuner struct {
	// Counter is the retuned trigger.
	Counter *Counter
	// Intervals is the cycle of intervals applied in order.
	Intervals []int64
	// PollsPerPhase is how many polls each interval stays in force.
	PollsPerPhase int64

	polls int64
	phase int
}

// NewRetuner returns a retuning wrapper around a fresh counter starting
// at the first interval. intervals must be non-empty; pollsPerPhase
// values below 1 are treated as 1.
func NewRetuner(intervals []int64, pollsPerPhase int64) *Retuner {
	if len(intervals) == 0 {
		intervals = []int64{1}
	}
	if pollsPerPhase < 1 {
		pollsPerPhase = 1
	}
	return &Retuner{
		Counter:       NewCounter(intervals[0]),
		Intervals:     intervals,
		PollsPerPhase: pollsPerPhase,
	}
}

// Poll delegates to the wrapped counter, retuning it between phases.
func (r *Retuner) Poll(threadID int, cycles uint64) bool {
	if r.polls != 0 && r.polls%r.PollsPerPhase == 0 {
		r.phase = (r.phase + 1) % len(r.Intervals)
		r.Counter.SetInterval(r.Intervals[r.phase])
	}
	r.polls++
	return r.Counter.Poll(threadID, cycles)
}

// Reset restores the first phase and the wrapped counter.
func (r *Retuner) Reset() {
	r.polls = 0
	r.phase = 0
	r.Counter.Interval = r.Intervals[0]
	r.Counter.Reset()
}

// Name returns "retuner/<n-phases>x<polls>".
func (r *Retuner) Name() string {
	return fmt.Sprintf("retuner/%dx%d", len(r.Intervals), r.PollsPerPhase)
}
