package trigger

import (
	"encoding/json"
	"testing"
)

func TestRecorderCapturesDecisions(t *testing.T) {
	r := NewRecorder(NewCounter(3))
	r.Reset()
	want := make([]bool, 0, 10)
	for i := 0; i < 10; i++ {
		want = append(want, r.Poll(0, uint64(i)))
	}
	log := r.Log()
	if log.Polls != 10 {
		t.Fatalf("polls = %d, want 10", log.Polls)
	}
	var fires uint64
	for _, f := range want {
		if f {
			fires++
		}
	}
	if log.Fires != fires {
		t.Fatalf("fires = %d, want %d", log.Fires, fires)
	}
	if log.Trigger != "counter(3)" && log.Trigger == "" {
		t.Fatalf("trigger name not recorded: %q", log.Trigger)
	}

	// Replay must reproduce the decisions in the same contexts.
	p := NewReplayer(log)
	p.Reset()
	for i := 0; i < 10; i++ {
		if got := p.Poll(0, uint64(i)); got != want[i] {
			t.Fatalf("replay poll %d = %v, want %v", i, got, want[i])
		}
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestRecorderResetClearsLog(t *testing.T) {
	r := NewRecorder(NewCounter(2))
	r.Reset()
	for i := 0; i < 5; i++ {
		r.Poll(0, uint64(i))
	}
	r.Reset() // the VM resets triggers at Run start
	if log := r.Log(); log.Polls != 0 || log.Fires != 0 || len(log.Bits) != 0 {
		t.Fatalf("reset did not clear the log: %+v", log)
	}
}

func TestReplayerVerifyFailures(t *testing.T) {
	r := NewRecorder(NewCounter(2))
	r.Reset()
	for i := 0; i < 6; i++ {
		r.Poll(1, uint64(i*10))
	}
	log := r.Log()

	t.Run("underrun", func(t *testing.T) {
		p := NewReplayer(log)
		p.Poll(1, 0)
		if err := p.Verify(); err == nil {
			t.Fatal("partial replay verified clean")
		}
	})
	t.Run("overrun", func(t *testing.T) {
		p := NewReplayer(log)
		for i := 0; i < 7; i++ {
			p.Poll(1, uint64(i*10))
		}
		if err := p.Verify(); err == nil {
			t.Fatal("overrun replay verified clean")
		}
	})
	t.Run("wrong context", func(t *testing.T) {
		p := NewReplayer(log)
		for i := 0; i < 6; i++ {
			p.Poll(2, uint64(i*10)) // wrong thread
		}
		if err := p.Verify(); err == nil {
			t.Fatal("wrong-context replay verified clean")
		}
	})
	t.Run("clean", func(t *testing.T) {
		p := NewReplayer(log)
		for i := 0; i < 6; i++ {
			p.Poll(1, uint64(i*10))
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("clean replay rejected: %v", err)
		}
	})
}

func TestLogJSONRoundTrip(t *testing.T) {
	r := NewRecorder(NewRandomized(5, 2, 99))
	r.Reset()
	for i := 0; i < 200; i++ {
		r.Poll(i%3, uint64(i*7))
	}
	log := r.Log()
	blob, err := json.Marshal(log)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var loaded Log
	if err := json.Unmarshal(blob, &loaded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	p := NewReplayer(loaded)
	for i := 0; i < 200; i++ {
		p.Poll(i%3, uint64(i*7))
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("verify after JSON round trip: %v", err)
	}
}

func TestRecorderNilInner(t *testing.T) {
	r := NewRecorder(nil)
	if r.Poll(0, 100) {
		t.Fatal("nil inner fired")
	}
	if r.Name() != "record:never" {
		t.Fatalf("name = %q", r.Name())
	}
}
