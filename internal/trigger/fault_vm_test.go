package trigger_test

// VM-level fault-trigger test, in an external package because the vm
// package imports trigger. Parallel subtests give `go test -race` real
// concurrency: many VMs polling independent jittered timers at once, so
// any accidental shared state between trigger instances (or between the
// VM's timer polling and the frame pool) is caught by the race detector.

import (
	"fmt"
	"testing"

	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/instr"
	"instrsample/internal/ir"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

func TestFaultyTimerUnderVM(t *testing.T) {
	for i := 0; i < 8; i++ {
		seed := uint64(i)*1099511628211 + 14695981039346656037
		t.Run(fmt.Sprintf("seed%d", i), func(t *testing.T) {
			t.Parallel()
			prog := ir.RandomProgram(seed, ir.RandomProgramConfig{WithThreads: i%2 == 0})
			opts := compile.Options{
				Instrumenters: []instr.Instrumenter{&instr.EdgeProfile{}, &instr.FieldAccess{}},
				Framework:     &core.Options{Variation: core.FullDuplication},
			}
			res, err := compile.Compile(prog, opts)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			// Same program, three clocks: healthy, jittered, skewed. All
			// must complete; the jittered runs must stay deterministic
			// (same seed → same stats).
			run := func(tr trigger.Trigger) vm.Stats {
				out, err := vm.New(res.Prog, vm.Config{
					Trigger:   tr,
					Handlers:  res.Handlers,
					MaxCycles: 1 << 33,
				}).Run()
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				return out.Stats
			}
			run(trigger.NewTimer(977))
			a := run(trigger.NewFaultyTimer(977, 700, 31, seed))
			b := run(trigger.NewFaultyTimer(977, 700, 31, seed))
			if a != b {
				t.Fatalf("jittered timer nondeterministic:\n  %+v\n  %+v", a, b)
			}
		})
	}
}
