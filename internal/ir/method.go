package ir

import (
	"fmt"
	"sort"
)

// Method is a compiled method: a CFG over basic blocks plus frame
// metadata. Free functions have Class == nil; virtual methods receive the
// receiver in register 0.
type Method struct {
	// Name is the method's name; unique within its class (or among free
	// functions).
	Name string
	// Class is the declaring class, or nil for a free function.
	Class *Class
	// NumParams is the number of parameters; arguments arrive in
	// registers 0..NumParams-1 (receiver in register 0 for virtual
	// methods, counted in NumParams).
	NumParams int
	// NumRegs is the frame's register count (>= NumParams).
	NumRegs int
	// Blocks holds every block of the method; Blocks[0] is the entry.
	Blocks []*Block
	// ProbeRegs is the number of per-frame instrumentation scratch slots
	// (e.g. the Ball–Larus path register). Set by instrumenters.
	ProbeRegs int

	// ID is the dense program-wide method index (set by Program.Seal).
	ID int
	// CodeSize is the encoded size in bytes, set by the layout pass.
	CodeSize int
	// Transformed records which framework variation, if any, has been
	// applied ("" when untransformed).
	Transformed string
}

// FullName returns Class.Name + "." + Name, or just Name for a free
// function.
func (m *Method) FullName() string {
	if m.Class != nil {
		return m.Class.Name + "." + m.Name
	}
	return m.Name
}

// Entry returns the method's entry block.
func (m *Method) Entry() *Block {
	if len(m.Blocks) == 0 {
		return nil
	}
	return m.Blocks[0]
}

// NewBlock appends a fresh empty block to the method and returns it.
func (m *Method) NewBlock(label string) *Block {
	b := &Block{ID: len(m.Blocks), Label: label, rpoIndex: -1}
	m.Blocks = append(m.Blocks, b)
	return b
}

// Renumber reassigns dense block IDs in Blocks order.
func (m *Method) Renumber() {
	for i, b := range m.Blocks {
		b.ID = i
	}
}

// RecomputePreds rebuilds every block's predecessor list from the
// terminators. Call after any CFG edit.
func (m *Method) RecomputePreds() {
	for _, b := range m.Blocks {
		b.Preds = b.Preds[:0]
	}
	for _, b := range m.Blocks {
		for _, s := range b.Succs() {
			if s != nil {
				s.Preds = append(s.Preds, b)
			}
		}
	}
}

// RemoveUnreachable drops blocks not reachable from the entry, renumbers,
// and recomputes predecessors. Returns the number of blocks removed.
func (m *Method) RemoveUnreachable() int {
	if len(m.Blocks) == 0 {
		return 0
	}
	seen := make(map[*Block]bool, len(m.Blocks))
	stack := []*Block{m.Entry()}
	seen[m.Entry()] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs() {
			if s != nil && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	kept := m.Blocks[:0]
	removed := 0
	for _, b := range m.Blocks {
		if seen[b] {
			kept = append(kept, b)
		} else {
			removed++
		}
	}
	m.Blocks = kept
	m.Renumber()
	m.RecomputePreds()
	return removed
}

// NumInstrs returns the total instruction count across all blocks.
func (m *Method) NumInstrs() int {
	n := 0
	for _, b := range m.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Program is a complete unit of execution: classes, free functions and a
// designated main method.
type Program struct {
	// Name labels the program (benchmark name etc.).
	Name string
	// Classes lists every class.
	Classes []*Class
	// Funcs lists every free function.
	Funcs []*Method
	// Main is the entry method (must take no parameters).
	Main *Method

	sealed bool
	// methods caches the flattened method list built by Seal.
	methods []*Method
	// fieldIDs maps (class ID, slot) to a dense program-wide field ID.
	fieldBase []int
	numFields int
	numBlocks int
}

// Methods returns every method in the program (free functions first, then
// class methods in declaration order). Valid after Seal.
func (p *Program) Methods() []*Method { return p.methods }

// NumMethods returns the number of methods. Valid after Seal.
func (p *Program) NumMethods() int { return len(p.methods) }

// NumFieldIDs returns the size of the dense program-wide field ID space.
// Valid after Seal.
func (p *Program) NumFieldIDs() int { return p.numFields }

// NumBlocks returns the size of the dense program-wide block GID space.
// Valid after Seal.
func (p *Program) NumBlocks() int { return p.numBlocks }

// FieldID maps a class and flattened slot index to a dense program-wide
// field identifier, used by field-access profiles. Valid after Seal.
func (p *Program) FieldID(c *Class, slot int) int {
	return p.fieldBase[c.ID] + slot
}

// ClassByName finds a class by name.
func (p *Program) ClassByName(name string) (*Class, bool) {
	for _, c := range p.Classes {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// MethodByName finds a method by its full name ("Class.name" or "name").
func (p *Program) MethodByName(full string) (*Method, bool) {
	for _, m := range p.methods {
		if m.FullName() == full {
			return m, true
		}
	}
	return nil, false
}

// Seal freezes the program: assigns class/method/field IDs, computes field
// layouts and flattened dispatch tables (the seal-time annotations the
// VM's fast paths rely on), renumbers blocks and recomputes predecessors.
// It must be called
// once construction is complete and again is harmless. Seal panics on
// structural errors that would make IDs meaningless (nil Main, duplicate
// class names); deeper validation belongs to Verify.
func (p *Program) Seal() {
	if p.Main == nil {
		panic("ir: program has no main")
	}
	seen := make(map[string]bool)
	for _, c := range p.Classes {
		if seen[c.Name] {
			panic("ir: duplicate class " + c.Name)
		}
		seen[c.Name] = true
	}
	// Field layout: parents before children. Iterate until fixpoint since
	// Classes order is arbitrary.
	done := make(map[*Class]bool)
	for remaining := len(p.Classes); remaining > 0; {
		progress := false
		for _, c := range p.Classes {
			if done[c] || (c.Super != nil && !done[c.Super]) {
				continue
			}
			if c.Super != nil {
				c.fieldBase = c.Super.NumFields()
			} else {
				c.fieldBase = 0
			}
			c.buildVtab()
			done[c] = true
			remaining--
			progress = true
		}
		if !progress {
			panic("ir: inheritance cycle among classes")
		}
	}
	p.methods = p.methods[:0]
	p.methods = append(p.methods, p.Funcs...)
	for _, c := range p.Classes {
		// Deterministic order: sort method names.
		names := make([]string, 0, len(c.Methods))
		for n := range c.Methods {
			names = append(names, n)
		}
		sortStrings(names)
		for _, n := range names {
			p.methods = append(p.methods, c.Methods[n])
		}
	}
	gid := 0
	for i, m := range p.methods {
		m.ID = i
		m.Renumber()
		m.RecomputePreds()
		for _, b := range m.Blocks {
			b.GID = gid
			gid++
		}
	}
	p.numBlocks = gid
	// Field IDs: reserve the full flattened slot width per class so that
	// FieldID(c, slot) is O(1) even for inherited slots. The space is
	// slightly sparse (an inherited slot has a distinct ID on each
	// subclass), which is fine for profiles: the IR resolves every access
	// against the statically named class.
	p.fieldBase = make([]int, len(p.Classes))
	p.numFields = 0
	for i, c := range p.Classes {
		c.ID = i
		p.fieldBase[i] = p.numFields
		p.numFields += c.NumFields()
	}
	p.sealed = true
}

// Sealed reports whether Seal has run.
func (p *Program) Sealed() bool { return p.sealed }

func sortStrings(s []string) { sort.Strings(s) }

// FmtStats returns a one-line summary of the program for logs.
func (p *Program) FmtStats() string {
	blocks, instrs := 0, 0
	for _, m := range p.methods {
		blocks += len(m.Blocks)
		instrs += m.NumInstrs()
	}
	return fmt.Sprintf("%s: %d classes, %d methods, %d blocks, %d instrs",
		p.Name, len(p.Classes), len(p.methods), blocks, instrs)
}
