package ir

import "testing"

// diamond builds the classic diamond CFG and returns its blocks:
//
//	entry -> (a | b) -> join -> return
func diamondCFG() (m *Method, entry, a, b, join *Block) {
	f := NewFunc("diamond", 1)
	entry = f.EntryBlock()
	a = f.Block("a")
	b = f.Block("b")
	join = f.Block("join")
	ec := f.At(entry)
	ec.Branch(0, a, b)
	f.At(a).Jump(join)
	f.At(b).Jump(join)
	f.At(join).Return(0)
	return f.M, entry, a, b, join
}

// loop builds a single natural loop:
//
//	entry -> head -> (body | exit); body -> head
func loop() (m *Method, entry, head, body, exit *Block) {
	f := NewFunc("loop", 1)
	entry = f.EntryBlock()
	head = f.Block("head")
	body = f.Block("body")
	exit = f.Block("exit")
	f.At(entry).Jump(head)
	hc := f.At(head)
	hc.Branch(0, body, exit)
	f.At(body).Jump(head)
	f.At(exit).Return(0)
	return f.M, entry, head, body, exit
}

// nested builds two nested natural loops sharing no blocks except the
// inner loop sitting inside the outer body:
//
//	entry -> oh -> (ih | exit); ih -> (ibody | olatch); ibody -> ih; olatch -> oh
func nested() (m *Method, entry, oh, ih, ibody, olatch, exit *Block) {
	f := NewFunc("nested", 1)
	entry = f.EntryBlock()
	oh = f.Block("outer_head")
	ih = f.Block("inner_head")
	ibody = f.Block("inner_body")
	olatch = f.Block("outer_latch")
	exit = f.Block("exit")
	f.At(entry).Jump(oh)
	f.At(oh).Branch(0, ih, exit)
	f.At(ih).Branch(0, ibody, olatch)
	f.At(ibody).Jump(ih)
	f.At(olatch).Jump(oh)
	f.At(exit).Return(0)
	return f.M, entry, oh, ih, ibody, olatch, exit
}

func blockIndex(t *testing.T, rpo []*Block, b *Block) int {
	t.Helper()
	for i, x := range rpo {
		if x == b {
			return i
		}
	}
	t.Fatalf("block %s not in RPO", b.Label)
	return -1
}

func TestReversePostorderManual(t *testing.T) {
	m, entry, a, b, join := diamondCFG()
	rpo := m.ReversePostorder()
	if len(rpo) != 4 {
		t.Fatalf("diamond RPO has %d blocks, want 4", len(rpo))
	}
	if rpo[0] != entry {
		t.Fatalf("RPO[0] = %s, want entry", rpo[0].Label)
	}
	// RPO invariant: every non-backedge edge goes forward in the order.
	for _, x := range []*Block{a, b} {
		if blockIndex(t, rpo, entry) >= blockIndex(t, rpo, x) {
			t.Errorf("entry does not precede %s", x.Label)
		}
		if blockIndex(t, rpo, x) >= blockIndex(t, rpo, join) {
			t.Errorf("%s does not precede join", x.Label)
		}
	}

	// Unreachable blocks are omitted.
	f := NewFunc("unreach", 0)
	f.At(f.EntryBlock()).ReturnVoid()
	orphan := f.Block("orphan")
	f.At(orphan).ReturnVoid()
	rpo = f.M.ReversePostorder()
	if len(rpo) != 1 {
		t.Fatalf("RPO with orphan has %d blocks, want 1", len(rpo))
	}
	if rpo[0] == orphan {
		t.Fatal("orphan block reached")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	m, entry, a, b, join := diamondCFG()
	dom := m.ComputeDominators()
	want := map[*Block]*Block{entry: entry, a: entry, b: entry, join: entry}
	for blk, idom := range want {
		if got := dom.Idom(blk); got != idom {
			t.Errorf("idom(%s) = %v, want %s", blk.Label, got, idom.Label)
		}
	}
	if !dom.Dominates(entry, join) || !dom.Dominates(join, join) {
		t.Error("entry/join must dominate join")
	}
	if dom.Dominates(a, join) || dom.Dominates(b, join) || dom.Dominates(a, b) {
		t.Error("branch arms must not dominate the join or each other")
	}
}

func TestDominatorsLoop(t *testing.T) {
	m, entry, head, body, exit := loop()
	dom := m.ComputeDominators()
	for blk, idom := range map[*Block]*Block{entry: entry, head: entry, body: head, exit: head} {
		if got := dom.Idom(blk); got != idom {
			t.Errorf("idom(%s) = %v, want %s", blk.Label, got, idom.Label)
		}
	}
	if !dom.Dominates(head, body) || !dom.Dominates(head, exit) {
		t.Error("loop header must dominate body and exit")
	}
	if dom.Dominates(body, exit) {
		t.Error("loop body must not dominate the exit")
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	f := NewFunc("u", 0)
	f.At(f.EntryBlock()).ReturnVoid()
	orphan := f.Block("orphan")
	f.At(orphan).ReturnVoid()
	dom := f.M.ComputeDominators()
	if dom.Idom(orphan) != nil {
		t.Error("unreachable block must have nil idom")
	}
	if dom.Dominates(f.EntryBlock(), orphan) || dom.Dominates(orphan, f.EntryBlock()) {
		t.Error("Dominates must be false for unreachable blocks")
	}
}

func TestEdgesDeterministic(t *testing.T) {
	m, entry, a, b, join := diamondCFG()
	edges := m.Edges()
	want := []Edge{
		{From: entry, To: a, Index: 0},
		{From: entry, To: b, Index: 1},
		{From: a, To: join, Index: 0},
		{From: b, To: join, Index: 0},
	}
	if len(edges) != len(want) {
		t.Fatalf("got %d edges, want %d", len(edges), len(want))
	}
	for i, e := range edges {
		if e != want[i] {
			t.Errorf("edge %d = %s->%s[%d], want %s->%s[%d]",
				i, e.From.Label, e.To.Label, e.Index,
				want[i].From.Label, want[i].To.Label, want[i].Index)
		}
	}
}

func TestBackedgesAndLoopHeaders(t *testing.T) {
	// Diamond: acyclic, no backedges or headers.
	m, _, _, _, _ := diamondCFG()
	if be := m.Backedges(); len(be) != 0 {
		t.Fatalf("diamond has %d backedges, want 0", len(be))
	}
	if lh := m.LoopHeaders(); len(lh) != 0 {
		t.Fatalf("diamond has %d loop headers, want 0", len(lh))
	}

	// Single loop: exactly body->head.
	m, _, head, body, _ := loop()
	be := m.Backedges()
	if len(be) != 1 || be[0].From != body || be[0].To != head {
		t.Fatalf("loop backedges = %+v, want exactly body->head", be)
	}
	lh := m.LoopHeaders()
	if len(lh) != 1 || !lh[head] {
		t.Fatalf("loop headers = %v, want exactly {head}", lh)
	}

	// Nested loops: two backedges, two headers.
	m2, _, oh, ih, ibody, olatch, _ := nested()
	got := map[[2]string]bool{}
	for _, e := range m2.Backedges() {
		got[[2]string{e.From.Label, e.To.Label}] = true
	}
	wantEdges := map[[2]string]bool{
		{ibody.Label, ih.Label}:  true,
		{olatch.Label, oh.Label}: true,
	}
	if len(got) != len(wantEdges) {
		t.Fatalf("nested backedges = %v, want %v", got, wantEdges)
	}
	for e := range wantEdges {
		if !got[e] {
			t.Errorf("missing backedge %s->%s", e[0], e[1])
		}
	}
	lh2 := m2.LoopHeaders()
	if len(lh2) != 2 || !lh2[oh] || !lh2[ih] {
		t.Fatalf("nested loop headers wrong: %v", lh2)
	}
}

func TestNaturalLoop(t *testing.T) {
	m, _, head, body, _ := loop()
	be := m.Backedges()
	if len(be) != 1 {
		t.Fatalf("want 1 backedge, got %d", len(be))
	}
	nl := NaturalLoop(be[0])
	if len(nl) != 2 || !nl[head] || !nl[body] {
		t.Fatalf("natural loop = %v, want {head, body}", nl)
	}

	// Nested: the outer loop's natural loop contains the whole inner loop.
	m2, _, oh, ih, ibody, olatch, exit := nested()
	var outer, inner Edge
	for _, e := range m2.Backedges() {
		if e.To == oh {
			outer = e
		} else {
			inner = e
		}
	}
	onl := NaturalLoop(outer)
	for _, b := range []*Block{oh, ih, ibody, olatch} {
		if !onl[b] {
			t.Errorf("outer natural loop missing %s", b.Label)
		}
	}
	if onl[exit] {
		t.Error("outer natural loop contains the exit")
	}
	inl := NaturalLoop(inner)
	if len(inl) != 2 || !inl[ih] || !inl[ibody] {
		t.Fatalf("inner natural loop = %v, want {inner_head, inner_body}", inl)
	}
}

func TestDAGPostorderManual(t *testing.T) {
	m, entry, head, body, _ := loop()
	be := map[[2]*Block]bool{{body, head}: true}
	post := DAGPostorder(m, be)
	if len(post) != 4 {
		t.Fatalf("DAG postorder has %d blocks, want 4", len(post))
	}
	pos := map[*Block]int{}
	for i, b := range post {
		pos[b] = i
	}
	// Postorder of the acyclic view: every non-backedge successor appears
	// before its predecessor.
	for _, e := range m.Edges() {
		if be[[2]*Block{e.From, e.To}] {
			continue
		}
		if pos[e.To] >= pos[e.From] {
			t.Errorf("edge %s->%s violates DAG postorder", e.From.Label, e.To.Label)
		}
	}
	if post[len(post)-1] != entry {
		t.Errorf("entry must be last in postorder, got %s", post[len(post)-1].Label)
	}
}

// TestCountedLoopShape sanity-checks that the builder's CountedLoop
// skeleton produces exactly the loop structure the analyses expect.
func TestCountedLoopShape(t *testing.T) {
	f := NewFunc("cl", 1)
	c := f.At(f.EntryBlock())
	lp := c.CountedLoop(0, "l")
	lp.Body.Jump(lp.Latch)
	lp.After.Return(lp.I)
	m := f.M
	be := m.Backedges()
	if len(be) != 1 {
		t.Fatalf("counted loop has %d backedges, want 1", len(be))
	}
	if be[0].To.Label != "l_head" || be[0].From.Label != "l_latch" {
		t.Fatalf("counted loop backedge %s->%s, want l_latch->l_head", be[0].From.Label, be[0].To.Label)
	}
	nl := NaturalLoop(be[0])
	for _, lbl := range []string{"l_head", "l_body", "l_latch"} {
		found := false
		for b := range nl {
			if b.Label == lbl {
				found = true
			}
		}
		if !found {
			t.Errorf("natural loop missing %s", lbl)
		}
	}
}
