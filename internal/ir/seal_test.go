package ir

import "testing"

// sealProg builds a small multi-method program: two free functions plus a
// class with two methods, each containing a branch or a loop so there are
// several blocks per method.
func sealProg() *Program {
	cls := &Class{Name: "C", FieldNames: []string{"x"}}

	mainB := NewFunc("main", 0)
	entry := mainB.EntryBlock()
	exit := mainB.Block("exit")
	c := mainB.At(entry)
	zero := c.Const(0)
	c.Jump(exit)
	mainB.At(exit).Return(zero)

	helperB := NewFunc("helper", 1)
	he := helperB.EntryBlock()
	ht := helperB.Block("then")
	hf := helperB.Block("else")
	hc := helperB.At(he)
	hc.Branch(hc.Bin(OpCmpGT, 0, hc.Const(1)), ht, hf)
	helperB.At(ht).Return(0)
	helperB.At(hf).Return(0)

	m1 := NewMethod(cls, "get", 1)
	g := m1.At(m1.EntryBlock())
	g.Return(g.GetField(0, cls, "x"))

	m2 := NewMethod(cls, "spin", 1)
	s := m2.At(m2.EntryBlock())
	lp := s.CountedLoop(s.Const(4), "l")
	lp.Body.Jump(lp.Latch)
	lp.After.Return(lp.I)

	p := &Program{
		Name:    "sealtest",
		Classes: []*Class{cls},
		Funcs:   []*Method{mainB.M, helperB.M},
		Main:    mainB.M,
	}
	p.Seal()
	return p
}

// checkDenseGIDs asserts the program-wide GID invariants Seal guarantees:
// dense from 0 with no gaps or reuse, contiguous and ascending within
// each method in Blocks order, and per-method block IDs dense from 0.
func checkDenseGIDs(t *testing.T, p *Program) {
	t.Helper()
	seen := make(map[int]bool)
	next := 0
	for _, m := range p.Methods() {
		for i, b := range m.Blocks {
			if b.ID != i {
				t.Errorf("%s block %d has ID %d", m.FullName(), i, b.ID)
			}
			if seen[b.GID] {
				t.Errorf("%s %s: GID %d reused", m.FullName(), b.Name(), b.GID)
			}
			seen[b.GID] = true
			if b.GID != next {
				t.Errorf("%s %s: GID %d, want %d (methods-order density)", m.FullName(), b.Name(), b.GID, next)
			}
			next++
		}
	}
	if p.NumBlocks() != next {
		t.Errorf("NumBlocks() = %d, want %d", p.NumBlocks(), next)
	}
}

// TestSealGIDsAfterTransforms re-seals after representative block-adding
// transforms and requires the GID space to stay dense — the VM's
// per-block side tables (block cost prefix sums, i-cache lines) index by
// GID and would silently alias if Seal ever left gaps or duplicates.
func TestSealGIDsAfterTransforms(t *testing.T) {
	cases := []struct {
		name string
		// mutate grows the program somehow, returning how many blocks it
		// added (to sanity-check NumBlocks afterwards).
		mutate func(t *testing.T, p *Program) int
	}{
		{"reseal unchanged", func(t *testing.T, p *Program) int { return 0 }},
		{"split edge with trampoline", func(t *testing.T, p *Program) int {
			m, ok := p.MethodByName("helper")
			if !ok {
				t.Fatal("no helper")
			}
			entry := m.Entry()
			then := entry.Succs()[0]
			tramp := m.NewBlock("tramp")
			tramp.Append(Instr{Op: OpJump, Targets: []*Block{then}})
			if n := entry.ReplaceTarget(then, tramp); n != 1 {
				t.Fatalf("ReplaceTarget rewrote %d targets, want 1", n)
			}
			return 1
		}},
		{"synthesized check diamond", func(t *testing.T, p *Program) int {
			// The shape the framework builds: a check block that either
			// falls back to the original or jumps to a duplicated copy.
			m, ok := p.MethodByName("C.get")
			if !ok {
				t.Fatal("no C.get")
			}
			orig := m.Entry()
			dup := m.NewBlock("dup")
			dup.Kind = KindDuplicated
			dup.Instrs = append([]Instr(nil), orig.Instrs...)
			dup.Twin, orig.Twin = orig, dup
			chk := m.NewBlock("chk")
			chk.Kind = KindCheckBlock
			chk.Append(Instr{Op: OpCheck, Targets: []*Block{orig, dup}})
			return 2
		}},
		{"new free function", func(t *testing.T, p *Program) int {
			b := NewFunc("extra", 0)
			e := b.EntryBlock()
			u := b.Block("u")
			b.At(e).Jump(u)
			b.At(u).ReturnVoid()
			p.Funcs = append(p.Funcs, b.M)
			return 2
		}},
		{"new class method", func(t *testing.T, p *Program) int {
			cls, ok := p.ClassByName("C")
			if !ok {
				t.Fatal("no class C")
			}
			b := NewMethod(cls, "set", 2)
			c := b.At(b.EntryBlock())
			c.PutField(0, cls, "x", 1)
			c.ReturnVoid()
			return 1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := sealProg()
			checkDenseGIDs(t, p)
			before := p.NumBlocks()
			added := tc.mutate(t, p)
			p.Seal()
			checkDenseGIDs(t, p)
			if got := p.NumBlocks(); got != before+added {
				t.Errorf("NumBlocks after transform = %d, want %d", got, before+added)
			}
			if err := p.Verify(VerifyBase); err != nil {
				t.Errorf("program invalid after transform: %v", err)
			}
		})
	}
}

// checkEdgeInvariants asserts the Preds/Succs bidirectional consistency
// RecomputePreds promises: b appears in s.Preds exactly as often as s
// appears in b.Succs, every edge endpoint belongs to the method, and the
// terminator is the last instruction of every block.
func checkEdgeInvariants(t *testing.T, m *Method) {
	t.Helper()
	inMethod := make(map[*Block]bool, len(m.Blocks))
	for _, b := range m.Blocks {
		inMethod[b] = true
	}
	countSucc := make(map[[2]*Block]int)
	countPred := make(map[[2]*Block]int)
	for _, b := range m.Blocks {
		term := b.Terminator()
		if term == nil {
			t.Errorf("%s: no terminator", b.Name())
			continue
		}
		if term != &b.Instrs[len(b.Instrs)-1] {
			t.Errorf("%s: terminator not last", b.Name())
		}
		for _, s := range b.Succs() {
			if !inMethod[s] {
				t.Errorf("%s: successor %s outside method", b.Name(), s.Name())
			}
			countSucc[[2]*Block{b, s}]++
		}
		for _, pr := range b.Preds {
			if !inMethod[pr] {
				t.Errorf("%s: predecessor %s outside method", b.Name(), pr.Name())
			}
			countPred[[2]*Block{pr, b}]++
		}
	}
	for e, n := range countSucc {
		if countPred[e] != n {
			t.Errorf("edge %s->%s: %d successor entries, %d predecessor entries",
				e[0].Name(), e[1].Name(), n, countPred[e])
		}
	}
	for e, n := range countPred {
		if countSucc[e] != n {
			t.Errorf("edge %s->%s in Preds %d times but Succs %d times",
				e[0].Name(), e[1].Name(), n, countSucc[e])
		}
	}
	if got, want := len(m.Edges()), len(countSucc); got < want {
		t.Errorf("Edges() lists %d edges, want at least %d distinct", got, want)
	}
}

// TestBlockEdgeInvariants exercises the CFG-editing helpers on the two
// canonical shapes and checks the derived structure after each edit.
func TestBlockEdgeInvariants(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Method
		edit  func(t *testing.T, m *Method)
	}{
		{"diamond untouched", func() *Method { m, _, _, _, _ := diamond(); return m }, nil},
		{"loop untouched", func() *Method { m, _, _, _ := loopMethod(); return m }, nil},
		{"diamond insert before terminator", func() *Method { m, _, _, _, _ := diamond(); return m },
			func(t *testing.T, m *Method) {
				b := m.Entry()
				n := len(b.Instrs)
				b.InsertBeforeTerminator(Instr{Op: OpYield}, Instr{Op: OpNop})
				if len(b.Instrs) != n+2 {
					t.Fatalf("InsertBeforeTerminator grew %d, want 2", len(b.Instrs)-n)
				}
			}},
		{"diamond insert front", func() *Method { m, _, _, _, _ := diamond(); return m },
			func(t *testing.T, m *Method) {
				b := m.Entry()
				b.InsertFront(Instr{Op: OpYield})
				if b.Instrs[0].Op != OpYield {
					t.Fatal("InsertFront did not prepend")
				}
			}},
		{"loop retarget backedge", func() *Method { m, _, _, _ := loopMethod(); return m },
			func(t *testing.T, m *Method) {
				bes := m.Backedges()
				if len(bes) != 1 {
					t.Fatalf("backedges = %d, want 1", len(bes))
				}
				be := bes[0]
				tramp := m.NewBlock("tramp")
				tramp.Append(Instr{Op: OpJump, Targets: []*Block{be.To}})
				if n := be.From.ReplaceTarget(be.To, tramp); n != 1 {
					t.Fatalf("ReplaceTarget = %d, want 1", n)
				}
				m.Renumber()
				m.RecomputePreds()
				// The loop structure is preserved: still exactly one
				// backedge, now entering the header from the trampoline.
				bes = m.Backedges()
				if len(bes) != 1 || bes[0].From != tramp {
					t.Fatalf("backedge after retarget = %+v, want from tramp", bes)
				}
			}},
		{"diamond remove unreachable", func() *Method { m, _, _, _, _ := diamond(); return m },
			func(t *testing.T, m *Method) {
				dead := m.NewBlock("dead")
				dead.Append(Instr{Op: OpReturn})
				if n := m.RemoveUnreachable(); n != 1 {
					t.Fatalf("RemoveUnreachable = %d, want 1", n)
				}
				for _, b := range m.Blocks {
					if b == dead {
						t.Fatal("dead block survived")
					}
				}
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.build()
			checkEdgeInvariants(t, m)
			if tc.edit != nil {
				tc.edit(t, m)
				m.Renumber()
				m.RecomputePreds()
				checkEdgeInvariants(t, m)
			}
		})
	}
}
