package ir

import (
	"testing"
	"unsafe"
)

// TestInstrSize pins the Instr layout at 112 bytes on 64-bit targets —
// the PR 2 packing that keeps the dispatch-critical fields (Op,
// BackedgeMask, Dst, A, B, Imm) in the first 24 bytes. The fast
// dispatcher's throughput is sensitive to this: a field added in the
// wrong place pushes hot operands onto a second cache line for every
// instruction fetch. If growth is deliberate, re-measure
// BenchmarkInterpreter, update this constant, and note the change in
// DESIGN.md; the fused-tier analogue (fInstr, 32 bytes) has the same
// guard in package vm.
func TestInstrSize(t *testing.T) {
	if unsafe.Sizeof(uintptr(0)) != 8 {
		t.Skip("layout pinned for 64-bit targets only")
	}
	if s := unsafe.Sizeof(Instr{}); s != 112 {
		t.Fatalf("ir.Instr is %d bytes, want 112; see the layout comment on Instr before accepting growth", s)
	}
	if off := unsafe.Offsetof(Instr{}.Imm); off > 24 {
		t.Fatalf("Instr.Imm at offset %d; hot fields (Op..Imm) must stay in the first 24 bytes", off)
	}
}
