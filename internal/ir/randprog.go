package ir

// RandomProgram generates structured, always-terminating random programs
// for property-based testing. Generated programs exercise loops (bounded
// counted loops, occasionally nested), branches, calls (including
// recursion with an explicit depth budget), virtual dispatch, field and
// array traffic, and printing — everything the instrumentation passes and
// the sampling framework have to transform correctly.
//
// The generator is deterministic for a given seed, so failures shrink to
// a reproducible seed.

// Rand is the minimal PRNG used by the generator (xorshift64*), kept
// local so test behaviour never depends on math/rand changes across Go
// versions.
type Rand struct{ s uint64 }

// NewRand returns a deterministic PRNG (seed 0 is remapped).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Next returns the next raw 64-bit value.
func (r *Rand) Next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// RandomProgramConfig bounds the generated program.
//
// The zero value of every field reproduces the generator's original
// behaviour exactly: for a given seed, a zero-valued config (modulo
// WithThreads) consumes the same PRNG stream and therefore builds the
// byte-identical program it always has. Scenario families
// (internal/scenario) rely on the non-zero knobs to sweep profile shape
// — loop depth, call density, polymorphism spread, thread count —
// without invalidating the seeds recorded by older property tests and
// fuzz corpora.
type RandomProgramConfig struct {
	// MaxFuncs bounds the number of helper functions (default 4).
	MaxFuncs int
	// MaxDepth bounds statement-tree nesting (default 4).
	MaxDepth int
	// MaxLoopIters bounds each counted loop (default 12).
	MaxLoopIters int
	// WithThreads allows spawn/join in main (default false: single
	// thread keeps property failures easy to read).
	WithThreads bool

	// MaxClasses bounds the class count (the polymorphism / receiver
	// spread: each class carries its own virtual "mix" method). Default
	// 2, clamped to [1, 16].
	MaxClasses int
	// MaxThreads bounds the helpers spawned as threads from main when
	// WithThreads is set. Default 2, clamped to [1, 8].
	MaxThreads int
	// CallBiasPct redirects this percentage of statements to a helper
	// call (call density). 0 disables the bias and, like the other
	// bias knobs, consumes no PRNG draws.
	CallBiasPct int
	// LoopBiasPct redirects this percentage of nestable statements to a
	// counted loop (loop density and, with MaxDepth, loop depth).
	LoopBiasPct int
	// VirtBiasPct redirects this percentage of nestable statements to a
	// virtual call (dispatch density over the MaxClasses receivers).
	VirtBiasPct int
}

func (c *RandomProgramConfig) defaults() {
	if c.MaxFuncs == 0 {
		c.MaxFuncs = 4
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 4
	}
	if c.MaxLoopIters == 0 {
		c.MaxLoopIters = 12
	}
	c.MaxClasses = clampInt(c.MaxClasses, 2, 1, 16)
	c.MaxThreads = clampInt(c.MaxThreads, 2, 1, 8)
	c.CallBiasPct = clampInt(c.CallBiasPct, 0, 0, 100)
	c.LoopBiasPct = clampInt(c.LoopBiasPct, 0, 0, 100)
	c.VirtBiasPct = clampInt(c.VirtBiasPct, 0, 0, 100)
}

// clampInt substitutes def for 0 and clamps to [lo, hi].
func clampInt(v, def, lo, hi int) int {
	if v == 0 {
		v = def
	}
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// RandomProgram builds a random sealed program from the seed.
func RandomProgram(seed uint64, cfg RandomProgramConfig) *Program {
	cfg.defaults()
	r := NewRand(seed)
	g := &progGen{r: r, cfg: cfg}
	return g.program()
}

type progGen struct {
	r   *Rand
	cfg RandomProgramConfig

	prog    *Program
	classes []*Class
	funcs   []*Method // callable helpers (built so far)

	// est tracks a static per-helper work estimate so call emission can
	// keep the whole program's dynamic cost bounded: loops multiply the
	// context, calls add the callee's estimate, and a statement that
	// would blow the budget degrades to cheap arithmetic.
	est map[*Method]int64
}

// workBudget bounds the estimated dynamic instruction count of any single
// generated function body (including everything it transitively calls).
const workBudget = 1 << 21

func (g *progGen) program() *Program {
	g.prog = &Program{Name: "random"}

	// 1..MaxClasses classes with 1-3 fields, each with a virtual method.
	nClasses := 1 + g.r.Intn(g.cfg.MaxClasses)
	for i := 0; i < nClasses; i++ {
		c := &Class{Name: string(rune('A' + i))}
		nf := 1 + g.r.Intn(3)
		for f := 0; f < nf; f++ {
			c.FieldNames = append(c.FieldNames, "f"+string(rune('0'+f)))
		}
		g.prog.Classes = append(g.prog.Classes, c)
		g.classes = append(g.classes, c)
		// Virtual method: mixes the receiver's fields with the argument.
		vb := NewMethod(c, "mix", 2)
		cur := vb.At(vb.EntryBlock())
		acc := cur.Const(int64(i + 1))
		for f := 0; f < nf; f++ {
			fv := cur.GetField(0, c, c.FieldNames[f])
			acc = cur.Bin(OpAdd, acc, fv)
		}
		acc = cur.Bin(OpXor, acc, 1)
		cur.PutField(0, c, c.FieldNames[0], acc)
		cur.Return(acc)
	}

	// Helper functions, each built from random statements. Functions can
	// call previously built functions, so the call graph is a DAG plus
	// optional bounded self-recursion.
	nFuncs := 1 + g.r.Intn(g.cfg.MaxFuncs)
	for i := 0; i < nFuncs; i++ {
		g.funcs = append(g.funcs, g.function(i))
	}

	mainB := NewFunc("main", 0)
	g.prog.Funcs = append(g.prog.Funcs, mainB.M)
	g.prog.Main = mainB.M
	cur := mainB.At(mainB.EntryBlock())
	env := g.newEnv(mainB, cur)
	if g.cfg.WithThreads && len(g.funcs) > 0 && g.r.Intn(2) == 0 {
		// Spawn 1..MaxThreads helpers as threads, join them into the
		// accumulator.
		n := 1 + g.r.Intn(g.cfg.MaxThreads)
		var handles []Reg
		for t := 0; t < n; t++ {
			f := g.funcs[g.r.Intn(len(g.funcs))]
			args := make([]Reg, f.NumParams)
			for a := range args {
				args[a] = env.cur.Const(int64(g.r.Intn(20)))
			}
			handles = append(handles, env.cur.Spawn(f, args...))
		}
		for _, h := range handles {
			v := env.cur.Join(h)
			env.cur.BinTo(OpAdd, env.acc, env.acc, v)
		}
	}
	env = g.statements(env, g.cfg.MaxDepth)
	env.cur.Print(env.acc)
	env.cur.Return(env.acc)

	for _, f := range g.funcs {
		g.prog.Funcs = append(g.prog.Funcs, f)
	}
	g.prog.Seal()
	return g.prog
}

// genEnv carries the builder state through statement generation.
type genEnv struct {
	b    *Builder
	cur  *Cursor
	acc  Reg // running accumulator, always live
	vars []Reg
	// depthParam is the recursion budget register of the enclosing
	// function (NoReg for main).
	depthParam Reg
	self       *Method
	// mult is the product of enclosing loop iteration counts; spent
	// accumulates the estimated dynamic cost of the function body.
	mult  int64
	spent *int64
}

func (e *genEnv) child(cur *Cursor, mult int64) *genEnv {
	return &genEnv{b: e.b, cur: cur, acc: e.acc, depthParam: e.depthParam,
		self: e.self, mult: mult, spent: e.spent}
}

// charge records est units of work in the current loop context and
// reports whether the budget allows it.
func (e *genEnv) charge(est int64) bool {
	cost := est * e.mult
	if *e.spent+cost > workBudget {
		return false
	}
	*e.spent += cost
	return true
}

func (g *progGen) newEnv(b *Builder, cur *Cursor) *genEnv {
	env := &genEnv{b: b, cur: cur, acc: b.FreshReg(), depthParam: NoReg,
		mult: 1, spent: new(int64)}
	cur.ConstTo(env.acc, int64(g.r.Intn(100)))
	return env
}

// function builds helper i: func hi(x, depth) with random statements and
// optional bounded self-recursion.
func (g *progGen) function(i int) *Method {
	b := NewFunc("h"+string(rune('0'+i)), 2)
	cur := b.At(b.EntryBlock())
	env := &genEnv{b: b, cur: cur, acc: b.FreshReg(), depthParam: 1,
		self: b.M, mult: 1, spent: new(int64)}
	cur.ConstTo(env.acc, int64(i*7+1))
	env.cur.BinTo(OpAdd, env.acc, env.acc, 0) // fold in x
	env = g.statements(env, 2+g.r.Intn(g.cfg.MaxDepth-1))
	env.cur.Return(env.acc)
	if g.est == nil {
		g.est = make(map[*Method]int64)
	}
	// A helper's callers must assume the worst case: the body estimate
	// times the maximum self-recursion fanout (self-calls are emitted
	// outside loops with budget <= 2, so a factor of 4 is conservative).
	g.est[b.M] = *env.spent*4 + int64(b.M.NumInstrs())
	return b.M
}

// statements emits 1-4 random statements at the given nesting depth and
// returns the (possibly moved) environment.
func (g *progGen) statements(env *genEnv, depth int) *genEnv {
	n := 1 + g.r.Intn(4)
	for i := 0; i < n; i++ {
		env = g.statement(env, depth)
	}
	return env
}

func (g *progGen) statement(env *genEnv, depth int) *genEnv {
	choices := 6 // arithmetic, field, array, call, io, print
	if depth > 0 {
		choices += 3 // if, loop, virtual call
	}
	if !env.charge(8) {
		// Budget exhausted: emit only constant-cost arithmetic.
		k := env.cur.Const(int64(g.r.Intn(97) + 1))
		env.cur.BinTo(OpXor, env.acc, env.acc, k)
		return env
	}
	choice := g.r.Intn(choices)
	// Bias knobs redirect the draw toward calls, loops and virtual
	// dispatch. Each active bias consumes exactly one extra draw per
	// statement; inactive biases (0) consume none, so zero-valued
	// configs replay the original PRNG stream.
	if g.cfg.CallBiasPct > 0 && g.r.Intn(100) < g.cfg.CallBiasPct {
		choice = 4
	}
	if depth > 0 {
		if g.cfg.LoopBiasPct > 0 && g.r.Intn(100) < g.cfg.LoopBiasPct {
			choice = 7
		}
		if g.cfg.VirtBiasPct > 0 && g.r.Intn(100) < g.cfg.VirtBiasPct {
			choice = 8
		}
	}
	switch choice {
	case 0, 1: // arithmetic chain
		ops := []Op{OpAdd, OpSub, OpMul, OpXor, OpAnd, OpOr}
		k := env.cur.Const(int64(g.r.Intn(1000) + 1))
		env.cur.BinTo(ops[g.r.Intn(len(ops))], env.acc, env.acc, k)
		// Remainder keeps values bounded (and exercises the trap-free
		// path: divisor is a non-zero constant).
		mod := env.cur.Const(int64(g.r.Intn(9000) + 1000))
		env.cur.BinTo(OpRem, env.acc, env.acc, mod)
	case 2: // object create + field traffic
		c := g.classes[g.r.Intn(len(g.classes))]
		o := env.cur.New(c)
		fld := c.FieldNames[g.r.Intn(len(c.FieldNames))]
		env.cur.PutField(o, c, fld, env.acc)
		v := env.cur.GetField(o, c, fld)
		env.cur.BinTo(OpAdd, env.acc, env.acc, v)
	case 3: // array create + element traffic
		ln := env.cur.Const(int64(g.r.Intn(6) + 2))
		arr := env.cur.NewArray(ln)
		idx := env.cur.Const(int64(g.r.Intn(2)))
		env.cur.AStore(arr, idx, env.acc)
		v := env.cur.ALoad(arr, idx)
		env.cur.BinTo(OpXor, env.acc, env.acc, v)
	case 4: // call a helper (earlier helper, or bounded self-recursion)
		env = g.emitCall(env)
	case 5: // io or print
		if g.r.Intn(2) == 0 {
			env.cur.IO(int64(g.r.Intn(500) + 10))
		} else {
			env.cur.Print(env.acc)
		}
	case 6: // if/else
		env = g.emitIf(env, depth)
	case 7: // counted loop
		env = g.emitLoop(env, depth)
	case 8: // virtual call
		c := g.classes[g.r.Intn(len(g.classes))]
		o := env.cur.New(c)
		env.cur.PutField(o, c, c.FieldNames[0], env.acc)
		v := env.cur.CallVirt("mix", o, env.acc)
		env.cur.BinTo(OpAdd, env.acc, env.acc, v)
	}
	return env
}

func (g *progGen) emitCall(env *genEnv) *genEnv {
	// Self-recursion with budget, or a call to an existing helper.
	// Self-recursion only outside loops (mult == 1), so the recursion
	// fanout stays within the estimate recorded by function().
	if env.self != nil && env.depthParam != NoReg && env.mult == 1 &&
		env.charge(2000) && g.r.Intn(3) == 0 {
		zero := env.cur.Const(0)
		cond := env.cur.Bin(OpCmpGT, env.depthParam, zero)
		thenB := env.b.Block("")
		elseB := env.b.Block("")
		env.cur.Branch(cond, thenB, elseB)
		tc := env.b.At(thenB)
		one := tc.Const(1)
		d1 := tc.Bin(OpSub, env.depthParam, one)
		v := tc.Call(env.self, env.acc, d1)
		tc.BinTo(OpAdd, env.acc, env.acc, v)
		tc.Jump(elseB)
		env.cur = env.b.At(elseB)
		return env
	}
	if len(g.funcs) == 0 {
		return env
	}
	f := g.funcs[g.r.Intn(len(g.funcs))]
	if !env.charge(g.est[f] + 40) {
		return env
	}
	budget := env.cur.Const(int64(g.r.Intn(3)))
	v := env.cur.Call(f, env.acc, budget)
	env.cur.BinTo(OpXor, env.acc, env.acc, v)
	return env
}

func (g *progGen) emitIf(env *genEnv, depth int) *genEnv {
	k := env.cur.Const(int64(g.r.Intn(64)))
	masked := env.cur.Bin(OpAnd, env.acc, k)
	zero := env.cur.Const(0)
	cond := env.cur.Bin(OpCmpNE, masked, zero)
	thenB := env.b.Block("")
	elseB := env.b.Block("")
	joinB := env.b.Block("")
	env.cur.Branch(cond, thenB, elseB)

	tEnv := env.child(env.b.At(thenB), env.mult)
	tEnv = g.statements(tEnv, depth-1)
	tEnv.cur.Jump(joinB)

	eEnv := env.child(env.b.At(elseB), env.mult)
	if g.r.Intn(2) == 0 {
		eEnv = g.statements(eEnv, depth-1)
	}
	eEnv.cur.Jump(joinB)

	env.cur = env.b.At(joinB)
	return env
}

func (g *progGen) emitLoop(env *genEnv, depth int) *genEnv {
	iters := int64(g.r.Intn(g.cfg.MaxLoopIters) + 1)
	if !env.charge(iters * 10) {
		return env
	}
	n := env.cur.Const(iters)
	lp := env.cur.CountedLoop(n, "")
	bodyEnv := env.child(lp.Body, env.mult*iters)
	bodyEnv = g.statements(bodyEnv, depth-1)
	bodyEnv.cur.BinTo(OpAdd, env.acc, env.acc, lp.I)
	bodyEnv.cur.Jump(lp.Latch)
	env.cur = lp.After
	return env
}
