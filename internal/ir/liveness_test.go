package ir

import "testing"

func TestUsesAndDef(t *testing.T) {
	collect := func(in Instr) []Reg { return in.Uses(nil) }
	cases := []struct {
		name string
		in   Instr
		uses []Reg
		def  Reg
	}{
		{"const", Instr{Op: OpConst, Dst: 3, Imm: 7}, nil, 3},
		{"move", Instr{Op: OpMove, Dst: 2, A: 1}, []Reg{1}, 2},
		{"add", Instr{Op: OpAdd, Dst: 4, A: 1, B: 2}, []Reg{1, 2}, 4},
		{"return", Instr{Op: OpReturn, A: 5}, []Reg{5}, NoReg},
		{"return void", Instr{Op: OpReturn, A: NoReg}, nil, NoReg},
		{"branch", Instr{Op: OpBranch, A: 6}, []Reg{6}, NoReg},
		{"jump", Instr{Op: OpJump}, nil, NoReg},
		// ArrayStore reads all three operands, including Dst (the array).
		{"array store", Instr{Op: OpArrayStore, Dst: 1, A: 2, B: 3}, []Reg{1, 2, 3}, NoReg},
		{"array load", Instr{Op: OpArrayLoad, Dst: 4, A: 1, B: 2}, []Reg{1, 2}, 4},
		{"putfield", Instr{Op: OpPutField, A: 7, B: 8}, []Reg{7, 8}, NoReg},
		{"getfield", Instr{Op: OpGetField, Dst: 9, A: 8}, []Reg{8}, 9},
		{"call", Instr{Op: OpCall, Dst: 5, Args: []Reg{1, 2, 3}}, []Reg{1, 2, 3}, 5},
		{"yield", Instr{Op: OpYield}, nil, NoReg},
		{"check", Instr{Op: OpCheck}, nil, NoReg},
		{"bare probe", Instr{Op: OpProbe, Probe: &Probe{Kind: ProbeEvent}}, nil, NoReg},
		{"value probe", Instr{Op: OpProbe, Probe: &Probe{Kind: ProbeValue, Reg: 6}}, []Reg{6}, NoReg},
	}
	for _, tc := range cases {
		got := collect(tc.in)
		if len(got) != len(tc.uses) {
			t.Errorf("%s: uses = %v, want %v", tc.name, got, tc.uses)
			continue
		}
		for i := range got {
			if got[i] != tc.uses[i] {
				t.Errorf("%s: uses = %v, want %v", tc.name, got, tc.uses)
				break
			}
		}
		if d := tc.in.Def(); d != tc.def {
			t.Errorf("%s: def = %v, want %v", tc.name, d, tc.def)
		}
	}
}

func TestLivenessStraightLine(t *testing.T) {
	// func f(p) { x = 1; y = p + x; return y }
	f := NewFunc("sl", 1)
	c := f.At(f.EntryBlock())
	x := c.Const(1)
	y := c.Bin(OpAdd, 0, x)
	c.Return(y)
	lv := f.M.ComputeLiveness()
	entry := f.EntryBlock()
	if !lv.LiveInAt(entry, 0) {
		t.Error("parameter used before definition must be live-in")
	}
	if lv.LiveInAt(entry, x) || lv.LiveInAt(entry, y) {
		t.Error("locally defined registers must not be live-in")
	}
}

func TestLivenessKillBeforeUse(t *testing.T) {
	// x is redefined before its use in the block, so it is not live-in.
	f := NewFunc("kill", 1)
	c := f.At(f.EntryBlock())
	x := c.Fresh()
	c.ConstTo(x, 9)         // def x
	y := c.Bin(OpAdd, x, 0) // use after def
	c.Return(y)
	lv := f.M.ComputeLiveness()
	if lv.LiveInAt(f.EntryBlock(), x) {
		t.Error("register defined before first use must not be live-in")
	}
	if !lv.LiveInAt(f.EntryBlock(), 0) {
		t.Error("parameter must be live-in")
	}
}

func TestLivenessDiamond(t *testing.T) {
	// x defined in entry, used only in the join: it must be live through
	// both arms even though neither touches it.
	f := NewFunc("dia", 1)
	entry := f.EntryBlock()
	a := f.Block("a")
	b := f.Block("b")
	join := f.Block("join")
	ec := f.At(entry)
	x := ec.Const(42)
	ec.Branch(0, a, b)
	ac := f.At(a)
	a1 := ac.Const(1) // dead in a
	_ = a1
	ac.Jump(join)
	f.At(b).Jump(join)
	f.At(join).Return(x)
	lv := f.M.ComputeLiveness()
	for _, blk := range []*Block{a, b, join} {
		if !lv.LiveInAt(blk, x) {
			t.Errorf("x must be live-in at %s", blk.Label)
		}
	}
	if lv.LiveInAt(entry, x) {
		t.Error("x defined in entry must not be live-in at entry")
	}
	if lv.LiveInAt(join, a1) {
		t.Error("a's dead constant must not be live-in at join")
	}
}

func TestLivenessLoop(t *testing.T) {
	// acc is updated around the loop: it must be live-in at the header,
	// body and latch (it flows around the backedge), and n (the bound)
	// stays live inside the loop for the exit test.
	f := NewFunc("lp", 1)
	n := Reg(0)
	c := f.At(f.EntryBlock())
	acc := c.Fresh()
	c.ConstTo(acc, 0)
	lp := c.CountedLoop(n, "l")
	one := lp.Body.Const(1)
	lp.Body.BinTo(OpAdd, acc, acc, one)
	lp.Body.Jump(lp.Latch)
	lp.After.Return(acc)
	m := f.M
	lv := m.ComputeLiveness()
	var head, body, latch, after *Block
	for _, b := range m.Blocks {
		switch b.Label {
		case "l_head":
			head = b
		case "l_body":
			body = b
		case "l_latch":
			latch = b
		case "l_after":
			after = b
		}
	}
	for _, blk := range []*Block{head, body, latch, after} {
		if blk == nil {
			t.Fatal("counted loop blocks not found")
		}
	}
	for _, tc := range []struct {
		blk  *Block
		r    Reg
		want bool
		desc string
	}{
		{head, acc, true, "acc live around the loop at head"},
		{body, acc, true, "acc used in body"},
		{latch, acc, true, "acc live through the latch"},
		{after, acc, true, "acc returned after the loop"},
		{head, n, true, "bound n live at head"},
		{body, n, true, "bound n live around the backedge"},
		{after, n, false, "bound n dead after the loop"},
		{head, lp.I, true, "induction variable live at head"},
		{after, lp.I, false, "induction variable dead after the loop"},
	} {
		if got := lv.LiveInAt(tc.blk, tc.r); got != tc.want {
			t.Errorf("%s: LiveInAt(%s, r%d) = %v, want %v", tc.desc, tc.blk.Label, tc.r, got, tc.want)
		}
	}
}

func TestLivenessBitsetBounds(t *testing.T) {
	f := NewFunc("b", 1)
	f.At(f.EntryBlock()).Return(0)
	lv := f.M.ComputeLiveness()
	// Out-of-range and NoReg queries must be false, not panic.
	if lv.LiveInAt(f.EntryBlock(), NoReg) {
		t.Error("NoReg reported live")
	}
	if lv.LiveInAt(f.EntryBlock(), Reg(10_000)) {
		t.Error("out-of-range register reported live")
	}
}
