package ir

import (
	"errors"
	"fmt"
)

// VerifyMode selects how strict Verify is about framework-specific
// structure.
type VerifyMode int

const (
	// VerifyBase checks structural well-formedness only.
	VerifyBase VerifyMode = iota
	// VerifyTransformed additionally checks the sampling-framework
	// invariants on a transformed method: checking code carries no
	// probes, duplicated code contains no internal backedges (every
	// loop backedge exits to checking code), and every OpCheck fires
	// into duplicated code while falling through to checking code.
	VerifyTransformed
)

// Verify validates a whole program. It returns an error describing the
// first few problems found.
func (p *Program) Verify(mode VerifyMode) error {
	if !p.sealed {
		return errors.New("ir: verify before Seal")
	}
	if p.Main == nil {
		return errors.New("ir: no main method")
	}
	if p.Main.NumParams != 0 {
		return fmt.Errorf("ir: main must take 0 params, has %d", p.Main.NumParams)
	}
	var errs []error
	for _, m := range p.methods {
		if err := VerifyMethod(m, mode); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", m.FullName(), err))
			if len(errs) >= 8 {
				break
			}
		}
	}
	return errors.Join(errs...)
}

// VerifyMethod validates a single method.
func VerifyMethod(m *Method, mode VerifyMode) error {
	if len(m.Blocks) == 0 {
		return errors.New("no blocks")
	}
	if m.NumRegs < m.NumParams {
		return fmt.Errorf("NumRegs %d < NumParams %d", m.NumRegs, m.NumParams)
	}
	inMethod := make(map[*Block]bool, len(m.Blocks))
	for _, b := range m.Blocks {
		inMethod[b] = true
	}
	for _, b := range m.Blocks {
		if err := verifyBlock(m, b, inMethod); err != nil {
			return fmt.Errorf("%s: %w", b.Name(), err)
		}
	}
	if mode == VerifyTransformed {
		return verifyTransformed(m)
	}
	return nil
}

func verifyBlock(m *Method, b *Block, inMethod map[*Block]bool) error {
	if len(b.Instrs) == 0 {
		return errors.New("empty block")
	}
	for i := range b.Instrs {
		in := &b.Instrs[i]
		isLast := i == len(b.Instrs)-1
		if in.IsTerminator() != isLast {
			if isLast {
				return fmt.Errorf("last instruction %s is not a terminator", in.Op)
			}
			return fmt.Errorf("terminator %s mid-block at index %d", in.Op, i)
		}
		if err := verifyOperands(m, in); err != nil {
			return fmt.Errorf("instr %d (%s): %w", i, in.Op, err)
		}
		for _, t := range in.Targets {
			if t == nil {
				return fmt.Errorf("instr %d (%s): nil target", i, in.Op)
			}
			if !inMethod[t] {
				return fmt.Errorf("instr %d (%s): target %s outside method", i, in.Op, t.Name())
			}
		}
	}
	return nil
}

func verifyOperands(m *Method, in *Instr) error {
	checkReg := func(r Reg, what string) error {
		if r == NoReg {
			return nil
		}
		if int(r) < 0 || int(r) >= m.NumRegs {
			return fmt.Errorf("%s register r%d out of range [0,%d)", what, r, m.NumRegs)
		}
		return nil
	}
	var scratch []Reg
	for _, r := range in.Uses(scratch) {
		if err := checkReg(r, "use"); err != nil {
			return err
		}
	}
	if err := checkReg(in.Def(), "def"); err != nil {
		return err
	}
	switch in.Op {
	case OpNew:
		if in.Class == nil {
			return errors.New("new without class")
		}
	case OpGetField, OpPutField:
		if in.Class == nil {
			return errors.New("field access without class")
		}
		if in.FieldSlot() < 0 || in.FieldSlot() >= in.Class.NumFields() {
			return fmt.Errorf("field slot %d out of range for %s", in.FieldSlot(), in.Class.Name)
		}
	case OpCall, OpSpawn:
		if in.Method == nil {
			return errors.New("call without method")
		}
		if len(in.Args) != in.Method.NumParams {
			return fmt.Errorf("call %s with %d args, wants %d",
				in.Method.FullName(), len(in.Args), in.Method.NumParams)
		}
	case OpCallVirt:
		if in.Name == "" {
			return errors.New("callvirt without name")
		}
		if len(in.Args) < 1 {
			return errors.New("callvirt without receiver")
		}
	case OpProbe, OpCheckedProbe:
		if in.Probe == nil {
			return errors.New("probe without payload")
		}
	case OpJump:
		if len(in.Targets) != 1 {
			return fmt.Errorf("jmp with %d targets", len(in.Targets))
		}
	case OpBranch, OpCheck, OpLoopCheck:
		if len(in.Targets) != 2 {
			return fmt.Errorf("%s with %d targets", in.Op, len(in.Targets))
		}
	case OpReturn:
		if len(in.Targets) != 0 {
			return errors.New("ret with targets")
		}
	case OpIO:
		if in.Imm < 0 {
			return fmt.Errorf("io with negative cost %d", in.Imm)
		}
	}
	return nil
}

// verifyTransformed checks the sampling-framework invariants (DESIGN.md
// §5, items 3 and 7).
func verifyTransformed(m *Method) error {
	// Checking code must not contain probes; duplicated code may.
	for _, b := range m.Blocks {
		if b.Kind != KindDuplicated && b.HasProbe() {
			for i := range b.Instrs {
				if b.Instrs[i].Op == OpCheckedProbe {
					// No-Duplication: guarded probes legitimately live in
					// checking code.
					continue
				}
				if b.Instrs[i].Op == OpProbe {
					return fmt.Errorf("%s: unguarded probe in %s code", b.Name(), b.Kind)
				}
			}
		}
		if b.Kind == KindCheckBlock {
			if len(b.Instrs) != 1 || b.Instrs[0].Op != OpCheck {
				return fmt.Errorf("%s: check block must hold a single check", b.Name())
			}
		}
	}
	// Every OpCheck fires into duplicated code and falls through to
	// non-duplicated code.
	for _, b := range m.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != OpCheck {
			continue
		}
		if t.Targets[0].Kind != KindDuplicated {
			return fmt.Errorf("%s: check fire-target %s is %s, want duplicated",
				b.Name(), t.Targets[0].Name(), t.Targets[0].Kind)
		}
		if t.Targets[1].Kind == KindDuplicated {
			return fmt.Errorf("%s: check else-target %s is duplicated", b.Name(), t.Targets[1].Name())
		}
	}
	// The duplicated subgraph must be acyclic: every cycle must pass
	// through checking code. Detect cycles restricted to duplicated
	// blocks (DFS with colors).
	color := make(map[*Block]int) // 0 white 1 grey 2 black
	var dfs func(b *Block) error
	dfs = func(b *Block) error {
		color[b] = 1
		t := b.Terminator()
		for i, s := range b.Succs() {
			if s == nil || s.Kind != KindDuplicated {
				continue
			}
			// A loop-check's stay-in-duplicated edge is a *counted*
			// backedge (the §2 N-iteration extension): it is bounded by
			// the frame's iteration budget, so it is exempt from the
			// acyclicity requirement.
			if t.Op == OpLoopCheck && i == 0 {
				continue
			}
			switch color[s] {
			case 1:
				return fmt.Errorf("backedge inside duplicated code: %s -> %s", b.Name(), s.Name())
			case 0:
				if err := dfs(s); err != nil {
					return err
				}
			}
		}
		color[b] = 2
		return nil
	}
	for _, b := range m.Blocks {
		if b.Kind == KindDuplicated && color[b] == 0 {
			if err := dfs(b); err != nil {
				return err
			}
		}
	}
	return nil
}
