package ir

import (
	"fmt"
	"io"
	"strings"
)

// Fprint writes a human-readable disassembly of the method to w.
func Fprint(w io.Writer, m *Method) {
	fmt.Fprintf(w, "method %s params=%d regs=%d", m.FullName(), m.NumParams, m.NumRegs)
	if m.Transformed != "" {
		fmt.Fprintf(w, " transformed=%s", m.Transformed)
	}
	fmt.Fprintln(w, " {")
	for _, b := range m.Blocks {
		kind := ""
		if b.Kind != KindChecking {
			kind = "  ; " + b.Kind.String()
		}
		fmt.Fprintf(w, "%s:%s\n", b.Name(), kind)
		for i := range b.Instrs {
			fmt.Fprintf(w, "    %s\n", b.Instrs[i].String())
		}
	}
	fmt.Fprintln(w, "}")
}

// Sprint returns the disassembly of a method as a string.
func Sprint(m *Method) string {
	var sb strings.Builder
	Fprint(&sb, m)
	return sb.String()
}

// FprintProgram writes a disassembly of the whole program.
func FprintProgram(w io.Writer, p *Program) {
	fmt.Fprintf(w, "program %s\n", p.Name)
	for _, c := range p.Classes {
		super := ""
		if c.Super != nil {
			super = " extends " + c.Super.Name
		}
		fmt.Fprintf(w, "class %s%s { fields: %s }\n", c.Name, super, strings.Join(c.FieldNames, ", "))
	}
	for _, m := range p.Methods() {
		Fprint(w, m)
	}
}
