package ir

// CloneBlocks deep-copies the given blocks, remapping all terminator
// targets that point *within* the set onto the corresponding copies.
// Targets pointing outside the set are preserved as-is. The returned map
// sends each original block to its copy. Copies are appended to m.Blocks
// and marked with the given kind; each copy's Twin is set to its original
// and vice versa.
func CloneBlocks(m *Method, blocks []*Block, kind BlockKind) map[*Block]*Block {
	twins := make(map[*Block]*Block, len(blocks))
	for _, b := range blocks {
		nb := m.NewBlock("")
		if b.Label != "" {
			nb.Label = b.Label + ".dup"
		}
		nb.Kind = kind
		nb.Instrs = make([]Instr, len(b.Instrs))
		for i := range b.Instrs {
			nb.Instrs[i] = b.Instrs[i].Clone()
		}
		twins[b] = nb
		nb.Twin = b
		b.Twin = nb
	}
	for _, b := range blocks {
		nb := twins[b]
		if t := nb.Terminator(); t != nil {
			for i, tgt := range t.Targets {
				if c, ok := twins[tgt]; ok {
					t.Targets[i] = c
				}
			}
		}
	}
	return twins
}

// CloneMethod deep-copies an entire method, including all blocks and
// instructions. Twin links inside the copy point within the copy. The
// copy shares Class/Method references of call instructions (it calls the
// same callees).
func CloneMethod(m *Method) *Method {
	nm := &Method{
		Name:        m.Name,
		Class:       m.Class,
		NumParams:   m.NumParams,
		NumRegs:     m.NumRegs,
		ProbeRegs:   m.ProbeRegs,
		ID:          m.ID,
		CodeSize:    m.CodeSize,
		Transformed: m.Transformed,
	}
	twins := make(map[*Block]*Block, len(m.Blocks))
	for _, b := range m.Blocks {
		nb := nm.NewBlock(b.Label)
		nb.Kind = b.Kind
		nb.Addr, nb.Size = b.Addr, b.Size
		nb.Instrs = make([]Instr, len(b.Instrs))
		for i := range b.Instrs {
			nb.Instrs[i] = b.Instrs[i].Clone()
		}
		twins[b] = nb
	}
	for _, b := range m.Blocks {
		nb := twins[b]
		if t := nb.Terminator(); t != nil {
			for i, tgt := range t.Targets {
				if c, ok := twins[tgt]; ok {
					t.Targets[i] = c
				}
			}
		}
		if b.Twin != nil {
			if c, ok := twins[b.Twin]; ok {
				nb.Twin = c
			}
		}
	}
	nm.RecomputePreds()
	return nm
}

// CloneProgram deep-copies an entire program: classes, methods, blocks.
// Call instructions are remapped to the copied methods, OpNew/field
// instructions to the copied classes. The copy is sealed. This is what
// the experiment harness uses to compile the same source program under
// many configurations without cross-contamination.
func CloneProgram(p *Program) *Program {
	np := &Program{Name: p.Name}
	classMap := make(map[*Class]*Class, len(p.Classes))
	for _, c := range p.Classes {
		nc := &Class{
			Name:       c.Name,
			FieldNames: append([]string(nil), c.FieldNames...),
		}
		classMap[c] = nc
		np.Classes = append(np.Classes, nc)
	}
	for _, c := range p.Classes {
		if c.Super != nil {
			classMap[c].Super = classMap[c.Super]
		}
	}
	methodMap := make(map[*Method]*Method, len(p.Methods()))
	cloneInto := func(m *Method) *Method {
		nm := CloneMethod(m)
		methodMap[m] = nm
		return nm
	}
	for _, f := range p.Funcs {
		np.Funcs = append(np.Funcs, cloneInto(f))
	}
	for _, c := range p.Classes {
		for name, m := range c.Methods {
			nm := cloneInto(m)
			nm.Class = classMap[c]
			if classMap[c].Methods == nil {
				classMap[c].Methods = make(map[string]*Method, len(c.Methods))
			}
			classMap[c].Methods[name] = nm
		}
	}
	// Remap instruction references.
	for _, nm := range methodMap {
		for _, b := range nm.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Class != nil {
					in.Class = classMap[in.Class]
				}
				if in.Method != nil {
					if mm, ok := methodMap[in.Method]; ok {
						in.Method = mm
					}
				}
			}
		}
	}
	if p.Main != nil {
		np.Main = methodMap[p.Main]
	}
	np.Seal()
	return np
}
