package ir

import "fmt"

// Class describes an object layout plus a virtual method table. Single
// inheritance: a subclass's field slots extend its superclass's, so a
// field index resolved against a superclass is valid on any subclass
// instance.
type Class struct {
	// Name is unique within the program.
	Name string
	// Super is the superclass, or nil.
	Super *Class
	// FieldNames are the fields declared by this class (not inherited).
	FieldNames []string
	// Methods are the virtual methods declared by this class, keyed by
	// name. Dispatch walks the superclass chain.
	Methods map[string]*Method

	// ID is the dense program-wide class index (set by Program.Seal).
	ID int
	// fieldBase is the slot offset of this class's first own field.
	fieldBase int
	// vtab is the flattened dispatch table built by Program.Seal: every
	// method visible on this class (own or inherited), keyed by name, so
	// Lookup is a single map hit instead of a superclass-chain walk on the
	// interpreter's OpCallVirt path. Nil before Seal; AddMethod drops it
	// (mutating a sealed hierarchy requires re-sealing).
	vtab map[string]*Method
}

// NumFields returns the total number of field slots of an instance,
// including inherited fields.
func (c *Class) NumFields() int {
	return c.fieldBase + len(c.FieldNames)
}

// FieldIndex resolves a field name (searching this class then supers) to
// its flattened slot index. The second result is false if unknown.
func (c *Class) FieldIndex(name string) (int, bool) {
	for cl := c; cl != nil; cl = cl.Super {
		for i, f := range cl.FieldNames {
			if f == name {
				return cl.fieldBase + i, true
			}
		}
	}
	return 0, false
}

// FieldName maps a flattened slot index back to the declaring name, for
// disassembly. Returns "#idx" if out of range.
func (c *Class) FieldName(idx int) string {
	for cl := c; cl != nil; cl = cl.Super {
		if idx >= cl.fieldBase && idx < cl.fieldBase+len(cl.FieldNames) {
			return cl.FieldNames[idx-cl.fieldBase]
		}
	}
	return fmt.Sprintf("#%d", idx)
}

// Lookup resolves a virtual method name against this class. After Seal it
// is a single lookup in the flattened vtable; before Seal (or after a
// post-seal AddMethod) it walks the superclass chain. The second result is
// false if no class in the chain declares the method.
func (c *Class) Lookup(name string) (*Method, bool) {
	if c.vtab != nil {
		m, ok := c.vtab[name]
		return m, ok
	}
	for cl := c; cl != nil; cl = cl.Super {
		if m, ok := cl.Methods[name]; ok {
			return m, true
		}
	}
	return nil, false
}

// IsSubclassOf reports whether c is other or a (transitive) subclass.
func (c *Class) IsSubclassOf(other *Class) bool {
	for cl := c; cl != nil; cl = cl.Super {
		if cl == other {
			return true
		}
	}
	return false
}

// AddMethod declares a virtual method on the class and returns it. It
// invalidates the class's sealed vtable; if the program was already
// sealed, Seal must run again before dispatch (subclass vtables are
// rebuilt there too).
func (c *Class) AddMethod(m *Method) *Method {
	if c.Methods == nil {
		c.Methods = make(map[string]*Method)
	}
	m.Class = c
	c.Methods[m.Name] = m
	c.vtab = nil
	return m
}

// buildVtab flattens the dispatch table: the superclass's table (already
// built — Seal processes parents first) overlaid with own declarations.
func (c *Class) buildVtab() {
	n := len(c.Methods)
	if c.Super != nil {
		n += len(c.Super.vtab)
	}
	c.vtab = make(map[string]*Method, n)
	if c.Super != nil {
		for name, m := range c.Super.vtab {
			c.vtab[name] = m
		}
	}
	for name, m := range c.Methods {
		c.vtab[name] = m
	}
}
