package ir

// ReversePostorder returns the method's blocks in reverse postorder of a
// depth-first traversal from the entry, and records each block's RPO index
// (unreachable blocks get index -1 and are omitted).
func (m *Method) ReversePostorder() []*Block {
	for _, b := range m.Blocks {
		b.rpoIndex = -1
	}
	post := make([]*Block, 0, len(m.Blocks))
	visited := make(map[*Block]bool, len(m.Blocks))

	// Iterative DFS with an explicit frame stack so deep CFGs (large
	// generated programs) cannot overflow the Go stack.
	type frame struct {
		b    *Block
		next int
	}
	if m.Entry() == nil {
		return nil
	}
	stack := []frame{{b: m.Entry()}}
	visited[m.Entry()] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := f.b.Succs()
		if f.next < len(succs) {
			s := succs[f.next]
			f.next++
			if s != nil && !visited[s] {
				visited[s] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	// Reverse.
	rpo := make([]*Block, len(post))
	for i, b := range post {
		idx := len(post) - 1 - i
		rpo[idx] = b
		b.rpoIndex = idx
	}
	return rpo
}

// Dominators computes the immediate-dominator relation using the iterative
// algorithm of Cooper, Harvey and Kennedy. The result maps each reachable
// block to its immediate dominator; the entry maps to itself.
type Dominators struct {
	idom map[*Block]*Block
	rpo  []*Block
}

// ComputeDominators runs the dominator analysis on the method.
func (m *Method) ComputeDominators() *Dominators {
	rpo := m.ReversePostorder()
	m.RecomputePreds()
	d := &Dominators{idom: make(map[*Block]*Block, len(rpo)), rpo: rpo}
	if len(rpo) == 0 {
		return d
	}
	entry := rpo[0]
	d.idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if d.idom[p] == nil {
					continue // predecessor not yet processed / unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

func (d *Dominators) intersect(a, b *Block) *Block {
	for a != b {
		for a.rpoIndex > b.rpoIndex {
			a = d.idom[a]
		}
		for b.rpoIndex > a.rpoIndex {
			b = d.idom[b]
		}
	}
	return a
}

// Idom returns the immediate dominator of b (entry for itself), or nil if
// b is unreachable.
func (d *Dominators) Idom(b *Block) *Block { return d.idom[b] }

// Dominates reports whether a dominates b (reflexively).
func (d *Dominators) Dominates(a, b *Block) bool {
	if d.idom[b] == nil || d.idom[a] == nil {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := d.idom[b]
		if next == b {
			return false // reached entry
		}
		b = next
	}
}

// Edge is a CFG edge.
type Edge struct {
	From, To *Block
	// Index is the position of To in From's terminator targets.
	Index int
}

// Edges returns every CFG edge of the method in deterministic order.
func (m *Method) Edges() []Edge {
	var out []Edge
	for _, b := range m.Blocks {
		for i, s := range b.Succs() {
			if s != nil {
				out = append(out, Edge{From: b, To: s, Index: i})
			}
		}
	}
	return out
}

// Backedges returns the method's backedges: edges whose target dominates
// their source (natural-loop backedges), plus any DFS retreating edge in
// irreducible regions. This matches the set of edges on which the paper
// places checks and Jalapeño places yieldpoints — together with method
// entry they bound the code executable between two checks.
func (m *Method) Backedges() []Edge {
	dom := m.ComputeDominators()
	// DFS retreating edges: target still on the DFS stack.
	state := make(map[*Block]int, len(m.Blocks)) // 0 unseen, 1 on-stack, 2 done
	retreat := make(map[[2]*Block]bool)
	type frame struct {
		b    *Block
		next int
	}
	if m.Entry() == nil {
		return nil
	}
	stack := []frame{{b: m.Entry()}}
	state[m.Entry()] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := f.b.Succs()
		if f.next < len(succs) {
			s := succs[f.next]
			f.next++
			if s == nil {
				continue
			}
			switch state[s] {
			case 0:
				state[s] = 1
				stack = append(stack, frame{b: s})
			case 1:
				retreat[[2]*Block{f.b, s}] = true
			}
			continue
		}
		state[f.b] = 2
		stack = stack[:len(stack)-1]
	}
	var out []Edge
	for _, e := range m.Edges() {
		if dom.Dominates(e.To, e.From) || retreat[[2]*Block{e.From, e.To}] {
			out = append(out, e)
		}
	}
	return out
}

// LoopHeaders returns the set of blocks that are targets of backedges.
func (m *Method) LoopHeaders() map[*Block]bool {
	heads := make(map[*Block]bool)
	for _, e := range m.Backedges() {
		heads[e.To] = true
	}
	return heads
}

// DAGPostorder returns the reachable blocks of m in postorder of a DFS
// that ignores the given backedges. The result is a reverse-topological
// order of the acyclic view of the CFG (the "duplicated code DAG" of §3.1
// and the acyclic CFG of Ball–Larus path numbering): iterating it forward
// visits all non-backedge successors of a block before the block itself.
func DAGPostorder(m *Method, backedge map[[2]*Block]bool) []*Block {
	var post []*Block
	state := make(map[*Block]int, len(m.Blocks))
	type frame struct {
		b    *Block
		next int
	}
	if m.Entry() == nil {
		return nil
	}
	var stack []frame
	push := func(b *Block) {
		state[b] = 1
		stack = append(stack, frame{b: b})
	}
	push(m.Entry())
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := f.b.Succs()
		if f.next < len(succs) {
			s := succs[f.next]
			f.next++
			if s == nil || backedge[[2]*Block{f.b, s}] || state[s] != 0 {
				continue
			}
			push(s)
			continue
		}
		post = append(post, f.b)
		state[f.b] = 2
		stack = stack[:len(stack)-1]
	}
	return post
}

// NaturalLoop returns the body of the natural loop of backedge e (the set
// of blocks that can reach e.From without passing through e.To), including
// the header.
func NaturalLoop(e Edge) map[*Block]bool {
	body := map[*Block]bool{e.To: true}
	stack := []*Block{e.From}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if body[b] {
			continue
		}
		body[b] = true
		for _, p := range b.Preds {
			stack = append(stack, p)
		}
	}
	return body
}
