package ir

import "fmt"

// BlockKind classifies blocks after the sampling framework has run.
type BlockKind uint8

const (
	// KindChecking marks original code: minimally instrumented, carrying
	// only the counter-based checks (and, unless the yieldpoint
	// optimization is on, the yieldpoints).
	KindChecking BlockKind = iota
	// KindDuplicated marks the duplicated code that carries all
	// instrumentation.
	KindDuplicated
	// KindCheckBlock marks a synthesized block holding a single OpCheck
	// terminator (the diamonds of Figure 2).
	KindCheckBlock
)

func (k BlockKind) String() string {
	switch k {
	case KindChecking:
		return "checking"
	case KindDuplicated:
		return "duplicated"
	case KindCheckBlock:
		return "check"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Block is a basic block: a straight-line instruction sequence ending in a
// single terminator. Control-flow structure lives in the terminator's
// Targets; Preds is derived (call Method.RecomputePreds or rely on the
// analyses to refresh it).
type Block struct {
	// ID is unique within the method and dense from 0 in Method.Blocks
	// order after Method.Renumber.
	ID int
	// GID is unique across the whole program and dense from 0, assigned
	// by Program.Seal. The VM uses it to index per-block side tables
	// (e.g. precomputed block cycle costs) without touching shared IR.
	GID int
	// Label is an optional assembler label.
	Label string
	// Instrs holds the block body; the last instruction is the terminator.
	Instrs []Instr
	// Preds are the predecessor blocks (derived).
	Preds []*Block
	// Kind records the framework role of the block (see BlockKind).
	Kind BlockKind
	// Twin links a checking block to its duplicated copy and vice versa
	// (nil before the framework runs, or when the copy was elided by
	// Partial-Duplication).
	Twin *Block
	// Addr and Size are the code address and byte size assigned by the
	// layout pass (used by the i-cache model and the space accounting).
	Addr, Size int

	rpoIndex int // position in reverse postorder; -1 when unreachable
}

// Name returns a printable name for the block.
func (b *Block) Name() string {
	if b.Label != "" {
		return fmt.Sprintf("%s(b%d)", b.Label, b.ID)
	}
	return fmt.Sprintf("b%d", b.ID)
}

// Terminator returns the block's terminator instruction, or nil if the
// block is empty or unterminated (only legal mid-construction).
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := &b.Instrs[len(b.Instrs)-1]
	if !last.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the block's successors (the terminator's targets).
// The returned slice aliases the terminator; treat it as read-only.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	return t.Targets
}

// HasProbe reports whether the block contains any instrumentation probe.
// This is the "instrumented node" predicate of the Partial-Duplication
// algorithm (§3.1).
func (b *Block) HasProbe() bool {
	for i := range b.Instrs {
		if b.Instrs[i].Op == OpProbe || b.Instrs[i].Op == OpCheckedProbe {
			return true
		}
	}
	return false
}

// Append adds an instruction to the block. It panics if the block is
// already terminated: transforms must not silently append dead code.
func (b *Block) Append(in Instr) {
	if t := b.Terminator(); t != nil {
		panic(fmt.Sprintf("ir: append %v to terminated block %s", in.Op, b.Name()))
	}
	b.Instrs = append(b.Instrs, in)
}

// InsertFront inserts instructions at the beginning of the block. The
// slice is edited in place (instrumentation passes call this on every
// method entry, so it must not copy the whole block each time); pointers
// into Instrs obtained before the call are stale afterwards.
func (b *Block) InsertFront(ins ...Instr) {
	k := len(ins)
	b.Instrs = append(b.Instrs, ins...) // grow by k, values overwritten below
	copy(b.Instrs[k:], b.Instrs)
	copy(b.Instrs, ins)
}

// InsertBeforeTerminator inserts instructions just before the terminator.
// It panics if the block is unterminated. Like InsertFront it edits the
// slice in place: re-fetch Terminator() after the call rather than holding
// a pointer across it.
func (b *Block) InsertBeforeTerminator(ins ...Instr) {
	if b.Terminator() == nil {
		panic("ir: InsertBeforeTerminator on unterminated block " + b.Name())
	}
	n := len(b.Instrs) - 1
	term := b.Instrs[n]
	b.Instrs = append(b.Instrs[:n], ins...)
	b.Instrs = append(b.Instrs, term)
}

// ReplaceTarget rewrites every terminator target equal to old with new. It
// returns the number of replacements.
func (b *Block) ReplaceTarget(old, new *Block) int {
	t := b.Terminator()
	if t == nil {
		return 0
	}
	n := 0
	for i, tgt := range t.Targets {
		if tgt == old {
			t.Targets[i] = new
			n++
		}
	}
	return n
}

// StripProbes removes all OpProbe/OpCheckedProbe instructions from the
// block, returning how many were removed.
func (b *Block) StripProbes() int {
	out := b.Instrs[:0]
	removed := 0
	for _, in := range b.Instrs {
		if in.Op == OpProbe || in.Op == OpCheckedProbe {
			removed++
			continue
		}
		out = append(out, in)
	}
	b.Instrs = out
	return removed
}

// StripYields removes all OpYield instructions from the block, returning
// how many were removed. Used by the yieldpoint optimization (§4.5).
func (b *Block) StripYields() int {
	out := b.Instrs[:0]
	removed := 0
	for _, in := range b.Instrs {
		if in.Op == OpYield {
			removed++
			continue
		}
		out = append(out, in)
	}
	b.Instrs = out
	return removed
}
