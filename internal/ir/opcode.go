// Package ir defines the intermediate representation used throughout the
// instrumentation-sampling framework: a register-based, CFG-structured
// bytecode with classes, fields, virtual dispatch and green-thread
// primitives. It plays the role Jalapeño's LIR plays in the paper — the
// level at which instrumentation is inserted and at which the sampling
// framework performs its code duplication.
//
// See DESIGN.md §2 (IR substitution argument) and §3 (system inventory).
package ir

import "fmt"

// Op identifies an IR operation. Every instruction carries exactly one Op.
// Terminator ops (IsTerminator reports true) must appear only as the last
// instruction of a basic block, and every block must end with one.
type Op uint8

// Non-terminator opcodes.
const (
	// OpNop does nothing. Used as a placeholder by transforms.
	OpNop Op = iota

	// OpConst sets Dst to the immediate Imm.
	OpConst
	// OpMove copies register A to Dst.
	OpMove

	// Arithmetic: Dst = A op B. Division and remainder by zero trap.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	// OpNeg sets Dst = -A; OpNot sets Dst = ^A.
	OpNeg
	OpNot

	// Comparisons: Dst = 1 if the relation holds between A and B, else 0.
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE

	// OpNew allocates an instance of Class into Dst.
	OpNew
	// OpGetField loads field Field of the object in A into Dst.
	OpGetField
	// OpPutField stores A into field Field of the object in B.
	OpPutField
	// OpNewArray allocates an array of length A into Dst.
	OpNewArray
	// OpArrayLoad loads element B of the array in A into Dst.
	OpArrayLoad
	// OpArrayStore stores A into element B of the array in Dst's register.
	// (Dst names the array register; it is read, not written.)
	OpArrayStore
	// OpArrayLen sets Dst to the length of the array in A.
	OpArrayLen

	// OpCall invokes Method statically: Dst = Method(Args...).
	OpCall
	// OpCallVirt invokes the method named Name resolved against the
	// dynamic class of the receiver Args[0]: Dst = recv.Name(Args[1:]...).
	OpCallVirt

	// OpSpawn starts a new green thread executing Method(Args...) and sets
	// Dst to a thread handle.
	OpSpawn
	// OpJoin blocks the current thread until the thread whose handle is in
	// A terminates; Dst receives that thread's result.
	OpJoin

	// OpClassOf sets Dst to the dense class ID of the object in A (-1 for
	// arrays and thread handles; traps on null). It is the class test
	// that guarded devirtualization compiles to — the runtime half of
	// profile-guided receiver class prediction (Grove et al., the paper's
	// citation [27]).
	OpClassOf

	// OpIO models an expensive opaque operation (I/O, syscall) costing Imm
	// cycles. It exists so workloads can contain long non-branching
	// stretches, which is what exposes the timer-trigger mis-attribution
	// the paper describes in §2.1.
	OpIO
	// OpPrint appends the value of A to the VM's output log (used by
	// examples and by the semantics-preservation property tests).
	OpPrint

	// OpYield is a thread-scheduling yieldpoint. The baseline compiler
	// places one on every method entry and before every backedge, exactly
	// as Jalapeño does (§4.5).
	OpYield

	// OpProbe executes the instrumentation probe in Probe. Probes are
	// inserted by the instrumenters in package instr and carry their own
	// cycle cost.
	OpProbe
	// OpCheckedProbe is OpProbe guarded by a sample-condition check: the
	// probe body runs only when the trigger fires. This is the
	// No-Duplication variation's guarded instrumentation (Figure 6).
	OpCheckedProbe
)

// Terminator opcodes.
const (
	// OpJump transfers control to Targets[0].
	OpJump Op = iota + 64
	// OpBranch transfers control to Targets[0] if A is non-zero, else to
	// Targets[1].
	OpBranch
	// OpReturn returns A from the current method. If HasValue is false
	// (encoded as Dst == NoReg... see Instr), returns void (value 0).
	OpReturn
	// OpCheck is a counter-based sample check (Figure 3): it polls the
	// trigger; on fire control goes to Targets[0] (duplicated code),
	// otherwise to Targets[1] (checking code). Inserted by the framework
	// on method entries and backedges.
	OpCheck
	// OpLoopCheck is the counted-backedge extension (§2): it decrements
	// the frame's iteration budget; while the budget is positive control
	// stays in duplicated code via Targets[0], afterwards it returns to
	// checking code via Targets[1].
	OpLoopCheck
)

// NumOpcodes is the size of the dense opcode index space (Op is a uint8).
// Side tables indexed by Op — such as the VM's precomputed per-opcode
// cycle-cost table — use this as their length so every representable
// opcode, including gaps and future additions, has a slot.
const NumOpcodes = 256

// IsTerminator reports whether op may only appear as a block terminator.
func (op Op) IsTerminator() bool { return op >= OpJump }

var opNames = map[Op]string{
	OpNop:          "nop",
	OpConst:        "const",
	OpMove:         "move",
	OpAdd:          "add",
	OpSub:          "sub",
	OpMul:          "mul",
	OpDiv:          "div",
	OpRem:          "rem",
	OpAnd:          "and",
	OpOr:           "or",
	OpXor:          "xor",
	OpShl:          "shl",
	OpShr:          "shr",
	OpNeg:          "neg",
	OpNot:          "not",
	OpCmpEQ:        "cmpeq",
	OpCmpNE:        "cmpne",
	OpCmpLT:        "cmplt",
	OpCmpLE:        "cmple",
	OpCmpGT:        "cmpgt",
	OpCmpGE:        "cmpge",
	OpNew:          "new",
	OpGetField:     "getfield",
	OpPutField:     "putfield",
	OpNewArray:     "newarray",
	OpArrayLoad:    "aload",
	OpArrayStore:   "astore",
	OpArrayLen:     "alen",
	OpCall:         "call",
	OpCallVirt:     "callvirt",
	OpSpawn:        "spawn",
	OpJoin:         "join",
	OpClassOf:      "classof",
	OpIO:           "io",
	OpPrint:        "print",
	OpYield:        "yield",
	OpProbe:        "probe",
	OpCheckedProbe: "checkedprobe",
	OpJump:         "jmp",
	OpBranch:       "br",
	OpReturn:       "ret",
	OpCheck:        "check",
	OpLoopCheck:    "loopcheck",
}

// String returns the assembler mnemonic for op.
func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// OpForName returns the opcode whose mnemonic is s, or OpNop, false.
func OpForName(s string) (Op, bool) {
	for op, name := range opNames {
		if name == s {
			return op, true
		}
	}
	return OpNop, false
}
