package ir

import (
	"strings"
	"testing"
)

// diamond builds:   entry -> (left | right) -> exit
func diamond() (*Method, *Block, *Block, *Block, *Block) {
	b := NewFunc("diamond", 1)
	entry := b.EntryBlock()
	left := b.Block("left")
	right := b.Block("right")
	exit := b.Block("exit")
	c := b.At(entry)
	cond := c.Bin(OpCmpGT, 0, c.Const(5))
	c.Branch(cond, left, right)
	lc := b.At(left)
	lc.Jump(exit)
	rc := b.At(right)
	rc.Jump(exit)
	ec := b.At(exit)
	ec.Return(0)
	b.M.Renumber()
	b.M.RecomputePreds()
	return b.M, entry, left, right, exit
}

// loopMethod builds: entry -> head; head -> (body | exit); body -> head.
func loopMethod() (*Method, *Block, *Block, *Block) {
	b := NewFunc("loop", 1)
	entry := b.EntryBlock()
	c := b.At(entry)
	n := c.Const(10)
	lp := c.CountedLoop(n, "l")
	lp.Body.Jump(lp.Latch)
	lp.After.Return(lp.I)
	b.M.Renumber()
	b.M.RecomputePreds()
	return b.M, entry, lp.Body.Blk(), lp.After.Blk()
}

func TestOpcodeNames(t *testing.T) {
	for op := OpNop; op <= OpCheckedProbe; op++ {
		s := op.String()
		if strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no name", op)
		}
		back, ok := OpForName(s)
		if !ok || back != op {
			t.Errorf("OpForName(%q) = %v, %v", s, back, ok)
		}
	}
	for _, op := range []Op{OpJump, OpBranch, OpReturn, OpCheck, OpLoopCheck} {
		if !op.IsTerminator() {
			t.Errorf("%s should be a terminator", op)
		}
	}
	if OpAdd.IsTerminator() {
		t.Error("add is not a terminator")
	}
}

func TestReversePostorder(t *testing.T) {
	m, entry, _, _, exit := diamond()
	rpo := m.ReversePostorder()
	if len(rpo) != 4 {
		t.Fatalf("rpo length %d, want 4", len(rpo))
	}
	if rpo[0] != entry {
		t.Errorf("rpo[0] = %s, want entry", rpo[0].Name())
	}
	if rpo[3] != exit {
		t.Errorf("rpo[3] = %s, want exit", rpo[3].Name())
	}
}

func TestDominators(t *testing.T) {
	m, entry, left, right, exit := diamond()
	dom := m.ComputeDominators()
	if dom.Idom(entry) != entry {
		t.Error("entry must idom itself")
	}
	if dom.Idom(left) != entry || dom.Idom(right) != entry {
		t.Error("branch arms must be idom'd by entry")
	}
	if dom.Idom(exit) != entry {
		t.Errorf("exit idom = %s, want entry", dom.Idom(exit).Name())
	}
	if !dom.Dominates(entry, exit) {
		t.Error("entry dominates exit")
	}
	if dom.Dominates(left, exit) {
		t.Error("left must not dominate exit")
	}
	if !dom.Dominates(left, left) {
		t.Error("dominates is reflexive")
	}
}

func TestBackedges(t *testing.T) {
	m, _, _, _ := loopMethod()
	be := m.Backedges()
	if len(be) != 1 {
		t.Fatalf("backedges = %d, want 1", len(be))
	}
	// The latch jumps to the head; the head must dominate the latch.
	dom := m.ComputeDominators()
	if !dom.Dominates(be[0].To, be[0].From) {
		t.Error("backedge target must dominate source")
	}
	heads := m.LoopHeaders()
	if !heads[be[0].To] || len(heads) != 1 {
		t.Errorf("loop headers: %v", heads)
	}
	body := NaturalLoop(be[0])
	if !body[be[0].To] || !body[be[0].From] {
		t.Error("natural loop must contain header and latch")
	}
	if len(body) < 3 {
		t.Errorf("natural loop of the counted loop should span head/body/latch, got %d blocks", len(body))
	}
}

func TestBackedgesIrreducible(t *testing.T) {
	// entry -> a | b; a -> b; b -> a (irreducible cycle: neither a nor b
	// dominates the other). Both cycle edges must be reported.
	b := NewFunc("irr", 1)
	entry := b.EntryBlock()
	aB := b.Block("a")
	bB := b.Block("b")
	exit := b.Block("exit")
	c := b.At(entry)
	cond := c.Bin(OpCmpGT, 0, c.Const(0))
	c.Branch(cond, aB, bB)
	ca := b.At(aB)
	cond2 := ca.Bin(OpCmpGT, 0, ca.Const(100))
	ca.Branch(cond2, exit, bB)
	cb := b.At(bB)
	cond3 := cb.Bin(OpCmpGT, 0, cb.Const(200))
	cb.Branch(cond3, exit, aB)
	b.At(exit).Return(0)
	b.M.Renumber()
	b.M.RecomputePreds()
	be := b.M.Backedges()
	if len(be) == 0 {
		t.Fatal("irreducible cycle produced no backedges; checks would be missing")
	}
}

func TestLiveness(t *testing.T) {
	m, entry, _, _, exit := diamond()
	lv := m.ComputeLiveness()
	// Parameter 0 is used in entry (the comparison) and again in exit
	// (the return), so it is live into every block.
	for _, b := range []*Block{entry, exit} {
		if !lv.LiveInAt(b, 0) {
			t.Errorf("r0 should be live into %s", b.Name())
		}
	}
	// The condition register is consumed by the branch: dead into exit.
	condReg := entry.Instrs[len(entry.Instrs)-1].A
	if lv.LiveInAt(exit, condReg) {
		t.Error("branch condition must be dead after the branch")
	}
}

func TestUsesDefs(t *testing.T) {
	in := Instr{Op: OpArrayStore, Dst: 1, A: 2, B: 3}
	uses := in.Uses(nil)
	if len(uses) != 3 {
		t.Fatalf("astore uses %v, want [arr val idx]", uses)
	}
	if in.Def() != NoReg {
		t.Error("astore defines no register")
	}
	call := Instr{Op: OpCall, Dst: 4, Args: []Reg{5, 6}}
	if call.Def() != 4 {
		t.Error("call defines Dst")
	}
	if got := call.Uses(nil); len(got) != 2 {
		t.Errorf("call uses %v", got)
	}
	probe := Instr{Op: OpProbe, Probe: &Probe{Kind: ProbeValue, Reg: 7}}
	if got := probe.Uses(nil); len(got) != 1 || got[0] != 7 {
		t.Errorf("value probe uses %v, want [7]", got)
	}
}

func TestCloneBlocksRemapsInternalTargets(t *testing.T) {
	m, entry, left, right, exit := diamond()
	// Clone only {entry, left}: the branch edge to left remaps to the
	// copy, the edge to right stays pointing at the original.
	twins := CloneBlocks(m, []*Block{entry, left}, KindDuplicated)
	ct := twins[entry].Terminator()
	if ct.Targets[0] != twins[left] {
		t.Error("internal target must remap to the copy")
	}
	if ct.Targets[1] != right {
		t.Error("external target must stay at the original")
	}
	if twins[left].Terminator().Targets[0] != exit {
		t.Error("copy of left must still jump to the original exit")
	}
	if entry.Twin != twins[entry] || twins[entry].Twin != entry {
		t.Error("twin links must be bilateral")
	}
}

func TestCloneMethodIndependence(t *testing.T) {
	m, _, _, _ := loopMethod()
	n := CloneMethod(m)
	if n.NumInstrs() != m.NumInstrs() || len(n.Blocks) != len(m.Blocks) {
		t.Fatal("clone differs in size")
	}
	// Mutating the clone must not touch the original.
	n.Blocks[0].Instrs[0].Imm = 999
	if m.Blocks[0].Instrs[0].Imm == 999 {
		t.Error("clone shares instruction storage with the original")
	}
	for _, b := range n.Blocks {
		for _, s := range b.Succs() {
			found := false
			for _, nb := range n.Blocks {
				if s == nb {
					found = true
				}
			}
			if !found {
				t.Fatal("clone has an edge into the original method")
			}
		}
	}
}

func TestCloneProgramIndependence(t *testing.T) {
	p := RandomProgram(7, RandomProgramConfig{})
	q := CloneProgram(p)
	if q.NumMethods() != p.NumMethods() || len(q.Classes) != len(p.Classes) {
		t.Fatal("clone differs in shape")
	}
	// No method pointer may be shared.
	orig := make(map[*Method]bool)
	for _, m := range p.Methods() {
		orig[m] = true
	}
	for _, m := range q.Methods() {
		if orig[m] {
			t.Fatal("clone shares a method with the original")
		}
		for _, b := range m.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Method != nil && orig[b.Instrs[i].Method] {
					t.Fatal("clone calls into the original program")
				}
			}
		}
	}
	if err := q.Verify(VerifyBase); err != nil {
		t.Fatalf("cloned program invalid: %v", err)
	}
}

func TestSealFieldLayout(t *testing.T) {
	base := &Class{Name: "Base", FieldNames: []string{"a", "b"}}
	der := &Class{Name: "Derived", Super: base, FieldNames: []string{"c"}}
	p := &Program{Name: "t", Classes: []*Class{der, base}} // child first on purpose
	mb := NewFunc("main", 0)
	mb.At(mb.EntryBlock()).ReturnVoid()
	p.Funcs = []*Method{mb.M}
	p.Main = mb.M
	p.Seal()
	if base.NumFields() != 2 || der.NumFields() != 3 {
		t.Fatalf("field counts: base %d, derived %d", base.NumFields(), der.NumFields())
	}
	if idx, ok := der.FieldIndex("a"); !ok || idx != 0 {
		t.Errorf("Derived.a slot = %d, %v", idx, ok)
	}
	if idx, ok := der.FieldIndex("c"); !ok || idx != 2 {
		t.Errorf("Derived.c slot = %d, %v", idx, ok)
	}
	if name := der.FieldName(2); name != "c" {
		t.Errorf("FieldName(2) = %q", name)
	}
	if !der.IsSubclassOf(base) || base.IsSubclassOf(der) {
		t.Error("subclass relation wrong")
	}
	// Field IDs must be unique program-wide.
	seen := map[int]bool{}
	for _, c := range p.Classes {
		for s := 0; s < c.NumFields(); s++ {
			id := p.FieldID(c, s)
			if seen[id] {
				t.Errorf("field ID %d reused", id)
			}
			seen[id] = true
		}
	}
}

func TestSealInheritanceCycle(t *testing.T) {
	a := &Class{Name: "A"}
	b := &Class{Name: "B", Super: a}
	a.Super = b
	mb := NewFunc("main", 0)
	mb.At(mb.EntryBlock()).ReturnVoid()
	p := &Program{Name: "t", Classes: []*Class{a, b}, Funcs: []*Method{mb.M}, Main: mb.M}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on inheritance cycle")
		}
	}()
	p.Seal()
}

func TestVerifyCatchesBrokenIR(t *testing.T) {
	build := func(f func(*Builder)) error {
		b := NewFunc("main", 0)
		f(b)
		p := &Program{Name: "t", Funcs: []*Method{b.M}, Main: b.M}
		p.Seal()
		return p.Verify(VerifyBase)
	}
	if err := build(func(b *Builder) {
		b.At(b.EntryBlock()).ReturnVoid()
	}); err != nil {
		t.Errorf("valid method rejected: %v", err)
	}
	// Unterminated block.
	if err := build(func(b *Builder) {
		b.EntryBlock().Instrs = []Instr{{Op: OpConst, Dst: 0, Imm: 1}}
		b.M.NumRegs = 1
	}); err == nil {
		t.Error("unterminated block accepted")
	}
	// Register out of range.
	if err := build(func(b *Builder) {
		c := b.At(b.EntryBlock())
		c.Return(99)
	}); err == nil {
		t.Error("out-of-range register accepted")
	}
	// Terminator mid-block.
	if err := build(func(b *Builder) {
		e := b.EntryBlock()
		e.Instrs = []Instr{
			{Op: OpReturn, A: NoReg},
			{Op: OpReturn, A: NoReg},
		}
	}); err == nil {
		t.Error("mid-block terminator accepted")
	}
	// Target outside method.
	if err := build(func(b *Builder) {
		other := &Block{ID: 99, Instrs: []Instr{{Op: OpReturn, A: NoReg}}}
		b.EntryBlock().Instrs = []Instr{{Op: OpJump, Targets: []*Block{other}}}
	}); err == nil {
		t.Error("foreign target accepted")
	}
}

func TestRemoveUnreachable(t *testing.T) {
	m, _, _, _, _ := diamond()
	dead := m.NewBlock("dead")
	dead.Append(Instr{Op: OpReturn, A: NoReg})
	if n := m.RemoveUnreachable(); n != 1 {
		t.Fatalf("removed %d, want 1", n)
	}
	if len(m.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(m.Blocks))
	}
}

func TestAppendPanicsAfterTerminator(t *testing.T) {
	b := NewFunc("t", 0)
	c := b.At(b.EntryBlock())
	c.ReturnVoid()
	defer func() {
		if recover() == nil {
			t.Error("expected panic appending past terminator")
		}
	}()
	b.EntryBlock().Append(Instr{Op: OpNop})
}

func TestInsertBeforeTerminator(t *testing.T) {
	b := NewFunc("t", 0)
	c := b.At(b.EntryBlock())
	r := c.Const(1)
	c.Return(r)
	e := b.EntryBlock()
	e.InsertBeforeTerminator(Instr{Op: OpNop}, Instr{Op: OpNop})
	if len(e.Instrs) != 4 || e.Instrs[1].Op != OpNop || e.Instrs[3].Op != OpReturn {
		t.Fatalf("unexpected layout: %v", e.Instrs)
	}
}

func TestStripProbesAndYields(t *testing.T) {
	b := NewFunc("t", 0)
	e := b.EntryBlock()
	e.Append(Instr{Op: OpYield})
	e.Append(Instr{Op: OpProbe, Probe: &Probe{}})
	e.Append(Instr{Op: OpCheckedProbe, Probe: &Probe{}})
	e.Append(Instr{Op: OpReturn, A: NoReg})
	if !e.HasProbe() {
		t.Error("HasProbe should see probes")
	}
	if n := e.StripProbes(); n != 2 {
		t.Errorf("stripped %d probes, want 2", n)
	}
	if n := e.StripYields(); n != 1 {
		t.Errorf("stripped %d yields, want 1", n)
	}
	if len(e.Instrs) != 1 || e.HasProbe() {
		t.Errorf("remaining: %v", e.Instrs)
	}
}

func TestDAGPostorder(t *testing.T) {
	m, _, _, _ := loopMethod()
	be := m.Backedges()
	bset := map[[2]*Block]bool{}
	for _, e := range be {
		bset[[2]*Block{e.From, e.To}] = true
	}
	post := DAGPostorder(m, bset)
	if len(post) != len(m.Blocks) {
		t.Fatalf("postorder covers %d of %d blocks", len(post), len(m.Blocks))
	}
	// Reverse-topological: every non-backedge edge goes from a later
	// position to an earlier one.
	pos := map[*Block]int{}
	for i, b := range post {
		pos[b] = i
	}
	for _, e := range m.Edges() {
		if bset[[2]*Block{e.From, e.To}] {
			continue
		}
		if pos[e.From] <= pos[e.To] {
			t.Errorf("edge %s->%s violates reverse-topological order", e.From.Name(), e.To.Name())
		}
	}
}

func TestPrintRoundsmoke(t *testing.T) {
	p := RandomProgram(3, RandomProgramConfig{})
	var sb strings.Builder
	FprintProgram(&sb, p)
	out := sb.String()
	if !strings.Contains(out, "method main") {
		t.Error("disassembly missing main")
	}
	if !strings.Contains(out, "ret") {
		t.Error("disassembly missing terminators")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpConst, Dst: 1, Imm: 42}, "const r1, 42"},
		{Instr{Op: OpAdd, Dst: 1, A: 2, B: 3}, "add r1, r2, r3"},
		{Instr{Op: OpReturn, A: NoReg}, "ret"},
		{Instr{Op: OpReturn, A: 4}, "ret r4"},
		{Instr{Op: OpYield}, "yield"},
		{Instr{Op: OpIO, Imm: 100}, "io 100"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
