package ir

import "fmt"

// Builder provides a fluent API for constructing methods. It manages
// register allocation and block creation so benchmark programs and tests
// read like straight-line pseudocode.
//
//	f := ir.NewFunc("sum", 1)
//	b := f.At(f.EntryBlock())
//	acc := b.Const(0)
//	...
type Builder struct {
	M    *Method
	next Reg
}

// NewFunc creates a free function with the given parameter count and
// returns a builder for it. Parameter registers are 0..numParams-1.
func NewFunc(name string, numParams int) *Builder {
	m := &Method{Name: name, NumParams: numParams, NumRegs: numParams}
	m.NewBlock("entry")
	return &Builder{M: m, next: Reg(numParams)}
}

// NewMethod creates a virtual method on class c. numParams counts the
// receiver, which arrives in register 0.
func NewMethod(c *Class, name string, numParams int) *Builder {
	b := NewFunc(name, numParams)
	c.AddMethod(b.M)
	return b
}

// FreshReg allocates a new virtual register.
func (bd *Builder) FreshReg() Reg {
	r := bd.next
	bd.next++
	if int(bd.next) > bd.M.NumRegs {
		bd.M.NumRegs = int(bd.next)
	}
	return r
}

// EntryBlock returns the method's entry block.
func (bd *Builder) EntryBlock() *Block { return bd.M.Entry() }

// Block creates a new labelled block.
func (bd *Builder) Block(label string) *Block { return bd.M.NewBlock(label) }

// At returns a cursor appending to block b.
func (bd *Builder) At(b *Block) *Cursor { return &Cursor{bd: bd, b: b} }

// Cursor appends instructions to a specific block.
type Cursor struct {
	bd *Builder
	b  *Block
}

// Blk returns the cursor's block.
func (c *Cursor) Blk() *Block { return c.b }

// Fresh allocates a new register via the underlying builder.
func (c *Cursor) Fresh() Reg { return c.bd.FreshReg() }

// Const emits Dst = imm into a fresh register.
func (c *Cursor) Const(imm int64) Reg {
	r := c.bd.FreshReg()
	c.b.Append(Instr{Op: OpConst, Dst: r, Imm: imm})
	return r
}

// ConstTo emits dst = imm.
func (c *Cursor) ConstTo(dst Reg, imm int64) {
	c.b.Append(Instr{Op: OpConst, Dst: dst, Imm: imm})
}

// Move emits dst = src.
func (c *Cursor) Move(dst, src Reg) {
	c.b.Append(Instr{Op: OpMove, Dst: dst, A: src})
}

// Bin emits a fresh register = a op b for an arithmetic/comparison op.
func (c *Cursor) Bin(op Op, a, b Reg) Reg {
	r := c.bd.FreshReg()
	c.b.Append(Instr{Op: op, Dst: r, A: a, B: b})
	return r
}

// BinTo emits dst = a op b.
func (c *Cursor) BinTo(op Op, dst, a, b Reg) {
	c.b.Append(Instr{Op: op, Dst: dst, A: a, B: b})
}

// Un emits a fresh register = op a (OpNeg, OpNot, OpArrayLen).
func (c *Cursor) Un(op Op, a Reg) Reg {
	r := c.bd.FreshReg()
	c.b.Append(Instr{Op: op, Dst: r, A: a})
	return r
}

// New emits allocation of class cl into a fresh register.
func (c *Cursor) New(cl *Class) Reg {
	r := c.bd.FreshReg()
	c.b.Append(Instr{Op: OpNew, Dst: r, Class: cl})
	return r
}

// GetField emits a load of cl.field from the object in obj.
func (c *Cursor) GetField(obj Reg, cl *Class, field string) Reg {
	idx, ok := cl.FieldIndex(field)
	if !ok {
		panic(fmt.Sprintf("ir: class %s has no field %s", cl.Name, field))
	}
	r := c.bd.FreshReg()
	c.b.Append(Instr{Op: OpGetField, Dst: r, A: obj, Class: cl, Imm: int64(idx)})
	return r
}

// PutField emits a store of val into cl.field of the object in obj.
func (c *Cursor) PutField(obj Reg, cl *Class, field string, val Reg) {
	idx, ok := cl.FieldIndex(field)
	if !ok {
		panic(fmt.Sprintf("ir: class %s has no field %s", cl.Name, field))
	}
	c.b.Append(Instr{Op: OpPutField, A: val, B: obj, Class: cl, Imm: int64(idx)})
}

// NewArray emits allocation of an array of length in reg ln.
func (c *Cursor) NewArray(ln Reg) Reg {
	r := c.bd.FreshReg()
	c.b.Append(Instr{Op: OpNewArray, Dst: r, A: ln})
	return r
}

// ALoad emits a fresh register = arr[idx].
func (c *Cursor) ALoad(arr, idx Reg) Reg {
	r := c.bd.FreshReg()
	c.b.Append(Instr{Op: OpArrayLoad, Dst: r, A: arr, B: idx})
	return r
}

// AStore emits arr[idx] = val.
func (c *Cursor) AStore(arr, idx, val Reg) {
	c.b.Append(Instr{Op: OpArrayStore, Dst: arr, A: val, B: idx})
}

// Call emits a static call to m.
func (c *Cursor) Call(m *Method, args ...Reg) Reg {
	r := c.bd.FreshReg()
	c.b.Append(Instr{Op: OpCall, Dst: r, Method: m, Args: append([]Reg(nil), args...)})
	return r
}

// CallVirt emits a virtual call: recv.name(args...).
func (c *Cursor) CallVirt(name string, recv Reg, args ...Reg) Reg {
	r := c.bd.FreshReg()
	all := append([]Reg{recv}, args...)
	c.b.Append(Instr{Op: OpCallVirt, Dst: r, Name: name, Args: all})
	return r
}

// Spawn emits a thread spawn of m(args...), returning the handle register.
func (c *Cursor) Spawn(m *Method, args ...Reg) Reg {
	r := c.bd.FreshReg()
	c.b.Append(Instr{Op: OpSpawn, Dst: r, Method: m, Args: append([]Reg(nil), args...)})
	return r
}

// Join emits a join on the thread handle in h, yielding its result.
func (c *Cursor) Join(h Reg) Reg {
	r := c.bd.FreshReg()
	c.b.Append(Instr{Op: OpJoin, Dst: r, A: h})
	return r
}

// IO emits a simulated expensive operation of the given cycle cost.
func (c *Cursor) IO(cycles int64) {
	c.b.Append(Instr{Op: OpIO, Imm: cycles})
}

// Print emits an output of register a.
func (c *Cursor) Print(a Reg) {
	c.b.Append(Instr{Op: OpPrint, A: a})
}

// Jump terminates the block with a jump to t and moves the cursor to t.
func (c *Cursor) Jump(t *Block) *Cursor {
	c.b.Append(Instr{Op: OpJump, Targets: []*Block{t}})
	return &Cursor{bd: c.bd, b: t}
}

// Branch terminates the block with a conditional branch.
func (c *Cursor) Branch(cond Reg, then, els *Block) {
	c.b.Append(Instr{Op: OpBranch, A: cond, Targets: []*Block{then, els}})
}

// Return terminates the block returning r.
func (c *Cursor) Return(r Reg) {
	c.b.Append(Instr{Op: OpReturn, A: r})
}

// ReturnVoid terminates the block returning 0.
func (c *Cursor) ReturnVoid() {
	c.b.Append(Instr{Op: OpReturn, A: NoReg})
}

// Loop builds a counted loop `for i = 0; i < n; i++ { body }` and returns
// (loop-variable register, body cursor, after-loop cursor). The body
// cursor's block must eventually be terminated by calling its Continue
// function, which jumps to the loop latch.
//
// For flexibility the helper returns the latch block so multi-block bodies
// can branch to it from anywhere.
type LoopParts struct {
	I     Reg     // loop variable
	Body  *Cursor // start of body
	Latch *Block  // jump here to continue the loop
	After *Cursor // code after the loop
}

// CountedLoop emits the skeleton of `for i = 0; i < n; i++`.
func (c *Cursor) CountedLoop(n Reg, name string) LoopParts {
	bd := c.bd
	i := bd.FreshReg()
	c.ConstTo(i, 0)
	head := bd.Block(name + "_head")
	body := bd.Block(name + "_body")
	latch := bd.Block(name + "_latch")
	after := bd.Block(name + "_after")
	hc := c.Jump(head)
	cond := hc.Bin(OpCmpLT, i, n)
	hc.Branch(cond, body, after)
	lc := bd.At(latch)
	one := lc.Const(1)
	lc.BinTo(OpAdd, i, i, one)
	lc.Jump(head)
	return LoopParts{I: i, Body: bd.At(body), Latch: latch, After: bd.At(after)}
}
