package ir

// Uses appends the registers read by the instruction to dst and returns
// it. OpArrayStore reads its Dst operand (the array register).
func (in *Instr) Uses(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != NoReg {
			dst = append(dst, r)
		}
	}
	switch in.Op {
	case OpNop, OpConst, OpNew, OpYield, OpProbe, OpCheckedProbe, OpJump,
		OpCheck, OpLoopCheck, OpIO:
		if in.Op == OpProbe || in.Op == OpCheckedProbe {
			if in.Probe != nil && (in.Probe.Kind == ProbeValue || in.Probe.Kind == ProbeReceiver) {
				add(in.Probe.Reg)
			}
		}
	case OpMove, OpNeg, OpNot, OpArrayLen, OpNewArray, OpGetField, OpJoin,
		OpPrint, OpBranch, OpReturn, OpClassOf:
		add(in.A)
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE, OpArrayLoad:
		add(in.A)
		add(in.B)
	case OpPutField:
		add(in.A) // value
		add(in.B) // object
	case OpArrayStore:
		add(in.Dst) // array (read, not written)
		add(in.A)   // value
		add(in.B)   // index
	case OpCall, OpCallVirt, OpSpawn:
		for _, r := range in.Args {
			add(r)
		}
	}
	return dst
}

// Def returns the register written by the instruction, or NoReg.
func (in *Instr) Def() Reg {
	switch in.Op {
	case OpConst, OpMove, OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr,
		OpXor, OpShl, OpShr, OpNeg, OpNot, OpCmpEQ, OpCmpNE, OpCmpLT,
		OpCmpLE, OpCmpGT, OpCmpGE, OpNew, OpGetField, OpNewArray,
		OpArrayLoad, OpArrayLen, OpCall, OpCallVirt, OpSpawn, OpJoin,
		OpClassOf:
		return in.Dst
	}
	return NoReg
}

// Liveness holds per-block live-in/live-out register sets as bitsets.
// It is the representative "late compiler phase" that runs after code
// duplication, so its cost contributes to the compile-time increase the
// paper reports in Table 2.
type Liveness struct {
	NumRegs int
	LiveIn  map[*Block][]uint64
	LiveOut map[*Block][]uint64
}

// ComputeLiveness runs an iterative backward dataflow over the method.
func (m *Method) ComputeLiveness() *Liveness {
	words := (m.NumRegs + 63) / 64
	lv := &Liveness{
		NumRegs: m.NumRegs,
		LiveIn:  make(map[*Block][]uint64, len(m.Blocks)),
		LiveOut: make(map[*Block][]uint64, len(m.Blocks)),
	}
	gen := make(map[*Block][]uint64, len(m.Blocks))
	kill := make(map[*Block][]uint64, len(m.Blocks))
	var scratch []Reg
	for _, b := range m.Blocks {
		g := make([]uint64, words)
		k := make([]uint64, words)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			scratch = in.Uses(scratch[:0])
			for _, r := range scratch {
				if !bitGet(k, r) {
					bitSet(g, r)
				}
			}
			if d := in.Def(); d != NoReg {
				bitSet(k, d)
			}
		}
		gen[b], kill[b] = g, k
		lv.LiveIn[b] = make([]uint64, words)
		lv.LiveOut[b] = make([]uint64, words)
	}
	for changed := true; changed; {
		changed = false
		for i := len(m.Blocks) - 1; i >= 0; i-- {
			b := m.Blocks[i]
			out := lv.LiveOut[b]
			for w := range out {
				out[w] = 0
			}
			for _, s := range b.Succs() {
				if s == nil {
					continue
				}
				sin := lv.LiveIn[s]
				for w := range out {
					out[w] |= sin[w]
				}
			}
			in := lv.LiveIn[b]
			for w := range in {
				nw := gen[b][w] | (out[w] &^ kill[b][w])
				if nw != in[w] {
					in[w] = nw
					changed = true
				}
			}
		}
	}
	return lv
}

// LiveInAt reports whether register r is live at entry to block b.
func (lv *Liveness) LiveInAt(b *Block, r Reg) bool { return bitGet(lv.LiveIn[b], r) }

func bitSet(s []uint64, r Reg) {
	if int(r) >= 0 && int(r) < len(s)*64 {
		s[r/64] |= 1 << (uint(r) % 64)
	}
}

func bitGet(s []uint64, r Reg) bool {
	if int(r) < 0 || int(r) >= len(s)*64 {
		return false
	}
	return s[r/64]&(1<<(uint(r)%64)) != 0
}
