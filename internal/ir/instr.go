package ir

import (
	"fmt"
	"strings"
)

// Reg is a virtual register index within a method frame. Registers are
// untyped 64-bit slots that may hold either an integer or a reference;
// the verifier does not enforce a type discipline (the interpreter traps
// on misuse, which the test suite exercises).
type Reg int32

// NoReg marks an unused register operand (e.g. a void return).
const NoReg Reg = -1

// ProbeKind discriminates the runtime behaviour of an instrumentation
// probe. The set is deliberately small: the paper's point is that *any*
// event-counting instrumentation works unmodified, so probes reduce to a
// few primitive shapes that the instrumentation runtimes interpret.
type ProbeKind uint8

const (
	// ProbeEvent counts an occurrence of event ID.
	ProbeEvent ProbeKind = iota
	// ProbeCallEdge records a call edge at a method entry: the handler
	// walks the VM call stack to find the caller, callee and call site,
	// exactly as the paper's call-edge instrumentation does (§4.2).
	ProbeCallEdge
	// ProbeValue records the runtime value of register Reg under event ID.
	ProbeValue
	// ProbePathInit zeroes the frame's path register (Ball–Larus).
	ProbePathInit
	// ProbePathInc adds Imm to the frame's path register (Ball–Larus).
	ProbePathInc
	// ProbePathRecord counts the path (ID = method path-space base, path
	// number = frame path register).
	ProbePathRecord
	// ProbeReceiver records the dynamic class of the object in register
	// Reg under event ID (the call-site ID): the receiver-class profile
	// that drives profile-guided devirtualization (Grove et al. [27]).
	// The observed Value is the dense class ID, -1 for non-class objects,
	// -2 for null.
	ProbeReceiver
)

func (k ProbeKind) String() string {
	switch k {
	case ProbeEvent:
		return "event"
	case ProbeCallEdge:
		return "calledge"
	case ProbeValue:
		return "value"
	case ProbePathInit:
		return "pathinit"
	case ProbePathInc:
		return "pathinc"
	case ProbePathRecord:
		return "pathrecord"
	case ProbeReceiver:
		return "receiver"
	default:
		return fmt.Sprintf("probekind(%d)", uint8(k))
	}
}

// Probe is the payload of an OpProbe / OpCheckedProbe instruction. A probe
// belongs to one instrumentation (identified by Owner, an index into the
// VM's registered instrumentation runtimes), and carries its own cycle
// cost so the cost model charges instrumentations by the instruction
// sequences they would expand to.
type Probe struct {
	// Owner is the index of the instrumentation that inserted this probe,
	// matching the order instrumentations were registered with the VM.
	Owner int
	// Kind selects the runtime behaviour.
	Kind ProbeKind
	// ID identifies the profiled event (field ID, call-site ID, edge ID,
	// path-space base — meaning is per Kind/Owner).
	ID int
	// Reg is the observed register for ProbeValue.
	Reg Reg
	// Imm is the increment for ProbePathInc.
	Imm int64
	// Cost is the probe's cycle cost when executed.
	Cost uint32
}

func (p *Probe) String() string {
	return fmt.Sprintf("%s owner=%d id=%d reg=%d imm=%d cost=%d",
		p.Kind, p.Owner, p.ID, p.Reg, p.Imm, p.Cost)
}

// Instr is a single IR instruction. Operand meaning is per-Op (see the
// opcode documentation). Instructions are values inside Block.Instrs;
// transforms copy them freely.
// Field order is interpreter-conscious: everything the VM touches while
// executing straight-line code (Op through Imm, 24 bytes) leads the
// struct, and the whole struct is 112 bytes — both pinned by
// TestInstrSize. The field slot of OpGetField/OpPutField is packed into
// Imm (those ops have no other immediate; see FieldSlot) rather than
// spending a dedicated 8-byte operand on two opcodes.
type Instr struct {
	Op Op
	// BackedgeMask marks which terminator targets are backedges (bit i set
	// means the edge to Targets[i] is a backedge). Set by the
	// yieldpoint-insertion pass; the VM uses it to count backedge
	// traversals, the bound side of Property 1.
	BackedgeMask uint8
	Dst          Reg
	A            Reg
	B            Reg
	Imm          int64
	// Targets are the successor blocks of a terminator.
	Targets []*Block
	// Class is the class operand of OpNew, and the declaring class used to
	// resolve the field slot for OpGetField/OpPutField.
	Class *Class
	// Method is the callee of OpCall and OpSpawn.
	Method *Method
	// Name is the virtual method name for OpCallVirt.
	Name string
	// Args are the arguments of OpCall, OpCallVirt and OpSpawn. For
	// OpCallVirt, Args[0] is the receiver.
	Args []Reg
	// Probe is the payload of OpProbe / OpCheckedProbe.
	Probe *Probe
}

// IsTerminator reports whether the instruction terminates a block.
func (in *Instr) IsTerminator() bool { return in.Op.IsTerminator() }

// FieldSlot returns the flattened field slot index of an OpGetField or
// OpPutField, which rides in Imm. Builders that construct field ops by
// hand must store the slot in Imm.
func (in *Instr) FieldSlot() int { return int(in.Imm) }

// Clone returns a deep copy of the instruction. Targets are copied
// shallowly (the caller remaps them); Args and Probe are duplicated.
func (in *Instr) Clone() Instr {
	out := *in
	if in.Args != nil {
		out.Args = append([]Reg(nil), in.Args...)
	}
	if in.Targets != nil {
		out.Targets = append([]*Block(nil), in.Targets...)
	}
	if in.Probe != nil {
		p := *in.Probe
		out.Probe = &p
	}
	return out
}

// String renders the instruction in assembler syntax.
func (in *Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	switch in.Op {
	case OpNop, OpYield:
	case OpConst:
		fmt.Fprintf(&b, " r%d, %d", in.Dst, in.Imm)
	case OpMove, OpNeg, OpNot, OpArrayLen, OpJoin, OpClassOf:
		fmt.Fprintf(&b, " r%d, r%d", in.Dst, in.A)
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE, OpArrayLoad:
		fmt.Fprintf(&b, " r%d, r%d, r%d", in.Dst, in.A, in.B)
	case OpNew:
		fmt.Fprintf(&b, " r%d, %s", in.Dst, in.Class.Name)
	case OpGetField:
		fmt.Fprintf(&b, " r%d, r%d, %s", in.Dst, in.A, in.fieldName())
	case OpPutField:
		fmt.Fprintf(&b, " r%d, %s, r%d", in.B, in.fieldName(), in.A)
	case OpNewArray:
		fmt.Fprintf(&b, " r%d, r%d", in.Dst, in.A)
	case OpArrayStore:
		fmt.Fprintf(&b, " r%d, r%d, r%d", in.Dst, in.B, in.A)
	case OpCall, OpSpawn:
		fmt.Fprintf(&b, " r%d, %s%s", in.Dst, in.Method.FullName(), regList(in.Args))
	case OpCallVirt:
		fmt.Fprintf(&b, " r%d, %s%s", in.Dst, in.Name, regList(in.Args))
	case OpIO:
		fmt.Fprintf(&b, " %d", in.Imm)
	case OpPrint:
		fmt.Fprintf(&b, " r%d", in.A)
	case OpProbe, OpCheckedProbe:
		fmt.Fprintf(&b, " [%s]", in.Probe)
	case OpJump:
		fmt.Fprintf(&b, " %s", blockName(in.Targets, 0))
	case OpBranch:
		fmt.Fprintf(&b, " r%d, %s, %s", in.A, blockName(in.Targets, 0), blockName(in.Targets, 1))
	case OpReturn:
		if in.A != NoReg {
			fmt.Fprintf(&b, " r%d", in.A)
		}
	case OpCheck, OpLoopCheck:
		fmt.Fprintf(&b, " fire=%s, else=%s", blockName(in.Targets, 0), blockName(in.Targets, 1))
	}
	return b.String()
}

func (in *Instr) fieldName() string {
	if in.Class == nil {
		return fmt.Sprintf("#%d", in.FieldSlot())
	}
	return in.Class.Name + "." + in.Class.FieldName(in.FieldSlot())
}

func regList(args []Reg) string {
	var b strings.Builder
	b.WriteString("(")
	for i, r := range args {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "r%d", r)
	}
	b.WriteString(")")
	return b.String()
}

func blockName(ts []*Block, i int) string {
	if i >= len(ts) || ts[i] == nil {
		return "?"
	}
	return ts[i].Name()
}
