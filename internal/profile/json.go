package profile

import "encoding/json"

// jsonEntry is the serialized form of one profile event.
type jsonEntry struct {
	Key     uint64  `json:"key"`
	Label   string  `json:"label,omitempty"`
	Count   uint64  `json:"count"`
	Percent float64 `json:"percent"`
}

type jsonProfile struct {
	Name    string      `json:"name"`
	Total   uint64      `json:"total"`
	Events  int         `json:"events"`
	Entries []jsonEntry `json:"entries"`
}

// MarshalJSON serializes the profile with entries in descending-count
// order (deterministic), including labels when a Labeler is attached.
// Consumers that post-process profiles (dashboards, diffing tools,
// offline optimizers) get a stable machine-readable form.
func (p *Profile) MarshalJSON() ([]byte, error) {
	out := jsonProfile{
		Name:    p.Name,
		Total:   p.Total(),
		Events:  p.NumEvents(),
		Entries: make([]jsonEntry, 0, p.NumEvents()),
	}
	for _, e := range p.Entries() {
		je := jsonEntry{Key: e.Key, Count: e.Count, Percent: e.Percent}
		if p.Labeler != nil {
			je.Label = p.Labeler(e.Key)
		}
		out.Entries = append(out.Entries, je)
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a profile serialized by MarshalJSON. Labels are
// not restored (they are derived from the program); attach a Labeler
// after loading if reports need them.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var in jsonProfile
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	p.Name = in.Name
	p.counts = make(map[uint64]uint64, len(in.Entries))
	p.total = 0
	for _, e := range in.Entries {
		p.Add(e.Key, e.Count)
	}
	return nil
}
