package profile

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	p := New("field-access")
	p.Labeler = func(k uint64) string { return "f" + string(rune('0'+k)) }
	p.Add(0, 90)
	p.Add(1, 60)

	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"name":"field-access"`, `"total":150`, `"label":"f0"`, `"percent":60`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON %s missing %s", s, want)
		}
	}

	var q Profile
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.Total() != p.Total() || q.NumEvents() != p.NumEvents() {
		t.Fatalf("round trip lost data: %+v", q)
	}
	if ov := Overlap(p, &q); ov < 99.999 {
		t.Fatalf("round-trip overlap %.3f", ov)
	}
}

func TestJSONEmptyProfile(t *testing.T) {
	p := New("empty")
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Profile
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q.Total() != 0 || q.NumEvents() != 0 {
		t.Fatal("empty profile round trip broken")
	}
	// The restored profile must be usable (maps initialized).
	q.Inc(5)
	if q.Total() != 1 {
		t.Fatal("restored profile not writable")
	}
}

func TestJSONDeterministicOrder(t *testing.T) {
	p := New("t")
	for i := uint64(0); i < 20; i++ {
		p.Add(i, 100-i)
	}
	a, _ := json.Marshal(p)
	b, _ := json.Marshal(p)
	if string(a) != string(b) {
		t.Fatal("JSON serialization not deterministic")
	}
	if !strings.Contains(string(a), `"count":100`) {
		t.Fatal("descending order lost")
	}
}
