package profile

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBasicCounting(t *testing.T) {
	p := New("t")
	p.Inc(1)
	p.Inc(1)
	p.Add(2, 5)
	if p.Total() != 7 || p.NumEvents() != 2 {
		t.Fatalf("total %d events %d", p.Total(), p.NumEvents())
	}
	if p.Count(1) != 2 || p.Count(2) != 5 || p.Count(3) != 0 {
		t.Fatal("counts wrong")
	}
	p.Reset()
	if p.Total() != 0 || p.NumEvents() != 0 {
		t.Fatal("reset failed")
	}
}

func TestEntriesSortedDeterministically(t *testing.T) {
	p := New("t")
	p.Add(10, 5)
	p.Add(20, 5)
	p.Add(30, 9)
	es := p.Entries()
	if es[0].Key != 30 {
		t.Errorf("entries[0] = %d, want 30", es[0].Key)
	}
	// Tie broken by key.
	if es[1].Key != 10 || es[2].Key != 20 {
		t.Errorf("tie order: %v", es)
	}
	if math.Abs(es[0].Percent-9.0/19*100) > 1e-9 {
		t.Errorf("percent = %f", es[0].Percent)
	}
}

func TestOverlapIdentical(t *testing.T) {
	p := New("a")
	p.Add(1, 100)
	p.Add(2, 50)
	if ov := Overlap(p, p); math.Abs(ov-100) > 1e-9 {
		t.Errorf("self overlap = %f", ov)
	}
	// Scaled copies are distribution-identical.
	q := New("b")
	q.Add(1, 10)
	q.Add(2, 5)
	if ov := Overlap(p, q); math.Abs(ov-100) > 1e-9 {
		t.Errorf("scaled overlap = %f", ov)
	}
}

func TestOverlapDisjointAndPartial(t *testing.T) {
	a := New("a")
	a.Add(1, 10)
	b := New("b")
	b.Add(2, 10)
	if ov := Overlap(a, b); ov != 0 {
		t.Errorf("disjoint overlap = %f", ov)
	}
	// a: 50/50 on keys {1,2}; b: 100% on key 1 -> overlap 50.
	a2 := New("a2")
	a2.Add(1, 5)
	a2.Add(2, 5)
	b2 := New("b2")
	b2.Add(1, 7)
	if ov := Overlap(a2, b2); math.Abs(ov-50) > 1e-9 {
		t.Errorf("partial overlap = %f, want 50", ov)
	}
}

func TestOverlapEmpty(t *testing.T) {
	a, b := New("a"), New("b")
	if ov := Overlap(a, b); ov != 100 {
		t.Errorf("empty-empty overlap = %f, want 100", ov)
	}
	b.Inc(1)
	if ov := Overlap(a, b); ov != 0 {
		t.Errorf("empty-nonempty overlap = %f, want 0", ov)
	}
}

func TestClone(t *testing.T) {
	p := New("t")
	p.Add(1, 3)
	q := p.Clone()
	q.Add(1, 1)
	if p.Count(1) != 3 || q.Count(1) != 4 {
		t.Error("clone shares state")
	}
}

func TestFprintAndLabeler(t *testing.T) {
	p := New("t")
	p.Labeler = func(k uint64) string { return "key-" + string(rune('A'+k)) }
	p.Add(0, 3)
	p.Add(1, 1)
	var sb strings.Builder
	p.Fprint(&sb, 1)
	out := sb.String()
	if !strings.Contains(out, "key-A") {
		t.Errorf("labeler unused: %s", out)
	}
	if strings.Contains(out, "key-B") {
		t.Errorf("top-1 printed more than one entry: %s", out)
	}
	if !strings.Contains(p.String(), "key-A") {
		t.Error("String() broken")
	}
}

// Property tests on the overlap metric (DESIGN.md invariant 6).

func mkProfile(counts []uint8) *Profile {
	p := New("q")
	for i, c := range counts {
		if c > 0 {
			p.Add(uint64(i), uint64(c))
		}
	}
	return p
}

func TestQuickOverlapBounds(t *testing.T) {
	f := func(a, b []uint8) bool {
		pa, pb := mkProfile(a), mkProfile(b)
		ov := Overlap(pa, pb)
		return ov >= 0 && ov <= 100+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOverlapSymmetric(t *testing.T) {
	f := func(a, b []uint8) bool {
		pa, pb := mkProfile(a), mkProfile(b)
		return math.Abs(Overlap(pa, pb)-Overlap(pb, pa)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOverlapSelfIs100(t *testing.T) {
	f := func(a []uint8) bool {
		pa := mkProfile(a)
		if pa.Total() == 0 {
			return Overlap(pa, pa) == 100
		}
		return math.Abs(Overlap(pa, pa)-100) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOverlapScaleInvariant(t *testing.T) {
	f := func(a []uint8, k uint8) bool {
		scale := uint64(k%7) + 2
		pa := mkProfile(a)
		pb := New("scaled")
		for i, c := range a {
			if c > 0 {
				pb.Add(uint64(i), uint64(c)*scale)
			}
		}
		if pa.Total() == 0 {
			return true
		}
		return math.Abs(Overlap(pa, pb)-100) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestOverlapHandComputed pins Overlap on asymmetric-support profiles
// against by-hand min-share sums (the §4.4 metric).
func TestOverlapHandComputed(t *testing.T) {
	mk := func(counts map[uint64]uint64) *Profile {
		p := New("t")
		for k, n := range counts {
			p.Add(k, n)
		}
		return p
	}
	cases := []struct {
		name string
		a, b map[uint64]uint64
		want float64
	}{
		{
			// b splits its mass over a superset of a's support:
			// min(1, .5) = .5.
			name: "subset support",
			a:    map[uint64]uint64{1: 3},
			b:    map[uint64]uint64{1: 1, 2: 1},
			want: 50,
		},
		{
			// a: .25/.25/.50 over {1,2,3}; b: .6/.2/.2 over {2,3,4}.
			// Shared keys 2 and 3: min(.25,.6) + min(.5,.2) = .45.
			name: "mixed support",
			a:    map[uint64]uint64{1: 2, 2: 2, 3: 4},
			b:    map[uint64]uint64{2: 6, 3: 2, 4: 2},
			want: 45,
		},
		{
			// Distribution-identical despite a 2^61-fold count gap —
			// the metric must normalize before comparing.
			name: "extreme count magnitudes",
			a:    map[uint64]uint64{1: 1 << 62, 2: 1 << 62},
			b:    map[uint64]uint64{1: 2, 2: 2},
			want: 100,
		},
		{
			// Inverted skew: both shares on each key are tiny on one
			// side, so almost nothing overlaps.
			name: "inverted skew",
			a:    map[uint64]uint64{1: 1, 2: 9999},
			b:    map[uint64]uint64{1: 9999, 2: 1},
			want: 100 * 2.0 / 10000.0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pa, pb := mk(tc.a), mk(tc.b)
			if ov := Overlap(pa, pb); math.Abs(ov-tc.want) > 1e-9 {
				t.Errorf("Overlap(a,b) = %f, want %f", ov, tc.want)
			}
			if ov := Overlap(pb, pa); math.Abs(ov-tc.want) > 1e-9 {
				t.Errorf("Overlap(b,a) = %f, want %f", ov, tc.want)
			}
		})
	}
}
