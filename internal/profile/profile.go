// Package profile provides the profile containers the instrumentation
// runtimes write into, and the overlap-percentage accuracy metric the
// paper uses in §4.4 to compare sampled profiles against the perfect
// profile.
//
// See DESIGN.md §3 (system inventory) and §5 (overlap-metric invariants).
package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Profile is a weighted multiset of events: a map from an event key to
// the number of times the event was observed. Keys are opaque uint64s;
// each instrumentation defines its own packing and can attach a Labeler
// for reports.
type Profile struct {
	// Name identifies the profile (e.g. "call-edge", "field-access").
	Name string
	// Labeler renders an event key for reports; nil means numeric.
	Labeler func(key uint64) string

	counts map[uint64]uint64
	total  uint64
}

// New returns an empty profile.
func New(name string) *Profile {
	return &Profile{Name: name, counts: make(map[uint64]uint64)}
}

// Add records n occurrences of the event.
func (p *Profile) Add(key uint64, n uint64) {
	p.counts[key] += n
	p.total += n
}

// Inc records one occurrence of the event.
func (p *Profile) Inc(key uint64) { p.Add(key, 1) }

// Count returns the number of occurrences recorded for key.
func (p *Profile) Count(key uint64) uint64 { return p.counts[key] }

// Total returns the total number of recorded events.
func (p *Profile) Total() uint64 { return p.total }

// NumEvents returns the number of distinct event keys.
func (p *Profile) NumEvents() int { return len(p.counts) }

// Reset clears the profile.
func (p *Profile) Reset() {
	p.counts = make(map[uint64]uint64)
	p.total = 0
}

// Clone returns a deep copy of the profile.
func (p *Profile) Clone() *Profile {
	q := New(p.Name)
	q.Labeler = p.Labeler
	for k, v := range p.counts {
		q.counts[k] = v
	}
	q.total = p.total
	return q
}

// Entry is a (key, count) pair with its share of the profile total.
type Entry struct {
	Key     uint64
	Count   uint64
	Percent float64
}

// Entries returns the profile's events sorted by descending count (ties
// broken by key for determinism).
func (p *Profile) Entries() []Entry {
	out := make([]Entry, 0, len(p.counts))
	for k, v := range p.counts {
		e := Entry{Key: k, Count: v}
		if p.total > 0 {
			e.Percent = 100 * float64(v) / float64(p.total)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Overlap computes the overlap percentage between two profiles, the
// accuracy metric of §4.4: each event contributes the minimum of its
// sample-percentages in the two profiles, and the total is the sum over
// all events. Identical distributions yield 100; disjoint ones yield 0.
// Two empty profiles are trivially identical (100); an empty profile
// against a non-empty one overlaps 0.
func Overlap(a, b *Profile) float64 {
	if a.total == 0 && b.total == 0 {
		return 100
	}
	if a.total == 0 || b.total == 0 {
		return 0
	}
	sum := 0.0
	for k, ca := range a.counts {
		cb, ok := b.counts[k]
		if !ok {
			continue
		}
		pa := float64(ca) / float64(a.total)
		pb := float64(cb) / float64(b.total)
		if pa < pb {
			sum += pa
		} else {
			sum += pb
		}
	}
	return 100 * sum
}

// label renders a key using the profile's labeler.
func (p *Profile) label(key uint64) string {
	if p.Labeler != nil {
		return p.Labeler(key)
	}
	return fmt.Sprintf("%#x", key)
}

// Fprint writes the top n entries of the profile to w (all entries if
// n <= 0).
func (p *Profile) Fprint(w io.Writer, n int) {
	entries := p.Entries()
	if n > 0 && n < len(entries) {
		entries = entries[:n]
	}
	fmt.Fprintf(w, "profile %s: %d events, %d samples\n", p.Name, p.NumEvents(), p.Total())
	for _, e := range entries {
		fmt.Fprintf(w, "  %8d  %6.2f%%  %s\n", e.Count, e.Percent, p.label(e.Key))
	}
}

// String returns the top-10 rendering of the profile.
func (p *Profile) String() string {
	var sb strings.Builder
	p.Fprint(&sb, 10)
	return sb.String()
}
