package profile_test

import (
	"fmt"

	"instrsample/internal/profile"
)

// ExampleOverlap demonstrates the paper's §4.4 accuracy metric: each
// event contributes the minimum of its two sample-percentages.
func ExampleOverlap() {
	perfect := profile.New("perfect")
	perfect.Add(1, 80) // event 1: 80%
	perfect.Add(2, 20) // event 2: 20%

	sampled := profile.New("sampled")
	sampled.Add(1, 6) // 60%
	sampled.Add(2, 3) // 30%
	sampled.Add(3, 1) // 10% noise

	fmt.Printf("%.0f%%\n", profile.Overlap(perfect, sampled))
	// Output: 80%
}

// ExampleProfile_Entries shows deterministic, descending iteration.
func ExampleProfile_Entries() {
	p := profile.New("demo")
	p.Labeler = func(k uint64) string { return fmt.Sprintf("event-%d", k) }
	p.Add(7, 5)
	p.Add(3, 10)
	for _, e := range p.Entries() {
		fmt.Printf("%s %d (%.1f%%)\n", p.Labeler(e.Key), e.Count, e.Percent)
	}
	// Output:
	// event-3 10 (66.7%)
	// event-7 5 (33.3%)
}
