// Package compile orchestrates the compiler pipeline that turns a source
// program into an executable configuration: call-site numbering,
// yieldpoint insertion (as Jalapeño's baseline compiler does on every
// method entry and backedge), optional instrumentation, the optional
// sampling-framework transform, and the late backend phases — code layout
// / encoding and liveness analysis — that run *after* duplication, which
// is why the paper's Table 2 attributes the compile-time increase mostly
// to post-duplication phases. Result.Work records that cost as a
// deterministic instruction-visit count so Table 2's compile column is
// reproducible to the byte.
//
// See DESIGN.md §3 (system inventory) and §4 (Table 2,
// ablation-inlining).
package compile

import (
	"fmt"
	"time"

	"instrsample/internal/core"
	"instrsample/internal/instr"
	"instrsample/internal/ir"
	"instrsample/internal/vm"
)

// Options configures a compilation.
type Options struct {
	// Instrumenters are applied to every method, in owner order. Empty
	// means an uninstrumented baseline build.
	Instrumenters []instr.Instrumenter
	// InstrumentFilter restricts instrumentation to selected methods
	// (nil = all). The filter sees the compiled clone's methods; select
	// by FullName. Combined with SelectiveTransform this is the adaptive
	// system's hot-method-only configuration (§3).
	InstrumentFilter func(*ir.Method) bool
	// SelectiveTransform applies the framework only to methods that
	// carry probes, leaving every other method at exact baseline cost.
	SelectiveTransform bool
	// Framework, when non-nil, applies the sampling framework after
	// instrumentation. Nil with instrumenters present produces
	// exhaustively instrumented code (the paper's Table 1 configuration).
	Framework *core.Options
	// ChecksOnly, when non-nil, inserts bare checks without duplication
	// (the Table 2 breakdown configuration). Mutually exclusive with
	// Framework and Instrumenters.
	ChecksOnly *core.ChecksOnly
	// SkipVerify disables post-compile verification (benchmarks only).
	SkipVerify bool
	// NoOptimize disables the baseline optimization passes (tests that
	// need the IR exactly as constructed).
	NoOptimize bool
	// Inline enables aggressive static inlining of small callees before
	// instrumentation (§4.3's suggestion for reducing method-entry check
	// overhead). Off by default: the paper's measurements use the
	// default, non-aggressive heuristics, so the reproduction does too.
	Inline bool
	// InlinePolicy bounds the inliner when Inline is set (zero value =
	// defaults).
	InlinePolicy InlinePolicy
	// DevirtSites maps call-site IDs to predicted dense class IDs
	// (instr.PredictReceivers over a sampled receiver profile). Listed
	// sites are rewritten to guarded direct calls; with Inline also set,
	// the inliner re-runs afterwards so the devirtualized calls can be
	// expanded — the full profile-guided receiver-class-prediction
	// pipeline of the paper's citation [27].
	DevirtSites map[int]int
}

// Result is a compiled program plus compilation statistics.
type Result struct {
	// Prog is the compiled program (a private clone of the input).
	Prog *ir.Program
	// Runtimes are the instrumentation runtimes, in owner order; plug
	// Handlers into vm.Config.
	Runtimes []instr.Runtime
	// Handlers is the vm.Config.Handlers slice matching Runtimes.
	Handlers []vm.ProbeHandler
	// CodeSize is the total encoded code size in bytes.
	CodeSize int
	// CheckingCodeSize and DuplicatedCodeSize split CodeSize by block
	// kind (check blocks count as checking code).
	CheckingCodeSize, DuplicatedCodeSize int
	// CompileTime is the wall-clock time of the pipeline. It is noisy
	// and machine-dependent; deterministic comparisons (Table 2's
	// compile-cost column) use Work instead.
	CompileTime time.Duration
	// Work is a deterministic compile-cost measure: the number of
	// instruction visits the pipeline performs, charging the front-half
	// phases (inlining, optimization, numbering, yieldpoints) for the
	// pre-duplication code and the late phases (the framework transform,
	// liveness, layout) for the code they actually traverse. Because the
	// late phases run after duplication, Work grows with the duplicated
	// code exactly as the paper's Table 2 compile-time column does, but —
	// unlike CompileTime — it is identical across runs, machines and
	// degrees of parallelism.
	Work int64
	// FrameworkStats aggregates the transform's per-method statistics
	// (zero value when no framework ran).
	FrameworkStats core.MethodStats
	// Yieldpoints is the number of yieldpoints inserted.
	Yieldpoints int
	// CallsInlined is the number of call sites the inliner expanded
	// (0 unless Options.Inline).
	CallsInlined int
	// SitesDevirtualized is the number of virtual call sites rewritten to
	// guarded direct calls (0 unless Options.DevirtSites).
	SitesDevirtualized int
}

// Compile clones the source program and runs the pipeline on the clone,
// so one source can be compiled under many configurations.
func Compile(src *ir.Program, opts Options) (*Result, error) {
	start := time.Now()
	if !src.Sealed() {
		src.Seal()
	}
	p := ir.CloneProgram(src)

	res := &Result{Prog: p}

	// Front half (the baseline O2 compiler): inlining, optimization,
	// numbering and yieldpoints.
	if opts.Inline {
		res.CallsInlined = InlineProgram(p, opts.InlinePolicy)
	}
	if !opts.NoOptimize {
		for _, m := range p.Methods() {
			Optimize(m)
		}
	}
	instr.AssignCallSiteIDs(p)
	if len(opts.DevirtSites) > 0 {
		// Feedback-directed devirtualization: site IDs at this point
		// match a profiling compile with identical front-end options.
		res.SitesDevirtualized = Devirtualize(p, opts.DevirtSites)
		if opts.Inline {
			// The newly direct calls are inlining candidates.
			res.CallsInlined += InlineProgram(p, opts.InlinePolicy)
		}
		if !opts.NoOptimize {
			for _, m := range p.Methods() {
				Optimize(m)
			}
		}
		// Renumber sites so downstream instrumentation stays dense.
		instr.AssignCallSiteIDs(p)
	}
	for _, m := range p.Methods() {
		res.Yieldpoints += InsertYieldpoints(m)
	}
	// The front half made three passes (inlining+optimization, call-site
	// numbering, yieldpoints) over pre-duplication code.
	res.Work += 3 * countInstrs(p)

	// Instrumentation.
	if len(opts.Instrumenters) > 0 {
		instr.InstrumentMethods(p, opts.Instrumenters, opts.InstrumentFilter)
		res.Runtimes, res.Handlers = instr.NewRuntimes(p, opts.Instrumenters)
	}

	// The sampling framework.
	if opts.Framework != nil {
		if opts.ChecksOnly != nil {
			return nil, fmt.Errorf("compile: Framework and ChecksOnly are mutually exclusive")
		}
		var keep func(*ir.Method) bool
		if opts.SelectiveTransform {
			keep = core.HasProbes
		}
		fs, err := core.TransformSelected(p, *opts.Framework, keep)
		if err != nil {
			return nil, err
		}
		res.FrameworkStats = *fs
	} else if opts.ChecksOnly != nil {
		if len(opts.Instrumenters) > 0 {
			return nil, fmt.Errorf("compile: ChecksOnly cannot be combined with instrumentation")
		}
		for _, m := range p.Methods() {
			res.FrameworkStats.ChecksInserted += core.InsertChecksOnly(m, *opts.ChecksOnly)
		}
	}

	// Re-seal: the transforms above add and clone blocks, invalidating the
	// seal-time annotations (dense program-wide block GIDs, vtables). Each
	// transform renumbers the methods it touches, so this pass changes no
	// IDs the instrumentation already recorded; it refreshes the
	// program-wide tables the VM's fast paths index by.
	p.Seal()

	// Late phases (run after duplication, so their cost scales with the
	// duplicated code): liveness analysis and layout/encoding. The
	// framework transform plus these two passes each traverse the
	// post-duplication code.
	res.Work += 3 * countInstrs(p)
	for _, m := range p.Methods() {
		m.ComputeLiveness()
	}
	res.CodeSize, res.CheckingCodeSize, res.DuplicatedCodeSize = Layout(p)

	if !opts.SkipVerify {
		mode := ir.VerifyBase
		if opts.Framework != nil {
			mode = ir.VerifyTransformed
		}
		if err := p.Verify(mode); err != nil {
			return nil, fmt.Errorf("compile: verification failed: %w", err)
		}
	}
	res.CompileTime = time.Since(start)
	return res, nil
}

// InsertYieldpoints places a yieldpoint on the method entry and on every
// backedge, exactly as Jalapeño does, "to guarantee that there is a
// finite amount of time between yieldpoints" (§4.5). Conditional
// backedges are split with a trampoline so the yieldpoint executes only
// when the backedge is taken; every backedge's terminator edge is marked
// in BackedgeMask. Returns the number of yieldpoints inserted.
func InsertYieldpoints(m *ir.Method) int {
	n := 0
	trampolines := 0
	m.Entry().InsertFront(ir.Instr{Op: ir.OpYield})
	n++
	for _, e := range m.Backedges() {
		t := e.From.Terminator()
		if t.Op == ir.OpJump {
			e.From.InsertBeforeTerminator(ir.Instr{Op: ir.OpYield})
			t = e.From.Terminator()
			t.BackedgeMask |= 1
		} else {
			tramp := m.NewBlock("")
			tramp.Append(ir.Instr{Op: ir.OpYield})
			tramp.Append(ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{e.To}, BackedgeMask: 1})
			t.Targets[e.Index] = tramp
			t.BackedgeMask &^= 1 << uint(e.Index)
			trampolines++
		}
		n++
	}
	// Straight-line yieldpoints don't change the CFG; only trampoline
	// blocks add edges and IDs worth recomputing.
	if trampolines > 0 {
		m.RecomputePreds()
		m.Renumber()
	}
	return n
}

// countInstrs totals the program's instructions (one unit per block for
// block-level bookkeeping), the unit of the deterministic Work measure.
func countInstrs(p *ir.Program) int64 {
	var n int64
	for _, m := range p.Methods() {
		for _, b := range m.Blocks {
			n += int64(len(b.Instrs)) + 1
		}
	}
	return n
}

// instrBytes is the fictional encoding width of one IR instruction.
const instrBytes = 4

// Layout assigns code addresses to every block and code sizes to every
// method, placing all duplicated code after all checking code ("the
// duplicated code is executed infrequently and can be placed somewhere
// out of the common path", §3). Keeping the checking code of every
// method contiguous means that, as long as no samples are taken, the
// program's cache footprint is essentially the baseline's — the paper's
// observation that the indirect cost of duplication is minimal. Returns
// total, checking-only and duplicated-only code sizes in bytes.
func Layout(p *ir.Program) (total, checking, duplicated int) {
	addr := 0
	for pass := 0; pass < 2; pass++ {
		for _, m := range p.Methods() {
			for _, b := range m.Blocks {
				isDup := b.Kind == ir.KindDuplicated
				if (pass == 1) != isDup {
					continue
				}
				b.Addr = addr
				b.Size = len(b.Instrs) * instrBytes
				addr += b.Size
				if isDup {
					duplicated += b.Size
				} else {
					checking += b.Size
				}
			}
		}
	}
	for _, m := range p.Methods() {
		size := 0
		for _, b := range m.Blocks {
			size += b.Size
		}
		m.CodeSize = size
	}
	return addr, checking, duplicated
}
