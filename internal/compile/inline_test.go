package compile

import (
	"testing"

	"instrsample/internal/core"
	"instrsample/internal/instr"
	"instrsample/internal/ir"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

// inlineProgram builds: add3(x) = x+3 (leaf, inlinable);
// main loops calling add3 twice per iteration.
func inlineProgram() *ir.Program {
	add3 := ir.NewFunc("add3", 1)
	{
		c := add3.At(add3.EntryBlock())
		three := c.Const(3)
		c.Return(c.Bin(ir.OpAdd, 0, three))
	}
	mb := ir.NewFunc("main", 0)
	{
		c := mb.At(mb.EntryBlock())
		acc := c.Const(0)
		n := c.Const(500)
		lp := c.CountedLoop(n, "l")
		b := lp.Body
		r1 := b.Call(add3.M, lp.I)
		r2 := b.Call(add3.M, acc)
		b.BinTo(ir.OpAdd, acc, r1, r2)
		// Realistic per-iteration work so calls are a modest fraction of
		// the loop (as in real code); constants vary so folding cannot
		// collapse the chain.
		for k := int64(1); k <= 24; k++ {
			kk := b.Const(k * 2654435761)
			m1 := b.Bin(ir.OpMul, acc, kk)
			b.BinTo(ir.OpXor, acc, acc, m1)
		}
		b.Jump(lp.Latch)
		lp.After.Return(acc)
	}
	p := &ir.Program{Name: "t", Funcs: []*ir.Method{add3.M, mb.M}, Main: mb.M}
	p.Seal()
	return p
}

func TestInlineExpandsAndPreservesSemantics(t *testing.T) {
	p := inlineProgram()
	plain, _ := run(t, p, Options{}, nil)
	res, err := Compile(p, Options{Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.CallsInlined != 2 {
		t.Fatalf("inlined %d sites, want 2", res.CallsInlined)
	}
	out, err := vm.New(res.Prog, vm.Config{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Return != plain.Return {
		t.Fatalf("inlining changed result: %d vs %d", out.Return, plain.Return)
	}
	// No calls remain in the loop: method entries drop to just main.
	if out.Stats.MethodEntries != 1 {
		t.Errorf("entries %d, want 1 (all calls inlined)", out.Stats.MethodEntries)
	}
	// And the run got cheaper (call linkage gone).
	if out.Stats.Cycles >= plain.Stats.Cycles {
		t.Errorf("inlining did not pay: %d vs %d cycles", out.Stats.Cycles, plain.Stats.Cycles)
	}
}

func TestInlinePreservesSemanticsFuzz(t *testing.T) {
	for s := 0; s < 25; s++ {
		seed := uint64(s)*104729 + 11
		prog := ir.RandomProgram(seed, ir.RandomProgramConfig{})
		plain, _ := run(t, prog, Options{}, nil)
		res, err := Compile(prog, Options{Inline: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		out, err := vm.New(res.Prog, vm.Config{MaxCycles: 1 << 33}).Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Return != plain.Return {
			t.Fatalf("seed %d: result %d vs %d", seed, out.Return, plain.Return)
		}
		if len(out.Output) != len(plain.Output) {
			t.Fatalf("seed %d: output length differs", seed)
		}
		for i := range out.Output {
			if out.Output[i] != plain.Output[i] {
				t.Fatalf("seed %d: output[%d] differs", seed, i)
			}
		}
	}
}

func TestInlineRespectsRecursionAndSize(t *testing.T) {
	// Recursive f must not be inlined into itself; big must not be
	// inlined anywhere.
	f := ir.NewFunc("f", 2)
	{
		c := f.At(f.EntryBlock())
		zero := c.Const(0)
		more := c.Bin(ir.OpCmpGT, 1, zero)
		rec := f.Block("rec")
		done := f.Block("done")
		c.Branch(more, rec, done)
		rc := f.At(rec)
		one := rc.Const(1)
		d := rc.Bin(ir.OpSub, 1, one)
		v := rc.Call(f.M, 0, d)
		rc.Return(v)
		dc := f.At(done)
		dc.Return(0)
	}
	big := ir.NewFunc("big", 1)
	{
		c := big.At(big.EntryBlock())
		acc := ir.Reg(0)
		for i := 0; i < 40; i++ {
			k := c.Const(int64(i))
			acc = c.Bin(ir.OpXor, acc, k)
		}
		c.Return(acc)
	}
	mb := ir.NewFunc("main", 0)
	{
		c := mb.At(mb.EntryBlock())
		five := c.Const(5)
		r1 := c.Call(f.M, five, five)
		r2 := c.Call(big.M, five)
		c.Return(c.Bin(ir.OpAdd, r1, r2))
	}
	p := &ir.Program{Name: "t", Funcs: []*ir.Method{f.M, big.M, mb.M}, Main: mb.M}
	p.Seal()
	res, err := Compile(p, Options{Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	// f calls itself (calls are not inlinable per depth-1 rule), big is
	// too big: nothing expands.
	if res.CallsInlined != 0 {
		t.Errorf("inlined %d sites, want 0", res.CallsInlined)
	}
}

// TestInlineReducesEntryCheckOverhead verifies §4.3's prediction: with
// aggressive inlining, the framework's method-entry check overhead drops.
func TestInlineReducesEntryCheckOverhead(t *testing.T) {
	p := inlineProgram()
	measure := func(inline bool) float64 {
		base, err := Compile(p, Options{Inline: inline})
		if err != nil {
			t.Fatal(err)
		}
		baseOut, err := vm.New(base.Prog, vm.Config{}).Run()
		if err != nil {
			t.Fatal(err)
		}
		fw, err := Compile(p, Options{
			Inline:        inline,
			Instrumenters: []instr.Instrumenter{&instr.CallEdge{}},
			Framework:     &core.Options{Variation: core.FullDuplication},
		})
		if err != nil {
			t.Fatal(err)
		}
		fwOut, err := vm.New(fw.Prog, vm.Config{Trigger: trigger.Never{}}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return 100 * (float64(fwOut.Stats.Cycles)/float64(baseOut.Stats.Cycles) - 1)
	}
	without := measure(false)
	with := measure(true)
	if with >= without {
		t.Errorf("inlining did not reduce framework overhead: %.1f%% vs %.1f%%", with, without)
	}
	t.Logf("framework overhead: %.1f%% without inlining, %.1f%% with", without, with)
}
