package compile

import (
	"testing"

	"instrsample/internal/core"
	"instrsample/internal/instr"
	"instrsample/internal/ir"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

// polyProgram builds a polymorphic workload: shapes A (dominant) and B
// (rare) behind one virtual `area` call in a hot loop. The loop picks B
// every 16th iteration, so the site is ~94% monomorphic.
func polyProgram() *ir.Program {
	a := &ir.Class{Name: "A", FieldNames: []string{"w"}}
	b := &ir.Class{Name: "B", FieldNames: []string{"w"}}
	am := ir.NewMethod(a, "area", 1)
	{
		c := am.At(am.EntryBlock())
		w := c.GetField(0, a, "w")
		c.Return(c.Bin(ir.OpMul, w, w))
	}
	bm := ir.NewMethod(b, "area", 1)
	{
		c := bm.At(bm.EntryBlock())
		w := c.GetField(0, b, "w")
		two := c.Const(2)
		c.Return(c.Bin(ir.OpMul, w, two))
	}
	mb := ir.NewFunc("main", 0)
	{
		c := mb.At(mb.EntryBlock())
		oa := c.New(a)
		ob := c.New(b)
		three := c.Const(3)
		c.PutField(oa, a, "w", three)
		c.PutField(ob, b, "w", three)
		acc := c.Const(0)
		n := c.Const(4000)
		lp := c.CountedLoop(n, "l")
		body := lp.Body
		fifteen := body.Const(15)
		low := body.Bin(ir.OpAnd, lp.I, fifteen)
		zero := body.Const(0)
		isRare := body.Bin(ir.OpCmpEQ, low, zero)
		rareB := mb.Block("rare")
		commonB := mb.Block("common")
		contB := mb.Block("cont")
		recv := body.Fresh()
		body.Branch(isRare, rareB, commonB)
		rc := mb.At(rareB)
		rc.Move(recv, ob)
		rc.Jump(contB)
		cc := mb.At(commonB)
		cc.Move(recv, oa)
		cc.Jump(contB)
		jn := mb.At(contB)
		r := jn.CallVirt("area", recv)
		jn.BinTo(ir.OpAdd, acc, acc, r)
		jn.Jump(lp.Latch)
		lp.After.Return(acc)
	}
	p := &ir.Program{Name: "poly", Classes: []*ir.Class{a, b},
		Funcs: []*ir.Method{mb.M}, Main: mb.M}
	p.Seal()
	return p
}

// profileReceivers runs the sampled receiver-profiling phase and returns
// the predictions.
func profileReceivers(t *testing.T, prog *ir.Program, interval int64) map[int]int {
	t.Helper()
	res, err := Compile(prog, Options{
		Instrumenters: []instr.Instrumenter{&instr.ReceiverProfile{}},
		Framework:     &core.Options{Variation: core.FullDuplication},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.New(res.Prog, vm.Config{
		Trigger:  trigger.NewCounter(interval),
		Handlers: res.Handlers,
	}).Run(); err != nil {
		t.Fatal(err)
	}
	return instr.PredictReceivers(res.Runtimes[0].Profile(), 0.9, 10)
}

func TestDevirtualizeEndToEnd(t *testing.T) {
	prog := polyProgram()
	base, err := Compile(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseOut, err := vm.New(base.Prog, vm.Config{}).Run()
	if err != nil {
		t.Fatal(err)
	}

	sites := profileReceivers(t, prog, 13)
	if len(sites) != 1 {
		t.Fatalf("predicted %d sites, want 1 (the area call)", len(sites))
	}
	for _, cid := range sites {
		if base.Prog.Classes[cid].Name != "A" {
			t.Fatalf("predicted class %s, want A", base.Prog.Classes[cid].Name)
		}
	}

	devirt, err := Compile(prog, Options{DevirtSites: sites, Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	if devirt.SitesDevirtualized != 1 {
		t.Fatalf("devirtualized %d sites, want 1", devirt.SitesDevirtualized)
	}
	if devirt.CallsInlined == 0 {
		t.Fatal("devirtualized call was not inlined")
	}
	out, err := vm.New(devirt.Prog, vm.Config{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Return != baseOut.Return {
		t.Fatalf("devirtualization changed result: %d vs %d", out.Return, baseOut.Return)
	}
	// 15/16 of the virtual dispatches are gone (guard hits the fast,
	// inlined path); the rare receiver still dispatches virtually.
	if out.Stats.MethodEntries >= baseOut.Stats.MethodEntries {
		t.Errorf("entries did not drop: %d vs %d", out.Stats.MethodEntries, baseOut.Stats.MethodEntries)
	}
	if out.Stats.Cycles >= baseOut.Stats.Cycles {
		t.Errorf("no speedup: %d vs %d cycles", out.Stats.Cycles, baseOut.Stats.Cycles)
	}
	t.Logf("cycles %d -> %d (%.1f%% faster), entries %d -> %d",
		baseOut.Stats.Cycles, out.Stats.Cycles,
		100*(float64(baseOut.Stats.Cycles)/float64(out.Stats.Cycles)-1),
		baseOut.Stats.MethodEntries, out.Stats.MethodEntries)
}

func TestDevirtualizeSkipsUnknownAndMissingMethods(t *testing.T) {
	prog := polyProgram()
	// Nonsense predictions: out-of-range class, class without the method.
	res, err := Compile(prog, Options{DevirtSites: map[int]int{1: 99, 2: 98}})
	if err != nil {
		t.Fatal(err)
	}
	if res.SitesDevirtualized != 0 {
		t.Fatalf("devirtualized %d bogus sites", res.SitesDevirtualized)
	}
}

func TestDevirtualizeMispredictionFallsBack(t *testing.T) {
	prog := polyProgram()
	// Deliberately predict the RARE class B: the guard fails 15/16 of the
	// time, results must still be correct.
	var bID = -1
	for _, c := range prog.Classes {
		if c.Name == "B" {
			bID = c.ID
		}
	}
	base, err := Compile(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseOut, err := vm.New(base.Prog, vm.Config{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Find the real site ID of the virtual call by scanning the compiled
	// baseline (IDs are stable across identically-configured compiles).
	site := -1
	for _, m := range base.Prog.Methods() {
		for _, b := range m.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpCallVirt {
					site = int(b.Instrs[i].Imm)
				}
			}
		}
	}
	if site < 0 {
		t.Fatal("no virtual site found")
	}
	res, err := Compile(prog, Options{DevirtSites: map[int]int{site: bID}})
	if err != nil {
		t.Fatal(err)
	}
	if res.SitesDevirtualized != 1 {
		t.Fatalf("devirtualized %d, want 1", res.SitesDevirtualized)
	}
	out, err := vm.New(res.Prog, vm.Config{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Return != baseOut.Return {
		t.Fatalf("mispredicted guard changed result: %d vs %d", out.Return, baseOut.Return)
	}
}

// TestDevirtualizePreservesSemanticsFuzz devirtualizes every mix() call
// in random programs toward class 0 and checks behaviour is unchanged
// (guards catch every misprediction).
func TestDevirtualizePreservesSemanticsFuzz(t *testing.T) {
	for s := 0; s < 20; s++ {
		seed := uint64(s)*6151 + 3
		prog := ir.RandomProgram(seed, ir.RandomProgramConfig{})
		base, err := Compile(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		baseOut, err := vm.New(base.Prog, vm.Config{MaxCycles: 1 << 33}).Run()
		if err != nil {
			t.Fatal(err)
		}
		// Predict class 0 for every virtual site in the program.
		sites := map[int]int{}
		for _, m := range base.Prog.Methods() {
			for _, b := range m.Blocks {
				for i := range b.Instrs {
					if b.Instrs[i].Op == ir.OpCallVirt {
						sites[int(b.Instrs[i].Imm)] = 0
					}
				}
			}
		}
		if len(sites) == 0 {
			continue
		}
		res, err := Compile(prog, Options{DevirtSites: sites})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		out, err := vm.New(res.Prog, vm.Config{MaxCycles: 1 << 33}).Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Return != baseOut.Return || len(out.Output) != len(baseOut.Output) {
			t.Fatalf("seed %d: devirtualization changed behaviour", seed)
		}
	}
}
