package compile

import (
	"strings"
	"testing"

	"instrsample/internal/core"
	"instrsample/internal/instr"
	"instrsample/internal/ir"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

func run(t *testing.T, p *ir.Program, opts Options, trig trigger.Trigger) (*vm.Result, *Result) {
	t.Helper()
	res, err := Compile(p, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	out, err := vm.New(res.Prog, vm.Config{Trigger: trig, Handlers: res.Handlers, MaxCycles: 1 << 33}).Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out, res
}

func TestYieldpointPlacement(t *testing.T) {
	// A loop with a conditional backedge: the yieldpoint must go on a
	// trampoline so it only executes when the backedge is taken.
	b := ir.NewFunc("main", 0)
	c := b.At(b.EntryBlock())
	i := c.Const(0)
	head := b.Block("head")
	exit := b.Block("exit")
	hc := c.Jump(head)
	one := hc.Const(1)
	hc.BinTo(ir.OpAdd, i, i, one)
	ten := hc.Const(10)
	cond := hc.Bin(ir.OpCmpLT, i, ten)
	hc.Branch(cond, head, exit) // conditional backedge head->head
	b.At(exit).Return(i)
	p := &ir.Program{Name: "t", Funcs: []*ir.Method{b.M}, Main: b.M}
	p.Seal()

	out, _ := run(t, p, Options{}, nil)
	// 1 entry + 9 backedge traversals.
	if out.Stats.Yields != 10 {
		t.Errorf("yields %d, want 10", out.Stats.Yields)
	}
	if out.Stats.Backedges != 9 {
		t.Errorf("backedges %d, want 9", out.Stats.Backedges)
	}
	if out.Stats.Yields != out.Stats.MethodEntries+out.Stats.Backedges {
		t.Errorf("yieldpoints must sit exactly on entries+backedges")
	}
}

func TestLayoutPlacesDuplicatedCodeAfterChecking(t *testing.T) {
	prog := ir.RandomProgram(11, ir.RandomProgramConfig{})
	res, err := Compile(prog, Options{
		Instrumenters: []instr.Instrumenter{&instr.FieldAccess{}, &instr.CallEdge{}},
		Framework:     &core.Options{Variation: core.FullDuplication},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DuplicatedCodeSize == 0 {
		t.Fatal("no duplicated code measured")
	}
	total := 0
	for _, m := range res.Prog.Methods() {
		maxChecking, minDup := -1, 1<<60
		for _, b := range m.Blocks {
			if b.Size == 0 {
				t.Fatalf("%s %s: layout missed a block", m.FullName(), b.Name())
			}
			if b.Kind == ir.KindDuplicated {
				if b.Addr < minDup {
					minDup = b.Addr
				}
			} else if b.Addr > maxChecking {
				maxChecking = b.Addr
			}
		}
		if minDup != 1<<60 && maxChecking > minDup {
			t.Errorf("%s: duplicated code (min addr %d) not after checking code (max addr %d)",
				m.FullName(), minDup, maxChecking)
		}
		total += m.CodeSize
	}
	if total != res.CodeSize {
		t.Errorf("method sizes sum to %d, program says %d", total, res.CodeSize)
	}
	if res.CheckingCodeSize+res.DuplicatedCodeSize != res.CodeSize {
		t.Error("checking+duplicated != total")
	}
}

func TestChecksOnlyConfiguration(t *testing.T) {
	prog := ir.RandomProgram(5, ir.RandomProgramConfig{})
	base, _ := run(t, prog, Options{}, nil)
	be, beRes := run(t, prog, Options{ChecksOnly: &core.ChecksOnly{Backedges: true}}, trigger.Never{})
	me, _ := run(t, prog, Options{ChecksOnly: &core.ChecksOnly{Entries: true}}, trigger.Never{})
	if beRes.FrameworkStats.ChecksInserted == 0 {
		t.Fatal("no checks inserted")
	}
	if be.Stats.Checks != base.Stats.Backedges {
		t.Errorf("backedge checks executed %d, want %d", be.Stats.Checks, base.Stats.Backedges)
	}
	if me.Stats.Checks != base.Stats.MethodEntries {
		t.Errorf("entry checks executed %d, want %d", me.Stats.Checks, base.Stats.MethodEntries)
	}
	// Semantics unchanged, overhead strictly positive.
	if be.Return != base.Return || me.Return != base.Return {
		t.Error("checks-only changed program result")
	}
	if be.Stats.Cycles <= base.Stats.Cycles || me.Stats.Cycles <= base.Stats.Cycles {
		t.Error("checks cost nothing?")
	}
}

func TestChecksOnlyExclusivity(t *testing.T) {
	prog := ir.RandomProgram(5, ir.RandomProgramConfig{})
	_, err := Compile(prog, Options{
		ChecksOnly: &core.ChecksOnly{Entries: true},
		Framework:  &core.Options{Variation: core.FullDuplication},
	})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("expected exclusivity error, got %v", err)
	}
	_, err = Compile(prog, Options{
		ChecksOnly:    &core.ChecksOnly{Entries: true},
		Instrumenters: []instr.Instrumenter{&instr.CallEdge{}},
	})
	if err == nil {
		t.Error("ChecksOnly+instrumentation accepted")
	}
}

func TestCompileDoesNotMutateSource(t *testing.T) {
	prog := ir.RandomProgram(9, ir.RandomProgramConfig{})
	before := prog.FmtStats()
	if _, err := Compile(prog, Options{
		Instrumenters: []instr.Instrumenter{&instr.CallEdge{}, &instr.FieldAccess{}},
		Framework:     &core.Options{Variation: core.FullDuplication},
	}); err != nil {
		t.Fatal(err)
	}
	if prog.FmtStats() != before {
		t.Errorf("source program mutated:\n before %s\n after  %s", before, prog.FmtStats())
	}
	for _, m := range prog.Methods() {
		if m.Transformed != "" {
			t.Errorf("source method %s marked transformed", m.FullName())
		}
		for _, b := range m.Blocks {
			if b.HasProbe() {
				t.Errorf("source method %s gained probes", m.FullName())
			}
		}
	}
}

// --- optimizer tests ---

func optRun(t *testing.T, p *ir.Program, optimize bool) *vm.Result {
	t.Helper()
	out, _ := run(t, p, Options{NoOptimize: !optimize}, nil)
	return out
}

func TestOptimizeConstantFolding(t *testing.T) {
	b := ir.NewFunc("main", 0)
	c := b.At(b.EntryBlock())
	x := c.Const(6)
	y := c.Const(7)
	z := c.Bin(ir.OpMul, x, y)
	w := c.Bin(ir.OpAdd, z, c.Const(0))
	c.Return(w)
	p := &ir.Program{Name: "t", Funcs: []*ir.Method{b.M}, Main: b.M}
	p.Seal()
	q := ir.CloneProgram(p)
	n := Optimize(q.Main)
	if n == 0 {
		t.Fatal("nothing folded")
	}
	// The multiply must now be a constant.
	folded := false
	for _, blk := range q.Main.Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == ir.OpConst && blk.Instrs[i].Imm == 42 {
				folded = true
			}
			if blk.Instrs[i].Op == ir.OpMul {
				t.Error("multiply survived folding")
			}
		}
	}
	if !folded {
		t.Error("42 not materialized")
	}
}

func TestOptimizePreservesDivTrap(t *testing.T) {
	// const 1/0 must NOT fold into anything: the trap is observable.
	b := ir.NewFunc("main", 0)
	c := b.At(b.EntryBlock())
	x := c.Const(1)
	z := c.Const(0)
	c.Return(c.Bin(ir.OpDiv, x, z))
	p := &ir.Program{Name: "t", Funcs: []*ir.Method{b.M}, Main: b.M}
	p.Seal()
	res, err := Compile(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.New(res.Prog, vm.Config{}).Run(); err == nil {
		t.Fatal("optimizer folded away a division trap")
	}
}

func TestOptimizeDCEKeepsSideEffects(t *testing.T) {
	b := ir.NewFunc("main", 0)
	c := b.At(b.EntryBlock())
	dead := c.Bin(ir.OpAdd, c.Const(1), c.Const(2)) // result unused
	_ = dead
	live := c.Const(5)
	c.Print(live) // side effect must stay
	c.Return(live)
	p := &ir.Program{Name: "t", Funcs: []*ir.Method{b.M}, Main: b.M}
	p.Seal()
	out := optRun(t, p, true)
	if len(out.Output) != 1 || out.Output[0] != 5 {
		t.Fatalf("print lost: %v", out.Output)
	}
	out2 := optRun(t, p, false)
	if out2.Stats.Instrs <= out.Stats.Instrs {
		t.Errorf("DCE removed nothing: %d vs %d instrs", out.Stats.Instrs, out2.Stats.Instrs)
	}
}

func TestOptimizeCSE(t *testing.T) {
	b := ir.NewFunc("main", 1)
	c := b.At(b.EntryBlock())
	// Same expression twice over a live, non-constant operand.
	k := c.Const(3)
	a1 := c.Bin(ir.OpMul, 0, k)
	a2 := c.Bin(ir.OpMul, 0, k)
	c.Print(a1)
	c.Print(a2)
	s := c.Bin(ir.OpAdd, a1, a2)
	c.Return(s)
	p := &ir.Program{Name: "t"}
	mb := ir.NewFunc("main", 0)
	mc := mb.At(mb.EntryBlock())
	arg := mc.Const(7)
	mc.Return(mc.Call(b.M, arg))
	b.M.Name = "f"
	p.Funcs = []*ir.Method{b.M, mb.M}
	p.Main = mb.M
	p.Seal()
	q := ir.CloneProgram(p)
	var f *ir.Method
	for _, m := range q.Methods() {
		if m.Name == "f" {
			f = m
		}
	}
	Optimize(f)
	muls := 0
	for _, blk := range f.Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == ir.OpMul {
				muls++
			}
		}
	}
	if muls != 1 {
		t.Errorf("CSE left %d multiplies, want 1", muls)
	}
}

func TestOptimizeJumpThreading(t *testing.T) {
	b := ir.NewFunc("main", 0)
	c := b.At(b.EntryBlock())
	fwd := b.Block("fwd")
	end := b.Block("end")
	c.Jump(fwd)
	b.At(fwd).Jump(end)
	ec := b.At(end)
	ec.Return(ec.Const(1))
	p := &ir.Program{Name: "t", Funcs: []*ir.Method{b.M}, Main: b.M}
	p.Seal()
	q := ir.CloneProgram(p)
	Optimize(q.Main)
	if len(q.Main.Blocks) != 2 {
		t.Errorf("forwarding block survived: %d blocks", len(q.Main.Blocks))
	}
}

// TestOptimizePreservesSemanticsFuzz is the optimizer's own
// semantics-preservation property.
func TestOptimizePreservesSemanticsFuzz(t *testing.T) {
	for s := 0; s < 30; s++ {
		seed := uint64(s)*7919 + 5
		prog := ir.RandomProgram(seed, ir.RandomProgramConfig{})
		plain := optRun(t, prog, false)
		opt := optRun(t, prog, true)
		if plain.Return != opt.Return {
			t.Fatalf("seed %d: optimizer changed result: %d vs %d", seed, opt.Return, plain.Return)
		}
		if len(plain.Output) != len(opt.Output) {
			t.Fatalf("seed %d: optimizer changed output length", seed)
		}
		for i := range plain.Output {
			if plain.Output[i] != opt.Output[i] {
				t.Fatalf("seed %d: optimizer changed output[%d]", seed, i)
			}
		}
		if opt.Stats.Instrs > plain.Stats.Instrs {
			t.Errorf("seed %d: optimizer made the program bigger dynamically (%d vs %d)",
				seed, opt.Stats.Instrs, plain.Stats.Instrs)
		}
	}
}

func TestCompileStatsPopulated(t *testing.T) {
	prog := ir.RandomProgram(21, ir.RandomProgramConfig{})
	res, err := Compile(prog, Options{
		Instrumenters: []instr.Instrumenter{&instr.CallEdge{}},
		Framework:     &core.Options{Variation: core.FullDuplication},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompileTime <= 0 {
		t.Error("no compile time recorded")
	}
	if res.Yieldpoints == 0 {
		t.Error("no yieldpoints inserted")
	}
	if res.FrameworkStats.BlocksDuplicated == 0 {
		t.Error("framework stats empty")
	}
	if len(res.Runtimes) != 1 || len(res.Handlers) != 1 {
		t.Error("runtimes/handlers mismatch")
	}
}
