package compile

import "instrsample/internal/ir"

// Devirtualization — profile-guided receiver class prediction (the
// paper's citation [27], one of the offline feedback-directed
// optimizations §1 says online systems have been unable to apply for
// want of cheap profiles). Given a receiver-class profile collected by
// instr.ReceiverProfile under the sampling framework, virtual call sites
// with a dominant predicted receiver are rewritten to a guarded direct
// call:
//
//	r = callvirt m(recv, ...)
//
// becomes
//
//	cid = classof recv
//	ok  = cmpeq cid, <predicted class ID>
//	br ok, fast, slow
//	fast: r = call Predicted.m(recv, ...) ; jmp cont
//	slow: r = callvirt m(recv, ...)       ; jmp cont
//	cont: ...
//
// The guard preserves semantics for megamorphic or mispredicted
// receivers; the payoff is that the fast-path call is statically bound,
// so a subsequent inlining pass can expand it (the Compile pipeline
// re-runs the inliner after devirtualization when Options.Inline is set).

// Devirtualize rewrites every virtual call site listed in sites (call-site
// ID → predicted dense class ID) into a guarded direct call. Sites whose
// predicted class does not define the method are skipped. Returns the
// number of sites rewritten.
//
// Call-site IDs must come from a compilation with the same front-end
// options (the IDs are assigned deterministically in method/block order,
// so identical sources + identical options ⇒ identical IDs).
func Devirtualize(p *ir.Program, sites map[int]int) int {
	if len(sites) == 0 {
		return 0
	}
	rewritten := 0
	for _, m := range p.Methods() {
		rewritten += devirtMethod(p, m, sites)
	}
	return rewritten
}

func devirtMethod(p *ir.Program, m *ir.Method, sites map[int]int) int {
	rewritten := 0
	blocks := append([]*ir.Block(nil), m.Blocks...)
	for _, b := range blocks {
		for {
			site := -1
			var target *ir.Method
			var cls *ir.Class
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpCallVirt {
					continue
				}
				cid, ok := sites[int(in.Imm)]
				if !ok || cid < 0 || cid >= len(p.Classes) {
					continue
				}
				c := p.Classes[cid]
				tm, ok := c.Lookup(in.Name)
				if !ok {
					continue
				}
				site, target, cls = i, tm, c
				break
			}
			if site < 0 {
				break
			}
			b = expandGuardedCall(m, b, site, cls, target)
			rewritten++
		}
	}
	if rewritten > 0 {
		m.Renumber()
		m.RecomputePreds()
	}
	return rewritten
}

// expandGuardedCall splits b at the callvirt at index site and builds the
// guard diamond. Returns the continuation block.
func expandGuardedCall(m *ir.Method, b *ir.Block, site int, cls *ir.Class, target *ir.Method) *ir.Block {
	call := b.Instrs[site].Clone()
	cid := ir.Reg(m.NumRegs)
	want := ir.Reg(m.NumRegs + 1)
	ok := ir.Reg(m.NumRegs + 2)
	m.NumRegs += 3

	cont := m.NewBlock("")
	cont.Kind = b.Kind
	cont.Instrs = append(cont.Instrs, b.Instrs[site+1:]...)

	fast := m.NewBlock("")
	fast.Kind = b.Kind
	direct := call.Clone()
	direct.Op = ir.OpCall
	direct.Method = target
	direct.Name = ""
	fast.Append(direct)
	fast.Append(ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{cont}})

	slow := m.NewBlock("")
	slow.Kind = b.Kind
	slow.Append(call.Clone())
	slow.Append(ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{cont}})

	b.Instrs = b.Instrs[:site]
	b.Instrs = append(b.Instrs,
		ir.Instr{Op: ir.OpClassOf, Dst: cid, A: call.Args[0]},
		ir.Instr{Op: ir.OpConst, Dst: want, Imm: int64(cls.ID)},
		ir.Instr{Op: ir.OpCmpEQ, Dst: ok, A: cid, B: want},
		ir.Instr{Op: ir.OpBranch, A: ok, Targets: []*ir.Block{fast, slow}},
	)
	return cont
}
