package compile

import "instrsample/internal/ir"

// Optimize runs the baseline optimization pipeline on a method — the
// stand-in for Jalapeño's O2 level at which all experiment code is
// compiled (§4.1): local constant folding and copy propagation, dead-code
// elimination, and jump threading. Besides making the baseline honest,
// these passes give the compile-time measurements of Table 2 a realistic
// front half: the sampling transform runs *after* them, so only the late
// phases (liveness, layout) are doubled by code duplication.
//
// It returns the number of instructions removed or simplified.
func Optimize(m *ir.Method) int {
	changed := 0
	// To a fixpoint, bounded to keep compile times predictable.
	for round := 0; round < 4; round++ {
		n := foldConstants(m) + localCSE(m) + propagateCopies(m) +
			eliminateDeadCode(m) + threadJumps(m)
		changed += n
		if n == 0 {
			break
		}
	}
	// Loop analysis runs in the front half as well (inlining and layout
	// heuristics would consume it); it keeps the front/back compile-time
	// split representative of a real O2 pipeline.
	m.ComputeDominators()
	m.Backedges()
	m.RemoveUnreachable()
	return changed
}

// localCSE eliminates common pure subexpressions within a block: a
// repeated (op, a, b, imm) computation over unmodified operands becomes a
// register copy, which copy propagation then folds away.
func localCSE(m *ir.Method) int {
	type exprKey struct {
		op   ir.Op
		a, b ir.Reg
		imm  int64
	}
	changed := 0
	for _, blk := range m.Blocks {
		avail := make(map[exprKey]ir.Reg)
		invalidate := func(r ir.Reg) {
			for k, dst := range avail {
				if dst == r || k.a == r || k.b == r {
					delete(avail, k)
				}
			}
		}
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			cseable := isPure(in.Op) && in.Op != ir.OpMove
			if cseable {
				k := exprKey{op: in.Op, a: in.A, b: in.B, imm: in.Imm}
				if prev, ok := avail[k]; ok && prev != in.Dst {
					dst := in.Dst
					*in = ir.Instr{Op: ir.OpMove, Dst: dst, A: prev}
					changed++
					invalidate(dst)
					continue
				}
				d := in.Dst
				invalidate(d)
				// Self-referential expressions (acc = acc+x) are not
				// available afterwards: the def killed the operand.
				if k.a != d && k.b != d {
					avail[k] = d
				}
				continue
			}
			if d := in.Def(); d != ir.NoReg {
				invalidate(d)
			}
		}
	}
	return changed
}

// foldConstants evaluates arithmetic over registers whose values are
// known constants within a block (local value tracking only — no
// cross-block propagation, matching a quick O2 local pass).
func foldConstants(m *ir.Method) int {
	changed := 0
	for _, b := range m.Blocks {
		known := make(map[ir.Reg]int64)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpConst:
				known[in.Dst] = in.Imm
				continue
			case ir.OpMove:
				if v, ok := known[in.A]; ok {
					in.Op = ir.OpConst
					in.Imm = v
					in.A = 0
					known[in.Dst] = v
					changed++
					continue
				}
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
				ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
				ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE,
				ir.OpCmpGT, ir.OpCmpGE:
				va, okA := known[in.A]
				vb, okB := known[in.B]
				if okA && okB {
					if v, ok := evalBinop(in.Op, va, vb); ok {
						in.Op = ir.OpConst
						in.Imm = v
						in.A, in.B = 0, 0
						known[in.Dst] = v
						changed++
						continue
					}
				}
			case ir.OpNeg:
				if v, ok := known[in.A]; ok {
					in.Op = ir.OpConst
					in.Imm = -v
					known[in.Dst] = -v
					changed++
					continue
				}
			case ir.OpNot:
				if v, ok := known[in.A]; ok {
					in.Op = ir.OpConst
					in.Imm = ^v
					known[in.Dst] = ^v
					changed++
					continue
				}
			}
			// Anything else invalidates its destination.
			if d := in.Def(); d != ir.NoReg {
				delete(known, d)
			}
		}
	}
	return changed
}

func evalBinop(op ir.Op, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false // preserve the trap
		}
		return a / b, true
	case ir.OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		return a << (uint64(b) & 63), true
	case ir.OpShr:
		return a >> (uint64(b) & 63), true
	case ir.OpCmpEQ:
		return b2i(a == b), true
	case ir.OpCmpNE:
		return b2i(a != b), true
	case ir.OpCmpLT:
		return b2i(a < b), true
	case ir.OpCmpLE:
		return b2i(a <= b), true
	case ir.OpCmpGT:
		return b2i(a > b), true
	case ir.OpCmpGE:
		return b2i(a >= b), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// propagateCopies rewrites uses of move destinations to their sources
// within a block, when neither register is redefined in between.
func propagateCopies(m *ir.Method) int {
	changed := 0
	for _, b := range m.Blocks {
		copyOf := make(map[ir.Reg]ir.Reg)
		invalidate := func(r ir.Reg) {
			delete(copyOf, r)
			for d, s := range copyOf {
				if s == r {
					delete(copyOf, d)
				}
			}
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			// Rewrite uses.
			rewrite := func(r *ir.Reg) {
				if s, ok := copyOf[*r]; ok && s != *r {
					*r = s
					changed++
				}
			}
			switch in.Op {
			case ir.OpArrayStore:
				rewrite(&in.Dst) // array operand is a use
				rewrite(&in.A)
				rewrite(&in.B)
			default:
				rewrite(&in.A)
				rewrite(&in.B)
				for j := range in.Args {
					rewrite(&in.Args[j])
				}
				if in.Probe != nil && (in.Probe.Kind == ir.ProbeValue || in.Probe.Kind == ir.ProbeReceiver) {
					rewrite(&in.Probe.Reg)
				}
			}
			if in.Op == ir.OpMove && in.Dst != in.A {
				invalidate(in.Dst)
				copyOf[in.Dst] = in.A
				continue
			}
			if d := in.Def(); d != ir.NoReg {
				invalidate(d)
			}
		}
	}
	return changed
}

// eliminateDeadCode removes side-effect-free instructions whose results
// are never used (per-method liveness; conservative across calls, field
// and array operations, probes and terminators).
func eliminateDeadCode(m *ir.Method) int {
	lv := m.ComputeLiveness()
	changed := 0
	for _, b := range m.Blocks {
		// Walk backwards, tracking liveness within the block from the
		// block's live-out set.
		live := append([]uint64(nil), lv.LiveOut[b]...)
		dead := make([]bool, len(b.Instrs))
		var scratch []ir.Reg
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			d := in.Def()
			if isPure(in.Op) && d != ir.NoReg && !bitGet(live, d) {
				dead[i] = true
				changed++
				continue
			}
			if d != ir.NoReg {
				bitClear(live, d)
			}
			scratch = in.Uses(scratch[:0])
			for _, u := range scratch {
				bitSet(live, u)
			}
		}
		if changed > 0 {
			out := b.Instrs[:0]
			for i := range b.Instrs {
				if !dead[i] {
					out = append(out, b.Instrs[i])
				}
			}
			b.Instrs = out
		}
	}
	return changed
}

// isPure reports whether the op has no side effects beyond writing Dst.
func isPure(op ir.Op) bool {
	switch op {
	case ir.OpConst, ir.OpMove, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd,
		ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpNeg, ir.OpNot,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT,
		ir.OpCmpGE:
		return true
	// Div/Rem can trap; New/NewArray allocate observable objects; loads
	// can trap on null/bounds. All stay.
	default:
		return false
	}
}

// threadJumps retargets edges that point at empty forwarding blocks
// (a single unconditional jump) directly to their destinations.
func threadJumps(m *ir.Method) int {
	forward := make(map[*ir.Block]*ir.Block)
	for _, b := range m.Blocks {
		if len(b.Instrs) == 1 && b.Instrs[0].Op == ir.OpJump && b.Instrs[0].BackedgeMask == 0 {
			forward[b] = b.Instrs[0].Targets[0]
		}
	}
	resolve := func(b *ir.Block) *ir.Block {
		seen := 0
		for {
			next, ok := forward[b]
			if !ok || next == b || seen > len(forward) {
				return b
			}
			b = next
			seen++
		}
	}
	changed := 0
	for _, b := range m.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		for i, tgt := range t.Targets {
			if r := resolve(tgt); r != tgt {
				t.Targets[i] = r
				changed++
			}
		}
	}
	if changed > 0 {
		m.RecomputePreds()
	}
	return changed
}

func bitSet(s []uint64, r ir.Reg) {
	if int(r) >= 0 && int(r) < len(s)*64 {
		s[r/64] |= 1 << (uint(r) % 64)
	}
}

func bitClear(s []uint64, r ir.Reg) {
	if int(r) >= 0 && int(r) < len(s)*64 {
		s[r/64] &^= 1 << (uint(r) % 64)
	}
}

func bitGet(s []uint64, r ir.Reg) bool {
	if int(r) < 0 || int(r) >= len(s)*64 {
		return false
	}
	return s[r/64]&(1<<(uint(r)%64)) != 0
}
