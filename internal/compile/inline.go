package compile

import "instrsample/internal/ir"

// Inlining: §4.3 notes the framework's method-entry check overhead "would
// be reduced if more aggressive inlining were performed before
// instrumentation occurs, which is likely to be the case when used online
// in an adaptive system". This pass implements that aggressive static
// inlining: small statically-bound callees are expanded at their call
// sites before yieldpoints and instrumentation are inserted, so the
// inlined code needs no entry check, no entry yieldpoint and no call-edge
// probe of its own. The ablation-inlining experiment quantifies the
// effect.

// InlinePolicy bounds the inliner.
type InlinePolicy struct {
	// MaxCalleeInstrs bounds the size of an inlinable callee
	// (default 28).
	MaxCalleeInstrs int
	// MaxGrowth bounds the instructions a single caller may gain
	// (default 320).
	MaxGrowth int
}

func (p *InlinePolicy) defaults() {
	if p.MaxCalleeInstrs == 0 {
		p.MaxCalleeInstrs = 28
	}
	if p.MaxGrowth == 0 {
		p.MaxGrowth = 320
	}
}

// InlineProgram applies one inlining pass over every method and returns
// the number of call sites expanded. Only static calls (OpCall) to small
// non-recursive callees are inlined; virtual calls and spawns are left
// alone.
func InlineProgram(p *ir.Program, policy InlinePolicy) int {
	policy.defaults()
	total := 0
	for _, m := range p.Methods() {
		total += inlineMethod(m, policy)
	}
	return total
}

func inlineMethod(caller *ir.Method, policy InlinePolicy) int {
	grown := 0
	inlined := 0
	// Snapshot the block list: inlining appends new blocks whose call
	// sites (copied from callees) must not be re-processed in this pass.
	blocks := append([]*ir.Block(nil), caller.Blocks...)
	for _, b := range blocks {
		// Expanding a call splits the block; continue scanning the
		// continuation so later call sites in the same original block
		// are still considered.
		for {
			site := -1
			var callee *ir.Method
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpCall {
					continue
				}
				cl := in.Method
				if cl == caller || !inlinable(cl, policy) {
					continue
				}
				if grown+cl.NumInstrs() > policy.MaxGrowth {
					continue
				}
				site = i
				callee = cl
				break
			}
			if site < 0 {
				break
			}
			grown += callee.NumInstrs()
			b = expandCall(caller, b, site, callee)
			inlined++
		}
	}
	if inlined > 0 {
		caller.Renumber()
		caller.RecomputePreds()
	}
	return inlined
}

// inlinable reports whether the callee is small enough and structurally
// safe to expand (no self-recursion is checked by the caller loop; spawn
// targets stay out so thread roots remain real frames).
func inlinable(m *ir.Method, policy InlinePolicy) bool {
	if m.NumInstrs() > policy.MaxCalleeInstrs {
		return false
	}
	for _, b := range m.Blocks {
		for i := range b.Instrs {
			switch b.Instrs[i].Op {
			case ir.OpSpawn, ir.OpProbe, ir.OpCheckedProbe, ir.OpCheck,
				ir.OpLoopCheck, ir.OpYield:
				return false
			case ir.OpCall:
				// Depth-1: don't inline callees that themselves call
				// (keeps growth predictable and avoids cycles).
				return false
			}
		}
	}
	return true
}

// expandCall splices callee's body in place of the call at
// b.Instrs[site] and returns the continuation block holding the rest of
// b's original instructions.
func expandCall(caller *ir.Method, b *ir.Block, site int, callee *ir.Method) *ir.Block {
	call := b.Instrs[site].Clone()
	offset := ir.Reg(caller.NumRegs)
	caller.NumRegs += callee.NumRegs

	// Continuation block: everything after the call.
	cont := caller.NewBlock("")
	cont.Kind = b.Kind
	cont.Instrs = append(cont.Instrs, b.Instrs[site+1:]...)

	// Clone callee blocks with registers shifted by offset.
	twins := make(map[*ir.Block]*ir.Block, len(callee.Blocks))
	for _, cb := range callee.Blocks {
		nb := caller.NewBlock("")
		nb.Kind = b.Kind
		nb.Instrs = make([]ir.Instr, 0, len(cb.Instrs))
		for i := range cb.Instrs {
			in := cb.Instrs[i].Clone()
			shiftRegs(&in, offset)
			if in.Op == ir.OpReturn {
				// return v  =>  dst = v; jmp cont
				if call.Dst != ir.NoReg {
					if in.A != ir.NoReg {
						nb.Instrs = append(nb.Instrs, ir.Instr{Op: ir.OpMove, Dst: call.Dst, A: in.A})
					} else {
						nb.Instrs = append(nb.Instrs, ir.Instr{Op: ir.OpConst, Dst: call.Dst, Imm: 0})
					}
				}
				in = ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{cont}}
			}
			nb.Instrs = append(nb.Instrs, in)
		}
		twins[cb] = nb
	}
	for _, nb := range twins {
		if t := nb.Terminator(); t != nil {
			for i, tgt := range t.Targets {
				if c, ok := twins[tgt]; ok {
					t.Targets[i] = c
				}
			}
		}
	}

	// Rewrite the call block: argument moves, then jump into the body.
	b.Instrs = b.Instrs[:site]
	for j, arg := range call.Args {
		b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpMove, Dst: offset + ir.Reg(j), A: arg})
	}
	b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{twins[callee.Entry()]}})
	return cont
}

// shiftRegs adds offset to every register operand of the instruction.
func shiftRegs(in *ir.Instr, offset ir.Reg) {
	sh := func(r ir.Reg) ir.Reg {
		if r == ir.NoReg {
			return r
		}
		return r + offset
	}
	switch in.Op {
	case ir.OpNop, ir.OpIO, ir.OpYield, ir.OpJump, ir.OpCheck, ir.OpLoopCheck:
		return
	case ir.OpConst, ir.OpNew:
		in.Dst = sh(in.Dst)
	case ir.OpPrint:
		in.A = sh(in.A)
	case ir.OpBranch, ir.OpReturn:
		in.A = sh(in.A)
	case ir.OpArrayStore:
		in.Dst = sh(in.Dst)
		in.A = sh(in.A)
		in.B = sh(in.B)
	case ir.OpCall, ir.OpCallVirt, ir.OpSpawn:
		in.Dst = sh(in.Dst)
		for i := range in.Args {
			in.Args[i] = sh(in.Args[i])
		}
	default:
		in.Dst = sh(in.Dst)
		in.A = sh(in.A)
		in.B = sh(in.B)
	}
	if in.Probe != nil && (in.Probe.Kind == ir.ProbeValue || in.Probe.Kind == ir.ProbeReceiver) {
		in.Probe.Reg = sh(in.Probe.Reg)
	}
}
