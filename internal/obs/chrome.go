package obs

import (
	"encoding/json"
	"io"
	"strconv"

	"instrsample/internal/telemetry"
)

// Merged Chrome trace export: wall-clock service spans (pid 1) and the
// VM's cycle-domain events (pid 2) on one chrome://tracing timeline.
//
// The two clock domains meet through per-run alignment. The service
// records the wall-clock window [t0, t1] around v.Run() and the run's
// total cycle count C; VM event cycle c then maps to wall time
// t0 + c·(t1−t0)/C. The mapping is linear — it assumes cycles advance
// uniformly across the run, which is the same idealization the
// cycle-cost model itself makes — and exact at both endpoints, so VM
// events always land inside their vm-run span.

// pid assignments in the merged document.
const (
	chromePidService = 1
	chromePidVM      = 2
)

// chromeDoc is the JSON-object flavour of the trace-event container
// (same shape telemetry.WriteChromeTrace emits).
type chromeDoc struct {
	TraceEvents     []telemetry.ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string                  `json:"displayTimeUnit"`
	OtherData       map[string]any          `json:"otherData"`
}

// spanEvent converts one service span to a complete ("X") trace event.
// Timestamps shift to µs relative to baseNs so the document starts near
// zero (chrome://tracing renders absolute UnixNano poorly).
func spanEvent(s Span, baseNs int64) telemetry.ChromeEvent {
	ce := telemetry.ChromeEvent{
		Name: s.Stage.String(),
		Cat:  "service",
		Ph:   "X",
		Ts:   uint64((s.StartNs - baseNs) / 1e3),
		Pid:  chromePidService,
		Tid:  0,
	}
	args := map[string]any{
		"job":         s.Job,
		"duration_ns": s.EndNs - s.StartNs,
	}
	if s.Cause != "" {
		args["cause"] = s.Cause
	}
	ce.Args = args
	if s.Stage == StageTerminal {
		// Instant event: terminal has no extent.
		ce.Ph, ce.S = "i", "p"
		return ce
	}
	ce.Dur = uint64(s.EndNs-s.StartNs) / 1e3
	return ce
}

// WriteJobChromeTrace writes one job's merged trace: its service span
// chain, plus — when the run executed at ModeFull — the VM's events
// aligned to wall time. The document is Chrome trace-event JSON (object
// format) with span/VM drop accounting in otherData.
func WriteJobChromeTrace(w io.Writer, t *JobTrace) error {
	spans := t.Spans()
	var baseNs int64
	if len(spans) > 0 {
		baseNs = spans[0].StartNs
	}
	events := []telemetry.ChromeEvent{
		{Name: "process_name", Ph: "M", Pid: chromePidService,
			Args: map[string]any{"name": "isampd service"}},
		{Name: "thread_name", Ph: "M", Pid: chromePidService, Tid: 0,
			Args: map[string]any{"name": "job " + t.Job()}},
	}
	for _, s := range spans {
		events = append(events, spanEvent(s, baseNs))
	}
	other := map[string]any{
		"job":         t.Job(),
		"clockDomain": "wall-ns (service) + vm-cycles aligned per run",
		"spanCount":   len(spans),
	}
	if vmEvents, threads, vmTotal, vmDrops, startNs, endNs, cycles, attached := t.VM(); attached {
		events = append(events, telemetry.ChromeEvent{
			Name: "process_name", Ph: "M", Pid: chromePidVM,
			Args: map[string]any{"name": "instrsample vm"},
		})
		for tid := 0; tid < threads; tid++ {
			events = append(events, telemetry.ChromeEvent{
				Name: "thread_name", Ph: "M", Pid: chromePidVM, Tid: tid,
				Args: map[string]any{"name": "vm thread " + strconv.Itoa(tid)},
			})
		}
		for _, e := range vmEvents {
			events = append(events, e.Chrome(chromePidVM))
		}
		other["vmEventsTotal"] = vmTotal
		other["vmEventsDropped"] = vmDrops
		other["vmCycles"] = cycles
		other["vmWallNs"] = endNs - startNs
	}
	doc := chromeDoc{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       other,
	}
	return json.NewEncoder(w).Encode(doc)
}

// alignCycles returns the cycle→µs mapping for a run that executed
// cycles VM cycles across the wall window [startNs, endNs], emitting
// timestamps relative to baseNs like the service spans. Degenerate
// windows (zero cycles, or a window too fast for the wall clock to
// resolve) pin every event to the window start.
func alignCycles(startNs, endNs int64, cycles uint64, baseNs int64) func(uint64) uint64 {
	span := endNs - startNs
	if span < 0 {
		span = 0
	}
	return func(c uint64) uint64 {
		ns := startNs - baseNs
		if cycles > 0 {
			ns += int64(float64(c) * float64(span) / float64(cycles))
		}
		if ns < 0 {
			ns = 0
		}
		return uint64(ns) / 1e3
	}
}
