package obs

import (
	"sort"
	"sync/atomic"
)

// Span is one completed lifecycle stage of one job. Times are absolute
// wall-clock nanoseconds (UnixNano), so spans from different jobs — and
// the VM events aligned per run — share one timeline.
type Span struct {
	// Job is the job ID the span belongs to ("" for a request that was
	// never accepted).
	Job string `json:"job"`
	// Stage is the lifecycle stage.
	Stage Stage `json:"stage"`
	// StartNs and EndNs bound the span (UnixNano; EndNs == StartNs for
	// instant spans like StageTerminal).
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns"`
	// Cause carries the stage's cause link: for StageMemoFlight the ID
	// of the job owning the deduplicated flight, for StageTerminal the
	// terminal status.
	Cause string `json:"cause,omitempty"`
}

// Tracer is the daemon-wide span flight recorder: a fixed-capacity
// power-of-two ring that overwrites the oldest span once full, with
// exact drop accounting — the same discipline as the telemetry trace
// rings, adapted to many producers. HTTP handler goroutines and worker
// goroutines all record; a push is one atomic reservation plus one
// atomic pointer store, no locks. Snapshots (another goroutine reading
// while producers push) are race-free because slots hold atomic
// pointers to immutable spans.
type Tracer struct {
	slots []atomic.Pointer[Span]
	mask  uint64
	head  atomic.Uint64
}

// NewTracer returns a tracer retaining the most recent capacity spans
// (rounded up to a power of two; min 16 when non-positive).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 16
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &Tracer{slots: make([]atomic.Pointer[Span], c), mask: uint64(c) - 1}
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int { return len(t.slots) }

// Record pushes one completed span, overwriting the oldest retained
// span when the ring is full. Safe for concurrent use; nil tracers
// drop the span silently (the off path).
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	h := t.head.Add(1) - 1
	sp := s // private copy; slots only ever hold immutable spans
	t.slots[h&t.mask].Store(&sp)
}

// Total returns the number of spans ever recorded.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.head.Load()
}

// Drops returns the number of spans overwritten (exact: total minus
// capacity once the ring has wrapped).
func (t *Tracer) Drops() uint64 {
	if t == nil {
		return 0
	}
	if h, c := t.head.Load(), uint64(len(t.slots)); h > c {
		return h - c
	}
	return 0
}

// Snapshot returns the retained spans ordered by start time (ties by
// job, then stage). Under concurrent producers the snapshot is a
// consistent set of fully written spans — each slot read is one atomic
// pointer load — though which spans are "retained" is best-effort while
// pushes race the read.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	h := t.head.Load()
	n := uint64(len(t.slots))
	if h < n {
		n = h
	}
	out := make([]Span, 0, n)
	for i := range t.slots {
		if p := t.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNs != out[j].StartNs {
			return out[i].StartNs < out[j].StartNs
		}
		if out[i].Job != out[j].Job {
			return out[i].Job < out[j].Job
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}
