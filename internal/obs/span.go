package obs

import (
	"fmt"
	"sync"
	"time"

	"instrsample/internal/telemetry"
)

// Stage enumerates the job lifecycle stages in their canonical order.
// Not every job passes through every stage — a cache hit skips compile
// and vm-run, a memo dedup replaces them all with memo-flight, a job
// cancelled in the queue ends after queue-wait — but the stages a job
// does pass through appear in this order, contiguously.
type Stage uint8

const (
	// StageAccept covers request decoding: handler entry to spec parsed.
	StageAccept Stage = iota
	// StageValidate covers spec defaulting and validation.
	StageValidate
	// StageQueueWait covers enqueue to worker pickup (or to terminal,
	// for jobs cancelled while still queued).
	StageQueueWait
	// StageMemoFlight covers waiting on another job's in-flight
	// identical cell; the span's Cause is the owning job's ID.
	StageMemoFlight
	// StageCacheProbe covers the on-disk result cache lookup (and load,
	// when it hits).
	StageCacheProbe
	// StageRemoteProbe covers a fleet coordinator probing a peer's CAS
	// for an already-computed result before dispatching (fabric only).
	StageRemoteProbe
	// StageSteal covers the instant a drained worker claims a queued cell
	// from a loaded peer; its Cause names the move ("from→to").
	StageSteal
	// StageDispatch covers handing the cell to a fleet worker and waiting
	// for the remote run; its Cause names the worker (or "requeue:<w>"
	// when a prior worker was lost mid-job).
	StageDispatch
	// StageCompile covers program construction and compilation.
	StageCompile
	// StageVMRun covers VM execution.
	StageVMRun
	// StageExport covers result assembly and terminal-state resolution.
	StageExport
	// StageTerminal is the instant the job reached a terminal state; its
	// Cause is the terminal status. Zero duration by definition.
	StageTerminal

	numStages
)

var stageNames = [numStages]string{
	StageAccept:      "accept",
	StageValidate:    "validate",
	StageQueueWait:   "queue-wait",
	StageMemoFlight:  "memo-flight",
	StageCacheProbe:  "cache-probe",
	StageRemoteProbe: "remote-cache-probe",
	StageSteal:       "steal",
	StageDispatch:    "dispatch",
	StageCompile:     "compile",
	StageVMRun:       "vm-run",
	StageExport:      "export",
	StageTerminal:    "terminal",
}

// String returns the stage's wire name (used in ledger JSON, Chrome
// trace events and Prometheus metric names).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// MarshalText renders the stage name in JSON.
func (s Stage) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a stage name (ledger round-trips in the load
// harness).
func (s *Stage) UnmarshalText(b []byte) error {
	for i, n := range stageNames {
		if n == string(b) {
			*s = Stage(i)
			return nil
		}
	}
	return fmt.Errorf("unknown stage %q", b)
}

// LedgerRow is one stage's exact wall-clock share of a job.
type LedgerRow struct {
	// Stage names the lifecycle stage.
	Stage Stage `json:"stage"`
	// Ns is the stage's duration in nanoseconds.
	Ns int64 `json:"ns"`
	// Cause is the stage's cause link (memo-flight: owning job ID).
	Cause string `json:"cause,omitempty"`
}

// Ledger is a job's wall-clock attribution: where every nanosecond of
// its end-to-end latency went. The invariant — enforced by test, held
// by construction — is that the rows' durations sum to TotalNs exactly:
// stages are contiguous (each opens the instant the previous closes)
// and non-overlapping, so the sum telescopes to last-end minus
// first-start.
type Ledger struct {
	// Rows are the stages in execution order.
	Rows []LedgerRow `json:"rows"`
	// TotalNs is the end-to-end latency (accept start to terminal).
	TotalNs int64 `json:"total_ns"`
	// Status is the terminal status ("" while the job is live).
	Status string `json:"status,omitempty"`
}

// Sum returns the rows' duration total; the ledger invariant is
// Sum() == TotalNs for a finished job.
func (l *Ledger) Sum() int64 {
	var n int64
	for _, r := range l.Rows {
		n += r.Ns
	}
	return n
}

// Row returns the first row for the stage and whether one exists.
func (l *Ledger) Row(s Stage) (LedgerRow, bool) {
	for _, r := range l.Rows {
		if r.Stage == s {
			return r, true
		}
	}
	return LedgerRow{}, false
}

// JobTrace is one job's span chain. Exactly one stage is open at any
// moment; Begin closes it by opening the next, so the chain cannot have
// gaps or overlaps. Begin/Finish are called from the HTTP handler, the
// worker goroutine and the engine's hook path — never concurrently for
// a correctly sequenced job, but the mutex keeps a misuse (or a cancel
// racing a finish) memory-safe. All methods are nil-receiver-safe so
// the off mode costs callers one branch.
type JobTrace struct {
	tracer *Tracer
	now    func() time.Time

	mu       sync.Mutex
	job      string
	start    time.Time
	cur      Stage
	curCause string
	curStart time.Time
	// curStartNs is the chain's wall-clock cursor: anchored once at the
	// chain's first instant and advanced only by measured (monotonic)
	// stage durations. Spans take their endpoints from the cursor, never
	// from fresh UnixNano readings, so consecutive spans meet exactly —
	// wall/monotonic drift between readings cannot open ns-level gaps.
	curStartNs int64
	done       bool
	rows       []LedgerRow
	spans      []Span
	flushed    int
	status     string

	// ModeFull VM attachment: the run's cycle-domain events as a compact
	// value snapshot, timestamps already aligned to the chain's time
	// base. AttachVM snapshots eagerly and drops the recorder so nothing
	// here pins the run's compiled program: ring events hold *ir.Method
	// pointers, and retaining them for the job's lifetime would keep
	// every traced job's whole IR live — pure GC ballast at service
	// rates. The Chrome form (per-event args maps) is built only when a
	// trace export actually asks for it.
	vmEvents  []telemetry.NamedEvent
	vmThreads int
	vmTotal   uint64
	vmDrops   uint64
	vmStartNs int64
	vmEndNs   int64
	vmCycles  uint64
}

// SetJob names the chain once the job ID is allocated. Spans buffer in
// the chain and reach the shared tracer only after a name exists — a
// rejected request's chain is simply abandoned and records nothing in
// the ring, and every ring span carries its job ID (including the
// accept span, which closes before the ID is allocated).
func (t *JobTrace) SetJob(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.job = id
	t.flushLocked()
	t.mu.Unlock()
}

// flushLocked pushes buffered spans to the shared tracer, stamping each
// with the (now known) job ID.
func (t *JobTrace) flushLocked() {
	if t.job == "" {
		return
	}
	for ; t.flushed < len(t.spans); t.flushed++ {
		sp := t.spans[t.flushed]
		sp.Job = t.job
		t.spans[t.flushed] = sp
		t.tracer.Record(sp)
	}
}

// Begin closes the open stage and opens the next one at the same
// instant. cause carries the stage's cause link (memo-flight: owning
// job ID) and may be empty. Begin after Finish is ignored — a memo
// waiter unblocking after a cancel already resolved the job must not
// reopen the chain.
func (t *JobTrace) Begin(s Stage, cause string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	now := t.now()
	t.closeCurLocked(now)
	t.cur = s
	t.curCause = cause
	t.curStart = now
}

// closeCurLocked closes the open stage at now, appending its ledger row
// and buffering its span (flushed to the tracer once the job is named).
func (t *JobTrace) closeCurLocked(now time.Time) {
	ns := now.Sub(t.curStart).Nanoseconds()
	if ns < 0 {
		ns = 0 // a non-monotonic test clock must not break the sum invariant
	}
	t.rows = append(t.rows, LedgerRow{Stage: t.cur, Ns: ns, Cause: t.curCause})
	t.spans = append(t.spans, Span{
		Job:     t.job,
		Stage:   t.cur,
		StartNs: t.curStartNs,
		EndNs:   t.curStartNs + ns,
		Cause:   t.curCause,
	})
	t.curStartNs += ns
	t.flushLocked()
}

// Finish closes the chain: the open stage ends now, a zero-duration
// terminal span carrying the status is recorded, and later Begin/Finish
// calls are ignored (a cancel racing a natural completion resolves to
// whichever lands first, mirroring job.finish).
func (t *JobTrace) Finish(status string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	now := t.now()
	t.closeCurLocked(now)
	t.done = true
	t.status = status
	t.spans = append(t.spans, Span{
		Job:     t.job,
		Stage:   StageTerminal,
		StartNs: t.curStartNs,
		EndNs:   t.curStartNs,
		Cause:   status,
	})
	t.flushLocked()
}

// Done reports whether Finish has run.
func (t *JobTrace) Done() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// Ledger snapshots the attribution ledger. For a finished chain the
// rows are final and Sum() == TotalNs exactly; for a live one the open
// stage is reported up to now, so totals still reconcile.
func (t *JobTrace) Ledger() *Ledger {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	l := &Ledger{Rows: append([]LedgerRow(nil), t.rows...), Status: t.status}
	var end time.Time
	if t.done {
		// TotalNs must equal the row sum exactly; reconstruct the end
		// from the rows rather than re-reading the clock.
		var ns int64
		for _, r := range l.Rows {
			ns += r.Ns
		}
		l.TotalNs = ns
		return l
	}
	end = t.now()
	open := end.Sub(t.curStart).Nanoseconds()
	if open < 0 {
		open = 0
	}
	l.Rows = append(l.Rows, LedgerRow{Stage: t.cur, Ns: open, Cause: t.curCause})
	for _, r := range l.Rows {
		l.TotalNs += r.Ns
	}
	return l
}

// Spans returns the chain's recorded spans (closed stages plus, once
// finished, the terminal instant), in order. Used by the per-job Chrome
// export.
func (t *JobTrace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		out[i].Job = t.job
	}
	return out
}

// Job returns the chain's job ID.
func (t *JobTrace) Job() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.job
}

// WantVM reports whether the chain wants a per-run VM trace attached —
// true only for chains opened at ModeFull. The decision is latched at
// StartJobFull time by the service (which checks the mode once per
// run), not stored here; the service calls AttachVM only at full.
//
// AttachVM hands the chain the run's cycle-domain trace together with
// the wall-clock window it executed in; cycles align to wall time as
// startNs + c * (endNs-startNs)/cycles. Runs served from the memo or
// cache never executed here and attach nothing.
//
// The trace snapshots to value events here, once, and the recorder is
// not retained: the snapshot severs the ring's *ir.Method pointers so
// the run's compiled program can be collected with the run.
func (t *JobTrace) AttachVM(tr *telemetry.Trace, start, end time.Time, cycles uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	startNs, endNs := start.UnixNano(), end.UnixNano()
	// Event timestamps are relative to the chain's first instant, like
	// the service spans in the merged document.
	t.vmEvents = tr.NamedEvents(alignCycles(startNs, endNs, cycles, t.curAnchorLocked()))
	t.vmThreads = tr.Threads()
	t.vmTotal = 0
	for tid := 0; tid < tr.Threads(); tid++ {
		t.vmTotal += tr.Total(tid)
	}
	t.vmDrops = tr.TotalDrops()
	t.vmStartNs = startNs
	t.vmEndNs = endNs
	t.vmCycles = cycles
}

// curAnchorLocked returns the chain's first wall-clock instant — the
// merged document's time base. Callers hold t.mu.
func (t *JobTrace) curAnchorLocked() int64 {
	if len(t.spans) > 0 {
		return t.spans[0].StartNs
	}
	return t.start.UnixNano()
}

// VM returns the attached VM snapshot: value events aligned to the
// chain's time base, the recording thread count, and the drop/alignment
// accounting. attached is false when the run was not traced (the mode
// was not full, or the result came from the memo or cache).
func (t *JobTrace) VM() (events []telemetry.NamedEvent, threads int, total, drops uint64, startNs, endNs int64, cycles uint64, attached bool) {
	if t == nil {
		return nil, 0, 0, 0, 0, 0, 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.vmEvents, t.vmThreads, t.vmTotal, t.vmDrops, t.vmStartNs, t.vmEndNs, t.vmCycles, t.vmEndNs != 0
}
