package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic monotone clock; each Advance moves it.
type fakeClock struct {
	mu sync.Mutex
	at time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{at: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.at
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.at = c.at.Add(d)
	c.mu.Unlock()
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"off", ModeOff}, {"spans", ModeSpans}, {"full", ModeFull}} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("Mode(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseMode("verbose"); err == nil {
		t.Fatal("ParseMode accepted unknown mode")
	}
}

func TestNilStateIsOff(t *testing.T) {
	var s *State
	if s.Mode() != ModeOff {
		t.Fatalf("nil State mode = %v, want off", s.Mode())
	}
	if s.Tracer() != nil {
		t.Fatal("nil State returned a tracer")
	}
	if tr := s.StartJob(); tr != nil {
		t.Fatal("nil State started a job trace")
	}
}

func TestStartJobOffReturnsNilAndNilTraceIsSafe(t *testing.T) {
	s := NewState(Options{Mode: ModeOff})
	tr := s.StartJob()
	if tr != nil {
		t.Fatal("StartJob at ModeOff returned a trace")
	}
	// Every method must be a no-op on the nil trace.
	tr.SetJob("job-000001")
	tr.Begin(StageValidate, "")
	tr.Finish("done")
	if tr.Done() {
		t.Fatal("nil trace reports done")
	}
	if tr.Ledger() != nil {
		t.Fatal("nil trace produced a ledger")
	}
	if tr.Spans() != nil {
		t.Fatal("nil trace produced spans")
	}
}

func TestSetModeTogglesAtRuntime(t *testing.T) {
	s := NewState(Options{Mode: ModeOff})
	if s.StartJob() != nil {
		t.Fatal("off mode produced a trace")
	}
	s.SetMode(ModeSpans)
	if s.StartJob() == nil {
		t.Fatal("spans mode produced no trace")
	}
	s.SetMode(ModeOff)
	if s.StartJob() != nil {
		t.Fatal("toggle back to off still produced a trace")
	}
}

// TestLedgerSumInvariant is the core guarantee: per-stage durations sum
// to end-to-end latency exactly, with no rounding slack.
func TestLedgerSumInvariant(t *testing.T) {
	clock := newFakeClock()
	s := NewState(Options{Mode: ModeSpans, Now: clock.Now})
	tr := s.StartJob()
	tr.SetJob("job-000001")
	clock.Advance(17 * time.Microsecond)
	tr.Begin(StageValidate, "")
	clock.Advance(3 * time.Microsecond)
	tr.Begin(StageQueueWait, "")
	clock.Advance(1250 * time.Microsecond)
	tr.Begin(StageCacheProbe, "")
	clock.Advance(41 * time.Microsecond)
	tr.Begin(StageCompile, "")
	clock.Advance(503 * time.Microsecond)
	tr.Begin(StageVMRun, "")
	clock.Advance(9_777 * time.Microsecond)
	tr.Begin(StageExport, "")
	clock.Advance(29 * time.Microsecond)
	tr.Finish("done")

	l := tr.Ledger()
	if l == nil {
		t.Fatal("no ledger")
	}
	if got, want := l.Sum(), int64((17+3+1250+41+503+9777+29)*1000); got != want {
		t.Fatalf("ledger sum = %d, want %d", got, want)
	}
	if l.Sum() != l.TotalNs {
		t.Fatalf("ledger sum %d != total %d", l.Sum(), l.TotalNs)
	}
	if l.Status != "done" {
		t.Fatalf("ledger status = %q", l.Status)
	}
	wantOrder := []Stage{StageAccept, StageValidate, StageQueueWait,
		StageCacheProbe, StageCompile, StageVMRun, StageExport}
	if len(l.Rows) != len(wantOrder) {
		t.Fatalf("ledger rows = %d, want %d", len(l.Rows), len(wantOrder))
	}
	for i, st := range wantOrder {
		if l.Rows[i].Stage != st {
			t.Fatalf("row %d stage = %v, want %v", i, l.Rows[i].Stage, st)
		}
	}
}

// TestSpanChainGapFree checks contiguity: every span starts exactly
// where the previous one ended.
func TestSpanChainGapFree(t *testing.T) {
	clock := newFakeClock()
	s := NewState(Options{Mode: ModeSpans, Now: clock.Now})
	tr := s.StartJob()
	tr.SetJob("job-000002")
	for _, st := range []Stage{StageValidate, StageQueueWait, StageCompile, StageVMRun, StageExport} {
		clock.Advance(time.Duration(7+int(st)) * time.Microsecond)
		tr.Begin(st, "")
	}
	clock.Advance(5 * time.Microsecond)
	tr.Finish("done")

	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans")
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].StartNs != spans[i-1].EndNs {
			t.Fatalf("gap between span %d (%v end=%d) and %d (%v start=%d)",
				i-1, spans[i-1].Stage, spans[i-1].EndNs,
				i, spans[i].Stage, spans[i].StartNs)
		}
	}
	last := spans[len(spans)-1]
	if last.Stage != StageTerminal || last.Cause != "done" || last.StartNs != last.EndNs {
		t.Fatalf("bad terminal span %+v", last)
	}
}

func TestBeginAfterFinishIgnored(t *testing.T) {
	clock := newFakeClock()
	s := NewState(Options{Mode: ModeSpans, Now: clock.Now})
	tr := s.StartJob()
	tr.SetJob("job-000003")
	clock.Advance(time.Microsecond)
	tr.Finish("cancelled")
	before := tr.Ledger().Sum()
	clock.Advance(time.Second)
	tr.Begin(StageVMRun, "")
	tr.Finish("done")
	l := tr.Ledger()
	if l.Sum() != before || l.Status != "cancelled" {
		t.Fatalf("post-finish calls mutated the chain: sum %d→%d status %q",
			before, l.Sum(), l.Status)
	}
}

func TestMemoFlightCauseLink(t *testing.T) {
	clock := newFakeClock()
	s := NewState(Options{Mode: ModeSpans, Now: clock.Now})
	tr := s.StartJob()
	tr.SetJob("job-000005")
	clock.Advance(time.Microsecond)
	tr.Begin(StageMemoFlight, "job-000004")
	clock.Advance(time.Millisecond)
	tr.Finish("done")
	row, ok := tr.Ledger().Row(StageMemoFlight)
	if !ok || row.Cause != "job-000004" {
		t.Fatalf("memo-flight row = %+v ok=%v, want cause job-000004", row, ok)
	}
}

func TestLiveLedgerReconciles(t *testing.T) {
	clock := newFakeClock()
	s := NewState(Options{Mode: ModeSpans, Now: clock.Now})
	tr := s.StartJob()
	clock.Advance(10 * time.Microsecond)
	tr.Begin(StageQueueWait, "")
	clock.Advance(30 * time.Microsecond)
	l := tr.Ledger()
	if l.Sum() != l.TotalNs {
		t.Fatalf("live ledger sum %d != total %d", l.Sum(), l.TotalNs)
	}
	if l.TotalNs != 40_000 {
		t.Fatalf("live ledger total = %d, want 40000", l.TotalNs)
	}
	if l.Status != "" {
		t.Fatalf("live ledger has terminal status %q", l.Status)
	}
}

func TestStageTextRoundTrip(t *testing.T) {
	for st := StageAccept; st < numStages; st++ {
		b, err := st.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Stage
		if err := back.UnmarshalText(b); err != nil || back != st {
			t.Fatalf("round-trip %v -> %s -> %v (%v)", st, b, back, err)
		}
	}
	var s Stage
	if err := s.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("UnmarshalText accepted bogus stage")
	}
}

func TestTracerCapacityAndDrops(t *testing.T) {
	tr := NewTracer(10)
	if tr.Cap() != 16 {
		t.Fatalf("cap = %d, want 16 (rounded up)", tr.Cap())
	}
	for i := 0; i < 40; i++ {
		tr.Record(Span{Job: "j", Stage: StageAccept, StartNs: int64(i)})
	}
	if tr.Total() != 40 {
		t.Fatalf("total = %d, want 40", tr.Total())
	}
	if tr.Drops() != 24 {
		t.Fatalf("drops = %d, want exactly 40-16=24", tr.Drops())
	}
	snap := tr.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot = %d spans, want 16", len(snap))
	}
	// Overwrite-oldest: the retained spans are the newest 16.
	for i, s := range snap {
		if want := int64(24 + i); s.StartNs != want {
			t.Fatalf("snapshot[%d].StartNs = %d, want %d", i, s.StartNs, want)
		}
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Span{})
	if tr.Total() != 0 || tr.Drops() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer not inert")
	}
}

// TestTracerConcurrentRecord exercises the multi-producer path under the
// race detector: concurrent records plus snapshot reads must be clean,
// and drop accounting must stay exact.
func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(1 << 8)
	const producers, per = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Snapshot()
			}
		}
	}()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Record(Span{Job: "j", Stage: Stage(p % int(numStages)), StartNs: int64(i)})
			}
		}(p)
	}
	for len(stop) == 0 && tr.Total() < producers*per {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if tr.Total() != producers*per {
		t.Fatalf("total = %d, want %d", tr.Total(), producers*per)
	}
	if want := uint64(producers*per - tr.Cap()); tr.Drops() != want {
		t.Fatalf("drops = %d, want exactly %d", tr.Drops(), want)
	}
	if got := len(tr.Snapshot()); got != tr.Cap() {
		t.Fatalf("snapshot = %d spans, want %d", got, tr.Cap())
	}
}

func TestWriteJobChromeTrace(t *testing.T) {
	clock := newFakeClock()
	s := NewState(Options{Mode: ModeSpans, Now: clock.Now})
	tr := s.StartJob()
	tr.SetJob("job-000007")
	clock.Advance(5 * time.Microsecond)
	tr.Begin(StageVMRun, "")
	clock.Advance(100 * time.Microsecond)
	tr.Begin(StageExport, "")
	clock.Advance(2 * time.Microsecond)
	tr.Finish("done")

	var buf bytes.Buffer
	if err := WriteJobChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   uint64         `json:"ts"`
			Dur  uint64         `json:"dur"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	var sawVMRun, sawTerminal bool
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "X" && e.Name == "vm-run":
			sawVMRun = true
			if e.Ts != 5 || e.Dur != 100 {
				t.Fatalf("vm-run event ts=%d dur=%d, want ts=5 dur=100", e.Ts, e.Dur)
			}
			if e.Args["job"] != "job-000007" {
				t.Fatalf("vm-run job arg = %v", e.Args["job"])
			}
		case e.Ph == "i" && e.Name == "terminal":
			sawTerminal = true
			if e.Args["cause"] != "done" {
				t.Fatalf("terminal cause = %v", e.Args["cause"])
			}
		}
	}
	if !sawVMRun || !sawTerminal {
		t.Fatalf("missing events: vm-run=%v terminal=%v", sawVMRun, sawTerminal)
	}
	if doc.OtherData["job"] != "job-000007" {
		t.Fatalf("otherData job = %v", doc.OtherData["job"])
	}
}

func TestAlignCyclesEndpoints(t *testing.T) {
	// Window [1000ns, 101000ns], 100 cycles, base 0: cycle 0 → 1µs,
	// cycle 100 → 101µs, cycle 50 → 51µs.
	f := alignCycles(1000, 101000, 100, 0)
	if got := f(0); got != 1 {
		t.Fatalf("cycle 0 → %dµs, want 1", got)
	}
	if got := f(100); got != 101 {
		t.Fatalf("cycle 100 → %dµs, want 101", got)
	}
	if got := f(50); got != 51 {
		t.Fatalf("cycle 50 → %dµs, want 51", got)
	}
	// Degenerate: zero cycles pins to window start.
	g := alignCycles(5000, 5000, 0, 0)
	if got := g(7); got != 5 {
		t.Fatalf("degenerate cycle 7 → %dµs, want 5", got)
	}
}

// TestUnnamedChainRecordsNothing: a chain abandoned before SetJob (a
// rejected request) leaves no spans in the shared ring; naming the
// chain flushes everything buffered so far, stamped with the job ID.
func TestUnnamedChainRecordsNothing(t *testing.T) {
	clock := newFakeClock()
	s := NewState(Options{Mode: ModeSpans, Now: clock.Now})

	rejected := s.StartJob()
	clock.Advance(time.Microsecond)
	rejected.Begin(StageValidate, "")
	clock.Advance(time.Microsecond)
	// Abandoned: no SetJob, no Finish.
	if n := s.Tracer().Total(); n != 0 {
		t.Fatalf("rejected request recorded %d ring spans, want 0", n)
	}

	accepted := s.StartJob()
	clock.Advance(time.Microsecond)
	accepted.Begin(StageValidate, "")
	clock.Advance(time.Microsecond)
	accepted.SetJob("job-000009")
	if n := s.Tracer().Total(); n != 1 {
		t.Fatalf("ring spans after SetJob = %d, want 1 (the accept span)", n)
	}
	accepted.Begin(StageQueueWait, "")
	clock.Advance(time.Microsecond)
	accepted.Finish("done")
	for _, sp := range s.Tracer().Snapshot() {
		if sp.Job != "job-000009" {
			t.Fatalf("ring span %+v missing job id", sp)
		}
	}
	if n := s.Tracer().Total(); n != 4 {
		t.Fatalf("ring spans = %d, want 4 (accept, validate, queue-wait, terminal)", n)
	}
}
