// Package obs is the service path's observability layer: request-scoped
// span tracing, per-job wall-clock attribution, and the runtime toggle
// that keeps all of it cheap enough to leave on. It applies the paper's
// thesis one layer up from the VM — observation of the *daemon* must be
// togglable and near-free when off, exactly like the sampling framework
// it serves.
//
// Three pieces:
//
//   - Tracer (tracer.go): a lock-free, power-of-two, overwrite-oldest
//     span ring with exact drop accounting — the same flight-recorder
//     discipline as telemetry.Trace, but multi-producer (HTTP handlers
//     and worker goroutines all record) and wall-clocked.
//
//   - JobTrace (span.go): one job's contiguous span chain through the
//     lifecycle stages (accept → validate → queue-wait → memo-flight /
//     cache-probe / compile / vm-run → export → terminal). Stages are
//     closed by opening the next one, so the chain is gap-free by
//     construction and the attribution ledger's stage durations sum to
//     the end-to-end latency *exactly* — an invariant the service tests
//     enforce. Memo-flight spans carry a cause link to the job that owns
//     the deduplicated flight.
//
//   - Chrome export (chrome.go): a merged trace-event document placing
//     wall-clock service spans and the VM's cycle-domain events on one
//     chrome://tracing timeline, with the cycle clock aligned to wall
//     time per run.
//
// The State's Mode is runtime-togglable (off | spans | full) and read
// with a single atomic load on the request path; ModeOff records
// nothing and allocates nothing. See DESIGN.md §14 for the span model,
// the clock-alignment rule and the togglability contract.
package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Mode selects how much the service path observes about itself.
type Mode int32

const (
	// ModeOff records nothing: no span chain is allocated, jobs carry no
	// ledger. The only cost left on the request path is one atomic mode
	// load — the benchab A/B gate holds it within noise of a build with
	// the obs layer absent entirely.
	ModeOff Mode = iota
	// ModeSpans records the span chain and attribution ledger for every
	// accepted job (the daemon-side view).
	ModeSpans
	// ModeFull additionally attaches a telemetry.Trace to each executed
	// VM run and aligns its cycle clock to wall time, so the merged
	// export spans HTTP-to-opcode.
	ModeFull
)

// String returns the flag spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeSpans:
		return "spans"
	default:
		return "full"
	}
}

// ParseMode parses the -obs flag vocabulary.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return ModeOff, nil
	case "spans":
		return ModeSpans, nil
	case "full":
		return ModeFull, nil
	}
	return ModeOff, fmt.Errorf("unknown obs mode %q (want off, spans or full)", s)
}

// State is the daemon-wide observability state: the runtime-togglable
// mode and the shared span tracer. A nil *State behaves as a hard off —
// the service treats it as "the obs layer does not exist", which is the
// baseline leg of the benchab A/B comparison.
type State struct {
	mode   atomic.Int32
	tracer *Tracer
	now    func() time.Time
}

// Options configures NewState. Zero values get defaults.
type Options struct {
	// Mode is the initial mode (default ModeOff).
	Mode Mode
	// TracerCap is the span ring capacity, rounded up to a power of two
	// (default 1<<14 spans).
	TracerCap int
	// Now replaces time.Now for every span timestamp — the deterministic
	// clock hook tests use. It must be monotonic non-decreasing.
	Now func() time.Time
}

// NewState builds the daemon-wide observability state.
func NewState(o Options) *State {
	if o.TracerCap <= 0 {
		o.TracerCap = 1 << 14
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	s := &State{tracer: NewTracer(o.TracerCap), now: o.Now}
	s.mode.Store(int32(o.Mode))
	return s
}

// Mode returns the current mode. Safe for concurrent use; a nil State
// reports ModeOff.
func (s *State) Mode() Mode {
	if s == nil {
		return ModeOff
	}
	return Mode(s.mode.Load())
}

// SetMode switches the mode at runtime. Jobs already carrying a span
// chain finish it; jobs accepted after the switch follow the new mode.
func (s *State) SetMode(m Mode) { s.mode.Store(int32(m)) }

// Tracer returns the shared span ring (nil for a nil State).
func (s *State) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// StartJob opens a span chain for one request, beginning in StageAccept.
// It returns nil — record nothing, allocate nothing — when the mode is
// off, and callers must tolerate that: every JobTrace method is
// nil-safe.
func (s *State) StartJob() *JobTrace {
	if s.Mode() == ModeOff {
		return nil
	}
	t := &JobTrace{tracer: s.tracer, now: s.now}
	t.start = s.now()
	t.cur = StageAccept
	t.curStart = t.start
	t.curStartNs = t.start.UnixNano()
	return t
}
