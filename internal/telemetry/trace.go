package telemetry

import (
	"encoding/json"
	"io"
	"strconv"

	"instrsample/internal/ir"
	"instrsample/internal/vm"
)

// Trace is a ring-buffered execution trace recorder implementing
// vm.Observer. Each VM thread gets its own ring (created on first
// event), so recording never contends across threads and the hot path is
// a single array store. When a ring fills, the oldest events are
// overwritten and counted as drops — the recorder keeps the *end* of the
// run, which is what a flight recorder wants.
//
// Block transfers are filtered down to checking/duplicated boundary
// crossings (EvDupEnter, EvDupExit); intra-kind transfers are framework
// noise and would dominate the ring. A return executed inside duplicated
// code also emits EvDupExit, so duplicated-code spans are properly
// closed per frame.
//
// Export with WriteChromeTrace after the run completes (or from the VM
// goroutine): the rings are written without locks, so a snapshot raced
// against a running VM may see a torn newest entry.
type Trace struct {
	clock Clock
	cap   int
	rings []*ring
}

// NewTrace returns a recorder keeping the most recent capacity events
// per thread (rounded up to a power of two; min 16 when non-positive).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = 1 << 14
	}
	return &Trace{cap: nextPow2(capacity)}
}

// SetClock installs the timestamp source; call it right after vm.New,
// with the VM itself. Events recorded with no clock carry cycle 0.
func (tr *Trace) SetClock(c Clock) { tr.clock = c }

func (tr *Trace) now() uint64 {
	if tr.clock == nil {
		return 0
	}
	return tr.clock.Now()
}

func (tr *Trace) ringFor(tid int) *ring {
	for tid >= len(tr.rings) {
		tr.rings = append(tr.rings, newRing(tr.cap))
	}
	return tr.rings[tid]
}

func (tr *Trace) record(t *vm.Thread, kind EventKind, m *ir.Method, arg int64) {
	tr.ringFor(t.ID).push(Event{
		Cycle:  tr.now(),
		Kind:   kind,
		Thread: int32(t.ID),
		Method: m,
		Arg:    arg,
	})
}

// OnEnter implements vm.Observer.
func (tr *Trace) OnEnter(t *vm.Thread, f *vm.Frame) {
	tr.record(t, EvEnter, f.Method, 0)
}

// OnExit implements vm.Observer. A return executed in duplicated code
// closes the open duplicated-code span first.
func (tr *Trace) OnExit(t *vm.Thread, f *vm.Frame) {
	if f.Block != nil && f.Block.Kind == ir.KindDuplicated {
		tr.record(t, EvDupExit, f.Method, int64(f.Block.GID))
	}
	tr.record(t, EvExit, f.Method, 0)
}

// OnTransfer implements vm.Observer, recording only transfers that cross
// the checking/duplicated boundary.
func (tr *Trace) OnTransfer(t *vm.Thread, f *vm.Frame, in *ir.Instr, target int) {
	to := in.Targets[target]
	fromDup := f.Block != nil && f.Block.Kind == ir.KindDuplicated
	toDup := to.Kind == ir.KindDuplicated
	switch {
	case !fromDup && toDup:
		tr.record(t, EvDupEnter, f.Method, int64(to.GID))
	case fromDup && !toDup:
		tr.record(t, EvDupExit, f.Method, int64(f.Block.GID))
	}
}

// OnCheck implements vm.Observer.
func (tr *Trace) OnCheck(t *vm.Thread, f *vm.Frame, in *ir.Instr, fired bool) {
	kind := EvCheckPolled
	if fired {
		kind = EvCheckFired
	}
	tr.record(t, kind, f.Method, 0)
}

// OnProbe implements vm.Observer.
func (tr *Trace) OnProbe(t *vm.Thread, f *vm.Frame, p *ir.Probe) {
	tr.record(t, EvProbe, f.Method, ProbeArg(p))
}

// OnYield implements vm.Observer.
func (tr *Trace) OnYield(t *vm.Thread, f *vm.Frame) {
	tr.record(t, EvYield, f.Method, 0)
}

// Threads returns the number of threads that recorded at least one
// event (the length of the per-thread ring table).
func (tr *Trace) Threads() int { return len(tr.rings) }

// Events returns thread tid's retained events, oldest first. It returns
// nil for a thread with no ring.
func (tr *Trace) Events(tid int) []Event {
	if tid < 0 || tid >= len(tr.rings) {
		return nil
	}
	return tr.rings[tid].events()
}

// Total returns the number of events ever recorded on thread tid,
// including dropped ones.
func (tr *Trace) Total(tid int) uint64 {
	if tid < 0 || tid >= len(tr.rings) {
		return 0
	}
	return tr.rings[tid].total()
}

// Drops returns the number of events overwritten on thread tid.
func (tr *Trace) Drops(tid int) uint64 {
	if tid < 0 || tid >= len(tr.rings) {
		return 0
	}
	return tr.rings[tid].drops()
}

// TotalDrops sums Drops over all threads.
func (tr *Trace) TotalDrops() uint64 {
	var n uint64
	for tid := range tr.rings {
		n += tr.rings[tid].drops()
	}
	return n
}

// ChromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Exported so other packages (the service's merged job trace) can
// compose documents mixing VM events with their own spans.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object flavour of the trace-event container.
type chromeTrace struct {
	TraceEvents     []ChromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

// NamedEvent is one retained event in value form: the method rides by
// name, so a snapshot holds no pointers into the program and can
// outlive the run — retaining ring events directly would pin the run's
// whole compiled IR through their *ir.Method fields.
type NamedEvent struct {
	Ts     uint64
	Kind   EventKind
	Thread int32
	Method string
	Arg    int64
}

// NamedEvents returns every thread's retained events in value form,
// oldest first per thread, cycle timestamps mapped through ts (nil is
// identity: one cycle renders as 1µs).
func (tr *Trace) NamedEvents(ts func(cycle uint64) uint64) []NamedEvent {
	if ts == nil {
		ts = func(c uint64) uint64 { return c }
	}
	// Method names repeat heavily across a ring; intern per conversion so
	// the snapshot allocates one string per distinct method, not per event.
	names := map[*ir.Method]string{}
	name := func(m *ir.Method) string {
		if m == nil {
			return ""
		}
		n, ok := names[m]
		if !ok {
			n = m.FullName()
			names[m] = n
		}
		return n
	}
	var events []NamedEvent
	for _, r := range tr.rings {
		for _, e := range r.events() {
			events = append(events, NamedEvent{
				Ts:     ts(e.Cycle),
				Kind:   e.Kind,
				Thread: e.Thread,
				Method: name(e.Method),
				Arg:    e.Arg,
			})
		}
	}
	return events
}

// Chrome converts the event to its Chrome trace form under the given
// pid. Method enter/exit map to duration begin/end pairs;
// duplicated-code spans likewise; everything else becomes a
// thread-scoped instant event.
func (e NamedEvent) Chrome(pid int) ChromeEvent {
	ce := ChromeEvent{
		Name: e.Kind.String(),
		Ts:   e.Ts,
		Pid:  pid,
		Tid:  int(e.Thread),
	}
	method := e.Method
	switch e.Kind {
	case EvEnter:
		ce.Ph, ce.Cat, ce.Name = "B", "method", method
	case EvExit:
		ce.Ph, ce.Cat, ce.Name = "E", "method", method
	case EvDupEnter:
		ce.Ph, ce.Cat, ce.Name = "B", "dup", "duplicated-code"
		ce.Args = map[string]any{"block": e.Arg, "method": method}
	case EvDupExit:
		ce.Ph, ce.Cat, ce.Name = "E", "dup", "duplicated-code"
	case EvProbe:
		ce.Ph, ce.Cat, ce.S = "i", "probe", "t"
		ce.Args = map[string]any{
			"method": method,
			"owner":  ProbeOwner(e.Arg),
			"kind":   int(ProbeKind(e.Arg)),
		}
	case EvCheckFired, EvCheckPolled:
		ce.Ph, ce.Cat, ce.S = "i", "check", "t"
		ce.Args = map[string]any{"method": method}
	default: // EvYield
		ce.Ph, ce.Cat, ce.S = "i", "sched", "t"
		ce.Args = map[string]any{"method": method}
	}
	return ce
}

// WriteChromeTrace writes the retained events of every thread as Chrome
// trace-event JSON (object format, so metadata rides along). Timestamps
// are VM cycles presented as microseconds: one cycle renders as 1µs.
// Dropped events make the earliest retained "E" events unmatched; the
// viewers tolerate that, and per-thread drop counts are reported in
// otherData.
func (tr *Trace) WriteChromeTrace(w io.Writer) error {
	events := []ChromeEvent{
		{Name: "process_name", Ph: "M", Pid: 1,
			Args: map[string]any{"name": "instrsample vm"}},
	}
	drops := map[string]any{}
	for tid := range tr.rings {
		events = append(events, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": threadName(tid)},
		})
	}
	var total, dropped uint64
	for tid, r := range tr.rings {
		for _, e := range r.events() {
			events = append(events, chromeFor(e))
		}
		total += r.total()
		if d := r.drops(); d > 0 {
			drops[threadName(tid)] = d
			dropped += d
		}
	}
	out := chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"clockDomain":   "vm-cycles",
			"eventsTotal":   total,
			"eventsDropped": dropped,
			"dropsByThread": drops,
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ChromeEvents converts every thread's retained events to Chrome trace
// events under the given pid, including thread_name metadata rows. Each
// event's cycle timestamp is mapped through ts into the document's
// microsecond domain; a nil ts is identity (one cycle renders as 1µs,
// the WriteChromeTrace convention). This is the building block for
// merged documents that put VM events and wall-clock service spans on
// one timeline: the caller supplies a ts that aligns the cycle clock to
// wall time for the run the trace recorded.
func (tr *Trace) ChromeEvents(pid int, ts func(cycle uint64) uint64) []ChromeEvent {
	if ts == nil {
		ts = func(c uint64) uint64 { return c }
	}
	events := make([]ChromeEvent, 0, 64)
	for tid := range tr.rings {
		events = append(events, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": threadName(tid)},
		})
	}
	for _, r := range tr.rings {
		for _, e := range r.events() {
			ce := chromeFor(e)
			ce.Pid = pid
			ce.Ts = ts(ce.Ts)
			events = append(events, ce)
		}
	}
	return events
}

// chromeFor converts one recorded event (pid 1, cycle-as-µs timestamps).
func chromeFor(e Event) ChromeEvent {
	method := ""
	if e.Method != nil {
		method = e.Method.FullName()
	}
	return NamedEvent{Ts: e.Cycle, Kind: e.Kind, Thread: e.Thread, Method: method, Arg: e.Arg}.Chrome(1)
}

func threadName(tid int) string {
	if tid == 0 {
		return "thread 0 (main)"
	}
	return "thread " + strconv.Itoa(tid)
}
