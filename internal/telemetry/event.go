package telemetry

import (
	"fmt"

	"instrsample/internal/ir"
)

// EventKind enumerates the trace event vocabulary. The kinds mirror the
// vm.Observer hooks, with two refinements: checks are split by whether
// the sample condition fired, and block transfers are reduced to the
// interesting subset — crossings of the checking/duplicated code
// boundary (every other transfer is framework-invisible control flow).
type EventKind uint8

const (
	// EvEnter is a frame push (call, spawn or thread root).
	EvEnter EventKind = iota
	// EvExit is a frame pop (return).
	EvExit
	// EvCheckPolled is a sample check whose condition was false:
	// execution stayed in checking code.
	EvCheckPolled
	// EvCheckFired is a sample check whose condition was true: a sample
	// is being taken and execution transfers to duplicated code.
	EvCheckFired
	// EvDupEnter is a transfer from checking code into duplicated code.
	// Arg is the GID of the duplicated block entered.
	EvDupEnter
	// EvDupExit is a transfer from duplicated code back into checking
	// code, or a return executed inside duplicated code. Arg is the GID
	// of the duplicated block left.
	EvDupExit
	// EvProbe is an executed instrumentation probe. Arg packs the
	// probe's owner and kind (see ProbeArg).
	EvProbe
	// EvYield is an executed yieldpoint.
	EvYield

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	EvEnter:       "enter",
	EvExit:        "exit",
	EvCheckPolled: "check",
	EvCheckFired:  "sample",
	EvDupEnter:    "dup-enter",
	EvDupExit:     "dup-exit",
	EvProbe:       "probe",
	EvYield:       "yield",
}

// String returns the kind's short name, which is also the event name
// used in the Chrome trace export.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one recorded trace event. Events are small fixed-size values
// so the ring buffer is a flat allocation-free array.
type Event struct {
	// Cycle is the VM cycle count at the moment the event fired.
	Cycle uint64
	// Kind classifies the event.
	Kind EventKind
	// Thread is the ID of the VM thread the event occurred on.
	Thread int32
	// Method is the method executing when the event fired.
	Method *ir.Method
	// Arg carries per-kind detail: the block GID for EvDupEnter and
	// EvDupExit, the packed owner/kind for EvProbe (see ProbeArg), and
	// zero otherwise.
	Arg int64
}

// ProbeArg packs a probe's owner index and kind into an Event.Arg.
func ProbeArg(p *ir.Probe) int64 {
	return int64(p.Owner)<<16 | int64(p.Kind)&0xffff
}

// ProbeOwner unpacks the owner index from an EvProbe event's Arg.
func ProbeOwner(arg int64) int { return int(arg >> 16) }

// ProbeKind unpacks the probe kind from an EvProbe event's Arg.
func ProbeKind(arg int64) ir.ProbeKind { return ir.ProbeKind(arg & 0xffff) }
