package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName maps a registry name to the Prometheus exposition charset:
// the first character must match [a-zA-Z_:], the rest [a-zA-Z0-9_:], so
// every other byte (the registry's dots, slashes, ± and friends) becomes
// an underscore. The mapping is not injective; WritePrometheus suffixes
// collisions deterministically.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders every metric in the registry in the Prometheus
// text exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative `_bucket{le="..."}` series ending in
// le="+Inf", plus `_sum` and `_count`. Metrics are emitted in sorted
// registry-name order, so the output is deterministic for a quiescent
// registry. Registry names that sanitize to the same exposition name get
// a deterministic `_2`, `_3`, ... suffix in that sorted order.
//
// The snapshot is best-effort under concurrent updates (each value is an
// independent atomic load), but each histogram's `_count` is taken from
// its own cumulative bucket total, so every exposed histogram is
// internally consistent.
func WritePrometheus(w io.Writer, r *Registry) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	sort.Strings(names)
	metrics := make([]any, len(names))
	for i, n := range names {
		metrics[i] = r.m[n]
	}
	r.mu.Unlock()

	seen := make(map[string]int, len(names))
	var b strings.Builder
	for i := range names {
		pn := promName(names[i])
		seen[pn]++
		if n := seen[pn]; n > 1 {
			pn = fmt.Sprintf("%s_%d", pn, n)
		}
		switch v := metrics[i].(type) {
		case *Counter:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, v.Value())
		case *Gauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, v.Value())
		case *Histogram:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
			var cum uint64
			for _, bk := range v.Buckets() {
				cum += bk.N
				le := "+Inf"
				if !bk.Inf {
					le = fmt.Sprint(bk.Le)
				}
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, le, cum)
			}
			fmt.Fprintf(&b, "%s_sum %d\n", pn, v.Sum())
			fmt.Fprintf(&b, "%s_count %d\n", pn, cum)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
