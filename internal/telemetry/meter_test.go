package telemetry_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"instrsample/internal/compile"
	"instrsample/internal/ir"
	"instrsample/internal/profile"
	"instrsample/internal/telemetry"
	"instrsample/internal/vm"
)

func TestMeterMatchesVMStats(t *testing.T) {
	res := buildProgram(t, 64)
	reg := telemetry.NewRegistry()
	m := telemetry.NewMeter(reg, "counter/50", 2000, nil)
	out := run(t, res, m, m)
	m.Finish()

	s := out.Stats
	for _, tc := range []struct {
		name string
		want uint64
	}{
		{telemetry.MetricEntries, s.MethodEntries},
		{telemetry.MetricChecks, s.Checks},
		{telemetry.MetricSamples + ".counter/50", s.CheckFires},
		{telemetry.MetricProbes, s.Probes},
		{telemetry.MetricYields, s.Yields},
		{telemetry.MetricDupEntries, s.DupEntries},
	} {
		if got := reg.Counter(tc.name).Value(); got != tc.want {
			t.Errorf("%s = %d, want %d (vm stats)", tc.name, got, tc.want)
		}
	}
	if got := reg.Counter(telemetry.MetricExits).Value(); got == 0 {
		t.Error("no method exits counted")
	}
	if got := reg.Counter(telemetry.MetricOverhead).Value(); got == 0 {
		t.Error("no overhead cycles accounted")
	}
	dup := reg.Counter(telemetry.MetricDupCycles).Value()
	if dup == 0 || dup >= s.Cycles {
		t.Errorf("dup cycles = %d, want in (0, %d)", dup, s.Cycles)
	}
	ppm := reg.Gauge(telemetry.MetricDupResidency).Value()
	if ppm <= 0 || ppm >= 1_000_000 {
		t.Errorf("dup residency = %d ppm, want in (0, 1e6)", ppm)
	}
	if got := reg.Gauge(telemetry.MetricCycles).Value(); uint64(got) != s.Cycles {
		t.Errorf("final cycle gauge = %d, want %d", got, s.Cycles)
	}

	rows := m.Series().Rows
	if len(rows) < 2 {
		t.Fatalf("series captured %d rows, want several", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].At <= rows[i-1].At {
			t.Fatalf("series timestamps not increasing at row %d", i)
		}
	}
	var buf bytes.Buffer
	if err := m.Series().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.HasPrefix(header, "cycle,") || !strings.Contains(header, telemetry.MetricChecks) {
		t.Errorf("unexpected CSV header %q", header)
	}
}

// TestMeterDeterministic pins the cycle-domain clock: two identical runs
// produce byte-identical series.
func TestMeterDeterministic(t *testing.T) {
	series := func() *telemetry.Series {
		res := buildProgram(t, 64)
		reg := telemetry.NewRegistry()
		m := telemetry.NewMeter(reg, "counter/50", 2000, nil)
		run(t, res, m, m)
		m.Finish()
		return m.Series()
	}
	a, b := series(), series()
	if !reflect.DeepEqual(a, b) {
		t.Error("two identical runs produced different series")
	}
}

func TestConvergenceSnapshotsProfiles(t *testing.T) {
	res := buildProgram(t, 256)
	// Discover the run length, then snapshot at an interval that yields
	// a handful of points.
	probe := run(t, res, nil)
	interval := probe.Stats.Cycles / 8

	build := func() []telemetry.ConvergencePoint {
		res := buildProgram(t, 256)
		src := func() []*profile.Profile {
			out := make([]*profile.Profile, len(res.Runtimes))
			for i, rt := range res.Runtimes {
				out[i] = rt.Profile()
			}
			return out
		}
		conv := telemetry.NewConvergence(interval, 0, src)
		run(t, res, conv, conv)
		return conv.Points()
	}

	pts := build()
	if len(pts) < 3 {
		t.Fatalf("got %d convergence points, want several", len(pts))
	}
	for i, pt := range pts {
		if len(pt.Profiles) != 1 {
			t.Fatalf("point %d has %d profiles, want 1", i, len(pt.Profiles))
		}
		if i > 0 {
			if pt.Cycle <= pts[i-1].Cycle {
				t.Fatalf("cycles not increasing at point %d", i)
			}
			if pt.Profiles[0].Total() < pts[i-1].Profiles[0].Total() {
				t.Fatalf("sample totals shrank at point %d", i)
			}
		}
	}
	// Clones must be snapshots, not aliases of the live profile.
	last := pts[len(pts)-1].Profiles[0]
	if last.Total() == 0 {
		t.Fatal("final snapshot is empty")
	}

	// Profiles carry Labeler funcs, which DeepEqual can't compare across
	// runs — compare cycle stamps and profile contents semantically.
	again := build()
	if len(again) != len(pts) {
		t.Fatalf("reruns disagree on point count: %d vs %d", len(pts), len(again))
	}
	for i := range pts {
		a, b := pts[i], again[i]
		if a.Cycle != b.Cycle || a.Profiles[0].Total() != b.Profiles[0].Total() ||
			profile.Overlap(a.Profiles[0], b.Profiles[0]) != 100 {
			t.Fatalf("reruns diverged at point %d (cycle %d vs %d)", i, a.Cycle, b.Cycle)
		}
	}
}

func TestConvergenceMaxSnapshots(t *testing.T) {
	res := buildProgram(t, 256)
	src := func() []*profile.Profile { return nil }
	conv := telemetry.NewConvergence(100, 5, src)
	run(t, res, conv, conv)
	if got := len(conv.Points()); got != 5 {
		t.Errorf("recorded %d points with max 5", got)
	}
}

// TestRecordFusion checks the post-run fusion-coverage path: a fused
// run's FusionStats lands in the registry with the fraction gauge in
// ppm and one counter per superinstruction kind, and an all-zero record
// (fusion off or observer-degraded) writes nothing.
func TestRecordFusion(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := telemetry.NewMeter(reg, "counter/50", 0, nil)

	m.RecordFusion(vm.FusionStats{}, 1000)
	if got := reg.Counter(telemetry.MetricFusionInstrs).Value(); got != 0 {
		t.Fatalf("zero stats recorded %d fused-tier instrs", got)
	}

	fs := vm.FusionStats{
		Instrs:     800,
		Fused:      500,
		Dispatches: 550,
		ByKind:     map[string]uint64{"const+add": 200, "cmplt+br": 50},
	}
	m.RecordFusion(fs, 1000)
	if got := reg.Counter(telemetry.MetricFusionInstrs).Value(); got != 800 {
		t.Errorf("%s = %d, want 800", telemetry.MetricFusionInstrs, got)
	}
	if got := reg.Counter(telemetry.MetricFusionFused).Value(); got != 500 {
		t.Errorf("%s = %d, want 500", telemetry.MetricFusionFused, got)
	}
	if got := reg.Counter(telemetry.MetricFusionDispatches).Value(); got != 550 {
		t.Errorf("%s = %d, want 550", telemetry.MetricFusionDispatches, got)
	}
	if got := reg.Gauge(telemetry.MetricFusionFraction).Value(); got != 500_000 {
		t.Errorf("%s = %d, want 500000", telemetry.MetricFusionFraction, got)
	}
	if got := reg.Counter(telemetry.MetricFusionByKind + ".const+add").Value(); got != 200 {
		t.Errorf("kind counter const+add = %d, want 200", got)
	}
	if got := reg.Counter(telemetry.MetricFusionByKind + ".cmplt+br").Value(); got != 50 {
		t.Errorf("kind counter cmplt+br = %d, want 50", got)
	}
}

// TestRecordFusionFromRun wires a real fused run end to end: run
// observer-free, then publish FusionStats; the fraction gauge must be
// positive for the compress-style workload the fused tier targets.
func TestRecordFusionFromRun(t *testing.T) {
	prog := ir.RandomProgram(3, ir.RandomProgramConfig{})
	res, err := compile.Compile(prog, compile.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	machine := vm.New(res.Prog, vm.Config{Handlers: res.Handlers, MaxCycles: 1 << 33})
	if _, err := machine.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	reg := telemetry.NewRegistry()
	m := telemetry.NewMeter(reg, "none", 0, nil)
	m.RecordFusion(machine.FusionStats(), machine.Stats().Instrs)
	if machine.FusionStats().Instrs > 0 &&
		reg.Counter(telemetry.MetricFusionInstrs).Value() == 0 {
		t.Fatal("fused run recorded no fusion coverage")
	}
}
