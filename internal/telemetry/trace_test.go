package telemetry_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"instrsample/internal/oracle"
	"instrsample/internal/telemetry"
	"instrsample/internal/vm"
)

// chromeDoc mirrors the subset of the Chrome trace-event object format
// the tests validate.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   *uint64        `json:"ts"`
		Pid  *int           `json:"pid"`
		Tid  *int           `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

// decodeChrome unmarshals and structurally validates an export: every
// event needs a name, a legal phase, and (for non-metadata phases) a
// timestamp and thread.
func decodeChrome(t *testing.T, data []byte) *chromeDoc {
	t.Helper()
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export has no traceEvents")
	}
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			t.Fatalf("traceEvents[%d] has no name", i)
		}
		switch e.Ph {
		case "B", "E", "i":
			if e.Ts == nil || e.Pid == nil || e.Tid == nil {
				t.Fatalf("traceEvents[%d] (%s %q) missing ts/pid/tid", i, e.Ph, e.Name)
			}
		case "M":
		default:
			t.Fatalf("traceEvents[%d] has unknown phase %q", i, e.Ph)
		}
	}
	return &doc
}

func TestTraceRecordsAndExports(t *testing.T) {
	res := buildProgram(t, 64)
	tr := telemetry.NewTrace(1 << 16)
	out := run(t, res, tr, tr)

	if tr.Threads() == 0 || tr.Total(0) == 0 {
		t.Fatal("trace recorded no events")
	}
	if tr.TotalDrops() != 0 {
		t.Fatalf("oversized ring dropped %d events", tr.TotalDrops())
	}

	// The event stream must cover the full vocabulary and agree with the
	// run's own counters where they correspond one-to-one.
	var byKind [8]uint64
	events := tr.Events(0)
	for _, e := range events {
		byKind[e.Kind]++
	}
	for _, k := range []telemetry.EventKind{
		telemetry.EvEnter, telemetry.EvExit, telemetry.EvCheckPolled,
		telemetry.EvCheckFired, telemetry.EvDupEnter, telemetry.EvDupExit,
		telemetry.EvProbe, telemetry.EvYield,
	} {
		if byKind[k] == 0 {
			t.Errorf("no %s events recorded", k)
		}
	}
	s := out.Stats
	if got := byKind[telemetry.EvCheckPolled] + byKind[telemetry.EvCheckFired]; got != s.Checks {
		t.Errorf("check events = %d, Stats.Checks = %d", got, s.Checks)
	}
	if byKind[telemetry.EvCheckFired] != s.CheckFires {
		t.Errorf("sample events = %d, Stats.CheckFires = %d", byKind[telemetry.EvCheckFired], s.CheckFires)
	}
	if byKind[telemetry.EvYield] != s.Yields {
		t.Errorf("yield events = %d, Stats.Yields = %d", byKind[telemetry.EvYield], s.Yields)
	}
	if byKind[telemetry.EvDupEnter] != s.DupEntries {
		t.Errorf("dup-enter events = %d, Stats.DupEntries = %d", byKind[telemetry.EvDupEnter], s.DupEntries)
	}
	if byKind[telemetry.EvDupEnter] != byKind[telemetry.EvDupExit] {
		t.Errorf("dup spans unbalanced: %d enters, %d exits",
			byKind[telemetry.EvDupEnter], byKind[telemetry.EvDupExit])
	}

	// Timestamps are cycle-domain and non-decreasing within a thread.
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			t.Fatalf("timestamps went backwards at event %d: %d < %d",
				i, events[i].Cycle, events[i-1].Cycle)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	doc := decodeChrome(t, buf.Bytes())
	if doc.OtherData["clockDomain"] != "vm-cycles" {
		t.Errorf("otherData.clockDomain = %v, want vm-cycles", doc.OtherData["clockDomain"])
	}
	if doc.OtherData["eventsDropped"] != float64(0) {
		t.Errorf("otherData.eventsDropped = %v, want 0", doc.OtherData["eventsDropped"])
	}
}

// TestTraceWraparound pins the flight-recorder contract: a full ring
// overwrites oldest events, drop accounting is exact, the retained
// window is exactly the tail of the unbounded stream, and the export is
// still valid Chrome trace JSON.
func TestTraceWraparound(t *testing.T) {
	res := buildProgram(t, 64)
	const smallCap = 64 // power of two: used exactly

	big := telemetry.NewTrace(1 << 20)
	run(t, res, big, big)
	small := telemetry.NewTrace(smallCap)
	run(t, res, small, small)

	if big.TotalDrops() != 0 {
		t.Fatalf("big ring dropped %d events; test needs the full stream", big.TotalDrops())
	}
	full := big.Events(0)
	if uint64(len(full)) != big.Total(0) {
		t.Fatalf("big ring retained %d of %d events", len(full), big.Total(0))
	}
	if small.Total(0) != big.Total(0) {
		t.Fatalf("runs diverged: small saw %d events, big saw %d", small.Total(0), big.Total(0))
	}
	if big.Total(0) <= smallCap {
		t.Fatalf("program too small: only %d events, need > %d for wraparound", big.Total(0), smallCap)
	}

	wantDrops := big.Total(0) - smallCap
	if got := small.Drops(0); got != wantDrops {
		t.Fatalf("Drops(0) = %d, want exactly %d", got, wantDrops)
	}
	if got := small.TotalDrops(); got != wantDrops {
		t.Fatalf("TotalDrops() = %d, want %d", got, wantDrops)
	}
	retained := small.Events(0)
	if len(retained) != smallCap {
		t.Fatalf("retained %d events, want %d", len(retained), smallCap)
	}
	if !reflect.DeepEqual(retained, full[len(full)-smallCap:]) {
		t.Fatal("retained window is not the tail of the full event stream")
	}

	var buf bytes.Buffer
	if err := small.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	doc := decodeChrome(t, buf.Bytes())
	if got := doc.OtherData["eventsDropped"]; got != float64(wantDrops) {
		t.Errorf("otherData.eventsDropped = %v, want %d", got, wantDrops)
	}
}

// TestOracleComposesWithTrace proves -verify and -trace stack: running
// the invariant oracle behind a MultiObserver with a trace recorder
// leaves the oracle's verdict and event count unchanged.
func TestOracleComposesWithTrace(t *testing.T) {
	res := buildProgram(t, 64)

	alone := oracle.New()
	outAlone := run(t, res, alone)
	if err := alone.Finish(outAlone.Stats); err != nil {
		t.Fatalf("oracle alone: %v", err)
	}

	composed := oracle.New()
	tr := telemetry.NewTrace(1 << 12)
	outBoth := run(t, res, vm.CombineObservers(composed, tr), tr)
	if err := composed.Finish(outBoth.Stats); err != nil {
		t.Fatalf("oracle composed with trace: %v", err)
	}

	if alone.Events() != composed.Events() {
		t.Errorf("oracle events changed under composition: %d vs %d",
			alone.Events(), composed.Events())
	}
	if alone.ExpectedPropertyViolations() != composed.ExpectedPropertyViolations() {
		t.Errorf("expected-violation count changed under composition: %d vs %d",
			alone.ExpectedPropertyViolations(), composed.ExpectedPropertyViolations())
	}
	if !reflect.DeepEqual(outAlone, outBoth) {
		t.Error("run result changed when the trace recorder was added")
	}
	if tr.Total(0) == 0 {
		t.Error("composed trace recorded nothing")
	}
}
