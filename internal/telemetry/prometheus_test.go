package telemetry

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promTypeLine / promSampleLine are the two legal line shapes of the text
// exposition format as this package emits it.
var (
	promTypeLine   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	promSampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9]+$`)
)

func promDump(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String()
}

// TestPrometheusFormat validates every emitted line against the
// exposition grammar and spot-checks the three metric kinds.
func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs.completed.total").Add(7)
	r.Gauge("queue.depth").Set(-3)
	h := r.Histogram("job.duration_ms", []uint64{1, 10, 100})
	h.Observe(5)
	h.Observe(5)
	h.Observe(5000)

	out := promDump(t, r)
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !promTypeLine.MatchString(line) && !promSampleLine.MatchString(line) {
			t.Errorf("line violates exposition format: %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE jobs_completed_total counter\njobs_completed_total 7\n",
		"# TYPE queue_depth gauge\nqueue_depth -3\n",
		"# TYPE job_duration_ms histogram\n",
		`job_duration_ms_bucket{le="1"} 0` + "\n",
		`job_duration_ms_bucket{le="10"} 2` + "\n",
		`job_duration_ms_bucket{le="100"} 2` + "\n",
		`job_duration_ms_bucket{le="+Inf"} 3` + "\n",
		"job_duration_ms_sum 5010\n",
		"job_duration_ms_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n--- got ---\n%s", want, out)
		}
	}
}

// TestPrometheusHistogramCumulative: buckets must be monotonically
// non-decreasing and _count must equal the +Inf bucket.
func TestPrometheusHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", ExpBuckets(1, 8))
	for v := uint64(1); v < 600; v += 7 {
		h.Observe(v)
	}
	out := promDump(t, r)
	bucketRe := regexp.MustCompile(`^d_bucket\{le="([^"]+)"\} ([0-9]+)$`)
	prev := int64(-1)
	var inf int64
	for _, line := range strings.Split(out, "\n") {
		m := bucketRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		n, _ := strconv.ParseInt(m[2], 10, 64)
		if n < prev {
			t.Errorf("bucket le=%s count %d < previous %d (not cumulative)", m[1], n, prev)
		}
		prev = n
		if m[1] == "+Inf" {
			inf = n
		}
	}
	if !strings.Contains(out, "d_count "+strconv.FormatInt(inf, 10)+"\n") {
		t.Errorf("_count does not match +Inf bucket %d:\n%s", inf, out)
	}
}

// TestPrometheusNameSanitization: registry names with exposition-illegal
// characters are mapped to legal ones, and collisions get deterministic
// suffixes.
func TestPrometheusNameSanitization(t *testing.T) {
	if got := promName("vm.samples.counter/100"); got != "vm_samples_counter_100" {
		t.Errorf("promName = %q", got)
	}
	if got := promName("9lives"); got != "_lives" {
		t.Errorf("promName leading digit = %q", got)
	}
	if got := promName(""); got != "_" {
		t.Errorf("promName empty = %q", got)
	}

	r := NewRegistry()
	r.Counter("a.b").Inc()
	r.Counter("a/b").Add(2)
	out := promDump(t, r)
	if !strings.Contains(out, "a_b 1\n") || !strings.Contains(out, "a_b_2 2\n") {
		t.Errorf("collision not suffixed deterministically:\n%s", out)
	}
}

// TestPrometheusDeterministic: two renders of a quiescent registry are
// byte-identical.
func TestPrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z", "a", "m.q", "m.p"} {
		r.Counter(n).Inc()
	}
	r.Histogram("h", ExpBuckets(1, 4)).Observe(3)
	if a, b := promDump(t, r), promDump(t, r); a != b {
		t.Errorf("renders differ:\n%s\n---\n%s", a, b)
	}
}

// TestPrometheusEmptyRegistry: a registry with no metrics renders as an
// empty (but valid) exposition body — no stray newlines, no panic.
func TestPrometheusEmptyRegistry(t *testing.T) {
	if out := promDump(t, NewRegistry()); out != "" {
		t.Errorf("empty registry rendered %q, want empty body", out)
	}
}

// TestPrometheusZeroObservationHistogram: a registered histogram that was
// never observed must still emit its full, internally consistent series —
// every bucket 0, _sum 0, _count 0 — because scrapers treat a missing
// series as a target change, not a zero.
func TestPrometheusZeroObservationHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("idle.duration_ms", []uint64{1, 10})
	out := promDump(t, r)
	for _, want := range []string{
		"# TYPE idle_duration_ms histogram\n",
		`idle_duration_ms_bucket{le="1"} 0` + "\n",
		`idle_duration_ms_bucket{le="10"} 0` + "\n",
		`idle_duration_ms_bucket{le="+Inf"} 0` + "\n",
		"idle_duration_ms_sum 0\n",
		"idle_duration_ms_count 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n--- got ---\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !promTypeLine.MatchString(line) && !promSampleLine.MatchString(line) {
			t.Errorf("line violates exposition format: %q", line)
		}
	}
}

// TestPrometheusHostileNames: registry names containing quotes, newlines,
// braces and spaces — bytes that would corrupt the line-oriented
// exposition or its label syntax — must sanitize to legal metric names,
// and every emitted line must still match the exposition grammar.
func TestPrometheusHostileNames(t *testing.T) {
	r := NewRegistry()
	hostile := []string{
		`jobs"quoted"`,
		"line\nbreak",
		`label{le="1"}`,
		"with space",
		"tab\tname",
		`back\slash`,
	}
	for i, n := range hostile {
		r.Counter(n).Add(uint64(i + 1))
	}
	out := promDump(t, r)
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	for _, line := range lines {
		if !promTypeLine.MatchString(line) && !promSampleLine.MatchString(line) {
			t.Errorf("hostile name leaked into exposition: %q", line)
		}
	}
	// 2 lines (TYPE + sample) per metric; a raw newline in a name would
	// change the line count.
	if len(lines) != 2*len(hostile) {
		t.Errorf("got %d lines, want %d:\n%s", len(lines), 2*len(hostile), out)
	}
}
