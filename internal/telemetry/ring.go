package telemetry

import "sync/atomic"

// ring is a fixed-capacity overwrite-oldest event buffer — flight
// recorder semantics. The capacity is a power of two so positions reduce
// to a mask. head is the monotone count of events ever pushed; the
// retained window is the last min(head, cap) events, and everything
// before it has been dropped (overwritten).
//
// Writes are single-producer (the VM interpreter loop runs hooks on one
// goroutine); the atomic head publishes each write so concurrent readers
// (a snapshot taken from another goroutine) see a consistent count. The
// hot path is a store and an atomic add — no locks, no allocation.
type ring struct {
	buf  []Event
	mask uint64
	head atomic.Uint64
}

func newRing(capacity int) *ring {
	c := nextPow2(capacity)
	return &ring{buf: make([]Event, c), mask: uint64(c) - 1}
}

// nextPow2 rounds n up to a power of two, minimum 1.
func nextPow2(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// push appends an event, overwriting the oldest retained event when the
// ring is full.
func (r *ring) push(e Event) {
	h := r.head.Load()
	r.buf[h&r.mask] = e
	r.head.Store(h + 1)
}

// total returns the number of events ever pushed.
func (r *ring) total() uint64 { return r.head.Load() }

// drops returns the number of events that have been overwritten.
func (r *ring) drops() uint64 {
	if h, c := r.head.Load(), uint64(len(r.buf)); h > c {
		return h - c
	}
	return 0
}

// events returns the retained window, oldest first.
func (r *ring) events() []Event {
	h := r.head.Load()
	c := uint64(len(r.buf))
	if h <= c {
		return append([]Event(nil), r.buf[:h]...)
	}
	out := make([]Event, 0, c)
	for i := h - c; i < h; i++ {
		out = append(out, r.buf[i&r.mask])
	}
	return out
}
