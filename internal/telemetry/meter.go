package telemetry

import (
	"instrsample/internal/ir"
	"instrsample/internal/vm"
)

// Metric names written by the Meter. Exported so CLIs, tests and docs
// spell them once.
const (
	MetricCycles       = "vm.cycles"              // gauge: cycles at last capture
	MetricEntries      = "vm.method.entries"      // counter: frame pushes
	MetricExits        = "vm.method.exits"        // counter: frame pops
	MetricChecks       = "vm.checks"              // counter: executed sample checks
	MetricSamples      = "vm.samples"             // counter, suffixed ".<trigger>": fired checks
	MetricProbes       = "vm.probes"              // counter: executed probes
	MetricYields       = "vm.yields"              // counter: executed yieldpoints
	MetricDupEntries   = "vm.dup.entries"         // counter: checking→duplicated transfers
	MetricDupCycles    = "vm.dup.cycles"          // counter: cycles spent in duplicated code
	MetricDupResidency = "vm.dup.residency_ppm"   // gauge: dup cycles per million cycles
	MetricOverhead     = "vm.overhead.cycles"     // counter: modelled instrumentation cycles
	MetricCheckRate    = "vm.checks_per_interval" // histogram: checks between captures

	// Fusion coverage, recorded post-run via RecordFusion (the fused
	// tier only runs observer-free, so these cannot arrive as events).
	MetricFusionInstrs     = "vm.fusion.instrs"       // counter: instructions retired on the fused tier
	MetricFusionFused      = "vm.fusion.fused"        // counter: instructions retired inside superinstructions
	MetricFusionDispatches = "vm.fusion.dispatches"   // counter: fused-stream tokens dispatched
	MetricFusionFraction   = "vm.fusion.fraction_ppm" // gauge: fused instrs per million executed instrs
	MetricFusionByKind     = "vm.fusion.kind"         // counter, suffixed ".<kind>": superinstruction executions
)

// Meter feeds a metrics Registry from the vm.Observer event stream and
// captures a Series row every Interval cycles.
//
// Derived metrics:
//
//   - vm.dup.cycles / vm.dup.residency_ppm measure time spent in
//     duplicated code: a per-thread depth counter opens an interval on a
//     checking→duplicated transfer and closes it when the thread
//     transfers (or returns) back out. Cycles spent in methods *called
//     from* duplicated code count as duplicated-code time — residency
//     is attributed to the sampling episode, not the block kind of the
//     innermost frame.
//   - vm.overhead.cycles is the modelled cost of the instrumentation
//     the observer can see — Check cycles per check, Yield cycles per
//     yieldpoint, each probe's own Cost — using the run's CostModel.
//     It is a first-order account (it excludes i-cache effects and
//     duplicated-vs-checking code-path differences).
//   - vm.checks_per_interval observes, at each capture, how many checks
//     executed since the previous capture.
//
// Like every telemetry consumer, the Meter is driven by simulated
// cycles, so its output is deterministic for a given program + trigger.
type Meter struct {
	reg    *Registry
	clock  Clock
	series *Series

	interval uint64
	next     uint64

	cost *vm.CostModel

	entries    *Counter
	exits      *Counter
	checks     *Counter
	samples    *Counter
	probes     *Counter
	yields     *Counter
	dupEntries *Counter
	dupCycles  *Counter
	overhead   *Counter
	cycles     *Gauge
	residency  *Gauge
	checkRate  *Histogram

	checksAtCapture uint64
	threads         []meterThread
}

type meterThread struct {
	dupDepth int
	dupStart uint64
}

// NewMeter returns a Meter registering its metrics in reg. triggerName
// labels the samples counter (vm.samples.<triggerName>); interval is the
// capture cadence in cycles (0 means 1<<16). cost may be nil for the
// default model.
func NewMeter(reg *Registry, triggerName string, interval uint64, cost *vm.CostModel) *Meter {
	if interval == 0 {
		interval = 1 << 16
	}
	if cost == nil {
		cost = vm.DefaultCostModel()
	}
	m := &Meter{
		reg:      reg,
		series:   NewSeries(reg),
		interval: interval,
		next:     interval,
		cost:     cost,

		entries:    reg.Counter(MetricEntries),
		exits:      reg.Counter(MetricExits),
		checks:     reg.Counter(MetricChecks),
		samples:    reg.Counter(MetricSamples + "." + triggerName),
		probes:     reg.Counter(MetricProbes),
		yields:     reg.Counter(MetricYields),
		dupEntries: reg.Counter(MetricDupEntries),
		dupCycles:  reg.Counter(MetricDupCycles),
		overhead:   reg.Counter(MetricOverhead),
		cycles:     reg.Gauge(MetricCycles),
		residency:  reg.Gauge(MetricDupResidency),
		checkRate:  reg.Histogram(MetricCheckRate, ExpBuckets(1, 16)),
	}
	return m
}

// SetClock installs the timestamp source; call it right after vm.New,
// with the VM itself.
func (m *Meter) SetClock(c Clock) { m.clock = c }

// Series returns the captured time series.
func (m *Meter) Series() *Series { return m.series }

// Registry returns the registry the meter writes to.
func (m *Meter) Registry() *Registry { return m.reg }

func (m *Meter) now() uint64 {
	if m.clock == nil {
		return 0
	}
	return m.clock.Now()
}

func (m *Meter) threadState(tid int) *meterThread {
	for tid >= len(m.threads) {
		m.threads = append(m.threads, meterThread{})
	}
	return &m.threads[tid]
}

// tick captures a series row when the capture boundary has passed.
func (m *Meter) tick(now uint64) {
	if now < m.next {
		return
	}
	m.capture(now)
	m.next = (now/m.interval + 1) * m.interval
}

// capture refreshes the derived gauges and snapshots the registry.
func (m *Meter) capture(now uint64) {
	m.cycles.Set(int64(now))
	checks := m.checks.Value()
	m.checkRate.Observe(checks - m.checksAtCapture)
	m.checksAtCapture = checks

	// Fold any open duplicated-code intervals up to now, so residency
	// does not lag for threads parked inside duplicated code.
	for i := range m.threads {
		t := &m.threads[i]
		if t.dupDepth > 0 && now > t.dupStart {
			m.dupCycles.Add(now - t.dupStart)
			t.dupStart = now
		}
	}
	if now > 0 {
		m.residency.Set(int64(m.dupCycles.Value() * 1_000_000 / now))
	}
	m.series.Capture(now)
}

// Finish folds open state and captures a final row at the current
// cycle. Call it once after the run completes.
func (m *Meter) Finish() { m.capture(m.now()) }

// RecordFusion publishes a run's superinstruction coverage
// (vm.VM.FusionStats) into the registry. Installing any observer — the
// Meter included — disables fusion, so fused runs are observer-free and
// their coverage arrives here after the fact rather than as events:
// call it once per fused run, with the run's Stats().Instrs as
// totalInstrs. Calling it with all-zero stats (fusion off or degraded)
// records nothing.
func (m *Meter) RecordFusion(fs vm.FusionStats, totalInstrs uint64) {
	if fs.Instrs == 0 {
		return
	}
	m.reg.Counter(MetricFusionInstrs).Add(fs.Instrs)
	m.reg.Counter(MetricFusionFused).Add(fs.Fused)
	m.reg.Counter(MetricFusionDispatches).Add(fs.Dispatches)
	if totalInstrs > 0 {
		m.reg.Gauge(MetricFusionFraction).Set(int64(fs.Fused * 1_000_000 / totalInstrs))
	}
	for kind, n := range fs.ByKind {
		m.reg.Counter(MetricFusionByKind + "." + kind).Add(n)
	}
}

func (m *Meter) dupEnter(tid int, now uint64) {
	t := m.threadState(tid)
	if t.dupDepth == 0 {
		t.dupStart = now
	}
	t.dupDepth++
	m.dupEntries.Inc()
}

func (m *Meter) dupExit(tid int, now uint64) {
	t := m.threadState(tid)
	if t.dupDepth == 0 {
		return
	}
	t.dupDepth--
	if t.dupDepth == 0 && now > t.dupStart {
		m.dupCycles.Add(now - t.dupStart)
	}
}

// OnEnter implements vm.Observer.
func (m *Meter) OnEnter(t *vm.Thread, f *vm.Frame) {
	m.entries.Inc()
	m.tick(m.now())
}

// OnExit implements vm.Observer.
func (m *Meter) OnExit(t *vm.Thread, f *vm.Frame) {
	m.exits.Inc()
	now := m.now()
	if f.Block != nil && f.Block.Kind == ir.KindDuplicated {
		m.dupExit(t.ID, now)
	}
	m.tick(now)
}

// OnTransfer implements vm.Observer.
func (m *Meter) OnTransfer(t *vm.Thread, f *vm.Frame, in *ir.Instr, target int) {
	to := in.Targets[target]
	fromDup := f.Block != nil && f.Block.Kind == ir.KindDuplicated
	toDup := to.Kind == ir.KindDuplicated
	switch {
	case !fromDup && toDup:
		m.dupEnter(t.ID, m.now())
	case fromDup && !toDup:
		m.dupExit(t.ID, m.now())
	}
}

// OnCheck implements vm.Observer.
func (m *Meter) OnCheck(t *vm.Thread, f *vm.Frame, in *ir.Instr, fired bool) {
	m.checks.Inc()
	m.overhead.Add(uint64(m.cost.Check))
	if fired {
		m.samples.Inc()
	}
	m.tick(m.now())
}

// OnProbe implements vm.Observer.
func (m *Meter) OnProbe(t *vm.Thread, f *vm.Frame, p *ir.Probe) {
	m.probes.Inc()
	m.overhead.Add(uint64(p.Cost))
	m.tick(m.now())
}

// OnYield implements vm.Observer.
func (m *Meter) OnYield(t *vm.Thread, f *vm.Frame) {
	m.yields.Inc()
	m.overhead.Add(uint64(m.cost.Yield))
	m.tick(m.now())
}
