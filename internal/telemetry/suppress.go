package telemetry

import (
	"instrsample/internal/ir"
	"instrsample/internal/vm"
)

// Suppressor is a time-aware redundancy filter implementing vm.Observer
// in front of a sink observer (typically a *Trace): it elides instant
// event records that are provably duplicates, with exact drop
// accounting. This is Arafa et al.'s duplicate-sample elision applied
// to our event stream — the dominant telemetry cost is long runs of
// identical records (the same check polling false in a hot loop, the
// same yieldpoint on every backedge), and an identical record's only
// information beyond the first occurrence is its count and its position
// in time.
//
// An instant record (EvCheckPolled, EvCheckFired, EvProbe, EvYield) is
// elided when the previous record of the same kind on the same thread
// had the same method and argument AND was observed within Window
// cycles (whether that one was forwarded or elided). Anything else
// forwards: the first record of every run of duplicates, any change of
// method or argument, and — the heartbeat that keeps the sink's
// timeline honest — a duplicate arriving more than Window cycles after
// the previously observed one. Comparison is per (thread, kind), so a
// hot loop's alternating yield/check/probe records each dedup against
// their own kind. Span events (OnEnter, OnExit) and block transfers
// are never elided: dropping one would unbalance the sink's begin/end
// pairing or hide a checking/duplicated boundary crossing.
//
// Elision is exact-counted: Elided, ElidedByKind and Forwarded report
// precisely how many records were dropped and passed per kind, so a
// report can state "N records elided (P%)" rather than estimate, and a
// count-reconstructing consumer loses nothing. The per-event cost is
// one table lookup and compare on the observer cold path (see
// DESIGN.md §13 for the semantics and §9 for the telemetry layer's
// cost contract).
//
// A Suppressor observes a single VM run and is not goroutine-safe; the
// VM invokes hooks from its own goroutine only.
type Suppressor struct {
	sink   vm.Observer
	clock  Clock
	window uint64
	last   [][numInstant]lastRecord
	elided [numEventKinds]uint64
	passed [numEventKinds]uint64
}

// Instant-kind slots of the per-thread dedup table.
const (
	slotCheckPolled = iota
	slotCheckFired
	slotProbe
	slotYield
	numInstant
)

var slotKind = [numInstant]EventKind{
	slotCheckPolled: EvCheckPolled,
	slotCheckFired:  EvCheckFired,
	slotProbe:       EvProbe,
	slotYield:       EvYield,
}

// lastRecord is one dedup slot: the identity of the most recent record
// of its kind on its thread, and the cycle it was observed at.
type lastRecord struct {
	method *ir.Method
	arg    int64
	cycle  uint64
	valid  bool
}

// NewSuppressor returns a Suppressor forwarding to sink, eliding
// duplicate records that arrive within window cycles of their
// same-kind predecessor. A window of 0 elides only duplicates at the
// exact same cycle.
func NewSuppressor(sink vm.Observer, window uint64) *Suppressor {
	return &Suppressor{sink: sink, window: window}
}

// SetClock installs the timestamp source; call it right after vm.New,
// with the VM itself. With no clock every record carries cycle 0, so
// all duplicates fall inside any window.
func (s *Suppressor) SetClock(c Clock) { s.clock = c }

// Window returns the suppression window in cycles.
func (s *Suppressor) Window() uint64 { return s.window }

// Elided returns the total number of elided records.
func (s *Suppressor) Elided() uint64 {
	var n uint64
	for _, c := range s.elided {
		n += c
	}
	return n
}

// ElidedByKind returns the number of elided records of one kind.
func (s *Suppressor) ElidedByKind(k EventKind) uint64 {
	if int(k) >= len(s.elided) {
		return 0
	}
	return s.elided[k]
}

// Forwarded returns the total number of events passed to the sink,
// including the span events that are never elision candidates.
func (s *Suppressor) Forwarded() uint64 {
	var n uint64
	for _, c := range s.passed {
		n += c
	}
	return n
}

// ForwardedByKind returns the number of forwarded events of one kind.
func (s *Suppressor) ForwardedByKind(k EventKind) uint64 {
	if int(k) >= len(s.passed) {
		return 0
	}
	return s.passed[k]
}

func (s *Suppressor) now() uint64 {
	if s.clock == nil {
		return 0
	}
	return s.clock.Now()
}

// elide reports whether an instant record on thread tid should be
// elided, updating the dedup slot either way.
func (s *Suppressor) elide(tid, slot int, m *ir.Method, arg int64) bool {
	for tid >= len(s.last) {
		s.last = append(s.last, [numInstant]lastRecord{})
	}
	now := s.now()
	lr := &s.last[tid][slot]
	dup := lr.valid && lr.method == m && lr.arg == arg && now-lr.cycle <= s.window
	*lr = lastRecord{method: m, arg: arg, cycle: now, valid: true}
	if dup {
		s.elided[slotKind[slot]]++
	} else {
		s.passed[slotKind[slot]]++
	}
	return dup
}

// OnEnter implements vm.Observer; span events always forward.
func (s *Suppressor) OnEnter(t *vm.Thread, f *vm.Frame) {
	s.passed[EvEnter]++
	s.sink.OnEnter(t, f)
}

// OnExit implements vm.Observer; span events always forward.
func (s *Suppressor) OnExit(t *vm.Thread, f *vm.Frame) {
	s.passed[EvExit]++
	s.sink.OnExit(t, f)
}

// OnTransfer implements vm.Observer; transfers always forward (the
// sink filters boundary crossings itself and they must all reach it).
func (s *Suppressor) OnTransfer(t *vm.Thread, f *vm.Frame, in *ir.Instr, target int) {
	s.sink.OnTransfer(t, f, in, target)
}

// OnCheck implements vm.Observer, eliding duplicate poll (and duplicate
// fire) records within the window.
func (s *Suppressor) OnCheck(t *vm.Thread, f *vm.Frame, in *ir.Instr, fired bool) {
	slot := slotCheckPolled
	if fired {
		slot = slotCheckFired
	}
	if s.elide(t.ID, slot, f.Method, 0) {
		return
	}
	s.sink.OnCheck(t, f, in, fired)
}

// OnProbe implements vm.Observer, eliding duplicate probe records
// (same method, owner and probe kind) within the window.
func (s *Suppressor) OnProbe(t *vm.Thread, f *vm.Frame, p *ir.Probe) {
	if s.elide(t.ID, slotProbe, f.Method, ProbeArg(p)) {
		return
	}
	s.sink.OnProbe(t, f, p)
}

// OnYield implements vm.Observer, eliding duplicate yieldpoint records
// within the window.
func (s *Suppressor) OnYield(t *vm.Thread, f *vm.Frame) {
	if s.elide(t.ID, slotYield, f.Method, 0) {
		return
	}
	s.sink.OnYield(t, f)
}
