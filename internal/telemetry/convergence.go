package telemetry

import (
	"instrsample/internal/ir"
	"instrsample/internal/profile"
	"instrsample/internal/vm"
)

// ConvergencePoint is one snapshot of the live sampled profiles.
type ConvergencePoint struct {
	// Cycle is when the snapshot was taken.
	Cycle uint64
	// Profiles are deep copies of the instrumentation profiles at that
	// moment, in runtime order.
	Profiles []*profile.Profile
}

// Convergence periodically clones the live sampled profiles while the
// program runs, producing the raw material for accuracy-convergence
// curves: overlap of the sampled profile against the perfect profile as
// a function of executed cycles (§4.4's accuracy metric, extended along
// the time axis).
//
// Snapshots are taken from observer hooks at cycle-interval boundaries,
// so the series is deterministic for a given program and trigger — the
// same run produces the same curve regardless of host load. The hook
// cost is one comparison until a boundary passes; cloning costs
// O(profile size), which is why the interval should be a meaningful
// fraction of the run (the experiment layer derives it from a baseline
// run's cycle total).
type Convergence struct {
	clock Clock

	// interval is the snapshot cadence in cycles.
	interval uint64
	// max caps the number of snapshots (guards pathological intervals);
	// once reached, no further snapshots are taken.
	max int
	// source returns the live profiles to clone.
	source func() []*profile.Profile

	next   uint64
	points []ConvergencePoint
}

// NewConvergence returns a recorder cloning source() every interval
// cycles, keeping at most max snapshots (0 means 4096).
func NewConvergence(interval uint64, max int, source func() []*profile.Profile) *Convergence {
	if interval == 0 {
		interval = 1 << 16
	}
	if max <= 0 {
		max = 4096
	}
	return &Convergence{interval: interval, max: max, source: source, next: interval}
}

// SetClock installs the timestamp source; call it right after vm.New,
// with the VM itself.
func (c *Convergence) SetClock(cl Clock) { c.clock = cl }

// Points returns the snapshots taken so far, in cycle order.
func (c *Convergence) Points() []ConvergencePoint { return c.points }

func (c *Convergence) tick() {
	if c.clock == nil || len(c.points) >= c.max {
		return
	}
	now := c.clock.Now()
	if now < c.next {
		return
	}
	live := c.source()
	pt := ConvergencePoint{Cycle: now, Profiles: make([]*profile.Profile, len(live))}
	for i, p := range live {
		pt.Profiles[i] = p.Clone()
	}
	c.points = append(c.points, pt)
	c.next = (now/c.interval + 1) * c.interval
}

// OnEnter implements vm.Observer.
func (c *Convergence) OnEnter(*vm.Thread, *vm.Frame) { c.tick() }

// OnExit implements vm.Observer.
func (c *Convergence) OnExit(*vm.Thread, *vm.Frame) { c.tick() }

// OnTransfer implements vm.Observer.
func (c *Convergence) OnTransfer(*vm.Thread, *vm.Frame, *ir.Instr, int) { c.tick() }

// OnCheck implements vm.Observer.
func (c *Convergence) OnCheck(*vm.Thread, *vm.Frame, *ir.Instr, bool) { c.tick() }

// OnProbe implements vm.Observer.
func (c *Convergence) OnProbe(*vm.Thread, *vm.Frame, *ir.Probe) { c.tick() }

// OnYield implements vm.Observer.
func (c *Convergence) OnYield(*vm.Thread, *vm.Frame) { c.tick() }
