package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// Series is a time series of registry snapshots: one row per capture,
// one column per metric sample. The column set is frozen at the first
// capture — metrics registered afterwards are not added retroactively,
// so every row has the same width. (The Meter registers all its metrics
// up front for exactly this reason.)
type Series struct {
	reg *Registry
	// Columns are the metric sample names, in snapshot (sorted) order.
	Columns []string
	// Rows are the captures, in capture order.
	Rows []SeriesRow
}

// SeriesRow is one captured snapshot.
type SeriesRow struct {
	// At is the capture timestamp in VM cycles.
	At uint64 `json:"at"`
	// Values align with the series' Columns.
	Values []int64 `json:"values"`
}

// NewSeries returns an empty series reading from reg.
func NewSeries(reg *Registry) *Series { return &Series{reg: reg} }

// Capture snapshots the registry as a row timestamped at the given
// cycle count.
func (s *Series) Capture(at uint64) {
	snap := s.reg.Snapshot()
	if s.Columns == nil {
		s.Columns = make([]string, len(snap))
		for i, sm := range snap {
			s.Columns[i] = sm.Name
		}
	}
	byName := make(map[string]int64, len(snap))
	for _, sm := range snap {
		byName[sm.Name] = sm.Value
	}
	row := SeriesRow{At: at, Values: make([]int64, len(s.Columns))}
	for i, name := range s.Columns {
		row.Values[i] = byName[name]
	}
	s.Rows = append(s.Rows, row)
}

// WriteCSV writes the series with a "cycle" column followed by one
// column per metric sample.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"cycle"}, s.Columns...)); err != nil {
		return err
	}
	rec := make([]string, 1+len(s.Columns))
	for _, row := range s.Rows {
		rec[0] = strconv.FormatUint(row.At, 10)
		for i, v := range row.Values {
			rec[1+i] = strconv.FormatInt(v, 10)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the series as {"columns": [...], "rows": [...]}.
func (s *Series) WriteJSON(w io.Writer) error {
	cols := s.Columns
	if cols == nil {
		cols = []string{}
	}
	rows := s.Rows
	if rows == nil {
		rows = []SeriesRow{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		Columns []string    `json:"columns"`
		Rows    []SeriesRow `json:"rows"`
	}{cols, rows})
}
