package telemetry_test

import (
	"testing"

	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/instr"
	"instrsample/internal/ir"
	"instrsample/internal/telemetry"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

// clocked is anything that takes the VM as its timestamp source.
type clocked interface{ SetClock(telemetry.Clock) }

// buildProgram compiles a small sampled program whose run produces every
// event kind: calls, checks (hit and miss), duplicated-code entries and
// exits, probes and yieldpoints.
func buildProgram(t testing.TB, iters int64) *compile.Result {
	t.Helper()
	fb := ir.NewFunc("leaf", 1)
	{
		c := fb.At(fb.EntryBlock())
		two := c.Const(2)
		c.Return(c.Bin(ir.OpMul, 0, two))
	}
	mb := ir.NewFunc("main", 0)
	{
		c := mb.At(mb.EntryBlock())
		n := c.Const(iters)
		lp := c.CountedLoop(n, "l")
		lp.Body.Call(fb.M, lp.I)
		lp.Body.Jump(lp.Latch)
		lp.After.Return(lp.I)
	}
	p := &ir.Program{Name: "telemetry", Funcs: []*ir.Method{fb.M, mb.M}, Main: mb.M}
	p.Seal()
	res, err := compile.Compile(p, compile.Options{
		Instrumenters: []instr.Instrumenter{&instr.CallEdge{}},
		Framework:     &core.Options{Variation: core.FullDuplication},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// run executes res with the observer installed, wiring the VM in as the
// clock of every telemetry consumer passed in clocks.
func run(t testing.TB, res *compile.Result, obs vm.Observer, clocks ...clocked) *vm.Result {
	t.Helper()
	v := vm.New(res.Prog, vm.Config{
		Trigger:  trigger.NewCounter(50),
		Handlers: res.Handlers,
		Observer: obs,
	})
	for _, c := range clocks {
		c.SetClock(v)
	}
	out, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	return out
}
