// Package telemetry is the observability layer: it turns the vm.Observer
// event stream into artifacts a human (or a later analysis pass) can
// consume without re-running the program.
//
// Three consumers are provided, all implementing vm.Observer so they can
// be installed alone or fanned out together through vm.MultiObserver:
//
//   - Trace: a lock-free, fixed-size ring-buffered flight recorder with
//     one ring per VM thread. It keeps the most recent events (oldest
//     entries are overwritten; overwrites are counted as drops) and
//     exports Chrome trace-event JSON loadable in chrome://tracing or
//     https://ui.perfetto.dev.
//   - Meter: updates a metrics Registry (counters, gauges, histograms)
//     from the event stream and snapshots it into a Series at a
//     configurable cycle cadence, for CSV/JSON time-series export.
//   - Convergence: periodically clones the live sampled profiles so the
//     experiment layer can compute profile.Overlap against the perfect
//     profile as a function of executed cycles (the accuracy-convergence
//     curves).
//
// All timestamps are in the VM's simulated-cycle domain, read through
// the Clock interface (vm.VM implements it via VM.Now). Cycle timestamps
// are deterministic: the same program and trigger produce the same
// telemetry byte-for-byte, regardless of wall-clock load or -j
// parallelism. See DESIGN.md §9.
package telemetry

// Clock supplies the current timestamp in simulated VM cycles. *vm.VM
// implements Clock: VM.Now is exact at every observer hook. The VM is
// constructed with the observer already installed, so consumers accept
// the clock after construction (SetClock) and read it lazily; a nil
// clock yields timestamp 0.
type Clock interface {
	Now() uint64
}
