package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution of uint64 observations.
// Bounds are inclusive upper bounds; one implicit overflow bucket
// catches everything above the last bound.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest observation so far (0 when empty).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket
// counts: it walks the cumulative distribution to the bucket holding the
// q-th observation and interpolates linearly between that bucket's lower
// and upper bound. Observations landing in the overflow bucket are
// bounded above only by Max, so the estimate there is Max itself. An
// empty histogram returns 0. The estimate is exact when every
// observation in the target bucket equals a bound, and within one bucket
// width otherwise — good enough for regression gates on exponentially
// bucketed latencies.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum, lower uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if cum+n > rank {
			if i == len(h.bounds) { // overflow bucket: only Max bounds it
				return h.Max()
			}
			upper := h.bounds[i]
			if mx := h.Max(); mx < upper {
				upper = mx // no observation can exceed the recorded max
			}
			if n == 0 || upper <= lower {
				return upper
			}
			frac := float64(rank-cum) / float64(n)
			return lower + uint64(frac*float64(upper-lower))
		}
		cum += n
		if i < len(h.bounds) {
			lower = h.bounds[i]
		}
	}
	return h.Max()
}

// Summary is a point-in-time digest of a histogram, the shape the load
// harness's regression gates consume (see internal/load and
// BENCHMARKING.md).
type Summary struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
}

// Summarize digests the histogram's current state.
func (h *Histogram) Summarize() Summary {
	s := Summary{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	return s
}

// Bucket is one histogram bucket in a snapshot.
type Bucket struct {
	// Le is the inclusive upper bound; Inf marks the overflow bucket.
	Le uint64
	// Inf is true for the overflow bucket (Le is meaningless then).
	Inf bool
	// N is the number of observations in this bucket alone (not
	// cumulative).
	N uint64
}

// Buckets returns the per-bucket counts, in bound order with the
// overflow bucket last.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, len(h.counts))
	for i := range h.bounds {
		out[i] = Bucket{Le: h.bounds[i], N: h.counts[i].Load()}
	}
	out[len(h.bounds)] = Bucket{Inf: true, N: h.counts[len(h.bounds)].Load()}
	return out
}

// ExpBuckets returns n exponentially growing inclusive upper bounds
// starting at start and doubling each step — the usual shape for
// count-per-interval distributions.
func ExpBuckets(start uint64, n int) []uint64 {
	if start == 0 {
		start = 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = start
		start *= 2
	}
	return out
}

// Registry is a named collection of metrics. Lookups are get-or-create
// and guarded by a mutex; the returned metric handles update via atomics
// so hot paths touch no locks. A name is permanently bound to the kind
// it was first created with — a kind mismatch panics, since it is a
// programming error, not an input error.
type Registry struct {
	mu sync.Mutex
	m  map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]any)}
}

func (r *Registry) lookup(name string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.m[name]; ok {
		return got
	}
	v := mk()
	r.m[name] = v
	return v
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	got := r.lookup(name, func() any { return new(Counter) })
	c, ok := got.(*Counter)
	if !ok {
		panic(fmt.Sprintf("telemetry: metric %q is a %T, not a counter", name, got))
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	got := r.lookup(name, func() any { return new(Gauge) })
	g, ok := got.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("telemetry: metric %q is a %T, not a gauge", name, got))
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds if needed. Bounds are ignored on later lookups of an existing
// histogram.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	got := r.lookup(name, func() any {
		b := append([]uint64(nil), bounds...)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		h := &Histogram{bounds: b}
		h.counts = make([]atomic.Uint64, len(b)+1)
		return h
	})
	h, ok := got.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: metric %q is a %T, not a histogram", name, got))
	}
	return h
}

// Sample is one flattened metric value in a snapshot.
type Sample struct {
	Name  string
	Value int64
}

// Snapshot flattens every metric into (name, value) samples, sorted by
// name for deterministic output. Counters and gauges contribute one
// sample each; a histogram named h contributes h.count, h.sum, one
// h.le.<bound> per bucket and h.le.inf for the overflow bucket.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, len(r.m))
	for name, m := range r.m {
		switch v := m.(type) {
		case *Counter:
			out = append(out, Sample{name, int64(v.Value())})
		case *Gauge:
			out = append(out, Sample{name, v.Value()})
		case *Histogram:
			out = append(out, Sample{name + ".count", int64(v.Count())})
			out = append(out, Sample{name + ".sum", int64(v.Sum())})
			for _, b := range v.Buckets() {
				le := "inf"
				if !b.Inf {
					le = fmt.Sprint(b.Le)
				}
				out = append(out, Sample{name + ".le." + le, int64(b.N)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
