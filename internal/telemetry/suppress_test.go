package telemetry

import (
	"testing"

	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/instr"
	"instrsample/internal/ir"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

// countingSink counts hook invocations per kind, mirroring the kind
// mapping the Suppressor uses.
type countingSink struct {
	counts [numEventKinds]uint64
	xfers  uint64
}

func (c *countingSink) OnEnter(t *vm.Thread, f *vm.Frame) { c.counts[EvEnter]++ }
func (c *countingSink) OnExit(t *vm.Thread, f *vm.Frame)  { c.counts[EvExit]++ }
func (c *countingSink) OnTransfer(t *vm.Thread, f *vm.Frame, in *ir.Instr, target int) {
	c.xfers++
}
func (c *countingSink) OnCheck(t *vm.Thread, f *vm.Frame, in *ir.Instr, fired bool) {
	if fired {
		c.counts[EvCheckFired]++
	} else {
		c.counts[EvCheckPolled]++
	}
}
func (c *countingSink) OnProbe(t *vm.Thread, f *vm.Frame, p *ir.Probe) { c.counts[EvProbe]++ }
func (c *countingSink) OnYield(t *vm.Thread, f *vm.Frame)              { c.counts[EvYield]++ }

// fakeClock is a settable cycle source.
type fakeClock struct{ cycle uint64 }

func (c *fakeClock) Now() uint64 { return c.cycle }

func testMethod(name string) *ir.Method {
	return &ir.Method{Name: name}
}

// TestSuppressorElidesDuplicates drives the hooks directly: identical
// consecutive yields within the window are elided, a change of method
// forwards, a gap wider than the window forwards (the heartbeat), and
// the accounting is exact.
func TestSuppressorElidesDuplicates(t *testing.T) {
	sink := &countingSink{}
	clock := &fakeClock{}
	s := NewSuppressor(sink, 100)
	s.SetClock(clock)
	th := &vm.Thread{ID: 0}
	m1 := &vm.Frame{Method: testMethod("a")}
	m2 := &vm.Frame{Method: testMethod("b")}

	clock.cycle = 0
	s.OnYield(th, m1) // first: forwarded
	clock.cycle = 50
	s.OnYield(th, m1) // duplicate within window: elided
	clock.cycle = 90
	s.OnYield(th, m1) // gap 40 from last observed: elided
	clock.cycle = 250
	s.OnYield(th, m1) // gap 160 > window: heartbeat, forwarded
	clock.cycle = 260
	s.OnYield(th, m2) // different method: forwarded
	clock.cycle = 270
	s.OnYield(th, m1) // different from previous: forwarded

	if got, want := sink.counts[EvYield], uint64(4); got != want {
		t.Fatalf("sink saw %d yields, want %d", got, want)
	}
	if got, want := s.ElidedByKind(EvYield), uint64(2); got != want {
		t.Fatalf("elided = %d, want %d", got, want)
	}
	if got, want := s.ForwardedByKind(EvYield), uint64(4); got != want {
		t.Fatalf("forwarded = %d, want %d", got, want)
	}
	if s.Elided()+s.Forwarded() != 6 {
		t.Fatalf("accounting does not sum: elided %d + forwarded %d != 6",
			s.Elided(), s.Forwarded())
	}
}

// TestSuppressorNeverElidesSpans: enters/exits always forward even
// when identical and back-to-back, and each instant kind dedups
// against its own kind only — an interleaved probe does not reset a
// yield's dedup run.
func TestSuppressorNeverElidesSpans(t *testing.T) {
	sink := &countingSink{}
	s := NewSuppressor(sink, ^uint64(0)) // infinite window
	th := &vm.Thread{ID: 0}
	f := &vm.Frame{Method: testMethod("a")}

	s.OnEnter(th, f)
	s.OnEnter(th, f)
	s.OnExit(th, f)
	s.OnExit(th, f)
	if sink.counts[EvEnter] != 2 || sink.counts[EvExit] != 2 {
		t.Fatalf("span events elided: %d enters, %d exits",
			sink.counts[EvEnter], sink.counts[EvExit])
	}

	probe := &ir.Probe{}
	s.OnYield(th, f)        // forwarded (first yield)
	s.OnProbe(th, f, probe) // forwarded (first probe)
	s.OnYield(th, f)        // elided: dedups against the previous yield
	s.OnProbe(th, f, probe) // elided: dedups against the previous probe
	if got := sink.counts[EvYield]; got != 1 {
		t.Fatalf("yield: sink saw %d, want 1", got)
	}
	if got := sink.counts[EvProbe]; got != 1 {
		t.Fatalf("probe: sink saw %d, want 1", got)
	}
	if got := s.Elided(); got != 2 {
		t.Fatalf("elided = %d, want 2", got)
	}
}

// TestSuppressorPerThread: dedup state is per thread — interleaved
// identical events on different threads never elide each other.
func TestSuppressorPerThread(t *testing.T) {
	sink := &countingSink{}
	s := NewSuppressor(sink, ^uint64(0))
	f := &vm.Frame{Method: testMethod("a")}
	t0, t1 := &vm.Thread{ID: 0}, &vm.Thread{ID: 1}

	s.OnYield(t0, f) // forwarded (first on t0)
	s.OnYield(t1, f) // forwarded (first on t1)
	s.OnYield(t0, f) // elided (dup on t0)
	s.OnYield(t1, f) // elided (dup on t1)
	if got := sink.counts[EvYield]; got != 2 {
		t.Fatalf("sink saw %d yields, want 2", got)
	}
	if got := s.Elided(); got != 2 {
		t.Fatalf("elided = %d, want 2", got)
	}
}

// TestSuppressorEndToEnd runs a real instrumented sampled program twice
// — bare Trace vs Suppressor-fronted Trace — and checks (a) the VM's
// architected results are identical (the suppressor is observation-
// only), (b) the suppressed trace is a subset (never more events), and
// (c) the accounting is exact: forwarded + elided equals the bare
// stream's instant-event total, per kind.
func TestSuppressorEndToEnd(t *testing.T) {
	prog := ir.RandomProgram(77, ir.RandomProgramConfig{
		WithThreads: true, MaxDepth: 5, LoopBiasPct: 50, CallBiasPct: 20,
	})
	res, err := compile.Compile(prog, compile.Options{
		Instrumenters: []instr.Instrumenter{&instr.CallEdge{}},
		Framework:     &core.Options{Variation: core.FullDuplication},
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	run := func(obs vm.Observer, setClock func(Clock)) *vm.Result {
		machine := vm.New(res.Prog, vm.Config{
			Trigger:  trigger.NewCounter(13),
			Handlers: res.Handlers,
			Observer: obs,
		})
		if setClock != nil {
			setClock(machine)
		}
		out, err := machine.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return out
	}

	bare := NewTrace(1 << 16)
	bareRes := run(bare, bare.SetClock)

	sink := &countingSink{}
	sup := NewSuppressor(sink, 500)
	supRes := run(sup, sup.SetClock)

	if bareRes.Stats != supRes.Stats || bareRes.Return != supRes.Return {
		t.Fatalf("suppressor perturbed the run:\n  bare:       %+v\n  suppressed: %+v",
			bareRes.Stats, supRes.Stats)
	}

	// Exact accounting per instant kind against the bare VM counters.
	checks := supRes.Stats.Checks - supRes.Stats.CheckFires
	type kindTotal struct {
		kind EventKind
		want uint64
	}
	for _, kt := range []kindTotal{
		{EvCheckPolled, checks},
		{EvCheckFired, supRes.Stats.CheckFires},
		{EvProbe, supRes.Stats.Probes},
		{EvYield, supRes.Stats.Yields},
	} {
		got := s2(sup.ForwardedByKind(kt.kind), sup.ElidedByKind(kt.kind))
		if got != kt.want {
			t.Fatalf("%v: forwarded %d + elided %d = %d, want %d (exact accounting)",
				kt.kind, sup.ForwardedByKind(kt.kind), sup.ElidedByKind(kt.kind), got, kt.want)
		}
		if sink.counts[kt.kind] != sup.ForwardedByKind(kt.kind) {
			t.Fatalf("%v: sink saw %d, suppressor claims %d forwarded",
				kt.kind, sink.counts[kt.kind], sup.ForwardedByKind(kt.kind))
		}
	}
	if sup.Elided() == 0 {
		t.Fatal("suppressor elided nothing on a hot sampled loop program")
	}
}

func s2(a, b uint64) uint64 { return a + b }
