package telemetry_test

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"instrsample/internal/telemetry"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := telemetry.NewRegistry()
	c := r.Counter("a")
	c.Add(3)
	if r.Counter("a") != c {
		t.Error("second lookup returned a different counter")
	}
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	g := r.Gauge("g")
	g.Set(-7)
	g.Add(2)
	if g.Value() != -5 {
		t.Errorf("gauge = %d, want -5", g.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("a")
}

func TestHistogramBuckets(t *testing.T) {
	r := telemetry.NewRegistry()
	h := r.Histogram("h", []uint64{1, 2, 4})
	for _, v := range []uint64{0, 1, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 7 || h.Sum() != 115 {
		t.Fatalf("count=%d sum=%d, want 7/115", h.Count(), h.Sum())
	}
	got := h.Buckets()
	want := []telemetry.Bucket{
		{Le: 1, N: 2},     // 0, 1
		{Le: 2, N: 1},     // 2
		{Le: 4, N: 2},     // 3, 4
		{Inf: true, N: 2}, // 5, 100
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("buckets = %+v, want %+v", got, want)
	}
}

func TestExpBuckets(t *testing.T) {
	got := telemetry.ExpBuckets(1, 4)
	if !reflect.DeepEqual(got, []uint64{1, 2, 4, 8}) {
		t.Errorf("ExpBuckets(1,4) = %v", got)
	}
}

func TestSnapshotSortedAndFlattened(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("z.count").Add(9)
	r.Gauge("a.gauge").Set(1)
	r.Histogram("m.hist", []uint64{10}).Observe(3)
	snap := r.Snapshot()
	var names []string
	for _, s := range snap {
		names = append(names, s.Name)
	}
	want := []string{
		"a.gauge",
		"m.hist.count", "m.hist.sum", "m.hist.le.10", "m.hist.le.inf",
		"z.count",
	}
	// Snapshot promises sorted order over the flattened names.
	wantSorted := append([]string(nil), want...)
	if !sortedEqual(names, wantSorted) {
		t.Errorf("snapshot names = %v, want the set %v sorted", names, want)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("snapshot not sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
}

func sortedEqual(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	set := map[string]bool{}
	for _, n := range want {
		set[n] = true
	}
	for _, n := range got {
		if !set[n] {
			return false
		}
	}
	return true
}

func TestSeriesCSVAndJSON(t *testing.T) {
	r := telemetry.NewRegistry()
	c := r.Counter("events")
	s := telemetry.NewSeries(r)
	c.Add(2)
	s.Capture(100)
	c.Add(3)
	// A metric registered after the first capture must not change the
	// row width.
	r.Counter("late")
	s.Capture(200)

	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("CSV does not parse: %v", err)
	}
	want := [][]string{
		{"cycle", "events"},
		{"100", "2"},
		{"200", "5"},
	}
	if !reflect.DeepEqual(recs, want) {
		t.Errorf("CSV = %v, want %v", recs, want)
	}

	buf.Reset()
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Columns []string `json:"columns"`
		Rows    []struct {
			At     uint64  `json:"at"`
			Values []int64 `json:"values"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON does not parse: %v", err)
	}
	if !reflect.DeepEqual(doc.Columns, []string{"events"}) || len(doc.Rows) != 2 ||
		doc.Rows[1].At != 200 || doc.Rows[1].Values[0] != 5 {
		t.Errorf("JSON = %+v", doc)
	}
}

func TestHistogramMaxAndQuantile(t *testing.T) {
	r := telemetry.NewRegistry()
	h := r.Histogram("q", telemetry.ExpBuckets(1, 10)) // bounds 1..512

	// Empty histogram: every statistic is zero.
	if h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Errorf("empty histogram: p50=%d max=%d, want 0/0", h.Quantile(0.5), h.Max())
	}
	s := h.Summarize()
	if s.Count != 0 || s.Mean != 0 || s.P99 != 0 {
		t.Errorf("empty summary = %+v", s)
	}

	// 100 observations of 1..100. Exact quantiles are known; the bucket
	// estimate must land within the containing bucket's width.
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Max() != 100 {
		t.Errorf("max = %d, want 100", h.Max())
	}
	for _, tc := range []struct {
		q      float64
		lo, hi uint64 // inclusive acceptance band (containing bucket)
	}{
		{0.0, 0, 1},
		{0.5, 32, 64},   // the 50th obs is 51, bucket (32,64]
		{0.9, 64, 100},  // the 90th obs is 91, bucket (64,128] capped at max
		{0.99, 64, 100}, // the 99th obs is 100
		{1.0, 64, 100},
	} {
		got := h.Quantile(tc.q)
		if got < tc.lo || got > tc.hi {
			t.Errorf("Quantile(%g) = %d, want in [%d, %d]", tc.q, got, tc.lo, tc.hi)
		}
	}

	// Quantiles are monotone in q.
	prev := uint64(0)
	for q := 0.0; q <= 1.0; q += 0.05 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%g) = %d < previous %d (not monotone)", q, got, prev)
		}
		prev = got
	}

	// Overflow-bucket observations are reported as Max.
	h2 := r.Histogram("q2", []uint64{1})
	h2.Observe(1 << 40)
	if got := h2.Quantile(0.99); got != 1<<40 {
		t.Errorf("overflow quantile = %d, want %d", got, uint64(1)<<40)
	}

	sum := h.Summarize()
	if sum.Count != 100 || sum.Sum != 5050 || sum.Max != 100 {
		t.Errorf("summary = %+v, want count=100 sum=5050 max=100", sum)
	}
	if sum.Mean != 50.5 {
		t.Errorf("mean = %g, want 50.5", sum.Mean)
	}
	if sum.P50 != h.Quantile(0.50) || sum.P99 != h.Quantile(0.99) {
		t.Errorf("summary quantiles disagree with Quantile: %+v", sum)
	}
}
