package telemetry_test

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"instrsample/internal/telemetry"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := telemetry.NewRegistry()
	c := r.Counter("a")
	c.Add(3)
	if r.Counter("a") != c {
		t.Error("second lookup returned a different counter")
	}
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	g := r.Gauge("g")
	g.Set(-7)
	g.Add(2)
	if g.Value() != -5 {
		t.Errorf("gauge = %d, want -5", g.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("a")
}

func TestHistogramBuckets(t *testing.T) {
	r := telemetry.NewRegistry()
	h := r.Histogram("h", []uint64{1, 2, 4})
	for _, v := range []uint64{0, 1, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 7 || h.Sum() != 115 {
		t.Fatalf("count=%d sum=%d, want 7/115", h.Count(), h.Sum())
	}
	got := h.Buckets()
	want := []telemetry.Bucket{
		{Le: 1, N: 2},     // 0, 1
		{Le: 2, N: 1},     // 2
		{Le: 4, N: 2},     // 3, 4
		{Inf: true, N: 2}, // 5, 100
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("buckets = %+v, want %+v", got, want)
	}
}

func TestExpBuckets(t *testing.T) {
	got := telemetry.ExpBuckets(1, 4)
	if !reflect.DeepEqual(got, []uint64{1, 2, 4, 8}) {
		t.Errorf("ExpBuckets(1,4) = %v", got)
	}
}

func TestSnapshotSortedAndFlattened(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("z.count").Add(9)
	r.Gauge("a.gauge").Set(1)
	r.Histogram("m.hist", []uint64{10}).Observe(3)
	snap := r.Snapshot()
	var names []string
	for _, s := range snap {
		names = append(names, s.Name)
	}
	want := []string{
		"a.gauge",
		"m.hist.count", "m.hist.sum", "m.hist.le.10", "m.hist.le.inf",
		"z.count",
	}
	// Snapshot promises sorted order over the flattened names.
	wantSorted := append([]string(nil), want...)
	if !sortedEqual(names, wantSorted) {
		t.Errorf("snapshot names = %v, want the set %v sorted", names, want)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("snapshot not sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
}

func sortedEqual(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	set := map[string]bool{}
	for _, n := range want {
		set[n] = true
	}
	for _, n := range got {
		if !set[n] {
			return false
		}
	}
	return true
}

func TestSeriesCSVAndJSON(t *testing.T) {
	r := telemetry.NewRegistry()
	c := r.Counter("events")
	s := telemetry.NewSeries(r)
	c.Add(2)
	s.Capture(100)
	c.Add(3)
	// A metric registered after the first capture must not change the
	// row width.
	r.Counter("late")
	s.Capture(200)

	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("CSV does not parse: %v", err)
	}
	want := [][]string{
		{"cycle", "events"},
		{"100", "2"},
		{"200", "5"},
	}
	if !reflect.DeepEqual(recs, want) {
		t.Errorf("CSV = %v, want %v", recs, want)
	}

	buf.Reset()
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Columns []string `json:"columns"`
		Rows    []struct {
			At     uint64  `json:"at"`
			Values []int64 `json:"values"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON does not parse: %v", err)
	}
	if !reflect.DeepEqual(doc.Columns, []string{"events"}) || len(doc.Rows) != 2 ||
		doc.Rows[1].At != 200 || doc.Rows[1].Values[0] != 5 {
		t.Errorf("JSON = %+v", doc)
	}
}
