package experiment

import (
	"fmt"

	"instrsample/internal/core"
	"instrsample/internal/profile"
)

// ConvergenceBenchmark is the workload the convergence artifact profiles
// — javac, the same benchmark the paper uses for its call-edge profile
// illustration (Figure 7).
const ConvergenceBenchmark = "javac"

// ConvergenceInterval is the counter trigger interval driving samples.
const ConvergenceInterval = 1000

// convergenceCurvePoints is the nominal number of snapshots per run: the
// snapshot cadence is the baseline cycle count divided by this, so every
// variation yields roughly this many points (a few more, since sampled
// runs execute longer than the uninstrumented baseline).
const convergenceCurvePoints = 12

// Convergence produces the accuracy-convergence time series: how quickly
// each framework variation's sampled call-edge profile approaches the
// perfect profile as the program executes. Each variation runs once with
// a telemetry convergence recorder cloning the live profile on a fixed
// cycle cadence; every snapshot is scored with profile.Overlap against
// the perfect (exhaustive) profile, giving overlap-vs-cycles curves.
//
// The artifact runs in two waves: the snapshot cadence of the
// second-wave cells is derived from the first wave's baseline cycle
// count, exactly like Table 5 derives its timer period. Snapshots ride
// inside the cells, so the curves cache like every other artifact and
// the rendered table is byte-identical at any worker count.
func Convergence(cfg Config) (*Table, error) {
	callEdge := []string{"call-edge"}
	bt := cfg.NewBatch()
	base := bt.Cell(ConvergenceBenchmark, OptsSpec{}, NeverTrigger())
	perfect := bt.Cell(ConvergenceBenchmark, OptsSpec{Instr: callEdge}, NeverTrigger())
	if err := bt.Run(); err != nil {
		return nil, err
	}

	interval := base.R().Stats.Cycles / convergenceCurvePoints
	if interval == 0 {
		interval = 1
	}

	variations := []core.Variation{
		core.FullDuplication, core.PartialDuplication, core.NoDuplication, core.Hybrid,
	}
	cells := make([]*Ref, len(variations))
	for i, v := range variations {
		opts := OptsSpec{Instr: callEdge, Framework: &core.Options{Variation: v}}
		cells[i] = bt.Add(cfg.ConvergenceCell(
			ConvergenceBenchmark, opts, CounterTrigger(ConvergenceInterval), interval))
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	pp := perfect.R().Profiles[0]
	t := &Table{
		ID: "convergence",
		Title: fmt.Sprintf("Call-edge profile accuracy (overlap %%) vs executed cycles, %s, counter/%d",
			ConvergenceBenchmark, ConvergenceInterval),
		Header: []string{"Cycles", "Full (%)", "Partial (%)", "No-Dup (%)", "Hybrid (%)"},
	}

	rows := 0
	for _, c := range cells {
		if n := len(c.R().Snapshots); n > rows {
			rows = n
		}
	}
	for row := 0; row < rows; row++ {
		line := []string{fmt.Sprintf("%d", uint64(row+1)*interval)}
		for _, c := range cells {
			snaps := c.R().Snapshots
			if row >= len(snaps) {
				// This variation's run ended before the boundary.
				line = append(line, "-")
				continue
			}
			line = append(line, pct(profile.Overlap(pp, snaps[row].Profiles[0])))
		}
		t.AddRow(line...)
	}
	final := []string{"end of run"}
	for i, c := range cells {
		ov := profile.Overlap(pp, c.R().Profiles[0])
		final = append(final, pct(ov))
		cfg.progress("convergence %s: %d snapshots, final overlap %.1f%% (%d samples)",
			variations[i], len(c.R().Snapshots), ov, c.R().Stats.CheckFires)
	}
	t.AddRow(final...)

	t.Notes = append(t.Notes,
		fmt.Sprintf("snapshot cadence %d cycles = baseline cycles / %d; rows are nominal boundaries (snapshots land at the first observer hook past each boundary)", interval, convergenceCurvePoints),
		"\"-\" marks boundaries past a variation's end of run; sampled runs outlive the baseline by their overhead",
		"overlap is computed against the exhaustive call-edge profile (§4.4's accuracy metric, extended along the time axis)")
	return t, nil
}
