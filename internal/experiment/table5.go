package experiment

import (
	"instrsample/internal/core"
	"instrsample/internal/profile"
)

// Table5CounterInterval is the counter interval used for the trigger
// comparison. The paper uses 30 000 against its 10 ms timer because that
// yields about the same number of samples on its benchmarks; we apply the
// same equalization per benchmark: the timer period is set to
// baselineCycles / (baselineChecks / interval), so both triggers take the
// same expected number of samples.
const Table5CounterInterval = 3000

// Table5 reproduces the paper's Table 5: accuracy of field-access
// profiling under Full-Duplication when samples are driven by a
// time-based trigger versus the counter-based trigger. The timer
// mis-attributes samples — a long cycle stretch (e.g. an OpIO) absorbs
// the interrupt and the *next* check takes the sample — and its rate is
// capped by the interrupt frequency, so it is markedly less accurate
// (paper: 63% vs 84% average overlap).
//
// This artifact runs in two waves: the timer period of the second-wave
// cells is derived from the first wave's baseline cycle counts.
func Table5(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	fieldOnly := []string{"field-access"}
	bt := cfg.NewBatch()
	base := make([]*Ref, len(suite))
	perfect := make([]*Ref, len(suite))
	for i, b := range suite {
		base[i] = bt.Cell(b.Name, OptsSpec{}, NeverTrigger())
		perfect[i] = bt.Cell(b.Name, OptsSpec{Instr: fieldOnly}, NeverTrigger())
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	// Second wave: equalize expected sample counts between the triggers.
	fwOpts := OptsSpec{
		Instr:     fieldOnly,
		Framework: &core.Options{Variation: core.FullDuplication},
	}
	timed := make([]*Ref, len(suite))
	counted := make([]*Ref, len(suite))
	for i, b := range suite {
		stats := base[i].R().Stats
		checks := stats.MethodEntries + stats.Backedges
		expectedSamples := checks / Table5CounterInterval
		if expectedSamples == 0 {
			expectedSamples = 1
		}
		period := stats.Cycles / expectedSamples
		timed[i] = bt.Cell(b.Name, fwOpts, TimerTrigger(period))
		counted[i] = bt.Cell(b.Name, fwOpts, CounterTrigger(Table5CounterInterval))
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "table5",
		Title:  "Accuracy (overlap %) of field-access profiling: time-based vs counter-based trigger",
		Header: []string{"Benchmark", "Time-based (%)", "Counter-based (%)"},
	}
	var sumT, sumC float64
	for i, b := range suite {
		pp := perfect[i].R().Profiles[0]
		ovT := profile.Overlap(pp, timed[i].R().Profiles[0])
		ovC := profile.Overlap(pp, counted[i].R().Profiles[0])
		sumT += ovT
		sumC += ovC
		t.AddRow(b.Name, pct(ovT), pct(ovC))
		cfg.progress("table5 %s: timer %.0f%% (%d samples) counter %.0f%% (%d samples)",
			b.Name, ovT, timed[i].R().Stats.CheckFires, ovC, counted[i].R().Stats.CheckFires)
	}
	n := float64(len(suite))
	t.AddRow("Average", pct(sumT/n), pct(sumC/n))
	t.Notes = append(t.Notes,
		"paper: time-based avg 63%, counter-based avg 84% (counter interval 30000 vs 10ms timer)",
		"timer period equalized per benchmark to match the counter's expected sample count")
	return t, nil
}
