package experiment

import (
	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/instr"
	"instrsample/internal/profile"
	"instrsample/internal/trigger"
)

// Table5CounterInterval is the counter interval used for the trigger
// comparison. The paper uses 30 000 against its 10 ms timer because that
// yields about the same number of samples on its benchmarks; we apply the
// same equalization per benchmark: the timer period is set to
// baselineCycles / (baselineChecks / interval), so both triggers take the
// same expected number of samples.
const Table5CounterInterval = 3000

// Table5 reproduces the paper's Table 5: accuracy of field-access
// profiling under Full-Duplication when samples are driven by a
// time-based trigger versus the counter-based trigger. The timer
// mis-attributes samples — a long cycle stretch (e.g. an OpIO) absorbs
// the interrupt and the *next* check takes the sample — and its rate is
// capped by the interrupt frequency, so it is markedly less accurate
// (paper: 63% vs 84% average overlap).
func Table5(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table5",
		Title:  "Accuracy (overlap %) of field-access profiling: time-based vs counter-based trigger",
		Header: []string{"Benchmark", "Time-based (%)", "Counter-based (%)"},
	}
	fieldOnly := func() []instr.Instrumenter {
		return []instr.Instrumenter{&instr.FieldAccess{}}
	}
	var sumT, sumC float64
	for _, b := range suite {
		prog := b.Build(cfg.Scale)
		base, err := cfg.run(prog, compile.Options{}, nil)
		if err != nil {
			return nil, err
		}
		perfect, err := cfg.run(prog, compile.Options{Instrumenters: fieldOnly()}, nil)
		if err != nil {
			return nil, err
		}
		// Equalize expected sample counts between the two triggers.
		checks := base.out.Stats.MethodEntries + base.out.Stats.Backedges
		expectedSamples := checks / Table5CounterInterval
		if expectedSamples == 0 {
			expectedSamples = 1
		}
		period := base.out.Stats.Cycles / expectedSamples

		fwOpts := compile.Options{
			Instrumenters: fieldOnly(),
			Framework:     &core.Options{Variation: core.FullDuplication},
		}
		timed, err := cfg.run(prog, fwOpts, trigger.NewTimer(period))
		if err != nil {
			return nil, err
		}
		counted, err := cfg.run(prog, fwOpts, trigger.NewCounter(Table5CounterInterval))
		if err != nil {
			return nil, err
		}
		ovT := profile.Overlap(perfect.profiles()[0], timed.profiles()[0])
		ovC := profile.Overlap(perfect.profiles()[0], counted.profiles()[0])
		sumT += ovT
		sumC += ovC
		t.AddRow(b.Name, pct(ovT), pct(ovC))
		cfg.progress("table5 %s: timer %.0f%% (%d samples) counter %.0f%% (%d samples)",
			b.Name, ovT, timed.out.Stats.CheckFires, ovC, counted.out.Stats.CheckFires)
	}
	n := float64(len(suite))
	t.AddRow("Average", pct(sumT/n), pct(sumC/n))
	t.Notes = append(t.Notes,
		"paper: time-based avg 63%, counter-based avg 84% (counter interval 30000 vs 10ms timer)",
		"timer period equalized per benchmark to match the counter's expected sample count")
	return t, nil
}
