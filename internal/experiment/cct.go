package experiment

import (
	"fmt"

	"instrsample/internal/core"
	"instrsample/internal/profile"
)

// AblationCCT reproduces §2's warning about instrumentations "that rely
// on observing events in succession, such as updating a context-sensitive
// data structure on all method entries and exits": a shadow-stack calling
// context tree corrupts when its enter/exit probes are sampled
// independently, while the Arnold–Sweeney-style stack-walking adaptation
// ([8]) remains accurate at every interval. Measured on javac (deeply
// recursive, context-rich).
func AblationCCT(cfg Config) (*Table, error) {
	const benchName = "javac"
	variants := []struct {
		name string
		ins  string
	}{
		{"naive enter/exit shadow stack", "cct"},
		{"stack-walking (Arnold–Sweeney)", "cct-sampled"},
	}
	intervals := []int64{1, 100, 1000}

	bt := cfg.NewBatch()
	// Perfect tree: stack-walking CCT run exhaustively.
	perfect := bt.Cell(benchName, OptsSpec{Instr: []string{"cct-sampled"}}, NeverTrigger())
	runs := make([][]*Ref, len(variants)) // [variant][interval]
	for vi, va := range variants {
		runs[vi] = make([]*Ref, len(intervals))
		for ii, interval := range intervals {
			runs[vi][ii] = bt.Cell(benchName, OptsSpec{
				Instr:     []string{va.ins},
				Framework: &core.Options{Variation: core.FullDuplication},
			}, CounterTrigger(interval))
		}
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	pp := perfect.R().Profiles[0]
	t := &Table{
		ID:    "ablation-cct",
		Title: "Calling-context-tree profiling under sampling (javac)",
		Header: []string{"CCT variant", "Interval", "Samples",
			"Tree overlap (%)", "Contexts seen"},
	}
	for vi, va := range variants {
		for ii, interval := range intervals {
			out := runs[vi][ii].R()
			sp := out.Profiles[0]
			t.AddRow(va.name, fmt.Sprintf("%d", interval),
				fmt.Sprintf("%d", out.Stats.CheckFires),
				pct(profile.Overlap(pp, sp)),
				fmt.Sprintf("%d of %d", sp.NumEvents(), pp.NumEvents()))
			cfg.progress("ablation-cct %s interval %d done", va.name, interval)
		}
	}
	t.Notes = append(t.Notes,
		"§2: succession-dependent instrumentation needs modification to sample correctly;",
		"the stack-walking variant reconstructs the context at each sample instead")
	return t, nil
}
