package experiment

import (
	"fmt"

	"instrsample/internal/bench"
	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/instr"
	"instrsample/internal/profile"
	"instrsample/internal/trigger"
)

// AblationCCT reproduces §2's warning about instrumentations "that rely
// on observing events in succession, such as updating a context-sensitive
// data structure on all method entries and exits": a shadow-stack calling
// context tree corrupts when its enter/exit probes are sampled
// independently, while the Arnold–Sweeney-style stack-walking adaptation
// ([8]) remains accurate at every interval. Measured on javac (deeply
// recursive, context-rich).
func AblationCCT(cfg Config) (*Table, error) {
	prog := bench.Javac(cfg.Scale)

	// Perfect tree: stack-walking CCT run exhaustively.
	perfect, err := cfg.run(prog, compile.Options{
		Instrumenters: []instr.Instrumenter{&instr.SampledCCT{}},
	}, nil)
	if err != nil {
		return nil, err
	}
	pp := perfect.profiles()[0]

	t := &Table{
		ID:    "ablation-cct",
		Title: "Calling-context-tree profiling under sampling (javac)",
		Header: []string{"CCT variant", "Interval", "Samples",
			"Tree overlap (%)", "Contexts seen"},
	}
	type variant struct {
		name string
		ins  instr.Instrumenter
	}
	for _, va := range []variant{
		{"naive enter/exit shadow stack", &instr.CCT{}},
		{"stack-walking (Arnold–Sweeney)", &instr.SampledCCT{}},
	} {
		for _, interval := range []int64{1, 100, 1000} {
			out, err := cfg.run(prog, compile.Options{
				Instrumenters: []instr.Instrumenter{va.ins},
				Framework:     &core.Options{Variation: core.FullDuplication},
			}, trigger.NewCounter(interval))
			if err != nil {
				return nil, err
			}
			sp := out.profiles()[0]
			t.AddRow(va.name, fmt.Sprintf("%d", interval),
				fmt.Sprintf("%d", out.out.Stats.CheckFires),
				pct(profile.Overlap(pp, sp)),
				fmt.Sprintf("%d of %d", sp.NumEvents(), pp.NumEvents()))
			cfg.progress("ablation-cct %s interval %d done", va.name, interval)
		}
	}
	t.Notes = append(t.Notes,
		"§2: succession-dependent instrumentation needs modification to sample correctly;",
		"the stack-walking variant reconstructs the context at each sample instead")
	return t, nil
}
