package experiment

import (
	"fmt"

	"instrsample/internal/core"
)

// yieldpointOpts is the Figure 8 configuration: Full-Duplication with the
// yieldpoint optimization.
func yieldpointOpts() OptsSpec {
	return OptsSpec{
		Instr:     paperInstr(),
		Framework: &core.Options{Variation: core.FullDuplication, YieldpointOpt: true},
	}
}

// Figure8A reproduces Table (A) of the paper's Figure 8: the framework
// overhead of the Jalapeño-specific implementation — Full-Duplication
// with the yieldpoint optimization, where the counter-based check
// *replaces* the yieldpoint on every entry and backedge instead of being
// added beside it. The paper's average drops from 4.9% to 1.4%.
func Figure8A(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	bt := cfg.NewBatch()
	type row struct{ base, fw *Ref }
	rows := make([]row, len(suite))
	for i, b := range suite {
		rows[i] = row{
			base: bt.Cell(b.Name, OptsSpec{}, NeverTrigger()),
			fw:   bt.Cell(b.Name, yieldpointOpts(), NeverTrigger()),
		}
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "figure8a",
		Title:  "Framework overhead with the yieldpoint optimization (no samples taken)",
		Header: []string{"Benchmark", "Framework Overhead (%)"},
	}
	var sum float64
	for i, b := range suite {
		ov := overhead(rows[i].fw.R(), rows[i].base.R())
		sum += ov
		t.AddRow(b.Name, pct(ov))
		cfg.progress("figure8a %s: %.1f%%", b.Name, ov)
	}
	t.AddRow("Average", pct(sum/float64(len(suite))))
	t.Notes = append(t.Notes, "paper: average 1.4% (vs 4.9% without the optimization)")
	return t, nil
}

// Figure8B reproduces Table (B) of the paper's Figure 8: total sampling
// overhead (both instrumentations) under the yieldpoint-optimized
// framework, across sample intervals, averaged over the suite. The
// paper's series converges to ~1.5% instead of ~5%.
func Figure8B(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	bt := cfg.NewBatch()
	base := make([]*Ref, len(suite))
	for i, b := range suite {
		base[i] = bt.Cell(b.Name, OptsSpec{}, NeverTrigger())
	}
	sampled := make([][]*Ref, len(Table4Intervals)) // [interval][bench]
	for ii, interval := range Table4Intervals {
		sampled[ii] = make([]*Ref, len(suite))
		for i, b := range suite {
			sampled[ii][i] = bt.Cell(b.Name, yieldpointOpts(), CounterTrigger(interval))
		}
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "figure8b",
		Title:  "Total sampling overhead with the yieldpoint optimization (suite averages)",
		Header: []string{"Sample Interval", "Total Sampling Overhead (%)"},
	}
	for ii, interval := range Table4Intervals {
		var sum float64
		for i := range suite {
			sum += overhead(sampled[ii][i].R(), base[i].R())
		}
		avg := sum / float64(len(suite))
		t.AddRow(fmt.Sprintf("%d", interval), pct(avg))
		cfg.progress("figure8b interval %d: %.1f%%", interval, avg)
	}
	t.Notes = append(t.Notes,
		"paper: 179.9 / 27.6 / 8.1 / 3.0 / 1.5 / 1.5 for intervals 1..100000")
	return t, nil
}
