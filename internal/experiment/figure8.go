package experiment

import (
	"fmt"

	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/trigger"
)

// Figure8A reproduces Table (A) of the paper's Figure 8: the framework
// overhead of the Jalapeño-specific implementation — Full-Duplication
// with the yieldpoint optimization, where the counter-based check
// *replaces* the yieldpoint on every entry and backedge instead of being
// added beside it. The paper's average drops from 4.9% to 1.4%.
func Figure8A(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "figure8a",
		Title:  "Framework overhead with the yieldpoint optimization (no samples taken)",
		Header: []string{"Benchmark", "Framework Overhead (%)"},
	}
	var sum float64
	for _, b := range suite {
		prog := b.Build(cfg.Scale)
		base, err := cfg.run(prog, compile.Options{}, nil)
		if err != nil {
			return nil, err
		}
		fw, err := cfg.run(prog, compile.Options{
			Instrumenters: paperInstrumenters(),
			Framework:     &core.Options{Variation: core.FullDuplication, YieldpointOpt: true},
		}, trigger.Never{})
		if err != nil {
			return nil, err
		}
		ov := overhead(fw.out, base.out)
		sum += ov
		t.AddRow(b.Name, pct(ov))
		cfg.progress("figure8a %s: %.1f%%", b.Name, ov)
	}
	t.AddRow("Average", pct(sum/float64(len(suite))))
	t.Notes = append(t.Notes, "paper: average 1.4% (vs 4.9% without the optimization)")
	return t, nil
}

// Figure8B reproduces Table (B) of the paper's Figure 8: total sampling
// overhead (both instrumentations) under the yieldpoint-optimized
// framework, across sample intervals, averaged over the suite. The
// paper's series converges to ~1.5% instead of ~5%.
func Figure8B(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "figure8b",
		Title:  "Total sampling overhead with the yieldpoint optimization (suite averages)",
		Header: []string{"Sample Interval", "Total Sampling Overhead (%)"},
	}
	baseCycles := make([]uint64, len(suite))
	for i, b := range suite {
		prog := b.Build(cfg.Scale)
		base, err := cfg.run(prog, compile.Options{}, nil)
		if err != nil {
			return nil, err
		}
		baseCycles[i] = base.out.Stats.Cycles
	}
	for _, interval := range Table4Intervals {
		var sum float64
		for i, b := range suite {
			prog := b.Build(cfg.Scale)
			out, err := cfg.run(prog, compile.Options{
				Instrumenters: paperInstrumenters(),
				Framework:     &core.Options{Variation: core.FullDuplication, YieldpointOpt: true},
			}, trigger.NewCounter(interval))
			if err != nil {
				return nil, err
			}
			sum += 100 * (float64(out.out.Stats.Cycles)/float64(baseCycles[i]) - 1)
		}
		avg := sum / float64(len(suite))
		t.AddRow(fmt.Sprintf("%d", interval), pct(avg))
		cfg.progress("figure8b interval %d: %.1f%%", interval, avg)
	}
	t.Notes = append(t.Notes,
		"paper: 179.9 / 27.6 / 8.1 / 3.0 / 1.5 / 1.5 for intervals 1..100000")
	return t, nil
}
