package experiment

import (
	"instrsample/internal/compile"
	"instrsample/internal/instr"
)

// Table1 reproduces the paper's Table 1: the execution-time overhead of
// exhaustive call-edge and field-access instrumentation (no framework)
// relative to uninstrumented code, per benchmark. The paper's averages
// are 88.3% (call-edge) and 60.4% (field-access); these instrumentations
// are deliberately naive — the point of the table is that they are far
// too expensive to run unnoticed at runtime.
func Table1(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table1",
		Title:  "Time overhead of exhaustive instrumentation without the framework (%)",
		Header: []string{"Benchmark", "Call-edge (%)", "Field-access (%)"},
	}
	var sumCE, sumFA float64
	for _, b := range suite {
		prog := b.Build(cfg.Scale)
		base, err := cfg.run(prog, compile.Options{}, nil)
		if err != nil {
			return nil, err
		}
		ce, err := cfg.run(prog, compile.Options{
			Instrumenters: []instr.Instrumenter{&instr.CallEdge{}},
		}, nil)
		if err != nil {
			return nil, err
		}
		fa, err := cfg.run(prog, compile.Options{
			Instrumenters: []instr.Instrumenter{&instr.FieldAccess{}},
		}, nil)
		if err != nil {
			return nil, err
		}
		ceOv := overhead(ce.out, base.out)
		faOv := overhead(fa.out, base.out)
		sumCE += ceOv
		sumFA += faOv
		t.AddRow(b.Name, pct(ceOv), pct(faOv))
		cfg.progress("table1 %s: call-edge %.1f%% field-access %.1f%%", b.Name, ceOv, faOv)
	}
	n := float64(len(suite))
	t.AddRow("Average", pct(sumCE/n), pct(sumFA/n))
	t.Notes = append(t.Notes,
		"paper: call-edge avg 88.3%, field-access avg 60.4% (Jalapeño, PPC 604e)")
	return t, nil
}
