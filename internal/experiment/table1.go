package experiment

// Table1 reproduces the paper's Table 1: the execution-time overhead of
// exhaustive call-edge and field-access instrumentation (no framework)
// relative to uninstrumented code, per benchmark. The paper's averages
// are 88.3% (call-edge) and 60.4% (field-access); these instrumentations
// are deliberately naive — the point of the table is that they are far
// too expensive to run unnoticed at runtime.
func Table1(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	bt := cfg.NewBatch()
	type row struct{ base, ce, fa *Ref }
	rows := make([]row, len(suite))
	for i, b := range suite {
		rows[i] = row{
			base: bt.Cell(b.Name, OptsSpec{}, NeverTrigger()),
			ce:   bt.Cell(b.Name, OptsSpec{Instr: []string{"call-edge"}}, NeverTrigger()),
			fa:   bt.Cell(b.Name, OptsSpec{Instr: []string{"field-access"}}, NeverTrigger()),
		}
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "table1",
		Title:  "Time overhead of exhaustive instrumentation without the framework (%)",
		Header: []string{"Benchmark", "Call-edge (%)", "Field-access (%)"},
	}
	var sumCE, sumFA float64
	for i, b := range suite {
		ceOv := overhead(rows[i].ce.R(), rows[i].base.R())
		faOv := overhead(rows[i].fa.R(), rows[i].base.R())
		sumCE += ceOv
		sumFA += faOv
		t.AddRow(b.Name, pct(ceOv), pct(faOv))
		cfg.progress("table1 %s: call-edge %.1f%% field-access %.1f%%", b.Name, ceOv, faOv)
	}
	n := float64(len(suite))
	t.AddRow("Average", pct(sumCE/n), pct(sumFA/n))
	t.Notes = append(t.Notes,
		"paper: call-edge avg 88.3%, field-access avg 60.4% (Jalapeño, PPC 604e)")
	return t, nil
}
