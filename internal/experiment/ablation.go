package experiment

import (
	"fmt"

	"instrsample/internal/bench"
	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/instr"
	"instrsample/internal/profile"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

// The ablations quantify design dimensions the paper discusses but does
// not tabulate: the space/overhead trade-off among the variations (§3),
// the deterministic-resonance risk of a fixed sample interval and its
// randomized mitigation (§4.4), the counted-backedge extension (§2), and
// the indirect i-cache cost of code duplication (§3, §4.4).

// AblationVariations compares all four variations on space, checking
// overhead and sampled accuracy at one interval, averaged over the suite.
// Partial-Duplication is not evaluated in the paper; §3.1 predicts it
// duplicates less code at identical sampling behaviour, and §3.2 predicts
// No-Duplication trades all the space for per-probe checks.
func AblationVariations(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ablation-variations",
		Title: "Variation trade-offs: space vs overhead vs accuracy (interval 1000, suite averages)",
		Header: []string{"Variation", "Code growth (%)", "Framework Overhead (%)",
			"Total @1000 (%)", "Call-Edge Acc (%)", "Field-Access Acc (%)"},
	}
	variations := []struct {
		name string
		opts core.Options
	}{
		{"Full-Duplication", core.Options{Variation: core.FullDuplication}},
		{"Partial-Duplication", core.Options{Variation: core.PartialDuplication}},
		{"No-Duplication", core.Options{Variation: core.NoDuplication}},
		{"Hybrid", core.Options{Variation: core.Hybrid}},
	}
	for _, va := range variations {
		var growth, fwOv, totOv, ceAcc, faAcc float64
		for _, b := range suite {
			prog := b.Build(cfg.Scale)
			base, err := cfg.run(prog, compile.Options{}, nil)
			if err != nil {
				return nil, err
			}
			perfect, err := cfg.run(prog, compile.Options{Instrumenters: paperInstrumenters()}, nil)
			if err != nil {
				return nil, err
			}
			fwOpts := compile.Options{Instrumenters: paperInstrumenters(), Framework: &va.opts}
			fw, err := cfg.run(prog, fwOpts, trigger.Never{})
			if err != nil {
				return nil, err
			}
			sampled, err := cfg.run(prog, fwOpts, trigger.NewCounter(1000))
			if err != nil {
				return nil, err
			}
			growth += 100 * (float64(fw.cr.CodeSize)/float64(base.cr.CodeSize) - 1)
			fwOv += overhead(fw.out, base.out)
			totOv += overhead(sampled.out, base.out)
			pp, sp := perfect.profiles(), sampled.profiles()
			ceAcc += profile.Overlap(pp[0], sp[0])
			faAcc += profile.Overlap(pp[1], sp[1])
		}
		n := float64(len(suite))
		t.AddRow(va.name, pct(growth/n), pct(fwOv/n), pct(totOv/n),
			fmt.Sprintf("%.0f", ceAcc/n), fmt.Sprintf("%.0f", faAcc/n))
		cfg.progress("ablation-variations %s done", va.name)
	}
	t.Notes = append(t.Notes,
		"§3 prediction: Partial-Duplication grows code less than Full at equal accuracy;",
		"No-Duplication grows none but keeps high checking overhead for dense instrumentation")
	return t, nil
}

// AblationResonance demonstrates §4.4's deterministic-correlation worst
// case on a purpose-built periodic workload (bench.Resonant): its check
// stream alternates between exactly two check sites, so an even sample
// interval resonates with the period and one site is never sampled. The
// failure is visible in the path profile — the main loop's own path
// disappears — and both an odd (co-prime) interval and the randomized
// trigger restore it.
func AblationResonance(cfg Config) (*Table, error) {
	prog := bench.Resonant(cfg.Scale)
	paths := func() []instr.Instrumenter { return []instr.Instrumenter{&instr.PathProfile{}} }
	perfect, err := cfg.run(prog, compile.Options{Instrumenters: paths()}, nil)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-resonance",
		Title:  "Fixed vs randomized sample interval on a check-periodic workload (path profiling)",
		Header: []string{"Trigger", "Samples", "Path Acc (%)", "Paths seen"},
	}
	triggers := []trigger.Trigger{
		trigger.NewCounter(200), // even: resonates with the period-2 stream
		trigger.NewCounter(199), // co-prime: no resonance
		trigger.NewRandomized(200, 20, 12345),
	}
	for _, tr := range triggers {
		out, err := cfg.run(prog, compile.Options{
			Instrumenters: paths(),
			Framework:     &core.Options{Variation: core.FullDuplication},
		}, tr)
		if err != nil {
			return nil, err
		}
		pp, sp := perfect.profiles()[0], out.profiles()[0]
		t.AddRow(tr.Name(), fmt.Sprintf("%d", out.out.Stats.CheckFires),
			fmt.Sprintf("%.0f", profile.Overlap(pp, sp)),
			fmt.Sprintf("%d of %d", sp.NumEvents(), pp.NumEvents()))
		cfg.progress("ablation-resonance %s done", tr.Name())
	}
	t.Notes = append(t.Notes,
		"§4.4: a fixed interval sharing a factor with the program's check period",
		"systematically misses events; a small random factor restores coverage")
	return t, nil
}

// AblationCountedIterations evaluates the §2 extension for observing N
// consecutive loop iterations per sample: larger budgets collect more
// events per sample (useful for iteration-correlated profiles) at a
// proportional overhead increase.
func AblationCountedIterations(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ablation-counted",
		Title: "Counted-backedge extension: N consecutive iterations per sample (interval 1000, suite averages)",
		Header: []string{"Iteration budget", "Probes executed", "Total Overhead (%)",
			"Field-Access Acc (%)"},
	}
	for _, budget := range []int64{0, 4, 16, 64} {
		var probes, totOv, faAcc float64
		for _, b := range suite {
			prog := b.Build(cfg.Scale)
			base, err := cfg.run(prog, compile.Options{}, nil)
			if err != nil {
				return nil, err
			}
			perfect, err := cfg.run(prog, compile.Options{Instrumenters: paperInstrumenters()}, nil)
			if err != nil {
				return nil, err
			}
			opts := compile.Options{
				Instrumenters: paperInstrumenters(),
				Framework: &core.Options{
					Variation:         core.FullDuplication,
					CountedIterations: budget > 0,
				},
			}
			cr, err := compile.Compile(prog, opts)
			if err != nil {
				return nil, err
			}
			out, err := vm.New(cr.Prog, vm.Config{
				Trigger:    trigger.NewCounter(1000),
				Handlers:   cr.Handlers,
				ICache:     cfg.icache(),
				IterBudget: budget,
			}).Run()
			if err != nil {
				return nil, err
			}
			probes += float64(out.Stats.Probes)
			totOv += 100 * (float64(out.Stats.Cycles)/float64(base.out.Stats.Cycles) - 1)
			var sp []*profile.Profile
			for _, rt := range cr.Runtimes {
				sp = append(sp, rt.Profile())
			}
			faAcc += profile.Overlap(perfect.profiles()[1], sp[1])
		}
		n := float64(len(suite))
		t.AddRow(fmt.Sprintf("%d", budget), fmt.Sprintf("%.3g", probes/n),
			pct(totOv/n), fmt.Sprintf("%.0f", faAcc/n))
		cfg.progress("ablation-counted budget %d done", budget)
	}
	t.Notes = append(t.Notes,
		"budget 0 = plain Full-Duplication (one excursion per sample);",
		"§2: a counted backedge keeps execution in duplicated code for N iterations")
	return t, nil
}

// AblationInlining quantifies §4.3's remark that "the method-entry
// overhead would be reduced if more aggressive inlining were performed
// before instrumentation occurs": with the aggressive inliner on, fewer
// method entries execute, so both the bare entry-check cost and the full
// framework overhead drop on call-dense benchmarks.
func AblationInlining(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ablation-inlining",
		Title: "Aggressive inlining vs framework overhead (suite averages)",
		Header: []string{"Configuration", "Method entries (rel %)",
			"Entry-check overhead (%)", "FD framework overhead (%)"},
	}
	var baselineEntries float64
	for _, inline := range []bool{false, true} {
		var entries, meOv, fwOv float64
		for _, b := range suite {
			prog := b.Build(cfg.Scale)
			base, err := cfg.run(prog, compile.Options{Inline: inline}, nil)
			if err != nil {
				return nil, err
			}
			me, err := cfg.run(prog, compile.Options{
				Inline:     inline,
				ChecksOnly: &core.ChecksOnly{Entries: true},
			}, trigger.Never{})
			if err != nil {
				return nil, err
			}
			fw, err := cfg.run(prog, compile.Options{
				Inline:        inline,
				Instrumenters: paperInstrumenters(),
				Framework:     &core.Options{Variation: core.FullDuplication},
			}, trigger.Never{})
			if err != nil {
				return nil, err
			}
			entries += float64(base.out.Stats.MethodEntries)
			meOv += overhead(me.out, base.out)
			fwOv += overhead(fw.out, base.out)
		}
		n := float64(len(suite))
		if !inline {
			baselineEntries = entries
		}
		name := "default (no aggressive inlining, as the paper measures)"
		rel := 100.0
		if inline {
			name = "aggressive inlining before instrumentation"
			rel = 100 * entries / baselineEntries
		}
		t.AddRow(name, pct(rel), pct(meOv/n), pct(fwOv/n))
		cfg.progress("ablation-inlining inline=%v done", inline)
	}
	t.Notes = append(t.Notes,
		"§4.3: entry-check overhead falls with the executed method entries;",
		"the paper's own numbers use default, non-aggressive inlining heuristics")
	return t, nil
}

// AblationICache quantifies the indirect cost of code duplication by
// running the Table 2 configuration with and without the i-cache model.
func AblationICache(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ablation-icache",
		Title: "Direct vs indirect framework overhead: i-cache model off/on (suite averages)",
		Header: []string{"Configuration", "Framework Overhead (%)",
			"Total @ interval 1 (%)"},
	}
	for _, useIC := range []bool{false, true} {
		sub := cfg
		sub.ICache = useIC
		var fwOv, int1Ov float64
		for _, b := range suite {
			prog := b.Build(cfg.Scale)
			base, err := sub.run(prog, compile.Options{}, nil)
			if err != nil {
				return nil, err
			}
			opts := compile.Options{
				Instrumenters: paperInstrumenters(),
				Framework:     &core.Options{Variation: core.FullDuplication},
			}
			fw, err := sub.run(prog, opts, trigger.Never{})
			if err != nil {
				return nil, err
			}
			i1, err := sub.run(prog, opts, trigger.Always{})
			if err != nil {
				return nil, err
			}
			fwOv += overhead(fw.out, base.out)
			int1Ov += overhead(i1.out, base.out)
		}
		n := float64(len(suite))
		name := "no i-cache (direct costs only)"
		if useIC {
			name = "with i-cache (adds duplication's indirect cost)"
		}
		t.AddRow(name, pct(fwOv/n), pct(int1Ov/n))
		cfg.progress("ablation-icache %v done", useIC)
	}
	t.Notes = append(t.Notes,
		"§4.4 note 6: interval-1 sampling exceeds exhaustive instrumentation cost",
		"because of the jumping between checking and duplicated code")
	return t, nil
}
