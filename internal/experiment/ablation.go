package experiment

import (
	"fmt"

	"instrsample/internal/core"
	"instrsample/internal/profile"
)

// The ablations quantify design dimensions the paper discusses but does
// not tabulate: the space/overhead trade-off among the variations (§3),
// the deterministic-resonance risk of a fixed sample interval and its
// randomized mitigation (§4.4), the counted-backedge extension (§2), and
// the indirect i-cache cost of code duplication (§3, §4.4).

// AblationVariations compares all four variations on space, checking
// overhead and sampled accuracy at one interval, averaged over the suite.
// Partial-Duplication is not evaluated in the paper; §3.1 predicts it
// duplicates less code at identical sampling behaviour, and §3.2 predicts
// No-Duplication trades all the space for per-probe checks.
func AblationVariations(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	variations := []struct {
		name string
		opts core.Options
	}{
		{"Full-Duplication", core.Options{Variation: core.FullDuplication}},
		{"Partial-Duplication", core.Options{Variation: core.PartialDuplication}},
		{"No-Duplication", core.Options{Variation: core.NoDuplication}},
		{"Hybrid", core.Options{Variation: core.Hybrid}},
	}

	bt := cfg.NewBatch()
	base := make([]*Ref, len(suite))
	perfect := make([]*Ref, len(suite))
	for i, b := range suite {
		base[i] = bt.Cell(b.Name, OptsSpec{}, NeverTrigger())
		perfect[i] = bt.Cell(b.Name, OptsSpec{Instr: paperInstr()}, NeverTrigger())
	}
	type pair struct{ fw, sampled *Ref }
	cells := make([][]pair, len(variations)) // [variation][bench]
	for vi := range variations {
		fwOpts := OptsSpec{Instr: paperInstr(), Framework: &variations[vi].opts}
		cells[vi] = make([]pair, len(suite))
		for i, b := range suite {
			cells[vi][i] = pair{
				fw:      bt.Cell(b.Name, fwOpts, NeverTrigger()),
				sampled: bt.Cell(b.Name, fwOpts, CounterTrigger(1000)),
			}
		}
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "ablation-variations",
		Title: "Variation trade-offs: space vs overhead vs accuracy (interval 1000, suite averages)",
		Header: []string{"Variation", "Code growth (%)", "Framework Overhead (%)",
			"Total @1000 (%)", "Call-Edge Acc (%)", "Field-Access Acc (%)"},
	}
	for vi, va := range variations {
		var growth, fwOv, totOv, ceAcc, faAcc float64
		for i := range suite {
			b, fw, sampled := base[i].R(), cells[vi][i].fw.R(), cells[vi][i].sampled.R()
			growth += 100 * (float64(fw.CodeSize)/float64(b.CodeSize) - 1)
			fwOv += overhead(fw, b)
			totOv += overhead(sampled, b)
			pp := perfect[i].R().Profiles
			ceAcc += profile.Overlap(pp[0], sampled.Profiles[0])
			faAcc += profile.Overlap(pp[1], sampled.Profiles[1])
		}
		n := float64(len(suite))
		t.AddRow(va.name, pct(growth/n), pct(fwOv/n), pct(totOv/n),
			fmt.Sprintf("%.0f", ceAcc/n), fmt.Sprintf("%.0f", faAcc/n))
		cfg.progress("ablation-variations %s done", va.name)
	}
	t.Notes = append(t.Notes,
		"§3 prediction: Partial-Duplication grows code less than Full at equal accuracy;",
		"No-Duplication grows none but keeps high checking overhead for dense instrumentation")
	return t, nil
}

// AblationResonance demonstrates §4.4's deterministic-correlation worst
// case on a purpose-built periodic workload (bench.Resonant): its check
// stream alternates between exactly two check sites, so an even sample
// interval resonates with the period and one site is never sampled. The
// failure is visible in the path profile — the main loop's own path
// disappears — and both an odd (co-prime) interval and the randomized
// trigger restore it.
func AblationResonance(cfg Config) (*Table, error) {
	paths := OptsSpec{Instr: []string{"path"}}
	fwPaths := OptsSpec{
		Instr:     []string{"path"},
		Framework: &core.Options{Variation: core.FullDuplication},
	}
	triggers := []TriggerSpec{
		CounterTrigger(200), // even: resonates with the period-2 stream
		CounterTrigger(199), // co-prime: no resonance
		RandomizedTrigger(200, 20, 12345),
	}

	bt := cfg.NewBatch()
	perfect := bt.Cell("resonant", paths, NeverTrigger())
	runs := make([]*Ref, len(triggers))
	for i, tr := range triggers {
		runs[i] = bt.Cell("resonant", fwPaths, tr)
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "ablation-resonance",
		Title:  "Fixed vs randomized sample interval on a check-periodic workload (path profiling)",
		Header: []string{"Trigger", "Samples", "Path Acc (%)", "Paths seen"},
	}
	pp := perfect.R().Profiles[0]
	for i, tr := range triggers {
		out := runs[i].R()
		sp := out.Profiles[0]
		t.AddRow(tr.Name(), fmt.Sprintf("%d", out.Stats.CheckFires),
			fmt.Sprintf("%.0f", profile.Overlap(pp, sp)),
			fmt.Sprintf("%d of %d", sp.NumEvents(), pp.NumEvents()))
		cfg.progress("ablation-resonance %s done", tr.Name())
	}
	t.Notes = append(t.Notes,
		"§4.4: a fixed interval sharing a factor with the program's check period",
		"systematically misses events; a small random factor restores coverage")
	return t, nil
}

// AblationCountedIterations evaluates the §2 extension for observing N
// consecutive loop iterations per sample: larger budgets collect more
// events per sample (useful for iteration-correlated profiles) at a
// proportional overhead increase.
func AblationCountedIterations(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	budgets := []int64{0, 4, 16, 64}

	bt := cfg.NewBatch()
	base := make([]*Ref, len(suite))
	perfect := make([]*Ref, len(suite))
	for i, b := range suite {
		base[i] = bt.Cell(b.Name, OptsSpec{}, NeverTrigger())
		perfect[i] = bt.Cell(b.Name, OptsSpec{Instr: paperInstr()}, NeverTrigger())
	}
	runs := make([][]*Ref, len(budgets)) // [budget][bench]
	for bi, budget := range budgets {
		opts := OptsSpec{
			Instr: paperInstr(),
			Framework: &core.Options{
				Variation:         core.FullDuplication,
				CountedIterations: budget > 0,
			},
			IterBudget: budget,
		}
		runs[bi] = make([]*Ref, len(suite))
		for i, b := range suite {
			runs[bi][i] = bt.Cell(b.Name, opts, CounterTrigger(1000))
		}
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "ablation-counted",
		Title: "Counted-backedge extension: N consecutive iterations per sample (interval 1000, suite averages)",
		Header: []string{"Iteration budget", "Probes executed", "Total Overhead (%)",
			"Field-Access Acc (%)"},
	}
	for bi, budget := range budgets {
		var probes, totOv, faAcc float64
		for i := range suite {
			out := runs[bi][i].R()
			probes += float64(out.Stats.Probes)
			totOv += overhead(out, base[i].R())
			faAcc += profile.Overlap(perfect[i].R().Profiles[1], out.Profiles[1])
		}
		n := float64(len(suite))
		t.AddRow(fmt.Sprintf("%d", budget), fmt.Sprintf("%.3g", probes/n),
			pct(totOv/n), fmt.Sprintf("%.0f", faAcc/n))
		cfg.progress("ablation-counted budget %d done", budget)
	}
	t.Notes = append(t.Notes,
		"budget 0 = plain Full-Duplication (one excursion per sample);",
		"§2: a counted backedge keeps execution in duplicated code for N iterations")
	return t, nil
}

// AblationInlining quantifies §4.3's remark that "the method-entry
// overhead would be reduced if more aggressive inlining were performed
// before instrumentation occurs": with the aggressive inliner on, fewer
// method entries execute, so both the bare entry-check cost and the full
// framework overhead drop on call-dense benchmarks.
func AblationInlining(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	configs := []bool{false, true}

	bt := cfg.NewBatch()
	type row struct{ base, me, fw *Ref }
	rows := make([][]row, len(configs)) // [inline][bench]
	for ci, inline := range configs {
		rows[ci] = make([]row, len(suite))
		for i, b := range suite {
			rows[ci][i] = row{
				base: bt.Cell(b.Name, OptsSpec{Inline: inline}, NeverTrigger()),
				me: bt.Cell(b.Name, OptsSpec{
					Inline:     inline,
					ChecksOnly: &core.ChecksOnly{Entries: true},
				}, NeverTrigger()),
				fw: bt.Cell(b.Name, OptsSpec{
					Inline:    inline,
					Instr:     paperInstr(),
					Framework: &core.Options{Variation: core.FullDuplication},
				}, NeverTrigger()),
			}
		}
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "ablation-inlining",
		Title: "Aggressive inlining vs framework overhead (suite averages)",
		Header: []string{"Configuration", "Method entries (rel %)",
			"Entry-check overhead (%)", "FD framework overhead (%)"},
	}
	var baselineEntries float64
	for ci, inline := range configs {
		var entries, meOv, fwOv float64
		for i := range suite {
			r := rows[ci][i]
			entries += float64(r.base.R().Stats.MethodEntries)
			meOv += overhead(r.me.R(), r.base.R())
			fwOv += overhead(r.fw.R(), r.base.R())
		}
		n := float64(len(suite))
		if !inline {
			baselineEntries = entries
		}
		name := "default (no aggressive inlining, as the paper measures)"
		rel := 100.0
		if inline {
			name = "aggressive inlining before instrumentation"
			rel = 100 * entries / baselineEntries
		}
		t.AddRow(name, pct(rel), pct(meOv/n), pct(fwOv/n))
		cfg.progress("ablation-inlining inline=%v done", inline)
	}
	t.Notes = append(t.Notes,
		"§4.3: entry-check overhead falls with the executed method entries;",
		"the paper's own numbers use default, non-aggressive inlining heuristics")
	return t, nil
}

// AblationICache quantifies the indirect cost of code duplication by
// running the Table 2 configuration with and without the i-cache model.
func AblationICache(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	configs := []bool{false, true}
	fwOpts := OptsSpec{
		Instr:     paperInstr(),
		Framework: &core.Options{Variation: core.FullDuplication},
	}

	bt := cfg.NewBatch()
	type row struct{ base, fw, i1 *Ref }
	rows := make([][]row, len(configs)) // [icache][bench]
	for ci, useIC := range configs {
		sub := cfg
		sub.ICache = useIC
		rows[ci] = make([]row, len(suite))
		for i, b := range suite {
			rows[ci][i] = row{
				base: bt.Add(sub.Cell(b.Name, OptsSpec{}, NeverTrigger())),
				fw:   bt.Add(sub.Cell(b.Name, fwOpts, NeverTrigger())),
				i1:   bt.Add(sub.Cell(b.Name, fwOpts, AlwaysTrigger())),
			}
		}
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "ablation-icache",
		Title: "Direct vs indirect framework overhead: i-cache model off/on (suite averages)",
		Header: []string{"Configuration", "Framework Overhead (%)",
			"Total @ interval 1 (%)"},
	}
	for ci, useIC := range configs {
		var fwOv, int1Ov float64
		for i := range suite {
			r := rows[ci][i]
			fwOv += overhead(r.fw.R(), r.base.R())
			int1Ov += overhead(r.i1.R(), r.base.R())
		}
		n := float64(len(suite))
		name := "no i-cache (direct costs only)"
		if useIC {
			name = "with i-cache (adds duplication's indirect cost)"
		}
		t.AddRow(name, pct(fwOv/n), pct(int1Ov/n))
		cfg.progress("ablation-icache %v done", useIC)
	}
	t.Notes = append(t.Notes,
		"§4.4 note 6: interval-1 sampling exceeds exhaustive instrumentation cost",
		"because of the jumping between checking and duplicated code")
	return t, nil
}
