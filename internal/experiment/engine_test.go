package experiment

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"instrsample/internal/vm"
)

// renderAll generates every artifact under cfg and concatenates the
// ASCII renderings in registry order.
func renderAll(t *testing.T, cfg Config) string {
	t.Helper()
	var sb strings.Builder
	for _, e := range All() {
		tab, err := e.Gen(cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		sb.WriteString(tab.String())
	}
	return sb.String()
}

// TestParallelDeterminism is the tentpole acceptance check: every
// artifact rendered through a 1-worker engine must be byte-identical to
// the same artifacts rendered through an 8-worker engine shared by
// generators running in concurrent goroutines (the cmd/experiments
// shape). Run under -race this also exercises the engine, cache-less
// memo table, and cell runners for data races.
func TestParallelDeterminism(t *testing.T) {
	serialCfg := smokeConfig()
	serialCfg.Engine = NewEngine(1, nil)
	serial := renderAll(t, serialCfg)

	parCfg := smokeConfig()
	parCfg.Engine = NewEngine(8, nil)
	all := All()
	outs := make([]string, len(all))
	errs := make([]error, len(all))
	var wg sync.WaitGroup
	for i, e := range all {
		wg.Add(1)
		go func(i int, gen Generator) {
			defer wg.Done()
			tab, err := gen(parCfg)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = tab.String()
		}(i, e.Gen)
	}
	wg.Wait()
	var sb strings.Builder
	for i, e := range all {
		if errs[i] != nil {
			t.Fatalf("%s: %v", e.ID, errs[i])
		}
		sb.WriteString(outs[i])
	}
	if parallel := sb.String(); parallel != serial {
		t.Errorf("parallel rendering differs from serial (%d vs %d bytes)",
			len(parallel), len(serial))
	}
	st := parCfg.Engine.Stats()
	if st.MemoHits == 0 {
		t.Error("no memo hits: artifacts share cells, dedup should trigger")
	}
	if st.CacheHits != 0 {
		t.Errorf("cache hits %d without a cache", st.CacheHits)
	}
}

// TestEngineMemoDedup: N requests for one keyed cell run it once and all
// share the result.
func TestEngineMemoDedup(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	c := Cell{Key: "k1", Run: func(context.Context) (*CellResult, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		return &CellResult{Stats: vm.Stats{Cycles: 42}}, nil
	}}
	eng := NewEngine(4, nil)
	cells := make([]Cell, 10)
	for i := range cells {
		cells[i] = c
	}
	res, err := eng.Do(Config{}, cells)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Errorf("cell ran %d times, want 1", runs)
	}
	for i, r := range res {
		if r != res[0] {
			t.Errorf("result %d is not the shared result", i)
		}
	}
	st := eng.Stats()
	if st.CellsRun != 1 || st.MemoHits != 9 {
		t.Errorf("stats %+v, want CellsRun 1 MemoHits 9", st)
	}
}

// TestEngineUnkeyedNotMemoized: cells with an empty key always execute.
func TestEngineUnkeyedNotMemoized(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	c := Cell{Run: func(context.Context) (*CellResult, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		return &CellResult{}, nil
	}}
	eng := NewEngine(2, nil)
	if _, err := eng.Do(Config{}, []Cell{c, c, c}); err != nil {
		t.Fatal(err)
	}
	if runs != 3 {
		t.Errorf("unkeyed cell ran %d times, want 3", runs)
	}
}

// TestEngineErrorOrder: Do reports the first failing cell in input
// order, regardless of completion order.
func TestEngineErrorOrder(t *testing.T) {
	ok := Cell{Run: func(context.Context) (*CellResult, error) { return &CellResult{}, nil }}
	fail := func(i int) Cell {
		return Cell{Run: func(context.Context) (*CellResult, error) {
			return nil, fmt.Errorf("cell %d failed", i)
		}}
	}
	eng := NewEngine(4, nil)
	_, err := eng.Do(Config{}, []Cell{ok, fail(1), ok, fail(3)})
	if err == nil || !strings.Contains(err.Error(), "cell 1") {
		t.Errorf("got %v, want cell 1's error", err)
	}
}

// TestEngineErrorNotMemoized: a keyed failure propagates to its
// requesters but is not memoized — a later request for the same key runs
// the cell fresh. This is what keeps one job's cancellation from
// poisoning every later identical job in the profiling service.
func TestEngineErrorNotMemoized(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	boom := errors.New("boom")
	fail := true
	c := Cell{Key: "bad", Run: func(context.Context) (*CellResult, error) {
		mu.Lock()
		runs++
		shouldFail := fail
		mu.Unlock()
		if shouldFail {
			return nil, boom
		}
		return &CellResult{}, nil
	}}
	eng := NewEngine(4, nil)
	if _, err := eng.Do(Config{}, []Cell{c, c, c, c}); !errors.Is(err, boom) {
		t.Errorf("got %v, want boom", err)
	}
	mu.Lock()
	fail = false
	mu.Unlock()
	res, err := eng.Do(Config{}, []Cell{c})
	if err != nil {
		t.Fatalf("retry after failure: %v (stale failure memoized?)", err)
	}
	if res[0] == nil {
		t.Fatal("retry returned nil result")
	}
}

// TestEngineWorkersFloor: worker counts below 1 are clamped.
func TestEngineWorkersFloor(t *testing.T) {
	if w := NewEngine(0, nil).Workers(); w != 1 {
		t.Errorf("Workers() = %d, want 1", w)
	}
	if w := NewEngine(-3, nil).Workers(); w != 1 {
		t.Errorf("Workers() = %d, want 1", w)
	}
}

// TestEngineSlowest: timings are sorted descending and capped at n.
func TestEngineSlowest(t *testing.T) {
	eng := NewEngine(1, nil)
	for i := 0; i < 5; i++ {
		i := i
		c := Cell{Key: fmt.Sprintf("k%d", i), Run: func(context.Context) (*CellResult, error) {
			return &CellResult{}, nil
		}}
		if _, err := eng.Do(Config{}, []Cell{c}); err != nil {
			t.Fatal(err)
		}
	}
	slow := eng.Slowest(3)
	if len(slow) != 3 {
		t.Fatalf("Slowest(3) returned %d entries", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Duration > slow[i-1].Duration {
			t.Errorf("timings not descending at %d", i)
		}
	}
}

// TestEngineDoContextCancel: cancelling the context unblocks a running
// DoContext — the in-flight cell sees ctx.Done and the call returns the
// cancellation error instead of hanging.
func TestEngineDoContextCancel(t *testing.T) {
	eng := NewEngine(1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	slow := Cell{Key: "slow", Run: func(ctx context.Context) (*CellResult, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	done := make(chan error, 1)
	go func() {
		_, err := eng.DoContext(ctx, Config{}, []Cell{slow})
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("DoContext did not return after cancel")
	}
}

// TestEngineMemoWaiterCancel: a requester waiting on another requester's
// memoized flight unblocks when its own context is cancelled, without
// cancelling the flight for the owner.
func TestEngineMemoWaiterCancel(t *testing.T) {
	eng := NewEngine(2, nil)
	release := make(chan struct{})
	started := make(chan struct{})
	c := Cell{Key: "shared", Run: func(ctx context.Context) (*CellResult, error) {
		close(started)
		<-release
		return &CellResult{}, nil
	}}
	ownerDone := make(chan error, 1)
	go func() {
		_, err := eng.Do(Config{}, []Cell{c})
		ownerDone <- err
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.DoContext(ctx, Config{}, []Cell{c}); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter got %v, want context.Canceled", err)
	}
	close(release)
	if err := <-ownerDone; err != nil {
		t.Fatalf("owner failed: %v", err)
	}
}

// TestCellRunHonoursContext: a standard cell refuses to start under an
// already-cancelled context, and a cancellable context armed mid-run
// stops the VM with an error that is both a context cancellation and a
// vm cancellation (so callers can classify it either way).
func TestCellRunHonoursContext(t *testing.T) {
	cfg := Config{Scale: 0.05}
	c := cfg.Cell("compress", OptsSpec{}, NeverTrigger())
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := c.Run(pre); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: got %v, want context.Canceled", err)
	}

	// Mid-run: cancel shortly after the VM starts. If the benchmark
	// finishes first the run legitimately succeeds; both outcomes are
	// checked, neither may hang.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	big := Config{Scale: 1}.Cell("compress", OptsSpec{}, NeverTrigger())
	res, err := big.Run(ctx)
	if err == nil {
		t.Logf("benchmark finished before cancellation (result %v)", res.Stats.Cycles)
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: got %v, want wrapped context.Canceled", err)
	}
	if !vm.IsCancelled(err) {
		t.Fatalf("mid-run cancel: %v does not wrap vm.CancelError", err)
	}
}

// TestEngineStageHooks: the engine reports memo-flight (with the owning
// request's Config.Owner as cause) to parked waiters, and cache-probe /
// run to the cell that executes.
func TestEngineStageHooks(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(2, cache)

	type call struct{ stage, cause string }
	var mu sync.Mutex
	calls := map[string][]call{}
	hook := func(who string) func(stage, cause string) {
		return func(stage, cause string) {
			mu.Lock()
			calls[who] = append(calls[who], call{stage, cause})
			mu.Unlock()
		}
	}

	started := make(chan struct{})
	release := make(chan struct{})
	owner := Cell{Key: "shared", Stage: hook("owner"),
		Run: func(context.Context) (*CellResult, error) {
			close(started)
			<-release
			return &CellResult{}, nil
		}}
	waiter := Cell{Key: "shared", Stage: hook("waiter"),
		Run: func(context.Context) (*CellResult, error) {
			t.Error("waiter ran instead of parking on the flight")
			return &CellResult{}, nil
		}}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := eng.Do(Config{Owner: "job-000001"}, []Cell{owner}); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		<-started // the owner's flight is registered before Run starts
		if _, err := eng.Do(Config{Owner: "job-000002"}, []Cell{waiter}); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		// Give the waiter time to park, then let the owner finish.
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if got := calls["owner"]; len(got) != 2 ||
		got[0] != (call{"cache-probe", ""}) || got[1] != (call{"run", ""}) {
		t.Errorf("owner hook calls = %v, want cache-probe then run", got)
	}
	if got := calls["waiter"]; len(got) != 1 ||
		got[0] != (call{"memo-flight", "job-000001"}) {
		t.Errorf("waiter hook calls = %v, want memo-flight with owner job id", got)
	}
}

// TestEngineTimingSplit: CellTiming separates cache-probe from run
// time, and the two sum to the recorded total.
func TestEngineTimingSplit(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := Cell{Key: "split", Run: func(context.Context) (*CellResult, error) {
		time.Sleep(5 * time.Millisecond)
		return &CellResult{}, nil
	}}

	eng := NewEngine(1, cache)
	if _, err := eng.Do(Config{}, []Cell{c}); err != nil {
		t.Fatal(err)
	}
	miss := eng.Slowest(1)[0]
	if miss.Cached {
		t.Fatal("first resolution reported cached")
	}
	if miss.Exec < 5*time.Millisecond {
		t.Errorf("exec = %v, want >= 5ms", miss.Exec)
	}
	if miss.Probe+miss.Exec != miss.Duration {
		t.Errorf("probe %v + exec %v != total %v", miss.Probe, miss.Exec, miss.Duration)
	}

	// A second engine against the same cache hits on disk: all probe.
	eng2 := NewEngine(1, cache)
	if _, err := eng2.Do(Config{}, []Cell{c}); err != nil {
		t.Fatal(err)
	}
	hit := eng2.Slowest(1)[0]
	if !hit.Cached {
		t.Fatal("second resolution missed the cache")
	}
	if hit.Exec != 0 {
		t.Errorf("cache hit exec = %v, want 0", hit.Exec)
	}
	if hit.Probe != hit.Duration {
		t.Errorf("cache hit probe %v != total %v", hit.Probe, hit.Duration)
	}
}
