package experiment

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"instrsample/internal/vm"
)

// renderAll generates every artifact under cfg and concatenates the
// ASCII renderings in registry order.
func renderAll(t *testing.T, cfg Config) string {
	t.Helper()
	var sb strings.Builder
	for _, e := range All() {
		tab, err := e.Gen(cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		sb.WriteString(tab.String())
	}
	return sb.String()
}

// TestParallelDeterminism is the tentpole acceptance check: every
// artifact rendered through a 1-worker engine must be byte-identical to
// the same artifacts rendered through an 8-worker engine shared by
// generators running in concurrent goroutines (the cmd/experiments
// shape). Run under -race this also exercises the engine, cache-less
// memo table, and cell runners for data races.
func TestParallelDeterminism(t *testing.T) {
	serialCfg := smokeConfig()
	serialCfg.Engine = NewEngine(1, nil)
	serial := renderAll(t, serialCfg)

	parCfg := smokeConfig()
	parCfg.Engine = NewEngine(8, nil)
	all := All()
	outs := make([]string, len(all))
	errs := make([]error, len(all))
	var wg sync.WaitGroup
	for i, e := range all {
		wg.Add(1)
		go func(i int, gen Generator) {
			defer wg.Done()
			tab, err := gen(parCfg)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = tab.String()
		}(i, e.Gen)
	}
	wg.Wait()
	var sb strings.Builder
	for i, e := range all {
		if errs[i] != nil {
			t.Fatalf("%s: %v", e.ID, errs[i])
		}
		sb.WriteString(outs[i])
	}
	if parallel := sb.String(); parallel != serial {
		t.Errorf("parallel rendering differs from serial (%d vs %d bytes)",
			len(parallel), len(serial))
	}
	st := parCfg.Engine.Stats()
	if st.MemoHits == 0 {
		t.Error("no memo hits: artifacts share cells, dedup should trigger")
	}
	if st.CacheHits != 0 {
		t.Errorf("cache hits %d without a cache", st.CacheHits)
	}
}

// TestEngineMemoDedup: N requests for one keyed cell run it once and all
// share the result.
func TestEngineMemoDedup(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	c := Cell{Key: "k1", Run: func() (*CellResult, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		return &CellResult{Stats: vm.Stats{Cycles: 42}}, nil
	}}
	eng := NewEngine(4, nil)
	cells := make([]Cell, 10)
	for i := range cells {
		cells[i] = c
	}
	res, err := eng.Do(Config{}, cells)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Errorf("cell ran %d times, want 1", runs)
	}
	for i, r := range res {
		if r != res[0] {
			t.Errorf("result %d is not the shared result", i)
		}
	}
	st := eng.Stats()
	if st.CellsRun != 1 || st.MemoHits != 9 {
		t.Errorf("stats %+v, want CellsRun 1 MemoHits 9", st)
	}
}

// TestEngineUnkeyedNotMemoized: cells with an empty key always execute.
func TestEngineUnkeyedNotMemoized(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	c := Cell{Run: func() (*CellResult, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		return &CellResult{}, nil
	}}
	eng := NewEngine(2, nil)
	if _, err := eng.Do(Config{}, []Cell{c, c, c}); err != nil {
		t.Fatal(err)
	}
	if runs != 3 {
		t.Errorf("unkeyed cell ran %d times, want 3", runs)
	}
}

// TestEngineErrorOrder: Do reports the first failing cell in input
// order, regardless of completion order.
func TestEngineErrorOrder(t *testing.T) {
	ok := Cell{Run: func() (*CellResult, error) { return &CellResult{}, nil }}
	fail := func(i int) Cell {
		return Cell{Run: func() (*CellResult, error) {
			return nil, fmt.Errorf("cell %d failed", i)
		}}
	}
	eng := NewEngine(4, nil)
	_, err := eng.Do(Config{}, []Cell{ok, fail(1), ok, fail(3)})
	if err == nil || !strings.Contains(err.Error(), "cell 1") {
		t.Errorf("got %v, want cell 1's error", err)
	}
}

// TestEngineErrorMemoShared: a keyed failure is memoized like a success.
func TestEngineErrorMemoShared(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	boom := errors.New("boom")
	c := Cell{Key: "bad", Run: func() (*CellResult, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		return nil, boom
	}}
	eng := NewEngine(4, nil)
	if _, err := eng.Do(Config{}, []Cell{c, c, c, c}); !errors.Is(err, boom) {
		t.Errorf("got %v, want boom", err)
	}
	if runs != 1 {
		t.Errorf("failing cell ran %d times, want 1", runs)
	}
}

// TestEngineWorkersFloor: worker counts below 1 are clamped.
func TestEngineWorkersFloor(t *testing.T) {
	if w := NewEngine(0, nil).Workers(); w != 1 {
		t.Errorf("Workers() = %d, want 1", w)
	}
	if w := NewEngine(-3, nil).Workers(); w != 1 {
		t.Errorf("Workers() = %d, want 1", w)
	}
}

// TestEngineSlowest: timings are sorted descending and capped at n.
func TestEngineSlowest(t *testing.T) {
	eng := NewEngine(1, nil)
	for i := 0; i < 5; i++ {
		i := i
		c := Cell{Key: fmt.Sprintf("k%d", i), Run: func() (*CellResult, error) {
			return &CellResult{}, nil
		}}
		if _, err := eng.Do(Config{}, []Cell{c}); err != nil {
			t.Fatal(err)
		}
	}
	slow := eng.Slowest(3)
	if len(slow) != 3 {
		t.Fatalf("Slowest(3) returned %d entries", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Duration > slow[i-1].Duration {
			t.Errorf("timings not descending at %d", i)
		}
	}
}
