package experiment

import "instrsample/internal/core"

// Table3 reproduces the paper's Table 3: the check-only overhead of the
// No-Duplication variation, per instrumentation. Since No-Duplication
// guards every instrumentation operation individually, its overhead
// tracks instrumentation density: near-free for call-edge profiling
// (checks only on method entries; paper avg 1.3%) and nearly as expensive
// as the instrumentation itself for field-access profiling (paper avg
// 51.1% — a check costs about as much as the field-access probe, §4.3).
func Table3(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	bt := cfg.NewBatch()
	type row struct{ base, ce, fa *Ref }
	rows := make([]row, len(suite))
	nd := func(instrName string) OptsSpec {
		return OptsSpec{
			Instr:     []string{instrName},
			Framework: &core.Options{Variation: core.NoDuplication},
		}
	}
	for i, b := range suite {
		rows[i] = row{
			base: bt.Cell(b.Name, OptsSpec{}, NeverTrigger()),
			ce:   bt.Cell(b.Name, nd("call-edge"), NeverTrigger()),
			fa:   bt.Cell(b.Name, nd("field-access"), NeverTrigger()),
		}
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "table3",
		Title:  "Framework overhead of No-Duplication (no samples taken)",
		Header: []string{"Benchmark", "Call-edge (%)", "Field-access (%)"},
	}
	var sumCE, sumFA float64
	for i, b := range suite {
		ceOv := overhead(rows[i].ce.R(), rows[i].base.R())
		faOv := overhead(rows[i].fa.R(), rows[i].base.R())
		sumCE += ceOv
		sumFA += faOv
		t.AddRow(b.Name, pct(ceOv), pct(faOv))
		cfg.progress("table3 %s: call-edge %.1f%% field-access %.1f%%", b.Name, ceOv, faOv)
	}
	n := float64(len(suite))
	t.AddRow("Average", pct(sumCE/n), pct(sumFA/n))
	t.Notes = append(t.Notes, "paper: call-edge avg 1.3%, field-access avg 51.1%")
	return t, nil
}
