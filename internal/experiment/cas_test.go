package experiment

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"instrsample/internal/vm"
)

// smallResult builds a distinct result whose serialized size the tests
// can account for exactly.
func smallResult(n int64) *CellResult {
	return &CellResult{Stats: vm.Stats{Cycles: uint64(n)}, Return: n, Work: n}
}

// entryBytes is the exact on-disk size of key's entry.
func entryBytes(t *testing.T, c *Cache, key string) int64 {
	t.Helper()
	data, ok := c.GetAddr(c.Addr(key))
	if !ok {
		t.Fatalf("entry for %q not found", key)
	}
	return int64(len(data))
}

func diskEntries(t *testing.T, dir string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if addr, ok := strings.CutSuffix(e.Name(), ".json"); ok && ValidAddr(addr) {
			info, _ := e.Info()
			out[addr] = info.Size()
		}
	}
	return out
}

// TestCacheLRUExactAccounting stores entries of known sizes under a byte
// budget and checks that the in-memory accounting matches the disk
// exactly at every step, that eviction drops precisely the
// least-recently-used entries, and that a Load refreshes recency.
func TestCacheLRUExactAccounting(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCacheID(dir, "test-build")
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"cell a", "cell b", "cell c"}
	for i, k := range keys {
		c.Store(k, smallResult(int64(i+1)))
	}
	var sizes []int64
	var total int64
	for i, k := range keys {
		n := entryBytes(t, c, k)
		sizes = append(sizes, n)
		total += n
		// Pin mtimes so the cold-start scan's recency order is
		// unambiguous regardless of filesystem timestamp granularity.
		at := time.Now().Add(time.Duration(i-len(keys)) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, c.Addr(k)+".json"), at, at); err != nil {
			t.Fatal(err)
		}
	}

	// Budget exactly the current contents: nothing may be evicted.
	if err := c.SetMaxBytes(total); err != nil {
		t.Fatal(err)
	}
	if got := c.Bytes(); got != total {
		t.Fatalf("Bytes() = %d, want %d", got, total)
	}
	if got := c.Entries(); got != 3 {
		t.Fatalf("Entries() = %d, want 3", got)
	}

	// Refresh "cell a" (oldest by mtime), then store a fourth entry that
	// must evict exactly the now-least-recent entries — "cell b" first —
	// until the total fits.
	if _, ok := c.Load(keys[0]); !ok {
		t.Fatal("cell a should load")
	}
	c.Store("cell d", smallResult(4))
	d := entryBytes(t, c, "cell d")
	// After storing d (total+d > budget), eviction drops b, then c if
	// still over, never a (most recent) or d (just stored).
	want := total + d
	evicted := []string{}
	for _, victim := range []struct {
		key  string
		size int64
	}{{keys[1], sizes[1]}, {keys[2], sizes[2]}} {
		if want <= total {
			break
		}
		want -= victim.size
		evicted = append(evicted, victim.key)
	}
	if got := c.Bytes(); got != want {
		t.Fatalf("Bytes() after eviction = %d, want %d (evicted %v)", got, want, evicted)
	}
	for _, k := range evicted {
		if _, ok := c.Load(k); ok {
			t.Fatalf("%q should have been evicted", k)
		}
	}
	if _, ok := c.Load(keys[0]); !ok {
		t.Fatal("cell a (refreshed) must survive eviction")
	}
	if _, ok := c.Load("cell d"); !ok {
		t.Fatal("cell d (just stored) must survive eviction")
	}

	// The in-memory accounting must equal the bytes on disk exactly.
	disk := diskEntries(t, dir)
	var diskTotal int64
	for _, n := range disk {
		diskTotal += n
	}
	if diskTotal != c.Bytes() {
		t.Fatalf("disk total %d != accounted %d", diskTotal, c.Bytes())
	}
	if len(disk) != c.Entries() {
		t.Fatalf("disk entries %d != accounted %d", len(disk), c.Entries())
	}
}

// TestCacheLRUOverwriteAccounting re-stores a key and checks the delta
// accounting (no double count) stays exact.
func TestCacheLRUOverwriteAccounting(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCacheID(dir, "test-build")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetMaxBytes(1 << 20); err != nil {
		t.Fatal(err)
	}
	c.Store("k", smallResult(1))
	first := c.Bytes()
	big := smallResult(2)
	big.Output = make([]int64, 64)
	for i := range big.Output {
		big.Output[i] = int64(i) + 1e12
	}
	c.Store("k", big)
	if got := c.Entries(); got != 1 {
		t.Fatalf("Entries() = %d, want 1", got)
	}
	if got, want := c.Bytes(), entryBytes(t, c, "k"); got != want || got == first {
		t.Fatalf("Bytes() = %d, want %d (and != first store %d)", got, want, first)
	}
}

// TestCacheSetMaxBytesEvictsExisting arms a budget below the current
// contents and checks the oldest-modified entries go first.
func TestCacheSetMaxBytesEvictsExisting(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCacheID(dir, "test-build")
	if err != nil {
		t.Fatal(err)
	}
	c.Store("old", smallResult(1))
	c.Store("new", smallResult(2))
	// Make mtimes unambiguous regardless of filesystem resolution.
	past := time.Now().Add(-time.Minute)
	if err := os.Chtimes(filepath.Join(dir, c.Addr("old")+".json"), past, past); err != nil {
		t.Fatal(err)
	}
	newSize := entryBytes(t, c, "new")
	if err := c.SetMaxBytes(newSize); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load("old"); ok {
		t.Fatal("old entry should have been evicted by SetMaxBytes")
	}
	if _, ok := c.Load("new"); !ok {
		t.Fatal("new entry should survive")
	}
	if got := c.Bytes(); got != newSize {
		t.Fatalf("Bytes() = %d, want %d", got, newSize)
	}
}

// TestCASRoundTripAndIntegrity pushes an entry through the raw CAS
// surface: GetAddr/PutAddr round-trip byte-identically, addresses are
// portable via CASAddr, and a tampered payload is rejected.
func TestCASRoundTripAndIntegrity(t *testing.T) {
	c, err := OpenCacheID(t.TempDir(), "build-x")
	if err != nil {
		t.Fatal(err)
	}
	res := smallResult(7)
	c.Store("the cell", res)
	addr := c.Addr("the cell")
	if addr != CASAddr("build-x", "the cell") {
		t.Fatal("Addr must equal the pure CASAddr form")
	}
	data, ok := c.GetAddr(addr)
	if !ok {
		t.Fatal("GetAddr miss after Store")
	}
	if err := VerifyCAS("build-x", addr, data); err != nil {
		t.Fatalf("VerifyCAS rejected a genuine entry: %v", err)
	}
	dec, key, err := DecodeCAS(data)
	if err != nil || key != "the cell" || dec.Return != 7 {
		t.Fatalf("DecodeCAS = (%v, %q, %v), want return 7 key \"the cell\"", dec, key, err)
	}

	// A second store receiving the payload must accept it verbatim...
	c2, err := OpenCacheID(t.TempDir(), "build-x")
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.PutAddr(addr, data); err != nil {
		t.Fatalf("PutAddr rejected a genuine payload: %v", err)
	}
	got, ok := c2.GetAddr(addr)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("CAS round trip not byte-identical")
	}
	if r2, ok := c2.Load("the cell"); !ok || r2.Return != 7 {
		t.Fatal("replicated entry must serve Load on the receiving node")
	}

	// ...and reject tampering: flip the embedded cell key so the payload
	// no longer hashes to its claimed address.
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	m["cell"] = "someone else's cell"
	forged, _ := json.Marshal(m)
	if err := c2.PutAddr(addr, forged); err == nil {
		t.Fatal("PutAddr accepted a payload whose cell key does not hash to the address")
	}
	// Cross-build entries are also integrity mismatches by construction.
	c3, err := OpenCacheID(t.TempDir(), "build-y")
	if err != nil {
		t.Fatal(err)
	}
	if err := c3.PutAddr(addr, data); err == nil {
		t.Fatal("PutAddr accepted an entry addressed under a different build ID")
	}
}

// TestValidAddr pins the address syntax gate.
func TestValidAddr(t *testing.T) {
	good := CASAddr("id", "key")
	if !ValidAddr(good) {
		t.Fatalf("ValidAddr(%q) = false", good)
	}
	for _, bad := range []string{"", "..", "../../etc/passwd", strings.Repeat("g", 32),
		strings.Repeat("a", 31), strings.Repeat("a", 33), strings.ToUpper(good)} {
		if ValidAddr(bad) {
			t.Fatalf("ValidAddr(%q) = true", bad)
		}
	}
}
