package experiment

import (
	"context"
	"fmt"

	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/oracle"
	"instrsample/internal/scenario"
	"instrsample/internal/vm"
)

// ScenarioSweep is the scenario-engine artifact: a seeded workload
// family (internal/scenario) expanded into a deterministic program
// set, every program compiled under all four framework variations and
// run as a correctness probe — fast dispatcher recorded under the
// runtime oracle, then the recording replayed on both dispatchers and
// differentially checked bit-identical (trigger decisions, schedule
// decisions, all Stats counters). A row only prints if its cell's
// oracle stayed clean and its replays verified, so the table is
// evidence the four variations stay correct across a *space* of
// programs rather than the ten fixed benchmarks.
//
// Cells are pure and cache-keyed by the family's spec hash, the
// program index and the usual opts/trigger vocabulary; the family is
// re-expanded inside each cell, so cells share no IR.
func ScenarioSweep(cfg Config) (*Table, error) {
	// Scale sizes the family: 1.0 sweeps 4 programs, the soak scales up.
	count := 1 + int(3*cfg.Scale)
	if count < 1 {
		count = 1
	}
	if count > 12 {
		count = 12
	}
	fam := scenario.DefaultFamily(0x5ced5, count)
	if err := fam.Validate(); err != nil {
		return nil, err
	}
	famHash, err := fam.Hash()
	if err != nil {
		return nil, err
	}
	variations := []core.Variation{
		core.FullDuplication, core.PartialDuplication, core.NoDuplication, core.Hybrid,
	}

	bt := cfg.NewBatch()
	refs := make([][]*Ref, count) // [program][variation]
	for i := 0; i < count; i++ {
		refs[i] = make([]*Ref, len(variations))
		for vi, v := range variations {
			opts := OptsSpec{
				Instr:     []string{"call-edge"},
				Framework: &core.Options{Variation: v},
				Verify:    true,
			}
			trig := RandomizedTrigger(97, 43, fam.ProgramSeed(i)|1)
			refs[i][vi] = bt.Add(cfg.scenarioCell(fam, i, opts, trig))
		}
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "scenario-sweep",
		Title: fmt.Sprintf("Scenario sweep: family %q seed %#x (%d programs), oracle + record/replay", fam.Name, fam.Seed, count),
		Header: []string{"Program", "Variation", "Cycles", "Instrs", "Samples",
			"Sched picks", "Oracle events", "Replay"},
	}
	for i := 0; i < count; i++ {
		for vi, v := range variations {
			out := refs[i][vi].R()
			t.AddRow(
				fmt.Sprintf("%s/%d", fam.Name, i),
				v.String(),
				fmt.Sprintf("%d", out.Stats.Cycles),
				fmt.Sprintf("%d", out.Stats.Instrs),
				fmt.Sprintf("%d", out.Stats.CheckFires),
				fmt.Sprintf("%d", out.Aux["sched-picks"]),
				fmt.Sprintf("%d", out.Aux["oracle-events"]),
				"bit-identical x2",
			)
			cfg.progress("scenario-sweep %s/%d %s done", fam.Name, i, v)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("family hash (replay receipt): %s", famHash),
		"each cell records the fast-dispatcher run under the runtime oracle, then",
		"replays the recorded trigger + schedule decisions on both dispatchers;",
		"any divergence in decisions, Stats counters, return value or output fails",
		"the cell, so every printed row is a verified determinism witness")
	return t, nil
}

// scenarioCell builds the pure, cache-keyed cell for one (family
// program, variation) probe. The key carries the family spec hash, so
// editing the family spec invalidates exactly its own cells.
func (c Config) scenarioCell(fam *scenario.Family, idx int, o OptsSpec, t TriggerSpec) Cell {
	key := fmt.Sprintf("scenario fam=%s idx=%d %s %s replay",
		fam.SpecHash()[:16], idx, o.Key(), t.Key())
	// Copy the family so the cell closure is self-contained.
	f := *fam
	return Cell{Key: key, Run: func(ctx context.Context) (*CellResult, error) {
		return runScenarioCell(ctx, &f, idx, o, t)
	}}
}

// runScenarioCell compiles family program idx under the spec'd options,
// records the fast-dispatcher run with the oracle installed, replays
// the recording on both dispatchers, and fails unless everything is
// bit-identical and the oracle is clean.
func runScenarioCell(ctx context.Context, fam *scenario.Family, idx int, o OptsSpec, t TriggerSpec) (*CellResult, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	label := fmt.Sprintf("scenario %s/%d", fam.Name, idx)
	prog, err := fam.Program(idx)
	if err != nil {
		return nil, err
	}
	copts, err := o.Options()
	if err != nil {
		return nil, err
	}
	cr, err := compile.Compile(prog, copts)
	if err != nil {
		return nil, fmt.Errorf("%s: compile: %w", label, err)
	}
	orc := oracle.New()
	rec, live, err := scenario.Record(cr.Prog, vm.Config{
		Trigger:  t.New(),
		Handlers: cr.Handlers,
		Observer: orc,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: record: %w", label, err)
	}
	if err := orc.Finish(live.Stats); err != nil {
		return nil, fmt.Errorf("%s: oracle: %w", label, err)
	}
	for _, ref := range []bool{false, true} {
		if _, err := scenario.Replay(cr.Prog, vm.Config{
			Handlers:  cr.Handlers,
			Reference: ref,
		}, rec); err != nil {
			return nil, fmt.Errorf("%s (reference=%v): %w", label, ref, err)
		}
	}
	res := &CellResult{
		Stats:              live.Stats,
		CodeSize:           cr.CodeSize,
		CheckingCodeSize:   cr.CheckingCodeSize,
		DuplicatedCodeSize: cr.DuplicatedCodeSize,
		Work:               cr.Work,
		Return:             live.Return,
		Output:             live.Output,
		Aux: map[string]int64{
			"oracle-events":      int64(orc.Events()),
			"oracle-expected-p1": int64(orc.ExpectedPropertyViolations()),
			"sched-picks":        int64(rec.Sched.Picks),
			"trigger-polls":      int64(rec.Trigger.Polls),
			"trigger-fires":      int64(rec.Trigger.Fires),
		},
	}
	for _, rt := range cr.Runtimes {
		res.Profiles = append(res.Profiles, rt.Profile())
	}
	return res, nil
}
