package experiment

import (
	"fmt"

	"instrsample/internal/core"
)

// AblationOracle sweeps every variation against both healthy and
// fault-injected triggers with the runtime invariant oracle attached
// (OptsSpec.Verify). It is not a performance table: a cell that breaks
// Property 1, samples outside duplicated code, or leaves a guard
// unreconciled fails outright, so each printed row is evidence the
// invariants held across the whole suite under that configuration. The
// "Expected P1 excess" column counts the §3.2-predicted guard-triggered
// violations (No-Duplication and Hybrid fire guards without consuming a
// check), which the oracle tolerates but reports.
func AblationOracle(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	variations := []struct {
		name string
		opts core.Options
	}{
		{"Full-Duplication", core.Options{Variation: core.FullDuplication}},
		{"Partial-Duplication", core.Options{Variation: core.PartialDuplication}},
		{"No-Duplication", core.Options{Variation: core.NoDuplication}},
		{"Hybrid", core.Options{Variation: core.Hybrid}},
	}
	triggers := []TriggerSpec{
		CounterTrigger(1000),
		AlwaysTrigger(),
		FaultyTimerTrigger(50000, 30000, -17, 0xfa117),
		OverflowCounterTrigger(1000, 7),
		RetunerTrigger([]int64{1000, 1, 4000}, 64),
	}

	bt := cfg.NewBatch()
	runs := make([][][]*Ref, len(variations)) // [variation][trigger][bench]
	for vi := range variations {
		opts := OptsSpec{
			Instr:     paperInstr(),
			Framework: &variations[vi].opts,
			Verify:    true,
		}
		runs[vi] = make([][]*Ref, len(triggers))
		for ti := range triggers {
			runs[vi][ti] = make([]*Ref, len(suite))
			for i, b := range suite {
				runs[vi][ti][i] = bt.Cell(b.Name, opts, triggers[ti])
			}
		}
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "ablation-oracle",
		Title: "Runtime invariant oracle: healthy and fault-injected triggers (suite totals)",
		Header: []string{"Variation", "Trigger", "Samples", "Oracle events",
			"Expected P1 excess", "Verdict"},
	}
	for vi, va := range variations {
		for ti, tr := range triggers {
			var samples, events, expected int64
			for i := range suite {
				out := runs[vi][ti][i].R()
				samples += int64(out.Stats.CheckFires)
				events += out.Aux["oracle-events"]
				expected += out.Aux["oracle-expected-p1"]
			}
			t.AddRow(va.name, tr.Name(), fmt.Sprintf("%d", samples),
				fmt.Sprintf("%d", events), fmt.Sprintf("%d", expected), "pass")
			cfg.progress("ablation-oracle %s %s done", va.name, tr.Name())
		}
	}
	t.Notes = append(t.Notes,
		"every cell runs with the internal/oracle observer attached; an invariant",
		"violation fails the cell, so a complete table certifies Property 1,",
		"sample placement/attribution and exit discipline under trigger faults")
	return t, nil
}
