package experiment

import (
	"fmt"

	"instrsample/internal/bench"
	"instrsample/internal/compile"
	"instrsample/internal/instr"
	"instrsample/internal/ir"
	"instrsample/internal/profile"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

// Config is shared by every experiment.
type Config struct {
	// Scale multiplies workload sizes; 1.0 is full experiment scale.
	Scale float64
	// ICache enables the instruction-cache model (on by default via
	// DefaultConfig), capturing the indirect cost of code growth.
	ICache bool
	// Benchmarks restricts the suite (nil = all).
	Benchmarks []string
	// Progress, when non-nil, receives one line per completed run.
	Progress func(string)
}

// DefaultConfig is full experiment scale with the i-cache model on.
func DefaultConfig() Config { return Config{Scale: 1.0, ICache: true} }

func (c Config) suite() ([]bench.Benchmark, error) {
	all := bench.Suite()
	if len(c.Benchmarks) == 0 {
		return all, nil
	}
	var out []bench.Benchmark
	for _, name := range c.Benchmarks {
		b, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

func (c Config) progress(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(fmt.Sprintf(format, args...))
	}
}

func (c Config) icache() *vm.ICacheConfig {
	if !c.ICache {
		return nil
	}
	// The synthetic benchmarks compile to a few KiB of code, orders of
	// magnitude smaller than the paper's workloads; a full 16 KiB L1i
	// would hold everything and hide the indirect cost of code
	// duplication entirely. The experiments therefore model a cache
	// scaled to the programs (2 KiB, 32-byte lines), preserving the
	// paper's regime where hot code competes for cache space and the
	// duplicated copies add pressure.
	return &vm.ICacheConfig{SizeBytes: 2 << 10, LineBytes: 32}
}

// paperInstrumenters returns the two instrumentations of §4.2, in the
// order the experiments expect (0 = call-edge, 1 = field-access).
func paperInstrumenters() []instr.Instrumenter {
	return []instr.Instrumenter{&instr.CallEdge{}, &instr.FieldAccess{}}
}

// runOut bundles one completed run.
type runOut struct {
	out *vm.Result
	cr  *compile.Result
}

// profiles returns the run's accumulated profiles in owner order.
func (r *runOut) profiles() []*profile.Profile {
	var out []*profile.Profile
	for _, rt := range r.cr.Runtimes {
		out = append(out, rt.Profile())
	}
	return out
}

// run compiles prog under opts and executes it under trig.
func (c Config) run(prog *ir.Program, opts compile.Options, trig trigger.Trigger) (*runOut, error) {
	cr, err := compile.Compile(prog, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: compile: %w", prog.Name, err)
	}
	out, err := vm.New(cr.Prog, vm.Config{
		Trigger:  trig,
		Handlers: cr.Handlers,
		ICache:   c.icache(),
	}).Run()
	if err != nil {
		return nil, fmt.Errorf("%s: run: %w", prog.Name, err)
	}
	return &runOut{out: out, cr: cr}, nil
}

// overhead returns the percentage execution-time increase of x over base.
func overhead(x, base *vm.Result) float64 {
	return 100 * (float64(x.Stats.Cycles)/float64(base.Stats.Cycles) - 1)
}
