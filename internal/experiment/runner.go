package experiment

import (
	"fmt"

	"instrsample/internal/bench"
	"instrsample/internal/vm"
)

// Config is shared by every experiment.
type Config struct {
	// Scale multiplies workload sizes; 1.0 is full experiment scale.
	Scale float64
	// ICache enables the instruction-cache model (on by default via
	// DefaultConfig), capturing the indirect cost of code growth.
	ICache bool
	// Benchmarks restricts the suite (nil = all).
	Benchmarks []string
	// Progress, when non-nil, receives one line per completed cell and
	// per assembled table row. When Engine runs more than one worker,
	// Progress is called from multiple goroutines and must be safe for
	// concurrent use.
	Progress func(string)
	// Engine executes the artifact's cells. Nil means a private serial
	// engine per batch — correct, but without cross-artifact cell
	// sharing, parallelism or caching; cmd/experiments always sets one.
	Engine *Engine
	// Artifact labels this Config's cell requests in the engine's
	// metrics registry (cells.run.<artifact> etc.); cmd/experiments sets
	// it to the artifact ID before invoking each generator.
	Artifact string
	// Owner labels this Config's requests for memo-flight attribution:
	// when another request parks on a flight this Config started, its
	// Cell.Stage hook receives Owner as the cause. The profiling service
	// sets it to the job ID; cmd/experiments leaves it empty.
	Owner string
}

// DefaultConfig is full experiment scale with the i-cache model on.
func DefaultConfig() Config { return Config{Scale: 1.0, ICache: true} }

// engine returns the configured engine, or a throwaway serial one.
func (c Config) engine() *Engine {
	if c.Engine != nil {
		return c.Engine
	}
	return NewEngine(1, nil)
}

func (c Config) suite() ([]bench.Benchmark, error) {
	all := bench.Suite()
	if len(c.Benchmarks) == 0 {
		return all, nil
	}
	var out []bench.Benchmark
	for _, name := range c.Benchmarks {
		b, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// artifact returns the metrics label for this Config's cell requests.
func (c Config) artifact() string {
	if c.Artifact == "" {
		return "unlabeled"
	}
	return c.Artifact
}

func (c Config) progress(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(fmt.Sprintf(format, args...))
	}
}

func (c Config) icache() *vm.ICacheConfig {
	if !c.ICache {
		return nil
	}
	// The synthetic benchmarks compile to a few KiB of code, orders of
	// magnitude smaller than the paper's workloads; a full 16 KiB L1i
	// would hold everything and hide the indirect cost of code
	// duplication entirely. The experiments therefore model a cache
	// scaled to the programs (2 KiB, 32-byte lines), preserving the
	// paper's regime where hot code competes for cache space and the
	// duplicated copies add pressure.
	return &vm.ICacheConfig{SizeBytes: 2 << 10, LineBytes: 32}
}

// paperInstr names the two instrumentations of §4.2, in the order the
// experiments expect (0 = call-edge, 1 = field-access).
func paperInstr() []string { return []string{"call-edge", "field-access"} }

// overhead returns the percentage execution-time increase of x over base.
func overhead(x, base *CellResult) float64 {
	return 100 * (float64(x.Stats.Cycles)/float64(base.Stats.Cycles) - 1)
}
