package experiment

import (
	"fmt"

	"instrsample/internal/adaptive"
	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/instr"
	"instrsample/internal/ir"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

// AblationAdaptive runs the online multi-level recompilation controller
// (the Jalapeño adaptive system of the paper's citation [5], which this
// framework was built to feed) over the suite: every method starts at the
// cheap baseline level and is promoted mid-run from the continuously
// sampled call-edge profile under a cost–benefit test. Reported per
// benchmark: promotions made, compile cycles spent, and the end-to-end
// improvement over running everything at baseline — with the sampling
// framework's own overhead already included on both sides.
func AblationAdaptive(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ablation-adaptive",
		Title: "Online multi-level recompilation driven by sampled profiles",
		Header: []string{"Benchmark", "Promotions", "Compile cycles",
			"All-baseline cycles", "Adapted cycles (incl. compile)", "Improvement (%)"},
	}
	var sumImp float64
	for _, b := range suite {
		prog := b.Build(cfg.Scale)
		res, err := compile.Compile(prog, compile.Options{
			Instrumenters: []instr.Instrumenter{&instr.CallEdge{}},
			Framework:     &core.Options{Variation: core.FullDuplication, YieldpointOpt: true},
		})
		if err != nil {
			return nil, err
		}

		// Pinned at baseline level throughout.
		baseFactor := adaptive.DefaultLevels()[0].CostFactor
		baseOut, err := vm.New(res.Prog, vm.Config{
			Trigger:   trigger.NewCounter(211),
			Handlers:  res.Handlers,
			ICache:    cfg.icache(),
			CostScale: func(*ir.Method) uint32 { return baseFactor },
		}).Run()
		if err != nil {
			return nil, err
		}

		// Online-adapted (fresh compile so profiles don't mix).
		res2, err := compile.Compile(prog, compile.Options{
			Instrumenters: []instr.Instrumenter{&instr.CallEdge{}},
			Framework:     &core.Options{Variation: core.FullDuplication, YieldpointOpt: true},
		})
		if err != nil {
			return nil, err
		}
		ctl := adaptive.NewController(res2.Prog, res2.Runtimes[0], adaptive.ControllerConfig{})
		out, err := vm.New(res2.Prog, vm.Config{
			Trigger:   trigger.NewCounter(211),
			Handlers:  []vm.ProbeHandler{ctl},
			ICache:    cfg.icache(),
			CostScale: ctl.CostScale(),
		}).Run()
		if err != nil {
			return nil, err
		}
		adapted := out.Stats.Cycles + ctl.CompileCycles()
		imp := 100 * (1 - float64(adapted)/float64(baseOut.Stats.Cycles))
		sumImp += imp
		t.AddRow(b.Name,
			fmt.Sprintf("%d", len(ctl.Promotions())),
			fmt.Sprintf("%d", ctl.CompileCycles()),
			fmt.Sprintf("%d", baseOut.Stats.Cycles),
			fmt.Sprintf("%d", adapted),
			pct(imp))
		cfg.progress("ablation-adaptive %s: %d promotions, %.1f%% improvement",
			b.Name, len(ctl.Promotions()), imp)
	}
	t.AddRow("Average", "", "", "", "", pct(sumImp/float64(len(suite))))
	t.Notes = append(t.Notes,
		"methods promoted mid-run affect future invocations only (no on-stack",
		"replacement — the regime §1 designs for); sampling overhead included on both sides")
	return t, nil
}
