package experiment

import (
	"context"
	"fmt"

	"instrsample/internal/adaptive"
	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/ir"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

// adaptiveOpts is the adaptive ablation's compile configuration:
// continuously sampled call-edge profiling under the yieldpoint-optimized
// framework.
func adaptiveOpts() OptsSpec {
	return OptsSpec{
		Instr:     []string{"call-edge"},
		Framework: &core.Options{Variation: core.FullDuplication, YieldpointOpt: true},
	}
}

// adaptivePinnedCell measures the benchmark with every method pinned at
// the cheap baseline compilation level. It is a custom cell (the standard
// runner has no CostScale hook), but still deterministic and keyed, so it
// participates in memoization and the on-disk cache.
func adaptivePinnedCell(cfg Config, benchName string) Cell {
	key := fmt.Sprintf("bench=%s scale=%g icache=%v kind=adaptive-pinned",
		benchName, cfg.Scale, cfg.ICache)
	return Cell{Key: key, Run: func(ctx context.Context) (*CellResult, error) {
		prog, err := benchProgram(benchName, cfg.Scale)
		if err != nil {
			return nil, err
		}
		copts, err := adaptiveOpts().Options()
		if err != nil {
			return nil, err
		}
		res, err := compile.Compile(prog, copts)
		if err != nil {
			return nil, err
		}
		baseFactor := adaptive.DefaultLevels()[0].CostFactor
		vcfg := vm.Config{
			Trigger:   trigger.NewCounter(211),
			Handlers:  res.Handlers,
			ICache:    cfg.icache(),
			CostScale: func(*ir.Method) uint32 { return baseFactor },
		}
		if ctx != nil && ctx.Done() != nil {
			tok := vm.NewCancel()
			vcfg.Cancel = tok
			stop := context.AfterFunc(ctx, tok.Fire)
			defer stop()
		}
		out, err := vm.New(res.Prog, vcfg).Run()
		if err != nil {
			return nil, err
		}
		return &CellResult{Stats: out.Stats}, nil
	}}
}

// adaptiveOnlineCell measures the benchmark under the online controller:
// methods are promoted mid-run from the sampled call-edge profile. The
// promotion count and compile-cycle spend are returned through Aux.
func adaptiveOnlineCell(cfg Config, benchName string) Cell {
	key := fmt.Sprintf("bench=%s scale=%g icache=%v kind=adaptive-online",
		benchName, cfg.Scale, cfg.ICache)
	return Cell{Key: key, Run: func(ctx context.Context) (*CellResult, error) {
		prog, err := benchProgram(benchName, cfg.Scale)
		if err != nil {
			return nil, err
		}
		copts, err := adaptiveOpts().Options()
		if err != nil {
			return nil, err
		}
		res, err := compile.Compile(prog, copts)
		if err != nil {
			return nil, err
		}
		ctl := adaptive.NewController(res.Prog, res.Runtimes[0], adaptive.ControllerConfig{})
		vcfg := vm.Config{
			Trigger:   trigger.NewCounter(211),
			Handlers:  []vm.ProbeHandler{ctl},
			ICache:    cfg.icache(),
			CostScale: ctl.CostScale(),
		}
		if ctx != nil && ctx.Done() != nil {
			tok := vm.NewCancel()
			vcfg.Cancel = tok
			stop := context.AfterFunc(ctx, tok.Fire)
			defer stop()
		}
		out, err := vm.New(res.Prog, vcfg).Run()
		if err != nil {
			return nil, err
		}
		return &CellResult{
			Stats: out.Stats,
			Aux: map[string]int64{
				"promotions":     int64(len(ctl.Promotions())),
				"compile_cycles": int64(ctl.CompileCycles()),
			},
		}, nil
	}}
}

// AblationAdaptive runs the online multi-level recompilation controller
// (the Jalapeño adaptive system of the paper's citation [5], which this
// framework was built to feed) over the suite: every method starts at the
// cheap baseline level and is promoted mid-run from the continuously
// sampled call-edge profile under a cost–benefit test. Reported per
// benchmark: promotions made, compile cycles spent, and the end-to-end
// improvement over running everything at baseline — with the sampling
// framework's own overhead already included on both sides.
func AblationAdaptive(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	bt := cfg.NewBatch()
	type row struct{ pinned, online *Ref }
	rows := make([]row, len(suite))
	for i, b := range suite {
		rows[i] = row{
			pinned: bt.Add(adaptivePinnedCell(cfg, b.Name)),
			online: bt.Add(adaptiveOnlineCell(cfg, b.Name)),
		}
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "ablation-adaptive",
		Title: "Online multi-level recompilation driven by sampled profiles",
		Header: []string{"Benchmark", "Promotions", "Compile cycles",
			"All-baseline cycles", "Adapted cycles (incl. compile)", "Improvement (%)"},
	}
	var sumImp float64
	for i, b := range suite {
		pinned, online := rows[i].pinned.R(), rows[i].online.R()
		promotions := online.Aux["promotions"]
		compileCycles := uint64(online.Aux["compile_cycles"])
		adapted := online.Stats.Cycles + compileCycles
		imp := 100 * (1 - float64(adapted)/float64(pinned.Stats.Cycles))
		sumImp += imp
		t.AddRow(b.Name,
			fmt.Sprintf("%d", promotions),
			fmt.Sprintf("%d", compileCycles),
			fmt.Sprintf("%d", pinned.Stats.Cycles),
			fmt.Sprintf("%d", adapted),
			pct(imp))
		cfg.progress("ablation-adaptive %s: %d promotions, %.1f%% improvement",
			b.Name, promotions, imp)
	}
	t.AddRow("Average", "", "", "", "", pct(sumImp/float64(len(suite))))
	t.Notes = append(t.Notes,
		"methods promoted mid-run affect future invocations only (no on-stack",
		"replacement — the regime §1 designs for); sampling overhead included on both sides")
	return t, nil
}
