package experiment

import (
	"os"
	"path/filepath"
	"testing"

	"instrsample/internal/profile"
	"instrsample/internal/vm"
)

// TestCacheWarmRun is the cache acceptance check: a second engine over
// the same directory serves every cell from disk and the rendered
// artifact is byte-identical, including Figure 7, whose method labels
// must survive the serialization round trip.
func TestCacheWarmRun(t *testing.T) {
	dir := t.TempDir()
	gen := func() (string, string, EngineStats) {
		cache, err := OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		cfg := smokeConfig()
		cfg.Engine = NewEngine(4, cache)
		t1, err := Table1(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f7cfg := Config{Scale: 0.1, ICache: true, Engine: cfg.Engine}
		f7, err := Figure7(f7cfg)
		if err != nil {
			t.Fatal(err)
		}
		return t1.String(), f7.String(), cfg.Engine.Stats()
	}

	coldT1, coldF7, coldStats := gen()
	if coldStats.CacheHits != 0 {
		t.Fatalf("cold run had %d cache hits", coldStats.CacheHits)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != coldStats.CellsRun {
		t.Errorf("%d cache files for %d unique cells", len(entries), coldStats.CellsRun)
	}

	warmT1, warmF7, warmStats := gen()
	if warmT1 != coldT1 {
		t.Error("table1 differs between cold and warm runs")
	}
	if warmF7 != coldF7 {
		t.Error("figure7 differs between cold and warm runs (labels lost in cache?)")
	}
	if warmStats.CacheHits != warmStats.CellsRun || warmStats.CellsRun == 0 {
		t.Errorf("warm stats %+v, want every cell cache-hit", warmStats)
	}
}

// TestCacheRoundTripFields: every CellResult field survives Store/Load,
// and profile labels are reconstructed through the Labeler.
func TestCacheRoundTripFields(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := profile.New("edges")
	p.Add(7, 100)
	p.Add(9, 3)
	p.Labeler = func(k uint64) string { return map[uint64]string{7: "A->B", 9: "C->D"}[k] }
	in := &CellResult{
		Stats:              vm.Stats{Cycles: 123, CheckFires: 5},
		Profiles:           []*profile.Profile{p},
		CodeSize:           10,
		CheckingCodeSize:   20,
		DuplicatedCodeSize: 30,
		Work:               40,
		Aux:                map[string]int64{"promotions": 2},
	}
	cache.Store("cell-a", in)
	out, ok := cache.Load("cell-a")
	if !ok {
		t.Fatal("stored cell not loadable")
	}
	if out.Stats != in.Stats || out.CodeSize != 10 || out.CheckingCodeSize != 20 ||
		out.DuplicatedCodeSize != 30 || out.Work != 40 || out.Aux["promotions"] != 2 {
		t.Errorf("fields corrupted: %+v", out)
	}
	if len(out.Profiles) != 1 || out.Profiles[0].Name != "edges" {
		t.Fatalf("profiles corrupted: %+v", out.Profiles)
	}
	if got := out.Profiles[0].Count(7); got != 100 {
		t.Errorf("entry 7 count %d, want 100", got)
	}
	if out.Profiles[0].Labeler == nil || out.Profiles[0].Labeler(7) != "A->B" {
		t.Error("labels lost through the cache")
	}
}

// TestCacheMisses: absent keys, corrupt entries, and key collisions in
// the file name space all miss cleanly.
func TestCacheMisses(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Load("never-stored"); ok {
		t.Error("absent key reported as hit")
	}
	cache.Store("cell-b", &CellResult{})
	if _, ok := cache.Load("cell-c"); ok {
		t.Error("different key reported as hit")
	}
	// A corrupt entry file must fall back to a miss, not an error.
	if err := os.WriteFile(cache.path("cell-d"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Load("cell-d"); ok {
		t.Error("corrupt entry reported as hit")
	}
}

// TestCacheSeparateDirs: caches in different directories are independent.
func TestCacheSeparateDirs(t *testing.T) {
	root := t.TempDir()
	a, err := OpenCache(filepath.Join(root, "a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenCache(filepath.Join(root, "b"))
	if err != nil {
		t.Fatal(err)
	}
	a.Store("shared-key", &CellResult{Stats: vm.Stats{Cycles: 1}})
	if _, ok := b.Load("shared-key"); ok {
		t.Error("entry leaked across cache directories")
	}
	if res, ok := a.Load("shared-key"); !ok || res.Stats.Cycles != 1 {
		t.Error("entry lost in its own directory")
	}
}
