package experiment

import (
	"fmt"
	"strings"

	"instrsample/internal/bench"
	"instrsample/internal/core"
	"instrsample/internal/profile"
)

// Figure7 reproduces the paper's Figure 7: the javac call-edge profile,
// perfect versus sampled at interval 1000, rendered as one row per call
// edge with both sample-percentages and an ASCII bar, plus the resulting
// overlap percentage (the paper's instance illustrates 93.8%).
func Figure7(cfg Config) (*Table, error) {
	benchName := "javac"
	if len(cfg.Benchmarks) == 1 {
		benchName = cfg.Benchmarks[0]
	}
	if _, err := bench.ByName(benchName); err != nil {
		return nil, err
	}

	bt := cfg.NewBatch()
	perfect := bt.Cell(benchName, OptsSpec{Instr: paperInstr()}, NeverTrigger())
	sampled := bt.Cell(benchName, OptsSpec{
		Instr:     paperInstr(),
		Framework: &core.Options{Variation: core.FullDuplication},
	}, CounterTrigger(1000))
	if err := bt.Run(); err != nil {
		return nil, err
	}

	pp := perfect.R().Profiles[0] // call-edge
	sp := sampled.R().Profiles[0]
	ov := profile.Overlap(pp, sp)

	t := &Table{
		ID: "figure7",
		Title: fmt.Sprintf("%s call-edge profile, perfect vs sampled (interval 1000): overlap %.1f%%",
			benchName, ov),
		Header: []string{"Call edge", "Perfect (%)", "Sampled (%)", "Distribution"},
	}
	entries := pp.Entries()
	if len(entries) > 40 {
		entries = entries[:40]
	}
	spTotal := float64(sp.Total())
	for _, e := range entries {
		sPct := 0.0
		if spTotal > 0 {
			sPct = 100 * float64(sp.Count(e.Key)) / spTotal
		}
		bar := strings.Repeat("#", int(e.Percent+0.5))
		if bar == "" {
			bar = "."
		}
		label := fmt.Sprintf("%#x", e.Key)
		if pp.Labeler != nil {
			label = pp.Labeler(e.Key)
		}
		t.AddRow(label, pct2(e.Percent), pct2(sPct), bar)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d perfect events over %d edges; %d sampled events over %d edges",
			pp.Total(), pp.NumEvents(), sp.Total(), sp.NumEvents()),
		"paper's javac instance shows 93.8% overlap at interval 1000")
	return t, nil
}
