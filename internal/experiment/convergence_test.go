package experiment

import (
	"strconv"
	"strings"
	"testing"

	"instrsample/internal/profile"
	"instrsample/internal/telemetry"
	"instrsample/internal/vm"
)

// convergenceConfig keeps convergence tests fast; the artifact only uses
// javac, so the suite restriction is irrelevant but harmless.
func convergenceConfig() Config {
	return Config{Scale: 0.03, ICache: true, Artifact: "convergence"}
}

// TestConvergenceShape checks the artifact's structure: a row per
// snapshot boundary plus the end-of-run row, overlap percentages within
// [0, 100], and a generally non-degrading full-duplication curve (the
// sampled profile only accumulates samples).
func TestConvergenceShape(t *testing.T) {
	tab, err := Convergence(convergenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 3 {
		t.Fatalf("only %d rows; want several snapshot boundaries", len(tab.Rows))
	}
	if got := tab.Rows[len(tab.Rows)-1][0]; got != "end of run" {
		t.Fatalf("last row label %q, want \"end of run\"", got)
	}
	for r, row := range tab.Rows {
		if len(row) != 5 {
			t.Fatalf("row %d has %d cells", r, len(row))
		}
		for c := 1; c < len(row); c++ {
			if row[c] == "-" {
				continue
			}
			v, err := strconv.ParseFloat(row[c], 64)
			if err != nil || v < 0 || v > 100 {
				t.Errorf("row %d col %d = %q, want overlap in [0,100]", r, c, row[c])
			}
		}
	}
	// Samples only accumulate, so the final snapshot cannot beat the
	// end-of-run profile by much; sanity-check the end row parses.
	end := tab.Rows[len(tab.Rows)-1]
	for c := 1; c < len(end); c++ {
		if _, err := strconv.ParseFloat(end[c], 64); err != nil {
			t.Errorf("end-of-run col %d = %q not numeric", c, end[c])
		}
	}
}

// TestConvergenceDeterministicAcrossWorkers pins the acceptance
// criterion: the artifact renders byte-identically at any -j.
func TestConvergenceDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		cfg := convergenceConfig()
		cfg.Engine = NewEngine(workers, nil)
		tab, err := Convergence(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	serial := render(1)
	for _, w := range []int{4, 8} {
		if got := render(w); got != serial {
			t.Fatalf("output at -j %d differs from serial output", w)
		}
	}
}

// TestConvergenceWarmCache proves the snapshots survive the on-disk
// cache: a warm engine serves every cell from disk and renders identical
// bytes.
func TestConvergenceWarmCache(t *testing.T) {
	dir := t.TempDir()
	gen := func() (string, EngineStats) {
		cache, err := OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		cfg := convergenceConfig()
		cfg.Engine = NewEngine(4, cache)
		tab, err := Convergence(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tab.String(), cfg.Engine.Stats()
	}
	cold, coldStats := gen()
	if coldStats.CacheHits != 0 {
		t.Fatalf("cold run had %d cache hits", coldStats.CacheHits)
	}
	warm, warmStats := gen()
	if warm != cold {
		t.Error("convergence output differs between cold and warm runs (snapshots lost in cache?)")
	}
	if warmStats.CacheHits != warmStats.CellsRun || warmStats.CellsRun == 0 {
		t.Errorf("warm stats %+v, want every cell cache-hit", warmStats)
	}
}

// TestCacheRoundTripSnapshots: the Snapshots field survives Store/Load
// with cycle stamps, per-snapshot profiles and labels intact.
func TestCacheRoundTripSnapshots(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(n uint64) *profile.Profile {
		p := profile.New("edges")
		p.Add(1, n)
		p.Labeler = func(k uint64) string { return "edge-1" }
		return p
	}
	in := &CellResult{
		Stats: vm.Stats{Cycles: 500},
		Snapshots: []ProfileSnapshot{
			{Cycle: 100, Profiles: []*profile.Profile{mk(3)}},
			{Cycle: 200, Profiles: []*profile.Profile{mk(9)}},
		},
	}
	cache.Store("conv-cell", in)
	out, ok := cache.Load("conv-cell")
	if !ok {
		t.Fatal("stored cell not loadable")
	}
	if len(out.Snapshots) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(out.Snapshots))
	}
	for i, want := range []struct {
		cycle, count uint64
	}{{100, 3}, {200, 9}} {
		s := out.Snapshots[i]
		if s.Cycle != want.cycle {
			t.Errorf("snapshot %d cycle = %d, want %d", i, s.Cycle, want.cycle)
		}
		if len(s.Profiles) != 1 || s.Profiles[0].Count(1) != want.count {
			t.Errorf("snapshot %d profile corrupted: %+v", i, s.Profiles)
		}
		if s.Profiles[0].Labeler == nil || s.Profiles[0].Labeler(1) != "edge-1" {
			t.Errorf("snapshot %d labels lost", i)
		}
	}
	// Entries without snapshots keep decoding (omitempty compatibility).
	cache.Store("plain-cell", &CellResult{Stats: vm.Stats{Cycles: 1}})
	if plain, ok := cache.Load("plain-cell"); !ok || plain.Snapshots != nil {
		t.Error("snapshot-free cell did not round-trip cleanly")
	}
}

// TestEngineMetrics: with a registry attached, the engine attributes
// runs, cache hits/misses and memo hits to the requesting artifact.
func TestEngineMetrics(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	eng := NewEngine(2, cache)
	eng.AttachMetrics(reg)

	cfg := smokeConfig()
	cfg.Engine = eng
	cfg.Artifact = "table1"
	if _, err := Table1(cfg); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if got := reg.Counter(MetricCellsRun + ".table1").Value(); got != uint64(st.CellsRun) {
		t.Errorf("cells.run.table1 = %d, engine ran %d", got, st.CellsRun)
	}
	if got := reg.Counter(MetricCellCacheMiss + ".table1").Value(); got != uint64(st.CellsRun) {
		t.Errorf("cells.cache_miss.table1 = %d, want %d (cold cache)", got, st.CellsRun)
	}
	if got := reg.Counter(MetricCellCacheHit + ".table1").Value(); got != 0 {
		t.Errorf("cells.cache_hit.table1 = %d on a cold cache", got)
	}
	if reg.Histogram(MetricCellMillis, nil).Count() != uint64(st.CellsRun) {
		t.Error("duration histogram missed cells")
	}

	// Same cells again under a different label: all memo hits, charged
	// to the new artifact.
	cfg.Artifact = "table1-rerun"
	if _, err := Table1(cfg); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricCellMemoHit + ".table1-rerun").Value(); got == 0 {
		t.Error("rerun produced no memo hits under its own label")
	}
	if got := reg.Counter(MetricCellsRun + ".table1-rerun").Value(); got != 0 {
		t.Errorf("rerun executed %d cells, want 0 (memo)", got)
	}

	// A warm engine over the same cache charges hits per artifact.
	eng2 := NewEngine(2, cache)
	reg2 := telemetry.NewRegistry()
	eng2.AttachMetrics(reg2)
	cfg2 := smokeConfig()
	cfg2.Engine = eng2
	cfg2.Artifact = "table1"
	if _, err := Table1(cfg2); err != nil {
		t.Fatal(err)
	}
	st2 := eng2.Stats()
	if got := reg2.Counter(MetricCellCacheHit + ".table1").Value(); got != uint64(st2.CacheHits) || got == 0 {
		t.Errorf("warm cache_hit.table1 = %d, engine reports %d", got, st2.CacheHits)
	}

	// The snapshot flattens everything under sorted names; spot-check a
	// prefix scan finds the per-artifact counters.
	var found int
	for _, s := range reg.Snapshot() {
		if strings.HasPrefix(s.Name, "cells.") {
			found++
		}
	}
	if found < 4 {
		t.Errorf("snapshot exposes %d cells.* samples, want several", found)
	}
}
