package experiment

import (
	"context"
	"sort"
	"sync"
	"time"

	"instrsample/internal/telemetry"
)

// Engine executes cells across a bounded worker pool, deduplicating
// in-flight and completed cells by key (so a cell shared by several
// artifacts runs once per process) and consulting an optional on-disk
// Cache before running anything (so repeated invocations at the same
// scale are near-instant).
//
// One Engine is meant to be shared by every artifact generated in one
// invocation: cmd/experiments creates one and stores it in
// Config.Engine. An Engine is safe for concurrent use; generators
// running in parallel goroutines may call Do simultaneously.
type Engine struct {
	workers int
	cache   *Cache
	metrics *telemetry.Registry
	sem     chan struct{}

	mu        sync.Mutex
	memo      map[string]*flight
	timings   []CellTiming
	scheduled int
	completed int
	runs      int
	memoHits  int
	cacheHits int
}

// flight is one unique cell's execution slot: requesters past the first
// wait on done and share the result. owner labels who runs the cell
// (Config.Owner — the service sets its job ID) so waiters can attribute
// their memo-flight wait to the job actually doing the work.
type flight struct {
	done  chan struct{}
	owner string
	res   *CellResult
	err   error
}

// CellTiming records how long one executed cell took, split into the
// cache-probe phase (on-disk Load, including result decode on a hit)
// and the execution phase (Cell.Run on a miss).
type CellTiming struct {
	// Key is the cell's canonical key.
	Key string
	// Duration is the total wall-clock resolution time (Probe + Exec).
	Duration time.Duration
	// Probe is the on-disk cache probe/load time (zero with no cache).
	Probe time.Duration
	// Exec is the Cell.Run execution time (zero on a cache hit).
	Exec time.Duration
	// Cached reports whether the result came from the on-disk cache.
	Cached bool
}

// EngineStats summarizes an engine's activity.
type EngineStats struct {
	// CellsRun is the number of unique cells executed or cache-loaded.
	CellsRun int
	// MemoHits is the number of requests served by the in-memory memo
	// (cells shared across artifacts or repeated within one).
	MemoHits int
	// CacheHits is the number of unique cells served by the on-disk cache.
	CacheHits int
}

// NewEngine returns an engine running at most workers cells concurrently
// (minimum 1), consulting cache when non-nil.
func NewEngine(workers int, cache *Cache) *Engine {
	if workers < 1 {
		workers = 1
	}
	return &Engine{
		workers: workers,
		cache:   cache,
		sem:     make(chan struct{}, workers),
		memo:    make(map[string]*flight),
	}
}

// Workers returns the engine's concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Engine metric names. Counters are suffixed ".<artifact>" using the
// requesting Config's Artifact label, so hit/miss behaviour is
// attributable per artifact in the -timings report and the
// -telemetry-dir dump.
const (
	MetricCellsRun      = "cells.run"         // counter: unique cells resolved
	MetricCellCacheHit  = "cells.cache_hit"   // counter: served from the on-disk cache
	MetricCellCacheMiss = "cells.cache_miss"  // counter: executed (not in cache)
	MetricCellMemoHit   = "cells.memo_hit"    // counter: served from the in-memory memo
	MetricCellMillis    = "cells.duration_ms" // histogram: per-cell resolution time
)

// AttachMetrics directs the engine's per-cell accounting into reg; nil
// detaches. Attach before running any cells.
func (e *Engine) AttachMetrics(reg *telemetry.Registry) {
	e.mu.Lock()
	e.metrics = reg
	e.mu.Unlock()
}

// count bumps a per-artifact engine counter.
func (e *Engine) count(cfg Config, name string) {
	e.mu.Lock()
	reg := e.metrics
	e.mu.Unlock()
	if reg == nil {
		return
	}
	reg.Counter(name + "." + cfg.artifact()).Inc()
}

// Do executes the cells and returns their results in input order, which
// is what keeps artifact assembly — and therefore output bytes —
// independent of scheduling. Keyed duplicates are computed once. On
// error, the first failing cell's error (in input order) is returned.
//
// cfg supplies the Progress hook for per-cell completion lines; when the
// engine runs cells concurrently the hook must be safe for concurrent
// use.
func (e *Engine) Do(cfg Config, cells []Cell) ([]*CellResult, error) {
	return e.DoContext(context.Background(), cfg, cells)
}

// DoContext is Do with cancellation: a done ctx stops cells that have not
// started, unblocks requesters waiting on memoized flights, and — because
// standard cells arm a vm.Cancel from the context — stops running VMs at
// their next observation point. The flight that owns a cell keeps running
// under its own requester's context only; a waiter abandoning a flight
// does not cancel it for others.
func (e *Engine) DoContext(ctx context.Context, cfg Config, cells []Cell) ([]*CellResult, error) {
	e.mu.Lock()
	e.scheduled += len(cells)
	e.mu.Unlock()

	results := make([]*CellResult, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.one(ctx, cfg, cells[i])
			e.mu.Lock()
			e.completed++
			e.mu.Unlock()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// one resolves a single cell request through the memo table.
func (e *Engine) one(ctx context.Context, cfg Config, c Cell) (*CellResult, error) {
	if c.Key == "" {
		return e.execute(ctx, cfg, c)
	}
	e.mu.Lock()
	if f, ok := e.memo[c.Key]; ok {
		e.memoHits++
		e.mu.Unlock()
		e.count(cfg, MetricCellMemoHit)
		c.stage("memo-flight", f.owner)
		select {
		case <-f.done:
			return f.res, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{}), owner: cfg.Owner}
	e.memo[c.Key] = f
	e.mu.Unlock()
	f.res, f.err = e.execute(ctx, cfg, c)
	if f.err != nil {
		// Failures are not memoized: a cancellation belongs to the
		// requester that owned the flight, and a later identical request
		// must be free to run the cell for itself. Waiters already parked
		// on this flight still observe the error.
		e.mu.Lock()
		delete(e.memo, c.Key)
		e.mu.Unlock()
	}
	close(f.done)
	return f.res, f.err
}

// execute runs (or cache-loads) one unique cell under the worker
// semaphore and records its timing.
func (e *Engine) execute(ctx context.Context, cfg Config, c Cell) (*CellResult, error) {
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-e.sem }()

	start := time.Now()
	var probe time.Duration
	if c.Key != "" && e.cache != nil {
		c.stage("cache-probe", "")
		if res, ok := e.cache.Load(c.Key); ok {
			probe = time.Since(start)
			e.record(cfg, c.Key, probe, 0, true)
			return res, nil
		}
		probe = time.Since(start)
	}
	c.stage("run", "")
	execStart := time.Now()
	res, err := c.Run(ctx)
	if err != nil {
		return nil, err
	}
	if c.Key != "" && e.cache != nil {
		e.cache.Store(c.Key, res)
	}
	e.record(cfg, c.Key, probe, time.Since(execStart), false)
	return res, nil
}

// record accounts one executed cell and emits a progress line.
func (e *Engine) record(cfg Config, key string, probe, exec time.Duration, cached bool) {
	d := probe + exec
	e.count(cfg, MetricCellsRun)
	if cached {
		e.count(cfg, MetricCellCacheHit)
	} else {
		e.count(cfg, MetricCellCacheMiss)
	}
	e.mu.Lock()
	if reg := e.metrics; reg != nil {
		reg.Histogram(MetricCellMillis, telemetry.ExpBuckets(1, 20)).
			Observe(uint64(d.Milliseconds()))
	}
	e.runs++
	if cached {
		e.cacheHits++
	}
	e.timings = append(e.timings, CellTiming{Key: key, Duration: d, Probe: probe, Exec: exec, Cached: cached})
	done, sched := e.completed, e.scheduled
	e.mu.Unlock()
	tag := ""
	if cached {
		tag = " cache"
	}
	if key == "" {
		key = "(unkeyed cell)"
	}
	cfg.progress("cell %d/%d%s %v  %s", done+1, sched, tag, d.Round(time.Millisecond), key)
}

// Stats returns the engine's cumulative counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EngineStats{CellsRun: e.runs, MemoHits: e.memoHits, CacheHits: e.cacheHits}
}

// Slowest returns up to n executed cells ordered by descending duration
// (ties broken by key), for the -timings report.
func (e *Engine) Slowest(n int) []CellTiming {
	e.mu.Lock()
	out := make([]CellTiming, len(e.timings))
	copy(out, e.timings)
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Duration != out[j].Duration {
			return out[i].Duration > out[j].Duration
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}
