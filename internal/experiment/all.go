package experiment

import "fmt"

// Generator produces one experiment table.
type Generator func(Config) (*Table, error)

// All maps artifact IDs to their generators, in paper order.
func All() []struct {
	ID  string
	Gen Generator
} {
	return []struct {
		ID  string
		Gen Generator
	}{
		{"table1", Table1},
		{"table2", Table2},
		{"table3", Table3},
		{"table4", Table4},
		{"figure7", Figure7},
		{"figure8a", Figure8A},
		{"figure8b", Figure8B},
		{"table5", Table5},
		{"ablation-variations", AblationVariations},
		{"ablation-resonance", AblationResonance},
		{"ablation-counted", AblationCountedIterations},
		{"ablation-inlining", AblationInlining},
		{"ablation-cct", AblationCCT},
		{"ablation-adaptive", AblationAdaptive},
		{"ablation-icache", AblationICache},
		{"ablation-oracle", AblationOracle},
		{"convergence", Convergence},
		{"scenario-sweep", ScenarioSweep},
	}
}

// ByID returns the generator for one artifact.
func ByID(id string) (Generator, error) {
	for _, e := range All() {
		if e.ID == id {
			return e.Gen, nil
		}
	}
	return nil, fmt.Errorf("experiment: unknown artifact %q (want table1..table5, figure7, figure8a, figure8b, convergence, scenario-sweep, or ablation-{variations,resonance,counted,inlining,cct,icache,adaptive,oracle})", id)
}
