// Package experiment reproduces every table and figure of the paper's
// evaluation (§4) on the synthetic benchmark suite: exhaustive
// instrumentation cost (Table 1), framework overhead and its breakdown
// (Table 2), No-Duplication check overhead (Table 3), the
// overhead/accuracy sweep over sample intervals (Table 4), the javac
// call-edge profile (Figure 7), the yieldpoint optimization (Figure 8)
// and the trigger-mechanism comparison (Table 5).
//
// Overheads are deterministic simulated-cycle ratios and compile-cost
// increases are deterministic instruction-visit ratios (compile.Result.Work),
// so every artifact is reproducible to the byte; see DESIGN.md §2 for the
// substitution argument and §4 for the per-experiment index.
//
// Each artifact decomposes its measurements into Cells — pure, keyed units
// of work (benchmark × compile options × trigger) — and requests them
// through a Batch against an Engine, which executes unique cells across a
// bounded worker pool, deduplicates cells shared between artifacts, and
// consults an optional on-disk Cache keyed by the binary's build ID.
// Because cells are pure and assembly happens in request order, rendered
// output is byte-identical at any worker count, with or without a cache.
package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the paper artifact this reproduces ("table1" ... "figure8b").
	ID string
	// Title is the caption.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data cells, already formatted.
	Rows [][]string
	// Notes hold methodology remarks appended below the table.
	Notes []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table as aligned ASCII.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if i == 0 {
				sb.WriteString(c + strings.Repeat(" ", pad))
			} else {
				sb.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
	}
	fmt.Fprintln(w)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "*Note: %s*\n\n", n)
	}
}

// String renders the ASCII form.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

func pct(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct2(v float64) string { return fmt.Sprintf("%.2f", v) }
