package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
)

// The cache doubles as a content-addressed store (CAS): every entry's
// file name IS its address — a hash of the store's ID (normally the
// running binary's build ID) and the cell's canonical key. Addresses are
// therefore stable across processes built from the same source, which is
// what lets a fleet of isampd workers and an isampfleet coordinator
// share entries over HTTP (GET/PUT /v1/cas/{addr}): any node that has
// computed a cell can serve it to every other node, and a receiver can
// verify an entry's integrity without trusting the sender, because the
// payload embeds the cell key the address was derived from. See
// DESIGN.md §15.

// AddrLen is the hex length of a CAS address (16 bytes of SHA-256).
const AddrLen = 32

// CASAddr computes the content address of a cell key under a store ID:
// hex(sha256(id \x00 key)[:16]). It is the pure function both sides of
// the CAS protocol use; Cache.Addr is the bound form.
func CASAddr(id, key string) string {
	sum := sha256.Sum256([]byte(id + "\x00" + key))
	return hex.EncodeToString(sum[:16])
}

// ValidAddr reports whether s is a syntactically valid CAS address —
// exactly AddrLen lowercase hex characters. HTTP handlers use it to
// reject path-traversal attempts before touching the filesystem.
func ValidAddr(s string) bool {
	if len(s) != AddrLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ID returns the store's content-addressing ID (the build ID for caches
// opened with OpenCache).
func (c *Cache) ID() string { return c.id }

// Addr returns the content address of a cell key in this store.
func (c *Cache) Addr(key string) string { return CASAddr(c.id, key) }

// VerifyCAS checks a CAS payload's integrity against its claimed
// address: the payload must decode, and the cell key it embeds must
// hash (under id) back to addr. A mismatch means corruption or a
// cross-build entry and the payload must be rejected, not stored.
func VerifyCAS(id, addr string, data []byte) error {
	var probe struct {
		CellKey string `json:"cell"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("experiment: cas %s: undecodable payload: %w", addr, err)
	}
	if probe.CellKey == "" {
		return fmt.Errorf("experiment: cas %s: payload has no cell key", addr)
	}
	if got := CASAddr(id, probe.CellKey); got != addr {
		return fmt.Errorf("experiment: cas %s: integrity mismatch (payload addresses to %s)", addr, got)
	}
	return nil
}

// DecodeCAS decodes a CAS payload into the cell result it stores,
// returning the embedded cell key alongside. It performs no integrity
// check; pair it with VerifyCAS when the payload crossed a network.
func DecodeCAS(data []byte) (*CellResult, string, error) {
	var in cachedCell
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, "", fmt.Errorf("experiment: cas payload: %w", err)
	}
	if in.CellKey == "" {
		return nil, "", fmt.Errorf("experiment: cas payload has no cell key")
	}
	return decodeCell(in), in.CellKey, nil
}

// GetAddr returns the raw stored payload for a CAS address, if present.
// A hit refreshes the entry's LRU position.
func (c *Cache) GetAddr(addr string) ([]byte, bool) {
	if !ValidAddr(addr) {
		return nil, false
	}
	data, err := os.ReadFile(c.addrPath(addr))
	if err != nil {
		return nil, false
	}
	c.touch(addr)
	return data, true
}

// PutAddr stores a raw payload under a CAS address after verifying its
// integrity (VerifyCAS with this store's ID). Unlike Store, failures are
// reported: a network CAS needs to distinguish a rejected payload from a
// full disk.
func (c *Cache) PutAddr(addr string, data []byte) error {
	if !ValidAddr(addr) {
		return fmt.Errorf("experiment: cas: invalid address %q", addr)
	}
	if err := VerifyCAS(c.id, addr, data); err != nil {
		return err
	}
	return c.writeEntry(addr, data)
}
