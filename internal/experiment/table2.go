package experiment

import (
	"fmt"
	"time"

	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/ir"
	"instrsample/internal/trigger"
)

// Table2 reproduces the paper's Table 2: the overhead of the
// Full-Duplication framework itself when no samples are taken — total
// overhead, the approximate breakdown into backedge checks and
// method-entry checks (measured with bare checks and no duplication, as
// the paper's footnote prescribes), the maximum space increase, and the
// compile-time increase attributable to doubling the code before the late
// compiler phases.
func Table2(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "table2",
		Title: "Framework overhead of Full-Duplication (no samples taken)",
		Header: []string{"Benchmark", "Total Framework Overhead (%)",
			"Backedges (%)", "Method Entry (%)", "Max space increase (KB)",
			"Compile Time Increase (%)"},
	}
	var sumTotal, sumBE, sumME, sumCT float64
	var sumSpace float64
	for _, b := range suite {
		prog := b.Build(cfg.Scale)
		base, err := cfg.run(prog, compile.Options{}, nil)
		if err != nil {
			return nil, err
		}
		fw, err := cfg.run(prog, compile.Options{
			Instrumenters: paperInstrumenters(),
			Framework:     &core.Options{Variation: core.FullDuplication},
		}, trigger.Never{})
		if err != nil {
			return nil, err
		}
		be, err := cfg.run(prog, compile.Options{
			ChecksOnly: &core.ChecksOnly{Backedges: true},
		}, trigger.Never{})
		if err != nil {
			return nil, err
		}
		me, err := cfg.run(prog, compile.Options{
			ChecksOnly: &core.ChecksOnly{Entries: true},
		}, trigger.Never{})
		if err != nil {
			return nil, err
		}

		totalOv := overhead(fw.out, base.out)
		beOv := overhead(be.out, base.out)
		meOv := overhead(me.out, base.out)
		spaceKB := float64(fw.cr.CodeSize-base.cr.CodeSize) / 1024
		ctInc := compileTimeIncrease(prog)

		sumTotal += totalOv
		sumBE += beOv
		sumME += meOv
		sumSpace += spaceKB
		sumCT += ctInc
		t.AddRow(b.Name, pct(totalOv), pct(beOv), pct(meOv),
			fmt.Sprintf("%.0f", spaceKB), pct(ctInc))
		cfg.progress("table2 %s: total %.1f%% (be %.1f%%, me %.1f%%), space %.0fKB, compile +%.0f%%",
			b.Name, totalOv, beOv, meOv, spaceKB, ctInc)
	}
	n := float64(len(suite))
	t.AddRow("Average", pct(sumTotal/n), pct(sumBE/n), pct(sumME/n),
		fmt.Sprintf("%.0f", sumSpace/n), pct(sumCT/n))
	t.Notes = append(t.Notes,
		"paper: total avg 4.9%, backedges 3.5%, entries 1.3%, space 285KB, compile +34%",
		"backedge/entry columns measured with bare checks and no duplication (paper footnote 2)")
	return t, nil
}

// compileTimeIncrease measures the wall-clock compile-time increase of
// Full-Duplication over a baseline compile. Each configuration is
// compiled several times and the fastest run is used, which removes most
// scheduler noise from the tiny absolute times involved.
func compileTimeIncrease(prog *ir.Program) float64 {
	const reps = 5
	best := func(opts compile.Options) time.Duration {
		var min time.Duration
		for i := 0; i < reps; i++ {
			res, err := compile.Compile(prog, opts)
			if err != nil {
				return 0
			}
			if min == 0 || res.CompileTime < min {
				min = res.CompileTime
			}
		}
		return min
	}
	baseT := best(compile.Options{})
	fwT := best(compile.Options{
		Instrumenters: paperInstrumenters(),
		Framework:     &core.Options{Variation: core.FullDuplication},
	})
	if baseT == 0 {
		return 0
	}
	return 100 * (float64(fwT)/float64(baseT) - 1)
}
