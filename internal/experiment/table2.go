package experiment

import (
	"fmt"

	"instrsample/internal/core"
)

// Table2 reproduces the paper's Table 2: the overhead of the
// Full-Duplication framework itself when no samples are taken — total
// overhead, the approximate breakdown into backedge checks and
// method-entry checks (measured with bare checks and no duplication, as
// the paper's footnote prescribes), the maximum space increase, and the
// compile-cost increase attributable to doubling the code before the late
// compiler phases.
//
// The compile-cost column uses compile.Result.Work, a deterministic
// instruction-visit count, rather than wall-clock time: the ratio
// captures the same effect (the late phases run over twice the code
// under Full-Duplication) while staying byte-identical across runs,
// machines and worker counts.
func Table2(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	bt := cfg.NewBatch()
	type row struct{ base, fw, be, me *Ref }
	rows := make([]row, len(suite))
	for i, b := range suite {
		rows[i] = row{
			base: bt.Cell(b.Name, OptsSpec{}, NeverTrigger()),
			fw: bt.Cell(b.Name, OptsSpec{
				Instr:     paperInstr(),
				Framework: &core.Options{Variation: core.FullDuplication},
			}, NeverTrigger()),
			be: bt.Cell(b.Name, OptsSpec{
				ChecksOnly: &core.ChecksOnly{Backedges: true},
			}, NeverTrigger()),
			me: bt.Cell(b.Name, OptsSpec{
				ChecksOnly: &core.ChecksOnly{Entries: true},
			}, NeverTrigger()),
		}
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "table2",
		Title: "Framework overhead of Full-Duplication (no samples taken)",
		Header: []string{"Benchmark", "Total Framework Overhead (%)",
			"Backedges (%)", "Method Entry (%)", "Max space increase (KB)",
			"Compile Work Increase (%)"},
	}
	var sumTotal, sumBE, sumME, sumCT float64
	var sumSpace float64
	for i, b := range suite {
		base, fw := rows[i].base.R(), rows[i].fw.R()
		totalOv := overhead(fw, base)
		beOv := overhead(rows[i].be.R(), base)
		meOv := overhead(rows[i].me.R(), base)
		spaceKB := float64(fw.CodeSize-base.CodeSize) / 1024
		ctInc := 100 * (float64(fw.Work)/float64(base.Work) - 1)

		sumTotal += totalOv
		sumBE += beOv
		sumME += meOv
		sumSpace += spaceKB
		sumCT += ctInc
		t.AddRow(b.Name, pct(totalOv), pct(beOv), pct(meOv),
			fmt.Sprintf("%.0f", spaceKB), pct(ctInc))
		cfg.progress("table2 %s: total %.1f%% (be %.1f%%, me %.1f%%), space %.0fKB, compile +%.0f%%",
			b.Name, totalOv, beOv, meOv, spaceKB, ctInc)
	}
	n := float64(len(suite))
	t.AddRow("Average", pct(sumTotal/n), pct(sumBE/n), pct(sumME/n),
		fmt.Sprintf("%.0f", sumSpace/n), pct(sumCT/n))
	t.Notes = append(t.Notes,
		"paper: total avg 4.9%, backedges 3.5%, entries 1.3%, space 285KB, compile +34% (wall-clock)",
		"backedge/entry columns measured with bare checks and no duplication (paper footnote 2)",
		"compile column is the deterministic instruction-visit ratio, not wall-clock")
	return t, nil
}
