package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"instrsample/internal/profile"
	"instrsample/internal/vm"
)

// Cache is a content-keyed on-disk store of cell results. Entries are
// keyed by a hash of the cell's canonical key together with the running
// binary's build ID (a hash of the executable), so results computed by a
// stale build are never reused after the code changes.
//
// The cache is best-effort: load and store failures silently fall back to
// recomputing the cell. A Cache is safe for concurrent use — entries are
// written to a temporary file and renamed into place.
type Cache struct {
	dir string
	id  string
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: cache: %w", err)
	}
	return &Cache{dir: dir, id: buildID()}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// buildIDOnce computes the build ID one time per process.
var buildIDOnce = sync.OnceValue(func() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown-build"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown-build"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
})

// buildID identifies the running binary's code content.
func buildID() string { return buildIDOnce() }

// BuildID returns the running binary's build ID — the sha256 of the
// executable's bytes, "unknown-build" if it cannot be read. It keys the
// on-disk result cache (stale builds never reuse entries) and is what the
// -version flag on isamp, experiments and isampd prints, so cache
// provenance is checkable from the command line.
func BuildID() string { return buildIDOnce() }

// path maps a cell key to its entry file.
func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(c.id + "\x00" + key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:16])+".json")
}

// cachedEntry is the serialized form of one profile event.
type cachedEntry struct {
	Key   uint64 `json:"k"`
	Count uint64 `json:"n"`
	Label string `json:"l,omitempty"`
}

// cachedProfile is the serialized form of one profile, entries in
// descending-count order. Labels are stored so reports that render them
// (Figure 7) stay byte-identical on a cache hit.
type cachedProfile struct {
	Name    string        `json:"name"`
	Entries []cachedEntry `json:"entries"`
}

// cachedSnapshot is the serialized form of one mid-run profile snapshot.
type cachedSnapshot struct {
	Cycle    uint64          `json:"cycle"`
	Profiles []cachedProfile `json:"profiles,omitempty"`
}

// cachedCell is the on-disk form of a CellResult. Snapshots is omitempty,
// so entries written before the telemetry subsystem existed decode
// unchanged.
type cachedCell struct {
	CellKey            string           `json:"cell"`
	Stats              vm.Stats         `json:"stats"`
	Profiles           []cachedProfile  `json:"profiles,omitempty"`
	CodeSize           int              `json:"code_size"`
	CheckingCodeSize   int              `json:"checking_code_size"`
	DuplicatedCodeSize int              `json:"duplicated_code_size"`
	Work               int64            `json:"work"`
	Return             int64            `json:"return,omitempty"`
	Output             []int64          `json:"output,omitempty"`
	Aux                map[string]int64 `json:"aux,omitempty"`
	Snapshots          []cachedSnapshot `json:"snapshots,omitempty"`
}

// encodeProfile flattens a profile for storage, keeping labels so reports
// that render them stay byte-identical on a cache hit.
func encodeProfile(p *profile.Profile) cachedProfile {
	cp := cachedProfile{Name: p.Name}
	for _, e := range p.Entries() {
		ce := cachedEntry{Key: e.Key, Count: e.Count}
		if p.Labeler != nil {
			ce.Label = p.Labeler(e.Key)
		}
		cp.Entries = append(cp.Entries, ce)
	}
	return cp
}

// decodeProfile rebuilds a profile, reattaching a labeler when labels
// were stored.
func decodeProfile(cp cachedProfile) *profile.Profile {
	p := profile.New(cp.Name)
	labels := make(map[uint64]string)
	for _, e := range cp.Entries {
		p.Add(e.Key, e.Count)
		if e.Label != "" {
			labels[e.Key] = e.Label
		}
	}
	if len(labels) > 0 {
		p.Labeler = func(k uint64) string {
			if l, ok := labels[k]; ok {
				return l
			}
			return fmt.Sprintf("%#x", k)
		}
	}
	return p
}

// Load returns the cached result for key, if present and decodable.
func (c *Cache) Load(key string) (*CellResult, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var in cachedCell
	if err := json.Unmarshal(data, &in); err != nil || in.CellKey != key {
		return nil, false
	}
	res := &CellResult{
		Stats:              in.Stats,
		CodeSize:           in.CodeSize,
		CheckingCodeSize:   in.CheckingCodeSize,
		DuplicatedCodeSize: in.DuplicatedCodeSize,
		Work:               in.Work,
		Return:             in.Return,
		Output:             in.Output,
		Aux:                in.Aux,
	}
	for _, cp := range in.Profiles {
		res.Profiles = append(res.Profiles, decodeProfile(cp))
	}
	for _, cs := range in.Snapshots {
		snap := ProfileSnapshot{Cycle: cs.Cycle}
		for _, cp := range cs.Profiles {
			snap.Profiles = append(snap.Profiles, decodeProfile(cp))
		}
		res.Snapshots = append(res.Snapshots, snap)
	}
	return res, true
}

// Store writes the result for key. Failures are ignored: the cache is an
// accelerator, never a correctness dependency.
func (c *Cache) Store(key string, res *CellResult) {
	out := cachedCell{
		CellKey:            key,
		Stats:              res.Stats,
		CodeSize:           res.CodeSize,
		CheckingCodeSize:   res.CheckingCodeSize,
		DuplicatedCodeSize: res.DuplicatedCodeSize,
		Work:               res.Work,
		Return:             res.Return,
		Output:             res.Output,
		Aux:                res.Aux,
	}
	for _, p := range res.Profiles {
		out.Profiles = append(out.Profiles, encodeProfile(p))
	}
	for _, snap := range res.Snapshots {
		cs := cachedSnapshot{Cycle: snap.Cycle}
		for _, p := range snap.Profiles {
			cs.Profiles = append(cs.Profiles, encodeProfile(p))
		}
		out.Snapshots = append(out.Snapshots, cs)
	}
	data, err := json.Marshal(out)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "cell-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
	}
}
