package experiment

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"instrsample/internal/profile"
	"instrsample/internal/vm"
)

// Cache is a content-keyed on-disk store of cell results. Entries are
// keyed by a hash of the cell's canonical key together with the running
// binary's build ID (a hash of the executable), so results computed by a
// stale build are never reused after the code changes. That hash is also
// the entry's content address — see cas.go for the CAS view a fleet
// shares over HTTP.
//
// The cache is best-effort: load and store failures silently fall back to
// recomputing the cell. A Cache is safe for concurrent use — entries are
// written to a temporary file and renamed into place.
//
// A byte budget (SetMaxBytes) turns on LRU eviction: the cache then
// tracks every entry's exact size and drops the least-recently-used
// entries whenever a store would push the total over the budget, so
// long-lived CAS nodes do not grow without bound.
type Cache struct {
	dir string
	id  string

	// LRU state, active only once SetMaxBytes has run with a positive
	// budget. index maps addr → element in lru; lru front is the most
	// recently used entry.
	mu       sync.Mutex
	maxBytes int64
	size     int64
	index    map[string]*list.Element
	lru      *list.List
}

// lruEntry is one indexed entry: its address and exact on-disk size.
type lruEntry struct {
	addr string
	size int64
}

// OpenCache opens (creating if needed) a cache rooted at dir, addressed
// by the running binary's build ID.
func OpenCache(dir string) (*Cache, error) {
	return OpenCacheID(dir, buildID())
}

// OpenCacheID opens a cache whose content addresses are derived from an
// explicit store ID instead of this binary's build ID. The fleet
// coordinator uses it to address entries the worker binaries produced:
// addresses must be computed with the workers' shared build ID, which
// the coordinator learns from their /healthz handshake (DESIGN.md §15).
func OpenCacheID(dir, id string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: cache: %w", err)
	}
	return &Cache{dir: dir, id: id}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// buildIDOnce computes the build ID one time per process.
var buildIDOnce = sync.OnceValue(func() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown-build"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown-build"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
})

// buildID identifies the running binary's code content.
func buildID() string { return buildIDOnce() }

// BuildID returns the running binary's build ID — the sha256 of the
// executable's bytes, "unknown-build" if it cannot be read. It keys the
// on-disk result cache (stale builds never reuse entries) and is what the
// -version flag on isamp, experiments and isampd prints, so cache
// provenance is checkable from the command line.
func BuildID() string { return buildIDOnce() }

// addrPath maps a content address to its entry file.
func (c *Cache) addrPath(addr string) string {
	return filepath.Join(c.dir, addr+".json")
}

// path maps a cell key to its entry file.
func (c *Cache) path(key string) string { return c.addrPath(c.Addr(key)) }

// SetMaxBytes arms LRU eviction with a byte budget (0 disables). It
// scans the cache directory to build the exact size accounting —
// pre-existing entries are ordered oldest-modified first — and evicts
// immediately if the current contents already exceed the budget.
func (c *Cache) SetMaxBytes(n int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = n
	if n <= 0 {
		c.index, c.lru, c.size = nil, nil, 0
		return nil
	}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("experiment: cache: %w", err)
	}
	type aged struct {
		lruEntry
		mtime int64
	}
	var found []aged
	for _, e := range entries {
		name := e.Name()
		addr, ok := strings.CutSuffix(name, ".json")
		if !ok || !ValidAddr(addr) || e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, aged{lruEntry{addr: addr, size: info.Size()}, info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	c.index = make(map[string]*list.Element, len(found))
	c.lru = list.New()
	c.size = 0
	for _, f := range found {
		// Oldest first, each pushed to the front, leaves the newest at the
		// front — the LRU order a cold index can best reconstruct.
		c.index[f.addr] = c.lru.PushFront(f.lruEntry)
		c.size += f.size
	}
	c.evictLocked()
	return nil
}

// Bytes returns the exact byte total of indexed entries (0 when no
// budget is armed).
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Entries returns the number of indexed entries (0 when no budget is
// armed).
func (c *Cache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.index == nil {
		return 0
	}
	return len(c.index)
}

// MaxBytes returns the armed byte budget (0 = unbounded).
func (c *Cache) MaxBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxBytes
}

// touch refreshes an entry's LRU position on a hit.
func (c *Cache) touch(addr string) {
	c.mu.Lock()
	if el, ok := c.index[addr]; ok {
		c.lru.MoveToFront(el)
	}
	c.mu.Unlock()
}

// account records a freshly written entry of the given size, replacing
// any previous accounting for the same address, and evicts past the
// budget.
func (c *Cache) account(addr string, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.index == nil {
		return
	}
	if el, ok := c.index[addr]; ok {
		c.size -= el.Value.(lruEntry).size
		c.lru.Remove(el)
	}
	c.index[addr] = c.lru.PushFront(lruEntry{addr: addr, size: size})
	c.size += size
	c.evictLocked()
}

// evictLocked drops least-recently-used entries until the total is back
// under the budget. Caller holds c.mu.
func (c *Cache) evictLocked() {
	if c.maxBytes <= 0 || c.lru == nil {
		return
	}
	for c.size > c.maxBytes && c.lru.Len() > 0 {
		el := c.lru.Back()
		e := el.Value.(lruEntry)
		c.lru.Remove(el)
		delete(c.index, e.addr)
		c.size -= e.size
		os.Remove(c.addrPath(e.addr))
	}
}

// writeEntry atomically writes one entry file and updates the LRU
// accounting.
func (c *Cache) writeEntry(addr string, data []byte) error {
	tmp, err := os.CreateTemp(c.dir, "cell-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), c.addrPath(addr)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	c.account(addr, int64(len(data)))
	return nil
}

// cachedEntry is the serialized form of one profile event.
type cachedEntry struct {
	Key   uint64 `json:"k"`
	Count uint64 `json:"n"`
	Label string `json:"l,omitempty"`
}

// cachedProfile is the serialized form of one profile, entries in
// descending-count order. Labels are stored so reports that render them
// (Figure 7) stay byte-identical on a cache hit.
type cachedProfile struct {
	Name    string        `json:"name"`
	Entries []cachedEntry `json:"entries"`
}

// cachedSnapshot is the serialized form of one mid-run profile snapshot.
type cachedSnapshot struct {
	Cycle    uint64          `json:"cycle"`
	Profiles []cachedProfile `json:"profiles,omitempty"`
}

// cachedCell is the on-disk form of a CellResult. Snapshots is omitempty,
// so entries written before the telemetry subsystem existed decode
// unchanged.
type cachedCell struct {
	CellKey            string           `json:"cell"`
	Stats              vm.Stats         `json:"stats"`
	Profiles           []cachedProfile  `json:"profiles,omitempty"`
	CodeSize           int              `json:"code_size"`
	CheckingCodeSize   int              `json:"checking_code_size"`
	DuplicatedCodeSize int              `json:"duplicated_code_size"`
	Work               int64            `json:"work"`
	Return             int64            `json:"return,omitempty"`
	Output             []int64          `json:"output,omitempty"`
	Aux                map[string]int64 `json:"aux,omitempty"`
	Snapshots          []cachedSnapshot `json:"snapshots,omitempty"`
}

// encodeProfile flattens a profile for storage, keeping labels so reports
// that render them stay byte-identical on a cache hit.
func encodeProfile(p *profile.Profile) cachedProfile {
	cp := cachedProfile{Name: p.Name}
	for _, e := range p.Entries() {
		ce := cachedEntry{Key: e.Key, Count: e.Count}
		if p.Labeler != nil {
			ce.Label = p.Labeler(e.Key)
		}
		cp.Entries = append(cp.Entries, ce)
	}
	return cp
}

// decodeProfile rebuilds a profile, reattaching a labeler when labels
// were stored.
func decodeProfile(cp cachedProfile) *profile.Profile {
	p := profile.New(cp.Name)
	labels := make(map[uint64]string)
	for _, e := range cp.Entries {
		p.Add(e.Key, e.Count)
		if e.Label != "" {
			labels[e.Key] = e.Label
		}
	}
	if len(labels) > 0 {
		p.Labeler = func(k uint64) string {
			if l, ok := labels[k]; ok {
				return l
			}
			return fmt.Sprintf("%#x", k)
		}
	}
	return p
}

// decodeCell rebuilds a CellResult from its on-disk form.
func decodeCell(in cachedCell) *CellResult {
	res := &CellResult{
		Stats:              in.Stats,
		CodeSize:           in.CodeSize,
		CheckingCodeSize:   in.CheckingCodeSize,
		DuplicatedCodeSize: in.DuplicatedCodeSize,
		Work:               in.Work,
		Return:             in.Return,
		Output:             in.Output,
		Aux:                in.Aux,
	}
	for _, cp := range in.Profiles {
		res.Profiles = append(res.Profiles, decodeProfile(cp))
	}
	for _, cs := range in.Snapshots {
		snap := ProfileSnapshot{Cycle: cs.Cycle}
		for _, cp := range cs.Profiles {
			snap.Profiles = append(snap.Profiles, decodeProfile(cp))
		}
		res.Snapshots = append(res.Snapshots, snap)
	}
	return res
}

// encodeCell flattens a CellResult to its on-disk form under key.
func encodeCell(key string, res *CellResult) cachedCell {
	out := cachedCell{
		CellKey:            key,
		Stats:              res.Stats,
		CodeSize:           res.CodeSize,
		CheckingCodeSize:   res.CheckingCodeSize,
		DuplicatedCodeSize: res.DuplicatedCodeSize,
		Work:               res.Work,
		Return:             res.Return,
		Output:             res.Output,
		Aux:                res.Aux,
	}
	for _, p := range res.Profiles {
		out.Profiles = append(out.Profiles, encodeProfile(p))
	}
	for _, snap := range res.Snapshots {
		cs := cachedSnapshot{Cycle: snap.Cycle}
		for _, p := range snap.Profiles {
			cs.Profiles = append(cs.Profiles, encodeProfile(p))
		}
		out.Snapshots = append(out.Snapshots, cs)
	}
	return out
}

// Load returns the cached result for key, if present and decodable.
func (c *Cache) Load(key string) (*CellResult, bool) {
	data, ok := c.GetAddr(c.Addr(key))
	if !ok {
		return nil, false
	}
	var in cachedCell
	if err := json.Unmarshal(data, &in); err != nil || in.CellKey != key {
		return nil, false
	}
	return decodeCell(in), true
}

// Store writes the result for key. Failures are ignored: the cache is an
// accelerator, never a correctness dependency.
func (c *Cache) Store(key string, res *CellResult) {
	data, err := json.Marshal(encodeCell(key, res))
	if err != nil {
		return
	}
	c.writeEntry(c.Addr(key), data) //nolint:errcheck // best-effort store
}
