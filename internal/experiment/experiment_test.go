package experiment

import (
	"strconv"
	"strings"
	"testing"
)

// smokeConfig keeps experiment tests fast: two benchmarks at tiny scale.
func smokeConfig() Config {
	return Config{Scale: 0.03, ICache: true, Benchmarks: []string{"compress", "javac"}}
}

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[row][col], "%"), 64)
	if err != nil {
		t.Fatalf("%s cell [%d][%d] = %q not numeric: %v", tab.ID, row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestAllArtifactsGenerate(t *testing.T) {
	cfg := smokeConfig()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Gen(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 || len(tab.Header) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			for i, r := range tab.Rows {
				if len(r) != len(tab.Header) {
					t.Errorf("%s row %d has %d cells, header has %d", e.ID, i, len(r), len(tab.Header))
				}
			}
			// Both renderings must not panic and must mention the ID.
			if !strings.Contains(tab.String(), e.ID) {
				t.Errorf("%s: ASCII rendering lacks ID", e.ID)
			}
			var sb strings.Builder
			tab.Markdown(&sb)
			if !strings.Contains(sb.String(), "|") {
				t.Errorf("%s: markdown rendering empty", e.ID)
			}
		})
	}
}

func TestByIDErrors(t *testing.T) {
	if _, err := ByID("table9"); err == nil {
		t.Error("unknown artifact accepted")
	}
	if _, err := ByID("table4"); err != nil {
		t.Errorf("table4 rejected: %v", err)
	}
}

func TestUnknownBenchmarkRejected(t *testing.T) {
	cfg := Config{Scale: 0.01, Benchmarks: []string{"nope"}}
	if _, err := Table1(cfg); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestTable1Shape: exhaustive instrumentation must cost something
// everywhere and the last row must be the average.
func TestTable1Shape(t *testing.T) {
	tab, err := Table1(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[len(tab.Rows)-1][0] != "Average" {
		t.Fatal("missing average row")
	}
	for i := 0; i < len(tab.Rows)-1; i++ {
		if cell(t, tab, i, 1) <= 0 || cell(t, tab, i, 2) <= 0 {
			t.Errorf("row %v: exhaustive instrumentation cost nothing", tab.Rows[i])
		}
	}
}

// TestTable2Shape: framework overhead must be positive and far below the
// exhaustive overhead of Table 1 for the same benchmarks.
func TestTable2Shape(t *testing.T) {
	cfg := smokeConfig()
	t1, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	avgRow := len(t2.Rows) - 1
	fwAvg := cell(t, t2, avgRow, 1)
	exAvg := cell(t, t1, len(t1.Rows)-1, 1)
	if fwAvg <= 0 {
		t.Errorf("framework overhead %.1f%% should be positive", fwAvg)
	}
	if fwAvg >= exAvg {
		t.Errorf("framework overhead %.1f%% not below exhaustive %.1f%%", fwAvg, exAvg)
	}
	// Breakdown columns roughly bound the total from below.
	beAvg, meAvg := cell(t, t2, avgRow, 2), cell(t, t2, avgRow, 3)
	if beAvg+meAvg > fwAvg*2+5 {
		t.Errorf("breakdown (%.1f+%.1f) wildly exceeds total %.1f", beAvg, meAvg, fwAvg)
	}
}

// TestTable4Shape: overhead decreases monotonically with the interval and
// accuracy does not increase as intervals grow very large.
func TestTable4Shape(t *testing.T) {
	tab, err := Table4(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	half := len(Table4Intervals)
	for _, block := range [][2]int{{0, half}, {half, 2 * half}} {
		var prevTotal float64 = 1e18
		for i := block[0]; i < block[1]; i++ {
			total := cell(t, tab, i, 4)
			if total > prevTotal+0.5 {
				t.Errorf("%s row %d: total overhead %.1f rose above %.1f",
					tab.Rows[i][0], i, total, prevTotal)
			}
			prevTotal = total
		}
		// Accuracy at interval 1 is perfect.
		if acc := cell(t, tab, block[0], 5); acc < 99.5 {
			t.Errorf("interval-1 call-edge accuracy %.0f, want 100", acc)
		}
		if acc := cell(t, tab, block[0], 6); acc < 99.5 {
			t.Errorf("interval-1 field accuracy %.0f, want 100", acc)
		}
	}
}

// TestFigure8AShape: the yieldpoint optimization's framework overhead must
// be clearly below Table 2's.
func TestFigure8AShape(t *testing.T) {
	cfg := smokeConfig()
	t2, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := Figure8A(cfg)
	if err != nil {
		t.Fatal(err)
	}
	naive := cell(t, t2, len(t2.Rows)-1, 1)
	opt := cell(t, f8, len(f8.Rows)-1, 1)
	if opt >= naive {
		t.Errorf("yieldpoint opt %.1f%% not below naive %.1f%%", opt, naive)
	}
}

// TestTable5Shape: the counter trigger must beat the timer trigger on
// benchmarks with slow phases.
func TestTable5Shape(t *testing.T) {
	cfg := Config{Scale: 0.15, ICache: true, Benchmarks: []string{"jack", "volano"}}
	tab, err := Table5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	avg := len(tab.Rows) - 1
	timer, counter := cell(t, tab, avg, 1), cell(t, tab, avg, 2)
	if counter <= timer {
		t.Errorf("counter accuracy %.0f%% not above timer %.0f%%", counter, timer)
	}
}

func TestFigure7Overlap(t *testing.T) {
	cfg := Config{Scale: 0.3, ICache: true}
	tab, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.Title, "overlap") {
		t.Fatalf("title %q lacks overlap", tab.Title)
	}
	// Distribution column must contain bars.
	hasBar := false
	for _, r := range tab.Rows {
		if strings.Contains(r[3], "#") {
			hasBar = true
		}
	}
	if !hasBar {
		t.Error("no distribution bars rendered")
	}
}

func TestAblationOracleShape(t *testing.T) {
	tab, err := AblationOracle(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 4 variations x 5 triggers.
	if len(tab.Rows) != 20 {
		t.Fatalf("%d rows, want 20", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if ev := cell(t, tab, i, 3); ev <= 0 {
			t.Errorf("row %d (%s/%s): no oracle events", i, row[0], row[1])
		}
		if row[5] != "pass" {
			t.Errorf("row %d verdict %q", i, row[5])
		}
		// §3.2: a guard-based variation sampled at every check must show
		// expected (tolerated) Property-1 excess; check-based ones never do.
		if row[1] == "always" {
			excess := cell(t, tab, i, 4)
			switch row[0] {
			case "No-Duplication":
				if excess <= 0 {
					t.Errorf("No-Duplication/always: want expected P1 excess > 0")
				}
			case "Full-Duplication", "Partial-Duplication":
				if excess != 0 {
					t.Errorf("%s/always: expected P1 excess %v, want 0", row[0], excess)
				}
			}
		}
	}
}
