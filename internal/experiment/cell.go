package experiment

import (
	"context"
	"fmt"
	"strings"

	"instrsample/internal/bench"
	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/instr"
	"instrsample/internal/ir"
	"instrsample/internal/oracle"
	"instrsample/internal/profile"
	"instrsample/internal/telemetry"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

// A Cell is the unit of work the experiment engine schedules: one
// deterministic (benchmark, compile configuration, trigger, VM
// configuration) measurement. Every artifact generator decomposes into
// cells, which lets the engine run them across a worker pool, deduplicate
// cells shared between artifacts, and cache their results on disk.
//
// Cells must be pure: Run builds a fresh program, compiles it, and
// executes it in a private VM, sharing no mutable state with any other
// cell. Two cells with equal non-empty Keys must produce identical
// results; the engine relies on this to memoize. A Cell with an empty Key
// is never deduplicated or cached.
type Cell struct {
	// Key canonically identifies the measurement ("" = uncacheable).
	Key string
	// Run performs the measurement. The context carries cancellation:
	// standard cells arm a vm.Cancel from it, so a cancelled context
	// stops the VM within one observation interval (DESIGN.md §10).
	// Run must return promptly with an error once ctx is done.
	Run func(ctx context.Context) (*CellResult, error)
	// Stage, when non-nil, is the engine's lifecycle hook for this cell:
	// the engine reports "memo-flight" (cause = the owning request's
	// Config.Owner label) when the request is parked on another flight,
	// "cache-probe" before the on-disk lookup, and "run" before Run. The
	// profiling service threads its per-job span chain through here
	// (DESIGN.md §14). Stage must be cheap and must not block.
	Stage func(stage, cause string)
}

// stage invokes the lifecycle hook if the cell carries one.
func (c Cell) stage(stage, cause string) {
	if c.Stage != nil {
		c.Stage(stage, cause)
	}
}

// CellResult is the serializable outcome of one cell: everything the
// artifact generators consume when assembling tables. Results are shared
// between generators by the engine's memo table, so consumers must treat
// them as immutable.
type CellResult struct {
	// Stats are the VM's execution counters.
	Stats vm.Stats
	// Profiles are the accumulated instrumentation profiles, in owner
	// order (matching OptsSpec.Instr).
	Profiles []*profile.Profile
	// CodeSize, CheckingCodeSize and DuplicatedCodeSize are the compiled
	// code sizes in bytes.
	CodeSize, CheckingCodeSize, DuplicatedCodeSize int
	// Work is the deterministic compile-cost measure (compile.Result.Work).
	Work int64
	// Return is the program's main return value and Output its OpPrint
	// sequence. The profiling service reports them so an HTTP job is
	// byte-comparable with a direct isamp run of the same configuration.
	Return int64
	// Output is the program's print output, in execution order.
	Output []int64
	// Aux carries artifact-specific scalars produced by custom cells
	// (e.g. the adaptive ablation's promotion count).
	Aux map[string]int64
	// Snapshots are periodic mid-run clones of the live profiles, taken
	// by the telemetry convergence recorder at the cycle cadence the
	// cell requested. Nil for ordinary cells (see Config.ConvergenceCell).
	Snapshots []ProfileSnapshot
}

// ProfileSnapshot is one mid-run clone of a cell's profiles.
type ProfileSnapshot struct {
	// Cycle is the VM cycle count the snapshot was taken at.
	Cycle uint64
	// Profiles are the cloned instrumentation profiles, in owner order.
	Profiles []*profile.Profile
}

// OptsSpec is a pure-data description of a compile.Options value, so a
// cell key can be derived from it and fresh instrumenter instances can be
// constructed inside each cell run.
type OptsSpec struct {
	// Instr names the instrumenters to apply, in owner order. Valid
	// names: "call-edge", "field-access", "path", "cct", "cct-sampled",
	// "edge", "block-count", "value", "receiver".
	Instr []string
	// Framework, when non-nil, applies the sampling framework.
	Framework *core.Options
	// ChecksOnly, when non-nil, inserts bare checks without duplication.
	ChecksOnly *core.ChecksOnly
	// Inline enables aggressive inlining before instrumentation.
	Inline bool
	// IterBudget is the VM's duplicated-code iteration budget (the
	// counted-backedge extension).
	IterBudget int64
	// Verify attaches the runtime invariant oracle (internal/oracle) to
	// the run: any invariant violation fails the cell, and the cell's
	// Aux carries the oracle's counters. The oracle disables the VM's
	// pure-block batching, so verified cells measure slightly different
	// cycle counts — Verify is part of the cell key.
	Verify bool
}

// newInstrumenter constructs a fresh instrumenter from its Name(). Fresh
// instances per cell keep cells goroutine-safe even if an instrumenter
// ever grows compile-time state.
func newInstrumenter(name string) (instr.Instrumenter, error) {
	switch name {
	case "call-edge":
		return &instr.CallEdge{}, nil
	case "field-access":
		return &instr.FieldAccess{}, nil
	case "path":
		return &instr.PathProfile{}, nil
	case "cct":
		return &instr.CCT{}, nil
	case "cct-sampled":
		return &instr.SampledCCT{}, nil
	case "edge":
		return &instr.EdgeProfile{}, nil
	case "block-count":
		return &instr.BlockCount{}, nil
	case "value":
		return &instr.ValueProfile{}, nil
	case "receiver":
		return &instr.ReceiverProfile{}, nil
	}
	return nil, fmt.Errorf("experiment: unknown instrumenter %q", name)
}

// Options materializes the spec into compile.Options with fresh
// instrumenter instances. Exported so the profiling service can compile
// the exact configuration a cell key names.
func (o OptsSpec) Options() (compile.Options, error) {
	opts := compile.Options{
		Framework:  o.Framework,
		ChecksOnly: o.ChecksOnly,
		Inline:     o.Inline,
	}
	for _, name := range o.Instr {
		ins, err := newInstrumenter(name)
		if err != nil {
			return compile.Options{}, err
		}
		opts.Instrumenters = append(opts.Instrumenters, ins)
	}
	return opts, nil
}

// Key renders the spec canonically for cell identity. Exported so other
// packages (the profiling service's job keys) can compose cell keys from
// the same canonical vocabulary.
func (o OptsSpec) Key() string {
	instrs := "-"
	if len(o.Instr) > 0 {
		instrs = strings.Join(o.Instr, "+")
	}
	fw := "-"
	if o.Framework != nil {
		f := o.Framework
		fw = f.Variation.String()
		if f.YieldpointOpt {
			fw += "+yp"
		}
		if f.CountedIterations {
			fw += "+counted"
		}
		if f.HybridThreshold != 0 {
			fw += fmt.Sprintf("+ht%d", f.HybridThreshold)
		}
	}
	checks := "-"
	if o.ChecksOnly != nil {
		checks = ""
		if o.ChecksOnly.Backedges {
			checks += "be"
		}
		if o.ChecksOnly.Entries {
			checks += "me"
		}
	}
	k := fmt.Sprintf("instr=%s fw=%s checks=%s inline=%v iter=%d",
		instrs, fw, checks, o.Inline, o.IterBudget)
	if o.Verify {
		// Appended only when set so pre-oracle cache entries stay valid.
		k += " verify"
	}
	return k
}

// TriggerSpec is a pure-data description of a trigger.Trigger. Triggers
// are stateful, so each cell run constructs a fresh instance from its
// spec; sharing one instance across runs would corrupt both.
type TriggerSpec struct {
	// Kind selects the mechanism: "never", "always", "counter",
	// "randomized", "perthread" or "timer". The zero value means "never".
	Kind string
	// Interval is the sample interval for counter-family triggers.
	Interval int64
	// Jitter bounds the randomized trigger's perturbation.
	Jitter int64
	// Seed initializes the randomized trigger's PRNG.
	Seed uint64
	// Period is the timer trigger's interrupt period in cycles.
	Period uint64
	// Skew is the faulty timer's per-interrupt systematic drift.
	Skew int64
	// Step is the overflow counter's per-poll decrement.
	Step int64
	// Intervals is the retuner's cycle of sample intervals.
	Intervals []int64
	// PollsPerPhase is the retuner's phase length in polls.
	PollsPerPhase int64
}

// NeverTrigger returns the trigger spec that never fires (the
// framework-overhead configuration, and the exhaustive-instrumentation
// configuration when no framework is applied).
func NeverTrigger() TriggerSpec { return TriggerSpec{Kind: "never"} }

// AlwaysTrigger returns the spec that fires at every check (interval 1).
func AlwaysTrigger() TriggerSpec { return TriggerSpec{Kind: "always"} }

// CounterTrigger returns the counter-based trigger spec of §2.2.
func CounterTrigger(interval int64) TriggerSpec {
	return TriggerSpec{Kind: "counter", Interval: interval}
}

// RandomizedTrigger returns the randomized-interval trigger spec of §4.4.
func RandomizedTrigger(interval, jitter int64, seed uint64) TriggerSpec {
	return TriggerSpec{Kind: "randomized", Interval: interval, Jitter: jitter, Seed: seed}
}

// TimerTrigger returns the timer-interrupt trigger spec of §2.1/§4.6.
func TimerTrigger(period uint64) TriggerSpec {
	return TriggerSpec{Kind: "timer", Period: period}
}

// FaultyTimerTrigger returns the fault-injected timer spec: period with
// bounded per-interrupt jitter and systematic skew (trigger.FaultyTimer).
func FaultyTimerTrigger(period, jitter uint64, skew int64, seed uint64) TriggerSpec {
	return TriggerSpec{Kind: "faulty-timer", Period: period, Jitter: int64(jitter), Skew: skew, Seed: seed}
}

// OverflowCounterTrigger returns the counter spec whose internal state
// starts adjacent to integer overflow (trigger.OverflowCounter).
func OverflowCounterTrigger(interval, step int64) TriggerSpec {
	return TriggerSpec{Kind: "overflow-counter", Interval: interval, Step: step}
}

// RetunerTrigger returns the spec that re-tunes a counter trigger's
// interval mid-run, cycling through intervals every pollsPerPhase polls
// (trigger.Retuner).
func RetunerTrigger(intervals []int64, pollsPerPhase int64) TriggerSpec {
	return TriggerSpec{Kind: "retuner", Intervals: intervals, PollsPerPhase: pollsPerPhase}
}

// New constructs a fresh trigger instance from the spec.
func (s TriggerSpec) New() trigger.Trigger {
	switch s.Kind {
	case "", "never":
		return trigger.Never{}
	case "always":
		return trigger.Always{}
	case "counter":
		return trigger.NewCounter(s.Interval)
	case "randomized":
		return trigger.NewRandomized(s.Interval, s.Jitter, s.Seed)
	case "perthread":
		return trigger.NewPerThread(s.Interval)
	case "timer":
		return trigger.NewTimer(s.Period)
	case "faulty-timer":
		return trigger.NewFaultyTimer(s.Period, uint64(s.Jitter), s.Skew, s.Seed)
	case "overflow-counter":
		return trigger.NewOverflowCounter(s.Interval, s.Step)
	case "retuner":
		return trigger.NewRetuner(s.Intervals, s.PollsPerPhase)
	}
	panic(fmt.Sprintf("experiment: unknown trigger kind %q", s.Kind))
}

// Name returns the report label of the trigger this spec constructs.
func (s TriggerSpec) Name() string { return s.New().Name() }

// Key renders the spec canonically for cell identity.
func (s TriggerSpec) Key() string {
	switch s.Kind {
	case "", "never":
		return "trig=never"
	case "always":
		return "trig=always"
	case "counter":
		return fmt.Sprintf("trig=counter/%d", s.Interval)
	case "randomized":
		return fmt.Sprintf("trig=randomized/%d±%d/%d", s.Interval, s.Jitter, s.Seed)
	case "perthread":
		return fmt.Sprintf("trig=perthread/%d", s.Interval)
	case "timer":
		return fmt.Sprintf("trig=timer/%d", s.Period)
	case "faulty-timer":
		return fmt.Sprintf("trig=faulty-timer/%d±%d%+d/%d", s.Period, s.Jitter, s.Skew, s.Seed)
	case "overflow-counter":
		return fmt.Sprintf("trig=overflow-counter/%d/%d", s.Interval, s.Step)
	case "retuner":
		parts := make([]string, len(s.Intervals))
		for i, iv := range s.Intervals {
			parts[i] = fmt.Sprintf("%d", iv)
		}
		return fmt.Sprintf("trig=retuner/%s/%d", strings.Join(parts, ","), s.PollsPerPhase)
	}
	return "trig=" + s.Kind
}

// Cell builds the standard measurement cell: compile the named benchmark
// under the spec'd options and execute it under the spec'd trigger, with
// the Config's scale and i-cache setting. The cell key identifies the
// measurement independently of which artifact requested it, which is what
// lets the engine share cells across artifacts.
func (c Config) Cell(benchName string, o OptsSpec, t TriggerSpec) Cell {
	key := fmt.Sprintf("bench=%s scale=%g icache=%v %s %s",
		benchName, c.Scale, c.ICache, o.Key(), t.Key())
	return Cell{Key: key, Run: func(ctx context.Context) (*CellResult, error) {
		return c.runCell(ctx, benchName, o, t, 0)
	}}
}

// ConvergenceCell builds a measurement cell that additionally clones the
// live profiles every convInterval cycles (telemetry.Convergence), so
// artifacts can plot accuracy against executed cycles. The interval is
// part of the cell key — convergence cells never collide with standard
// cells, and pre-telemetry cache entries stay valid.
func (c Config) ConvergenceCell(benchName string, o OptsSpec, t TriggerSpec, convInterval uint64) Cell {
	key := fmt.Sprintf("bench=%s scale=%g icache=%v %s %s conv=%d",
		benchName, c.Scale, c.ICache, o.Key(), t.Key(), convInterval)
	return Cell{Key: key, Run: func(ctx context.Context) (*CellResult, error) {
		return c.runCell(ctx, benchName, o, t, convInterval)
	}}
}

// runCell performs the standard cell measurement; convInterval > 0 also
// records periodic profile snapshots. A cancellable ctx arms a vm.Cancel
// token so the measurement stops within one observation interval of the
// context being cancelled; the returned error then wraps both ctx.Err()
// and the vm.CancelError (so errors.Is(err, context.Canceled) and
// vm.IsCancelled(err) both hold).
func (c Config) runCell(ctx context.Context, benchName string, o OptsSpec, t TriggerSpec, convInterval uint64) (*CellResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prog, err := benchProgram(benchName, c.Scale)
	if err != nil {
		return nil, err
	}
	copts, err := o.Options()
	if err != nil {
		return nil, err
	}
	cr, err := compile.Compile(prog, copts)
	if err != nil {
		return nil, fmt.Errorf("%s: compile: %w", benchName, err)
	}
	vcfg := vm.Config{
		Trigger:    t.New(),
		Handlers:   cr.Handlers,
		ICache:     c.icache(),
		IterBudget: o.IterBudget,
	}
	if ctx.Done() != nil {
		tok := vm.NewCancel()
		vcfg.Cancel = tok
		stop := context.AfterFunc(ctx, tok.Fire)
		defer stop()
	}
	var observers []vm.Observer
	var orc *oracle.Oracle
	if o.Verify {
		orc = oracle.New()
		observers = append(observers, orc)
	}
	var conv *telemetry.Convergence
	if convInterval > 0 {
		conv = telemetry.NewConvergence(convInterval, 0, func() []*profile.Profile {
			live := make([]*profile.Profile, len(cr.Runtimes))
			for i, rt := range cr.Runtimes {
				live[i] = rt.Profile()
			}
			return live
		})
		observers = append(observers, conv)
	}
	vcfg.Observer = vm.CombineObservers(observers...)
	v := vm.New(cr.Prog, vcfg)
	if conv != nil {
		conv.SetClock(v)
	}
	out, err := v.Run()
	if err != nil {
		if vm.IsCancelled(err) && ctx.Err() != nil {
			return nil, fmt.Errorf("%s: %w (%w)", benchName, ctx.Err(), err)
		}
		return nil, fmt.Errorf("%s: run: %w", benchName, err)
	}
	res := &CellResult{
		Stats:              out.Stats,
		CodeSize:           cr.CodeSize,
		CheckingCodeSize:   cr.CheckingCodeSize,
		DuplicatedCodeSize: cr.DuplicatedCodeSize,
		Work:               cr.Work,
		Return:             out.Return,
		Output:             out.Output,
	}
	if orc != nil {
		if err := orc.Finish(out.Stats); err != nil {
			return nil, fmt.Errorf("%s: oracle: %w", benchName, err)
		}
		res.Aux = map[string]int64{
			"oracle-events":      int64(orc.Events()),
			"oracle-expected-p1": int64(orc.ExpectedPropertyViolations()),
		}
	}
	for _, rt := range cr.Runtimes {
		res.Profiles = append(res.Profiles, rt.Profile())
	}
	if conv != nil {
		for _, pt := range conv.Points() {
			res.Snapshots = append(res.Snapshots, ProfileSnapshot{
				Cycle:    pt.Cycle,
				Profiles: pt.Profiles,
			})
		}
	}
	return res, nil
}

// benchProgram constructs a fresh sealed program for the named benchmark
// at the given scale. Beyond the regular suite it accepts "resonant", the
// purpose-built periodic workload of the resonance ablation. Each call
// returns a private program, so cells never share IR.
func benchProgram(name string, scale float64) (*ir.Program, error) {
	if name == "resonant" {
		return bench.Resonant(scale), nil
	}
	b, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	return b.Build(scale), nil
}

// A Ref is a handle to one cell's pending result within a Batch. It
// becomes readable after the Batch runs.
type Ref struct {
	b *Batch
	i int
}

// R returns the cell's result. It panics if the Batch has not run yet.
func (r *Ref) R() *CellResult {
	if r.i >= len(r.b.results) {
		panic("experiment: Ref read before Batch.Run")
	}
	return r.b.results[r.i]
}

// A Batch collects the cells one artifact generator needs and runs them
// through the Config's engine. Generators request every cell up front
// (so independent cells can execute concurrently), call Run, then
// assemble their table from the Refs in deterministic order — which is
// why artifact output is byte-identical at any worker count.
//
// Run may be called repeatedly: each call executes the cells added since
// the previous call. This supports artifacts whose later cells depend on
// earlier results (Table 5 derives its timer period from the baseline
// run's cycle count).
type Batch struct {
	cfg     Config
	cells   []Cell
	results []*CellResult
}

// NewBatch returns an empty batch bound to the Config.
func (c Config) NewBatch() *Batch { return &Batch{cfg: c} }

// Cell adds a standard measurement cell (see Config.Cell) and returns its
// handle.
func (b *Batch) Cell(benchName string, o OptsSpec, t TriggerSpec) *Ref {
	return b.Add(b.cfg.Cell(benchName, o, t))
}

// Add appends an arbitrary cell and returns its handle.
func (b *Batch) Add(c Cell) *Ref {
	b.cells = append(b.cells, c)
	return &Ref{b: b, i: len(b.cells) - 1}
}

// Run executes every cell added since the last Run and publishes their
// results to the corresponding Refs. The first cell error (in add order)
// is returned.
func (b *Batch) Run() error {
	pending := b.cells[len(b.results):]
	res, err := b.cfg.engine().Do(b.cfg, pending)
	if err != nil {
		return err
	}
	b.results = append(b.results, res...)
	return nil
}
