package experiment

import (
	"fmt"

	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/profile"
	"instrsample/internal/trigger"
)

// Table4Intervals is the paper's sample-interval sweep.
var Table4Intervals = []int64{1, 10, 100, 1000, 10000, 100000}

// Table4 reproduces the paper's Table 4: overhead and accuracy of sampled
// instrumentation (call-edge and field-access applied together) across
// sample intervals, for Full-Duplication and No-Duplication, averaged
// over the suite.
//
// Per the paper: "Sampled Instrum." excludes the framework's own overhead
// (it is the cost of the samples themselves), "Total" includes
// everything; accuracy is the overlap percentage against the perfect
// profile (interval 1 under Full-Duplication, which equals the exhaustive
// profile).
func Table4(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "table4",
		Title: "Overhead and accuracy of sampled instrumentation vs sample interval (suite averages)",
		Header: []string{"Variation", "Interval", "Num Samples",
			"Sampled Instrum. (%)", "Total (%)", "Call-Edge Acc (%)", "Field-Access Acc (%)"},
	}

	type perBench struct {
		baseCycles uint64
		perfect    []*profile.Profile
	}

	variations := []struct {
		name string
		v    core.Variation
	}{
		{"Full-Duplication", core.FullDuplication},
		{"No-Duplication", core.NoDuplication},
	}

	// Per-benchmark invariants: baseline cycles and the perfect profile.
	var bases []perBench
	for _, b := range suite {
		prog := b.Build(cfg.Scale)
		base, err := cfg.run(prog, compile.Options{}, nil)
		if err != nil {
			return nil, err
		}
		perfect, err := cfg.run(prog, compile.Options{Instrumenters: paperInstrumenters()}, nil)
		if err != nil {
			return nil, err
		}
		bases = append(bases, perBench{
			baseCycles: base.out.Stats.Cycles,
			perfect:    perfect.profiles(),
		})
		cfg.progress("table4 %s: baseline and perfect profile done", b.Name)
	}

	for _, va := range variations {
		// Framework-only cycles per benchmark (Never trigger), used to
		// separate "sampled instrumentation" overhead from framework
		// overhead.
		fwCycles := make([]uint64, len(suite))
		for i, b := range suite {
			prog := b.Build(cfg.Scale)
			fw, err := cfg.run(prog, compile.Options{
				Instrumenters: paperInstrumenters(),
				Framework:     &core.Options{Variation: va.v},
			}, trigger.Never{})
			if err != nil {
				return nil, err
			}
			fwCycles[i] = fw.out.Stats.Cycles
		}
		for _, interval := range Table4Intervals {
			var sumSamples, sumInstrOv, sumTotalOv, sumCE, sumFA float64
			for i, b := range suite {
				prog := b.Build(cfg.Scale)
				out, err := cfg.run(prog, compile.Options{
					Instrumenters: paperInstrumenters(),
					Framework:     &core.Options{Variation: va.v},
				}, trigger.NewCounter(interval))
				if err != nil {
					return nil, err
				}
				base := float64(bases[i].baseCycles)
				sumSamples += float64(out.out.Stats.CheckFires)
				sumInstrOv += 100 * float64(out.out.Stats.Cycles-fwCycles[i]) / base
				sumTotalOv += 100 * (float64(out.out.Stats.Cycles)/base - 1)
				profs := out.profiles()
				sumCE += profile.Overlap(bases[i].perfect[0], profs[0])
				sumFA += profile.Overlap(bases[i].perfect[1], profs[1])
			}
			n := float64(len(suite))
			t.AddRow(va.name, fmt.Sprintf("%d", interval),
				fmt.Sprintf("%.3g", sumSamples/n),
				pct(sumInstrOv/n), pct(sumTotalOv/n),
				fmt.Sprintf("%.0f", sumCE/n), fmt.Sprintf("%.0f", sumFA/n))
			cfg.progress("table4 %s interval %d: total %.1f%%, acc CE %.0f FA %.0f",
				va.name, interval, sumTotalOv/n, sumCE/n, sumFA/n)
		}
	}
	t.Notes = append(t.Notes,
		"paper (Full-Duplication, interval 1000): 1.1e4 samples, sampled 0.8%, total 6.3%, acc 94/97",
		"paper (No-Duplication, interval 1000): 6.7e4 samples, sampled 1.0%, total 57.2%, acc 93/98",
		"perfect profile = exhaustive instrumentation (identical to interval-1 Full-Duplication)")
	return t, nil
}
