package experiment

import (
	"fmt"

	"instrsample/internal/core"
	"instrsample/internal/profile"
)

// Table4Intervals is the paper's sample-interval sweep.
var Table4Intervals = []int64{1, 10, 100, 1000, 10000, 100000}

// Table4 reproduces the paper's Table 4: overhead and accuracy of sampled
// instrumentation (call-edge and field-access applied together) across
// sample intervals, for Full-Duplication and No-Duplication, averaged
// over the suite.
//
// Per the paper: "Sampled Instrum." excludes the framework's own overhead
// (it is the cost of the samples themselves), "Total" includes
// everything; accuracy is the overlap percentage against the perfect
// profile (interval 1 under Full-Duplication, which equals the exhaustive
// profile).
func Table4(cfg Config) (*Table, error) {
	suite, err := cfg.suite()
	if err != nil {
		return nil, err
	}
	variations := []struct {
		name string
		v    core.Variation
	}{
		{"Full-Duplication", core.FullDuplication},
		{"No-Duplication", core.NoDuplication},
	}

	// Every cell of the sweep is independent: per-benchmark invariants
	// (baseline cycles, perfect profile), per-variation framework-only
	// runs, and the (variation × interval × benchmark) sampled runs.
	bt := cfg.NewBatch()
	base := make([]*Ref, len(suite))
	perfect := make([]*Ref, len(suite))
	for i, b := range suite {
		base[i] = bt.Cell(b.Name, OptsSpec{}, NeverTrigger())
		perfect[i] = bt.Cell(b.Name, OptsSpec{Instr: paperInstr()}, NeverTrigger())
	}
	fw := make([][]*Ref, len(variations))        // [variation][bench]
	sampled := make([][][]*Ref, len(variations)) // [variation][interval][bench]
	for vi, va := range variations {
		opts := OptsSpec{Instr: paperInstr(), Framework: &core.Options{Variation: va.v}}
		fw[vi] = make([]*Ref, len(suite))
		for i, b := range suite {
			fw[vi][i] = bt.Cell(b.Name, opts, NeverTrigger())
		}
		sampled[vi] = make([][]*Ref, len(Table4Intervals))
		for ii, interval := range Table4Intervals {
			sampled[vi][ii] = make([]*Ref, len(suite))
			for i, b := range suite {
				sampled[vi][ii][i] = bt.Cell(b.Name, opts, CounterTrigger(interval))
			}
		}
	}
	if err := bt.Run(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "table4",
		Title: "Overhead and accuracy of sampled instrumentation vs sample interval (suite averages)",
		Header: []string{"Variation", "Interval", "Num Samples",
			"Sampled Instrum. (%)", "Total (%)", "Call-Edge Acc (%)", "Field-Access Acc (%)"},
	}
	for _, b := range suite {
		cfg.progress("table4 %s: baseline and perfect profile done", b.Name)
	}
	for vi, va := range variations {
		for ii, interval := range Table4Intervals {
			var sumSamples, sumInstrOv, sumTotalOv, sumCE, sumFA float64
			for i := range suite {
				out := sampled[vi][ii][i].R()
				baseCycles := float64(base[i].R().Stats.Cycles)
				fwCycles := fw[vi][i].R().Stats.Cycles
				sumSamples += float64(out.Stats.CheckFires)
				sumInstrOv += 100 * float64(out.Stats.Cycles-fwCycles) / baseCycles
				sumTotalOv += 100 * (float64(out.Stats.Cycles)/baseCycles - 1)
				pp := perfect[i].R().Profiles
				sumCE += profile.Overlap(pp[0], out.Profiles[0])
				sumFA += profile.Overlap(pp[1], out.Profiles[1])
			}
			n := float64(len(suite))
			t.AddRow(va.name, fmt.Sprintf("%d", interval),
				fmt.Sprintf("%.3g", sumSamples/n),
				pct(sumInstrOv/n), pct(sumTotalOv/n),
				fmt.Sprintf("%.0f", sumCE/n), fmt.Sprintf("%.0f", sumFA/n))
			cfg.progress("table4 %s interval %d: total %.1f%%, acc CE %.0f FA %.0f",
				va.name, interval, sumTotalOv/n, sumCE/n, sumFA/n)
		}
	}
	t.Notes = append(t.Notes,
		"paper (Full-Duplication, interval 1000): 1.1e4 samples, sampled 0.8%, total 6.3%, acc 94/97",
		"paper (No-Duplication, interval 1000): 6.7e4 samples, sampled 1.0%, total 57.2%, acc 93/98",
		"perfect profile = exhaustive instrumentation (identical to interval-1 Full-Duplication)")
	return t, nil
}
