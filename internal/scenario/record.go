package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"instrsample/internal/ir"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

// This file implements whole-run record-and-replay. A Recording
// captures the three things that, on our deterministic VM, pin a run
// completely: the trigger decision stream (trigger.Log), the
// green-thread schedule decision stream (SchedLog, via vm.Config.Sched),
// and a fingerprint of the run's Result. Replay installs a
// trigger.Replayer plus a schedule checker and requires the re-run to
// be bit-identical — same decisions, same contexts, same Stats, same
// output — which is the determinism contract DESIGN.md §13 states.
// Because both dispatchers invoke the Sched hook and the trigger at
// the same points with the same sequences, a run recorded on the fast
// dispatcher replays on the reference dispatcher and vice versa.

// SchedRun is one run-length-encoded schedule decision: thread TID was
// picked N consecutive times.
type SchedRun struct {
	TID int32  `json:"tid"`
	N   uint32 `json:"n"`
}

// SchedLog is the serialized green-thread schedule decision stream of
// one run: the sequence of thread IDs chosen at each scheduling turn,
// run-length encoded (single-threaded programs compress to one entry).
type SchedLog struct {
	// Picks is the total number of scheduling turns.
	Picks uint64 `json:"picks"`
	// Runs is the RLE-compressed pick sequence.
	Runs []SchedRun `json:"runs,omitempty"`
}

// record appends one pick.
func (l *SchedLog) record(tid int) {
	l.Picks++
	if n := len(l.Runs); n > 0 && l.Runs[n-1].TID == int32(tid) && l.Runs[n-1].N < ^uint32(0) {
		l.Runs[n-1].N++
		return
	}
	l.Runs = append(l.Runs, SchedRun{TID: int32(tid), N: 1})
}

// schedChecker verifies a pick sequence against a SchedLog.
type schedChecker struct {
	log  SchedLog
	run  int    // index into log.Runs
	used uint32 // picks consumed from log.Runs[run]
	pos  uint64 // total picks consumed
	err  error  // first divergence, sticky
}

func (c *schedChecker) check(tid int) {
	if c.err != nil {
		return
	}
	if c.run >= len(c.log.Runs) {
		c.err = fmt.Errorf("schedule replay: pick %d (thread %d) beyond the %d recorded", c.pos, tid, c.log.Picks)
		return
	}
	r := c.log.Runs[c.run]
	if int32(tid) != r.TID {
		c.err = fmt.Errorf("schedule replay: pick %d chose thread %d, recording chose %d", c.pos, tid, r.TID)
		return
	}
	c.pos++
	c.used++
	if c.used == r.N {
		c.run++
		c.used = 0
	}
}

func (c *schedChecker) verify() error {
	if c.err != nil {
		return c.err
	}
	if c.pos != c.log.Picks {
		return fmt.Errorf("schedule replay: consumed %d of %d recorded picks", c.pos, c.log.Picks)
	}
	return nil
}

// Fingerprint summarizes a run's Result for bit-identity comparison.
// Stats is comparable with ==, so a single struct comparison covers
// every counter.
type Fingerprint struct {
	// Return is the main method's return value.
	Return int64 `json:"return"`
	// Outputs is the number of OpPrint values.
	Outputs int `json:"outputs"`
	// OutputSHA is the SHA-256 of the output values, little-endian.
	OutputSHA string `json:"output_sha"`
	// Stats are the run's counters, all of them.
	Stats vm.Stats `json:"stats"`
}

// fingerprint summarizes res.
func fingerprint(res *vm.Result) Fingerprint {
	h := sha256.New()
	var buf [8]byte
	for _, v := range res.Output {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	return Fingerprint{
		Return:    res.Return,
		Outputs:   len(res.Output),
		OutputSHA: hex.EncodeToString(h.Sum(nil)),
		Stats:     res.Stats,
	}
}

// diff reports the first difference between two fingerprints, or "".
func (f Fingerprint) diff(g Fingerprint) string {
	switch {
	case f.Return != g.Return:
		return fmt.Sprintf("return %d != %d", f.Return, g.Return)
	case f.Outputs != g.Outputs:
		return fmt.Sprintf("output count %d != %d", f.Outputs, g.Outputs)
	case f.OutputSHA != g.OutputSHA:
		return fmt.Sprintf("output hash %s != %s", f.OutputSHA, g.OutputSHA)
	case f.Stats != g.Stats:
		return fmt.Sprintf("stats %+v != %+v", f.Stats, g.Stats)
	}
	return ""
}

// Recording is the serialized decision record of one run. It is plain
// JSON — small enough to check in as a fuzz corpus entry or ship to
// another machine, and complete enough that Replay can re-execute and
// differentially check the run without the original trigger.
type Recording struct {
	// Trigger is the recorded trigger decision stream.
	Trigger trigger.Log `json:"trigger"`
	// Sched is the recorded schedule decision stream.
	Sched SchedLog `json:"sched"`
	// Result fingerprints the recorded run's outcome.
	Result Fingerprint `json:"result"`
}

// Record runs prog under cfg, recording every trigger and schedule
// decision. cfg.Sched must be nil (Record owns the hook); cfg.Trigger
// is wrapped in a trigger.Recorder. Returns the recording and the
// run's Result.
func Record(prog *ir.Program, cfg vm.Config) (*Recording, *vm.Result, error) {
	if cfg.Sched != nil {
		return nil, nil, fmt.Errorf("scenario: Record requires cfg.Sched == nil")
	}
	tr := trigger.NewRecorder(cfg.Trigger)
	cfg.Trigger = tr
	var sched SchedLog
	cfg.Sched = sched.record
	res, err := vm.New(prog, cfg).Run()
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: recorded run: %w", err)
	}
	return &Recording{Trigger: tr.Log(), Sched: sched, Result: fingerprint(res)}, res, nil
}

// Replay re-runs prog under cfg, replaying rec's trigger decisions and
// differentially checking the schedule decisions and the Result
// fingerprint bit-identical to the recording. cfg.Trigger and
// cfg.Sched must be nil (the recording supplies both). cfg may select
// either dispatcher — a recording made on one replays on the other.
// A nil error means the replay was bit-identical: every trigger poll,
// every schedule pick, every Stats counter, the return value and the
// output stream all matched.
func Replay(prog *ir.Program, cfg vm.Config, rec *Recording) (*vm.Result, error) {
	if cfg.Trigger != nil || cfg.Sched != nil {
		return nil, fmt.Errorf("scenario: Replay requires cfg.Trigger == nil and cfg.Sched == nil")
	}
	rp := trigger.NewReplayer(rec.Trigger)
	cfg.Trigger = rp
	chk := &schedChecker{log: rec.Sched}
	cfg.Sched = chk.check
	res, err := vm.New(prog, cfg).Run()
	if err != nil {
		return nil, fmt.Errorf("scenario: replayed run: %w", err)
	}
	if err := rp.Verify(); err != nil {
		return nil, err
	}
	if err := chk.verify(); err != nil {
		return nil, err
	}
	if d := fingerprint(res).diff(rec.Result); d != "" {
		return nil, fmt.Errorf("scenario: replay result diverged: %s", d)
	}
	return res, nil
}
