package scenario_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/instr"
	"instrsample/internal/ir"
	"instrsample/internal/oracle"
	"instrsample/internal/scenario"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

func disasm(t *testing.T, p *ir.Program) string {
	t.Helper()
	var buf bytes.Buffer
	ir.FprintProgram(&buf, p)
	return buf.String()
}

// TestFamilyDeterminism is the acceptance criterion's expansion half:
// identical seed + spec must produce byte-identical program sets and
// an identical family hash, and Program(i) must agree with Expand().
func TestFamilyDeterminism(t *testing.T) {
	fam := scenario.DefaultFamily(42, 5)
	h1, err := fam.Hash()
	if err != nil {
		t.Fatalf("hash: %v", err)
	}
	h2, err := fam.Hash()
	if err != nil {
		t.Fatalf("hash: %v", err)
	}
	if h1 != h2 {
		t.Fatalf("hash not deterministic: %s vs %s", h1, h2)
	}
	progs, err := fam.Expand()
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	for i, p := range progs {
		q, err := fam.Program(i)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		if disasm(t, p) != disasm(t, q) {
			t.Fatalf("program %d: Expand and Program disagree", i)
		}
	}
	// A different seed or a different shape must change the receipt.
	other := scenario.DefaultFamily(43, 5)
	if h3, _ := other.Hash(); h3 == h1 {
		t.Fatalf("different seeds hashed identically")
	}
	shaped := *fam
	shaped.LoopBiasPct = 60
	if h4, _ := shaped.Hash(); h4 == h1 {
		t.Fatalf("different shape hashed identically")
	}
	if fam.SpecHash() == shaped.SpecHash() {
		t.Fatalf("different specs share a SpecHash")
	}
}

// TestProgramSeedsDistinct guards the splitmix64 derivation: family
// members must not share generator seeds (which would collapse the
// family to copies of one program).
func TestProgramSeedsDistinct(t *testing.T) {
	fam := scenario.DefaultFamily(7, 64)
	seen := map[uint64]int{}
	for i := 0; i < fam.Count; i++ {
		s := fam.ProgramSeed(i)
		if j, dup := seen[s]; dup {
			t.Fatalf("programs %d and %d share seed %#x", j, i, s)
		}
		seen[s] = i
	}
}

func TestFamilyValidate(t *testing.T) {
	valid := scenario.Family{Name: "ok", Seed: 1, Count: 2}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid family rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*scenario.Family)
		want string
	}{
		{"no name", func(f *scenario.Family) { f.Name = "" }, "no name"},
		{"zero count", func(f *scenario.Family) { f.Count = 0 }, "count"},
		{"negative count", func(f *scenario.Family) { f.Count = -3 }, "count"},
		{"negative funcs", func(f *scenario.Family) { f.MaxFuncs = -1 }, "max_funcs"},
		{"negative depth", func(f *scenario.Family) { f.MaxDepth = -1 }, "max_depth"},
		{"negative iters", func(f *scenario.Family) { f.MaxLoopIters = -1 }, "max_loop_iters"},
		{"negative classes", func(f *scenario.Family) { f.MaxClasses = -1 }, "max_classes"},
		{"negative threads", func(f *scenario.Family) { f.Threads = -1 }, "threads"},
		{"call bias over", func(f *scenario.Family) { f.CallBiasPct = 101 }, "call_bias_pct"},
		{"loop bias under", func(f *scenario.Family) { f.LoopBiasPct = -2 }, "loop_bias_pct"},
		{"virt bias over", func(f *scenario.Family) { f.VirtBiasPct = 200 }, "virt_bias_pct"},
		{"threads without flag", func(f *scenario.Family) { f.Threads = 2 }, "with_threads"},
	}
	for _, tc := range cases {
		f := valid
		tc.mut(&f)
		err := f.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestReadFamily(t *testing.T) {
	good := `{"name":"spec","seed":9,"count":3,"loop_bias_pct":25}`
	f, err := scenario.ReadFamily(strings.NewReader(good))
	if err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	if f.Name != "spec" || f.Seed != 9 || f.Count != 3 || f.LoopBiasPct != 25 {
		t.Fatalf("good spec misparsed: %+v", f)
	}
	for _, bad := range []string{
		`{"name":"x","seed":1,"count":1,"typo_knob":5}`, // unknown field
		`{"name":"x","seed":1}`,                         // missing count
		`{"name":"x","seed":1,"count":1`,                // truncated
		`{"name":"x","seed":-1,"count":1}`,              // negative uint
		`[]`,                                            // wrong shape
		``,                                              // empty
	} {
		if _, err := scenario.ReadFamily(strings.NewReader(bad)); err == nil {
			t.Errorf("hostile spec accepted: %s", bad)
		}
	}
}

// compileFramework compiles prog with call-edge instrumentation under
// one framework variation.
func compileFramework(t *testing.T, prog *ir.Program, v core.Variation) *compile.Result {
	t.Helper()
	res, err := compile.Compile(prog, compile.Options{
		Instrumenters: []instr.Instrumenter{&instr.CallEdge{}},
		Framework:     &core.Options{Variation: v},
	})
	if err != nil {
		t.Fatalf("compile %s: %v", v, err)
	}
	return res
}

// TestRecordReplayDifferential is the acceptance criterion's replay
// half: a run recorded on the fast dispatcher must replay bit-identical
// — all Stats counters, return value, output — on both dispatchers,
// and the recording must survive JSON serialization.
func TestRecordReplayDifferential(t *testing.T) {
	fam := scenario.DefaultFamily(1234, 3)
	for i := 0; i < fam.Count; i++ {
		prog, err := fam.Program(i)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		for _, v := range []core.Variation{core.FullDuplication, core.Hybrid} {
			res := compileFramework(t, prog, v)
			cfg := vm.Config{
				Trigger:  trigger.NewRandomized(37, 18, fam.ProgramSeed(i)|1),
				Handlers: res.Handlers,
			}
			rec, live, err := scenario.Record(res.Prog, cfg)
			if err != nil {
				t.Fatalf("program %d %s: record: %v", i, v, err)
			}
			if rec.Sched.Picks == 0 {
				t.Fatalf("program %d %s: no schedule picks recorded", i, v)
			}
			// Serialize and re-read: the recording must be portable.
			blob, err := json.Marshal(rec)
			if err != nil {
				t.Fatalf("marshal recording: %v", err)
			}
			var loaded scenario.Recording
			if err := json.Unmarshal(blob, &loaded); err != nil {
				t.Fatalf("unmarshal recording: %v", err)
			}
			for _, ref := range []bool{false, true} {
				replayed, err := scenario.Replay(res.Prog,
					vm.Config{Handlers: res.Handlers, Reference: ref}, &loaded)
				if err != nil {
					t.Fatalf("program %d %s reference=%v: replay: %v", i, v, ref, err)
				}
				if replayed.Stats != live.Stats || replayed.Return != live.Return {
					t.Fatalf("program %d %s reference=%v: replay Result differs", i, v, ref)
				}
			}
		}
	}
}

// TestReplayDetectsTampering: a recording whose decision stream or
// fingerprint is perturbed must fail replay verification, not silently
// pass.
func TestReplayDetectsTampering(t *testing.T) {
	prog := ir.RandomProgram(99, ir.RandomProgramConfig{})
	res := compileFramework(t, prog, core.FullDuplication)
	cfg := vm.Config{Trigger: trigger.NewCounter(23), Handlers: res.Handlers}
	rec, _, err := scenario.Record(res.Prog, cfg)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	replayCfg := func() vm.Config { return vm.Config{Handlers: res.Handlers} }
	if _, err := scenario.Replay(res.Prog, replayCfg(), rec); err != nil {
		t.Fatalf("untampered replay failed: %v", err)
	}
	tamper := []struct {
		name string
		mut  func(r *scenario.Recording)
	}{
		{"flip a trigger decision", func(r *scenario.Recording) {
			if len(r.Trigger.Bits) == 0 {
				r.Trigger.Bits = []uint64{0}
			}
			r.Trigger.Bits[0] ^= 1
		}},
		{"truncate trigger polls", func(r *scenario.Recording) { r.Trigger.Polls /= 2 }},
		{"corrupt checksum", func(r *scenario.Recording) { r.Trigger.Checksum ^= 0xdead }},
		{"wrong sched thread", func(r *scenario.Recording) {
			r.Sched.Runs[0].TID++
		}},
		{"truncate sched", func(r *scenario.Recording) {
			r.Sched.Picks--
			r.Sched.Runs[len(r.Sched.Runs)-1].N--
		}},
		{"wrong return", func(r *scenario.Recording) { r.Result.Return++ }},
		{"wrong stats", func(r *scenario.Recording) { r.Result.Stats.Cycles++ }},
	}
	for _, tc := range tamper {
		blob, _ := json.Marshal(rec)
		var mutated scenario.Recording
		if err := json.Unmarshal(blob, &mutated); err != nil {
			t.Fatalf("%s: reload: %v", tc.name, err)
		}
		tc.mut(&mutated)
		if _, err := scenario.Replay(res.Prog, replayCfg(), &mutated); err == nil {
			t.Errorf("%s: tampered replay verified clean", tc.name)
		}
	}
}

// TestSweepProperty is the property-based sweep: seeded families with
// distinct profile shapes, each program compiled under all four
// framework variations and run on both dispatchers with the runtime
// oracle installed. Results must be bit-identical across dispatchers
// and the oracle must stay clean. On failure the family seed, program
// index and variation are printed for one-line reproduction via
//
//	go run ./cmd/isamp scenario -seed <seed> -count <count> -index <i>
func TestSweepProperty(t *testing.T) {
	families := []*scenario.Family{
		{Name: "loopy", Seed: 101, Count: 2, MaxDepth: 5, LoopBiasPct: 40},
		{Name: "callheavy", Seed: 202, Count: 2, MaxFuncs: 6, CallBiasPct: 40},
		{Name: "poly", Seed: 303, Count: 2, MaxClasses: 8, VirtBiasPct: 35},
		{Name: "threaded", Seed: 404, Count: 2, WithThreads: true, Threads: 4},
	}
	variations := []core.Variation{
		core.FullDuplication, core.PartialDuplication, core.NoDuplication, core.Hybrid,
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			if err := fam.Validate(); err != nil {
				t.Fatalf("family: %v", err)
			}
			for i := 0; i < fam.Count; i++ {
				prog, err := fam.Program(i)
				if err != nil {
					t.Fatalf("program %d: %v", i, err)
				}
				for _, v := range variations {
					spec, _ := json.Marshal(fam)
					repro := func() string {
						return fmt.Sprintf("repro: family=%s seed=%d index=%d variation=%v spec=%s",
							fam.Name, fam.Seed, i, v, spec)
					}
					res := compileFramework(t, prog, v)
					var outs [2]*vm.Result
					var errs [2]error
					for d, ref := range []bool{false, true} {
						o := oracle.New()
						outs[d], errs[d] = vm.New(res.Prog, vm.Config{
							Trigger:   trigger.NewRandomized(29, 14, fam.ProgramSeed(i)|1),
							Handlers:  res.Handlers,
							Observer:  o,
							Reference: ref,
						}).Run()
						if errs[d] != nil {
							continue
						}
						if ferr := o.Finish(outs[d].Stats); ferr != nil {
							t.Fatalf("oracle (reference=%v): %v\n%s", ref, ferr, repro())
						}
					}
					if (errs[0] == nil) != (errs[1] == nil) {
						t.Fatalf("trap asymmetry: fast=%v reference=%v\n%s", errs[0], errs[1], repro())
					}
					if errs[0] != nil {
						if errs[0].Error() != errs[1].Error() {
							t.Fatalf("traps differ: %v vs %v\n%s", errs[0], errs[1], repro())
						}
						continue
					}
					if outs[0].Stats != outs[1].Stats || outs[0].Return != outs[1].Return {
						t.Fatalf("dispatchers diverge:\n  fast:      %+v\n  reference: %+v\n%s",
							outs[0].Stats, outs[1].Stats, repro())
					}
				}
			}
		})
	}
}
