// Package scenario turns ir.RandomProgram into a first-class workload
// family: a seeded, serializable spec (Family) that expands into a
// deterministic set of programs with controllable profile shape — loop
// depth, call density, polymorphism/receiver spread, thread count — so
// experiments can sweep *spaces* of programs instead of the ten fixed
// benchmarks, and every generated program doubles as a correctness
// probe under the runtime oracle. The family hash (SHA-256 over the
// spec and every program's canonical disassembly) is the replay
// receipt, mirroring load.PlanHash: two machines that print the same
// hash expanded byte-identical program sets.
//
// The package also implements whole-run record-and-replay (record.go):
// a Recording captures every trigger-fire decision, every green-thread
// schedule decision, and a fingerprint of the run's Result; Replay
// re-executes the identical decision sequence — on another machine or
// the other dispatcher — and differentially checks it bit-identical.
//
// See DESIGN.md §13 for the spec format, the replay determinism
// contract and how the experiment engine's scenario-sweep artifact
// uses both.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"instrsample/internal/ir"
)

// Family is a seeded workload-family spec. It is pure data: the same
// spec and seed expand to the byte-identical program set on any
// machine at any degree of parallelism. The JSON form rejects unknown
// fields (like load.Mix), so a typo in a spec file is an error, not a
// silently ignored knob.
type Family struct {
	// Name labels the family in reports and cell keys.
	Name string `json:"name"`
	// Seed seeds the family; program i derives its own seed from it.
	Seed uint64 `json:"seed"`
	// Count is the number of programs the family expands into.
	Count int `json:"count"`

	// Profile-shape knobs, forwarded to ir.RandomProgramConfig.
	// Zero values mean the generator's defaults.
	MaxFuncs     int  `json:"max_funcs,omitempty"`
	MaxDepth     int  `json:"max_depth,omitempty"`
	MaxLoopIters int  `json:"max_loop_iters,omitempty"`
	MaxClasses   int  `json:"max_classes,omitempty"`
	Threads      int  `json:"threads,omitempty"`
	CallBiasPct  int  `json:"call_bias_pct,omitempty"`
	LoopBiasPct  int  `json:"loop_bias_pct,omitempty"`
	VirtBiasPct  int  `json:"virt_bias_pct,omitempty"`
	WithThreads  bool `json:"with_threads,omitempty"`
}

// Validate checks the spec's bounds. Bias percentages must be in
// [0, 100]; sizes must be non-negative (0 = generator default); Count
// must be positive; Threads > 0 requires WithThreads (a spread for
// threads that are never spawned is a spec error, not a no-op).
func (f *Family) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("scenario: family has no name")
	}
	if f.Count <= 0 {
		return fmt.Errorf("scenario %s: count must be positive, got %d", f.Name, f.Count)
	}
	for _, s := range []struct {
		name string
		v    int
	}{
		{"max_funcs", f.MaxFuncs}, {"max_depth", f.MaxDepth},
		{"max_loop_iters", f.MaxLoopIters}, {"max_classes", f.MaxClasses},
		{"threads", f.Threads},
	} {
		if s.v < 0 {
			return fmt.Errorf("scenario %s: %s must be non-negative, got %d", f.Name, s.name, s.v)
		}
	}
	for _, s := range []struct {
		name string
		v    int
	}{
		{"call_bias_pct", f.CallBiasPct}, {"loop_bias_pct", f.LoopBiasPct},
		{"virt_bias_pct", f.VirtBiasPct},
	} {
		if s.v < 0 || s.v > 100 {
			return fmt.Errorf("scenario %s: %s must be in [0, 100], got %d", f.Name, s.name, s.v)
		}
	}
	if f.Threads > 0 && !f.WithThreads {
		return fmt.Errorf("scenario %s: threads=%d requires with_threads", f.Name, f.Threads)
	}
	return nil
}

// ReadFamily parses and validates a JSON family spec, rejecting
// unknown fields.
func ReadFamily(r io.Reader) (*Family, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f Family
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("scenario: parsing family spec: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Config returns the generator config the family's knobs describe.
func (f *Family) Config() ir.RandomProgramConfig {
	return ir.RandomProgramConfig{
		MaxFuncs:     f.MaxFuncs,
		MaxDepth:     f.MaxDepth,
		MaxLoopIters: f.MaxLoopIters,
		WithThreads:  f.WithThreads,
		MaxClasses:   f.MaxClasses,
		MaxThreads:   f.Threads,
		CallBiasPct:  f.CallBiasPct,
		LoopBiasPct:  f.LoopBiasPct,
		VirtBiasPct:  f.VirtBiasPct,
	}
}

// splitmix64 is the standard splitmix64 finalizer — a bijective mixer,
// so distinct (Seed, index) pairs yield distinct program seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ProgramSeed returns the generator seed of program i. Seeds are
// derived, not sequential, so neighbouring programs share no PRNG
// stream prefix.
func (f *Family) ProgramSeed(i int) uint64 {
	return splitmix64(f.Seed ^ splitmix64(uint64(i)+1))
}

// Program builds program i of the family. Programs are built on
// demand and independently: Program(i) is pure, so the experiment
// engine can expand one family member inside each cell without
// ordering constraints.
func (f *Family) Program(i int) (*ir.Program, error) {
	if i < 0 || i >= f.Count {
		return nil, fmt.Errorf("scenario %s: program index %d out of range [0, %d)", f.Name, i, f.Count)
	}
	return ir.RandomProgram(f.ProgramSeed(i), f.Config()), nil
}

// Expand builds the family's whole program set, in index order.
func (f *Family) Expand() ([]*ir.Program, error) {
	progs := make([]*ir.Program, f.Count)
	for i := range progs {
		p, err := f.Program(i)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: program %d: %w", f.Name, i, err)
		}
		progs[i] = p
	}
	return progs, nil
}

// canonical returns the spec's canonical JSON (fixed field order via
// the struct marshaller).
func (f *Family) canonical() []byte {
	b, err := json.Marshal(f)
	if err != nil {
		// A Family of plain ints/strings cannot fail to marshal.
		panic("scenario: marshal family: " + err.Error())
	}
	return b
}

// SpecHash is the SHA-256 of the canonical spec JSON — cheap (no
// expansion), used to key experiment cells and job specs.
func (f *Family) SpecHash() string {
	sum := sha256.Sum256(f.canonical())
	return hex.EncodeToString(sum[:])
}

// Hash is the family's replay receipt: the SHA-256 of the canonical
// spec JSON followed by every program's canonical disassembly, in
// index order. Two machines that print the same Hash expanded
// byte-identical program sets (mirroring load.PlanHash).
func (f *Family) Hash() (string, error) {
	h := sha256.New()
	h.Write(f.canonical())
	for i := 0; i < f.Count; i++ {
		p, err := f.Program(i)
		if err != nil {
			return "", fmt.Errorf("scenario %s: program %d: %w", f.Name, i, err)
		}
		fmt.Fprintf(h, "\n-- program %d seed %#x --\n", i, f.ProgramSeed(i))
		ir.FprintProgram(h, p)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// DefaultFamily is the family the CLIs and the scenario-sweep artifact
// use when no spec file is given: a mixed-shape family with threads,
// moderate polymorphism and boosted call/loop density.
func DefaultFamily(seed uint64, count int) *Family {
	return &Family{
		Name:        "default",
		Seed:        seed,
		Count:       count,
		MaxClasses:  4,
		WithThreads: true,
		Threads:     3,
		CallBiasPct: 20,
		LoopBiasPct: 15,
		VirtBiasPct: 10,
	}
}
