package scenario_test

import (
	"encoding/json"
	"testing"

	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/instr"
	"instrsample/internal/scenario"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

// FuzzReplayRoundTrip fuzzes the whole record-and-replay loop: generate
// a program from the fuzzed family shape, record a run (fuzzed trigger
// family and variation), serialize the Recording to JSON, deserialize,
// and replay it on BOTH dispatchers. Replay must verify (every trigger
// poll, schedule pick and Stats counter bit-identical) regardless of
// the program's shape — this is the determinism contract of DESIGN.md
// §13 under adversarial inputs. The checked-in corpus lives in
// testdata/fuzz/FuzzReplayRoundTrip.
func FuzzReplayRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), uint16(3), uint8(0))
	f.Add(uint64(2), uint8(40), uint8(1), uint16(17), uint8(1))
	f.Add(uint64(7), uint8(25), uint8(2), uint16(64), uint8(2))
	f.Add(uint64(42), uint8(70), uint8(3), uint16(5), uint8(3))
	f.Add(uint64(1234), uint8(10), uint8(1), uint16(977), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, bias, shapeSel uint8, interval uint16, varSel uint8) {
		if interval == 0 {
			interval = 1
		}
		fam := scenario.Family{
			Name:  "fuzz",
			Seed:  seed,
			Count: 1,
		}
		switch shapeSel % 4 {
		case 1:
			fam.LoopBiasPct, fam.MaxDepth = int(bias)%101, 5
		case 2:
			fam.CallBiasPct, fam.MaxFuncs = int(bias)%101, 6
		case 3:
			fam.VirtBiasPct, fam.MaxClasses = int(bias)%101, 8
		}
		if seed%3 == 0 {
			fam.WithThreads, fam.Threads = true, 1+int(seed%4)
		}
		if err := fam.Validate(); err != nil {
			t.Fatalf("generated family invalid: %v", err)
		}
		prog, err := fam.Program(0)
		if err != nil {
			t.Fatalf("program: %v", err)
		}
		variation := []core.Variation{
			core.FullDuplication, core.PartialDuplication, core.NoDuplication, core.Hybrid,
		}[varSel%4]
		res, err := compile.Compile(prog, compile.Options{
			Instrumenters: []instr.Instrumenter{&instr.CallEdge{}},
			Framework:     &core.Options{Variation: variation},
		})
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		var trig trigger.Trigger
		switch seed % 3 {
		case 0:
			trig = trigger.NewCounter(int64(interval))
		case 1:
			trig = trigger.NewRandomized(int64(interval), int64(interval)/2, seed|1)
		default:
			trig = trigger.NewTimer(uint64(interval) * 16)
		}
		rec, live, err := scenario.Record(res.Prog, vm.Config{
			Trigger: trig, Handlers: res.Handlers, MaxCycles: 1 << 32,
		})
		if err != nil {
			// A trap (cycle cap, stack overflow) is a legal run outcome;
			// there is nothing to replay.
			return
		}
		blob, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var loaded scenario.Recording
		if err := json.Unmarshal(blob, &loaded); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		for _, ref := range []bool{false, true} {
			out, err := scenario.Replay(res.Prog, vm.Config{
				Handlers: res.Handlers, MaxCycles: 1 << 32, Reference: ref,
			}, &loaded)
			if err != nil {
				t.Fatalf("replay (reference=%v): %v", ref, err)
			}
			if out.Stats != live.Stats || out.Return != live.Return {
				t.Fatalf("replay (reference=%v) result differs:\n  live:   %+v\n  replay: %+v",
					ref, live.Stats, out.Stats)
			}
		}
	})
}
