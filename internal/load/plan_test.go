package load

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"instrsample/internal/service"
	"instrsample/internal/telemetry"
)

// TestPlanDeterministic is the acceptance-criterion test: an identical
// seed+mix yields an identical job-spec sequence — byte for byte through
// JSON — and the plan hash captures that.
func TestPlanDeterministic(t *testing.T) {
	mix := DefaultMix(42, 500)
	a, err := Plan(mix)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(mix)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatal("two plans from the same seed+mix differ")
	}
	if PlanHash(a) != PlanHash(b) {
		t.Fatal("plan hashes differ for identical plans")
	}

	// A mix that survives a JSON round trip (the portable-spec path)
	// plans the same sequence.
	var rt Mix
	mj, _ := json.Marshal(mix)
	if err := json.Unmarshal(mj, &rt); err != nil {
		t.Fatal(err)
	}
	c, err := Plan(rt)
	if err != nil {
		t.Fatal(err)
	}
	if PlanHash(c) != PlanHash(a) {
		t.Fatal("JSON round-tripped mix plans a different sequence")
	}

	// A different seed yields a different sequence.
	other := mix
	other.Seed = 43
	d, err := Plan(other)
	if err != nil {
		t.Fatal(err)
	}
	if PlanHash(d) == PlanHash(a) {
		t.Fatal("different seeds produced identical plans")
	}
}

// TestPlanSpecsValid: every generated spec must pass the daemon's own
// validation — the harness must never manufacture 400s.
func TestPlanSpecsValid(t *testing.T) {
	ops, err := Plan(DefaultMix(7, 1000))
	if err != nil {
		t.Fatal(err)
	}
	post := func(spec service.JobSpec) error {
		// Round-trip through JSON exactly as the HTTP path does.
		b, err := json.Marshal(spec)
		if err != nil {
			return err
		}
		var decoded service.JobSpec
		if err := json.Unmarshal(b, &decoded); err != nil {
			return err
		}
		return decoded.Valid()
	}
	for _, op := range ops {
		if err := post(op.Spec); err != nil {
			t.Fatalf("op %d generated an invalid spec: %v\n%+v", op.Index, err, op.Spec)
		}
	}
}

// TestPlanMixShape: the plan realizes every requested traffic class and
// respects the structural invariants the runner depends on.
func TestPlanMixShape(t *testing.T) {
	mix := DefaultMix(11, 2000)
	ops, err := Plan(mix)
	if err != nil {
		t.Fatal(err)
	}
	var cancels, reuses, subs, slow, overlaps, verifies int
	for _, op := range ops {
		switch {
		case op.Cancel:
			cancels++
			if op.Spec.Source == "" {
				t.Fatalf("op %d: cancel op must be a long-running source job", op.Index)
			}
			if op.CancelAfterMs < mix.CancelAfterMsMin || op.CancelAfterMs > mix.CancelAfterMsMax {
				t.Fatalf("op %d: cancel delay %dms outside mix range", op.Index, op.CancelAfterMs)
			}
			if op.ReuseOf != -1 {
				t.Fatalf("op %d: cancel ops must not be reuses", op.Index)
			}
		case op.ReuseOf >= 0:
			reuses++
			if op.ReuseOf >= op.Index {
				t.Fatalf("op %d: reuse_of %d is not an earlier op", op.Index, op.ReuseOf)
			}
			ref := ops[op.ReuseOf]
			if ref.Cancel {
				t.Fatalf("op %d reuses cancel op %d", op.Index, op.ReuseOf)
			}
			a, _ := json.Marshal(op.Spec)
			b, _ := json.Marshal(ref.Spec)
			if !bytes.Equal(a, b) {
				t.Fatalf("op %d: reused spec differs from op %d's", op.Index, op.ReuseOf)
			}
		}
		if op.Subscribe {
			subs++
		}
		if op.SlowReader {
			slow++
			if !op.Subscribe {
				t.Fatalf("op %d: slow reader without subscription", op.Index)
			}
		}
		if op.Spec.Overlap {
			overlaps++
			if len(op.Spec.Instrument) == 0 {
				t.Fatalf("op %d: overlap without instrumentation", op.Index)
			}
		}
		if op.Spec.Verify {
			verifies++
			if op.Spec.Variation == "" {
				t.Fatalf("op %d: verify without a framework variation", op.Index)
			}
		}
	}
	for name, n := range map[string]int{
		"cancel": cancels, "reuse": reuses, "subscribe": subs,
		"slow-reader": slow, "overlap": overlaps, "verify": verifies,
	} {
		if n == 0 {
			t.Errorf("mix requested %s traffic but the plan contains none", name)
		}
	}
	// Distinct cancel ops must be distinct cells (see Plan).
	srcs := map[string]int{}
	for _, op := range ops {
		if op.Cancel {
			if prev, dup := srcs[op.Spec.Source]; dup {
				t.Fatalf("cancel ops %d and %d share a source program", prev, op.Index)
			}
			srcs[op.Spec.Source] = op.Index
		}
	}
}

// TestMixValidateAndRead covers the spec-file path: unknown fields and
// unsatisfiable mixes must fail loudly.
func TestMixValidateAndRead(t *testing.T) {
	good := DefaultMix(1, 10)
	if err := good.Validate(); err != nil {
		t.Fatalf("default mix invalid: %v", err)
	}
	bad := []Mix{
		{}, // no ops
		func() Mix { m := good; m.Benches = nil; return m }(),                      // no benches
		func() Mix { m := good; m.ScaleMin = 0; return m }(),                       // zero scale
		func() Mix { m := good; m.CancelPct = 1.5; return m }(),                    // pct out of range
		func() Mix { m := good; m.Intervals = nil; return m }(),                    // no intervals
		func() Mix { m := good; m.CancelAfterMsMax = -1; return m }(),              // bad cancel range
		func() Mix { m := good; m.Variations = []Choice{{"full", 0}}; return m }(), // all-zero weights
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad mix %d validated", i)
		}
	}

	if _, err := ReadMix(strings.NewReader(`{"seed": 1, "opps": 3}`)); err == nil {
		t.Error("unknown field accepted")
	}
	mj, _ := json.Marshal(good)
	m, err := ReadMix(bytes.NewReader(mj))
	if err != nil {
		t.Fatalf("round-tripped mix rejected: %v", err)
	}
	if m.Seed != good.Seed || m.Ops != good.Ops {
		t.Errorf("ReadMix mangled the mix: %+v", m)
	}
}

// TestGates exercises the gate arithmetic on synthetic results.
func TestGates(t *testing.T) {
	ok := &Result{
		ThroughputJobsPerSec: 100,
		JobLatencyMs:         telemetry.Summary{Count: 500, P99: 40},
		CancelLatencyMs:      telemetry.Summary{Count: 30, P99: 25},
		Counts:               Counts{Submitted: 500},
	}
	g := DefaultGates()
	if res := g.Check(ok); !AllOK(res) {
		t.Errorf("healthy result violated gates: %s", Describe(res))
	}

	for name, mutate := range map[string]func(*Result){
		"throughput":  func(r *Result) { r.ThroughputJobsPerSec = 1 },
		"p99":         func(r *Result) { r.JobLatencyMs.P99 = 5000 },
		"cancel p99":  func(r *Result) { r.CancelLatencyMs.P99 = 5000 },
		"failed jobs": func(r *Result) { r.Counts.Failed = 1 },
		"leak":        func(r *Result) { r.LeakedGoroutines = 2 },
		"transport":   func(r *Result) { r.Counts.TransportErrors = 1 },
		"submitted":   func(r *Result) { r.Counts.Submitted = 3 },
	} {
		bad := *ok
		mutate(&bad)
		if res := g.Check(&bad); AllOK(res) {
			t.Errorf("gate %q did not trip: %s", name, Describe(res))
		}
	}

	// Disabled cancel gate: no cancel observations means no verdict.
	none := *ok
	none.CancelLatencyMs = telemetry.Summary{}
	for _, gr := range g.Check(&none) {
		if gr.Name == "cancel_latency_p99_ms" {
			t.Error("cancel gate asserted with zero observations")
		}
	}
}

// TestReportEnvelope: the generated report must carry the established
// BENCH_*.json envelope fields and a verifiable plan hash.
func TestReportEnvelope(t *testing.T) {
	mix := DefaultMix(3, 50)
	ops, err := Plan(mix)
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{ThroughputJobsPerSec: 50, Counts: Counts{Submitted: 50}}
	gates := DefaultGates().Check(res)
	rep := NewReport(6, "soak", mix, ops, res, gates, "test")
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	for _, key := range []string{
		"pr", "title", "host", "methodology", "mix", "plan_ops",
		"plan_hash", "result", "gates", "budget", "budget_met",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("report missing envelope field %q", key)
		}
	}
	if doc["plan_hash"] != PlanHash(ops) {
		t.Error("report plan_hash does not match the plan")
	}
	if doc["budget_met"] != false { // throughput ok but submitted-floor etc.
		// budget_met is whatever the gates said; just assert it is a bool
		if _, ok := doc["budget_met"].(bool); !ok {
			t.Errorf("budget_met is %T, want bool", doc["budget_met"])
		}
	}
}
