package load

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"instrsample/internal/obs"
	"instrsample/internal/telemetry"
)

// Options configures a soak run. Zero values get sensible defaults.
type Options struct {
	// BaseURL is the daemon under test, e.g. "http://127.0.0.1:8347".
	BaseURL string
	// Clients is the number of concurrent submitters (default 4).
	Clients int
	// Duration is the submission window; ops still in flight when it
	// expires are driven to a terminal state, but no new ops start.
	Duration time.Duration
	// MetricsSampleInterval is the /metrics queue-depth scrape cadence
	// (default 200ms).
	MetricsSampleInterval time.Duration
	// SettleTimeout bounds the post-drain wait for the daemon to return
	// to its baseline goroutine count (default 15s).
	SettleTimeout time.Duration
	// SlowReaderDelay is the per-chunk throttle of a slow SSE reader
	// (default 15ms).
	SlowReaderDelay time.Duration
	// RetryDelay is the pause before resubmitting after a 429
	// (default 10ms).
	RetryDelay time.Duration
	// OpTimeout bounds one op's drive-to-terminal wait (default 60s);
	// a job stuck non-terminal counts as failed and trips the gates
	// instead of hanging the soak.
	OpTimeout time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.Clients < 1 {
		o.Clients = 4
	}
	if o.Duration <= 0 {
		o.Duration = 30 * time.Second
	}
	if o.MetricsSampleInterval <= 0 {
		o.MetricsSampleInterval = 200 * time.Millisecond
	}
	if o.SettleTimeout <= 0 {
		o.SettleTimeout = 15 * time.Second
	}
	if o.SlowReaderDelay <= 0 {
		o.SlowReaderDelay = 15 * time.Millisecond
	}
	if o.RetryDelay <= 0 {
		o.RetryDelay = 10 * time.Millisecond
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = 60 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4 * o.Clients,
			MaxIdleConnsPerHost: 4 * o.Clients,
		}}
	}
	return o
}

// Counts are the per-outcome op totals of a run.
type Counts struct {
	// Submitted ops were accepted by the daemon (202).
	Submitted int64 `json:"submitted"`
	// Done/Failed/Cancelled are terminal states observed for non-cancel
	// ops (Done includes memo/cache-served reuse ops).
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	// CancelRequested counts cancel ops whose DELETE resolved the job
	// cancelled; CancelRaces are cancel ops that finished on their own
	// before the DELETE landed (possible, not an error).
	CancelRequested int64 `json:"cancel_requested"`
	CancelRaces     int64 `json:"cancel_races"`
	// Rejected429 counts backpressure pushbacks; Retries the follow-up
	// resubmissions (every 429 is retried until the window closes).
	Rejected429 int64 `json:"rejected_429"`
	Retries     int64 `json:"retries"`
	// Abandoned ops never got accepted before the window closed.
	Abandoned int64 `json:"abandoned"`
	// SSEStreams/SSESlowStreams/SSERows account the event subscribers.
	SSEStreams     int64 `json:"sse_streams"`
	SSESlowStreams int64 `json:"sse_slow_streams"`
	SSERows        int64 `json:"sse_rows"`
	// TransportErrors are client-side HTTP failures (first few are kept
	// in Result.Errors).
	TransportErrors int64 `json:"transport_errors"`
}

// Health is the daemon's /healthz introspection document — the fields
// service.Server.Introspect exposes, read over HTTP so external daemons
// get the same leak checks as in-process ones.
type Health struct {
	Status      string `json:"status"`
	Queued      int    `json:"queued"`
	Running     int    `json:"running"`
	Terminal    int    `json:"terminal"`
	Subscribers int    `json:"subscribers"`
	Goroutines  int    `json:"goroutines"`
	HeapBytes   uint64 `json:"heap_bytes"`
}

// Result is everything a run measured; Gates.Check consumes it and the
// report embeds it.
type Result struct {
	Elapsed time.Duration `json:"-"`
	// ElapsedSec is the submission+drain wall time in seconds.
	ElapsedSec float64 `json:"elapsed_sec"`
	Counts     Counts  `json:"counts"`
	// ThroughputJobsPerSec is terminal ops per second of submission
	// window.
	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
	// JobLatencyMs summarizes accepted→terminal latency of non-cancel
	// ops; CancelLatencyMs the DELETE→terminal latency of cancel ops;
	// SubmitLatencyUs the POST round-trip.
	JobLatencyMs    telemetry.Summary `json:"job_latency_ms"`
	CancelLatencyMs telemetry.Summary `json:"cancel_latency_ms"`
	SubmitLatencyUs telemetry.Summary `json:"submit_latency_us"`
	// LedgerOps counts terminal ops whose job view carried an attribution
	// ledger (daemon running with -obs spans/full); QueueWaitUs and
	// RunStageUs summarize those ledgers' queue-wait and vm-run stage
	// durations — server-side wall-clock attribution, immune to the
	// harness's own polling cadence. All zero against an obs-off daemon.
	LedgerOps   int64             `json:"ledger_ops"`
	QueueWaitUs telemetry.Summary `json:"queue_wait_us"`
	RunStageUs  telemetry.Summary `json:"run_stage_us"`
	// QueueDepthMax/QueueDepthSamples come from scraping the daemon's
	// /metrics gauge during the run.
	QueueDepthMax     int64 `json:"queue_depth_max"`
	QueueDepthSamples int   `json:"queue_depth_samples"`
	// WindowsJobsPerSec is the per-second completion rate over the
	// submission window — the soak's throughput trajectory.
	WindowsJobsPerSec []float64 `json:"windows_jobs_per_sec"`
	// Baseline/AfterDrain are the pre-load and post-drain health
	// snapshots; LeakedGoroutines = AfterDrain - Baseline goroutines
	// (the leak gate wants 0 — the settle loop retries until the
	// timeout, so transient scheduler noise does not trip it).
	Baseline         Health `json:"baseline"`
	AfterDrain       Health `json:"after_drain"`
	LeakedGoroutines int    `json:"leaked_goroutines"`
	// Errors holds the first few transport-error strings for triage.
	Errors []string `json:"errors,omitempty"`
}

// runner is the shared state of one Run.
type runner struct {
	opt  Options
	ops  []Op
	reg  *telemetry.Registry
	cnt  Counts
	errs struct {
		sync.Mutex
		list []string
	}
	windows struct {
		sync.Mutex
		counts []int64
	}
	start     time.Time
	deadline  time.Time
	queueMax  atomic.Int64
	queueN    atomic.Int64
	ledgerOps atomic.Int64
	sse       sync.WaitGroup
}

func (r *runner) logf(format string, args ...any) {
	if r.opt.Logf != nil {
		r.opt.Logf(format, args...)
	}
}

func (r *runner) addErr(err error) {
	atomic.AddInt64(&r.cnt.TransportErrors, 1)
	r.errs.Lock()
	if len(r.errs.list) < 8 {
		r.errs.list = append(r.errs.list, err.Error())
	}
	r.errs.Unlock()
}

// Run drives the planned ops against a live daemon and measures the
// outcome. It returns an error only when the daemon is unreachable or
// the context dies; measured badness (failed jobs, leaks, slow p99s) is
// the gates' business, not Run's.
func Run(ctx context.Context, ops []Op, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	r := &runner{opt: opt, ops: ops, reg: telemetry.NewRegistry()}

	baseline, err := r.health(ctx)
	if err != nil {
		return nil, fmt.Errorf("daemon not reachable at %s: %w", opt.BaseURL, err)
	}
	r.start = time.Now()
	r.deadline = r.start.Add(opt.Duration)

	samplerStop := make(chan struct{})
	var samplerDone sync.WaitGroup
	samplerDone.Add(1)
	go func() { defer samplerDone.Done(); r.sampleQueueDepth(ctx, samplerStop) }()

	var next atomic.Int64
	var workers sync.WaitGroup
	for c := 0; c < opt.Clients; c++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(r.ops) || time.Now().After(r.deadline) || ctx.Err() != nil {
					return
				}
				r.executeOp(ctx, r.ops[i])
			}
		}()
	}
	workers.Wait()
	r.sse.Wait()
	close(samplerStop)
	samplerDone.Wait()
	elapsed := time.Since(r.start)

	opt.Client.CloseIdleConnections()
	after := r.settle(ctx, baseline)

	res := &Result{
		Elapsed:           elapsed,
		ElapsedSec:        elapsed.Seconds(),
		Counts:            r.cnt,
		JobLatencyMs:      r.reg.Histogram("load.job_latency_ms", nil).Summarize(),
		CancelLatencyMs:   r.reg.Histogram("load.cancel_latency_ms", nil).Summarize(),
		SubmitLatencyUs:   r.reg.Histogram("load.submit_latency_us", nil).Summarize(),
		LedgerOps:         r.ledgerOps.Load(),
		QueueWaitUs:       r.reg.Histogram("load.queue_wait_us", nil).Summarize(),
		RunStageUs:        r.reg.Histogram("load.run_stage_us", nil).Summarize(),
		QueueDepthMax:     r.queueMax.Load(),
		QueueDepthSamples: int(r.queueN.Load()),
		Baseline:          baseline,
		AfterDrain:        after,
		LeakedGoroutines:  after.Goroutines - baseline.Goroutines,
		Errors:            r.errs.list,
	}
	if res.LeakedGoroutines < 0 {
		res.LeakedGoroutines = 0
	}
	terminal := r.cnt.Done + r.cnt.Failed + r.cnt.Cancelled + r.cnt.CancelRequested + r.cnt.CancelRaces
	if s := elapsed.Seconds(); s > 0 {
		res.ThroughputJobsPerSec = float64(terminal) / s
	}
	r.windows.Lock()
	for _, n := range r.windows.counts {
		res.WindowsJobsPerSec = append(res.WindowsJobsPerSec, float64(n))
	}
	r.windows.Unlock()
	return res, nil
}

// executeOp runs one planned op to a terminal observation.
func (r *runner) executeOp(ctx context.Context, op Op) {
	id, ok := r.submit(ctx, op)
	if !ok {
		return
	}
	accepted := time.Now()
	if op.Subscribe {
		r.sse.Add(1)
		go func() {
			defer r.sse.Done()
			r.streamEvents(ctx, id, op.SlowReader)
		}()
	}
	octx, cancel := context.WithTimeout(ctx, r.opt.OpTimeout)
	defer cancel()
	if op.Cancel {
		r.cancelOp(octx, id, op)
		return
	}
	st := r.pollTerminal(octx, id)
	r.reg.Histogram("load.job_latency_ms", telemetry.ExpBuckets(1, 20)).
		Observe(uint64(time.Since(accepted).Milliseconds()))
	switch st {
	case "done":
		atomic.AddInt64(&r.cnt.Done, 1)
	case "cancelled": // daemon drain got it; count honestly
		atomic.AddInt64(&r.cnt.Cancelled, 1)
	default:
		atomic.AddInt64(&r.cnt.Failed, 1)
	}
	r.recordWindow()
}

// submit POSTs the op's spec, retrying 429 pushback until the window
// closes. The bool is false when the op never got accepted.
func (r *runner) submit(ctx context.Context, op Op) (string, bool) {
	body, err := json.Marshal(op.Spec)
	if err != nil {
		r.addErr(err)
		return "", false
	}
	for {
		if ctx.Err() != nil || time.Now().After(r.deadline) {
			atomic.AddInt64(&r.cnt.Abandoned, 1)
			return "", false
		}
		t0 := time.Now()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			r.opt.BaseURL+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			r.addErr(err)
			return "", false
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.opt.Client.Do(req)
		if err != nil {
			r.addErr(err)
			atomic.AddInt64(&r.cnt.Abandoned, 1)
			return "", false
		}
		var rb struct {
			ID    string `json:"id"`
			Error string `json:"error"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&rb)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			r.reg.Histogram("load.submit_latency_us", telemetry.ExpBuckets(1, 26)).
				Observe(uint64(time.Since(t0).Microseconds()))
			atomic.AddInt64(&r.cnt.Submitted, 1)
			return rb.ID, true
		case http.StatusTooManyRequests:
			atomic.AddInt64(&r.cnt.Rejected429, 1)
			atomic.AddInt64(&r.cnt.Retries, 1)
			select {
			case <-ctx.Done():
			case <-time.After(r.opt.RetryDelay):
			}
		case http.StatusServiceUnavailable: // draining
			atomic.AddInt64(&r.cnt.Abandoned, 1)
			return "", false
		default:
			if decErr != nil {
				rb.Error = decErr.Error()
			}
			r.addErr(fmt.Errorf("submit: status %d (%s)", resp.StatusCode, rb.Error))
			atomic.AddInt64(&r.cnt.Abandoned, 1)
			return "", false
		}
	}
}

// cancelOp waits the planned delay, DELETEs the job, and measures
// DELETE→terminal latency.
func (r *runner) cancelOp(ctx context.Context, id string, op Op) {
	select {
	case <-ctx.Done():
		return
	case <-time.After(time.Duration(op.CancelAfterMs) * time.Millisecond):
	}
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		r.opt.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		r.addErr(err)
		return
	}
	resp, err := r.opt.Client.Do(req)
	if err != nil {
		r.addErr(err)
		return
	}
	resp.Body.Close()
	st := r.pollTerminal(ctx, id)
	r.reg.Histogram("load.cancel_latency_ms", telemetry.ExpBuckets(1, 16)).
		Observe(uint64(time.Since(t0).Milliseconds()))
	if st == "cancelled" {
		atomic.AddInt64(&r.cnt.CancelRequested, 1)
	} else {
		atomic.AddInt64(&r.cnt.CancelRaces, 1)
	}
	r.recordWindow()
}

// pollTerminal polls the job until it reaches a terminal state, with a
// small exponential backoff so fast jobs resolve in one or two reads and
// slow ones don't get hammered. When the daemon runs with observability
// on, the terminal view carries the job's attribution ledger; it is
// recorded into the run's queue-wait / run-stage histograms.
func (r *runner) pollTerminal(ctx context.Context, id string) string {
	delay := 2 * time.Millisecond
	for {
		if ctx.Err() != nil {
			return ""
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			r.opt.BaseURL+"/v1/jobs/"+id, nil)
		if err != nil {
			r.addErr(err)
			return ""
		}
		resp, err := r.opt.Client.Do(req)
		if err != nil {
			r.addErr(err)
			return ""
		}
		var v struct {
			Status string      `json:"status"`
			Ledger *obs.Ledger `json:"ledger"`
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			r.addErr(err)
			return ""
		}
		switch v.Status {
		case "done", "failed", "cancelled":
			r.recordLedger(v.Ledger)
			return v.Status
		}
		select {
		case <-ctx.Done():
			return ""
		case <-time.After(delay):
		}
		if delay < 32*time.Millisecond {
			delay *= 2
		}
	}
}

// streamEvents consumes the job's SSE stream until the done event. A
// slow reader throttles between reads, forcing the daemon's flush path
// to absorb backpressure.
func (r *runner) streamEvents(ctx context.Context, id string, slow bool) {
	atomic.AddInt64(&r.cnt.SSEStreams, 1)
	if slow {
		atomic.AddInt64(&r.cnt.SSESlowStreams, 1)
	}
	sctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet,
		r.opt.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		r.addErr(err)
		return
	}
	resp, err := r.opt.Client.Do(req)
	if err != nil {
		r.addErr(err)
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "event: metrics" {
			atomic.AddInt64(&r.cnt.SSERows, 1)
		}
		if line == "event: done" {
			return
		}
		lines++
		if slow && lines%8 == 0 {
			select {
			case <-sctx.Done():
				return
			case <-time.After(r.opt.SlowReaderDelay):
			}
		}
	}
}

// recordLedger folds one terminal job's attribution ledger into the
// run's per-stage histograms. Nil (obs-off daemon) records nothing.
func (r *runner) recordLedger(l *obs.Ledger) {
	if l == nil {
		return
	}
	r.ledgerOps.Add(1)
	if row, ok := l.Row(obs.StageQueueWait); ok {
		r.reg.Histogram("load.queue_wait_us", telemetry.ExpBuckets(1, 26)).
			Observe(uint64(row.Ns / 1e3))
	}
	if row, ok := l.Row(obs.StageVMRun); ok {
		r.reg.Histogram("load.run_stage_us", telemetry.ExpBuckets(1, 26)).
			Observe(uint64(row.Ns / 1e3))
	}
}

// recordWindow bumps the current 1-second completion bucket.
func (r *runner) recordWindow() {
	idx := int(time.Since(r.start).Seconds())
	r.windows.Lock()
	for len(r.windows.counts) <= idx {
		r.windows.counts = append(r.windows.counts, 0)
	}
	r.windows.counts[idx]++
	r.windows.Unlock()
}

var queueDepthRe = regexp.MustCompile(`(?m)^queue_depth (-?\d+)$`)

// sampleQueueDepth scrapes the daemon's Prometheus gauge on a cadence.
func (r *runner) sampleQueueDepth(ctx context.Context, stop <-chan struct{}) {
	tick := time.NewTicker(r.opt.MetricsSampleInterval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opt.BaseURL+"/metrics", nil)
		if err != nil {
			continue
		}
		resp, err := r.opt.Client.Do(req)
		if err != nil {
			continue
		}
		buf := new(bytes.Buffer)
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if m := queueDepthRe.FindSubmatch(buf.Bytes()); m != nil {
			if d, err := strconv.ParseInt(string(m[1]), 10, 64); err == nil {
				r.queueN.Add(1)
				for {
					cur := r.queueMax.Load()
					if d <= cur || r.queueMax.CompareAndSwap(cur, d) {
						break
					}
				}
			}
		}
	}
}

// health reads the daemon's /healthz introspection document.
func (r *runner) health(ctx context.Context) (Health, error) {
	var h Health
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opt.BaseURL+"/healthz", nil)
	if err != nil {
		return h, err
	}
	resp, err := r.opt.Client.Do(req)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, err
	}
	return h, nil
}

// settle waits for the daemon to quiesce after the load stops: no
// queued/running jobs, no subscribers, and a goroutine count back at the
// pre-load baseline. It polls until SettleTimeout and returns the last
// snapshot — a genuine leak therefore shows up as AfterDrain.Goroutines
// above baseline no matter how long the settle waited. In self-hosted
// runs (daemon in this process) the GC nudge also makes the heap
// comparison meaningful.
func (r *runner) settle(ctx context.Context, baseline Health) Health {
	deadline := time.Now().Add(r.opt.SettleTimeout)
	var last Health
	for {
		runtime.GC()
		r.opt.Client.CloseIdleConnections()
		h, err := r.health(ctx)
		if err == nil {
			last = h
			if h.Queued == 0 && h.Running == 0 && h.Subscribers == 0 &&
				h.Goroutines <= baseline.Goroutines {
				return last
			}
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			r.logf("settle timeout: %+v (baseline %+v)", last, baseline)
			return last
		}
		select {
		case <-ctx.Done():
			return last
		case <-time.After(100 * time.Millisecond):
		}
	}
}
