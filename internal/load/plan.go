package load

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"

	"instrsample/internal/service"
)

// Op is one planned operation against the daemon: a job spec plus the
// client-side behaviours attached to it. Ops marshal to JSON so a plan
// can be diffed, hashed and replayed.
type Op struct {
	// Index is the op's position in the plan.
	Index int `json:"index"`
	// Spec is the POST /v1/jobs body.
	Spec service.JobSpec `json:"spec"`
	// ReuseOf is the index of the earlier op whose spec this op repeats
	// verbatim (the cache-hit share), or -1 for a fresh spec.
	ReuseOf int `json:"reuse_of"`
	// Cancel marks a mid-flight cancellation op: the spec is a
	// long-running program, DELETEd CancelAfterMs after acceptance.
	Cancel        bool `json:"cancel,omitempty"`
	CancelAfterMs int  `json:"cancel_after_ms,omitempty"`
	// Subscribe attaches an SSE /events reader to the job; SlowReader
	// makes that reader throttle itself to exercise backpressure.
	Subscribe  bool `json:"subscribe,omitempty"`
	SlowReader bool `json:"slow_reader,omitempty"`
}

// Plan expands the mix into its deterministic op sequence. It is a pure
// function of the Mix: the PRNG is seeded from Mix.Seed and consulted in
// a fixed per-op order, so identical seed+mix yields an identical
// sequence (PlanHash exposes the digest two runs can compare).
func Plan(m Mix) ([]Op, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(m.Seed))
	ops := make([]Op, 0, m.Ops)
	var reusable []int // indices of fresh, non-cancel ops eligible for reuse
	for i := 0; i < m.Ops; i++ {
		op := Op{Index: i, ReuseOf: -1}
		// Decision order is fixed; every branch consumes the same RNG
		// stream positions regardless of outcome where it matters for
		// cross-field independence (each field draws lazily, which is
		// fine — determinism needs a fixed order, not a fixed count).
		switch {
		case m.CancelPct > 0 && rng.Float64() < m.CancelPct:
			op.Cancel = true
			op.CancelAfterMs = m.CancelAfterMsMin
			if span := m.CancelAfterMsMax - m.CancelAfterMsMin; span > 0 {
				op.CancelAfterMs += rng.Intn(span + 1)
			}
			// A long-running program so the DELETE lands mid-run. The op
			// index is baked into the (unreachable) iteration bound so
			// every cancel op is a distinct cell — cancel ops must never
			// share a memo flight, or one DELETE would resolve several.
			op.Spec = service.JobSpec{Source: longRunningSource(i)}
		case m.ReusePct > 0 && len(reusable) > 0 && rng.Float64() < m.ReusePct:
			src := reusable[rng.Intn(len(reusable))]
			op.Spec = ops[src].Spec
			op.ReuseOf = src
		default:
			op.Spec = freshSpec(m, rng)
			reusable = append(reusable, i)
		}
		if m.SubscribePct > 0 && rng.Float64() < m.SubscribePct {
			op.Subscribe = true
			op.SlowReader = m.SlowReaderPct > 0 && rng.Float64() < m.SlowReaderPct
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// freshSpec draws one new job spec from the mix.
func freshSpec(m Mix, rng *rand.Rand) service.JobSpec {
	spec := service.JobSpec{
		Bench:    pick(m.Benches, rng),
		Scale:    quantize(m.ScaleMin + rng.Float64()*(m.ScaleMax-m.ScaleMin)),
		Interval: m.Intervals[rng.Intn(len(m.Intervals))],
	}
	spec.Variation = pick(m.Variations, rng)
	spec.Trigger = pick(m.Triggers, rng)

	wantOverlap := m.OverlapPct > 0 && rng.Float64() < m.OverlapPct
	n := rng.Intn(3) // 0–2 instrumentations
	if wantOverlap && n == 0 {
		n = 1 // overlap requires at least one profile to compare
	}
	spec.Instrument = pickDistinct(m.Instruments, n, rng)
	if len(spec.Instrument) > 0 {
		spec.Overlap = wantOverlap
	}
	if spec.Variation != "" && m.VerifyPct > 0 && rng.Float64() < m.VerifyPct {
		spec.Verify = true
	}
	return spec
}

// quantize rounds a drawn scale to 4 decimals so plans render compactly
// and reuse keys stay stable across JSON round trips.
func quantize(v float64) float64 { return float64(int(v*1e4)) / 1e4 }

// pick draws one weighted alternative.
func pick(cs []Choice, rng *rand.Rand) string {
	total := totalWeight(cs)
	n := rng.Intn(total)
	for _, c := range cs {
		if c.Weight <= 0 {
			continue
		}
		if n < c.Weight {
			return c.Name
		}
		n -= c.Weight
	}
	return cs[len(cs)-1].Name // unreachable given Validate
}

// pickDistinct draws up to n distinct weighted alternatives, in draw
// order.
func pickDistinct(cs []Choice, n int, rng *rand.Rand) []string {
	if n == 0 || totalWeight(cs) <= 0 {
		return nil
	}
	var out []string
	seen := make(map[string]bool, n)
	for attempts := 0; len(out) < n && attempts < 8*n; attempts++ {
		name := pick(cs, rng)
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

// longRunningSource is a program that runs effectively forever (2^61
// iterations plus the op index, so each cancel op is its own cell) and
// reaches an observation point every iteration — the yieldpoint on the
// loop backedge — which is what makes its cancel latency a measurement
// of the daemon's cancellation path, not of the program.
func longRunningSource(index int) string {
	return fmt.Sprintf(`func main() {
entry:
  const i, 0
  const n, %d
  const one, 1
loop:
  cmplt c, i, n
  br c, body, done
body:
  add i, i, one
  jmp loop
done:
  ret i
}
`, int64(1)<<61+int64(index))
}

// PlanHash is the SHA-256 of the plan's JSON rendering — the determinism
// receipt recorded in every report: two soaks with the same seed+mix
// must record the same hash.
func PlanHash(ops []Op) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for i := range ops {
		enc.Encode(&ops[i]) //nolint:errcheck // sha256.Write cannot fail
	}
	return hex.EncodeToString(h.Sum(nil))
}
