package load

import "fmt"

// Gates are the machine-checked floors and ceilings a soak must respect.
// Zero-valued bounds disable the corresponding gate, except the
// always-on exact gates (failed jobs, leaked goroutines), whose bound is
// genuinely zero.
type Gates struct {
	// MinThroughputJobsPerSec floors the terminal-ops-per-second rate.
	MinThroughputJobsPerSec float64 `json:"min_throughput_jobs_per_sec"`
	// MaxP99Ms ceilings the accepted→terminal p99 of non-cancel ops.
	MaxP99Ms uint64 `json:"max_p99_ms"`
	// MaxCancelP99Ms ceilings the DELETE→terminal p99 of cancel ops —
	// the wall-clock proxy for "a cancel lands within one observation
	// interval": the VM-side stop is bounded by the next observation
	// point, so everything above HTTP+poll overhead is regression.
	MaxCancelP99Ms uint64 `json:"max_cancel_p99_ms"`
	// MaxLeakedGoroutines bounds AfterDrain-minus-baseline goroutines
	// (0 = the zero-leak gate, still enforced).
	MaxLeakedGoroutines int `json:"max_leaked_goroutines"`
	// MaxQueueWaitP99Ms ceilings the p99 of the queue-wait stage as the
	// daemon's own attribution ledgers measured it (server-side wall
	// clock, not harness polling). The gate only engages when the run
	// observed ledgers (LedgerOps > 0) — an obs-off daemon reports none,
	// and the gate must not pass vacuously against a misconfigured soak,
	// so isampload self-hosted runs enable obs.
	MaxQueueWaitP99Ms uint64 `json:"max_queue_wait_p99_ms"`
	// MaxFailedJobs bounds jobs that resolved failed (0 = none allowed,
	// still enforced). The soak submits no timeout jobs, so any failure
	// is a real regression in the compile/run/queue path.
	MaxFailedJobs int64 `json:"max_failed_jobs"`
	// MinSubmitted floors the number of accepted ops, so a soak that
	// silently submitted almost nothing cannot pass its other gates
	// vacuously.
	MinSubmitted int64 `json:"min_submitted"`
}

// DefaultGates are deliberately conservative bounds for shared CI hosts;
// `make soak` tightens throughput via flags when run on a known machine.
func DefaultGates() Gates {
	return Gates{
		MinThroughputJobsPerSec: 5,
		MaxP99Ms:                2000,
		MaxCancelP99Ms:          1000,
		MaxQueueWaitP99Ms:       1500,
		MaxLeakedGoroutines:     0,
		MaxFailedJobs:           0,
		MinSubmitted:            20,
	}
}

// GateResult is one gate's verdict.
type GateResult struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Bound float64 `json:"bound"`
	// Op is the comparison that must hold: "value >= bound" or
	// "value <= bound".
	Op string `json:"op"`
	OK bool   `json:"ok"`
}

func gateMin(name string, value, bound float64) GateResult {
	return GateResult{Name: name, Value: value, Bound: bound, Op: ">=", OK: value >= bound}
}

func gateMax(name string, value, bound float64) GateResult {
	return GateResult{Name: name, Value: value, Bound: bound, Op: "<=", OK: value <= bound}
}

// Check evaluates every enabled gate against the run's measurements.
func (g Gates) Check(r *Result) []GateResult {
	var out []GateResult
	if g.MinSubmitted > 0 {
		out = append(out, gateMin("submitted", float64(r.Counts.Submitted), float64(g.MinSubmitted)))
	}
	if g.MinThroughputJobsPerSec > 0 {
		out = append(out, gateMin("throughput_jobs_per_sec", r.ThroughputJobsPerSec, g.MinThroughputJobsPerSec))
	}
	if g.MaxP99Ms > 0 {
		out = append(out, gateMax("job_latency_p99_ms", float64(r.JobLatencyMs.P99), float64(g.MaxP99Ms)))
	}
	if g.MaxCancelP99Ms > 0 && r.CancelLatencyMs.Count > 0 {
		out = append(out, gateMax("cancel_latency_p99_ms", float64(r.CancelLatencyMs.P99), float64(g.MaxCancelP99Ms)))
	}
	if g.MaxQueueWaitP99Ms > 0 && r.LedgerOps > 0 {
		out = append(out, gateMax("queue_wait_p99_ms", float64(r.QueueWaitUs.P99)/1e3, float64(g.MaxQueueWaitP99Ms)))
	}
	out = append(out,
		gateMax("failed_jobs", float64(r.Counts.Failed), float64(g.MaxFailedJobs)),
		gateMax("leaked_goroutines", float64(r.LeakedGoroutines), float64(g.MaxLeakedGoroutines)),
		gateMax("transport_errors", float64(r.Counts.TransportErrors), 0),
	)
	return out
}

// AllOK reports whether every gate held.
func AllOK(gates []GateResult) bool {
	for _, g := range gates {
		if !g.OK {
			return false
		}
	}
	return true
}

// Describe renders the gate list as one budget string for reports and
// logs.
func Describe(gates []GateResult) string {
	s := ""
	for i, g := range gates {
		if i > 0 {
			s += "; "
		}
		mark := "ok"
		if !g.OK {
			mark = "VIOLATED"
		}
		s += fmt.Sprintf("%s %s %g (got %g, %s)", g.Name, g.Op, g.Bound, g.Value, mark)
	}
	return s
}
