// Package load is the sustained load-test and soak harness for the
// isampd daemon (cmd/isampd): it turns a serializable traffic-mix
// specification (Mix) into a deterministic, seeded sequence of job
// operations (Plan), drives a live daemon with that sequence from a pool
// of concurrent HTTP clients (Run) — realistic mixed traffic: suite
// benchmarks across sizes and framework variations, repeated specs that
// exercise the memo/cache path, mid-flight cancellations, SSE
// subscribers including deliberately slow readers, and 429-retry
// backoff — and checks the measured outcome against machine-verified
// regression gates (Gates), emitting a BENCH_*.json report (Report) so
// the repository's performance trajectory is generated artifact, not
// hand transcription.
//
// Determinism contract: Plan is a pure function of the Mix (seed
// included) — an identical seed+mix yields an identical job-spec
// sequence, byte for byte (the report records the plan's SHA-256 so two
// runs can prove they replayed the same traffic). Wall-clock execution
// of the plan is of course timing-dependent; everything the gates assert
// is either a rate, a quantile, or an exact invariant (zero leaked
// goroutines, zero failed jobs) that must hold at any interleaving.
//
// See DESIGN.md §11 for the architecture, BENCHMARKING.md for the gate
// definitions and how reports are read, and cmd/isampload for the CLI.
package load

import (
	"encoding/json"
	"fmt"
	"io"
)

// Choice is one weighted alternative in a Mix. A weight of 0 disables
// the alternative; weights need not sum to anything in particular.
type Choice struct {
	Name   string `json:"name"`
	Weight int    `json:"weight"`
}

// Mix is the serializable traffic-mix specification: everything the
// planner needs to regenerate a soak's job sequence. Probabilities are
// in [0, 1] and applied per operation in a fixed order, so the spec is
// portable — the same JSON replays the same traffic anywhere (the
// "portable program snippets" idea applied to load profiles).
type Mix struct {
	// Seed seeds the planner's PRNG. Same seed + same mix = same plan.
	Seed int64 `json:"seed"`
	// Ops is the plan length — the number of job operations generated.
	// The runner stops early when its duration budget expires.
	Ops int `json:"ops"`

	// Benches are the weighted suite benchmarks fresh jobs draw from.
	Benches []Choice `json:"benches"`
	// ScaleMin/ScaleMax bound the uniformly drawn benchmark scale.
	ScaleMin float64 `json:"scale_min"`
	ScaleMax float64 `json:"scale_max"`
	// Variations are the weighted framework variations ("" = none).
	Variations []Choice `json:"variations"`
	// Triggers are the weighted trigger kinds.
	Triggers []Choice `json:"triggers"`
	// Intervals are the candidate sample intervals (uniform choice).
	Intervals []int64 `json:"intervals"`
	// Instruments are the weighted instrumentations; each fresh job
	// draws 0–2 distinct ones (at least 1 when overlap is rolled).
	Instruments []Choice `json:"instruments"`

	// VerifyPct attaches the runtime invariant oracle to this fraction
	// of framework jobs, so the soak doubles as a correctness probe.
	VerifyPct float64 `json:"verify_pct"`
	// OverlapPct makes this fraction of instrumented jobs also run the
	// exhaustive reference and report profile-overlap accuracy.
	OverlapPct float64 `json:"overlap_pct"`
	// ReusePct resubmits an earlier op's spec verbatim — the cache-hit /
	// memo-dedup share of the traffic.
	ReusePct float64 `json:"reuse_pct"`
	// CancelPct turns the op into a long-running job that is cancelled
	// mid-flight (DELETE) after CancelAfterMsMin..Max milliseconds.
	CancelPct        float64 `json:"cancel_pct"`
	CancelAfterMsMin int     `json:"cancel_after_ms_min"`
	CancelAfterMsMax int     `json:"cancel_after_ms_max"`
	// SubscribePct attaches an SSE /events subscriber to the op's job;
	// SlowReaderPct of those subscribers read deliberately slowly to
	// exercise server-side flush backpressure.
	SubscribePct  float64 `json:"subscribe_pct"`
	SlowReaderPct float64 `json:"slow_reader_pct"`
}

// DefaultMix is the realistic mixed-traffic profile `make soak` runs:
// every suite benchmark, all four variations plus uninstrumented
// baselines, the full trigger family, a healthy cache-hit share,
// mid-flight cancellations and slow SSE readers.
func DefaultMix(seed int64, ops int) Mix {
	return Mix{
		Seed: seed,
		Ops:  ops,
		Benches: []Choice{
			{"compress", 3}, {"jess", 3}, {"db", 4}, {"javac", 3},
			{"mpegaudio", 2}, {"mtrt", 2}, {"jack", 2}, {"optc", 2},
			{"pbob", 1}, {"volano", 1}, {"resonant", 1},
		},
		ScaleMin: 0.01,
		ScaleMax: 0.05,
		Variations: []Choice{
			{"", 2}, {"full", 4}, {"partial", 2}, {"nodup", 2}, {"hybrid", 2},
		},
		Triggers: []Choice{
			{"counter", 5}, {"perthread", 2}, {"timer", 2}, {"random", 2},
		},
		Intervals: []int64{200, 1000, 5000},
		Instruments: []Choice{
			{"call-edge", 4}, {"field-access", 4}, {"edge", 2},
			{"block-count", 2}, {"path", 1}, {"value", 1},
		},
		VerifyPct:        0.15,
		OverlapPct:       0.05,
		ReusePct:         0.25,
		CancelPct:        0.10,
		CancelAfterMsMin: 5,
		CancelAfterMsMax: 40,
		SubscribePct:     0.25,
		SlowReaderPct:    0.20,
	}
}

// Validate rejects mixes the planner cannot satisfy.
func (m Mix) Validate() error {
	switch {
	case m.Ops < 1:
		return fmt.Errorf("ops must be at least 1")
	case totalWeight(m.Benches) <= 0:
		return fmt.Errorf("benches need at least one positive weight")
	case totalWeight(m.Variations) <= 0:
		return fmt.Errorf("variations need at least one positive weight")
	case totalWeight(m.Triggers) <= 0:
		return fmt.Errorf("triggers need at least one positive weight")
	case len(m.Intervals) == 0:
		return fmt.Errorf("intervals must be non-empty")
	case m.ScaleMin <= 0 || m.ScaleMax < m.ScaleMin:
		return fmt.Errorf("scale range [%g, %g] invalid", m.ScaleMin, m.ScaleMax)
	case m.CancelPct > 0 && (m.CancelAfterMsMin < 0 || m.CancelAfterMsMax < m.CancelAfterMsMin):
		return fmt.Errorf("cancel_after_ms range [%d, %d] invalid", m.CancelAfterMsMin, m.CancelAfterMsMax)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"verify_pct", m.VerifyPct}, {"overlap_pct", m.OverlapPct},
		{"reuse_pct", m.ReusePct}, {"cancel_pct", m.CancelPct},
		{"subscribe_pct", m.SubscribePct}, {"slow_reader_pct", m.SlowReaderPct},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("%s %g out of [0, 1]", p.name, p.v)
		}
	}
	if m.OverlapPct > 0 && totalWeight(m.Instruments) <= 0 {
		return fmt.Errorf("overlap_pct > 0 needs at least one instrument weight")
	}
	return nil
}

func totalWeight(cs []Choice) int {
	t := 0
	for _, c := range cs {
		if c.Weight > 0 {
			t += c.Weight
		}
	}
	return t
}

// ReadMix decodes a Mix from JSON, rejecting unknown fields so a typo in
// a mix file fails loudly instead of silently changing the traffic.
func ReadMix(r io.Reader) (Mix, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var m Mix
	if err := dec.Decode(&m); err != nil {
		return Mix{}, fmt.Errorf("mix: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Mix{}, fmt.Errorf("mix: %w", err)
	}
	return m, nil
}
