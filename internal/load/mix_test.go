package load

import (
	"strings"
	"testing"
)

// TestMixValidateBranches hits every individual rejection branch of
// Mix.Validate, one mutation at a time (the older TestMixValidateAndRead
// spot-checks a few; this pins all of them with their messages).
func TestMixValidateBranches(t *testing.T) {
	good := DefaultMix(1, 10)
	cases := []struct {
		name string
		mut  func(*Mix)
		want string
	}{
		{"zero ops", func(m *Mix) { m.Ops = 0 }, "ops"},
		{"negative ops", func(m *Mix) { m.Ops = -4 }, "ops"},
		{"no benches", func(m *Mix) { m.Benches = nil }, "benches"},
		{"all-zero bench weights", func(m *Mix) {
			m.Benches = []Choice{{"compress", 0}, {"db", 0}}
		}, "benches"},
		{"negative-only bench weights", func(m *Mix) {
			m.Benches = []Choice{{"compress", -5}}
		}, "benches"},
		{"no variations", func(m *Mix) { m.Variations = nil }, "variations"},
		{"no triggers", func(m *Mix) { m.Triggers = nil }, "triggers"},
		{"no intervals", func(m *Mix) { m.Intervals = nil }, "intervals"},
		{"zero scale min", func(m *Mix) { m.ScaleMin = 0 }, "scale"},
		{"inverted scale range", func(m *Mix) { m.ScaleMin, m.ScaleMax = 0.5, 0.1 }, "scale"},
		{"verify_pct high", func(m *Mix) { m.VerifyPct = 1.01 }, "verify_pct"},
		{"verify_pct negative", func(m *Mix) { m.VerifyPct = -0.1 }, "verify_pct"},
		{"overlap_pct high", func(m *Mix) { m.OverlapPct = 2 }, "overlap_pct"},
		{"reuse_pct high", func(m *Mix) { m.ReusePct = 1.5 }, "reuse_pct"},
		{"cancel_pct high", func(m *Mix) { m.CancelPct = 99 }, "cancel_pct"},
		{"subscribe_pct negative", func(m *Mix) { m.SubscribePct = -1 }, "subscribe_pct"},
		{"slow_reader_pct high", func(m *Mix) { m.SlowReaderPct = 1.2 }, "slow_reader_pct"},
		{"negative cancel min", func(m *Mix) { m.CancelAfterMsMin = -1 }, "cancel_after_ms"},
		{"inverted cancel range", func(m *Mix) {
			m.CancelAfterMsMin, m.CancelAfterMsMax = 50, 10
		}, "cancel_after_ms"},
		{"overlap without instruments", func(m *Mix) {
			m.Instruments = nil
			m.OverlapPct = 0.5
		}, "instrument"},
	}
	for _, tc := range cases {
		m := good
		tc.mut(&m)
		err := m.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// Boundary acceptances: pcts of exactly 0 and 1 are legal, and a
	// cancel range is only checked when cancellations can occur.
	edge := good
	edge.VerifyPct, edge.OverlapPct, edge.ReusePct = 1, 0, 1
	edge.CancelPct = 0
	edge.CancelAfterMsMin, edge.CancelAfterMsMax = 0, 0
	if err := edge.Validate(); err != nil {
		t.Errorf("boundary mix rejected: %v", err)
	}
}

// TestReadMixHostileJSON feeds the mix reader adversarial inputs: every
// one must fail loudly rather than plan surprise traffic.
func TestReadMixHostileJSON(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"empty", ``},
		{"not json", `soak hard`},
		{"truncated", `{"seed": 1, "ops": 10`},
		{"array", `[1, 2, 3]`},
		{"scalar", `42`},
		{"null", `null`}, // decodes to zero Mix, which Validate rejects
		{"unknown top-level field", `{"seed":1,"ops":5,"turbo":true}`},
		{"unknown nested field", `{"seed":1,"ops":5,"benches":[{"name":"db","weight":1,"wight":2}]}`},
		{"type confusion ops", `{"seed":1,"ops":"many"}`},
		{"type confusion weights", `{"seed":1,"ops":5,"benches":[{"name":"db","weight":"heavy"}]}`},
		{"valid json invalid mix", `{"seed":1,"ops":5}`},
		{"pct out of range", `{"seed":1,"ops":5,"benches":[{"name":"db","weight":1}],
			"variations":[{"name":"","weight":1}],"triggers":[{"name":"counter","weight":1}],
			"intervals":[100],"scale_min":0.01,"scale_max":0.02,"reuse_pct":7}`},
	}
	for _, tc := range cases {
		if _, err := ReadMix(strings.NewReader(tc.body)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestReadMixMinimalValid pins the smallest accepted spec, so the
// validator cannot silently grow new mandatory fields without a test
// noticing.
func TestReadMixMinimalValid(t *testing.T) {
	minimal := `{
		"seed": 7, "ops": 3,
		"benches": [{"name": "db", "weight": 1}],
		"variations": [{"name": "", "weight": 1}],
		"triggers": [{"name": "counter", "weight": 1}],
		"intervals": [500],
		"scale_min": 0.01, "scale_max": 0.02
	}`
	m, err := ReadMix(strings.NewReader(minimal))
	if err != nil {
		t.Fatalf("minimal mix rejected: %v", err)
	}
	if m.Seed != 7 || m.Ops != 3 || len(m.Benches) != 1 {
		t.Fatalf("minimal mix mangled: %+v", m)
	}
	// And its plan must be valid traffic end to end.
	ops, err := Plan(m)
	if err != nil {
		t.Fatalf("minimal plan: %v", err)
	}
	if len(ops) != m.Ops {
		t.Fatalf("plan produced %d ops, want %d", len(ops), m.Ops)
	}
	for i, op := range ops {
		if err := op.Spec.Valid(); err != nil {
			t.Fatalf("op %d spec invalid: %v", i, err)
		}
	}
}

func TestTotalWeightIgnoresNegatives(t *testing.T) {
	if got := totalWeight([]Choice{{"a", 3}, {"b", -2}, {"c", 0}}); got != 3 {
		t.Fatalf("totalWeight = %d, want 3 (negatives and zeros ignored)", got)
	}
}
