package bench

import (
	"testing"

	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/instr"
	"instrsample/internal/profile"
	"instrsample/internal/trigger"
)

// TestResonantExhibitsResonance pins the property the workload exists
// for: exactly two checks execute per outer iteration, so an even sample
// interval under Full-Duplication never samples the main loop's path,
// while a co-prime interval covers everything.
func TestResonantExhibitsResonance(t *testing.T) {
	prog := Resonant(0.2)
	base, _ := run(t, prog, compile.Options{}, nil)
	// Two checks per iteration: entries + backedges = 2 * iterations + O(1).
	perIter := float64(base.Stats.MethodEntries+base.Stats.Backedges) /
		float64(base.Stats.Backedges)
	if perIter < 1.9 || perIter > 2.1 {
		t.Fatalf("check stream period %.2f, want ~2", perIter)
	}

	paths := func() []instr.Instrumenter { return []instr.Instrumenter{&instr.PathProfile{}} }
	_, perfect := run(t, prog, compile.Options{Instrumenters: paths()}, nil)
	pp := perfect.Runtimes[0].Profile()

	sample := func(interval int64) float64 {
		_, res := run(t, prog, compile.Options{
			Instrumenters: paths(),
			Framework:     &core.Options{Variation: core.FullDuplication},
		}, trigger.NewCounter(interval))
		return profile.Overlap(pp, res.Runtimes[0].Profile())
	}
	even := sample(200)
	odd := sample(199)
	t.Logf("path overlap: interval 200 = %.1f%%, interval 199 = %.1f%%", even, odd)
	if even > 70 {
		t.Errorf("even interval should resonate badly, got %.1f%%", even)
	}
	if odd < 90 {
		t.Errorf("co-prime interval should be accurate, got %.1f%%", odd)
	}
}

// TestResonantSemanticsPreserved includes the resonant workload in the
// semantics-preservation net.
func TestResonantSemanticsPreserved(t *testing.T) {
	prog := Resonant(0.05)
	base, _ := run(t, prog, compile.Options{}, nil)
	out, _ := run(t, prog, compile.Options{
		Instrumenters: paperInstr(),
		Framework:     &core.Options{Variation: core.FullDuplication},
	}, trigger.NewCounter(23))
	if out.Return != base.Return {
		t.Fatalf("sampling changed result: %d vs %d", out.Return, base.Return)
	}
}
