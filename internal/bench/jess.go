package bench

import "instrsample/internal/ir"

// Jess models _202_jess: an expert-system shell whose execution is
// dominated by rule matching — huge numbers of small method invocations
// testing facts against rule conditions. Call-edge instrumentation is at
// its most expensive here (133% in Table 1); field access is moderate.
func Jess(scale float64) *ir.Program {
	p := &ir.Program{Name: "jess"}

	fact := &ir.Class{Name: "Fact", FieldNames: []string{"slotA", "slotB", "slotC"}}
	p.Classes = append(p.Classes, fact)

	// Small matcher methods, each a separate callee so the call-edge
	// profile has many distinct edges.
	// mixHash appends a short test-pattern hash of x against v — the
	// stand-in for Rete-node pattern evaluation inside each matcher.
	mixHash := func(c *ir.Cursor, x, v ir.Reg) ir.Reg {
		p31 := c.Const(31)
		h1 := c.Bin(ir.OpMul, x, p31)
		s5 := c.Const(5)
		h2 := c.Bin(ir.OpShr, h1, s5)
		h3 := c.Bin(ir.OpXor, h1, h2)
		h4 := c.Bin(ir.OpAdd, h3, v)
		s3 := c.Const(3)
		h5 := c.Bin(ir.OpShl, h4, s3)
		return c.Bin(ir.OpXor, h4, h5)
	}
	// matchEQ(self, v) { return hash(self.slotA) matches v }
	matchEQ := ir.NewMethod(fact, "matchEQ", 2)
	{
		c := matchEQ.At(matchEQ.EntryBlock())
		a := c.GetField(0, fact, "slotA")
		h := mixHash(c, a, 1)
		h = emitMix(c, h, 16)
		three := c.Const(3)
		c.Return(c.Bin(ir.OpCmpEQ, c.Bin(ir.OpAnd, h, three), c.Bin(ir.OpAnd, a, three)))
	}
	// matchGT(self, v) { return hash(self.slotB) > hash(v) }
	matchGT := ir.NewMethod(fact, "matchGT", 2)
	{
		c := matchGT.At(matchGT.EntryBlock())
		b := c.GetField(0, fact, "slotB")
		h := mixHash(c, b, 1)
		h = emitMix(c, h, 16)
		c.Return(c.Bin(ir.OpCmpGT, c.Bin(ir.OpAnd, h, c.Const(7)), b))
	}
	// matchSum(self, v) { pattern over slotA+slotC }
	matchSum := ir.NewMethod(fact, "matchSum", 2)
	{
		c := matchSum.At(matchSum.EntryBlock())
		a := c.GetField(0, fact, "slotA")
		cc := c.GetField(0, fact, "slotC")
		s := c.Bin(ir.OpAdd, a, cc)
		h := mixHash(c, s, 1)
		h = emitMix(c, h, 16)
		one := c.Const(1)
		c.Return(c.Bin(ir.OpCmpEQ, c.Bin(ir.OpAnd, h, one), c.Bin(ir.OpAnd, 1, one)))
	}
	// fire(self) { self.slotC++ ; return self.slotC }
	fire := ir.NewMethod(fact, "fire", 1)
	{
		c := fire.At(fire.EntryBlock())
		v := c.GetField(0, fact, "slotC")
		one := c.Const(1)
		nv := c.Bin(ir.OpAdd, v, one)
		c.PutField(0, fact, "slotC", nv)
		c.Return(emitMix(c, nv, 10))
	}

	// rule1(f, v): two-condition rule.
	rule1 := ir.NewFunc("rule1", 2)
	{
		c := rule1.At(rule1.EntryBlock())
		m1 := c.CallVirt("matchEQ", 0, 1)
		thenB := rule1.Block("then")
		elseB := rule1.Block("else")
		c.Branch(m1, thenB, elseB)
		tc := rule1.At(thenB)
		m2 := tc.CallVirt("matchGT", 0, 1)
		fireB := rule1.Block("fire")
		tc.Branch(m2, fireB, elseB)
		fc := rule1.At(fireB)
		r := fc.CallVirt("fire", 0)
		fc.Return(r)
		ec := rule1.At(elseB)
		ec.Return(ec.Const(0))
	}
	// rule2(f, v): one-condition rule with a different matcher.
	rule2 := ir.NewFunc("rule2", 2)
	{
		c := rule2.At(rule2.EntryBlock())
		m1 := c.CallVirt("matchSum", 0, 1)
		thenB := rule2.Block("then")
		elseB := rule2.Block("else")
		c.Branch(m1, thenB, elseB)
		tc := rule2.At(thenB)
		r := tc.CallVirt("fire", 0)
		tc.Return(r)
		ec := rule2.At(elseB)
		ec.Return(ec.Const(0))
	}
	p.Funcs = append(p.Funcs, rule1.M, rule2.M)

	main := ir.NewFunc("main", 0)
	{
		c := main.At(main.EntryBlock())
		nFacts := c.Const(64)
		facts := c.NewArray(nFacts)
		initLp := c.CountedLoop(nFacts, "init")
		ib := initLp.Body
		f := ib.New(fact)
		three := ib.Const(3)
		ib.PutField(f, fact, "slotA", ib.Bin(ir.OpRem, initLp.I, three))
		five := ib.Const(5)
		ib.PutField(f, fact, "slotB", ib.Bin(ir.OpRem, initLp.I, five))
		ib.AStore(facts, initLp.I, f)
		ib.Jump(initLp.Latch)

		a := initLp.After
		acc := a.Const(0)
		rounds := a.Const(sc(3000, scale))
		outer := a.CountedLoop(rounds, "round")
		ob := outer.Body
		inner := ob.CountedLoop(nFacts, "fact")
		fb := inner.Body
		fobj := fb.ALoad(facts, inner.I)
		r1 := fb.Call(rule1.M, fobj, outer.I)
		r2 := fb.Call(rule2.M, fobj, inner.I)
		fb.BinTo(ir.OpAdd, acc, acc, r1)
		fb.BinTo(ir.OpAdd, acc, acc, r2)
		fb.Jump(inner.Latch)
		inner.After.Jump(outer.Latch)

		fin := outer.After
		fin.Print(acc)
		fin.Return(acc)
	}
	p.Funcs = append(p.Funcs, main.M)
	p.Main = main.M
	p.Seal()
	return p
}
