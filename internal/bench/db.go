package bench

import "instrsample/internal/ir"

// DB models _209_db: an in-memory database doing index lookups and record
// scans. Work is dominated by array accesses and comparisons — calls
// (one lookup helper per query) and field accesses (a couple of
// bookkeeping updates per query) are both rare relative to total work,
// which is why db shows the lowest instrumentation overheads in Table 1
// (8.3% / 7.7%).
func DB(scale float64) *ir.Program {
	p := &ir.Program{Name: "db"}

	table := &ir.Class{Name: "Table", FieldNames: []string{"hits", "misses", "scanned"}}
	p.Classes = append(p.Classes, table)

	fill := buildFillArray(p)

	// lookup(idx, data, key, tbl): binary search the sorted index (each
	// probe hashes the candidate key, as real record comparison would),
	// then scan a 32-record run four records at a time, updating the
	// table's bookkeeping fields. Iteration bodies are deliberately
	// heavy — db's work per backedge is large, which is why it shows the
	// suite's lowest check overheads.
	lookup := ir.NewFunc("lookup", 4)
	{
		c := lookup.At(lookup.EntryBlock())
		lo := c.Const(0)
		hi := c.Un(ir.OpArrayLen, 0)
		mix := c.Const(0)
		head := lookup.Block("head")
		body := lookup.Block("body")
		left := lookup.Block("left")
		right := lookup.Block("right")
		scan := lookup.Block("scan")
		hc := c.Jump(head)
		cond := hc.Bin(ir.OpCmpLT, lo, hi)
		hc.Branch(cond, body, scan)
		bc := lookup.At(body)
		sum := bc.Bin(ir.OpAdd, lo, hi)
		two := bc.Const(2)
		mid := bc.Bin(ir.OpDiv, sum, two)
		v := bc.ALoad(0, mid)
		// Simulated record-key comparison: hash the candidate.
		p31 := bc.Const(31)
		h1 := bc.Bin(ir.OpMul, v, p31)
		sh3 := bc.Const(3)
		h2 := bc.Bin(ir.OpShr, h1, sh3)
		h3 := bc.Bin(ir.OpXor, h1, h2)
		h4 := bc.Bin(ir.OpAdd, h3, mid)
		bc.BinTo(ir.OpXor, mix, mix, h4)
		lt := bc.Bin(ir.OpCmpLT, v, 2)
		bc.Branch(lt, right, left)
		rc := lookup.At(right)
		one := rc.Const(1)
		rc.BinTo(ir.OpAdd, lo, mid, one)
		rc.Jump(head)
		lc := lookup.At(left)
		lc.Move(hi, mid)
		lc.Jump(head)

		// Scan a 32-record run from the insertion point (clamped), four
		// records per iteration.
		sc4 := lookup.At(scan)
		n := sc4.Un(ir.OpArrayLen, 1)
		run := sc4.Const(32)
		maxLo := sc4.Bin(ir.OpSub, n, run)
		over := sc4.Bin(ir.OpCmpGT, lo, maxLo)
		clampB := lookup.Block("clamp")
		loopB := lookup.Block("loopStart")
		sc4.Branch(over, clampB, loopB)
		cb := lookup.At(clampB)
		cb.Move(lo, maxLo)
		cb.Jump(loopB)
		sb := lookup.At(loopB)
		acc := sb.Fresh()
		sb.Move(acc, mix)
		eight := sb.Const(8)
		slp := sb.CountedLoop(eight, "scan4")
		sbc := slp.Body
		four := sbc.Const(4)
		j0 := sbc.Bin(ir.OpAdd, lo, sbc.Bin(ir.OpMul, slp.I, four))
		onec := sbc.Const(1)
		for k := 0; k < 4; k++ {
			jk := j0
			if k > 0 {
				kk := sbc.Const(int64(k))
				jk = sbc.Bin(ir.OpAdd, j0, kk)
			}
			d := sbc.ALoad(1, jk)
			m1 := sbc.Bin(ir.OpMul, acc, p31)
			sbc.BinTo(ir.OpXor, acc, m1, d)
		}
		_ = onec
		sbc.Jump(slp.Latch)
		dc := slp.After
		one2 := dc.Const(1)
		// Bookkeeping: two or three field accesses per query.
		found := dc.Bin(ir.OpAnd, acc, dc.Const(1))
		hitB := lookup.Block("hit")
		missB := lookup.Block("miss")
		retB := lookup.Block("ret")
		dc.Branch(found, hitB, missB)
		hb := lookup.At(hitB)
		h := hb.GetField(3, table, "hits")
		hb.PutField(3, table, "hits", hb.Bin(ir.OpAdd, h, one2))
		hb.Jump(retB)
		mb := lookup.At(missB)
		ms := mb.GetField(3, table, "misses")
		mb.PutField(3, table, "misses", mb.Bin(ir.OpAdd, ms, one2))
		mb.Jump(retB)
		rb := lookup.At(retB)
		rb.Return(acc)
	}
	p.Funcs = append(p.Funcs, lookup.M)

	main := ir.NewFunc("main", 0)
	{
		c := main.At(main.EntryBlock())
		nRec := c.Const(8192)
		idx := c.NewArray(nRec)
		// Sorted index: idx[i] = i*7.
		initLp := c.CountedLoop(nRec, "init")
		ib := initLp.Body
		seven := ib.Const(7)
		ib.AStore(idx, initLp.I, ib.Bin(ir.OpMul, initLp.I, seven))
		ib.Jump(initLp.Latch)

		a := initLp.After
		data := a.NewArray(nRec)
		seed := a.Const(0xBEEF)
		a.Call(fill, data, seed)
		tbl := a.New(table)

		acc := a.Const(0)
		nq := a.Const(sc(18000, scale))
		q := a.CountedLoop(nq, "query")
		qb := q.Body
		k1 := qb.Const(2654435761)
		key := qb.Bin(ir.OpMul, q.I, k1)
		mask := qb.Const(8192*7 - 1)
		keyM := qb.Bin(ir.OpAnd, key, mask)
		r := qb.Call(lookup.M, idx, data, keyM, tbl)
		qb.BinTo(ir.OpXor, acc, acc, r)
		// Checkpoint every 2048 queries: expensive log writes touching
		// the table's own bookkeeping.
		m2047 := qb.Const(2047)
		lowBits := qb.Bin(ir.OpAnd, q.I, m2047)
		isCp := qb.Bin(ir.OpCmpEQ, lowBits, qb.Const(0))
		cpB := main.Block("checkpoint")
		nxB := main.Block("next")
		qb.Branch(isCp, cpB, nxB)
		cpc := main.At(cpB)
		cpc = emitSlowPhase(cpc, 16, 25000, tbl, table, "scanned")
		cpc.Jump(nxB)
		nx := main.At(nxB)
		nx.Jump(q.Latch)

		fin := q.After
		h := fin.GetField(tbl, table, "hits")
		ms := fin.GetField(tbl, table, "misses")
		res := fin.Bin(ir.OpAdd, fin.Bin(ir.OpAdd, acc, h), ms)
		fin.Print(res)
		fin.Return(res)
	}
	p.Funcs = append(p.Funcs, main.M)
	p.Main = main.M
	p.Seal()
	return p
}
