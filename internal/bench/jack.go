package bench

import "instrsample/internal/ir"

// Jack models _228_jack: a parser generator parsing its own input — a
// character-at-a-time scanner state machine with per-token semantic
// actions. The lexer state lives in fields, making field-access
// instrumentation expensive (108.7% in Table 1), while calls happen only
// per token, not per character.
func Jack(scale float64) *ir.Program {
	p := &ir.Program{Name: "jack"}

	lexer := &ir.Class{Name: "Lexer", FieldNames: []string{
		"pos", "state", "tokStart", "tokCount", "checksum", "refills",
	}}
	p.Classes = append(p.Classes, lexer)

	fill := buildFillArray(p)

	// action(lx, kind): per-token semantic action.
	action := ir.NewFunc("action", 2)
	{
		c := action.At(action.EntryBlock())
		tc := c.GetField(0, lexer, "tokCount")
		one := c.Const(1)
		c.PutField(0, lexer, "tokCount", c.Bin(ir.OpAdd, tc, one))
		cs := c.GetField(0, lexer, "checksum")
		prime := c.Const(131)
		mixed := c.Bin(ir.OpMul, cs, prime)
		c.PutField(0, lexer, "checksum", c.Bin(ir.OpXor, mixed, 1))
		c.Return(c.GetField(0, lexer, "checksum"))
	}
	p.Funcs = append(p.Funcs, action.M)

	main := ir.NewFunc("main", 0)
	{
		c := main.At(main.EntryBlock())
		n := c.Const(sc(220000, scale))
		input := c.NewArray(n)
		seed := c.Const(0x7ACC)
		c.Call(fill, input, seed)
		lx := c.New(lexer)
		c.PutField(lx, lexer, "checksum", c.Const(7))

		// Simulated file read before scanning.
		c.IO(150000)

		lp := c.CountedLoop(n, "scan")
		b := lp.Body
		ch := b.ALoad(input, lp.I)
		// Classify through a character-class computation (the generated
		// scanner's table lookup plus case folding).
		st := b.GetField(lx, lexer, "state")
		p31 := b.Const(31)
		h1 := b.Bin(ir.OpMul, ch, p31)
		s4 := b.Const(4)
		h2 := b.Bin(ir.OpShr, h1, s4)
		h3 := b.Bin(ir.OpXor, h1, h2)
		h4 := b.Bin(ir.OpAdd, h3, st)
		s2 := b.Const(2)
		h5 := b.Bin(ir.OpShl, h4, s2)
		h6 := b.Bin(ir.OpXor, h4, h5)
		mask255 := b.Const(255)
		class := b.Bin(ir.OpAnd, h6, mask255)
		sixtyfour := b.Const(64)
		isDelim := b.Bin(ir.OpCmpLT, ch, sixtyfour)
		delimB := main.Block("delim")
		accumB := main.Block("accum")
		contB := main.Block("cont")
		b.Branch(isDelim, delimB, accumB)

		dc := main.At(delimB)
		// End of token: fire the action if a token was in progress.
		zero := dc.Const(0)
		inTok := dc.Bin(ir.OpCmpGT, st, zero)
		fireB := main.Block("fire")
		skipB := main.Block("skip")
		dc.Branch(inTok, fireB, skipB)
		fc := main.At(fireB)
		kind := fc.Bin(ir.OpAnd, st, fc.Const(3))
		fc.Call(action.M, lx, kind)
		fc.PutField(lx, lexer, "state", fc.Const(0))
		fc.Jump(contB)
		sc2 := main.At(skipB)
		sc2.Jump(contB)

		ac := main.At(accumB)
		// Accumulate: state = state*2 + class (bounded), pos tracked.
		two := ac.Const(2)
		ns := ac.Bin(ir.OpMul, st, two)
		nsc := ac.Bin(ir.OpAdd, ns, class)
		bound := ac.Const(0x3FFF)
		ac.PutField(lx, lexer, "state", ac.Bin(ir.OpAnd, nsc, bound))
		pos := ac.GetField(lx, lexer, "pos")
		one := ac.Const(1)
		ac.PutField(lx, lexer, "pos", ac.Bin(ir.OpAdd, pos, one))
		ac.Jump(contB)

		cc := main.At(contB)
		// Input-buffer refill every 4 KiB: slow file reads on their own
		// field.
		m4095 := cc.Const(4095)
		lowBits := cc.Bin(ir.OpAnd, lp.I, m4095)
		isRefill := cc.Bin(ir.OpCmpEQ, lowBits, cc.Const(0))
		refB := main.Block("refill")
		nxB := main.Block("next")
		cc.Branch(isRefill, refB, nxB)
		rfc := main.At(refB)
		rfc = emitSlowPhase(rfc, 8, 8000, lx, lexer, "refills")
		rfc.Jump(nxB)
		nx := main.At(nxB)
		nx.Jump(lp.Latch)

		fin := lp.After
		csum := fin.GetField(lx, lexer, "checksum")
		tcnt := fin.GetField(lx, lexer, "tokCount")
		res := fin.Bin(ir.OpAdd, csum, tcnt)
		fin.Print(res)
		fin.Return(res)
	}
	p.Funcs = append(p.Funcs, main.M)
	p.Main = main.M
	p.Seal()
	return p
}
