// Package bench provides the benchmark suite: ten deterministic programs
// written in the IR, standing in for the paper's SPECjvm98 (input size
// 10), opt-compiler, pBOB and VolanoMark workloads (§4.1).
//
// Each program is shaped to reproduce its original's *profile shape* —
// the relative densities of loop backedges, method entries and field
// accesses that determine where that benchmark lands in Tables 1–3:
//
//	compress    tight byte-compression loops, field-heavy state updates
//	jess        rule-matching, dominated by many small method calls
//	db          index lookups: few calls, few fields, low overheads
//	javac       recursive AST construction and walking
//	mpegaudio   numeric filter kernels, loop-dominated
//	mtrt        ray-tracing-style vector-object arithmetic
//	jack        token-scanning state machine with per-token actions
//	optc        an expression compiler compiling synthetic sources
//	            (the analogue of running the optimizing compiler on
//	            itself), deeply recursive and call-dense
//	pbob        multi-threaded warehouse transactions
//	volano      multi-threaded message-passing rooms
//
// Programs take a scale factor: 1.0 is full experiment scale; tests use
// much smaller values. All programs are deterministic, return a checksum,
// and perform no I/O except compress/jack/volano's simulated OpIO stalls
// (which exist to expose the timer-trigger mis-attribution of §4.6).
//
// Build functions are pure: each call constructs a fresh ir.Program and
// shares no mutable state with other calls, so the same benchmark may be
// built concurrently from multiple goroutines (package experiment's
// parallel engine depends on this).
//
// See DESIGN.md §2 (workload substitution argument) and §3 (system
// inventory).
package bench

import (
	"fmt"

	"instrsample/internal/ir"
)

// Benchmark is a named program generator.
type Benchmark struct {
	// Name is the benchmark's short name.
	Name string
	// Description summarizes the workload shape.
	Description string
	// Build returns a fresh sealed program at the given scale.
	Build func(scale float64) *ir.Program
}

// Suite returns the full benchmark suite in the paper's Table 1 order.
func Suite() []Benchmark {
	return []Benchmark{
		{"compress", "byte-compression loops, field-heavy", Compress},
		{"jess", "rule matching, call-dominated", Jess},
		{"db", "index lookups, low instrumentation density", DB},
		{"javac", "recursive AST build and walk", Javac},
		{"mpegaudio", "numeric filter kernels, loop-dominated", Mpegaudio},
		{"mtrt", "vector-object ray tracing", Mtrt},
		{"jack", "token-scanning state machine", Jack},
		{"optc", "expression compiler on itself", Optc},
		{"pbob", "multi-threaded warehouse transactions", Pbob},
		{"volano", "multi-threaded chat rooms", Volano},
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("bench: unknown benchmark %q", name)
}

// sc scales an iteration count, guaranteeing at least 1.
func sc(n int64, scale float64) int64 {
	v := int64(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// emitXorshift appends a deterministic PRNG step to the cursor:
// state = xorshift(state), returning nothing (updates state in place).
// The constants are the classic 13/7/17 triple.
func emitXorshift(c *ir.Cursor, state ir.Reg) {
	s13 := c.Const(13)
	s7 := c.Const(7)
	s17 := c.Const(17)
	t1 := c.Bin(ir.OpShl, state, s13)
	c.BinTo(ir.OpXor, state, state, t1)
	t2 := c.Bin(ir.OpShr, state, s7)
	c.BinTo(ir.OpXor, state, state, t2)
	t3 := c.Bin(ir.OpShl, state, s17)
	c.BinTo(ir.OpXor, state, state, t3)
}

// emitMix appends `rounds` rounds of a multiply-shift-xor mixing chain to
// the cursor, folding register x; it returns the mixed register. This is
// the suite's stand-in for real straight-line method-body work (hashing,
// pricing, geometry): it adds ~8 cycles per round without touching
// memory, calls or control flow, so it shifts a benchmark's
// instrumentation densities without changing its profile shape.
func emitMix(c *ir.Cursor, x ir.Reg, rounds int) ir.Reg {
	cur := x
	for i := 0; i < rounds; i++ {
		p := c.Const(int64(2654435761 + i*97))
		h1 := c.Bin(ir.OpMul, cur, p)
		s := c.Const(int64(5 + i%7))
		h2 := c.Bin(ir.OpShr, h1, s)
		h3 := c.Bin(ir.OpXor, h1, h2)
		s2 := c.Const(int64(3 + i%5))
		h4 := c.Bin(ir.OpShl, h3, s2)
		cur = c.Bin(ir.OpXor, h3, h4)
	}
	return cur
}

// emitSlowPhase appends a loop of n expensive iterations: each costs
// ioCost cycles of simulated I/O plus one update of obj's field. Slow
// phases give benchmarks the time-heterogeneity real programs have (I/O,
// buffer refills, checkpoints): a region that consumes a large share of
// *time* while contributing a tiny share of *events*. This is what
// separates the two triggers in Table 5 — a time-based trigger attributes
// samples proportionally to time and so floods the slow phase's events,
// while the counter-based trigger attributes them proportionally to
// check counts and stays faithful to the event distribution.
// Returns the cursor after the loop.
func emitSlowPhase(c *ir.Cursor, n, ioCost int64, obj ir.Reg, cl *ir.Class, field string) *ir.Cursor {
	nn := c.Const(n)
	lp := c.CountedLoop(nn, "slow")
	b := lp.Body
	b.IO(ioCost)
	v := b.GetField(obj, cl, field)
	one := b.Const(1)
	b.PutField(obj, cl, field, b.Bin(ir.OpAdd, v, one))
	b.Jump(lp.Latch)
	return lp.After
}

// buildFillArray creates a helper function fill(arr, seed) that fills an
// array with deterministic pseudo-random bytes (0..255) and returns the
// final seed.
func buildFillArray(p *ir.Program) *ir.Method {
	f := ir.NewFunc("fill", 2)
	c := f.At(f.EntryBlock())
	n := c.Un(ir.OpArrayLen, 0)
	lp := c.CountedLoop(n, "fill")
	b := lp.Body
	emitXorshift(b, 1)
	mask := b.Const(255)
	byteVal := b.Bin(ir.OpAnd, 1, mask)
	b.AStore(0, lp.I, byteVal)
	b.Jump(lp.Latch)
	lp.After.Return(1)
	p.Funcs = append(p.Funcs, f.M)
	return f.M
}
