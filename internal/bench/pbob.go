package bench

import "instrsample/internal/ir"

// Pbob models the portable Business Object Benchmark (pBOB): several
// worker threads each executing order transactions against their own
// warehouse objects. Threads are green threads scheduled at yieldpoints;
// each worker's work is fully independent (pre-partitioned warehouses),
// so profiles are identical under any interleaving — which keeps the
// perfect-vs-sampled comparisons exact even when the yieldpoint
// optimization changes scheduling granularity.
func Pbob(scale float64) *ir.Program {
	p := &ir.Program{Name: "pbob"}

	wh := &ir.Class{Name: "Warehouse", FieldNames: []string{"stock", "orders", "revenue", "tax", "audits"}}
	p.Classes = append(p.Classes, wh)

	// newOrder(w, qty): one transaction — several field updates plus a
	// nested payment call.
	payment := ir.NewFunc("payment", 2)
	{
		c := payment.At(payment.EntryBlock())
		rev := c.GetField(0, wh, "revenue")
		nr := c.Bin(ir.OpAdd, rev, 1)
		c.PutField(0, wh, "revenue", nr)
		tax := c.GetField(0, wh, "tax")
		twenty := c.Const(20)
		c.PutField(0, wh, "tax", c.Bin(ir.OpAdd, tax, c.Bin(ir.OpDiv, 1, twenty)))
		c.Return(emitMix(c, nr, 18))
	}
	newOrder := ir.NewFunc("newOrder", 2)
	{
		c := newOrder.At(newOrder.EntryBlock())
		st := c.GetField(0, wh, "stock")
		rem := c.Bin(ir.OpSub, st, 1)
		zero := c.Const(0)
		ok := c.Bin(ir.OpCmpGT, rem, zero)
		okB := newOrder.Block("ok")
		restockB := newOrder.Block("restock")
		contB := newOrder.Block("cont")
		c.Branch(ok, okB, restockB)
		oc := newOrder.At(okB)
		oc.PutField(0, wh, "stock", rem)
		oc.Jump(contB)
		rc := newOrder.At(restockB)
		rc.PutField(0, wh, "stock", rc.Const(1000))
		rc.Jump(contB)
		cc := newOrder.At(contB)
		ord := cc.GetField(0, wh, "orders")
		one := cc.Const(1)
		cc.PutField(0, wh, "orders", cc.Bin(ir.OpAdd, ord, one))
		r := cc.Call(payment.M, 0, 1)
		cc.Return(emitMix(cc, r, 14))
	}
	p.Funcs = append(p.Funcs, payment.M, newOrder.M)

	// worker(nTx, seed): run nTx transactions against a fresh warehouse.
	worker := ir.NewFunc("worker", 2)
	{
		c := worker.At(worker.EntryBlock())
		w := c.New(wh)
		c.PutField(w, wh, "stock", c.Const(1000))
		acc := c.Const(0)
		lp := c.CountedLoop(0, "tx")
		b := lp.Body
		emitXorshift(b, 1)
		mask := b.Const(15)
		qty := b.Bin(ir.OpAnd, 1, mask)
		r := b.Call(newOrder.M, w, qty)
		b.BinTo(ir.OpXor, acc, acc, r)
		// Audit pass every 1024 transactions: slow ledger writes.
		m1023 := b.Const(1023)
		lowBits := b.Bin(ir.OpAnd, lp.I, m1023)
		isAudit := b.Bin(ir.OpCmpEQ, lowBits, b.Const(0))
		auditB := worker.Block("audit")
		nxB := worker.Block("next")
		b.Branch(isAudit, auditB, nxB)
		adc := worker.At(auditB)
		adc = emitSlowPhase(adc, 8, 6000, w, wh, "audits")
		adc.Jump(nxB)
		nx := worker.At(nxB)
		nx.Jump(lp.Latch)
		fin := lp.After
		ords := fin.GetField(w, wh, "orders")
		fin.Return(fin.Bin(ir.OpAdd, acc, ords))
	}
	p.Funcs = append(p.Funcs, worker.M)

	main := ir.NewFunc("main", 0)
	{
		c := main.At(main.EntryBlock())
		nTx := c.Const(sc(30000, scale))
		nW := int64(4)
		handles := c.NewArray(c.Const(nW))
		for i := int64(0); i < nW; i++ {
			seed := c.Const(0x51ED + i*977)
			h := c.Spawn(worker.M, nTx, seed)
			c.AStore(handles, c.Const(i), h)
		}
		acc := c.Const(0)
		for i := int64(0); i < nW; i++ {
			h := c.ALoad(handles, c.Const(i))
			r := c.Join(h)
			c.BinTo(ir.OpAdd, acc, acc, r)
		}
		c.Print(acc)
		c.Return(acc)
	}
	p.Funcs = append(p.Funcs, main.M)
	p.Main = main.M
	p.Seal()
	return p
}
