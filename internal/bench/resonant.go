package bench

import "instrsample/internal/ir"

// Resonant builds the §4.4 worst-case program: its check stream is
// exactly periodic (two checks per outer iteration: the main loop's
// backedge and classify's entry), so any *even* sample interval resonates
// with the period and only ever samples one of the two check sites. Path
// profiles expose the failure: the main loop's path is never recorded.
// Not part of Suite(); used by the resonance ablation and tests.
func Resonant(scale float64) *ir.Program {
	p := &ir.Program{Name: "resonant"}

	// classify(v): a branchy DAG (no loops, so its only check is the
	// entry check).
	classify := ir.NewFunc("classify", 1)
	{
		c := classify.At(classify.EntryBlock())
		mask := c.Const(7)
		low := c.Bin(ir.OpAnd, 0, mask)
		three := c.Const(3)
		small := c.Bin(ir.OpCmpLT, low, three)
		smallB := classify.Block("small")
		bigB := classify.Block("big")
		mid := classify.Block("mid")
		c.Branch(small, smallB, bigB)
		r1 := c.Fresh()
		sc5 := classify.At(smallB)
		sc5.ConstTo(r1, 1)
		sc5.Jump(mid)
		bc := classify.At(bigB)
		bc.ConstTo(r1, 100)
		bc.Jump(mid)
		mc := classify.At(mid)
		mask2 := mc.Const(31)
		m := mc.Bin(ir.OpAnd, 0, mask2)
		t11 := mc.Const(11)
		lt := mc.Bin(ir.OpCmpLT, m, t11)
		lowB := classify.Block("low")
		hiChk := classify.Block("hiChk")
		done := classify.Block("done")
		out := mc.Fresh()
		mc.Branch(lt, lowB, hiChk)
		lc := classify.At(lowB)
		lc.BinTo(ir.OpAdd, out, r1, r1)
		lc.Jump(done)
		hc := classify.At(hiChk)
		t23 := hc.Const(23)
		lt2 := hc.Bin(ir.OpCmpLT, m, t23)
		midB := classify.Block("midB")
		highB := classify.Block("highB")
		hc.Branch(lt2, midB, highB)
		mb := classify.At(midB)
		ten := mb.Const(10)
		mb.BinTo(ir.OpAdd, out, r1, ten)
		mb.Jump(done)
		hb := classify.At(highB)
		k := hb.Const(1000)
		hb.BinTo(ir.OpAdd, out, r1, k)
		hb.Jump(done)
		dc := classify.At(done)
		dc.Return(out)
	}
	p.Funcs = append(p.Funcs, classify.M)

	main := ir.NewFunc("main", 0)
	{
		c := main.At(main.EntryBlock())
		acc := c.Const(0)
		prng := c.Fresh()
		c.ConstTo(prng, 88172645463325252)
		n := c.Const(sc(60000, scale))
		lp := c.CountedLoop(n, "gen")
		b := lp.Body
		emitXorshift(b, prng)
		r := b.Call(classify.M, prng)
		b.BinTo(ir.OpAdd, acc, acc, r)
		b.Jump(lp.Latch)
		fin := lp.After
		fin.Print(acc)
		fin.Return(acc)
	}
	p.Funcs = append(p.Funcs, main.M)
	p.Main = main.M
	p.Seal()
	return p
}
