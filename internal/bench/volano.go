package bench

import "instrsample/internal/ir"

// Volano models VolanoMark: a chat server where each room broadcasts every
// client's messages to all connected clients. Each room runs on its own
// green thread with simulated network stalls (OpIO), and work is
// dominated by message buffer copying — array traffic with relatively few
// calls and field accesses, giving Volano the lowest field-access
// overhead of the suite, as in Table 1.
func Volano(scale float64) *ir.Program {
	p := &ir.Program{Name: "volano"}

	room := &ir.Class{Name: "Room", FieldNames: []string{"delivered", "dropped", "digest"}}
	p.Classes = append(p.Classes, room)

	// deliver(r, msgBuf, len): copy a message to a client, digesting four
	// bytes per iteration (message buffers are processed word-at-a-time,
	// so per-backedge work is substantial — Volano's check overheads are
	// the lowest of the threaded benchmarks).
	deliver := ir.NewFunc("deliver", 3)
	{
		c := deliver.At(deliver.EntryBlock())
		digest := c.GetField(0, room, "digest")
		four := c.Const(4)
		quarters := c.Bin(ir.OpDiv, 2, four)
		lp := c.CountedLoop(quarters, "copy")
		b := lp.Body
		base := b.Bin(ir.OpMul, lp.I, four)
		thirtyone := b.Const(31)
		for k := 0; k < 4; k++ {
			idx := base
			if k > 0 {
				kk := b.Const(int64(k))
				idx = b.Bin(ir.OpAdd, base, kk)
			}
			v := b.ALoad(1, idx)
			b.BinTo(ir.OpMul, digest, digest, thirtyone)
			b.BinTo(ir.OpXor, digest, digest, v)
		}
		b.Jump(lp.Latch)
		fin := lp.After
		fin.PutField(0, room, "digest", digest)
		d := fin.GetField(0, room, "delivered")
		one := fin.Const(1)
		fin.PutField(0, room, "delivered", fin.Bin(ir.OpAdd, d, one))
		fin.Return(digest)
	}
	p.Funcs = append(p.Funcs, deliver.M)

	// roomThread(nMsgs, seed): one chat room: generate messages, broadcast
	// to a fixed client count, with a periodic simulated network stall.
	roomThread := ir.NewFunc("roomThread", 2)
	{
		c := roomThread.At(roomThread.EntryBlock())
		r := c.New(room)
		msgLen := c.Const(32)
		buf := c.NewArray(msgLen)
		acc := c.Const(0)
		lp := c.CountedLoop(0, "msg")
		b := lp.Body
		// Compose the message, four bytes per iteration.
		fourC := b.Const(4)
		quarters := b.Bin(ir.OpDiv, msgLen, fourC)
		compose := b.CountedLoop(quarters, "compose")
		cb := compose.Body
		emitXorshift(cb, 1)
		base := cb.Bin(ir.OpMul, compose.I, fourC)
		mask := cb.Const(127)
		shift := cb.Const(8)
		word := cb.Fresh()
		cb.Move(word, 1)
		for k := 0; k < 4; k++ {
			idx := base
			if k > 0 {
				kk := cb.Const(int64(k))
				idx = cb.Bin(ir.OpAdd, base, kk)
			}
			byteV := cb.Bin(ir.OpAnd, word, mask)
			cb.AStore(buf, idx, byteV)
			cb.BinTo(ir.OpShr, word, word, shift)
		}
		cb.Jump(compose.Latch)
		bb := compose.After
		// Broadcast to 4 clients.
		four := bb.Const(4)
		bc := bb.CountedLoop(four, "client")
		clb := bc.Body
		dg := clb.Call(deliver.M, r, buf, msgLen)
		clb.BinTo(ir.OpXor, acc, acc, dg)
		clb.Jump(bc.Latch)
		after := bc.After
		// Periodic network stall: every 64 messages.
		sixtythree := after.Const(63)
		low := after.Bin(ir.OpAnd, lp.I, sixtythree)
		zero := after.Const(0)
		stall := after.Bin(ir.OpCmpEQ, low, zero)
		stallB := roomThread.Block("stall")
		contB := roomThread.Block("cont")
		after.Branch(stall, stallB, contB)
		st := roomThread.At(stallB)
		// Retransmission: eight slow socket writes, each recording a
		// drop — the expensive rare phase with its own field.
		st = emitSlowPhase(st, 8, 5000, r, room, "dropped")
		st.Jump(contB)
		cc := roomThread.At(contB)
		cc.Jump(lp.Latch)
		fin := lp.After
		del := fin.GetField(r, room, "delivered")
		fin.Return(fin.Bin(ir.OpAdd, acc, del))
	}
	p.Funcs = append(p.Funcs, roomThread.M)

	main := ir.NewFunc("main", 0)
	{
		c := main.At(main.EntryBlock())
		nMsgs := c.Const(sc(2600, scale))
		nRooms := int64(6)
		handles := c.NewArray(c.Const(nRooms))
		for i := int64(0); i < nRooms; i++ {
			seed := c.Const(0xC4A7 + i*7919)
			h := c.Spawn(roomThread.M, nMsgs, seed)
			c.AStore(handles, c.Const(i), h)
		}
		acc := c.Const(0)
		for i := int64(0); i < nRooms; i++ {
			h := c.ALoad(handles, c.Const(i))
			r := c.Join(h)
			c.BinTo(ir.OpXor, acc, acc, r)
		}
		c.Print(acc)
		c.Return(acc)
	}
	p.Funcs = append(p.Funcs, main.M)
	p.Main = main.M
	p.Seal()
	return p
}
