package bench

import "instrsample/internal/ir"

// Optc models the paper's "opt-compiler" benchmark — the Jalapeño
// optimizing compiler run on a subset of itself. The analogue here is an
// expression compiler *written in the VM's own bytecode*: it tokenizes a
// synthetic source stream, parses it by recursive descent into a stack
// machine program, constant-folds, and "executes" the result. The
// workload is the most call-dense of the suite (the paper reports 189%
// call-edge overhead), with deep recursion and many small methods.
func Optc(scale float64) *ir.Program {
	p := &ir.Program{Name: "optc"}

	// Parser state: source array, cursor, output counter.
	ps := &ir.Class{Name: "Parser", FieldNames: []string{"src", "pos", "len", "emitted", "folded"}}
	p.Classes = append(p.Classes, ps)

	// peek(self): current token (0 when exhausted). Tokens are small
	// ints: 0..9 literals, 10 '+', 11 '*', 12 '(', 13 ')'.
	peek := ir.NewMethod(ps, "peek", 1)
	{
		c := peek.At(peek.EntryBlock())
		pos := c.GetField(0, ps, "pos")
		ln := c.GetField(0, ps, "len")
		in := c.Bin(ir.OpCmpLT, pos, ln)
		okB := peek.Block("ok")
		eofB := peek.Block("eof")
		c.Branch(in, okB, eofB)
		oc := peek.At(okB)
		// Token decode: the scanner's table computation.
		dec := emitMix(oc, pos, 5)
		idx := oc.Bin(ir.OpAdd, pos, dec)
		idx = oc.Bin(ir.OpSub, idx, dec)
		src := oc.GetField(0, ps, "src")
		oc.Return(oc.ALoad(src, idx))
		ec := peek.At(eofB)
		ec.Return(ec.Const(13)) // pretend ')' at EOF to unwind
	}
	_ = peek

	// advance(self): consume one token.
	advance := ir.NewMethod(ps, "advance", 1)
	{
		c := advance.At(advance.EntryBlock())
		pos := c.GetField(0, ps, "pos")
		one := c.Const(1)
		c.PutField(0, ps, "pos", c.Bin(ir.OpAdd, pos, one))
		c.Return(pos)
	}
	_ = advance

	// emit(self, v): count an emitted instruction, fold into checksum.
	emit := ir.NewMethod(ps, "emit", 2)
	{
		c := emit.At(emit.EntryBlock())
		e := c.GetField(0, ps, "emitted")
		one := c.Const(1)
		c.PutField(0, ps, "emitted", c.Bin(ir.OpAdd, e, one))
		f := c.GetField(0, ps, "folded")
		p37 := c.Const(37)
		mixed := emitMix(c, c.Bin(ir.OpMul, f, p37), 10)
		c.PutField(0, ps, "folded", c.Bin(ir.OpXor, mixed, 1))
		c.Return(one)
	}
	_ = emit

	// parsePrimary(self): literal or parenthesized expression.
	parsePrimary := ir.NewMethod(ps, "parsePrimary", 1)
	// parseTerm(self): primary ('*' primary)*
	parseTerm := ir.NewMethod(ps, "parseTerm", 1)
	// parseExpr(self): term ('+' term)*
	parseExpr := ir.NewMethod(ps, "parseExpr", 1)

	{
		c := parsePrimary.At(parsePrimary.EntryBlock())
		tok := c.CallVirt("peek", 0)
		c.CallVirt("advance", 0)
		ten := c.Const(10)
		isLit := c.Bin(ir.OpCmpLT, tok, ten)
		lit := parsePrimary.Block("lit")
		paren := parsePrimary.Block("paren")
		c.Branch(isLit, lit, paren)
		lc := parsePrimary.At(lit)
		lit2 := emitMix(lc, tok, 6)
		lc.CallVirt("emit", 0, lit2)
		lc.Return(tok)
		pc := parsePrimary.At(paren)
		twelve := pc.Const(12)
		isOpen := pc.Bin(ir.OpCmpEQ, tok, twelve)
		openB := parsePrimary.Block("open")
		errB := parsePrimary.Block("err")
		pc.Branch(isOpen, openB, errB)
		ob := parsePrimary.At(openB)
		v := ob.CallVirt("parseExpr", 0)
		ob.CallVirt("advance", 0) // consume ')'
		ob.Return(v)
		eb := parsePrimary.At(errB)
		eb.Return(eb.Const(1)) // error recovery: pretend literal 1
	}
	{
		c := parseTerm.At(parseTerm.EntryBlock())
		v := c.CallVirt("parsePrimary", 0)
		head := parseTerm.Block("head")
		body := parseTerm.Block("body")
		done := parseTerm.Block("done")
		hc := c.Jump(head)
		tok := hc.CallVirt("peek", 0)
		eleven := hc.Const(11)
		isMul := hc.Bin(ir.OpCmpEQ, tok, eleven)
		hc.Branch(isMul, body, done)
		bc := parseTerm.At(body)
		bc.CallVirt("advance", 0)
		rhs := bc.CallVirt("parsePrimary", 0)
		bc.BinTo(ir.OpMul, v, v, rhs)
		mask := bc.Const(0xFFFFF)
		bc.BinTo(ir.OpAnd, v, v, mask)
		bc.CallVirt("emit", 0, v)
		bc.Jump(head)
		dc := parseTerm.At(done)
		dc.Return(v)
	}
	{
		c := parseExpr.At(parseExpr.EntryBlock())
		v := c.CallVirt("parseTerm", 0)
		head := parseExpr.Block("head")
		body := parseExpr.Block("body")
		done := parseExpr.Block("done")
		hc := c.Jump(head)
		tok := hc.CallVirt("peek", 0)
		ten := hc.Const(10)
		isAdd := hc.Bin(ir.OpCmpEQ, tok, ten)
		hc.Branch(isAdd, body, done)
		bc := parseExpr.At(body)
		bc.CallVirt("advance", 0)
		rhs := bc.CallVirt("parseTerm", 0)
		bc.BinTo(ir.OpAdd, v, v, rhs)
		bc.CallVirt("emit", 0, v)
		bc.Jump(head)
		dc := parseExpr.At(done)
		dc.Return(v)
	}

	main := ir.NewFunc("main", 0)
	{
		c := main.At(main.EntryBlock())
		// The synthetic "source program" is a well-formed expression token
		// stream generated at build time (deterministic) and embedded as
		// unrolled stores — the analogue of the compiler's fixed input.
		tokens := genTokens(512, 0x0C0DE)
		srcLen := c.Const(int64(len(tokens)))
		src := c.NewArray(srcLen)
		for i, tok := range tokens {
			idx := c.Const(int64(i))
			v := c.Const(tok)
			c.AStore(src, idx, v)
		}

		acc := c.Const(0)
		nUnits := c.Const(sc(350, scale))
		lp := c.CountedLoop(nUnits, "unit")
		b := lp.Body
		pr := b.New(ps)
		b.PutField(pr, ps, "src", src)
		b.PutField(pr, ps, "len", srcLen)
		b.PutField(pr, ps, "folded", b.Bin(ir.OpAnd, lp.I, b.Const(63)))
		v := b.CallVirt("parseExpr", pr)
		em := b.GetField(pr, ps, "emitted")
		fl := b.GetField(pr, ps, "folded")
		b.BinTo(ir.OpAdd, acc, acc, v)
		b.BinTo(ir.OpXor, acc, acc, em)
		b.BinTo(ir.OpAdd, acc, acc, fl)
		b.Jump(lp.Latch)

		fin := lp.After
		fin.Print(acc)
		fin.Return(acc)
	}
	p.Funcs = append(p.Funcs, main.M)
	p.Main = main.M
	p.Seal()
	return p
}

// genTokens produces a well-formed expression token stream of roughly n
// tokens: expr := term ('+' term)*, term := prim ('*' prim)*,
// prim := digit | '(' expr ')'. Tokens: 0..9 literals, 10 '+', 11 '*',
// 12 '(', 13 ')'. Choices are driven by a seeded xorshift so the stream
// is deterministic but aperiodic.
func genTokens(n int, seed uint64) []int64 {
	state := seed
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	var out []int64
	var expr func(depth int)
	prim := func(depth int) {}
	term := func(depth int) {
		prim(depth)
		for len(out) < n && next()%3 == 0 {
			out = append(out, 11)
			prim(depth)
		}
	}
	expr = func(depth int) {
		term(depth)
		for len(out) < n && next()%2 == 0 {
			out = append(out, 10)
			term(depth)
		}
	}
	prim = func(depth int) {
		if depth < 6 && len(out) < n-8 && next()%4 == 0 {
			out = append(out, 12)
			expr(depth + 1)
			out = append(out, 13)
			return
		}
		out = append(out, int64(next()%10))
	}
	for len(out) < n {
		expr(0)
		if len(out) < n {
			out = append(out, 10) // join top-level expressions with '+'
		}
	}
	return out
}
