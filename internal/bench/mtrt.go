package bench

import "instrsample/internal/ir"

// Mtrt models _227_mtrt: a ray tracer. Work is vector arithmetic on small
// objects — dot products, reflections — invoked per ray through virtual
// methods, giving both a dense call-edge profile and a dense field-access
// profile.
func Mtrt(scale float64) *ir.Program {
	p := &ir.Program{Name: "mtrt"}

	vec := &ir.Class{Name: "Vec", FieldNames: []string{"x", "y", "z"}}
	sphere := &ir.Class{Name: "Sphere", FieldNames: []string{"cx", "cy", "cz", "r2", "hits"}}
	p.Classes = append(p.Classes, vec, sphere)

	// Vec.dot(self, other) — 6 field reads.
	dot := ir.NewMethod(vec, "dot", 2)
	{
		c := dot.At(dot.EntryBlock())
		ax := c.GetField(0, vec, "x")
		ay := c.GetField(0, vec, "y")
		az := c.GetField(0, vec, "z")
		bx := c.GetField(1, vec, "x")
		by := c.GetField(1, vec, "y")
		bz := c.GetField(1, vec, "z")
		t1 := c.Bin(ir.OpMul, ax, bx)
		t2 := c.Bin(ir.OpMul, ay, by)
		t3 := c.Bin(ir.OpMul, az, bz)
		s := c.Bin(ir.OpAdd, t1, t2)
		s2 := c.Bin(ir.OpAdd, s, t3)
		c.Return(emitMix(c, s2, 6))
	}
	_ = dot

	// Vec.scaleAdd(self, other, k): self += other * k (3 reads + 3 writes
	// + 3 reads of other).
	scaleAdd := ir.NewMethod(vec, "scaleAdd", 3)
	{
		c := scaleAdd.At(scaleAdd.EntryBlock())
		for _, fld := range []string{"x", "y", "z"} {
			av := c.GetField(0, vec, fld)
			bv := c.GetField(1, vec, fld)
			t := c.Bin(ir.OpMul, bv, 2)
			c.PutField(0, vec, fld, c.Bin(ir.OpAdd, av, t))
		}
		c.Return(c.GetField(0, vec, "x"))
	}
	_ = scaleAdd

	// Sphere.intersect(self, origin, dir): branchy hit test.
	intersect := ir.NewMethod(sphere, "intersect", 3)
	{
		c := intersect.At(intersect.EntryBlock())
		ox := c.GetField(1, vec, "x")
		cx := c.GetField(0, sphere, "cx")
		dx := c.Bin(ir.OpSub, cx, ox)
		oy := c.GetField(1, vec, "y")
		cy := c.GetField(0, sphere, "cy")
		dy := c.Bin(ir.OpSub, cy, oy)
		b := c.CallVirt("dot", 2, 2)
		d2 := c.Bin(ir.OpMul, dx, dx)
		d2y := c.Bin(ir.OpMul, dy, dy)
		dist := c.Bin(ir.OpAdd, d2, d2y)
		distB := c.Bin(ir.OpAdd, dist, b)
		r2 := c.GetField(0, sphere, "r2")
		distB = emitMix(c, distB, 12)
		hit := c.Bin(ir.OpCmpLT, distB, r2)
		hitB := intersect.Block("hit")
		missB := intersect.Block("miss")
		c.Branch(hit, hitB, missB)
		hc := intersect.At(hitB)
		h := hc.GetField(0, sphere, "hits")
		one := hc.Const(1)
		hc.PutField(0, sphere, "hits", hc.Bin(ir.OpAdd, h, one))
		hc.Return(distB)
		mc := intersect.At(missB)
		mc.Return(mc.Const(0))
	}
	_ = intersect

	main := ir.NewFunc("main", 0)
	{
		c := main.At(main.EntryBlock())
		// Scene: 8 spheres.
		eight := c.Const(8)
		scene := c.NewArray(eight)
		initLp := c.CountedLoop(eight, "scene")
		ib := initLp.Body
		s := ib.New(sphere)
		k := ib.Const(97)
		ib.PutField(s, sphere, "cx", ib.Bin(ir.OpMul, initLp.I, k))
		ib.PutField(s, sphere, "cy", ib.Bin(ir.OpMul, initLp.I, initLp.I))
		ib.PutField(s, sphere, "r2", ib.Const(9000))
		ib.AStore(scene, initLp.I, s)
		ib.Jump(initLp.Latch)

		a := initLp.After
		origin := a.New(vec)
		dir := a.New(vec)
		a.PutField(dir, vec, "x", a.Const(3))
		a.PutField(dir, vec, "y", a.Const(5))
		a.PutField(dir, vec, "z", a.Const(7))

		acc := a.Const(0)
		nRays := a.Const(sc(26000, scale))
		rays := a.CountedLoop(nRays, "ray")
		rb := rays.Body
		mask := rb.Const(255)
		rb.PutField(origin, vec, "x", rb.Bin(ir.OpAnd, rays.I, mask))
		rb.PutField(origin, vec, "y", rb.Bin(ir.OpRem, rays.I, rb.Const(191)))
		rb.CallVirt("scaleAdd", origin, dir, rb.Const(1))
		objs := rb.CountedLoop(eight, "obj")
		ob := objs.Body
		sp := ob.ALoad(scene, objs.I)
		d := ob.CallVirt("intersect", sp, origin, dir)
		ob.BinTo(ir.OpXor, acc, acc, d)
		ob.Jump(objs.Latch)
		objs.After.Jump(rays.Latch)

		fin := rays.After
		// Fold in hit counts.
		foldLp := fin.CountedLoop(eight, "fold")
		fb := foldLp.Body
		sp2 := fb.ALoad(scene, foldLp.I)
		h := fb.GetField(sp2, sphere, "hits")
		fb.BinTo(ir.OpAdd, acc, acc, h)
		fb.Jump(foldLp.Latch)
		fin2 := foldLp.After
		fin2.Print(acc)
		fin2.Return(acc)
	}
	p.Funcs = append(p.Funcs, main.M)
	p.Main = main.M
	p.Seal()
	return p
}
