package bench

import "instrsample/internal/ir"

// Javac models _213_javac: compiler front-end work — building abstract
// syntax trees and walking them recursively. Method entries come from
// deep recursion; field accesses are the tree-node links and values.
func Javac(scale float64) *ir.Program {
	p := &ir.Program{Name: "javac"}

	node := &ir.Class{Name: "Node", FieldNames: []string{"op", "val", "left", "right"}}
	p.Classes = append(p.Classes, node)

	// build(depth, seed): construct a binary expression tree recursively.
	build := ir.NewFunc("build", 2)
	{
		c := build.At(build.EntryBlock())
		zero := c.Const(0)
		isLeaf := c.Bin(ir.OpCmpLE, 0, zero)
		leafB := build.Block("leaf")
		innerB := build.Block("inner")
		c.Branch(isLeaf, leafB, innerB)

		lc := build.At(leafB)
		n := lc.New(node)
		lc.PutField(n, node, "op", lc.Const(0))
		mask := lc.Const(1023)
		lc.PutField(n, node, "val", lc.Bin(ir.OpAnd, 1, mask))
		lc.Return(n)

		ic := build.At(innerB)
		n2 := ic.New(node)
		three := ic.Const(3)
		one := ic.Const(1)
		opv := ic.Bin(ir.OpRem, 1, three)
		ic.PutField(n2, node, "op", ic.Bin(ir.OpAdd, opv, one))
		d1 := ic.Bin(ir.OpSub, 0, one)
		s13 := ic.Const(13)
		seedL := ic.Bin(ir.OpMul, 1, s13)
		seedL = emitMix(ic, seedL, 4)
		s7 := ic.Const(7)
		seedR := ic.Bin(ir.OpAdd, 1, s7)
		l := ic.Call(build.M, d1, seedL)
		r := ic.Call(build.M, d1, seedR)
		ic.PutField(n2, node, "left", l)
		ic.PutField(n2, node, "right", r)
		ic.Return(n2)
	}

	// eval(n): recursively fold the tree.
	eval := ir.NewFunc("eval", 1)
	{
		c := eval.At(eval.EntryBlock())
		op := c.GetField(0, node, "op")
		zero := c.Const(0)
		isLeaf := c.Bin(ir.OpCmpEQ, op, zero)
		leafB := eval.Block("leaf")
		innerB := eval.Block("inner")
		c.Branch(isLeaf, leafB, innerB)

		lc := eval.At(leafB)
		lv0 := lc.GetField(0, node, "val")
		lc.Return(emitMix(lc, lv0, 9))

		ic := eval.At(innerB)
		l := ic.GetField(0, node, "left")
		r := ic.GetField(0, node, "right")
		lv := ic.Call(eval.M, l)
		rv := ic.Call(eval.M, r)
		one := ic.Const(1)
		isAdd := ic.Bin(ir.OpCmpEQ, op, one)
		addB := eval.Block("add")
		otherB := eval.Block("other")
		ic.Branch(isAdd, addB, otherB)
		ac := eval.At(addB)
		s := ac.Bin(ir.OpAdd, lv, rv)
		ac.Return(emitMix(ac, s, 18))
		oc := eval.At(otherB)
		x := oc.Bin(ir.OpXor, lv, rv)
		x2 := oc.Bin(ir.OpAdd, x, op)
		oc.Return(emitMix(oc, x2, 18))
	}
	p.Funcs = append(p.Funcs, build.M, eval.M)

	main := ir.NewFunc("main", 0)
	{
		c := main.At(main.EntryBlock())
		acc := c.Const(0)
		nUnits := c.Const(sc(340, scale))
		lp := c.CountedLoop(nUnits, "unit")
		b := lp.Body
		depth := b.Const(8)
		seed := b.Bin(ir.OpAdd, lp.I, b.Const(17))
		tree := b.Call(build.M, depth, seed)
		v := b.Call(eval.M, tree)
		b.BinTo(ir.OpAdd, acc, acc, v)
		// Re-evaluate a few times: the "semantic analysis" passes.
		three := b.Const(3)
		passes := b.CountedLoop(three, "pass")
		pb := passes.Body
		v2 := pb.Call(eval.M, tree)
		pb.BinTo(ir.OpXor, acc, acc, v2)
		pb.Jump(passes.Latch)
		passes.After.Jump(lp.Latch)

		fin := lp.After
		fin.Print(acc)
		fin.Return(acc)
	}
	p.Funcs = append(p.Funcs, main.M)
	p.Main = main.M
	p.Seal()
	return p
}
