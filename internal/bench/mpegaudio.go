package bench

import "instrsample/internal/ir"

// Mpegaudio models _222_mpegaudio: audio decoding dominated by numeric
// filter kernels — tight loops over sample buffers with per-sample state
// kept in a decoder object, invoked once per subband (32 subbands per
// frame, 36 taps per subband). Backedge-check overhead is near its
// maximum here (9.0% in Table 2) and field accesses are dense enough that
// exhaustive field profiling roughly doubles execution time.
func Mpegaudio(scale float64) *ir.Program {
	p := &ir.Program{Name: "mpegaudio"}

	dec := &ir.Class{Name: "Decoder", FieldNames: []string{"gain", "prev", "energy", "refills"}}
	p.Classes = append(p.Classes, dec)

	fill := buildFillArray(p)

	const subbands, taps = 32, 36

	// filter(d, samples, out, band): one subband filter pass over the
	// band's 36 taps.
	filter := ir.NewFunc("filter", 4)
	{
		c := filter.At(filter.EntryBlock())
		nTaps := c.Const(taps)
		base := c.Bin(ir.OpMul, 3, nTaps)
		half := c.Const(taps / 2)
		lp := c.CountedLoop(half, "tap")
		b := lp.Body
		two := b.Const(2)
		off := b.Bin(ir.OpMul, lp.I, two)
		idx := b.Bin(ir.OpAdd, base, off)
		four := b.Const(4)
		// Two taps per iteration (the kernel is software-pipelined).
		for k := 0; k < 2; k++ {
			ik := idx
			if k == 1 {
				one := b.Const(1)
				ik = b.Bin(ir.OpAdd, idx, one)
			}
			s := b.ALoad(1, ik)
			g := b.GetField(0, dec, "gain")
			pv := b.GetField(0, dec, "prev")
			t1 := b.Bin(ir.OpMul, s, g)
			t2 := b.Bin(ir.OpAdd, t1, pv)
			t3 := b.Bin(ir.OpShr, t2, four)
			b.PutField(0, dec, "prev", t3)
			b.AStore(2, ik, t3)
		}
		b.Jump(lp.Latch)
		lc := lp.After
		e := lc.GetField(0, dec, "energy")
		last := lc.GetField(0, dec, "prev")
		lc.PutField(0, dec, "energy", lc.Bin(ir.OpXor, e, last))
		lc.Return(lc.GetField(0, dec, "energy"))
	}
	p.Funcs = append(p.Funcs, filter.M)

	main := ir.NewFunc("main", 0)
	{
		c := main.At(main.EntryBlock())
		frameLen := c.Const(subbands * taps)
		in := c.NewArray(frameLen)
		out := c.NewArray(frameLen)
		seed := c.Const(0xACDC)
		c.Call(fill, in, seed)
		d := c.New(dec)
		c.PutField(d, dec, "gain", c.Const(11))

		acc := c.Const(0)
		nFrames := c.Const(sc(520, scale))
		frames := c.CountedLoop(nFrames, "frame")
		fb := frames.Body
		nBands := fb.Const(subbands)
		bands := fb.CountedLoop(nBands, "band")
		bb := bands.Body
		e := bb.Call(filter.M, d, in, out, bands.I)
		bb.BinTo(ir.OpAdd, acc, acc, e)
		bb.Jump(bands.Latch)
		wa := bands.After
		// Windowing pass: pure-array loop (uninstrumented work).
		win := wa.CountedLoop(frameLen, "win")
		wb := win.Body
		v := wb.ALoad(out, win.I)
		three := wb.Const(3)
		wb.AStore(in, win.I, wb.Bin(ir.OpMul, v, three))
		wb.Jump(win.Latch)
		wf := win.After
		// Bit-reservoir refill every 64 frames: slow stream reads.
		m63 := wf.Const(63)
		lowBits := wf.Bin(ir.OpAnd, frames.I, m63)
		isRefill := wf.Bin(ir.OpCmpEQ, lowBits, wf.Const(0))
		refB := main.Block("refill")
		nxB := main.Block("next")
		wf.Branch(isRefill, refB, nxB)
		rfc := main.At(refB)
		rfc = emitSlowPhase(rfc, 8, 40000, d, dec, "refills")
		rfc.Jump(nxB)
		nx := main.At(nxB)
		nx.Jump(frames.Latch)

		fin := frames.After
		fin.Print(acc)
		fin.Return(acc)
	}
	p.Funcs = append(p.Funcs, main.M)
	p.Main = main.M
	p.Seal()
	return p
}
