package bench

import "instrsample/internal/ir"

// Compress models _201_compress: LZW-style byte compression. Execution is
// dominated by a tight per-byte loop that hashes the input and updates a
// compressor-state object several times per byte (field-access heavy,
// backedge heavy), with an occasional call to emit a code. In the paper
// this benchmark has the highest field-access instrumentation overhead
// and the highest backedge-check overhead.
func Compress(scale float64) *ir.Program {
	p := &ir.Program{Name: "compress"}

	state := &ir.Class{Name: "CompState", FieldNames: []string{
		"pos", "outCount", "hash", "checksum", "dictSize", "lastCode", "flushed",
	}}
	p.Classes = append(p.Classes, state)

	fill := buildFillArray(p)

	// emit(st, code): record an output code on the state object.
	emit := ir.NewFunc("emit", 2)
	{
		c := emit.At(emit.EntryBlock())
		oc := c.GetField(0, state, "outCount")
		one := c.Const(1)
		c.PutField(0, state, "outCount", c.Bin(ir.OpAdd, oc, one))
		cs := c.GetField(0, state, "checksum")
		mixed := c.Bin(ir.OpXor, cs, 1)
		thirt := c.Const(31)
		rot := c.Bin(ir.OpMul, mixed, thirt)
		c.PutField(0, state, "checksum", rot)
		c.Return(rot)
	}
	p.Funcs = append(p.Funcs, emit.M)

	main := ir.NewFunc("main", 0)
	{
		c := main.At(main.EntryBlock())
		nBytes := c.Const(sc(600000, scale))
		arr := c.NewArray(nBytes)
		seed := c.Const(0x1234567)
		c.Call(fill, arr, seed)
		st := c.New(state)
		zero := c.Const(0)
		c.PutField(st, state, "pos", zero)
		c.PutField(st, state, "checksum", c.Const(0x9E37))
		c.PutField(st, state, "dictSize", c.Const(256))

		// Simulated input read: a coarse I/O stall ahead of the hot loop
		// (exposes timer-trigger mis-attribution).
		c.IO(200000)

		lp := c.CountedLoop(nBytes, "byte")
		b := lp.Body
		// byte = arr[i]
		byt := b.ALoad(arr, lp.I)
		// hash = ((hash << 4) ^ byte) & 0xFFFF  -- two field accesses
		h := b.GetField(st, state, "hash")
		four := b.Const(4)
		hsh := b.Bin(ir.OpShl, h, four)
		hx := b.Bin(ir.OpXor, hsh, byt)
		mask := b.Const(0xFFFF)
		hm := b.Bin(ir.OpAnd, hx, mask)
		b.PutField(st, state, "hash", hm)
		// pos++, checksum update  -- four more field accesses
		pos := b.GetField(st, state, "pos")
		one := b.Const(1)
		b.PutField(st, state, "pos", b.Bin(ir.OpAdd, pos, one))
		cs := b.GetField(st, state, "checksum")
		csx := b.Bin(ir.OpXor, cs, hm)
		b.PutField(st, state, "checksum", csx)
		// "dictionary miss" every time the low bits align: call emit.
		seven := b.Const(3)
		low := b.Bin(ir.OpAnd, hm, seven)
		isMiss := b.Bin(ir.OpCmpEQ, low, b.Const(0))
		callBlk := main.Block("miss")
		contBlk := main.Block("cont")
		b.Branch(isMiss, callBlk, contBlk)
		cb := main.At(callBlk)
		cb.Call(emit.M, st, hm)
		ds := cb.GetField(st, state, "dictSize")
		cb.PutField(st, state, "dictSize", cb.Bin(ir.OpAdd, ds, one))
		cb.Jump(contBlk)
		cc := main.At(contBlk)
		// Output-buffer flush every 4 KiB of input: an expensive, rare
		// phase (simulated device writes) touching its own field.
		m4095 := cc.Const(4095)
		lowBits := cc.Bin(ir.OpAnd, lp.I, m4095)
		isFlush := cc.Bin(ir.OpCmpEQ, lowBits, cc.Const(0))
		flushB := main.Block("flush")
		nextB := main.Block("next")
		cc.Branch(isFlush, flushB, nextB)
		flc := main.At(flushB)
		flc = emitSlowPhase(flc, 8, 2500, st, state, "flushed")
		flc.Jump(nextB)
		nx := main.At(nextB)
		nx.Jump(lp.Latch)

		a := lp.After
		res := a.GetField(st, state, "checksum")
		oc := a.GetField(st, state, "outCount")
		fin := a.Bin(ir.OpAdd, res, oc)
		a.Print(fin)
		a.Return(fin)
	}
	p.Funcs = append(p.Funcs, main.M)
	p.Main = main.M
	p.Seal()
	return p
}
