package bench

import (
	"testing"

	"instrsample/internal/compile"
	"instrsample/internal/core"
	"instrsample/internal/instr"
	"instrsample/internal/ir"
	"instrsample/internal/profile"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

// testScale keeps unit-test runs fast; experiments use scale 1.0.
const testScale = 0.02

func run(t *testing.T, prog *ir.Program, opts compile.Options, trig trigger.Trigger) (*vm.Result, *compile.Result) {
	t.Helper()
	res, err := compile.Compile(prog, opts)
	if err != nil {
		t.Fatalf("%s: compile: %v", prog.Name, err)
	}
	out, err := vm.New(res.Prog, vm.Config{Trigger: trig, Handlers: res.Handlers}).Run()
	if err != nil {
		t.Fatalf("%s: run: %v", prog.Name, err)
	}
	return out, res
}

func paperInstr() []instr.Instrumenter {
	return []instr.Instrumenter{&instr.CallEdge{}, &instr.FieldAccess{}}
}

// TestSuiteBaselines runs every benchmark uninstrumented and sanity-checks
// its execution shape: nonzero work, loops, calls, and (for the threaded
// ones) threads.
func TestSuiteBaselines(t *testing.T) {
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog := b.Build(testScale)
			if err := prog.Verify(ir.VerifyBase); err != nil {
				t.Fatalf("verify: %v", err)
			}
			out, _ := run(t, prog, compile.Options{}, nil)
			if out.Stats.Backedges == 0 {
				t.Errorf("no backedges executed")
			}
			if out.Stats.MethodEntries < 2 {
				t.Errorf("no calls executed")
			}
			if out.Stats.Yields != out.Stats.MethodEntries+out.Stats.Backedges {
				t.Errorf("yields %d != entries %d + backedges %d",
					out.Stats.Yields, out.Stats.MethodEntries, out.Stats.Backedges)
			}
			if len(out.Output) == 0 {
				t.Errorf("no checksum printed")
			}
			switch b.Name {
			case "pbob", "volano":
				if out.Stats.ThreadsSpawned == 0 {
					t.Errorf("expected threads")
				}
			}
			t.Logf("%s: cycles=%d instrs=%d entries=%d backedges=%d",
				b.Name, out.Stats.Cycles, out.Stats.Instrs,
				out.Stats.MethodEntries, out.Stats.Backedges)
		})
	}
}

// TestSuiteSemanticsUnderSampling verifies DESIGN.md invariant 1 on every
// benchmark: the program checksum is identical across baseline,
// exhaustive instrumentation, and all framework variations.
func TestSuiteSemanticsUnderSampling(t *testing.T) {
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog := b.Build(testScale)
			base, _ := run(t, prog, compile.Options{}, nil)
			cfgs := []struct {
				name string
				fw   *core.Options
				trig trigger.Trigger
			}{
				{"exhaustive", nil, nil},
				{"full", &core.Options{Variation: core.FullDuplication}, trigger.NewCounter(23)},
				{"partial", &core.Options{Variation: core.PartialDuplication}, trigger.NewCounter(23)},
				{"nodup", &core.Options{Variation: core.NoDuplication}, trigger.NewCounter(23)},
				{"hybrid", &core.Options{Variation: core.Hybrid}, trigger.NewCounter(23)},
				{"yieldopt", &core.Options{Variation: core.FullDuplication, YieldpointOpt: true}, trigger.NewCounter(23)},
				{"counted", &core.Options{Variation: core.FullDuplication, CountedIterations: true}, trigger.NewCounter(23)},
			}
			for _, cfg := range cfgs {
				out, _ := run(t, prog, compile.Options{Instrumenters: paperInstr(), Framework: cfg.fw}, cfg.trig)
				if out.Return != base.Return {
					t.Errorf("%s: return %d, want %d", cfg.name, out.Return, base.Return)
				}
				if len(out.Output) != len(base.Output) || (len(base.Output) > 0 && out.Output[0] != base.Output[0]) {
					t.Errorf("%s: output differs", cfg.name)
				}
			}
		})
	}
}

// TestSuitePerfectProfiles verifies invariant 5 per benchmark: interval-1
// Full-Duplication profiles match exhaustive profiles exactly.
func TestSuitePerfectProfiles(t *testing.T) {
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog := b.Build(testScale)
			_, ex := run(t, prog, compile.Options{Instrumenters: paperInstr()}, nil)
			_, fd := run(t, prog, compile.Options{
				Instrumenters: paperInstr(),
				Framework:     &core.Options{Variation: core.FullDuplication},
			}, trigger.Always{})
			for i := range ex.Runtimes {
				pe, ps := ex.Runtimes[i].Profile(), fd.Runtimes[i].Profile()
				if pe.Total() != ps.Total() {
					t.Errorf("%s: totals %d vs %d", pe.Name, pe.Total(), ps.Total())
				}
				if ov := profile.Overlap(pe, ps); ov < 99.999 {
					t.Errorf("%s: overlap %.3f", pe.Name, ov)
				}
			}
		})
	}
}

// TestSuiteSampledAccuracy checks the headline property on real(istic)
// workloads: a moderate sample interval yields high overlap with the
// perfect profile at a fraction of the probes executed.
func TestSuiteSampledAccuracy(t *testing.T) {
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog := b.Build(0.1)
			perfOut, perf := run(t, prog, compile.Options{Instrumenters: paperInstr()}, nil)
			sampOut, samp := run(t, prog, compile.Options{
				Instrumenters: paperInstr(),
				Framework:     &core.Options{Variation: core.FullDuplication},
			}, trigger.NewCounter(50))
			if sampOut.Stats.Probes*5 > perfOut.Stats.Probes {
				t.Errorf("sampling executed %d probes vs %d exhaustive — not sparse",
					sampOut.Stats.Probes, perfOut.Stats.Probes)
			}
			for i := range perf.Runtimes {
				pe, ps := perf.Runtimes[i].Profile(), samp.Runtimes[i].Profile()
				ov := profile.Overlap(pe, ps)
				t.Logf("%s overlap at interval 50: %.1f%% (%d samples)", pe.Name, ov, ps.Total())
				// Overlap is only a meaningful accuracy measure once a
				// reasonable sample set exists (the paper's point about
				// interval 100,000 in §4.4); tiny test scales can leave
				// a profile with a handful of samples.
				if ps.Total() >= 200 && ov < 50 {
					t.Errorf("%s: overlap %.1f%% too low for %d samples", pe.Name, ov, ps.Total())
				}
			}
		})
	}
}

// TestSuiteProperty1 checks Property 1 on every benchmark.
func TestSuiteProperty1(t *testing.T) {
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog := b.Build(testScale)
			base, _ := run(t, prog, compile.Options{}, nil)
			bound := base.Stats.MethodEntries + base.Stats.Backedges
			for _, v := range []core.Variation{core.FullDuplication, core.PartialDuplication} {
				out, _ := run(t, prog, compile.Options{
					Instrumenters: paperInstr(),
					Framework:     &core.Options{Variation: v},
				}, trigger.NewCounter(13))
				if out.Stats.Checks > bound {
					t.Errorf("%s: checks %d > bound %d", v, out.Stats.Checks, bound)
				}
			}
		})
	}
}
