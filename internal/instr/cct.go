package instr

import (
	"fmt"

	"instrsample/internal/ir"
	"instrsample/internal/profile"
	"instrsample/internal/vm"
)

// Calling-context-tree profiling. §2 singles the CCT ([3], Ammons–Ball–
// Larus) out as an instrumentation that needs special treatment under
// sampling: the exhaustive version "updates a context-sensitive data
// structure on all method entries and exits", and if only a sampled
// subset of those events is observed, the runtime's notion of the current
// context desynchronizes from reality. The paper points at [8]
// (Arnold–Sweeney) for the fix: reconstruct the context from the actual
// call stack at each sample instead of tracking it incrementally.
//
// Both variants are implemented here:
//
//   - CCT is the naive enter/exit instrumentation. It is exact when run
//     exhaustively and *wrong* when sampled (the framework samples
//     entries and exits independently, so the shadow stack drifts) — the
//     failure mode the paper warns about.
//   - SampledCCT is the [8]-style instrumentation: a single entry probe
//     whose handler walks the VM's real frame stack, so every observed
//     sample lands on the true context no matter how sparse sampling is.
//
// Tree nodes are identified by a deterministic hash chain over the path
// from the root, so two runs (or two variants) can be compared with the
// standard overlap metric: a profile key is "this exact calling context".

// cctHash extends a context hash by one callee.
func cctHash(parent uint64, methodID int) uint64 {
	h := parent ^ (uint64(methodID+1) * 0x9E3779B97F4A7C15)
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

// cctRootHash is the context hash of a thread root.
const cctRootHash = 0x243F6A8885A308D3

// CCT is the naive calling-context-tree instrumentation: probes on every
// method entry and every method exit maintain a per-thread shadow stack.
type CCT struct {
	// Cost overrides the per-probe cycle cost (default 14: a child
	// lookup/insert in the tree on entry, a pop on exit).
	Cost uint32
}

// Name returns "cct".
func (*CCT) Name() string { return "cct" }

// cctEnter / cctExit discriminate the probe via Probe.Imm.
const (
	cctEnter = 0
	cctExit  = 1
)

// Instrument inserts an entry probe at the top of the entry block and an
// exit probe before every return.
func (c *CCT) Instrument(p *ir.Program, m *ir.Method, owner int) {
	cost := c.Cost
	if cost == 0 {
		cost = 14
	}
	m.Entry().InsertFront(ir.Instr{Op: ir.OpProbe, Probe: &ir.Probe{
		Owner: owner, Kind: ir.ProbeEvent, ID: m.ID, Imm: cctEnter, Cost: cost,
	}})
	for _, b := range m.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpReturn {
			continue
		}
		b.InsertBeforeTerminator(ir.Instr{Op: ir.OpProbe, Probe: &ir.Probe{
			Owner: owner, Kind: ir.ProbeEvent, ID: m.ID, Imm: cctExit, Cost: cost / 2,
		}})
	}
}

// NewRuntime returns the shadow-stack CCT accumulator.
func (c *CCT) NewRuntime(p *ir.Program) Runtime {
	return &cctRuntime{prof: newCCTProfile("cct", p), prog: p}
}

type cctRuntime struct {
	prof *profile.Profile
	prog *ir.Program
	// stacks holds the per-thread shadow context hashes.
	stacks map[int][]uint64
}

func (rt *cctRuntime) HandleProbe(ev *vm.ProbeEvent) {
	if rt.stacks == nil {
		rt.stacks = make(map[int][]uint64)
	}
	st := rt.stacks[ev.ThreadID]
	if len(st) == 0 {
		st = append(st, cctRootHash)
	}
	switch ev.Probe.Imm {
	case cctEnter:
		ctx := cctHash(st[len(st)-1], ev.Probe.ID)
		st = append(st, ctx)
		rt.prof.Inc(ctx)
	default: // cctExit
		// Pop — and here lies the sampling hazard: if the matching enter
		// was not sampled, this pop desynchronizes the shadow stack.
		if len(st) > 1 {
			st = st[:len(st)-1]
		}
	}
	rt.stacks[ev.ThreadID] = st
}

func (rt *cctRuntime) Profile() *profile.Profile { return rt.prof }

// SampledCCT is the Arnold–Sweeney-style sampling-safe variant: one probe
// per method entry whose handler reconstructs the full context from the
// VM's real call stack, so partial observation cannot corrupt the tree.
type SampledCCT struct {
	// Cost overrides the per-probe cycle cost (default 40: walking the
	// stack is proportional to its depth; 40 models the paper's
	// "examine the call stack" cost).
	Cost uint32
}

// Name returns "cct-sampled".
func (*SampledCCT) Name() string { return "cct-sampled" }

// Instrument inserts a single entry probe.
func (c *SampledCCT) Instrument(p *ir.Program, m *ir.Method, owner int) {
	cost := c.Cost
	if cost == 0 {
		cost = 40
	}
	m.Entry().InsertFront(ir.Instr{Op: ir.OpProbe, Probe: &ir.Probe{
		Owner: owner, Kind: ir.ProbeEvent, ID: m.ID, Cost: cost,
	}})
}

// NewRuntime returns the stack-walking CCT accumulator.
func (c *SampledCCT) NewRuntime(p *ir.Program) Runtime {
	return &sampledCCTRuntime{prof: newCCTProfile("cct-sampled", p)}
}

type sampledCCTRuntime struct {
	prof *profile.Profile
}

func (rt *sampledCCTRuntime) HandleProbe(ev *vm.ProbeEvent) {
	ctx := uint64(cctRootHash)
	for _, f := range ev.Thread.Frames {
		ctx = cctHash(ctx, f.Method.ID)
	}
	rt.prof.Inc(ctx)
}

func (rt *sampledCCTRuntime) Profile() *profile.Profile { return rt.prof }

// newCCTProfile builds a profile labelled with context hashes. Context
// hashes are opaque; the labeler renders them compactly.
func newCCTProfile(name string, p *ir.Program) *profile.Profile {
	prof := profile.New(name)
	prof.Labeler = func(key uint64) string { return fmt.Sprintf("ctx:%016x", key) }
	return prof
}
