package instr

import (
	"fmt"

	"instrsample/internal/ir"
	"instrsample/internal/profile"
	"instrsample/internal/vm"
)

// FieldAccess is the paper's second example instrumentation (§4.2): every
// get_field/put_field increments a per-field counter. The profile drives
// data-layout optimizations. The probe models two loads, an increment and
// a store (§4.3 notes it costs about as much as a counter-based check,
// which is why No-Duplication barely helps it).
type FieldAccess struct {
	// Cost overrides the per-probe cycle cost (default 6).
	Cost uint32
}

// DefaultFieldAccessCost is the probe cost: two loads, an increment and a
// store on the counter array.
const DefaultFieldAccessCost = 6

// Name returns "field-access".
func (*FieldAccess) Name() string { return "field-access" }

// Instrument inserts a ProbeEvent immediately before every field access.
func (f *FieldAccess) Instrument(p *ir.Program, m *ir.Method, owner int) {
	cost := f.Cost
	if cost == 0 {
		cost = DefaultFieldAccessCost
	}
	for _, b := range m.Blocks {
		var out []ir.Instr
		for _, in := range b.Instrs {
			if in.Op == ir.OpGetField || in.Op == ir.OpPutField {
				out = append(out, ir.Instr{
					Op: ir.OpProbe,
					Probe: &ir.Probe{
						Owner: owner,
						Kind:  ir.ProbeEvent,
						ID:    p.FieldID(in.Class, in.FieldSlot()),
						Cost:  cost,
					},
				})
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
}

// NewRuntime returns a field-access profile accumulator.
func (f *FieldAccess) NewRuntime(p *ir.Program) Runtime {
	rt := &fieldAccessRuntime{prof: profile.New("field-access"), prog: p}
	rt.prof.Labeler = rt.label
	return rt
}

type fieldAccessRuntime struct {
	prof *profile.Profile
	prog *ir.Program
}

func (rt *fieldAccessRuntime) HandleProbe(ev *vm.ProbeEvent) {
	rt.prof.Inc(uint64(ev.Probe.ID))
}

func (rt *fieldAccessRuntime) Profile() *profile.Profile { return rt.prof }

func (rt *fieldAccessRuntime) label(key uint64) string {
	id := int(key)
	for _, c := range rt.prog.Classes {
		base := rt.prog.FieldID(c, 0)
		if id >= base && id < base+c.NumFields() {
			return c.Name + "." + c.FieldName(id-base)
		}
	}
	return fmt.Sprintf("field#%d", id)
}
