package instr

import (
	"strings"
	"testing"

	"instrsample/internal/ir"
	"instrsample/internal/trigger"
	"instrsample/internal/vm"
)

// testProgram builds a program with known call/field/branch structure:
//
//	main: loop 10x { o.f = i; call leaf(i); if i&1 { o.g = i } }
//	leaf(x): returns x+1
func testProgram() (*ir.Program, *ir.Class) {
	cl := &ir.Class{Name: "O", FieldNames: []string{"f", "g"}}
	leaf := ir.NewFunc("leaf", 1)
	{
		c := leaf.At(leaf.EntryBlock())
		one := c.Const(1)
		c.Return(c.Bin(ir.OpAdd, 0, one))
	}
	mb := ir.NewFunc("main", 0)
	{
		c := mb.At(mb.EntryBlock())
		o := c.New(cl)
		acc := c.Const(0)
		n := c.Const(10)
		lp := c.CountedLoop(n, "l")
		b := lp.Body
		b.PutField(o, cl, "f", lp.I)
		r := b.Call(leaf.M, lp.I)
		b.BinTo(ir.OpAdd, acc, acc, r)
		one := b.Const(1)
		odd := b.Bin(ir.OpAnd, lp.I, one)
		oddB := mb.Block("odd")
		contB := mb.Block("cont")
		b.Branch(odd, oddB, contB)
		oc := mb.At(oddB)
		oc.PutField(o, cl, "g", lp.I)
		oc.Jump(contB)
		cc := mb.At(contB)
		cc.Jump(lp.Latch)
		lp.After.Return(acc)
	}
	p := &ir.Program{Name: "t", Classes: []*ir.Class{cl}, Funcs: []*ir.Method{leaf.M, mb.M}, Main: mb.M}
	p.Seal()
	return p, cl
}

// instrumentAndRun applies one instrumenter exhaustively and runs.
func instrumentAndRun(t *testing.T, p *ir.Program, ins Instrumenter) (Runtime, *vm.Result) {
	t.Helper()
	q := ir.CloneProgram(p)
	AssignCallSiteIDs(q)
	InstrumentAll(q, []Instrumenter{ins})
	rts, handlers := NewRuntimes(q, []Instrumenter{ins})
	q.Seal()
	if err := q.Verify(ir.VerifyBase); err != nil {
		t.Fatalf("instrumented program invalid: %v", err)
	}
	out, err := vm.New(q, vm.Config{Handlers: handlers, Trigger: trigger.Never{}}).Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rts[0], out
}

func TestCallEdgeCounts(t *testing.T) {
	p, _ := testProgram()
	rt, _ := instrumentAndRun(t, p, &CallEdge{})
	prof := rt.Profile()
	// Edges: root->main (1) and main->leaf (10).
	if prof.Total() != 11 {
		t.Fatalf("total %d, want 11", prof.Total())
	}
	if prof.NumEvents() != 2 {
		t.Fatalf("%d distinct edges, want 2", prof.NumEvents())
	}
	top := prof.Entries()[0]
	caller, site, callee := DecodeCallEdge(top.Key)
	if top.Count != 10 {
		t.Fatalf("hot edge count %d, want 10", top.Count)
	}
	if caller < 0 || site == 0 {
		t.Errorf("hot edge should have a real caller and site: caller=%d site=%d", caller, site)
	}
	methods := p.Methods()
	_ = methods
	if callee < 0 {
		t.Errorf("bad callee %d", callee)
	}
	label := prof.Labeler(top.Key)
	if !strings.Contains(label, "main") || !strings.Contains(label, "leaf") {
		t.Errorf("label %q should name main->leaf", label)
	}
	// Root edge labels as <root>.
	rootLabel := prof.Labeler(prof.Entries()[1].Key)
	if !strings.Contains(rootLabel, "<root>") {
		t.Errorf("root label %q", rootLabel)
	}
}

func TestFieldAccessCounts(t *testing.T) {
	p, cl := testProgram()
	rt, _ := instrumentAndRun(t, p, &FieldAccess{})
	prof := rt.Profile()
	// f written 10x, g written 5x (odd iterations).
	if prof.Total() != 15 {
		t.Fatalf("total %d, want 15", prof.Total())
	}
	fID := uint64(p.FieldID(cl, 0))
	gID := uint64(p.FieldID(cl, 1))
	if prof.Count(fID) != 10 || prof.Count(gID) != 5 {
		t.Fatalf("f=%d g=%d, want 10/5", prof.Count(fID), prof.Count(gID))
	}
	if !strings.Contains(prof.Labeler(fID), "O.f") {
		t.Errorf("label %q", prof.Labeler(fID))
	}
}

func TestBlockCountMatchesBranchSplit(t *testing.T) {
	p, _ := testProgram()
	rt, out := instrumentAndRun(t, p, &BlockCount{})
	prof := rt.Profile()
	// Every executed instruction's block got counted: total block
	// executions equals the number of block entries. Sanity: the "odd"
	// block ran 5 times; find it by label.
	var oddCount, contCount uint64
	for _, e := range prof.Entries() {
		lbl := prof.Labeler(e.Key)
		if strings.Contains(lbl, "odd") {
			oddCount = e.Count
		}
		if strings.Contains(lbl, "cont") {
			contCount = e.Count
		}
	}
	if oddCount != 5 {
		t.Errorf("odd block count %d, want 5", oddCount)
	}
	if contCount != 10 {
		t.Errorf("cont block count %d, want 10", contCount)
	}
	if out.Stats.Probes != prof.Total() {
		t.Errorf("probes %d != profile total %d", out.Stats.Probes, prof.Total())
	}
}

func TestEdgeProfileFlowConservation(t *testing.T) {
	p, _ := testProgram()
	rt, _ := instrumentAndRun(t, p, &EdgeProfile{})
	prof := rt.Profile()
	// The branch edges odd/cont must be 5/5, and every label resolves.
	var oddEdge, contEdge uint64
	for _, e := range prof.Entries() {
		lbl := prof.Labeler(e.Key)
		if strings.Contains(lbl, "->odd") {
			oddEdge = e.Count
		}
		if strings.Contains(lbl, "->cont") {
			contEdge += e.Count
		}
		if strings.HasPrefix(lbl, "edge#") {
			t.Errorf("unresolved edge label %q", lbl)
		}
	}
	if oddEdge != 5 {
		t.Errorf("odd edge %d, want 5", oddEdge)
	}
	if contEdge != 10 { // 5 direct from branch + 5 from odd block
		t.Errorf("edges into cont %d, want 10", contEdge)
	}
}

func TestValueProfileSeesParameters(t *testing.T) {
	p, _ := testProgram()
	rt, _ := instrumentAndRun(t, p, &ValueProfile{})
	prof := rt.Profile()
	// leaf(i) sees values 0..9, one each.
	if prof.NumEvents() != 10 {
		t.Fatalf("%d distinct values, want 10", prof.NumEvents())
	}
	for _, e := range prof.Entries() {
		if e.Count != 1 {
			t.Errorf("value %s count %d, want 1", prof.Labeler(e.Key), e.Count)
		}
	}
}

func TestPathProfileCountsAndDecodes(t *testing.T) {
	p, _ := testProgram()
	rt, _ := instrumentAndRun(t, p, &PathProfile{})
	prof := rt.Profile()
	if prof.Total() == 0 {
		t.Fatal("no paths recorded")
	}
	// main records one path per loop iteration (10, at the backedge)
	// plus one at return; leaf records one per call (10). The odd/even
	// split gives main two distinct iteration paths of 5 each.
	var mainPaths, leafPaths uint64
	for _, e := range prof.Entries() {
		lbl := prof.Labeler(e.Key)
		switch {
		case strings.HasPrefix(lbl, "main"):
			mainPaths += e.Count
		case strings.HasPrefix(lbl, "leaf"):
			leafPaths += e.Count
		default:
			t.Errorf("unattributed path %q", lbl)
		}
	}
	if leafPaths != 10 {
		t.Errorf("leaf paths %d, want 10", leafPaths)
	}
	if mainPaths < 11 {
		t.Errorf("main paths %d, want >= 11", mainPaths)
	}
	// The two iteration variants (odd/even) must be distinct path IDs
	// with count 5 each.
	fives := 0
	for _, e := range prof.Entries() {
		if strings.HasPrefix(prof.Labeler(e.Key), "main") && e.Count == 5 {
			fives++
		}
	}
	if fives != 2 {
		t.Errorf("expected two 5-count main paths (odd/even iterations), got %d", fives)
	}
}

func TestPathProfileSkipsPathExplosion(t *testing.T) {
	// A method with 2^20 paths must be skipped, not instrumented.
	b := ir.NewFunc("main", 0)
	c := b.At(b.EntryBlock())
	acc := c.Const(0)
	for i := 0; i < 20; i++ {
		one := c.Const(1)
		cond := c.Bin(ir.OpAnd, acc, one)
		tb := b.Block("")
		eb := b.Block("")
		jb := b.Block("")
		c.Branch(cond, tb, eb)
		tc := b.At(tb)
		tc.BinTo(ir.OpAdd, acc, acc, one)
		tc.Jump(jb)
		ec := b.At(eb)
		ec.Jump(jb)
		c = b.At(jb)
	}
	c.Return(acc)
	p := &ir.Program{Name: "t", Funcs: []*ir.Method{b.M}, Main: b.M}
	p.Seal()
	pp := &PathProfile{MaxPathsPerMethod: 1 << 16}
	pp.Instrument(p, b.M, 0)
	for _, blk := range b.M.Blocks {
		if blk.HasProbe() {
			t.Fatal("exploding method was instrumented")
		}
	}
}

func TestAssignCallSiteIDsStable(t *testing.T) {
	p, _ := testProgram()
	q := ir.CloneProgram(p)
	n := AssignCallSiteIDs(q)
	if n < 2 {
		t.Fatalf("too few sites: %d", n)
	}
	seen := map[int64]bool{}
	for _, m := range q.Methods() {
		for _, b := range m.Blocks {
			for i := range b.Instrs {
				switch b.Instrs[i].Op {
				case ir.OpCall, ir.OpCallVirt, ir.OpSpawn:
					id := b.Instrs[i].Imm
					if id == 0 {
						t.Error("unassigned call site")
					}
					if seen[id] {
						t.Errorf("duplicate site ID %d", id)
					}
					seen[id] = true
				}
			}
		}
	}
}

func TestInstrumentMethodsSelective(t *testing.T) {
	p, _ := testProgram()
	q := ir.CloneProgram(p)
	InstrumentMethods(q, []Instrumenter{&FieldAccess{}}, func(m *ir.Method) bool {
		return m.Name == "main"
	})
	for _, m := range q.Methods() {
		has := false
		for _, b := range m.Blocks {
			has = has || b.HasProbe()
		}
		if m.Name == "main" && !has {
			t.Error("main not instrumented")
		}
		if m.Name == "leaf" && has {
			t.Error("leaf instrumented despite filter")
		}
	}
}
