package instr

import (
	"sort"
	"strings"
	"testing"

	"instrsample/internal/ir"
	"instrsample/internal/profile"
)

// countsProgram builds a program whose dynamic event counts are easy to
// enumerate by hand:
//
//	class A { field f; method id(self) { return 1 } }
//	class B { field f; method id(self) { return 2 } }
//	main:
//	  a = new A; b = new B; acc = 0
//	  for i = 0..5 {            // head executes 7x, body 6x
//	    a.f = i; t = a.f        // 6 writes + 6 reads of A.f
//	    if i&1 { acc += id(b) } // odd arm: 3x, receiver B
//	    else   { acc += id(a) } // even arm: 3x, receiver A
//	  }
//	  return acc
func countsProgram() *ir.Program {
	clA := &ir.Class{Name: "A", FieldNames: []string{"f"}}
	clB := &ir.Class{Name: "B", FieldNames: []string{"f"}}
	idA := ir.NewMethod(clA, "id", 1)
	{
		c := idA.At(idA.EntryBlock())
		c.Return(c.Const(1))
	}
	idB := ir.NewMethod(clB, "id", 1)
	{
		c := idB.At(idB.EntryBlock())
		c.Return(c.Const(2))
	}
	mb := ir.NewFunc("main", 0)
	{
		ec := mb.At(mb.EntryBlock())
		a := ec.New(clA)
		b := ec.New(clB)
		acc := ec.Fresh()
		ec.ConstTo(acc, 0)
		i := ec.Fresh()
		ec.ConstTo(i, 0)
		n := ec.Const(6)
		head := mb.Block("head")
		body := mb.Block("body")
		oddb := mb.Block("oddb")
		evenb := mb.Block("evenb")
		latch := mb.Block("latch")
		after := mb.Block("after")
		ec.Jump(head)
		hc := mb.At(head)
		cond := hc.Bin(ir.OpCmpLT, i, n)
		hc.Branch(cond, body, after)
		bc := mb.At(body)
		bc.PutField(a, clA, "f", i)
		bc.GetField(a, clA, "f")
		one := bc.Const(1)
		odd := bc.Bin(ir.OpAnd, i, one)
		bc.Branch(odd, oddb, evenb)
		oc := mb.At(oddb)
		r := oc.CallVirt("id", b)
		oc.BinTo(ir.OpAdd, acc, acc, r)
		oc.Jump(latch)
		vc := mb.At(evenb)
		r2 := vc.CallVirt("id", a)
		vc.BinTo(ir.OpAdd, acc, acc, r2)
		vc.Jump(latch)
		lc := mb.At(latch)
		lone := lc.Const(1)
		lc.BinTo(ir.OpAdd, i, i, lone)
		lc.Jump(head)
		mb.At(after).Return(acc)
	}
	p := &ir.Program{
		Name:    "counts",
		Classes: []*ir.Class{clA, clB},
		Funcs:   []*ir.Method{mb.M},
		Main:    mb.M,
	}
	p.Seal()
	return p
}

// labelCounts renders a profile as label -> count, using the runtime's
// own Labeler.
func labelCounts(t *testing.T, rt Runtime) map[string]uint64 {
	t.Helper()
	prof := rt.Profile()
	out := make(map[string]uint64)
	for _, e := range prof.Entries() {
		label := prof.Labeler(e.Key)
		if _, dup := out[label]; dup {
			t.Fatalf("two events share label %q", label)
		}
		out[label] = e.Count
	}
	return out
}

// sumMatching totals the counts of labels containing substr.
func sumMatching(m map[string]uint64, substr string) uint64 {
	var n uint64
	for label, c := range m {
		if strings.Contains(label, substr) {
			n += c
		}
	}
	return n
}

// TestEventCountsByPass pins the exhaustive (never-sampled) event counts
// of each instrumentation pass on countsProgram against hand-computed
// expectations.
func TestEventCountsByPass(t *testing.T) {
	cases := []struct {
		name      string
		ins       Instrumenter
		total     uint64 // expected Profile.Total()
		numEvents int    // expected distinct events
		// bySubstr maps a label substring to the summed count of all
		// matching events.
		bySubstr map[string]uint64
	}{
		{
			name: "call-edge",
			ins:  &CallEdge{},
			// Edges: root->main 1, main->A.id 3 (even i), main->B.id 3.
			total:     7,
			numEvents: 3,
			bySubstr: map[string]uint64{
				"--> main": 1,
				"--> A.id": 3,
				"--> B.id": 3,
			},
		},
		{
			name: "field-access",
			ins:  &FieldAccess{},
			// 6 putfields + 6 getfields, all on A.f; B.f never touched.
			total:     12,
			numEvents: 1,
			bySubstr:  map[string]uint64{"A.f": 12, "B.f": 0},
		},
		{
			name: "edge",
			ins:  &EdgeProfile{},
			// Hand-traced CFG edge executions (returns count as the
			// block's self-edge): entry->head 1, head->body 6,
			// head->after 1, body->oddb 3, body->evenb 3, oddb->latch 3,
			// evenb->latch 3, latch->head 6, after return 1, plus each
			// id() return edge 3x: 1+6+1+3+3+3+3+6+1+3+3 = 33.
			total:     33,
			numEvents: 11,
			bySubstr: map[string]uint64{
				"entry(b0)->head(b1)":  1,
				"head(b1)->body(b2)":   6,
				"head(b1)->after(b6)":  1,
				"body(b2)->oddb(b3)":   3,
				"body(b2)->evenb(b4)":  3,
				"oddb(b3)->latch(b5)":  3,
				"evenb(b4)->latch(b5)": 3,
				"latch(b5)->head(b1)":  6,
				"after(b6)->after(b6)": 1,
				"A.id:":                3,
				"B.id:":                3,
			},
		},
		{
			name: "receiver",
			ins:  &ReceiverProfile{},
			// One virtual site per arm; 3 dispatches each.
			total:     6,
			numEvents: 2,
			bySubstr:  map[string]uint64{"recv=A": 3, "recv=B": 3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt, _ := instrumentAndRun(t, countsProgram(), tc.ins)
			prof := rt.Profile()
			if prof.Total() != tc.total {
				t.Errorf("total %d, want %d\n%s", prof.Total(), tc.total, prof)
			}
			if prof.NumEvents() != tc.numEvents {
				t.Errorf("%d distinct events, want %d\n%s", prof.NumEvents(), tc.numEvents, prof)
			}
			labels := labelCounts(t, rt)
			for substr, want := range tc.bySubstr {
				if got := sumMatching(labels, substr); got != want {
					t.Errorf("events matching %q: %d, want %d\n%s", substr, got, want, prof)
				}
			}
		})
	}
}

// TestDecodeReceiverRoundTrip checks the key packing, including the
// non-class and null sentinels.
func TestDecodeReceiverRoundTrip(t *testing.T) {
	for _, site := range []int{0, 1, 7, 1 << 18} {
		for _, cid := range []int{-2, -1, 0, 1, 500} {
			s, c := DecodeReceiver(receiverKey(site, int64(cid)))
			if s != site || c != cid {
				t.Errorf("round trip (%d,%d) -> (%d,%d)", site, cid, s, c)
			}
		}
	}
}

// TestPredictReceivers covers the devirtualization decision procedure on
// synthetic profiles.
func TestPredictReceivers(t *testing.T) {
	mk := func(samples map[uint64]uint64) *profile.Profile {
		p := profile.New("receiver")
		for k, n := range samples {
			for i := uint64(0); i < n; i++ {
				p.Inc(k)
			}
		}
		return p
	}
	cases := []struct {
		name       string
		samples    map[uint64]uint64
		minShare   float64
		minSamples uint64
		want       map[int]int
	}{
		{
			name:    "monomorphic site",
			samples: map[uint64]uint64{receiverKey(3, 1): 10},
			want:    map[int]int{3: 1},
		},
		{
			name: "dominant class above share",
			samples: map[uint64]uint64{
				receiverKey(1, 0): 9,
				receiverKey(1, 2): 1,
			},
			minShare: 0.9,
			want:     map[int]int{1: 0},
		},
		{
			name: "polymorphic site rejected",
			samples: map[uint64]uint64{
				receiverKey(1, 0): 5,
				receiverKey(1, 2): 5,
			},
			minShare: 0.9,
			want:     map[int]int{},
		},
		{
			name:       "below minSamples",
			samples:    map[uint64]uint64{receiverKey(4, 1): 2},
			minSamples: 3,
			want:       map[int]int{},
		},
		{
			name: "sentinel receivers never predicted",
			samples: map[uint64]uint64{
				receiverKey(2, -1): 8, // non-class dominates
				receiverKey(2, 0):  1,
			},
			want: map[int]int{},
		},
		{
			name: "tie prefers smaller class ID",
			samples: map[uint64]uint64{
				receiverKey(5, 3): 4,
				receiverKey(5, 1): 4,
			},
			minShare: 0.5,
			want:     map[int]int{5: 1},
		},
		{
			name: "independent sites",
			samples: map[uint64]uint64{
				receiverKey(0, 0): 6,
				receiverKey(1, 1): 3,
				receiverKey(2, 0): 2,
				receiverKey(2, 1): 2,
			},
			minShare: 0.8,
			want:     map[int]int{0: 0, 1: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := PredictReceivers(mk(tc.samples), tc.minShare, tc.minSamples)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for site, cls := range tc.want {
				if got[site] != cls {
					t.Fatalf("site %d -> %d, want %d (full: %v)", site, got[site], cls, got)
				}
			}
		})
	}
}

// TestPredictReceiversEndToEnd runs the receiver pass on countsProgram
// and feeds the resulting profile through PredictReceivers: both virtual
// sites are monomorphic, so both devirtualize.
func TestPredictReceiversEndToEnd(t *testing.T) {
	rt, _ := instrumentAndRun(t, countsProgram(), &ReceiverProfile{})
	pred := PredictReceivers(rt.Profile(), 0.9, 1)
	if len(pred) != 2 {
		t.Fatalf("predicted %v, want two monomorphic sites", pred)
	}
	// One site always sees A (dense ID 0), the other always B (ID 1).
	seen := map[int]int{}
	for _, cls := range pred {
		seen[cls]++
	}
	if seen[0] != 1 || seen[1] != 1 {
		t.Fatalf("predicted classes %v, want one site each for A(0) and B(1)", pred)
	}
}

// TestPathProfileCountsByHand pins the Ball–Larus path multiset on
// countsProgram. Paths truncate at backedges, so main records one path
// per backedge traversal plus the exit path; the entry->head jump adds
// no path increment, so the first iteration shares the even-arm path.
func TestPathProfileCountsByHand(t *testing.T) {
	rt, _ := instrumentAndRun(t, countsProgram(), &PathProfile{})
	prof := rt.Profile()
	// main: 6 backedge traversals + 1 exit = 7; each id() body is a
	// single straight-line path taken 3x: 7 + 3 + 3 = 13.
	if prof.Total() != 13 {
		t.Fatalf("total %d, want 13\n%s", prof.Total(), prof)
	}
	var counts []int
	for _, e := range prof.Entries() {
		counts = append(counts, int(e.Count))
	}
	sort.Ints(counts)
	// Multiplicities: main exit path 1, main even-arm 3, main odd-arm 3,
	// A.id 3, B.id 3.
	want := []int{1, 3, 3, 3, 3}
	if len(counts) != len(want) {
		t.Fatalf("%d distinct paths (%v), want %v\n%s", len(counts), counts, want, prof)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("path multiset %v, want %v\n%s", counts, want, prof)
		}
	}
}
